package svgic_test

import (
	"context"
	"math"
	"testing"

	svgic "github.com/svgic/svgic"
)

// engineTestInstance: two independent friend triangles sharing an item
// catalogue — the smallest genuinely multi-component batch shape.
func engineTestInstance(bump float64) *svgic.Instance {
	g := svgic.NewGraph(6)
	for _, tri := range [][3]int{{0, 1, 2}, {3, 4, 5}} {
		g.AddMutualEdge(tri[0], tri[1])
		g.AddMutualEdge(tri[1], tri[2])
		g.AddMutualEdge(tri[0], tri[2])
	}
	in := svgic.NewInstance(g, 6, 2, 0.5)
	for u := 0; u < 6; u++ {
		for c := 0; c < 6; c++ {
			in.SetPref(u, c, float64((u+c)%5)/5+bump)
		}
	}
	for _, e := range g.Edges() {
		for c := 0; c < 6; c++ {
			if err := in.SetTau(e[0], e[1], c, float64((e[0]+c)%4)/6); err != nil {
				panic(err)
			}
		}
	}
	return in
}

func TestPublicEngineAPI(t *testing.T) {
	in := engineTestInstance(0)

	subs, origs := svgic.DecomposeInstance(in)
	if len(subs) != 2 {
		t.Fatalf("DecomposeInstance: %d parts, want 2", len(subs))
	}
	if svgic.FingerprintInstance(in) != svgic.FingerprintInstance(engineTestInstance(0)) {
		t.Error("equal instances fingerprint differently")
	}
	if svgic.FingerprintInstance(in) == svgic.FingerprintInstance(engineTestInstance(0.1)) {
		t.Error("different instances share a fingerprint")
	}

	eng := svgic.NewEngine(svgic.EngineOptions{Workers: 2})
	defer eng.Close()
	sol, err := eng.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Algorithm != "AVG-D" || sol.Components != 2 {
		t.Errorf("solution provenance = %q/%d components, want AVG-D/2", sol.Algorithm, sol.Components)
	}
	wantSol, err := svgic.AVGD(svgic.AVGDOptions{}).Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	want := wantSol.Config
	if d := sol.Report.Weighted() - wantSol.Report.Weighted(); math.Abs(d) > 1e-12 {
		t.Errorf("engine objective differs from AVG-D by %g", d)
	}

	// Manual decompose + per-part solve + merge lands on the same objective.
	parts := make([]*svgic.Configuration, len(subs))
	for i, sub := range subs {
		partSol, err := svgic.AVGD(svgic.AVGDOptions{}).Solve(context.Background(), sub)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = partSol.Config
	}
	merged := svgic.MergeInstanceConfigurations(in.NumUsers(), in.K, parts, origs)
	if err := merged.Validate(in); err != nil {
		t.Fatal(err)
	}
	if d := svgic.Evaluate(in, merged).Weighted() - svgic.Evaluate(in, want).Weighted(); math.Abs(d) > 1e-12 {
		t.Errorf("manual decompose/merge differs from AVG-D by %g", d)
	}

	st := eng.Stats()
	if st.Solves != 1 || st.ComponentsSolved != 2 || st.Workers != 2 {
		t.Errorf("stats = %+v", st)
	}
	if _, err := eng.SolveBatch(context.Background(), []*svgic.Instance{in, in}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.CacheHits == 0 {
		t.Error("repeat batch of one instance produced no cache hits")
	}
}

func TestPublicEngineClosed(t *testing.T) {
	eng := svgic.NewEngine(svgic.EngineOptions{Workers: 1})
	eng.Close()
	if _, err := eng.Solve(context.Background(), engineTestInstance(0)); err != svgic.ErrEngineClosed {
		t.Fatalf("err = %v, want ErrEngineClosed", err)
	}
}
