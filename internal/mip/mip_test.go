package mip

import (
	"math"
	"testing"
	"time"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/graph"
	"github.com/svgic/svgic/internal/stats"
	"github.com/svgic/svgic/internal/utility"
)

// tinyInstance builds a deterministic random instance small enough for
// exhaustive search.
func tinyInstance(seed uint64, n, m, k int) *core.Instance {
	r := stats.NewRand(seed)
	g := graph.ErdosRenyi(n, 0.6, r)
	in := core.NewInstance(g, m, k, 0.5)
	params := utility.Defaults()
	params.Topics = 4
	utility.Populate(in, params, seed+5)
	return in
}

func TestBranchAndBoundMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		in := tinyInstance(seed, 3, 4, 2)
		bf, err := BruteForce(in, 0)
		if err != nil {
			t.Fatalf("seed %d: brute force: %v", seed, err)
		}
		bb, err := Solve(in, Options{Strategy: Primal})
		if err != nil {
			t.Fatalf("seed %d: b&b: %v", seed, err)
		}
		if bb.Status != Optimal {
			t.Fatalf("seed %d: b&b status %v", seed, bb.Status)
		}
		if math.Abs(bb.Objective-bf.Objective) > 1e-6 {
			t.Errorf("seed %d: b&b %.6f != brute force %.6f", seed, bb.Objective, bf.Objective)
		}
		if err := bb.Config.Validate(in); err != nil {
			t.Errorf("seed %d: b&b config invalid: %v", seed, err)
		}
	}
}

func TestAllStrategiesAgree(t *testing.T) {
	in := tinyInstance(7, 3, 4, 2)
	want := -1.0
	for _, s := range []Strategy{Primal, Dual, Concurrent, DetConcurrent, Barrier} {
		res, err := Solve(in, Options{Strategy: s})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Status != Optimal {
			t.Fatalf("%v: status %v", s, res.Status)
		}
		if want < 0 {
			want = res.Objective
		} else if math.Abs(res.Objective-want) > 1e-6 {
			t.Errorf("%v found %.6f, others found %.6f", s, res.Objective, want)
		}
	}
}

func TestWarmStartPruning(t *testing.T) {
	in := tinyInstance(9, 3, 4, 2)
	warm, _, err := core.SolveAVGD(in, core.AVGDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Solve(in, Options{Strategy: Primal})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := Solve(in, Options{Strategy: Primal, WarmStart: warm})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cold.Objective-hot.Objective) > 1e-6 {
		t.Errorf("warm start changed the optimum: %.6f vs %.6f", hot.Objective, cold.Objective)
	}
	if hot.Nodes > cold.Nodes {
		t.Logf("warm start explored more nodes (%d vs %d) — allowed but unusual", hot.Nodes, cold.Nodes)
	}
	// The warm start must also be rejected when invalid.
	bad := core.NewConfiguration(in.NumUsers(), in.K)
	if _, err := Solve(in, Options{WarmStart: bad}); err == nil {
		t.Error("invalid warm start accepted")
	}
}

func TestObjectiveWithinLPBound(t *testing.T) {
	in := tinyInstance(11, 4, 4, 2)
	res, err := Solve(in, Options{Strategy: Barrier})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective > res.Bound+1e-6 {
		t.Errorf("objective %.6f exceeds bound %.6f", res.Objective, res.Bound)
	}
	// The LP-relaxation bound at the root must dominate the integral optimum.
	fm := core.BuildFullModel(in)
	_ = fm
}

func TestTimeLimitAnytime(t *testing.T) {
	in := tinyInstance(13, 4, 5, 2)
	warm, _, err := core.SolveAVGD(in, core.AVGDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(in, Options{Strategy: Primal, TimeLimit: time.Millisecond, WarmStart: warm})
	if err != nil {
		t.Fatal(err)
	}
	// Whatever the status, the incumbent must be valid and bounded by Bound.
	if res.Config == nil {
		t.Fatal("no incumbent under time limit despite warm start")
	}
	if err := res.Config.Validate(in); err != nil {
		t.Errorf("incumbent invalid: %v", err)
	}
	if res.Status == TimeLimit && res.Bound < res.Objective-1e-6 {
		t.Errorf("bound %.6f below incumbent %.6f", res.Bound, res.Objective)
	}
}

func TestNodeLimit(t *testing.T) {
	in := tinyInstance(17, 4, 5, 2)
	res, err := Solve(in, Options{Strategy: Primal, NodeLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != NodeLimit && res.Status != Optimal {
		t.Errorf("status = %v, want node-limit (or optimal if the root was integral)", res.Status)
	}
}

func TestBruteForceTimeLimit(t *testing.T) {
	in := tinyInstance(19, 5, 6, 3)
	res, err := BruteForce(in, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != TimeLimit && res.Status != Optimal {
		t.Errorf("status = %v", res.Status)
	}
}

func TestBruteForcePaperExampleOptimum(t *testing.T) {
	// The running example's published optimum is 10.35 (scaled), i.e.
	// weighted 5.175 at λ=1/2.
	if testing.Short() {
		t.Skip("exhaustive search on the 4-user example is slow")
	}
	in := paperInstance()
	res, err := BruteForce(in, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Skipf("brute force hit the time limit (best %.4f)", res.Objective)
	}
	if math.Abs(res.Objective-5.175) > 1e-9 {
		t.Errorf("optimum = %.6f, want 5.175 (scaled 10.35)", res.Objective)
	}
}

// paperInstance mirrors the running example (duplicated from core's internal
// tests because this package sits beside core).
func paperInstance() *core.Instance {
	g := graph.New(4)
	edges := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 0}, {1, 2}, {2, 0}, {2, 1}, {3, 0}}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	in := core.NewInstance(g, 5, 3, 0.5)
	pref := [][5]float64{
		{0.8, 0.85, 0.1, 0.05, 1.0},
		{0.7, 1.0, 0.15, 0.2, 0.1},
		{0, 0.15, 0.7, 0.6, 0.1},
		{0.1, 0, 0.3, 1.0, 0.95},
	}
	for u, row := range pref {
		for c, p := range row {
			in.SetPref(u, c, p)
		}
	}
	tau := map[[2]int][5]float64{
		{0, 1}: {0.2, 0.05, 0.1, 0, 0.05},
		{0, 2}: {0, 0.05, 0.1, 0, 0.3},
		{0, 3}: {0.2, 0.05, 0.1, 0.05, 0.2},
		{1, 0}: {0.2, 0.05, 0.1, 0.05, 0.05},
		{1, 2}: {0, 0.05, 0.1, 0.2, 0},
		{2, 0}: {0, 0.05, 0.1, 0.05, 0.3},
		{2, 1}: {0.1, 0.05, 0.1, 0.2, 0.05},
		{3, 0}: {0.3, 0.05, 0.05, 0, 0.25},
	}
	for e, row := range tau {
		for c, tval := range row {
			if err := in.SetTau(e[0], e[1], c, tval); err != nil {
				panic(err)
			}
		}
	}
	return in
}

func TestBranchAndBoundProvesPaperOptimum(t *testing.T) {
	// Independent confirmation of Figure 1's optimality (10.35 scaled):
	// brute force checks it by enumeration, branch and bound by LP bounds.
	if testing.Short() {
		t.Skip("B&B on the full example model is slow")
	}
	in := paperInstance()
	warm, _, err := core.SolveAVGD(in, core.AVGDOptions{R: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(in, Options{Strategy: DetConcurrent, TimeLimit: 90 * time.Second, WarmStart: warm})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Skipf("B&B hit its limit (best %.4f, bound %.4f, %d nodes)", res.Objective, res.Bound, res.Nodes)
	}
	if math.Abs(res.Objective-5.175) > 1e-6 {
		t.Errorf("B&B optimum %.6f, want 5.175 (scaled 10.35)", res.Objective)
	}
}
