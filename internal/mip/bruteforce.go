package mip

import (
	"time"

	"github.com/svgic/svgic/internal/core"
)

// BruteForce exhaustively searches all SAVG k-Configurations user by user
// with an optimistic-upper-bound prune, returning the exact optimum. The
// search space is Θ(P(m,k)^n); intended only for validating the
// branch-and-bound solver on tiny instances. A zero timeLimit means no
// limit; on timeout the best configuration found so far is returned with
// Status TimeLimit.
func BruteForce(in *core.Instance, timeLimit time.Duration) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	n, m, k := in.NumUsers(), in.NumItems, in.K
	deadline := time.Time{}
	if timeLimit > 0 {
		deadline = time.Now().Add(timeLimit)
	}
	// Optimistic per-user bound: the best k items assuming every social pair
	// incident to the user realizes BOTH directions of τ. Both directions
	// are needed because the incremental accounting below credits a pair's
	// full PairSocial to the later-placed endpoint.
	ub := make([]float64, n+1)
	for u := n - 1; u >= 0; u-- {
		scores := make([]float64, m)
		for c := 0; c < m; c++ {
			w := (1 - in.Lambda) * in.Pref[u][c]
			for _, v := range in.G.Neighbors(u) {
				w += in.Lambda * in.PairSocial(u, v, c)
			}
			scores[c] = w
		}
		best := make([]float64, 0, k)
		for _, s := range scores {
			best = append(best, s)
		}
		// Select the k largest scores.
		for i := 0; i < k && i < len(best); i++ {
			maxJ := i
			for j := i + 1; j < len(best); j++ {
				if best[j] > best[maxJ] {
					maxJ = j
				}
			}
			best[i], best[maxJ] = best[maxJ], best[i]
			ub[u] += best[i]
		}
		ub[u] += ub[u+1]
	}
	conf := core.NewConfiguration(n, k)
	res := Result{Status: Optimal, Objective: -1}
	aP := in.PrefCoef(nil)

	// marginal returns the objective gain of giving user u item c at slot s
	// against the partial configuration (users < u fully assigned, u's
	// earlier slots assigned).
	marginal := func(u, c, s int) float64 {
		g := aP[u][c]
		for _, v := range in.G.Neighbors(u) {
			if v < u && conf.Assign[v][s] == c {
				g += in.Lambda * in.PairSocial(u, v, c)
			}
		}
		return g
	}

	// Per-user taken-item sets: the no-duplication constraint is per user.
	used := make([][]bool, n)
	for u := range used {
		used[u] = make([]bool, m)
	}
	var cur float64
	timedOut := false

	var perUser func(u int) // assigns all of user u then recurses
	var perSlot func(u, s int, acc float64)
	perSlot = func(u, s int, acc float64) {
		if timedOut {
			return
		}
		if s == k {
			prev := cur
			cur += acc
			perUser(u + 1)
			cur = prev
			return
		}
		for c := 0; c < m; c++ {
			if used[u][c] {
				continue
			}
			used[u][c] = true
			conf.Assign[u][s] = c
			perSlot(u, s+1, acc+marginal(u, c, s))
			conf.Assign[u][s] = core.Unassigned
			used[u][c] = false
		}
	}
	perUser = func(u int) {
		if timedOut {
			return
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			timedOut = true
			return
		}
		if u == n {
			if cur > res.Objective {
				res.Objective = cur
				res.Config = conf.Clone()
			}
			return
		}
		if cur+ub[u] <= res.Objective+1e-12 {
			return // even the optimistic completion cannot beat the incumbent
		}
		perSlot(u, 0, 0)
	}
	perUser(0)
	if timedOut {
		res.Status = TimeLimit
	}
	if res.Config != nil {
		// Re-evaluate to keep the reported objective free of accumulation
		// error.
		res.Objective = core.Evaluate(in, res.Config).Weighted()
		res.Bound = res.Objective
	}
	return res, nil
}
