// Package mip implements the exact integer-programming substrate of the
// SVGIC library: a branch-and-bound solver over the paper's full per-slot IP
// model (Section 3.3), playing the role Gurobi plays in the paper's "IP"
// baseline, plus an exhaustive search used to validate it.
//
// Five search strategies mirror the Gurobi method sweep of the paper's
// Figure 9(a). Gurobi's LP-method knobs do not transfer to a from-scratch
// solver, so the sweep is mapped onto the corresponding branch-and-bound
// degrees of freedom (node selection and branching rule), which produce the
// same qualitative picture: different anytime behaviour, identical final
// optimum:
//
//	IP-Primal  -> depth-first search, most-fractional branching
//	IP-Dual    -> depth-first search, max-objective-coefficient branching
//	IP-C       -> alternating DFS/best-bound ("concurrent"), most-fractional
//	IP-DC      -> alternating DFS/best-bound, max-objective-coefficient
//	IP-Barrier -> best-bound search, most-fractional branching
package mip

import (
	"container/heap"
	"context"
	"fmt"
	"time"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/lp"
)

// Strategy selects the branch-and-bound search behaviour.
type Strategy int

// Strategies (see the package comment for the Gurobi-sweep mapping).
const (
	Primal Strategy = iota
	Dual
	Concurrent
	DetConcurrent
	Barrier
)

func (s Strategy) String() string {
	switch s {
	case Primal:
		return "IP-Primal"
	case Dual:
		return "IP-Dual"
	case Concurrent:
		return "IP-C"
	case DetConcurrent:
		return "IP-DC"
	case Barrier:
		return "IP-Barrier"
	}
	return "IP-?"
}

// Status reports how a solve ended.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	TimeLimit
	NodeLimit
	Infeasible
	Canceled
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case TimeLimit:
		return "time-limit"
	case NodeLimit:
		return "node-limit"
	case Infeasible:
		return "infeasible"
	case Canceled:
		return "canceled"
	}
	return "unknown"
}

// Options configures a solve.
type Options struct {
	Strategy  Strategy
	TimeLimit time.Duration // 0 = unlimited
	NodeLimit int           // 0 = unlimited
	// WarmStart seeds the incumbent (typically an AVG-D solution); nil starts
	// from scratch.
	WarmStart *core.Configuration
}

// Result is the outcome of a solve. Objective is the exact (re-evaluated)
// value of Config; Bound is the best remaining LP bound, so
// Objective ≤ OPT ≤ max(Objective, Bound).
type Result struct {
	Status    Status
	Config    *core.Configuration
	Objective float64
	Bound     float64
	Nodes     int
}

const intEps = 1e-6

type node struct {
	fixes []fix
	bound float64
	depth int
}

type fix struct {
	v   int
	one bool
}

type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].bound > h[j].bound }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Solve runs branch and bound on the full SVGIC IP for the instance.
func Solve(in *core.Instance, opts Options) (Result, error) {
	return SolveCtx(context.Background(), in, opts)
}

// SolveCtx runs branch and bound under a context: the node loop polls ctx
// between nodes (on top of the wall-clock TimeLimit), so an engine deadline
// or a disconnected client stops the search at node granularity. On
// cancellation the Result carries the incumbent found so far with Status
// Canceled, and the context's error is returned.
func SolveCtx(ctx context.Context, in *core.Instance, opts Options) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{Status: Canceled}, err
	}
	fm := core.BuildFullModel(in)
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}

	res := Result{Status: Optimal, Objective: -1}
	if opts.WarmStart != nil {
		if err := opts.WarmStart.Validate(in); err != nil {
			return Result{}, fmt.Errorf("mip: warm start invalid: %w", err)
		}
		res.Config = opts.WarmStart.Clone()
		res.Objective = core.Evaluate(in, res.Config).Weighted()
	}

	rootSol, ok, err := solveNode(fm, nil)
	if err != nil {
		return Result{}, err
	}
	if !ok {
		res.Status = Infeasible
		return res, nil
	}
	res.Bound = rootSol.Objective
	if leafUpdate(in, fm, rootSol, &res) {
		return res, nil // LP root already integral
	}

	dfs := []*node{{bound: rootSol.Objective}}
	best := &nodeHeap{}
	useBestFirst := func(iter int) bool {
		switch opts.Strategy {
		case Primal, Dual:
			return false
		case Barrier:
			return true
		default: // Concurrent, DetConcurrent: alternate
			return iter%2 == 1
		}
	}
	branchMaxCoef := opts.Strategy == Dual || opts.Strategy == DetConcurrent

	for iter := 0; ; iter++ {
		var nd *node
		if useBestFirst(iter) && best.Len() > 0 {
			nd = heap.Pop(best).(*node)
		} else if len(dfs) > 0 {
			nd = dfs[len(dfs)-1]
			dfs = dfs[:len(dfs)-1]
		} else if best.Len() > 0 {
			nd = heap.Pop(best).(*node)
		} else {
			break // search exhausted: incumbent is optimal
		}
		if nd.bound <= res.Objective+intEps {
			continue
		}
		if err := ctx.Err(); err != nil {
			res.Status = Canceled
			res.Bound = maxBound(nd.bound, dfs, best)
			return res, err
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.Status = TimeLimit
			res.Bound = maxBound(nd.bound, dfs, best)
			return res, nil
		}
		res.Nodes++
		if opts.NodeLimit > 0 && res.Nodes > opts.NodeLimit {
			res.Status = NodeLimit
			res.Bound = maxBound(nd.bound, dfs, best)
			return res, nil
		}
		sol, feasible, err := solveNode(fm, nd.fixes)
		if err != nil {
			return Result{}, err
		}
		if !feasible || sol.Objective <= res.Objective+intEps {
			continue
		}
		if leafUpdate(in, fm, sol, &res) {
			continue
		}
		bv := pickBranchVar(fm, sol, branchMaxCoef)
		if bv < 0 {
			continue // numerically integral but not strictly: handled by leafUpdate
		}
		for _, one := range []bool{true, false} {
			child := &node{
				fixes: append(append(make([]fix, 0, len(nd.fixes)+1), nd.fixes...), fix{v: bv, one: one}),
				bound: sol.Objective,
				depth: nd.depth + 1,
			}
			if useBestFirst(iter) {
				heap.Push(best, child)
			} else {
				dfs = append(dfs, child)
			}
		}
	}
	if res.Config == nil {
		res.Status = Infeasible
		return res, nil
	}
	res.Bound = res.Objective
	return res, nil
}

func maxBound(cur float64, dfs []*node, best *nodeHeap) float64 {
	b := cur
	for _, n := range dfs {
		if n.bound > b {
			b = n.bound
		}
	}
	for _, n := range *best {
		if n.bound > b {
			b = n.bound
		}
	}
	return b
}

// solveNode solves the node LP: the base model plus the branching fixes.
func solveNode(fm *core.FullModel, fixes []fix) (lp.Solution, bool, error) {
	base := fm.P
	p := &lp.Problem{NumVars: base.NumVars, Objective: base.Objective}
	p.Rows = make([]lp.Constraint, len(base.Rows), len(base.Rows)+len(fixes))
	copy(p.Rows, base.Rows)
	for _, f := range fixes {
		if f.one {
			p.MustAddConstraint([]int{f.v}, []float64{1}, lp.GE, 1)
		} else {
			p.MustAddConstraint([]int{f.v}, []float64{1}, lp.LE, 0)
		}
	}
	sol, err := lp.SolveSimplex(p)
	if err != nil {
		return sol, false, err
	}
	switch sol.Status {
	case lp.Optimal:
		return sol, true, nil
	case lp.Infeasible:
		return sol, false, nil
	default:
		return sol, false, fmt.Errorf("mip: node LP status %v", sol.Status)
	}
}

// leafUpdate decodes an (integral) node solution into a configuration; if the
// x block is integral it evaluates it exactly and updates the incumbent,
// returning true.
func leafUpdate(in *core.Instance, fm *core.FullModel, sol lp.Solution, res *Result) bool {
	for v := 0; v < fm.NumXVars(); v++ {
		x := sol.X[v]
		if x > intEps && x < 1-intEps {
			return false
		}
	}
	conf := fm.ConfigurationFromX(sol.X)
	if err := conf.Validate(in); err != nil {
		return false // rounding artefact; keep branching
	}
	if obj := core.Evaluate(in, conf).Weighted(); obj > res.Objective {
		res.Objective = obj
		res.Config = conf
	}
	return true
}

// pickBranchVar returns the fractional x variable to branch on, or −1.
func pickBranchVar(fm *core.FullModel, sol lp.Solution, maxCoef bool) int {
	bestV := -1
	bestScore := -1.0
	for v := 0; v < fm.NumXVars(); v++ {
		x := sol.X[v]
		if x <= intEps || x >= 1-intEps {
			continue
		}
		var score float64
		if maxCoef {
			score = fm.P.Objective[v] + 1e-9
		} else {
			score = 0.5 - abs(x-0.5)
		}
		if score > bestScore {
			bestScore = score
			bestV = v
		}
	}
	return bestV
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
