package telemetry

import (
	"math"
	"testing"
	"time"
)

func TestParseObjective(t *testing.T) {
	o, err := ParseObjective("p99 solve < 250ms over 5m")
	if err != nil {
		t.Fatal(err)
	}
	want := Objective{Series: "solve", Quantile: 0.99, Threshold: 250 * time.Millisecond, Window: 5 * time.Minute}
	if o != want {
		t.Fatalf("got %+v, want %+v", o, want)
	}
	if math.Abs(o.Budget()-0.01) > 1e-12 {
		t.Fatalf("Budget = %g, want 0.01", o.Budget())
	}
	if o.FastWindow() != 25*time.Second {
		t.Fatalf("FastWindow = %v, want 25s", o.FastWindow())
	}
	if o.String() != "p99 solve < 250ms over 5m0s" {
		t.Fatalf("String = %q", o.String())
	}

	// Fractional quantiles and per-algorithm series parse too.
	o, err = ParseObjective("p99.9 algo:IP < 1s over 10m")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(o.Quantile-0.999) > 1e-12 || o.Series != "algo:IP" {
		t.Fatalf("got %+v", o)
	}
}

func TestParseObjectiveRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"p99 solve < 250ms",              // no window
		"p99 solve > 250ms over 5m",      // wrong comparator
		"p99 solve < 250ms within 5m",    // wrong keyword
		"99 solve < 250ms over 5m",       // missing p
		"pXX solve < 250ms over 5m",      // unparseable percentile
		"p0 solve < 250ms over 5m",       // quantile at 0
		"p100 solve < 250ms over 5m",     // quantile at 1
		"p99 solve < banana over 5m",     // unparseable threshold
		"p99 solve < -250ms over 5m",     // negative threshold
		"p99 solve < 250ms over -5m",     // negative window
		"p99 solve < 250ms over 5ms",     // window too small for a fast window
		"p99 solve more words < 1s over", // field count
	} {
		if _, err := ParseObjective(bad); err == nil {
			t.Errorf("ParseObjective(%q) accepted, want error", bad)
		}
	}
}

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives("p99 solve < 250ms over 5m, p50 session_create < 100ms over 1m,")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("got %d objectives, want 2", len(objs))
	}
	if objs[1].Series != "session_create" || objs[1].Quantile != 0.5 {
		t.Fatalf("second objective = %+v", objs[1])
	}
	if _, err := ParseObjectives("p99 solve < 250ms over 5m, nonsense"); err == nil {
		t.Fatal("malformed item must fail the whole list")
	}
}

func TestTrackerBasics(t *testing.T) {
	clk := NewManualClock(time.Unix(1000, 0))
	tr := NewTracker(TrackerOptions{Clock: clk, Width: 12 * time.Second, Buckets: 12})
	if tr.Quantile("solve", 0.5) != 0 {
		t.Fatal("unseen series must read 0")
	}
	tr.Record("solve", 40*time.Millisecond)
	tr.Record("solve", 60*time.Millisecond)
	tr.Record("repair", 10*time.Millisecond)
	if p50 := tr.Quantile("solve", 0.5); p50 < 40*time.Millisecond || p50 > 60*time.Millisecond {
		t.Fatalf("solve p50 = %v, want within [40ms, 60ms]", p50)
	}
	names := tr.Names()
	if len(names) != 2 || names[0] != "repair" || names[1] != "solve" {
		t.Fatalf("Names = %v", names)
	}
	snap := tr.Snapshot()
	if snap["solve"].Count != 2 || snap["repair"].Count != 1 {
		t.Fatalf("Snapshot = %+v", snap)
	}
	// Samples age out with the clock; empty series drop out of the snapshot.
	clk.Advance(time.Minute)
	if len(tr.Snapshot()) != 0 {
		t.Fatal("expired series must drop out of the snapshot")
	}
}

func TestTrackerEnsureWidens(t *testing.T) {
	clk := NewManualClock(time.Unix(1000, 0))
	tr := NewTracker(TrackerOptions{Clock: clk, Width: 12 * time.Second, Buckets: 12})
	tr.Ensure("solve", time.Minute)
	if w := tr.Window("solve"); w == nil || w.Width() != time.Minute {
		t.Fatalf("Ensure must widen past the tracker default, got %v", w.Width())
	}
	// Ensure never narrows, and the default width is the floor.
	tr.Ensure("solve", time.Second)
	if w := tr.Window("solve"); w.Width() != time.Minute {
		t.Fatalf("Ensure narrowed the window to %v", w.Width())
	}
	tr.Ensure("batch", time.Millisecond)
	if w := tr.Window("batch"); w.Width() != 12*time.Second {
		t.Fatalf("Ensure below the default must use the default, got %v", w.Width())
	}
}
