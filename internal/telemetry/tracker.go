package telemetry

import (
	"sort"
	"sync"
	"time"
)

// TrackerOptions configures a Tracker.
type TrackerOptions struct {
	// Clock supplies time to every series window (and to the Controller
	// built over the tracker). Nil means SystemClock.
	Clock Clock
	// Width is the default sliding span of lazily-created series. Zero means
	// DefaultWindowWidth. Ensure widens individual series past it.
	Width time.Duration
	// Buckets is the rotation granularity per series. Zero means
	// DefaultWindowBuckets.
	Buckets int
	// Compression is the per-bucket digest compression. Zero means
	// DefaultCompression.
	Compression float64
}

// Tracker is the named-series registry: one sliding Window per latency
// series, created lazily on first Record. The server records its route
// series ("solve", "session_create", ...), the engine hook records
// per-algorithm series ("algo:AVG-D", ...) and the session hook records
// "repair". All methods are safe for concurrent use; reads of a series that
// never recorded report zero.
type Tracker struct {
	clock       Clock
	width       time.Duration
	buckets     int
	compression float64

	mu     sync.RWMutex
	series map[string]*Window
}

// NewTracker returns an empty tracker.
func NewTracker(o TrackerOptions) *Tracker {
	if o.Clock == nil {
		o.Clock = SystemClock{}
	}
	if o.Width <= 0 {
		o.Width = DefaultWindowWidth
	}
	if o.Buckets <= 0 {
		o.Buckets = DefaultWindowBuckets
	}
	return &Tracker{
		clock:       o.Clock,
		width:       o.Width,
		buckets:     o.Buckets,
		compression: o.Compression,
		series:      make(map[string]*Window),
	}
}

// Clock returns the tracker's clock (shared with the Controller).
func (t *Tracker) Clock() Clock { return t.clock }

// Now is shorthand for Clock().Now().
func (t *Tracker) Now() time.Time { return t.clock.Now() }

// window returns the named series, creating it at width when absent.
func (t *Tracker) window(name string, width time.Duration) *Window {
	t.mu.RLock()
	w := t.series[name]
	t.mu.RUnlock()
	if w != nil {
		return w
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if w = t.series[name]; w == nil {
		w = NewWindow(WindowOptions{Width: width, Buckets: t.buckets, Compression: t.compression, Clock: t.clock})
		t.series[name] = w
	}
	return w
}

// Ensure pre-creates a series wide enough to cover minWidth — the Controller
// calls it for every objective's series, so an SLO window never exceeds the
// span its series retains. Widening replaces (and empties) a narrower
// existing window; Ensure runs at construction time, before traffic.
func (t *Tracker) Ensure(name string, minWidth time.Duration) {
	if minWidth < t.width {
		minWidth = t.width
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if w := t.series[name]; w != nil && w.Width() >= minWidth {
		return
	}
	t.series[name] = NewWindow(WindowOptions{Width: minWidth, Buckets: t.buckets, Compression: t.compression, Clock: t.clock})
}

// Record adds one latency sample to the named series.
func (t *Tracker) Record(name string, d time.Duration) {
	t.window(name, t.width).Record(d.Seconds())
}

// Window returns the named series, or nil when it never recorded.
func (t *Tracker) Window(name string) *Window {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.series[name]
}

// Quantile estimates the q-quantile of the named series over its full
// window; 0 when the series never recorded (callers treat that as "no
// observation", e.g. the Retry-After derivation falls back to its
// configured hint).
func (t *Tracker) Quantile(name string, q float64) time.Duration {
	w := t.Window(name)
	if w == nil {
		return 0
	}
	return secondsToDuration(w.Quantile(q))
}

// Names returns every live series name, sorted.
func (t *Tracker) Names() []string {
	t.mu.RLock()
	names := make([]string, 0, len(t.series))
	for name := range t.series {
		names = append(names, name)
	}
	t.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Snapshot summarizes every series that has samples in its window.
func (t *Tracker) Snapshot() map[string]WindowSnapshot {
	out := make(map[string]WindowSnapshot)
	for _, name := range t.Names() {
		if w := t.Window(name); w != nil {
			if snap := w.Snapshot(); snap.Count > 0 {
				out[name] = snap
			}
		}
	}
	return out
}
