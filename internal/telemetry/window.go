package telemetry

import (
	"sync"
	"time"
)

// Defaults for WindowOptions zero values.
const (
	DefaultWindowWidth   = 5 * time.Minute
	DefaultWindowBuckets = 12
)

// WindowOptions configures a Window.
type WindowOptions struct {
	// Width is the total sliding span a full-window read covers. Zero means
	// DefaultWindowWidth.
	Width time.Duration
	// Buckets is the rotation granularity: the window is a ring of
	// Width/Buckets-wide digests, so old samples expire one bucket at a
	// time. Zero means DefaultWindowBuckets.
	Buckets int
	// Compression is the per-bucket digest compression. Zero means
	// DefaultCompression.
	Compression float64
	// Clock supplies time. Nil means SystemClock.
	Clock Clock
}

// Window is a sliding-time-window quantile estimator: a ring of per-bucket
// t-digests keyed by the absolute bucket number floor(now/bucketWidth).
// There is no rotation goroutine — a bucket whose stored number no longer
// matches its slot is stale and is reset on the next write to that slot,
// and reads only merge buckets whose numbers fall inside the queried span.
//
// Clock-jump policy (pinned by tests): after a backwards jump, writes land
// in the (reset) bucket for the new, earlier time and reads ignore buckets
// stamped in the future; after a forward jump past the width, every old
// bucket falls outside the span and the window reads as empty. Both jumps
// therefore discard history rather than inventing it.
//
// All methods are safe for concurrent use.
type Window struct {
	clock       Clock
	width       time.Duration
	bucketWidth time.Duration
	compression float64

	mu    sync.Mutex
	slots []bucket
}

// bucket is one ring slot: the absolute bucket number it currently holds
// (-1 = never written) and that bucket's digest.
type bucket struct {
	seq int64
	d   *Digest
}

// WindowSnapshot is one window's summary for stats endpoints. Sum is the
// windowed total in seconds (the _sum sample of the /metrics histogram).
type WindowSnapshot struct {
	Count              uint64
	Sum                float64
	P50, P90, P99, Max time.Duration
}

// NewWindow returns an empty window.
func NewWindow(o WindowOptions) *Window {
	if o.Width <= 0 {
		o.Width = DefaultWindowWidth
	}
	if o.Buckets <= 0 {
		o.Buckets = DefaultWindowBuckets
	}
	if o.Clock == nil {
		o.Clock = SystemClock{}
	}
	w := &Window{
		clock:       o.Clock,
		width:       o.Width,
		bucketWidth: o.Width / time.Duration(o.Buckets),
		compression: o.Compression,
		// One extra slot beyond Buckets, so a full-width read still has a
		// distinct slot for every covered bucket while the current (partial)
		// bucket is being written.
		slots: make([]bucket, o.Buckets+1),
	}
	if w.bucketWidth <= 0 {
		w.bucketWidth = time.Nanosecond
	}
	for i := range w.slots {
		w.slots[i] = bucket{seq: -1, d: NewDigest(o.Compression)}
	}
	return w
}

// Width reports the full sliding span.
func (w *Window) Width() time.Duration { return w.width }

// seqAt maps a wall time to its absolute bucket number.
func (w *Window) seqAt(t time.Time) int64 {
	return t.UnixNano() / int64(w.bucketWidth)
}

// Record adds one sample (in seconds) to the current bucket.
func (w *Window) Record(v float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	seq := w.seqAt(w.clock.Now())
	s := &w.slots[mod(seq, len(w.slots))]
	if s.seq != seq {
		s.seq = seq
		s.d.Reset()
	}
	s.d.Add(v)
}

// merged combines the buckets covering the trailing `over` span (clamped to
// the window width; ≤0 means the full width) into one digest. Caller holds
// no lock.
func (w *Window) merged(over time.Duration) *Digest {
	if over <= 0 || over > w.width {
		over = w.width
	}
	n := int64((over + w.bucketWidth - 1) / w.bucketWidth)
	out := NewDigest(w.compression)
	w.mu.Lock()
	defer w.mu.Unlock()
	seq := w.seqAt(w.clock.Now())
	for i := range w.slots {
		s := &w.slots[i]
		if s.seq < 0 || s.seq > seq || s.seq <= seq-n {
			continue
		}
		out.Merge(s.d)
	}
	return out
}

// QuantileOver estimates the q-quantile (in seconds) over the trailing
// `over` span; over ≤ 0 means the full width. Empty span reports 0.
func (w *Window) QuantileOver(over time.Duration, q float64) float64 {
	return w.merged(over).Quantile(q)
}

// Quantile estimates the q-quantile over the full window.
func (w *Window) Quantile(q float64) float64 { return w.QuantileOver(0, q) }

// CDFOver estimates the fraction of samples ≤ x (seconds) over the trailing
// `over` span.
func (w *Window) CDFOver(over time.Duration, x float64) float64 {
	return w.merged(over).CDF(x)
}

// CountOver reports the samples inside the trailing `over` span.
func (w *Window) CountOver(over time.Duration) uint64 {
	return w.merged(over).Count()
}

// Count reports the samples inside the full window.
func (w *Window) Count() uint64 { return w.CountOver(0) }

// Snapshot summarizes the full window for stats endpoints.
func (w *Window) Snapshot() WindowSnapshot {
	d := w.merged(0)
	return WindowSnapshot{
		Count: d.Count(),
		Sum:   d.Sum(),
		P50:   secondsToDuration(d.Quantile(0.5)),
		P90:   secondsToDuration(d.Quantile(0.9)),
		P99:   secondsToDuration(d.Quantile(0.99)),
		Max:   secondsToDuration(d.Max()),
	}
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// mod is the non-negative remainder, so bucket numbers before the epoch
// (tests running a ManualClock near time zero) still map into the ring.
func mod(x int64, n int) int {
	m := x % int64(n)
	if m < 0 {
		m += int64(n)
	}
	return int(m)
}
