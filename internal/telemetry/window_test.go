package telemetry

import (
	"testing"
	"time"
)

// testWindow builds a 12s/12-bucket window on a manual clock aligned to a
// bucket boundary, so tests reason in whole 1s buckets.
func testWindow() (*Window, *ManualClock) {
	clk := NewManualClock(time.Unix(1000, 0))
	w := NewWindow(WindowOptions{Width: 12 * time.Second, Buckets: 12, Clock: clk})
	return w, clk
}

func TestWindowRotation(t *testing.T) {
	w, clk := testWindow()
	if w.Count() != 0 || w.Quantile(0.5) != 0 {
		t.Fatal("fresh window must read empty")
	}
	w.Record(1)
	w.Record(1)
	w.Record(1)
	if w.Count() != 3 {
		t.Fatalf("Count = %d, want 3", w.Count())
	}

	clk.Advance(time.Second)
	w.Record(2)
	if w.Count() != 4 {
		t.Fatalf("Count after rotation = %d, want 4", w.Count())
	}
	// A one-bucket span sees only the current bucket.
	if got := w.CountOver(time.Second); got != 1 {
		t.Fatalf("CountOver(1s) = %d, want 1", got)
	}
	if got := w.CountOver(2 * time.Second); got != 4 {
		t.Fatalf("CountOver(2s) = %d, want 4", got)
	}

	// Advance until the first bucket ages out of the full span: samples at
	// bucket b are visible while now is within buckets (b, b+12].
	clk.Advance(11 * time.Second) // first bucket now 12 buckets old
	if got := w.Count(); got != 1 {
		t.Fatalf("Count after first bucket expired = %d, want 1", got)
	}
	clk.Advance(time.Second)
	if got := w.Count(); got != 0 {
		t.Fatalf("Count after all buckets expired = %d, want 0", got)
	}
}

func TestWindowQuantilesAcrossBuckets(t *testing.T) {
	w, clk := testWindow()
	for i := 0; i < 50; i++ {
		w.Record(0.1)
	}
	clk.Advance(time.Second)
	for i := 0; i < 50; i++ {
		w.Record(0.9)
	}
	// Both buckets in view: the median sits between the two plateaus and the
	// p99 on the high one.
	if p99 := w.Quantile(0.99); p99 < 0.85 {
		t.Fatalf("p99 over both buckets = %g, want ≈ 0.9", p99)
	}
	if p10 := w.Quantile(0.10); p10 > 0.15 {
		t.Fatalf("p10 over both buckets = %g, want ≈ 0.1", p10)
	}
	// After the low bucket expires, the whole distribution is the plateau.
	clk.Advance(11 * time.Second)
	if p50 := w.Quantile(0.5); p50 != 0.9 {
		t.Fatalf("p50 after low bucket expired = %g, want 0.9", p50)
	}
}

// TestWindowStaleSlotReuse pins the lazy-rotation invariant: a write one
// full ring-length later lands in the same slot, which must forget its old
// samples rather than merge epochs.
func TestWindowStaleSlotReuse(t *testing.T) {
	w, clk := testWindow()
	w.Record(0.1)
	// 13 buckets = ring length: same slot index, different bucket number.
	clk.Advance(13 * time.Second)
	w.Record(0.9)
	if got := w.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1 (stale slot must reset on reuse)", got)
	}
	if p50 := w.Quantile(0.5); p50 != 0.9 {
		t.Fatalf("p50 = %g, want 0.9 (old epoch leaked)", p50)
	}
}

func TestWindowBackwardClockJump(t *testing.T) {
	w, clk := testWindow()
	w.Record(0.5)
	w.Record(0.5)
	// Jump 5s backwards: the old samples are now stamped in the future and
	// reads must not see them — history is discarded, not invented.
	clk.Advance(-5 * time.Second)
	if got := w.Count(); got != 0 {
		t.Fatalf("Count after backward jump = %d, want 0 (future buckets ignored)", got)
	}
	// Writes at the earlier time work normally.
	w.Record(0.7)
	if got := w.Count(); got != 1 {
		t.Fatalf("Count after post-jump write = %d, want 1", got)
	}
	if p50 := w.Quantile(0.5); p50 != 0.7 {
		t.Fatalf("p50 after post-jump write = %g, want 0.7", p50)
	}
	// Walking forward again re-enters the epoch the pre-jump samples were
	// written in; the slot-number check must still reset them on write.
	clk.Advance(5 * time.Second)
	w.Record(0.9)
	if got := w.Count(); got != 4 {
		// Pre-jump samples in not-yet-reused slots become visible again once
		// the clock re-passes them (discard happens on WRITE, not on read),
		// so the view is 2 pre-jump + 0.7 + 0.9.
		t.Fatalf("Count after returning forward = %d, want 4", got)
	}
}

func TestWindowForwardClockJump(t *testing.T) {
	w, clk := testWindow()
	for i := 0; i < 10; i++ {
		w.Record(0.5)
	}
	// A jump past the full width expires everything at once.
	clk.Advance(time.Hour)
	if got := w.Count(); got != 0 {
		t.Fatalf("Count after forward jump = %d, want 0", got)
	}
	if p50 := w.Quantile(0.5); p50 != 0 {
		t.Fatalf("p50 after forward jump = %g, want 0 (empty)", p50)
	}
}

func TestWindowDefaults(t *testing.T) {
	w := NewWindow(WindowOptions{})
	if w.Width() != DefaultWindowWidth {
		t.Fatalf("default width = %v, want %v", w.Width(), DefaultWindowWidth)
	}
	w.Record(1) // system clock path must not panic
	if w.Count() != 1 {
		t.Fatal("system-clock window must record")
	}
}

func TestWindowSnapshot(t *testing.T) {
	w, _ := testWindow()
	for i := 1; i <= 100; i++ {
		w.Record(float64(i) / 1000) // 1ms..100ms
	}
	snap := w.Snapshot()
	if snap.Count != 100 {
		t.Fatalf("snapshot Count = %d, want 100", snap.Count)
	}
	if snap.Max != 100*time.Millisecond {
		t.Fatalf("snapshot Max = %v, want 100ms", snap.Max)
	}
	if snap.P50 < 40*time.Millisecond || snap.P50 > 60*time.Millisecond {
		t.Fatalf("snapshot P50 = %v, want ≈ 50ms", snap.P50)
	}
	if snap.P99 < 95*time.Millisecond || snap.P99 > 100*time.Millisecond {
		t.Fatalf("snapshot P99 = %v, want ≈ 99ms", snap.P99)
	}
}
