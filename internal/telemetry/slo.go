package telemetry

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Objective is one declarative latency SLO: "this quantile of this series
// stays under this threshold, measured over this window". The canonical text
// form — what ParseObjective accepts and String re-emits, and what labels
// the /metrics families — reads
//
//	p99 solve < 250ms over 5m
//
// Series names are the tracker's: the route series ("solve", "batch",
// "evaluate", "session_create", "session_events", "session_get", "repair")
// and the per-algorithm series ("algo:AVG-D", "algo:IP", ...). An objective
// over a series that never records simply never burns.
type Objective struct {
	// Series is the tracker series the objective watches.
	Series string
	// Quantile is the guarded quantile in (0,1), e.g. 0.99. Its complement
	// (1 − Quantile) is the error budget: the fraction of requests allowed
	// over the threshold.
	Quantile float64
	// Threshold is the latency bound at that quantile.
	Threshold time.Duration
	// Window is the slow burn-rate window (the SLO's measurement span). The
	// fast window is Window/FastWindowDivisor.
	Window time.Duration
}

// FastWindowDivisor derives the fast burn window from the slow one, the
// multi-window convention: the slow window decides whether budget is really
// burning, the fast window confirms it is STILL burning (and clears quickly
// once the bad traffic stops).
const FastWindowDivisor = 12

// FastWindow is the objective's fast burn-rate window.
func (o Objective) FastWindow() time.Duration {
	return o.Window / FastWindowDivisor
}

// Budget is the error budget: the allowed fraction of requests over the
// threshold (1 − Quantile).
func (o Objective) Budget() float64 { return 1 - o.Quantile }

// String is the canonical text form, also the objective's label on
// /metrics and in /v1/stats.
func (o Objective) String() string {
	return fmt.Sprintf("p%s %s < %s over %s",
		strconv.FormatFloat(o.Quantile*100, 'f', -1, 64), o.Series, o.Threshold, o.Window)
}

// Validate rejects objectives the checker cannot evaluate.
func (o Objective) Validate() error {
	if o.Series == "" {
		return fmt.Errorf("slo: empty series")
	}
	if o.Quantile <= 0 || o.Quantile >= 1 {
		return fmt.Errorf("slo %q: quantile %g outside (0,1)", o.String(), o.Quantile)
	}
	if o.Threshold <= 0 {
		return fmt.Errorf("slo %q: threshold must be positive", o.String())
	}
	if o.Window < FastWindowDivisor*time.Millisecond {
		return fmt.Errorf("slo %q: window too small (the fast window, window/%d, would be under 1ms)",
			o.String(), FastWindowDivisor)
	}
	return nil
}

// ParseObjective parses the canonical form: exactly six fields,
//
//	p<percentile> <series> < <duration> over <duration>
//
// e.g. "p99 solve < 250ms over 5m" or "p99.9 algo:IP < 1s over 10m".
func ParseObjective(s string) (Objective, error) {
	f := strings.Fields(s)
	if len(f) != 6 || f[2] != "<" || f[4] != "over" {
		return Objective{}, fmt.Errorf("slo %q: want \"p<pct> <series> < <duration> over <duration>\"", s)
	}
	if !strings.HasPrefix(f[0], "p") {
		return Objective{}, fmt.Errorf("slo %q: quantile %q must start with 'p'", s, f[0])
	}
	pct, err := strconv.ParseFloat(f[0][1:], 64)
	if err != nil {
		return Objective{}, fmt.Errorf("slo %q: quantile %q: %v", s, f[0], err)
	}
	threshold, err := time.ParseDuration(f[3])
	if err != nil {
		return Objective{}, fmt.Errorf("slo %q: threshold %q: %v", s, f[3], err)
	}
	window, err := time.ParseDuration(f[5])
	if err != nil {
		return Objective{}, fmt.Errorf("slo %q: window %q: %v", s, f[5], err)
	}
	o := Objective{Series: f[1], Quantile: pct / 100, Threshold: threshold, Window: window}
	if err := o.Validate(); err != nil {
		return Objective{}, err
	}
	return o, nil
}

// ParseObjectives parses a comma-separated list of objectives (durations
// never contain commas, so the split is unambiguous). Empty items are
// skipped, so a trailing comma is harmless.
func ParseObjectives(s string) ([]Objective, error) {
	var out []Objective
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		o, err := ParseObjective(item)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}
