package telemetry

import (
	"math"
	"sort"
)

// DefaultCompression is the digest compression used when NewDigest is given
// a non-positive value. At 128 the sketch holds at most a few hundred
// centroids and keeps rank error well inside 1% at the tails — the accuracy
// bound the unit tests pin against exact sorted quantiles.
const DefaultCompression = 128

// bufferFactor sizes the unsorted insertion buffer relative to the
// compression: larger buffers amortize the sort+merge pass over more Adds.
const bufferFactor = 4

// centroid is one cluster of the sketch: the weighted mean of its points.
type centroid struct {
	mean   float64
	weight float64
}

// Digest is a merging t-digest (Dunning's variant): an adaptive-resolution
// quantile sketch that keeps tail clusters small (accurate p99s) and middle
// clusters large (bounded memory), with deterministic behaviour — no
// randomness anywhere, so identical Add sequences yield identical sketches.
//
// Adds go to an insertion buffer; when it fills, the buffer is sorted and
// merged with the existing centroids under the k1 scale function
// k(q) = (δ/2π)·asin(2q−1), which bounds each cluster's width by the local
// quantile density. Reads (Quantile, CDF) flush the buffer first.
//
// A Digest is not safe for concurrent use; Window serializes access.
type Digest struct {
	compression float64
	centroids   []centroid
	buf         []float64
	pending     []centroid // centroids absorbed via Merge, awaiting a compact
	count       float64
	sum         float64
	min, max    float64
}

// NewDigest returns an empty digest. Non-positive compression means
// DefaultCompression.
func NewDigest(compression float64) *Digest {
	if compression <= 0 {
		compression = DefaultCompression
	}
	return &Digest{
		compression: compression,
		buf:         make([]float64, 0, int(bufferFactor*compression)),
		min:         math.Inf(1),
		max:         math.Inf(-1),
	}
}

// Add inserts one sample. NaN and ±Inf are ignored: a poisoned sample must
// not destroy every future quantile.
func (d *Digest) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	d.buf = append(d.buf, x)
	d.count++
	d.sum += x
	if x < d.min {
		d.min = x
	}
	if x > d.max {
		d.max = x
	}
	if len(d.buf) == cap(d.buf) {
		d.compact()
	}
}

// Merge absorbs o's clusters into d (o is flushed but not modified
// otherwise). Window uses it to combine per-bucket digests into one read
// view.
func (d *Digest) Merge(o *Digest) {
	if o == nil {
		return
	}
	o.compact()
	d.pending = append(d.pending, o.centroids...)
	for _, c := range o.centroids {
		d.count += c.weight
	}
	d.sum += o.sum
	if o.min < d.min {
		d.min = o.min
	}
	if o.max > d.max {
		d.max = o.max
	}
}

// Count reports the number of samples absorbed.
func (d *Digest) Count() uint64 { return uint64(d.count + 0.5) }

// Sum reports the sum of all absorbed samples.
func (d *Digest) Sum() float64 { return d.sum }

// Min reports the smallest absorbed sample (0 when empty).
func (d *Digest) Min() float64 {
	if d.count == 0 {
		return 0
	}
	return d.min
}

// Max reports the largest absorbed sample (0 when empty).
func (d *Digest) Max() float64 {
	if d.count == 0 {
		return 0
	}
	return d.max
}

// Reset empties the digest in place, keeping its buffers.
func (d *Digest) Reset() {
	d.centroids = d.centroids[:0]
	d.buf = d.buf[:0]
	d.pending = d.pending[:0]
	d.count, d.sum = 0, 0
	d.min, d.max = math.Inf(1), math.Inf(-1)
}

// compact merges the insertion buffer and any pending merged clusters into
// the centroid list under the k1 size bound.
func (d *Digest) compact() {
	if len(d.buf) == 0 && len(d.pending) == 0 {
		return
	}
	pts := make([]centroid, 0, len(d.centroids)+len(d.pending)+len(d.buf))
	pts = append(pts, d.centroids...)
	pts = append(pts, d.pending...)
	for _, x := range d.buf {
		pts = append(pts, centroid{mean: x, weight: 1})
	}
	d.buf = d.buf[:0]
	d.pending = d.pending[:0]
	sort.Slice(pts, func(i, j int) bool { return pts[i].mean < pts[j].mean })

	total := 0.0
	for _, c := range pts {
		total += c.weight
	}
	// k1 scale: k(q) = (δ/2π)·asin(2q−1). A cluster may span [q0, q1] only
	// while k(q1) − k(q0) ≤ 1, which keeps tail clusters tiny and middle
	// clusters wide.
	norm := d.compression / (2 * math.Pi)
	k := func(q float64) float64 { return norm * math.Asin(clamp(2*q-1, -1, 1)) }

	out := make([]centroid, 0, len(d.centroids)+1)
	cur := pts[0]
	wSoFar := 0.0
	kLeft := k(0)
	for _, c := range pts[1:] {
		q1 := (wSoFar + cur.weight + c.weight) / total
		if k(q1)-kLeft <= 1 {
			cur.weight += c.weight
			cur.mean += (c.mean - cur.mean) * c.weight / cur.weight
			continue
		}
		out = append(out, cur)
		wSoFar += cur.weight
		kLeft = k(wSoFar / total)
		cur = c
	}
	d.centroids = append(out, cur)
}

// Quantile estimates the q-quantile (q in [0,1]) by interpolating between
// centroid means, clamped to the observed min/max. An empty digest reports
// 0 — callers treat "no data" as "no latency observed".
func (d *Digest) Quantile(q float64) float64 {
	d.compact()
	if d.count == 0 {
		return 0
	}
	if q <= 0 {
		return d.min
	}
	if q >= 1 {
		return d.max
	}
	cs := d.centroids
	if len(cs) == 1 {
		return cs[0].mean
	}
	target := q * d.count
	cum := 0.0
	for i := range cs {
		mid := cum + cs[i].weight/2
		if target < mid {
			if i == 0 {
				// Inside the first half-cluster: interpolate up from min.
				return d.min + (cs[0].mean-d.min)*(target/mid)
			}
			prevMid := cum - cs[i-1].weight/2
			f := (target - prevMid) / (mid - prevMid)
			return cs[i-1].mean + f*(cs[i].mean-cs[i-1].mean)
		}
		cum += cs[i].weight
	}
	// Inside the last half-cluster: interpolate out to max.
	last := cs[len(cs)-1]
	lastMid := d.count - last.weight/2
	f := clamp((target-lastMid)/(d.count-lastMid), 0, 1)
	return last.mean + f*(d.max-last.mean)
}

// CDF estimates the fraction of samples ≤ x — the inverse of Quantile, and
// what the burn-rate checker reads: 1 − CDF(threshold) is the bad-request
// fraction. An empty digest reports 0.
func (d *Digest) CDF(x float64) float64 {
	d.compact()
	if d.count == 0 {
		return 0
	}
	if x < d.min {
		return 0
	}
	if x >= d.max {
		return 1
	}
	cs := d.centroids
	if len(cs) == 1 {
		// x is in [min, max) with a single cluster: uniform within the span.
		return (x - d.min) / (d.max - d.min)
	}
	if x < cs[0].mean {
		if cs[0].mean == d.min {
			return 0
		}
		return (x - d.min) / (cs[0].mean - d.min) * (cs[0].weight / 2) / d.count
	}
	cum := 0.0
	for i := 0; i+1 < len(cs); i++ {
		left, right := cs[i], cs[i+1]
		if x < right.mean {
			// Singleton centroids are point masses sitting exactly at their
			// mean — none of their weight spreads into the gap. This keeps
			// the CDF exact on discrete latency plateaus (small windows where
			// every centroid is a single sample), which the burn-rate
			// breach-boundary tests rely on.
			lo := cum + left.weight/2
			if left.weight == 1 {
				lo = cum + left.weight
			}
			hi := cum + left.weight + right.weight/2
			if right.weight == 1 {
				hi = cum + left.weight
			}
			if right.mean == left.mean {
				return hi / d.count
			}
			f := (x - left.mean) / (right.mean - left.mean)
			return (lo + f*(hi-lo)) / d.count
		}
		cum += left.weight
	}
	last := cs[len(cs)-1]
	if d.max == last.mean {
		return 1
	}
	lastMid := d.count - last.weight/2
	f := (x - last.mean) / (d.max - last.mean)
	return (lastMid + f*(d.count-lastMid)) / d.count
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
