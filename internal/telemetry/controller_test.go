package telemetry

import (
	"testing"
	"time"
)

// testController builds a controller on a manual clock over a single p50
// objective with a 50% error budget — chosen because small sample counts
// keep every digest centroid a singleton, making the burn rate EXACT and
// the breach boundary deterministic:
//
//	p50 solve < 100ms over 60s   (fast window 5s, budget 0.5)
//
// One good (50ms) + one bad (200ms) sample burn at exactly 1.0.
func testController(t *testing.T) (*Controller, *Tracker, *ManualClock) {
	t.Helper()
	clk := NewManualClock(time.Unix(10000, 0))
	tr := NewTracker(TrackerOptions{Clock: clk, Width: time.Minute, Buckets: 12})
	obj, err := ParseObjective("p50 solve < 100ms over 60s")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(ControllerOptions{
		Tracker:       tr,
		Objectives:    []Objective{obj},
		EvalEvery:     time.Second,
		EscalateAfter: 10 * time.Second,
		MinDwell:      5 * time.Second,
		ShedFactor:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, tr, clk
}

func objState(t *testing.T, c *Controller) ObjectiveStatus {
	t.Helper()
	snap := c.Snapshot()
	if len(snap.Objectives) != 1 {
		t.Fatalf("want 1 objective, got %d", len(snap.Objectives))
	}
	return snap.Objectives[0]
}

// TestBurnBreachBoundary pins the exact boundary: burn == 1.0 breaches,
// burn just under stays ok, and empty windows never breach.
func TestBurnBreachBoundary(t *testing.T) {
	c, tr, _ := testController(t)

	// Empty windows: burn 0, state ok.
	c.Evaluate()
	if st := objState(t, c); st.State != "ok" || st.FastBurn != 0 || st.SlowBurn != 0 {
		t.Fatalf("empty windows: %+v, want ok with zero burn", st)
	}
	if c.Level() != LevelNormal {
		t.Fatal("empty windows must stay LevelNormal")
	}

	// Exactly on budget: 1 of 2 samples over the threshold consumes exactly
	// the 50% budget — burn 1.0, and the boundary itself breaches.
	tr.Record("solve", 50*time.Millisecond)
	tr.Record("solve", 200*time.Millisecond)
	c.Evaluate()
	st := objState(t, c)
	if st.FastBurn != 1 || st.SlowBurn != 1 {
		t.Fatalf("burn = %g/%g, want exactly 1.0/1.0", st.FastBurn, st.SlowBurn)
	}
	if st.State != "breached" {
		t.Fatalf("state at burn == 1.0 is %q, want breached (boundary breaches)", st.State)
	}
	if c.Level() != LevelDegrade {
		t.Fatalf("level = %v, want degrade on breach", c.Level())
	}
}

// TestBurnJustUnderBoundary: 1 bad of 3 samples burns 2/3 < 1 — no breach.
func TestBurnJustUnderBoundary(t *testing.T) {
	c, tr, _ := testController(t)
	tr.Record("solve", 50*time.Millisecond)
	tr.Record("solve", 99*time.Millisecond)
	tr.Record("solve", 200*time.Millisecond)
	c.Evaluate()
	st := objState(t, c)
	if st.SlowBurn >= 1 {
		t.Fatalf("slow burn = %g, want exactly 2/3", st.SlowBurn)
	}
	if st.State != "ok" || c.Level() != LevelNormal {
		t.Fatalf("state %q level %v, want ok/normal under the boundary", st.State, c.Level())
	}
}

// TestBreachRecovery drives the full objective state machine: breached →
// recovering (fast window clears while the slow one still burns) → ok (slow
// window clears too).
func TestBreachRecovery(t *testing.T) {
	c, tr, clk := testController(t)
	tr.Record("solve", 50*time.Millisecond)
	tr.Record("solve", 200*time.Millisecond)
	c.Evaluate()
	if st := objState(t, c); st.State != "breached" {
		t.Fatalf("state = %q, want breached", st.State)
	}

	// 6s later the 5s fast window has rotated past the bad sample but the
	// 60s slow window still holds it: recovering, not ok — degradation must
	// hold while the budget replenishes (the anti-flap rule).
	clk.Advance(6 * time.Second)
	c.Evaluate()
	st := objState(t, c)
	if st.FastBurn != 0 || st.SlowBurn != 1 {
		t.Fatalf("burn after fast rotation = %g/%g, want 0/1", st.FastBurn, st.SlowBurn)
	}
	if st.State != "recovering" {
		t.Fatalf("state = %q, want recovering", st.State)
	}
	if c.Level() != LevelDegrade {
		t.Fatal("recovering must hold LevelDegrade")
	}

	// Re-breach from recovering when the fast window burns again.
	tr.Record("solve", 50*time.Millisecond)
	tr.Record("solve", 300*time.Millisecond)
	c.Evaluate()
	if st := objState(t, c); st.State != "breached" {
		t.Fatalf("state = %q, want re-breached", st.State)
	}

	// Once everything ages out of the slow window, recovery completes.
	clk.Advance(2 * time.Minute)
	c.Evaluate()
	if st := objState(t, c); st.State != "ok" {
		t.Fatalf("state = %q, want ok after slow window cleared", st.State)
	}
}

// TestLadderEscalationAndRelaxation walks Normal → Degrade → Shed (breach
// persisting past EscalateAfter) and back down one dwelled rung at a time,
// with the transition count — the anti-flap budget — exactly 4.
func TestLadderEscalationAndRelaxation(t *testing.T) {
	c, tr, clk := testController(t)
	bad := func() {
		tr.Record("solve", 50*time.Millisecond)
		tr.Record("solve", 200*time.Millisecond)
	}
	bad()
	c.Evaluate()
	if c.Level() != LevelDegrade {
		t.Fatalf("level = %v, want degrade", c.Level())
	}
	if got := c.EffectiveCap(16); got != 16 {
		t.Fatalf("EffectiveCap while degrading = %d, want 16 (degrade does not shed)", got)
	}

	// Breach persists but EscalateAfter (10s) has not elapsed: still degrade.
	clk.Advance(4 * time.Second)
	bad()
	c.Evaluate()
	if c.Level() != LevelDegrade {
		t.Fatalf("level before EscalateAfter = %v, want degrade", c.Level())
	}

	// Past EscalateAfter with the breach still live: shed.
	clk.Advance(7 * time.Second)
	bad()
	c.Evaluate()
	if c.Level() != LevelShed {
		t.Fatalf("level after EscalateAfter = %v, want shed", c.Level())
	}
	if got := c.EffectiveCap(16); got != 8 {
		t.Fatalf("EffectiveCap while shedding = %d, want 8", got)
	}
	if got := c.EffectiveCap(1); got != 1 {
		t.Fatalf("EffectiveCap floor = %d, want 1", got)
	}

	// Bad traffic stops. The fast window clears, the breach downgrades to
	// recovering — but de-escalation waits out MinDwell on the shed rung.
	clk.Advance(4 * time.Second)
	c.Evaluate()
	if c.Level() != LevelShed {
		t.Fatal("de-escalation must dwell before leaving shed")
	}
	clk.Advance(2 * time.Second)
	c.Evaluate()
	if c.Level() != LevelDegrade {
		t.Fatalf("level = %v, want degrade one dwell after the breach cleared", c.Level())
	}

	// Degrade holds while the slow window replenishes, then normal.
	clk.Advance(2 * time.Minute)
	c.Evaluate()
	if c.Level() != LevelNormal {
		t.Fatalf("level = %v, want normal after full recovery", c.Level())
	}
	if got := c.Transitions(); got != 4 {
		t.Fatalf("transitions = %d, want exactly 4 (no flapping)", got)
	}
}

// TestLazyEvaluation pins the no-goroutine contract: state only moves when
// a read crosses the EvalEvery cadence.
func TestLazyEvaluation(t *testing.T) {
	c, tr, clk := testController(t)
	if c.Level() != LevelNormal {
		t.Fatal("want normal before any traffic")
	}
	tr.Record("solve", 50*time.Millisecond)
	tr.Record("solve", 200*time.Millisecond)
	// The first Level() evaluated at construction-time clock; within the
	// cadence nothing recomputes.
	if c.Level() != LevelNormal {
		t.Fatal("within the eval cadence the stale level must hold")
	}
	clk.Advance(time.Second)
	if c.Level() != LevelDegrade {
		t.Fatal("crossing the eval cadence must recompute")
	}
}

func TestNoteDegradedCounters(t *testing.T) {
	c, _, _ := testController(t)
	c.NoteDegraded("ip")
	c.NoteDegraded("ip")
	c.NoteDegraded("sdp")
	snap := c.Snapshot()
	if snap.Degraded["ip"] != 2 || snap.Degraded["sdp"] != 1 {
		t.Fatalf("Degraded = %v", snap.Degraded)
	}
}

func TestControllerValidation(t *testing.T) {
	tr := NewTracker(TrackerOptions{Clock: NewManualClock(time.Unix(0, 0))})
	if _, err := NewController(ControllerOptions{Objectives: []Objective{{}}}); err == nil {
		t.Fatal("nil tracker must be rejected")
	}
	if _, err := NewController(ControllerOptions{Tracker: tr}); err == nil {
		t.Fatal("empty objectives must be rejected")
	}
	if _, err := NewController(ControllerOptions{Tracker: tr, Objectives: []Objective{{Series: "solve"}}}); err == nil {
		t.Fatal("invalid objective must be rejected")
	}
	// The controller sizes each objective's series to its slow window.
	obj, _ := ParseObjective("p99 solve < 100ms over 10m")
	if _, err := NewController(ControllerOptions{Tracker: tr, Objectives: []Objective{obj}}); err != nil {
		t.Fatal(err)
	}
	if w := tr.Window("solve"); w == nil || w.Width() < 10*time.Minute {
		t.Fatal("controller must widen the objective's series to its window")
	}
}
