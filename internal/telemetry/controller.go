package telemetry

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Level is the admission controller's rung on the degradation ladder.
type Level int32

const (
	// LevelNormal: no objective is burning; serve as configured.
	LevelNormal Level = iota
	// LevelDegrade: at least one objective is burning (or still replenishing
	// its budget); requests for expensive solvers are routed to the cheap
	// fallback and marked degraded:true.
	LevelDegrade
	// LevelShed: a breach persisted past EscalateAfter despite degradation;
	// the effective in-flight cap is tightened on top of degrading.
	LevelShed
)

// String reports the level the way /v1/stats and /metrics label it.
func (l Level) String() string {
	switch l {
	case LevelNormal:
		return "normal"
	case LevelDegrade:
		return "degrade"
	case LevelShed:
		return "shed"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ObjectiveState is one objective's position in the breach state machine.
type ObjectiveState int32

const (
	// StateOK: not burning.
	StateOK ObjectiveState = iota
	// StateRecovering: the fast window stopped burning but the slow window
	// still holds the breach — budget is replenishing. Holding degradation
	// through this state is the anti-flap mechanism: recovery completes only
	// when the bad samples age out of the slow window.
	StateRecovering
	// StateBreached: both windows burn at ≥ 1× budget.
	StateBreached
)

// String reports the state the way /v1/stats and /metrics label it.
func (s ObjectiveState) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateRecovering:
		return "recovering"
	case StateBreached:
		return "breached"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Defaults for ControllerOptions zero values.
const (
	DefaultEvalEvery     = 250 * time.Millisecond
	DefaultEscalateAfter = 10 * time.Second
	DefaultMinDwell      = 5 * time.Second
	DefaultShedFactor    = 0.5
)

// ControllerOptions configures a Controller.
type ControllerOptions struct {
	// Tracker supplies the latency series and the clock. Required.
	Tracker *Tracker
	// Objectives are the SLOs the controller enforces. At least one.
	Objectives []Objective
	// EvalEvery is the re-evaluation cadence: state is recomputed lazily on
	// the first read after the clock passes it (no goroutine, no timer).
	// Zero means DefaultEvalEvery.
	EvalEvery time.Duration
	// EscalateAfter is how long a breach may persist (degradation already
	// active) before the controller escalates to shedding. Zero means
	// DefaultEscalateAfter.
	EscalateAfter time.Duration
	// MinDwell is the minimum time spent on a rung before de-escalating one
	// rung (escalation is never dwelled — protecting the SLO beats ladder
	// hygiene). Bounds flapping together with StateRecovering. Zero means
	// DefaultMinDwell.
	MinDwell time.Duration
	// ShedFactor is the fraction of the configured in-flight cap left while
	// shedding, e.g. 0.5 halves it (floor 1). Zero means DefaultShedFactor.
	ShedFactor float64
}

// objectiveState is one objective's live checker state.
type objectiveState struct {
	obj      Objective
	state    ObjectiveState
	fastBurn float64
	slowBurn float64
	observed float64 // current Quantile over the slow window, seconds
	samples  uint64  // samples in the slow window
}

// ObjectiveStatus is one objective's externally visible state, for
// /v1/stats and /metrics.
type ObjectiveStatus struct {
	Name        string  `json:"name"`
	Series      string  `json:"series"`
	Quantile    float64 `json:"quantile"`
	ThresholdMS float64 `json:"thresholdMs"`
	WindowMS    float64 `json:"windowMs"`
	State       string  `json:"state"`
	FastBurn    float64 `json:"fastBurn"`
	SlowBurn    float64 `json:"slowBurn"`
	ObservedMS  float64 `json:"observedMs"`
	Samples     uint64  `json:"samples"`
}

// ControllerSnapshot is the controller's externally visible state.
type ControllerSnapshot struct {
	Level       string            `json:"level"`
	Transitions uint64            `json:"transitions"`
	Degraded    map[string]uint64 `json:"degradedByAlgo,omitempty"`
	Objectives  []ObjectiveStatus `json:"objectives"`
}

// Controller evaluates the objectives' burn rates against their tracker
// series and walks the degradation ladder Normal → Degrade → Shed (and back
// down, one dwelled rung at a time).
//
// Burn rate is the classic budget-consumption ratio: with budget b = 1 − q
// and bad = the fraction of windowed samples over the threshold, burn =
// bad/b — burn 1.0 consumes exactly the budget, so ≥ 1.0 in BOTH windows is
// a breach (the boundary itself breaches). The fast window (window/12)
// confirms the burn is current; once it clears, the objective holds in
// StateRecovering until the slow window clears too, which keeps degradation
// active while the budget replenishes instead of flapping.
//
// Evaluation is lazy and clock-driven: any read (Level, EffectiveCap,
// Snapshot) past the EvalEvery cadence recomputes first. There is no
// background goroutine, so tests on a ManualClock control every step and an
// idle server pays nothing.
type Controller struct {
	tracker       *Tracker
	clock         Clock
	evalEvery     time.Duration
	escalateAfter time.Duration
	minDwell      time.Duration
	shedFactor    float64

	mu          sync.Mutex
	objectives  []objectiveState
	level       Level
	levelSince  time.Time
	breachSince time.Time // zero when no objective is breached
	nextEval    time.Time
	transitions uint64
	degraded    map[string]uint64
}

// NewController validates the objectives and sizes their tracker series.
func NewController(o ControllerOptions) (*Controller, error) {
	if o.Tracker == nil {
		return nil, errors.New("telemetry: ControllerOptions.Tracker is required")
	}
	if len(o.Objectives) == 0 {
		return nil, errors.New("telemetry: ControllerOptions.Objectives is empty")
	}
	if o.EvalEvery <= 0 {
		o.EvalEvery = DefaultEvalEvery
	}
	if o.EscalateAfter <= 0 {
		o.EscalateAfter = DefaultEscalateAfter
	}
	if o.MinDwell <= 0 {
		o.MinDwell = DefaultMinDwell
	}
	if o.ShedFactor <= 0 || o.ShedFactor > 1 {
		o.ShedFactor = DefaultShedFactor
	}
	c := &Controller{
		tracker:       o.Tracker,
		clock:         o.Tracker.Clock(),
		evalEvery:     o.EvalEvery,
		escalateAfter: o.EscalateAfter,
		minDwell:      o.MinDwell,
		shedFactor:    o.ShedFactor,
		objectives:    make([]objectiveState, len(o.Objectives)),
		levelSince:    o.Tracker.Clock().Now(),
		degraded:      make(map[string]uint64),
	}
	for i, obj := range o.Objectives {
		if err := obj.Validate(); err != nil {
			return nil, err
		}
		// The series must retain at least the slow window, or the burn
		// would silently read a truncated span.
		o.Tracker.Ensure(obj.Series, obj.Window)
		c.objectives[i] = objectiveState{obj: obj}
	}
	return c, nil
}

// poll recomputes state if the evaluation cadence has passed.
func (c *Controller) poll() {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if now.Before(c.nextEval) {
		return
	}
	c.nextEval = now.Add(c.evalEvery)
	c.evaluateLocked(now)
}

// Evaluate forces a re-evaluation now, regardless of cadence. Tests use it
// to step the state machine deterministically.
func (c *Controller) Evaluate() {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextEval = now.Add(c.evalEvery)
	c.evaluateLocked(now)
}

// burnRates reads one objective's fast/slow burn plus observed quantile.
func (c *Controller) burnRates(o Objective) (fast, slow, observed float64, samples uint64) {
	w := c.tracker.Window(o.Series)
	if w == nil {
		return 0, 0, 0, 0
	}
	threshold := o.Threshold.Seconds()
	budget := o.Budget()
	burnOver := func(span time.Duration) float64 {
		d := w.merged(span)
		if d.Count() == 0 {
			return 0
		}
		return (1 - d.CDF(threshold)) / budget
	}
	slowDigest := w.merged(o.Window)
	samples = slowDigest.Count()
	if samples > 0 {
		slow = (1 - slowDigest.CDF(threshold)) / budget
		observed = slowDigest.Quantile(o.Quantile)
	}
	fast = burnOver(o.FastWindow())
	return fast, slow, observed, samples
}

// evaluateLocked recomputes every objective's burn and state, then walks the
// ladder at most one rung. Caller holds c.mu.
func (c *Controller) evaluateLocked(now time.Time) {
	anyBreached, anyActive := false, false
	for i := range c.objectives {
		st := &c.objectives[i]
		st.fastBurn, st.slowBurn, st.observed, st.samples = c.burnRates(st.obj)
		// Breach on the boundary: burn == 1.0 consumes the whole budget.
		switch st.state {
		case StateOK:
			if st.fastBurn >= 1 && st.slowBurn >= 1 {
				st.state = StateBreached
			}
		case StateBreached:
			if st.fastBurn < 1 {
				st.state = StateRecovering
			}
		}
		// Recovering resolves in the same pass: both windows clear together
		// when history ages out at once (e.g. across an idle gap).
		if st.state == StateRecovering {
			switch {
			case st.fastBurn >= 1:
				st.state = StateBreached
			case st.slowBurn < 1:
				st.state = StateOK
			}
		}
		anyBreached = anyBreached || st.state == StateBreached
		anyActive = anyActive || st.state != StateOK
	}

	if anyBreached {
		if c.breachSince.IsZero() {
			c.breachSince = now
		}
	} else {
		c.breachSince = time.Time{}
	}

	// One rung per evaluation. Escalation is immediate (protect the SLO);
	// de-escalation waits out MinDwell on the current rung.
	switch c.level {
	case LevelNormal:
		if anyBreached {
			c.setLevel(LevelDegrade, now)
		}
	case LevelDegrade:
		switch {
		case anyBreached && now.Sub(c.breachSince) >= c.escalateAfter:
			c.setLevel(LevelShed, now)
		case !anyActive && now.Sub(c.levelSince) >= c.minDwell:
			c.setLevel(LevelNormal, now)
		}
	case LevelShed:
		if !anyBreached && now.Sub(c.levelSince) >= c.minDwell {
			c.setLevel(LevelDegrade, now)
		}
	}
}

func (c *Controller) setLevel(l Level, now time.Time) {
	c.level = l
	c.levelSince = now
	c.transitions++
}

// Level reports the current ladder rung, re-evaluating first when the
// cadence has passed.
func (c *Controller) Level() Level {
	c.poll()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// EffectiveCap maps the configured in-flight cap to the rung's effective
// one: shedding tightens it to ShedFactor × base (floor 1); every other
// rung leaves it alone.
func (c *Controller) EffectiveCap(base int) int {
	if c.Level() != LevelShed {
		return base
	}
	eff := int(float64(base) * c.shedFactor)
	if eff < 1 {
		eff = 1
	}
	return eff
}

// NoteDegraded counts one request routed away from the named algorithm
// while degraded.
func (c *Controller) NoteDegraded(algo string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.degraded[algo]++
}

// Transitions reports the ladder transition count (the anti-flap budget the
// slo-smoke lane asserts against).
func (c *Controller) Transitions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.transitions
}

// Snapshot reports the controller's externally visible state, re-evaluating
// first when the cadence has passed.
func (c *Controller) Snapshot() ControllerSnapshot {
	c.poll()
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := ControllerSnapshot{
		Level:       c.level.String(),
		Transitions: c.transitions,
		Objectives:  make([]ObjectiveStatus, len(c.objectives)),
	}
	if len(c.degraded) > 0 {
		snap.Degraded = make(map[string]uint64, len(c.degraded))
		for algo, n := range c.degraded {
			snap.Degraded[algo] = n
		}
	}
	for i := range c.objectives {
		st := &c.objectives[i]
		snap.Objectives[i] = ObjectiveStatus{
			Name:        st.obj.String(),
			Series:      st.obj.Series,
			Quantile:    st.obj.Quantile,
			ThresholdMS: float64(st.obj.Threshold.Microseconds()) / 1000,
			WindowMS:    float64(st.obj.Window.Microseconds()) / 1000,
			State:       st.state.String(),
			FastBurn:    st.fastBurn,
			SlowBurn:    st.slowBurn,
			ObservedMS:  st.observed * 1000,
			Samples:     st.samples,
		}
	}
	return snap
}
