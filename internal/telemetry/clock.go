// Package telemetry is svgicd's in-server measurement layer: t-digest
// quantile sketches over sliding time windows (per route and per algorithm),
// declarative latency SLOs with a multi-window burn-rate checker, and an
// admission controller that feeds SLO state back into serving — degrade
// (route expensive solvers to a cheap fallback) before shedding (tighten the
// effective in-flight cap), relaxing both as the burn recovers.
//
// Everything in the package reads time through the Clock interface, never
// time.Now directly, so every window rotation and burn-rate computation is
// deterministically testable on a ManualClock with zero sleeps. The package
// holds no goroutines and no timers: windows rotate lazily on access and the
// Controller re-evaluates lazily when its clock passes the evaluation
// cadence, so an idle server pays nothing and a test controls every step.
//
// See docs/OBSERVABILITY.md for the metric families, the SLO grammar and the
// degradation ladder.
package telemetry

import (
	"sync"
	"time"
)

// Clock abstracts time for every telemetry computation. Production code uses
// SystemClock; tests use ManualClock and advance it explicitly.
type Clock interface {
	Now() time.Time
}

// SystemClock is the production Clock: time.Now.
type SystemClock struct{}

// Now implements Clock.
func (SystemClock) Now() time.Time { return time.Now() }

// ManualClock is a Clock that only moves when told to. It is safe for
// concurrent use, so a test can advance it while the code under test reads
// it from other goroutines.
type ManualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewManualClock returns a ManualClock frozen at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (d may be negative to simulate a
// backwards jump) and returns the new time.
func (c *ManualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// Set jumps the clock to t.
func (c *ManualClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}
