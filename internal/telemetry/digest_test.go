package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// rankError reports how far est sits from the q-quantile of xs in RANK
// space: 0 when est lands inside the rank interval [frac(<est), frac(≤est)]
// (duplicates make it an interval), otherwise the distance to it.
func rankError(xs []float64, est float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	lo := float64(sort.SearchFloat64s(sorted, est)) / float64(len(sorted))
	hi := float64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > est })) / float64(len(sorted))
	if q < lo {
		return lo - q
	}
	if q > hi {
		return q - hi
	}
	return 0
}

// adversarialDistributions are the shapes that break naive sketches: heavy
// tails (tail clusters must stay small), extreme bimodality with outliers,
// constants and near-constants (degenerate spans), pre-sorted input (worst
// case for buffer-order-sensitive sketches) and duplicate-heavy discrete
// data (rank intervals, not points).
func adversarialDistributions(n int) map[string][]float64 {
	rng := rand.New(rand.NewSource(42))
	out := make(map[string][]float64)

	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = rng.Float64()
	}
	out["uniform"] = uniform

	lognormal := make([]float64, n)
	for i := range lognormal {
		lognormal[i] = math.Exp(rng.NormFloat64() * 1.5)
	}
	out["lognormal"] = lognormal

	pareto := make([]float64, n)
	for i := range pareto {
		pareto[i] = math.Pow(1-rng.Float64(), -1/1.1) // α=1.1: very heavy tail
	}
	out["pareto"] = pareto

	bimodal := make([]float64, n)
	for i := range bimodal {
		if rng.Float64() < 0.95 {
			bimodal[i] = 0.001 + 0.0001*rng.NormFloat64()
		} else {
			bimodal[i] = 10 + rng.Float64()*100 // far-outlier mode
		}
	}
	out["bimodal-outliers"] = bimodal

	sorted := make([]float64, n)
	for i := range sorted {
		sorted[i] = float64(i) * float64(i) // sorted AND convex
	}
	out["sorted-input"] = sorted

	discrete := make([]float64, n)
	for i := range discrete {
		discrete[i] = float64(rng.Intn(5)) // 5 distinct values, huge plateaus
	}
	out["discrete-duplicates"] = discrete

	constant := make([]float64, n)
	for i := range constant {
		constant[i] = 3.14
	}
	out["constant"] = constant

	return out
}

// TestDigestAccuracy pins the satellite acceptance bound: p50 and p99 (and
// the deeper p99.9) within 1% rank error of exact sorted quantiles, on every
// adversarial distribution.
func TestDigestAccuracy(t *testing.T) {
	for name, xs := range adversarialDistributions(20000) {
		d := NewDigest(0)
		for _, x := range xs {
			d.Add(x)
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			est := d.Quantile(q)
			if err := rankError(xs, est, q); err > 0.01 {
				t.Errorf("%s: p%g estimate %g off by %.4f in rank (want ≤ 0.01)", name, q*100, est, err)
			}
		}
	}
}

// TestDigestCDFAccuracy checks the inverse direction: CDF(x) within 1% of
// the exact empirical fraction ≤ x at several probe points.
func TestDigestCDFAccuracy(t *testing.T) {
	for name, xs := range adversarialDistributions(20000) {
		d := NewDigest(0)
		for _, x := range xs {
			d.Add(x)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			probe := sorted[int(q*float64(len(sorted)))]
			got := d.CDF(probe)
			lo := float64(sort.SearchFloat64s(sorted, probe)) / float64(len(sorted))
			hi := float64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > probe })) / float64(len(sorted))
			if got < lo-0.01 || got > hi+0.01 {
				t.Errorf("%s: CDF(%g) = %.4f outside [%.4f, %.4f] ± 0.01", name, probe, got, lo, hi)
			}
		}
	}
}

// TestDigestSingletonCDFExact pins the point-mass refinement the burn-rate
// boundary semantics rely on: with few samples every centroid is a
// singleton, and the CDF between two distinct samples is exactly the
// fraction at or below the left one — no interpolation smear.
func TestDigestSingletonCDFExact(t *testing.T) {
	d := NewDigest(0)
	d.Add(0.05)
	d.Add(0.2)
	if got := d.CDF(0.1); got != 0.5 {
		t.Fatalf("CDF(0.1) over {0.05, 0.2} = %v, want exactly 0.5", got)
	}
	d.Add(0.099)
	if got := d.CDF(0.1); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("CDF(0.1) over {0.05, 0.099, 0.2} = %v, want exactly 2/3", got)
	}
	// At a sample point the sample itself counts as ≤ x.
	if got := d.CDF(0.099); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("CDF(0.099) = %v, want exactly 2/3", got)
	}
}

func TestDigestCountSumMinMax(t *testing.T) {
	d := NewDigest(0)
	if d.Count() != 0 || d.Sum() != 0 || d.Min() != 0 || d.Max() != 0 || d.Quantile(0.5) != 0 || d.CDF(1) != 0 {
		t.Fatal("empty digest must read as zero everywhere")
	}
	for i := 1; i <= 1000; i++ {
		d.Add(float64(i))
	}
	if d.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", d.Count())
	}
	if d.Sum() != 500500 {
		t.Fatalf("Sum = %g, want 500500", d.Sum())
	}
	if d.Min() != 1 || d.Max() != 1000 {
		t.Fatalf("Min/Max = %g/%g, want 1/1000", d.Min(), d.Max())
	}
	if got := d.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %g, want min", got)
	}
	if got := d.Quantile(1); got != 1000 {
		t.Fatalf("Quantile(1) = %g, want max", got)
	}
	// NaN/Inf must be ignored, not poison the sketch.
	d.Add(math.NaN())
	d.Add(math.Inf(1))
	if d.Count() != 1000 || d.Max() != 1000 {
		t.Fatalf("NaN/Inf leaked into the digest: count=%d max=%g", d.Count(), d.Max())
	}
}

// TestDigestMerge checks that merging two digests approximates the digest
// of the concatenated stream within the same rank bound.
func TestDigestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var all []float64
	a, b := NewDigest(0), NewDigest(0)
	for i := 0; i < 10000; i++ {
		x := math.Exp(rng.NormFloat64())
		all = append(all, x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count() != 10000 {
		t.Fatalf("merged Count = %d, want 10000", a.Count())
	}
	for _, q := range []float64{0.5, 0.99} {
		if err := rankError(all, a.Quantile(q), q); err > 0.01 {
			t.Errorf("merged p%g off by %.4f in rank (want ≤ 0.01)", q*100, err)
		}
	}
}

func TestDigestReset(t *testing.T) {
	d := NewDigest(0)
	for i := 0; i < 100; i++ {
		d.Add(float64(i))
	}
	d.Reset()
	if d.Count() != 0 || d.Sum() != 0 || d.Quantile(0.5) != 0 {
		t.Fatal("Reset must empty the digest")
	}
	d.Add(5)
	if d.Count() != 1 || d.Quantile(0.5) != 5 {
		t.Fatal("digest must be reusable after Reset")
	}
}
