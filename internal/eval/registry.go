package eval

import (
	"fmt"
	"sort"
)

// Runner is one experiment entry point.
type Runner struct {
	ID    string
	Paper string // which paper table/figure it reproduces
	Fn    func(Config) ([]*Table, error)
}

// Registry lists every experiment in the paper's presentation order.
func Registry() []Runner {
	return []Runner{
		{"example", "Tables 7-9 / Example 5", RunningExample},
		{"fig3n", "Figure 3(a)(b)", Fig3UtilityVsN},
		{"fig3m", "Figure 3(c)(d)", Fig3UtilityVsM},
		{"fig3k", "Figure 3(e)(f)", Fig3UtilityVsK},
		{"fig4", "Figure 4", Fig4Lambda},
		{"fig5", "Figure 5", Fig5LargeN},
		{"fig6", "Figure 6", Fig6Datasets},
		{"fig7", "Figure 7", Fig7InputModels},
		{"fig8", "Figure 8(a)(b)", Fig8Scalability},
		{"fig9a", "Figure 9(a)", Fig9aMIPStrategies},
		{"fig9b", "Figure 9(b)", Fig9bAblation},
		{"fig10", "Figure 10(a)-(i)", Fig10SubgroupMetrics},
		{"fig11", "Figure 11", Fig11CaseStudy},
		{"fig12", "Figure 12(a)-(d)", Fig12RSensitivity},
		{"fig13", "Figure 13(a)(b)", Fig13STViolations},
		{"fig14", "Figures 14-15", Fig14_15STUtility},
		{"fig16", "Figure 16(a)-(d)", Fig16UserStudy},
		{"theorem1", "Theorem 1", Theorem1Gaps},
		{"lemma3", "Lemma 3", Lemma3IndependentRounding},
		{"extmvd", "Extension C (multi-view β sweep)", ExtMVDBeta},
		{"extslots", "Extension B (slot significance)", ExtSlotSignificance},
		{"extstability", "Extension E (subgroup smoothing)", ExtStability},
		{"extdynamic", "Extension F (dynamic join/leave)", ExtDynamic},
		{"extcommodity", "Extension A (commodity values)", ExtCommodity},
		{"ablation-repeats", "Corollary 4.1 (best-of-R rounding)", AblationRepeats},
		{"ablation-lp", "Corollary 4.2 (LP budget vs quality)", AblationLPBudget},
		{"trace", "AVG-D CSF decision trace", Fig11Trace},
	}
}

// Lookup finds a runner by id.
func Lookup(id string) (Runner, error) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, nil
		}
	}
	ids := make([]string, 0, len(Registry()))
	for _, r := range Registry() {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	return Runner{}, fmt.Errorf("eval: unknown experiment %q (known: %v)", id, ids)
}
