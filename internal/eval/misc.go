package eval

import (
	"context"
	"fmt"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/graph"
	"github.com/svgic/svgic/internal/paperex"
	"github.com/svgic/svgic/internal/registry"
	"github.com/svgic/svgic/internal/stats"
	"github.com/svgic/svgic/internal/userstudy"
)

// RunningExample reproduces the paper's worked example (Tables 7–9,
// Example 5): all scheme values on the Alice/Bob/Charlie/Dave instance.
func RunningExample(cfg Config) ([]*Table, error) {
	in := paperex.New(0.5)
	tab := &Table{
		Title:   "Running example (Tables 7-9): scaled SAVG utility per scheme (paper values in parentheses where published)",
		Columns: []string{"scheme", "scaled_total", "paper"},
	}
	tab.Addf("optimal (Fig 1)", core.Evaluate(in, paperex.OptimalConfig()).Scaled(), paperex.OptimalScaled)
	tab.Addf("AVG (Example 4 run)", core.Evaluate(in, paperex.AVGExampleConfig()).Scaled(), paperex.AVGExampleScaled)

	f := paperex.Table6Factors(in)
	avgdConf, _ := core.RoundAVGD(in, f, core.AVGDOptions{R: core.DefaultR})
	tab.Addf("AVG-D (Table 6 factors)", core.Evaluate(in, avgdConf).Scaled(), 9.85)

	for _, s := range []core.Solver{
		registry.MustNew("per", nil),
		registry.MustNew("fmg", registry.Params{"fairness": 0.0}),
		registry.MustNew("sdp", registry.Params{"groups": 2}),
		registry.MustNew("grf", registry.Params{"groups": 2}),
	} {
		sol, err := s.Solve(context.Background(), in)
		if err != nil {
			return nil, err
		}
		conf := sol.Config
		var paper float64
		switch s.Name() {
		case "PER":
			paper = paperex.PersonalizedScaled
		case "FMG":
			paper = paperex.GroupScaled
		case "SDP":
			paper = paperex.SubgroupByFriendshipScaled
		case "GRF":
			paper = paperex.SubgroupByPreferenceScaled
		}
		tab.Addf(s.Name(), core.Evaluate(in, conf).Scaled(), paper)
	}
	return []*Table{tab}, nil
}

// Theorem1Gaps instantiates the Theorem 1 constructions and verifies the
// claimed OPT / special-case ratios empirically.
func Theorem1Gaps(cfg Config) ([]*Table, error) {
	tab := &Table{
		Title:   "Theorem 1: gap instances against the group / personalized special cases",
		Columns: []string{"instance", "n", "opt_or_bound", "special_case_value", "ratio", "claimed"},
	}
	for _, n := range []int{4, 8, 16} {
		inG, opt, groupOpt := core.TheoremOneGroupGap(n, 3, 0.5)
		if err := inG.Validate(); err != nil {
			return nil, err
		}
		tab.Addf("I_G (vs group)", n, opt, groupOpt, opt/groupOpt, fmt.Sprintf("n=%d", n))

		inP, common, personal := core.TheoremOnePersonalGap(n, 2, 0.5, 0.01)
		if err := inP.Validate(); err != nil {
			return nil, err
		}
		claimed := 1 + 0.5/(1-0.5)*float64(n-1)/2
		tab.Addf("I_P (vs personalized)", n, common, personal, common/personal,
			fmt.Sprintf("≈%.3g", claimed))
	}
	return []*Table{tab}, nil
}

// Lemma3IndependentRounding demonstrates Lemma 3: on the indifferent-
// preference instance, independent rounding recovers only a Θ(1/m) fraction
// of the optimum achieved by co-displaying one item to everyone, while CSF
// recovers it in one shot.
func Lemma3IndependentRounding(cfg Config) ([]*Table, error) {
	tab := &Table{
		Title:   "Lemma 3: independent rounding vs CSF on the indifferent instance (expected ratio ≈ 1/m)",
		Columns: []string{"m", "independent_ratio", "csf_ratio", "one_over_m"},
	}
	for _, m := range []int{5, 10, 20} {
		in, f, opt := lemma3Instance(8, m, 2)
		trials := 40
		var indep float64
		for t := 0; t < trials; t++ {
			conf := core.TrivialRounding(in, f, cfg.Seed+uint64(t))
			indep += core.Evaluate(in, conf).Weighted()
		}
		indep /= float64(trials)
		csfConf, _ := core.RoundAVG(in, f, core.AVGOptions{Seed: cfg.Seed})
		csf := core.Evaluate(in, csfConf).Weighted()
		tab.Addf(m, indep/opt, csf/opt, 1/float64(m))
	}
	return []*Table{tab}, nil
}

// lemma3Instance builds the Lemma 3 construction: complete graph, zero
// preferences, τ = const for every (pair, item); the uniform fractional
// point x̄ = k/m is LP-optimal. Returns the instance, the uniform factors
// and the optimum (co-display everyone on k common items).
func lemma3Instance(n, m, k int) (*core.Instance, *core.Factors, float64) {
	const tau = 0.5
	g := graph.Complete(n)
	in := core.NewInstance(g, m, k, 1)
	for u := 0; u < n; u++ {
		for _, v := range g.Out(u) {
			for c := 0; c < m; c++ {
				if err := in.SetTau(u, v, c, tau); err != nil {
					panic(err)
				}
			}
		}
	}
	X := make([][]float64, n)
	for u := range X {
		X[u] = make([]float64, m)
		for c := range X[u] {
			X[u][c] = float64(k) / float64(m)
		}
	}
	f := core.FactorsFromCondensed(in, X)
	opt := float64(n*(n-1)) * tau * float64(k) // λ=1, all ordered pairs, k slots
	return in, f, opt
}

// Fig16UserStudy reproduces Figures 16(a)–(d): the simulated user study.
func Fig16UserStudy(cfg Config) ([]*Table, error) {
	study := userstudy.Default()
	study.Seed = cfg.Seed + 100
	if cfg.Quick {
		study.Participants = 12
	}
	out, err := userstudy.Run(study)
	if err != nil {
		return nil, err
	}
	lamTab := &Table{
		Title:   fmt.Sprintf("Fig 16(a): λ distribution (mean %.3f, range %.2f-%.2f)", stats.Mean(out.Lambdas), minOf(out.Lambdas), maxOf(out.Lambdas)),
		Columns: []string{"bin", "count"},
	}
	for i, c := range out.LambdaHist {
		lamTab.Addf(fmt.Sprintf("%.1f-%.1f", float64(i)/10, float64(i+1)/10), c)
	}
	satTab := &Table{
		Title:   fmt.Sprintf("Fig 16(b): SAVG utility and user satisfaction (Spearman %.3f, Pearson %.3f, p=%.4f)", out.Spearman, out.Pearson, out.PValue),
		Columns: []string{"scheme", "mean_scaled_utility", "mean_satisfaction(1-5)"},
	}
	metTab := &Table{
		Title:   "Fig 16(c)(d): subgroup metrics in the user study",
		Columns: []string{"scheme", "intra_pct", "inter_pct", "norm_density", "codisplay_pct", "alone_pct"},
	}
	for _, m := range out.Methods {
		satTab.Addf(m.Name, m.MeanScaledTotal, m.MeanSatisfaction)
		metTab.Addf(m.Name, m.Metrics.IntraPct, m.Metrics.InterPct,
			m.Metrics.NormalizedDensity, m.Metrics.CoDisplayPct, m.Metrics.AlonePct)
	}
	return []*Table{lamTab, satTab, metTab}, nil
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
