package eval

import (
	"fmt"
	"math"
	"time"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/datasets"
	"github.com/svgic/svgic/internal/lp"
	"github.com/svgic/svgic/internal/stats"
	"github.com/svgic/svgic/internal/utility"
)

// Ablations and extension studies beyond the paper's figures: Section 5's
// practical scenarios and the design choices of this implementation
// (Corollary 4.1 repeats, Corollary 4.2 LP quality, structured-solver
// budgets). Registered as ext* / ablation* experiments.

// ExtMVDBeta sweeps the multi-view display width β (Extension C): each user
// keeps their primary item per slot and gains up to β−1 group views.
func ExtMVDBeta(cfg Config) ([]*Table, error) {
	in, err := generate(cfg, datasets.Timik, 30, 120, 6, 0.5, utility.PIERT, 0)
	if err != nil {
		return nil, err
	}
	base, _, err := core.SolveAVGD(in, core.AVGDOptions{R: 1, LP: defaultLP()})
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title:   "Extension C: multi-view display objective vs β (AVG-D base)",
		Columns: []string{"beta", "objective", "gain_vs_single_view"},
	}
	single := core.Evaluate(in, base).Scaled()
	for _, beta := range []int{1, 2, 3, 4} {
		mv := core.GreedyMVD(in, base, beta)
		obj := core.EvaluateMVD(in, mv).Scaled()
		tab.Addf(beta, obj, obj/single-1)
	}
	return []*Table{tab}, nil
}

// ExtSlotSignificance studies Extension B: with centre-heavy slot weights,
// how much γ-weighted objective does the free global slot reordering recover
// for each scheme?
func ExtSlotSignificance(cfg Config) ([]*Table, error) {
	in, err := generate(cfg, datasets.Timik, 30, 120, 8, 0.5, utility.PIERT, 0)
	if err != nil {
		return nil, err
	}
	k := in.K
	gamma := make([]float64, k)
	for s := range gamma {
		center := float64(k-1) / 2
		gamma[s] = 1 + 2*(1-math.Abs(float64(s)-center)/center)
	}
	tab := &Table{
		Title:   "Extension B: γ-weighted objective before/after slot reordering",
		Columns: []string{"scheme", "before", "after", "gain_pct"},
	}
	for _, s := range lineup(cfg.Seed) {
		conf, _, _, err := measure(in, s)
		if err != nil {
			return nil, err
		}
		before := core.EvaluateWithSlotWeights(in, conf, gamma)
		after := core.EvaluateWithSlotWeights(in, core.OptimizeSlotOrder(in, conf, gamma), gamma)
		gain := 0.0
		if before > 0 {
			gain = 100 * (after/before - 1)
		}
		tab.Addf(s.Name(), before, after, gain)
	}
	return []*Table{tab}, nil
}

// ExtStability studies Extension E: subgroup churn between consecutive slots
// before and after the free slot reordering, per scheme.
func ExtStability(cfg Config) ([]*Table, error) {
	in, err := generate(cfg, datasets.Yelp, 30, 120, 8, 0.5, utility.PIERT, 0)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title:   "Extension E: subgroup edit distance before/after stabilization",
		Columns: []string{"scheme", "edit_before", "edit_after", "objective_unchanged"},
	}
	for _, s := range lineup(cfg.Seed) {
		conf, rep, _, err := measure(in, s)
		if err != nil {
			return nil, err
		}
		before := core.SubgroupEditDistance(in, conf)
		stable, after := core.StabilizeSubgroups(in, conf)
		same := math.Abs(core.Evaluate(in, stable).Weighted()-rep.Weighted()) < 1e-9
		tab.Addf(s.Name(), before, after, fmt.Sprint(same))
	}
	return []*Table{tab}, nil
}

// ExtDynamic studies Extension F: a stream of joins and leaves handled
// incrementally by the dynamic session versus re-solving from scratch with
// AVG-D after every event. Reported: final objective ratio and total time.
func ExtDynamic(cfg Config) ([]*Table, error) {
	const (
		n, m, k = 20, 80, 5
		events  = 6
	)
	in, err := generate(cfg, datasets.Timik, n, m, k, 0.5, utility.PIERT, 0)
	if err != nil {
		return nil, err
	}
	base, _, err := core.SolveAVGD(in, core.AVGDOptions{R: 1, LP: defaultLP()})
	if err != nil {
		return nil, err
	}
	ds, err := core.NewDynamicSession(in, base, 0)
	if err != nil {
		return nil, err
	}
	r := stats.NewRand(cfg.Seed + 17)
	tab := &Table{
		Title:   "Extension F: incremental session vs full re-solve over a join/leave stream",
		Columns: []string{"event", "incremental_value", "resolve_value", "ratio", "incremental_time", "resolve_time"},
	}
	for ev := 0; ev < events; ev++ {
		var incTime time.Duration
		start := time.Now()
		if ev%2 == 0 {
			pref := make([]float64, m)
			for c := range pref {
				pref[c] = r.Float64()
			}
			friends := core.FriendTies{}
			for len(friends) < 3 {
				f := r.IntN(len(ds.ActiveUsers()))
				u := ds.ActiveUsers()[f]
				out := make([]float64, m)
				for c := range out {
					out[c] = 0.3 * pref[c]
				}
				friends[u] = core.FriendTie{Out: out, In: out}
			}
			if _, err := ds.Join(pref, friends); err != nil {
				return nil, err
			}
		} else {
			act := ds.ActiveUsers()
			if err := ds.Leave(act[r.IntN(len(act))]); err != nil {
				return nil, err
			}
		}
		ds.Rebalance(2)
		incTime = time.Since(start)
		incVal := ds.Value()

		// Full re-solve on the session's current instance for comparison.
		start = time.Now()
		resConf, _, err := core.SolveAVGD(ds.Instance(), core.AVGDOptions{R: 1, LP: defaultLP()})
		resTime := time.Since(start)
		if err != nil {
			return nil, err
		}
		resVal := core.Evaluate(ds.Instance(), resConf).Weighted()
		ratio := 1.0
		if resVal > 0 {
			ratio = incVal / resVal
		}
		kind := "join"
		if ev%2 == 1 {
			kind = "leave"
		}
		tab.Addf(fmt.Sprintf("%d(%s)", ev+1, kind), incVal, resVal, ratio, incTime, resTime)
	}
	return []*Table{tab}, nil
}

// AblationRepeats studies Corollary 4.1: the value of running AVG's rounding
// R times and keeping the best, against the single deterministic AVG-D run.
func AblationRepeats(cfg Config) ([]*Table, error) {
	in, err := generate(cfg, datasets.Timik, 30, 120, 6, 0.5, utility.PIERT, 0)
	if err != nil {
		return nil, err
	}
	f, err := core.SolveRelaxation(in, core.LPStructured, defaultLP())
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title:   "Corollary 4.1 ablation: best-of-R CSF rounding (shared LP solution)",
		Columns: []string{"repeats", "scaled_total", "vs_LP_bound"},
	}
	for _, reps := range []int{1, 3, 5, 10, 20} {
		conf, _ := core.RoundAVG(in, f, core.AVGOptions{Seed: cfg.Seed, Repeats: reps})
		v := core.Evaluate(in, conf)
		tab.Addf(reps, v.Scaled(), v.Weighted()/f.Objective)
	}
	avgd, _ := core.RoundAVGD(in, f, core.AVGDOptions{R: 1})
	v := core.Evaluate(in, avgd)
	tab.Addf("AVG-D", v.Scaled(), v.Weighted()/f.Objective)
	return []*Table{tab}, nil
}

// AblationLPBudget studies Corollary 4.2: cheaper (β-approximate) fractional
// solutions against the final configuration quality, with the certificate
// β ≥ objective/UpperBound from the separable bound.
func AblationLPBudget(cfg Config) ([]*Table, error) {
	in, err := generate(cfg, datasets.Timik, 30, 120, 6, 0.5, utility.PIERT, 0)
	if err != nil {
		return nil, err
	}
	rx := in.Relaxation()
	ub := rx.UpperBound()
	tab := &Table{
		Title:   "Corollary 4.2 ablation: LP budget vs fractional quality vs final quality",
		Columns: []string{"lp_budget", "lp_time", "lp_objective", "beta_certificate", "avgd_scaled"},
	}
	budgets := []struct {
		name string
		opts lp.RelaxOptions
	}{
		{"1 pass, no polish", lp.RelaxOptions{MaxPasses: 1, PolishIters: -1, Restarts: 1}},
		{"5 passes, no polish", lp.RelaxOptions{MaxPasses: 5, PolishIters: -1, Restarts: 1}},
		{"30 passes, no polish", lp.RelaxOptions{MaxPasses: 30, PolishIters: -1, Restarts: 1}},
		{"30 passes + polish 40", lp.RelaxOptions{MaxPasses: 30, PolishIters: 40, Restarts: 1}},
		{"60 passes + polish 150, 3 restarts", lp.RelaxOptions{MaxPasses: 60, PolishIters: 150, Restarts: 3}},
	}
	for _, b := range budgets {
		start := time.Now()
		f, err := core.SolveRelaxation(in, core.LPStructured, b.opts)
		lpTime := time.Since(start)
		if err != nil {
			return nil, err
		}
		conf, _ := core.RoundAVGD(in, f, core.AVGDOptions{R: 1})
		tab.Addf(b.name, lpTime, f.Objective, f.Objective/ub, core.Evaluate(in, conf).Scaled())
	}
	return []*Table{tab}, nil
}

// ExtCommodity studies Extension A: optimizing the commodity-weighted
// instance versus weighting an unweighted optimum after the fact.
func ExtCommodity(cfg Config) ([]*Table, error) {
	in, err := generate(cfg, datasets.Timik, 30, 120, 6, 0.5, utility.PIERT, 0)
	if err != nil {
		return nil, err
	}
	prices := make([]float64, in.NumItems)
	r := stats.NewRand(cfg.Seed + 23)
	for c := range prices {
		prices[c] = 0.25 + 1.75*r.Float64()
	}
	weighted := core.WeightedInstance(in, prices)
	tab := &Table{
		Title:   "Extension A: profit-aware vs profit-oblivious optimization",
		Columns: []string{"plan", "profit_objective", "plain_objective"},
	}
	profitConf, _, err := core.SolveAVGD(weighted, core.AVGDOptions{R: 1, LP: defaultLP()})
	if err != nil {
		return nil, err
	}
	plainConf, _, err := core.SolveAVGD(in, core.AVGDOptions{R: 1, LP: defaultLP()})
	if err != nil {
		return nil, err
	}
	tab.Addf("optimize weighted instance", core.Evaluate(weighted, profitConf).Scaled(),
		core.Evaluate(in, profitConf).Scaled())
	tab.Addf("optimize plain, price later", core.Evaluate(weighted, plainConf).Scaled(),
		core.Evaluate(in, plainConf).Scaled())
	return []*Table{tab}, nil
}

// Fig11Trace augments the case study with AVG-D's first CSF decisions — the
// mechanics behind the partitions of Figure 11.
func Fig11Trace(cfg Config) ([]*Table, error) {
	in, err := generate(cfg, datasets.Yelp, 20, 30, 3, 0.5, utility.PIERT, 0)
	if err != nil {
		return nil, err
	}
	var trace []core.TraceStep
	f, err := core.SolveRelaxation(in, core.LPStructured, defaultLP())
	if err != nil {
		return nil, err
	}
	core.RoundAVGD(in, f, core.AVGDOptions{R: 1, Trace: &trace})
	tab := &Table{
		Title:   "AVG-D co-display subgroup formation trace (first 12 iterations)",
		Columns: []string{"iter", "item", "slot", "subgroup_size", "users", "score"},
	}
	for i, step := range trace {
		if i >= 12 {
			break
		}
		tab.Addf(i+1, step.Item, step.Slot+1, len(step.Users), fmt.Sprint(step.Users), step.Gain)
	}
	return []*Table{tab}, nil
}
