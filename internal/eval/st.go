package eval

import (
	"context"
	"fmt"

	"github.com/svgic/svgic/internal/baselines"
	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/datasets"
	"github.com/svgic/svgic/internal/registry"
	"github.com/svgic/svgic/internal/utility"
)

// SVGIC-ST experiments (paper §6.8, Figures 13–15): subgroup size
// constraint M and the teleportation discount. The baselines do not know
// about M; the "-P" variants prepartition the user set into ⌈n/M⌉ balanced
// groups first, which reduces — but does not eliminate — violations.

const stDTel = 0.5

// stAVG builds the AVG solver with the capped CSF from the registry.
func stAVG(seed uint64, m int) core.Solver {
	return registry.MustNew("avg", defaultLPParams(registry.Params{
		"seed": seed, "repeats": 3, "sizeCap": m,
	}))
}

// stBaselines returns the baseline set, prepartitioned ("-P") or not ("-NP").
// The inner solvers resolve from the registry; the prepartition wrapper is
// composed on top (it wraps arbitrary solvers, so it is not itself a
// registry entry).
func stBaselines(seed uint64, m int, prepartition bool) []core.Solver {
	inner := []core.Solver{
		registry.MustNew("per", nil),
		registry.MustNew("fmg", registry.Params{"fairness": 1.0}),
		registry.MustNew("sdp", registry.Params{"seed": seed}),
		registry.MustNew("grf", nil),
	}
	if !prepartition {
		return inner
	}
	out := make([]core.Solver, len(inner))
	for i, s := range inner {
		out[i] = baselines.Prepartitioned{Inner: s, M: m, Seed: seed}
	}
	return out
}

// Fig13STViolations reproduces Figures 13(a)(b): total subgroup-size
// violations (in users over the cap, summed over slots and instances) for
// every method with and without prepartitioning, on Timik (n=25) and
// Epinions (n=15).
func Fig13STViolations(cfg Config) ([]*Table, error) {
	type dsCase struct {
		name datasets.Name
		n    int
	}
	cases := []dsCase{{datasets.Timik, 25}, {datasets.Epinions, 15}}
	ms := []int{3, 5, 8}
	instances := 10
	if cfg.Quick {
		instances = 2
		ms = []int{3}
	}
	var tables []*Table
	for _, dc := range cases {
		tab := &Table{
			Title:   fmt.Sprintf("Fig 13: total size-constraint violations (%s, n=%d, %d instances)", dc.name, dc.n, instances),
			Columns: []string{"M", "method", "violations", "feasible_pct"},
		}
		for _, m := range ms {
			type methodRun struct {
				name   string
				solver func(sample int) core.Solver
			}
			methods := []methodRun{
				{"AVG(ST)", func(sample int) core.Solver { return stAVG(cfg.Seed+uint64(sample), m) }},
			}
			for _, prep := range []bool{false, true} {
				prep := prep
				for bi := range stBaselines(cfg.Seed, m, prep) {
					bi := bi
					suffix := "-NP"
					if prep {
						suffix = "-P"
					}
					base := stBaselines(cfg.Seed, m, prep)[bi]
					methods = append(methods, methodRun{
						name: trimSuffixName(base.Name()) + suffix,
						solver: func(sample int) core.Solver {
							return stBaselines(cfg.Seed+uint64(sample), m, prep)[bi]
						},
					})
				}
			}
			for _, meth := range methods {
				totalViol, feasible := 0, 0
				for sample := 0; sample < instances; sample++ {
					in, err := generate(cfg, dc.name, dc.n, 40, 5, 0.5, utility.PIERT, sample)
					if err != nil {
						return nil, err
					}
					sol, err := meth.solver(sample).Solve(context.Background(), in)
					if err != nil {
						return nil, err
					}
					v := sol.Config.SizeViolations(m)
					totalViol += v
					if v == 0 {
						feasible++
					}
				}
				tab.Addf(m, meth.name, totalViol, 100*float64(feasible)/float64(instances))
			}
		}
		tables = append(tables, tab)
	}
	return tables, nil
}

func trimSuffixName(name string) string {
	for _, suf := range []string{"-P", "-NP"} {
		if len(name) > len(suf) && name[len(name)-len(suf):] == suf {
			return name[:len(name)-len(suf)]
		}
	}
	return name
}

// Fig14_15STUtility reproduces Figures 14 and 15: total SAVG utility (with
// the teleportation discount d_tel=0.5) under the subgroup size constraint
// M ∈ {3, 5, 15} on Timik and Epinions with n=15. Following the paper,
// infeasible solutions score 0, and baselines run with prepartitioning.
func Fig14_15STUtility(cfg Config) ([]*Table, error) {
	ms := []int{3, 5, 15}
	if cfg.Quick {
		ms = []int{5}
	}
	var tables []*Table
	for _, ds := range []datasets.Name{datasets.Timik, datasets.Epinions} {
		tab := &Table{
			Title:   fmt.Sprintf("Fig 14/15: total SAVG utility vs subgroup size constraint (%s, n=15, d_tel=%.1f)", ds, stDTel),
			Columns: []string{"M", "method", "scaled_total", "preference", "social", "violations"},
		}
		for _, m := range ms {
			in, err := generate(cfg, ds, 15, 40, 5, 0.5, utility.PIERT, 0)
			if err != nil {
				return nil, err
			}
			methods := append([]core.Solver{stAVG(cfg.Seed, m)}, stBaselines(cfg.Seed, m, true)...)
			for _, s := range methods {
				sol, err := s.Solve(context.Background(), in)
				if err != nil {
					return nil, err
				}
				conf := sol.Config
				viol := conf.SizeViolations(m)
				rep := core.EvaluateST(in, conf, stDTel)
				total := rep.Scaled()
				if viol > 0 {
					total = 0 // infeasible solutions score zero, as in the paper
				}
				tab.Addf(m, s.Name(), total, rep.Preference, rep.Social, viol)
			}
		}
		tables = append(tables, tab)
	}
	return tables, nil
}
