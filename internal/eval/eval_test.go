package eval

import (
	"strings"
	"testing"
)

// shortRunners is the representative subset of the registry exercised under
// -short: one table experiment, one sweep, one hardness check and one
// extension, each sub-second even with -race (fig3n is ~5s under the race
// detector, so sweeps are represented by the cheaper fig13). The full sweep
// (~7s) runs in the non-short CI lane and locally via `make test`.
var shortRunners = map[string]bool{
	"example":      true,
	"fig13":        true,
	"lemma3":       true,
	"extstability": true,
}

// TestRunnersQuick executes every experiment in Quick mode: tables must be
// produced, non-empty and printable.
func TestRunnersQuick(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Quick = true
	for _, r := range Registry() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			if testing.Short() && !shortRunners[r.ID] {
				t.Skip("full registry sweep runs in the non-short lane")
			}
			tabs, err := r.Fn(cfg)
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if len(tabs) == 0 {
				t.Fatalf("%s returned no tables", r.ID)
			}
			for _, tab := range tabs {
				if len(tab.Rows) == 0 {
					t.Errorf("%s table %q has no rows", r.ID, tab.Title)
				}
				var sb strings.Builder
				tab.Fprint(&sb)
				if !strings.Contains(sb.String(), tab.Title) {
					t.Errorf("%s: printed output missing title", r.ID)
				}
				if csv := tab.CSV(); !strings.Contains(csv, tab.Columns[0]) {
					t.Errorf("%s: CSV missing header", r.ID)
				}
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig5"); err != nil {
		t.Fatalf("Lookup(fig5): %v", err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup(nope) succeeded, want error")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "t", Columns: []string{"a", "b"}}
	tab.Addf("x,y", 1.5)
	csv := tab.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Errorf("CSV did not quote comma cell: %q", csv)
	}
}

// TestRunningExampleGolden pins the running-example table to the published
// values (third column carries the paper's numbers).
func TestRunningExampleGolden(t *testing.T) {
	tabs, err := RunningExample(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"optimal (Fig 1)":     "10.35",
		"AVG (Example 4 run)": "9.75",
		"PER":                 "8.25",
		"FMG":                 "8.35",
		"SDP":                 "8.4",
		"GRF":                 "8.7",
	}
	seen := 0
	for _, row := range tabs[0].Rows {
		if w, ok := want[row[0]]; ok {
			if row[1] != w {
				t.Errorf("%s = %s, want %s", row[0], row[1], w)
			}
			seen++
		}
	}
	if seen != len(want) {
		t.Errorf("only %d of %d golden rows present", seen, len(want))
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Registry() {
		if seen[r.ID] {
			t.Errorf("duplicate experiment id %q", r.ID)
		}
		seen[r.ID] = true
		if r.Paper == "" || r.Fn == nil {
			t.Errorf("experiment %q incomplete", r.ID)
		}
	}
	if len(seen) < 25 {
		t.Errorf("registry has only %d experiments", len(seen))
	}
}
