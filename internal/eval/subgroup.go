package eval

import (
	"fmt"
	"math"
	"sort"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/datasets"
	"github.com/svgic/svgic/internal/graph"
	"github.com/svgic/svgic/internal/stats"
	"github.com/svgic/svgic/internal/utility"
)

// Subgroup-level experiments (paper §6.5–6.7, Figures 10–12).

// Fig10SubgroupMetrics reproduces Figures 10(a)–(i): inter/intra-subgroup
// edge ratios, normalized subgroup density, co-display and alone rates, and
// regret-ratio distribution for every scheme on the three dataset profiles.
func Fig10SubgroupMetrics(cfg Config) ([]*Table, error) {
	n := 50
	if cfg.Quick {
		n = 20
	}
	metricsTab := &Table{
		Title: "Fig 10(a-f): subgroup structure per dataset and scheme",
		Columns: []string{"dataset", "scheme", "intra_pct", "inter_pct",
			"norm_density", "codisplay_pct", "alone_pct"},
	}
	regretTab := &Table{
		Title:   "Fig 10(g-i): regret-ratio distribution (mean and quantiles)",
		Columns: []string{"dataset", "scheme", "mean", "p25", "p50", "p75", "p95"},
	}
	for _, ds := range datasets.All() {
		in, err := generate(cfg, ds, n, largeM, largeK, 0.5, utility.PIERT, 0)
		if err != nil {
			return nil, err
		}
		for _, s := range lineup(cfg.Seed) {
			conf, _, _, err := measure(in, s)
			if err != nil {
				return nil, err
			}
			m := core.ComputeSubgroupMetrics(in, conf)
			metricsTab.Addf(string(ds), s.Name(), m.IntraPct, m.InterPct,
				m.NormalizedDensity, m.CoDisplayPct, m.AlonePct)
			reg := core.RegretRatios(in, conf)
			cdf := stats.NewCDF(reg)
			regretTab.Addf(string(ds), s.Name(), stats.Mean(reg),
				cdf.Quantile(0.25), cdf.Quantile(0.5), cdf.Quantile(0.75), cdf.Quantile(0.95))
		}
	}
	return []*Table{metricsTab, regretTab}, nil
}

// Fig11CaseStudy reproduces Figure 11: a 2-hop ego network around a user
// with a preference profile unlike any friend's; the table shows, per
// scheme, the ego's subgroup at the two slots where the ego's regret is
// highest, plus the per-scheme ego regret.
func Fig11CaseStudy(cfg Config) ([]*Table, error) {
	base, err := generate(cfg, datasets.Yelp, 60, 40, 4, 0.5, utility.PIERT, 0)
	if err != nil {
		return nil, err
	}
	ego := pickUniqueProfileUser(base)
	egoG, orig := graph.EgoNetwork(base.G, ego, 2)
	if egoG.NumVertices() < 4 {
		return nil, fmt.Errorf("eval: ego network too small (%d users)", egoG.NumVertices())
	}
	in, _, err := core.SubInstance(base, orig)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title: fmt.Sprintf("Fig 11: case study on a 2-hop ego network (%d users, ego=user0)", in.NumUsers()),
		Columns: []string{"scheme", "ego_regret", "slot", "ego_item",
			"ego_subgroup_size", "friends_in_subgroup"},
	}
	for _, s := range lineup(cfg.Seed) {
		conf, _, _, err := measure(in, s)
		if err != nil {
			return nil, err
		}
		reg := core.RegretRatios(in, conf)
		for slot := 0; slot < min(2, in.K); slot++ {
			item := conf.Assign[0][slot]
			group := conf.SubgroupsAt(slot)[item]
			friendsIn := 0
			for _, u := range group {
				if u != 0 && in.G.Connected(0, u) {
					friendsIn++
				}
			}
			tab.Addf(s.Name(), reg[0], slot+1, item, len(group), friendsIn)
		}
	}
	return []*Table{tab}, nil
}

// pickUniqueProfileUser returns the user whose preference vector has the
// lowest maximum cosine similarity to any friend — the "user A" of the
// paper's case study.
func pickUniqueProfileUser(in *core.Instance) int {
	best, bestScore := 0, 2.0
	for u := 0; u < in.NumUsers(); u++ {
		nb := in.G.Neighbors(u)
		if len(nb) < 3 {
			continue
		}
		maxSim := 0.0
		for _, v := range nb {
			if s := cosine(in.Pref[u], in.Pref[v]); s > maxSim {
				maxSim = s
			}
		}
		if maxSim < bestScore {
			bestScore, best = maxSim, u
		}
	}
	return best
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Fig12RSensitivity reproduces Figures 12(a)–(d): AVG-D's utility
// (normalized by the best value in the sweep), execution time, normalized
// subgroup density and inter/intra ratio as the balancing ratio r varies.
// Small r behaves like the group approach (one big subgroup), large r like
// the personalized approach.
func Fig12RSensitivity(cfg Config) ([]*Table, error) {
	rs := []float64{0.05, 0.1, 0.2, 0.25, 0.5, 0.7, 1.0, 1.5, 2.0}
	if cfg.Quick {
		rs = []float64{0.1, 0.25, 1.0}
	}
	n := 30
	in, err := generate(cfg, datasets.Timik, n, 60, 5, 0.5, utility.PIERT, 0)
	if err != nil {
		return nil, err
	}
	type point struct {
		r    float64
		rep  core.Report
		m    core.SubgroupMetrics
		time string
	}
	var pts []point
	bestVal := 0.0
	for _, r := range rs {
		s := &core.AVGDSolver{Opts: core.AVGDOptions{R: r, LP: defaultLP()}}
		conf, rep, elapsed, err := measure(in, s)
		if err != nil {
			return nil, err
		}
		m := core.ComputeSubgroupMetrics(in, conf)
		pts = append(pts, point{r: r, rep: rep, m: m, time: fmt.Sprintf("%.3gms", float64(elapsed.Microseconds())/1000)})
		if rep.Weighted() > bestVal {
			bestVal = rep.Weighted()
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].r < pts[j].r })
	tab := &Table{
		Title: "Fig 12: AVG-D sensitivity to the balancing ratio r",
		Columns: []string{"r", "normalized_utility", "time", "norm_density",
			"intra_pct", "inter_pct", "mean_subgroup_size"},
	}
	for _, p := range pts {
		nv := 0.0
		if bestVal > 0 {
			nv = p.rep.Weighted() / bestVal
		}
		tab.Addf(fmt.Sprintf("%.2f", p.r), nv, p.time, p.m.NormalizedDensity,
			p.m.IntraPct, p.m.InterPct, p.m.MeanSubgroupSize)
	}
	return []*Table{tab}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
