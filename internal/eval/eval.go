// Package eval reproduces every table and figure of the paper's evaluation
// (Section 6) on the synthetic dataset substrates. Each Fig* runner returns
// printable tables; cmd/experiments exposes them on the command line and
// bench_test.go wraps each one in a benchmark.
//
// Scales default to laptop-friendly reductions of the paper's server-scale
// settings (documented per runner and in EXPERIMENTS.md); the sweep shapes,
// baselines and metrics match the paper.
package eval

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/datasets"
	"github.com/svgic/svgic/internal/lp"
	"github.com/svgic/svgic/internal/registry"
	"github.com/svgic/svgic/internal/utility"
)

// Table is a printable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Addf appends a row of formatted values: strings pass through, float64
// render with %.4g, ints with %d, durations with %.3gms.
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.3gms", float64(v.Microseconds())/1000)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Add(row...)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values (cells with commas are
// quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Config holds the experiment-wide knobs. Zero value is unusable; use
// DefaultConfig.
type Config struct {
	Seed    uint64
	Samples int // instances averaged per sweep point
	// Quick shrinks every sweep for fast smoke runs (used by `go test -short`
	// style checks and the benchmark harness warm-up).
	Quick bool
}

// DefaultConfig returns the documented default scales.
func DefaultConfig() Config { return Config{Seed: 1, Samples: 3} }

func (c Config) samples() int {
	if c.Quick {
		return 1
	}
	if c.Samples <= 0 {
		return 3
	}
	return c.Samples
}

// defaultLP is the structured-solver configuration used by all experiment
// runs.
func defaultLP() lp.RelaxOptions {
	return lp.RelaxOptions{MaxPasses: 30, PolishIters: 40, Restarts: 1}
}

// defaultLPParams is defaultLP in registry-parameter form, so the experiment
// lineups resolve their solvers from the same registry the CLIs and the
// server use.
func defaultLPParams(p registry.Params) registry.Params {
	if p == nil {
		p = registry.Params{}
	}
	p["lpPasses"] = 30
	p["lpPolish"] = 40
	p["lpRestarts"] = 1
	return p
}

// newAVG builds the experiment-default AVG solver from the registry.
func newAVG(seed uint64) core.Solver {
	return registry.MustNew("avg", defaultLPParams(registry.Params{"seed": seed, "repeats": 3}))
}

// newAVGD builds the experiment-default AVG-D solver from the registry. The
// balancing ratio follows the paper's §6.7 sensitivity finding: r = 1/4
// carries the proven worst-case guarantee but behaves like the group
// approach, while r ∈ [0.7, 1.0] is near-optimal in practice; the
// experiments use r = 1. Figure 12's runner sweeps the full range.
func newAVGD() core.Solver {
	return registry.MustNew("avgd", defaultLPParams(registry.Params{"r": 1.0}))
}

// lineup returns the standard solver comparison set of the paper's figures
// (AVG, AVG-D, PER, FMG, SDP, GRF), without the IP baseline, resolved from
// the solver registry.
func lineup(seed uint64) []core.Solver {
	return []core.Solver{
		newAVG(seed),
		newAVGD(),
		registry.MustNew("per", nil),
		registry.MustNew("fmg", registry.Params{"fairness": 1.0}),
		registry.MustNew("sdp", registry.Params{"seed": seed}),
		registry.MustNew("grf", nil),
	}
}

// measure runs a solver and returns its configuration, report and wall time.
func measure(in *core.Instance, s core.Solver) (*core.Configuration, core.Report, time.Duration, error) {
	sol, err := s.Solve(context.Background(), in)
	if err != nil {
		return nil, core.Report{}, 0, err
	}
	return sol.Config, sol.Report, sol.Wall, nil
}

// generate builds a dataset instance with the experiment seed layering.
func generate(cfg Config, name datasets.Name, n, m, k int, lambda float64, model utility.ModelKind, sample int) (*core.Instance, error) {
	return datasets.Generate(name, n, m, k, lambda, model, cfg.Seed+uint64(sample)*1000+7)
}
