package eval

import (
	"fmt"
	"time"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/datasets"
	"github.com/svgic/svgic/internal/mip"
	"github.com/svgic/svgic/internal/registry"
	"github.com/svgic/svgic/internal/utility"
)

// Small-dataset experiments (paper §6.2, Figures 3 and 4, plus the Figure
// 9(a) MIP-strategy sweep). The paper samples small networks from Timik by
// random walk and includes the exact IP; our defaults keep the IP tractable
// for the from-scratch branch and bound (see EXPERIMENTS.md).

const ipTimeout = 20 * time.Second

// newIP builds the experiment-default exact IP from the registry.
func newIP() core.Solver {
	return registry.MustNew("ip", registry.Params{"timeLimit": ipTimeout})
}

// smallLineup is the small-data comparison set including the exact IP.
func smallLineup(seed uint64, withIP bool) []core.Solver {
	ls := lineup(seed)
	if withIP {
		ls = append(ls, newIP())
	}
	return ls
}

// sweepUtilityTime runs the comparison lineup over instances produced by
// gen(point, sample) and emits one utility row and one time row per point.
func sweepUtilityTime(cfg Config, pointLabel string, points []int,
	gen func(point, sample int) (*core.Instance, error), withIP bool) (utilTab, timeTab *Table, err error) {

	names := solverNames(smallLineup(cfg.Seed, withIP))
	utilTab = &Table{Columns: append([]string{pointLabel}, names...)}
	timeTab = &Table{Columns: append([]string{pointLabel}, names...)}
	for _, pt := range points {
		sums := make([]float64, len(names))
		times := make([]time.Duration, len(names))
		for sample := 0; sample < cfg.samples(); sample++ {
			in, err := gen(pt, sample)
			if err != nil {
				return nil, nil, err
			}
			solvers := smallLineup(cfg.Seed+uint64(sample), withIP)
			for i, s := range solvers {
				_, rep, elapsed, err := measure(in, s)
				if err != nil {
					return nil, nil, fmt.Errorf("%s on %s=%d: %w", s.Name(), pointLabel, pt, err)
				}
				sums[i] += rep.Scaled()
				times[i] += elapsed
			}
		}
		urow := []interface{}{pt}
		trow := []interface{}{pt}
		for i := range names {
			urow = append(urow, sums[i]/float64(cfg.samples()))
			trow = append(trow, times[i]/time.Duration(cfg.samples()))
		}
		utilTab.Addf(urow...)
		timeTab.Addf(trow...)
	}
	return utilTab, timeTab, nil
}

func solverNames(ss []core.Solver) []string {
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.Name()
	}
	return names
}

// Fig3UtilityVsN reproduces Figures 3(a)(b): total SAVG utility and
// execution time versus the user-set size on small Timik samples, IP
// included. Paper point values n∈{5..25}; default reduction n∈{4..12},
// m=12, k=3 keeps the exact IP inside its time limit.
func Fig3UtilityVsN(cfg Config) ([]*Table, error) {
	points := []int{4, 6, 8, 10, 12}
	if cfg.Quick {
		points = []int{4, 6}
	}
	u, tm, err := sweepUtilityTime(cfg, "n", points, func(pt, sample int) (*core.Instance, error) {
		return generate(cfg, datasets.Timik, pt, 12, 3, 0.5, utility.PIERT, sample)
	}, true)
	if err != nil {
		return nil, err
	}
	u.Title = "Fig 3(a): total SAVG utility vs size of user set (small Timik)"
	tm.Title = "Fig 3(b): execution time vs size of user set (small Timik)"
	return []*Table{u, tm}, nil
}

// Fig3UtilityVsM reproduces Figures 3(c)(d): utility and time versus the
// item-set size (n=8, k=3).
func Fig3UtilityVsM(cfg Config) ([]*Table, error) {
	points := []int{6, 12, 24, 48}
	if cfg.Quick {
		points = []int{6, 12}
	}
	u, tm, err := sweepUtilityTime(cfg, "m", points, func(pt, sample int) (*core.Instance, error) {
		return generate(cfg, datasets.Timik, 8, pt, 3, 0.5, utility.PIERT, sample)
	}, !cfg.Quick)
	if err != nil {
		return nil, err
	}
	u.Title = "Fig 3(c): total SAVG utility vs size of item set (small Timik)"
	tm.Title = "Fig 3(d): execution time vs size of item set (small Timik)"
	return []*Table{u, tm}, nil
}

// Fig3UtilityVsK reproduces Figures 3(e)(f): utility and time versus the
// number of display slots (n=8, m=24).
func Fig3UtilityVsK(cfg Config) ([]*Table, error) {
	points := []int{2, 3, 4, 6}
	if cfg.Quick {
		points = []int{2, 3}
	}
	u, tm, err := sweepUtilityTime(cfg, "k", points, func(pt, sample int) (*core.Instance, error) {
		return generate(cfg, datasets.Timik, 8, 24, pt, 0.5, utility.PIERT, sample)
	}, false)
	if err != nil {
		return nil, err
	}
	u.Title = "Fig 3(e): total SAVG utility vs number of slots (small Timik)"
	tm.Title = "Fig 3(f): execution time vs number of slots (small Timik)"
	return []*Table{u, tm}, nil
}

// Fig4Lambda reproduces Figure 4: per-scheme SAVG utility normalized by the
// exact IP optimum, split into preference and social shares, for
// λ ∈ {1/3, 1/2, 2/3}.
func Fig4Lambda(cfg Config) ([]*Table, error) {
	lambdas := []float64{1.0 / 3, 0.5, 2.0 / 3}
	tab := &Table{
		Title:   "Fig 4: normalized total SAVG utility (split into Personal%/Social% of total) vs λ",
		Columns: []string{"lambda", "scheme", "normalized", "personal_pct", "social_pct"},
	}
	for _, lambda := range lambdas {
		in, err := generate(cfg, datasets.Timik, 8, 12, 3, lambda, utility.PIERT, 0)
		if err != nil {
			return nil, err
		}
		ip := newIP()
		_, ipRep, _, err := measure(in, ip)
		if err != nil {
			return nil, err
		}
		norm := ipRep.Weighted()
		solvers := append(lineup(cfg.Seed), ip)
		for _, s := range solvers {
			_, rep, _, err := measure(in, s)
			if err != nil {
				return nil, err
			}
			nv := 0.0
			if norm > 0 {
				nv = rep.Weighted() / norm
			}
			tab.Addf(fmt.Sprintf("%.2f", lambda), s.Name(), nv, rep.PreferencePct(), rep.SocialPct())
		}
	}
	return []*Table{tab}, nil
}

// Fig9aMIPStrategies reproduces Figure 9(a): the five MIP strategies are
// given time budgets of 200×, 1000× and 5000× the AVG-D runtime on the same
// instance; the objective is reported normalized by AVG-D's (0 = no feasible
// incumbent found in budget). The instance is sized so the IP does not solve
// at the root relaxation, reproducing the paper's finding that no strategy
// reaches AVG-D's quality-per-time.
func Fig9aMIPStrategies(cfg Config) ([]*Table, error) {
	in, err := generate(cfg, datasets.Timik, 10, 12, 3, 0.5, utility.PIERT, 0)
	if err != nil {
		return nil, err
	}
	avgd := newAVGD()
	_, rep, avgdTime, err := measure(in, avgd)
	if err != nil {
		return nil, err
	}
	if avgdTime <= 0 {
		avgdTime = time.Millisecond
	}
	budgets := []int{200, 1000, 5000}
	if cfg.Quick {
		budgets = []int{200}
	}
	tab := &Table{
		Title:   fmt.Sprintf("Fig 9(a): MIP strategies, objective normalized by AVG-D (AVG-D time %v, value %.4g)", avgdTime, rep.Weighted()),
		Columns: []string{"strategy", "budget_x_avgd", "normalized_obj", "status", "nodes"},
	}
	for _, strat := range []mip.Strategy{mip.Primal, mip.Dual, mip.Concurrent, mip.DetConcurrent, mip.Barrier} {
		for _, mult := range budgets {
			res, err := mip.Solve(in, mip.Options{Strategy: strat, TimeLimit: time.Duration(mult) * avgdTime})
			if err != nil {
				return nil, err
			}
			nv := 0.0
			if rep.Weighted() > 0 && res.Config != nil {
				nv = res.Objective / rep.Weighted()
			}
			tab.Addf(strat.String(), mult, nv, res.Status.String(), res.Nodes)
		}
	}
	return []*Table{tab}, nil
}
