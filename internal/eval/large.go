package eval

import (
	"fmt"
	"time"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/datasets"
	"github.com/svgic/svgic/internal/utility"
)

// Large-dataset experiments (paper §6.3–6.4, Figures 5–9(b)). Paper defaults
// are (k, m, n) = (50, 10000, 125); our defaults reduce to (10, 300, ≤125)
// so the full harness runs in minutes on a laptop while preserving the
// sweep shapes. See EXPERIMENTS.md for the exact mapping.

// large-default sizes.
const (
	largeM = 300
	largeK = 10
)

// Fig5LargeN reproduces Figure 5: total SAVG utility versus the user-set
// size on the Timik profile.
func Fig5LargeN(cfg Config) ([]*Table, error) {
	points := []int{25, 50, 75, 100, 125}
	if cfg.Quick {
		points = []int{25}
	}
	names := solverNames(lineup(cfg.Seed))
	tab := &Table{
		Title:   "Fig 5: total SAVG utility vs size of user set (Timik profile)",
		Columns: append([]string{"n"}, names...),
	}
	for _, n := range points {
		sums := make([]float64, len(names))
		for sample := 0; sample < cfg.samples(); sample++ {
			in, err := generate(cfg, datasets.Timik, n, largeM, largeK, 0.5, utility.PIERT, sample)
			if err != nil {
				return nil, err
			}
			for i, s := range lineup(cfg.Seed + uint64(sample)) {
				_, rep, _, err := measure(in, s)
				if err != nil {
					return nil, fmt.Errorf("%s at n=%d: %w", s.Name(), n, err)
				}
				sums[i] += rep.Scaled()
			}
		}
		row := []interface{}{n}
		for i := range names {
			row = append(row, sums[i]/float64(cfg.samples()))
		}
		tab.Addf(row...)
	}
	return []*Table{tab}, nil
}

// Fig6Datasets reproduces Figure 6: total SAVG utility (split into
// preference and social shares) on the three dataset profiles.
func Fig6Datasets(cfg Config) ([]*Table, error) {
	n := 50
	if cfg.Quick {
		n = 20
	}
	tab := &Table{
		Title:   "Fig 6: total SAVG utility across datasets",
		Columns: []string{"dataset", "scheme", "scaled_total", "preference", "social"},
	}
	for _, ds := range datasets.All() {
		for sample := 0; sample < cfg.samples(); sample++ {
			in, err := generate(cfg, ds, n, largeM, largeK, 0.5, utility.PIERT, sample)
			if err != nil {
				return nil, err
			}
			if sample > 0 {
				continue // table reports the first sample; samples>1 used by Fig5/Fig10 averaging
			}
			for _, s := range lineup(cfg.Seed) {
				_, rep, _, err := measure(in, s)
				if err != nil {
					return nil, err
				}
				tab.Addf(string(ds), s.Name(), rep.Scaled(), rep.Preference, rep.Social)
			}
		}
	}
	return []*Table{tab}, nil
}

// Fig7InputModels reproduces Figure 7: total SAVG utility under the three
// simulated utility learners (PIERT default, AGREE, GREE) on Timik.
func Fig7InputModels(cfg Config) ([]*Table, error) {
	n := 50
	if cfg.Quick {
		n = 20
	}
	tab := &Table{
		Title:   "Fig 7: total SAVG utility vs utility-learning model (Timik profile)",
		Columns: []string{"model", "scheme", "scaled_total", "preference", "social"},
	}
	for _, model := range []utility.ModelKind{utility.PIERT, utility.AGREE, utility.GREE} {
		in, err := generate(cfg, datasets.Timik, n, largeM, largeK, 0.5, model, 0)
		if err != nil {
			return nil, err
		}
		for _, s := range lineup(cfg.Seed) {
			_, rep, _, err := measure(in, s)
			if err != nil {
				return nil, err
			}
			tab.Addf(model.String(), s.Name(), rep.Scaled(), rep.Preference, rep.Social)
		}
	}
	return []*Table{tab}, nil
}

// Fig8Scalability reproduces Figures 8(a)(b): execution time versus n and m
// on the Yelp profile (IP excluded — the paper reports it cannot finish).
func Fig8Scalability(cfg Config) ([]*Table, error) {
	nPoints := []int{25, 50, 75, 100, 125}
	mPoints := []int{125, 250, 500, 1000}
	if cfg.Quick {
		nPoints, mPoints = []int{25}, []int{125}
	}
	names := solverNames(lineup(cfg.Seed))
	tabN := &Table{
		Title:   "Fig 8(a): execution time vs size of user set (Yelp profile)",
		Columns: append([]string{"n"}, names...),
	}
	for _, n := range nPoints {
		in, err := generate(cfg, datasets.Yelp, n, largeM, largeK, 0.5, utility.PIERT, 0)
		if err != nil {
			return nil, err
		}
		row := []interface{}{n}
		for _, s := range lineup(cfg.Seed) {
			_, _, elapsed, err := measure(in, s)
			if err != nil {
				return nil, err
			}
			row = append(row, elapsed)
		}
		tabN.Addf(row...)
	}
	tabM := &Table{
		Title:   "Fig 8(b): execution time vs size of item set (Yelp profile)",
		Columns: append([]string{"m"}, names...),
	}
	for _, m := range mPoints {
		in, err := generate(cfg, datasets.Yelp, 50, m, largeK, 0.5, utility.PIERT, 0)
		if err != nil {
			return nil, err
		}
		row := []interface{}{m}
		for _, s := range lineup(cfg.Seed) {
			_, _, elapsed, err := measure(in, s)
			if err != nil {
				return nil, err
			}
			row = append(row, elapsed)
		}
		tabM.Addf(row...)
	}
	return []*Table{tabN, tabM}, nil
}

// Fig9bAblation reproduces Figure 9(b): the effect of the two speed-up
// strategies. "-ALP" replaces the condensed LP_SIMP with the k-times-larger
// full LP_SVGIC (both solved by the same exact simplex, so the gap is purely
// Observation 2's transformation); "-AS" disables the advanced focal
// sampling in AVG and the incremental candidate filtering in AVG-D.
func Fig9bAblation(cfg Config) ([]*Table, error) {
	// The simplex-vs-simplex comparison needs a small model; the sampling
	// ablation shows best at a larger k.
	inLP, err := generate(cfg, datasets.Timik, 8, 10, 3, 0.5, utility.PIERT, 0)
	if err != nil {
		return nil, err
	}
	inAS, err := generate(cfg, datasets.Timik, 25, 60, 6, 0.5, utility.PIERT, 0)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title:   "Fig 9(b): effect of speedup strategies (LP variants time the full pipeline; sampling variants time the rounding phase over 20 repetitions)",
		Columns: []string{"variant", "instance", "time", "scaled_total"},
	}
	// LP-transformation ablation: whole-pipeline time, exact simplex both
	// sides, so the gap is purely the k-times-larger model of LP_SVGIC.
	type lpVariant struct {
		name string
		run  func(in *core.Instance) (*core.Configuration, error)
	}
	lpVariants := []lpVariant{
		{"AVG (condensed LP_SIMP)", func(in *core.Instance) (*core.Configuration, error) {
			c, _, err := core.SolveAVG(in, core.AVGOptions{Seed: cfg.Seed, LPMode: core.LPSimplexCondensed})
			return c, err
		}},
		{"AVG-ALP (full LP_SVGIC)", func(in *core.Instance) (*core.Configuration, error) {
			c, _, err := core.SolveAVG(in, core.AVGOptions{Seed: cfg.Seed, LPMode: core.LPSimplexFull})
			return c, err
		}},
		{"AVG-D (condensed LP_SIMP)", func(in *core.Instance) (*core.Configuration, error) {
			c, _, err := core.SolveAVGD(in, core.AVGDOptions{LPMode: core.LPSimplexCondensed})
			return c, err
		}},
		{"AVG-D-ALP (full LP_SVGIC)", func(in *core.Instance) (*core.Configuration, error) {
			c, _, err := core.SolveAVGD(in, core.AVGDOptions{LPMode: core.LPSimplexFull})
			return c, err
		}},
	}
	for _, v := range lpVariants {
		start := time.Now()
		conf, err := v.run(inLP)
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		tab.Addf(v.name, "small", elapsed, core.Evaluate(inLP, conf).Scaled())
	}
	// Sampling ablation: the LP is shared, only the rounding differs, so the
	// rounding phase is what gets timed (20 repetitions for stable numbers).
	f, err := core.SolveRelaxation(inAS, core.LPStructured, defaultLP())
	if err != nil {
		return nil, err
	}
	const reps = 20
	type roundVariant struct {
		name string
		run  func(rep int) *core.Configuration
	}
	roundVariants := []roundVariant{
		{"AVG rounding (advanced sampling)", func(rep int) *core.Configuration {
			c, _ := core.RoundAVG(inAS, f, core.AVGOptions{Seed: cfg.Seed + uint64(rep)})
			return c
		}},
		{"AVG-AS rounding (original sampling)", func(rep int) *core.Configuration {
			c, _ := core.RoundAVG(inAS, f, core.AVGOptions{Seed: cfg.Seed + uint64(rep), Sampling: core.SamplingOriginal})
			return c
		}},
		{"AVG-D rounding (incremental)", func(int) *core.Configuration {
			c, _ := core.RoundAVGD(inAS, f, core.AVGDOptions{R: 1})
			return c
		}},
		{"AVG-D-AS rounding (full rescan)", func(int) *core.Configuration {
			c, _ := core.RoundAVGD(inAS, f, core.AVGDOptions{R: 1, FullRescan: true})
			return c
		}},
	}
	for _, v := range roundVariants {
		start := time.Now()
		var conf *core.Configuration
		for rep := 0; rep < reps; rep++ {
			conf = v.run(rep)
		}
		elapsed := time.Since(start) / reps
		tab.Addf(v.name, "medium", elapsed, core.Evaluate(inAS, conf).Scaled())
	}
	return []*Table{tab}, nil
}
