// Package paperex builds the paper's running example (Examples 1–5,
// Tables 1 and 6–9): Alice, Bob, Charlie and Dave shopping for digital
// photography gear across three display slots. It is shared by the golden
// tests, the quickstart example and the benchmark suite.
package paperex

import (
	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/graph"
)

// User and item ids of the example.
const (
	Alice = iota
	Bob
	Charlie
	Dave
)

// Items (paper ids c1..c5 map to 0..4).
const (
	Tripod = iota
	DSLR
	PSD
	MemoryCard
	SPCamera
)

// UserNames and ItemNames label the example's ids for display.
var (
	UserNames = []string{"Alice", "Bob", "Charlie", "Dave"}
	ItemNames = []string{"Tripod", "DSLR Camera", "PSD", "Memory Card", "SP Camera"}
)

// Expected objective values (Example 5, scaled: preference + social at λ=1/2).
const (
	OptimalScaled              = 10.35
	AVGExampleScaled           = 9.75 // Table 7, Example 4's sampled run
	PersonalizedScaled         = 8.25
	GroupScaled                = 8.35
	SubgroupByFriendshipScaled = 8.4
	SubgroupByPreferenceScaled = 8.7
)

// New returns the example instance with the given λ (the paper uses 0.4 in
// Example 2 and 0.5 in Examples 4–5).
func New(lambda float64) *core.Instance {
	g := graph.New(4)
	// Directed friendships of Figure 1's social network (exactly the τ
	// columns present in Table 1).
	edges := [][2]int{
		{Alice, Bob}, {Alice, Charlie}, {Alice, Dave},
		{Bob, Alice}, {Bob, Charlie},
		{Charlie, Alice}, {Charlie, Bob},
		{Dave, Alice},
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	in := core.NewInstance(g, 5, 3, lambda)

	// Table 1, preference utilities p(u, c); rows are items c1..c5.
	pref := map[int][5]float64{
		Alice:   {0.8, 0.85, 0.1, 0.05, 1.0},
		Bob:     {0.7, 1.0, 0.15, 0.2, 0.1},
		Charlie: {0, 0.15, 0.7, 0.6, 0.1},
		Dave:    {0.1, 0, 0.3, 1.0, 0.95},
	}
	for u, row := range pref {
		for c, p := range row {
			in.SetPref(u, c, p)
		}
	}
	// Table 1, social utilities τ(u, v, c); rows are items c1..c5.
	tau := map[[2]int][5]float64{
		{Alice, Bob}:     {0.2, 0.05, 0.1, 0, 0.05},
		{Alice, Charlie}: {0, 0.05, 0.1, 0, 0.3},
		{Alice, Dave}:    {0.2, 0.05, 0.1, 0.05, 0.2},
		{Bob, Alice}:     {0.2, 0.05, 0.1, 0.05, 0.05},
		{Bob, Charlie}:   {0, 0.05, 0.1, 0.2, 0},
		{Charlie, Alice}: {0, 0.05, 0.1, 0.05, 0.3},
		{Charlie, Bob}:   {0.1, 0.05, 0.1, 0.2, 0.05},
		{Dave, Alice}:    {0.3, 0.05, 0.05, 0, 0.25},
	}
	for e, row := range tau {
		for c, t := range row {
			if err := in.SetTau(e[0], e[1], c, t); err != nil {
				panic(err)
			}
		}
	}
	return in
}

// OptimalConfig is the SAVG 3-configuration of Figure 1 (scaled value 10.35).
func OptimalConfig() *core.Configuration {
	return configOf([][]int{
		{SPCamera, Tripod, DSLR},       // Alice ⟨c5, c1, c2⟩
		{DSLR, Tripod, MemoryCard},     // Bob ⟨c2, c1, c4⟩
		{SPCamera, PSD, MemoryCard},    // Charlie ⟨c5, c3, c4⟩
		{SPCamera, Tripod, MemoryCard}, // Dave ⟨c5, c1, c4⟩
	})
}

// AVGExampleConfig is the configuration AVG constructs in Example 4
// (Table 7, scaled value 9.75).
func AVGExampleConfig() *core.Configuration {
	return configOf([][]int{
		{SPCamera, DSLR, Tripod},
		{DSLR, MemoryCard, Tripod},
		{PSD, MemoryCard, SPCamera},
		{SPCamera, MemoryCard, Tripod},
	})
}

// Table6Factors is the optimal fractional LP solution of Example 3 in
// condensed form: x̄[u][c] = k · x*[u][c][s] (each user spreads unit factors
// of 1/3 over exactly three items at every slot).
func Table6Factors(in *core.Instance) *core.Factors {
	x := [][]float64{
		{1, 1, 0, 0, 1}, // Alice: c1, c2, c5
		{1, 1, 0, 1, 0}, // Bob: c1, c2, c4
		{0, 0, 1, 1, 1}, // Charlie: c3, c4, c5
		{1, 0, 0, 1, 1}, // Dave: c1, c4, c5
	}
	return core.FactorsFromCondensed(in, x)
}

func configOf(rows [][]int) *core.Configuration {
	conf := core.NewConfiguration(len(rows), len(rows[0]))
	for u, row := range rows {
		copy(conf.Assign[u], row)
	}
	return conf
}
