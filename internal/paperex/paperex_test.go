package paperex

import (
	"math"
	"testing"

	"github.com/svgic/svgic/internal/core"
)

func TestFixtureMatchesPublishedValues(t *testing.T) {
	in := New(0.5)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.NumUsers() != 4 || in.NumItems != 5 || in.K != 3 {
		t.Fatalf("wrong shape")
	}
	if in.G.NumEdges() != 8 || in.G.NumPairs() != 4 {
		t.Fatalf("graph: %d edges, %d pairs", in.G.NumEdges(), in.G.NumPairs())
	}
	cases := []struct {
		conf *core.Configuration
		want float64
	}{
		{OptimalConfig(), OptimalScaled},
		{AVGExampleConfig(), AVGExampleScaled},
	}
	for _, tc := range cases {
		if err := tc.conf.Validate(in); err != nil {
			t.Fatal(err)
		}
		if got := core.Evaluate(in, tc.conf).Scaled(); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("config value = %.4f, want %.4f", got, tc.want)
		}
	}
}

func TestTable6FactorsFeasible(t *testing.T) {
	in := New(0.5)
	f := Table6Factors(in)
	for u := 0; u < 4; u++ {
		var sum float64
		for c := 0; c < 5; c++ {
			x := f.X[u][c]
			if x != 0 && x != 1 {
				t.Fatalf("Table 6 factors should be 0/1 in condensed form, got %v", x)
			}
			sum += x
		}
		if sum != 3 {
			t.Fatalf("user %d mass %v, want k=3", u, sum)
		}
	}
	// Per-slot factor is 1/3 on support (Table 6's 0.33 entries).
	if got := f.Factor(Alice, Tripod); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Factor(Alice, tripod) = %v", got)
	}
	if f.Objective <= 0 {
		t.Error("factors carry no LP objective")
	}
}

func TestNamesCoverIDs(t *testing.T) {
	if len(UserNames) != 4 || len(ItemNames) != 5 {
		t.Fatal("name tables out of sync with ids")
	}
	if UserNames[Dave] != "Dave" || ItemNames[SPCamera] != "SP Camera" {
		t.Error("name mapping broken")
	}
}
