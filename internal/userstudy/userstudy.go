// Package userstudy simulates the paper's §6.9 user study: 44 participants
// visit a prototype VR store in small groups, their λ weights are collected
// by questionnaire, and their satisfaction with the configurations of AVG,
// PER, FMG and GRF is recorded on a 1–5 Likert scale.
//
// Human participants are replaced by agents whose reported satisfaction is a
// noisy monotone function of their achieved happiness ratio (utility divided
// by their personal upper bound). The pipeline, metrics and statistics are
// exactly those of the paper: λ distribution, per-method mean SAVG utility
// and mean satisfaction, utility↔satisfaction rank correlations, and a
// significance test for AVG against the best baseline.
package userstudy

import (
	"context"
	"fmt"
	"math"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/graph"
	"github.com/svgic/svgic/internal/registry"
	"github.com/svgic/svgic/internal/stats"
	"github.com/svgic/svgic/internal/utility"
)

// Study configures the simulation. The zero value is unusable; use Default.
type Study struct {
	Participants int
	MinGroup     int
	MaxGroup     int
	Items        int
	Slots        int
	NoiseSigma   float64 // satisfaction noise (latent scale)
	Seed         uint64
}

// Default mirrors the paper's study shape: 44 participants in small groups.
func Default() Study {
	return Study{
		Participants: 44,
		MinGroup:     4,
		MaxGroup:     6,
		Items:        30,
		Slots:        5,
		NoiseSigma:   0.09,
		Seed:         7,
	}
}

// MethodOutcome aggregates one scheme's results over all groups.
type MethodOutcome struct {
	Name             string
	MeanScaledTotal  float64
	MeanSatisfaction float64
	Metrics          core.SubgroupMetrics
	satisfactions    []float64
}

// Outcome is the study result.
type Outcome struct {
	Lambdas    []float64
	LambdaHist []int // 10 bins over [0,1]
	Methods    []MethodOutcome
	// Correlations between SAVG utility and Likert satisfaction pooled over
	// every (user, method) observation. Utilities are normalized by each
	// user's personal upper bound before pooling — different users shop at
	// different utility scales, and the paper's correlation claim concerns
	// how well the objective *tracks* reported satisfaction.
	Spearman float64
	Pearson  float64
	// PValue tests AVG's satisfaction against the best baseline's
	// (Welch's t, two-sided, normal tail).
	PValue float64
}

// Run executes the simulated study.
func Run(s Study) (*Outcome, error) {
	if s.Participants <= 0 || s.MinGroup < 2 || s.MaxGroup < s.MinGroup {
		return nil, fmt.Errorf("userstudy: invalid study shape %+v", s)
	}
	r := stats.NewRand(s.Seed)
	out := &Outcome{}

	// Questionnaire λ per participant: Beta scaled to [0.15, 0.85]; the
	// paper reports this range with mean 0.53.
	lambdas := make([]float64, s.Participants)
	for i := range lambdas {
		lambdas[i] = 0.15 + 0.7*stats.Beta(r, 2.6, 2.2)
	}
	out.Lambdas = lambdas
	hist := stats.Histogram(lambdas, 0, 1, 10)
	out.LambdaHist = hist

	methods := []func(seed uint64) core.Solver{
		func(seed uint64) core.Solver {
			return registry.MustNew("avg", registry.Params{
				"seed": seed, "repeats": 3, "lpPasses": 30, "lpPolish": 30, "lpRestarts": 1,
			})
		},
		func(uint64) core.Solver { return registry.MustNew("per", nil) },
		func(uint64) core.Solver { return registry.MustNew("fmg", registry.Params{"fairness": 1.0}) },
		func(uint64) core.Solver { return registry.MustNew("grf", nil) },
	}
	outcomes := make([]MethodOutcome, len(methods))
	for i, mk := range methods {
		outcomes[i].Name = mk(0).Name()
	}

	var allUtility, allSatisfaction []float64
	groupCount := 0
	for start := 0; start < s.Participants; {
		size := s.MinGroup
		if s.MaxGroup > s.MinGroup {
			size += r.IntN(s.MaxGroup - s.MinGroup + 1)
		}
		if start+size > s.Participants {
			size = s.Participants - start
		}
		if size < 2 {
			break
		}
		groupCount++
		members := lambdas[start : start+size]
		in := buildGroupInstance(s, members, r)
		for mi, mk := range methods {
			solver := mk(s.Seed + uint64(groupCount*10+mi))
			sol, err := solver.Solve(context.Background(), in)
			if err != nil {
				return nil, fmt.Errorf("userstudy: %s: %w", solver.Name(), err)
			}
			conf := sol.Config
			rep := sol.Report
			outcomes[mi].MeanScaledTotal += rep.Scaled()
			m := core.ComputeSubgroupMetrics(in, conf)
			acc := &outcomes[mi].Metrics
			acc.IntraPct += m.IntraPct
			acc.InterPct += m.InterPct
			acc.NormalizedDensity += m.NormalizedDensity
			acc.CoDisplayPct += m.CoDisplayPct
			acc.AlonePct += m.AlonePct
			acc.MeanSubgroupSize += m.MeanSubgroupSize
			for u := 0; u < in.NumUsers(); u++ {
				util := core.UserUtility(in, conf, u)
				ub := core.UserUtilityUpperBound(in, u)
				hap := 0.0
				if ub > 0 {
					hap = util / ub
				}
				likert := likertOf(hap, s.NoiseSigma, r)
				outcomes[mi].MeanSatisfaction += likert
				outcomes[mi].satisfactions = append(outcomes[mi].satisfactions, likert)
				allUtility = append(allUtility, hap)
				allSatisfaction = append(allSatisfaction, likert)
			}
		}
		start += size
	}
	for i := range outcomes {
		n := float64(len(outcomes[i].satisfactions))
		outcomes[i].MeanSatisfaction /= n
		outcomes[i].MeanScaledTotal /= float64(groupCount)
		g := float64(groupCount)
		m := &outcomes[i].Metrics
		m.IntraPct /= g
		m.InterPct /= g
		m.NormalizedDensity /= g
		m.CoDisplayPct /= g
		m.AlonePct /= g
		m.MeanSubgroupSize /= g
	}
	out.Methods = outcomes
	out.Spearman = stats.Spearman(allUtility, allSatisfaction)
	out.Pearson = stats.Pearson(allUtility, allSatisfaction)

	// Significance: AVG vs the best baseline by mean satisfaction.
	bestBaseline := 1
	for i := 2; i < len(outcomes); i++ {
		if outcomes[i].MeanSatisfaction > outcomes[bestBaseline].MeanSatisfaction {
			bestBaseline = i
		}
	}
	out.PValue = stats.TwoSampleTPValue(outcomes[0].satisfactions, outcomes[bestBaseline].satisfactions)
	return out, nil
}

// buildGroupInstance makes one shopping group: friends who visit together
// form a dense (but not complete) social network; utilities come from the
// PIERT-like model; the group's λ is the mean of its members' questionnaire
// answers (the paper lets the system take one λ per configuration).
func buildGroupInstance(s Study, lambdas []float64, r interface {
	IntN(int) int
	Float64() float64
}) *core.Instance {
	n := len(lambdas)
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < 0.75 {
				g.AddMutualEdge(u, v)
			}
		}
	}
	// Guard: connect isolated members to member 0.
	for u := 1; u < n; u++ {
		if len(g.Neighbors(u)) == 0 {
			g.AddMutualEdge(0, u)
		}
	}
	var mean float64
	for _, l := range lambdas {
		mean += l
	}
	mean /= float64(n)
	in := core.NewInstance(g, s.Items, s.Slots, mean)
	// A small friend circle is one community by construction, so interests
	// must diverge through narrow individual topic profiles: wide CommunityMix
	// here would make the plain group approach trivially optimal, which the
	// paper's study contradicts.
	params := utility.Defaults()
	params.Topics = 12
	params.AlphaUser = 0.12
	params.AlphaItem = 0.1
	params.PopularitySkew = 0.4
	params.SocialScale = 0.5
	params.CommunityMix = 0.2
	utility.Populate(in, params, s.Seed+uint64(n)*97+uint64(r.IntN(1<<30)))
	return in
}

// likertOf converts a happiness ratio into a 1–5 Likert answer with latent
// Gaussian noise — the monotone link between achieved SAVG utility and
// reported satisfaction that the paper's correlation analysis validates.
func likertOf(hap, sigma float64, r interface{ Float64() float64 }) float64 {
	// Box–Muller on two uniforms (keeps the interface minimal).
	u1, u2 := r.Float64(), r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	latent := stats.Clamp(hap+sigma*z, 0, 1)
	// Thresholds sit where happiness ratios actually spread in group
	// shopping (a ratio near 1 needs the whole configuration in one's
	// favour, so the top band starts well below 1).
	switch {
	case latent < 0.35:
		return 1
	case latent < 0.52:
		return 2
	case latent < 0.67:
		return 3
	case latent < 0.82:
		return 4
	default:
		return 5
	}
}
