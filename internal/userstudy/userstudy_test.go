package userstudy

import (
	"testing"

	"github.com/svgic/svgic/internal/stats"
)

func TestRunDefaultStudy(t *testing.T) {
	out, err := Run(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Lambdas) != 44 {
		t.Fatalf("participants = %d, want 44", len(out.Lambdas))
	}
	for _, l := range out.Lambdas {
		if l < 0.15 || l > 0.85 {
			t.Fatalf("λ = %v outside the questionnaire range [0.15, 0.85]", l)
		}
	}
	if mean := stats.Mean(out.Lambdas); mean < 0.4 || mean > 0.65 {
		t.Errorf("λ mean = %v, want ≈ 0.53", mean)
	}
	if len(out.Methods) != 4 {
		t.Fatalf("methods = %d, want 4 (AVG, PER, FMG, GRF)", len(out.Methods))
	}
	if out.Methods[0].Name != "AVG" {
		t.Fatalf("first method = %s, want AVG", out.Methods[0].Name)
	}
	// The paper's headline finding: AVG has the highest utility and the
	// highest satisfaction, and satisfaction tracks utility strongly.
	for _, m := range out.Methods[1:] {
		if out.Methods[0].MeanScaledTotal <= m.MeanScaledTotal {
			t.Errorf("AVG utility %.2f not above %s's %.2f",
				out.Methods[0].MeanScaledTotal, m.Name, m.MeanScaledTotal)
		}
		if out.Methods[0].MeanSatisfaction <= m.MeanSatisfaction {
			t.Errorf("AVG satisfaction %.2f not above %s's %.2f",
				out.Methods[0].MeanSatisfaction, m.Name, m.MeanSatisfaction)
		}
	}
	if out.Spearman < 0.5 || out.Pearson < 0.5 {
		t.Errorf("utility↔satisfaction correlation too weak: Spearman %.3f Pearson %.3f",
			out.Spearman, out.Pearson)
	}
	if out.PValue > 0.05 {
		t.Errorf("AVG vs best baseline not significant: p = %.4f", out.PValue)
	}
	for _, m := range out.Methods {
		if m.MeanSatisfaction < 1 || m.MeanSatisfaction > 5 {
			t.Errorf("%s satisfaction %.2f outside the Likert range", m.Name, m.MeanSatisfaction)
		}
	}
	hist := 0
	for _, c := range out.LambdaHist {
		hist += c
	}
	if hist != 44 {
		t.Errorf("λ histogram counts %d participants", hist)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(Default())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Default())
	if err != nil {
		t.Fatal(err)
	}
	if a.Spearman != b.Spearman || a.Methods[0].MeanSatisfaction != b.Methods[0].MeanSatisfaction {
		t.Error("same study produced different results")
	}
}

func TestRunRejectsBadShape(t *testing.T) {
	s := Default()
	s.MinGroup = 1
	if _, err := Run(s); err == nil {
		t.Error("MinGroup = 1 accepted")
	}
	s = Default()
	s.Participants = 0
	if _, err := Run(s); err == nil {
		t.Error("0 participants accepted")
	}
}
