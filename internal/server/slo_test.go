package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/svgic/svgic/internal/engine"
	"github.com/svgic/svgic/internal/telemetry"
)

// sloObjective parses the shared e2e objective: p50 solve < 100ms over 60s
// on a 60s/12-bucket tracker (5s buckets, 5s fast window, 50% budget).
func sloObjective(t *testing.T) (telemetry.Objective, *telemetry.Tracker, *telemetry.ManualClock) {
	t.Helper()
	obj, err := telemetry.ParseObjective("p50 solve < 100ms over 60s")
	if err != nil {
		t.Fatal(err)
	}
	clk := telemetry.NewManualClock(time.Unix(50000, 0))
	tr := telemetry.NewTracker(telemetry.TrackerOptions{Clock: clk, Width: time.Minute, Buckets: 12})
	return obj, tr, clk
}

// burnSolve injects n over-threshold samples into the solve window.
func burnSolve(tr *telemetry.Tracker, n int, d time.Duration) {
	for i := 0; i < n; i++ {
		tr.Record("solve", d)
	}
}

// TestSLODegradeShedRecover drives the full feedback loop over httptest with
// zero sleeps: every state change is an injected sample plus a manual-clock
// advance, observed through real requests.
//
//	breach → degrade (ip rerouted to AVG-D, degraded:true)
//	breach persists past EscalateAfter → shed (effective cap halves)
//	samples age out → degrade → normal, one dwelled rung at a time
func TestSLODegradeShedRecover(t *testing.T) {
	obj, tr, clk := sloObjective(t)
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	srv, err := New(Options{
		Engine:           eng,
		MaxInFlight:      4,
		Telemetry:        tr,
		SLOs:             []telemetry.Objective{obj},
		SLOEvalEvery:     time.Nanosecond, // any read after a clock advance re-evaluates
		SLOEscalateAfter: 10 * time.Second,
		SLOMinDwell:      5 * time.Second,
		SLOShedFactor:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	stats := func() StatsResponse {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		var st StatsResponse
		decodeInto(t, data, &st)
		return st
	}

	_, body := testInstance(t, 1)
	ipBody := append([]byte(`{"algo":"ip",`), body[1:]...)

	// Healthy: an ip request runs the IP solver, undegraded.
	resp, data := postJSON(t, ts.URL+"/v1/solve", ipBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy ip solve: status %d: %s", resp.StatusCode, data)
	}
	var sr SolveResponse
	decodeInto(t, data, &sr)
	if sr.Degraded || sr.Algorithm != "IP" {
		t.Fatalf("healthy ip solve: algorithm %q degraded %v, want IP undegraded", sr.Algorithm, sr.Degraded)
	}

	// Burn the budget: bad samples dominate the window, the next request's
	// admission check re-evaluates and degrades, and the ip request lands on
	// the fallback, marked.
	burnSolve(tr, 10, 200*time.Millisecond)
	clk.Advance(10 * time.Millisecond)
	resp, data = postJSON(t, ts.URL+"/v1/solve", ipBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded ip solve: status %d: %s", resp.StatusCode, data)
	}
	decodeInto(t, data, &sr)
	if !sr.Degraded || sr.Algorithm != "AVG-D" {
		t.Fatalf("burning ip solve: algorithm %q degraded %v, want AVG-D degraded", sr.Algorithm, sr.Degraded)
	}
	st := stats()
	if st.SLO == nil || st.SLO.Level != "degrade" {
		t.Fatalf("slo = %+v, want level degrade", st.SLO)
	}
	if st.SLO.DegradedByAlgo["ip"] != 1 || st.SLO.DegradedTotal != 1 {
		t.Fatalf("degraded counters = %+v, want ip:1", st.SLO)
	}
	if len(st.SLO.Objectives) != 1 || st.SLO.Objectives[0].State != "breached" {
		t.Fatalf("objectives = %+v, want breached", st.SLO.Objectives)
	}
	if lat, ok := st.Latency["solve"]; !ok || lat.Count == 0 {
		t.Fatalf("latency = %+v, want a solve series", st.Latency)
	}

	// Degrading did not help for EscalateAfter: shed. The effective cap
	// halves (4 → 2) while the configured cap stands.
	clk.Advance(11 * time.Second)
	burnSolve(tr, 10, 200*time.Millisecond)
	st = stats()
	if st.SLO.Level != "shed" {
		t.Fatalf("level after EscalateAfter = %q, want shed", st.SLO.Level)
	}
	if st.SLO.EffectiveMaxInFlight != 2 || st.Server.MaxInFlight != 4 {
		t.Fatalf("caps = %d/%d, want effective 2 of 4", st.SLO.EffectiveMaxInFlight, st.Server.MaxInFlight)
	}

	// The bad samples age out of the slow window: de-escalation walks back
	// one dwelled rung at a time.
	clk.Advance(2 * time.Minute)
	if st = stats(); st.SLO.Level != "degrade" {
		t.Fatalf("level after recovery = %q, want degrade (one rung)", st.SLO.Level)
	}
	clk.Advance(6 * time.Second)
	if st = stats(); st.SLO.Level != "normal" {
		t.Fatalf("level after dwell = %q, want normal", st.SLO.Level)
	}
	if st.SLO.Transitions != 4 {
		t.Fatalf("transitions = %d, want exactly 4 (no flapping)", st.SLO.Transitions)
	}

	// Recovered: ip requests run IP again.
	resp, data = postJSON(t, ts.URL+"/v1/solve", ipBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered ip solve: status %d: %s", resp.StatusCode, data)
	}
	var recovered SolveResponse
	decodeInto(t, data, &recovered)
	if recovered.Degraded || recovered.Algorithm != "IP" {
		t.Fatalf("recovered ip solve: algorithm %q degraded %v, want IP undegraded", recovered.Algorithm, recovered.Degraded)
	}

	// The new families are scrapable.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	rawBytes, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	raw := string(rawBytes)
	for _, want := range []string{
		"svgicd_slo_burn_rate{slo=\"p50 solve < 100ms over 1m0s\",window=\"fast\"}",
		"svgicd_degraded_requests_by_algo_total{algo=\"ip\"} 1",
		"svgicd_latency_seconds_bucket{series=\"solve\"",
		"svgicd_latency_quantile_seconds{series=\"solve\",quantile=\"0.99\"}",
		"svgicd_effective_max_in_flight 4",
		"svgicd_slo_transitions_total 4",
	} {
		if !strings.Contains(raw, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSLOAdaptiveShed429 pins the shed rung's teeth: with the controller
// shedding, requests beyond the tightened cap are refused with 429 and a
// Retry-After derived from the route's observed p50 — while requests within
// the tightened cap still run.
func TestSLOAdaptiveShed429(t *testing.T) {
	obj, tr, clk := sloObjective(t)
	srv, gate, _ := newGatedServer(t, Options{
		MaxInFlight:      4,
		RetryAfter:       10 * time.Second,
		NoCoalesce:       true,
		Telemetry:        tr,
		SLOs:             []telemetry.Objective{obj},
		SLOEvalEvery:     time.Nanosecond,
		SLOEscalateAfter: time.Second,
		SLOMinDwell:      5 * time.Second,
		SLOShedFactor:    0.5,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Drive the ladder to shed: breach, then persist past EscalateAfter. The
	// 3s samples double as the p50 the Retry-After hint derives from.
	burnSolve(tr, 10, 3*time.Second)
	clk.Advance(10 * time.Millisecond)
	_ = srv.StatsSnapshot() // evaluate: degrade
	clk.Advance(2 * time.Second)
	burnSolve(tr, 10, 3*time.Second)
	st := srv.StatsSnapshot() // evaluate: shed
	if st.SLO.Level != "shed" || st.SLO.EffectiveMaxInFlight != 2 {
		t.Fatalf("slo = level %q cap %d, want shed with cap 2", st.SLO.Level, st.SLO.EffectiveMaxInFlight)
	}

	// Two requests fit the tightened cap and park on the gate.
	_, bodyA := testInstance(t, 1)
	_, bodyB := testInstance(t, 2)
	done := make(chan int, 2)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/solve", bodyA)
		done <- resp.StatusCode
	}()
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/solve", bodyB)
		done <- resp.StatusCode
	}()
	waitFor(t, "two requests to hold admission tokens", func() bool {
		return srv.StatsSnapshot().Server.InFlight == 2
	})

	// The third is beyond the effective cap: adaptive 429, Retry-After from
	// the observed p50 (3s, within [1s, configured 10s]).
	_, bodyC := testInstance(t, 3)
	resp, data := postJSON(t, ts.URL+"/v1/solve", bodyC)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("beyond effective cap: status %d: %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\" (derived from p50)", ra)
	}
	if !strings.Contains(string(data), "latency objectives") {
		t.Errorf("shed body %q does not name the cause", data)
	}
	st = srv.StatsSnapshot()
	if st.SLO.AdaptiveShed != 1 || st.Server.Shed != 1 {
		t.Fatalf("shed counters = adaptive %d total %d, want 1/1", st.SLO.AdaptiveShed, st.Server.Shed)
	}

	// The parked requests still complete: degrade/shed never cancels
	// admitted work.
	close(gate)
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("parked request finished with %d", code)
		}
	}
}

// TestSLONoAdaptiveAdmission: measurement without feedback — burn rates are
// reported, but nothing degrades and the cap never tightens.
func TestSLONoAdaptiveAdmission(t *testing.T) {
	obj, tr, clk := sloObjective(t)
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	srv, err := New(Options{
		Engine:              eng,
		MaxInFlight:         4,
		Telemetry:           tr,
		SLOs:                []telemetry.Objective{obj},
		SLOEvalEvery:        time.Nanosecond,
		NoAdaptiveAdmission: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	burnSolve(tr, 10, 200*time.Millisecond)
	clk.Advance(10 * time.Millisecond)

	_, body := testInstance(t, 1)
	ipBody := append([]byte(`{"algo":"ip",`), body[1:]...)
	resp, data := postJSON(t, ts.URL+"/v1/solve", ipBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var sr SolveResponse
	decodeInto(t, data, &sr)
	if sr.Degraded || sr.Algorithm != "IP" {
		t.Fatalf("feedback disabled but algorithm %q degraded %v", sr.Algorithm, sr.Degraded)
	}
	st := srv.StatsSnapshot()
	if st.SLO == nil || st.SLO.AdaptiveAdmission {
		t.Fatalf("slo = %+v, want reported with adaptiveAdmission false", st.SLO)
	}
	if st.SLO.EffectiveMaxInFlight != 4 {
		t.Fatalf("effective cap = %d, want the configured 4", st.SLO.EffectiveMaxInFlight)
	}
	if len(st.SLO.Objectives) != 1 || st.SLO.Objectives[0].SlowBurn < 1 {
		t.Fatalf("objectives = %+v, want a reported burn ≥ 1", st.SLO.Objectives)
	}
}
