package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/engine"
	"github.com/svgic/svgic/internal/registry"
	"github.com/svgic/svgic/internal/session"
)

// The live-session endpoints promote the dynamic scenario (Extension F) to
// the serving path:
//
//	POST   /v1/sessions              CreateSessionRequest  -> CreateSessionResponse
//	POST   /v1/sessions/{id}/events  SessionEventsRequest  -> SessionEventsResponse
//	GET    /v1/sessions/{id}                               -> SessionResponse
//	DELETE /v1/sessions/{id}                               -> 204
//
// Sessions are held by a session.Manager: versioned, serialized event
// application, bounded session count (429 on overflow), TTL idle eviction
// and background drift repair through the engine. The /v1/stats payload
// carries the manager's counters under "sessions".

// resolveSessionSolver resolves the solver backing a session — both its
// initial solve and its drift repair. It is resolveSolver plus the cap
// contract: a capped session's solver must solve the SAME capped problem
// the event path maintains, so when the request asks for a subgroup size
// cap the selected algorithm's schema must have a sizeCap parameter — it is
// injected when absent, and an explicitly conflicting value is rejected. A
// cap-incapable algorithm (e.g. "per") is a 400: its initial solve and
// every drift-repair re-solve would silently violate the session's bound.
func (s *Server) resolveSessionSolver(algo string, raw json.RawMessage, sizeCap int) (core.Solver, error) {
	if sizeCap > 0 {
		name := strings.ToLower(algo)
		if name == "" {
			name = s.opts.DefaultAlgo
		}
		spec, ok := registry.Lookup(name)
		if ok {
			capable := false
			for _, p := range spec.Params {
				if p.Name == "sizeCap" {
					capable = true
					break
				}
			}
			if !capable {
				return nil, fmt.Errorf("algorithm %q has no sizeCap parameter: it cannot solve the capped problem a sizeCap=%d session maintains", name, sizeCap)
			}
			params := registry.Params{}
			if len(raw) > 0 {
				if err := json.Unmarshal(raw, &params); err != nil {
					return nil, fmt.Errorf(`"params" must be an object: %v`, err)
				}
			}
			if set, have := params["sizeCap"]; have {
				if f, isNum := set.(float64); !isNum || f != float64(sizeCap) {
					return nil, fmt.Errorf(`"params".sizeCap %v conflicts with the session sizeCap %d`, set, sizeCap)
				}
			} else {
				params["sizeCap"] = sizeCap
			}
			merged, err := json.Marshal(params)
			if err != nil {
				return nil, err
			}
			raw = merged
		}
	}
	return s.resolveSolver(algo, raw)
}

// recoverSessions rebuilds every session persisted in the durable store and
// installs it into the manager, before the server takes its first request.
// Each session's drift-repair solver is re-resolved from its persisted
// registry reference through the SAME resolution path creates use (cap
// injection included), so a recovered capped session keeps repairing the
// capped problem. A session whose solver no longer resolves — a registry
// entry removed across the restart — recovers onto the engine default
// rather than being dropped: serving the exact pre-crash state matters more
// than which solver repairs it next.
func (s *Server) recoverSessions() error {
	recs, err := s.opts.Store.Recover()
	if err != nil {
		return fmt.Errorf("server: recovering sessions: %w", err)
	}
	for _, rec := range recs {
		solver, err := s.resolveSessionSolver(rec.State.Ref.Name, rec.State.Ref.Params, rec.State.SizeCap)
		if err != nil {
			solver = nil
		}
		if _, err := s.mgr.Restore(rec.State, solver, rec.SinceSnapshot); err != nil {
			return fmt.Errorf("server: restoring session %s: %w", rec.State.ID, err)
		}
	}
	return nil
}

// writeSessionError maps session-manager failures onto HTTP statuses:
// unknown id → 404, session limit → 429 + Retry-After, manager/engine shut
// down → 503, deadline/cancel → 504/499, anything else (event validation,
// inactive users, malformed vectors) → 400.
func (s *Server) writeSessionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, session.ErrNotFound):
		writeError(w, http.StatusNotFound, "no such session")
	case errors.Is(err, session.ErrLimit):
		s.shed.Add(1)
		// ErrLimit only arises on create; the hint derives from that route's
		// observed latency like the admission 429 does.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(routeSessionCreate)))
		writeError(w, http.StatusTooManyRequests, "session limit reached")
	case errors.Is(err, session.ErrClosed), errors.Is(err, engine.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "sessions are shut down")
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.writeSolveError(w, err)
	default:
		s.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, routeSessionCreate) {
		return
	}
	defer s.release()
	defer s.observe(routeSessionCreate)()
	timeout, err := s.requestTimeout(r)
	if err != nil {
		s.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var req CreateSessionRequest
	if err := core.DecodeStrict(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes), &req); err != nil {
		s.writeDecodeError(w, "decoding session request", err)
		return
	}
	if req.SizeCap < 0 {
		s.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("sizeCap %d is negative", req.SizeCap))
		return
	}
	in, err := core.InstanceFromJSON(&req.InstanceJSON)
	if err != nil {
		s.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	solver, err := s.resolveSessionSolver(req.Algo, req.Params, req.SizeCap)
	if err != nil {
		s.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// A degraded create swaps the whole solver identity, params and Ref
	// included: the session outlives the request, and its drift repair must
	// keep solving with the (cap-injected) fallback it was created on, not
	// the expensive solver the latency objective is protecting against.
	algoName, algoParams, degraded := req.Algo, req.Params, false
	if s.shouldDegrade(req.Algo) {
		if fallback, ferr := s.resolveSessionSolver(s.opts.DegradeAlgo, nil, req.SizeCap); ferr == nil {
			solver = fallback
			algoName, algoParams = s.opts.DegradeAlgo, nil
			degraded = true
			s.noteDegraded(req.Algo)
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	start := time.Now()
	snap, sol, err := s.mgr.CreateWith(ctx, in, session.CreateSpec{
		Solver:  solver,
		SizeCap: req.SizeCap,
		// The request's algorithm selection (after any degradation) is the
		// session's durable solver identity: recovery re-resolves it through
		// the same resolveSessionSolver path, so a restarted session repairs
		// with the same (cap-injected) solver it was created with.
		Ref: session.SolverRef{Name: strings.ToLower(algoName), Params: algoParams},
	})
	if err != nil {
		s.writeSessionError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, CreateSessionResponse{
		ID:        snap.ID,
		Algorithm: snap.Algorithm,
		Version:   snap.Version,
		Value:     snap.Value,
		Users:     snap.Users,
		SizeCap:   snap.SizeCap,
		Degraded:  degraded,
		SolveMS:   ms(sol.Wall),
		ElapsedMS: ms(time.Since(start)),
	})
}

func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, routeSessionEvents) {
		return
	}
	defer s.release()
	defer s.observe(routeSessionEvents)()
	var req SessionEventsRequest
	if err := core.DecodeStrict(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes), &req); err != nil {
		s.writeDecodeError(w, "decoding events", err)
		return
	}
	if len(req.Events) == 0 {
		s.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, "empty event batch")
		return
	}
	if len(req.Events) > s.opts.MaxBatch {
		s.badRequests.Add(1)
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("event batch of %d exceeds limit %d", len(req.Events), s.opts.MaxBatch))
		return
	}
	start := time.Now()
	res, err := s.mgr.Apply(r.PathValue("id"), req.Events)
	if err != nil {
		// Events apply in order and stop at the first failure; earlier
		// events stay applied, so the error names both the failure and how
		// far the batch got.
		s.writeSessionError(w, fmt.Errorf("%w (%d of %d events applied, version %d)",
			err, len(res.Results), len(req.Events), res.Version))
		return
	}
	writeJSON(w, http.StatusOK, SessionEventsResponse{
		Version:   res.Version,
		Value:     res.Value,
		Results:   res.Results,
		ElapsedMS: ms(time.Since(start)),
	})
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, routeSessionGet) {
		return
	}
	defer s.release()
	defer s.observe(routeSessionGet)()
	snap, err := s.mgr.Snapshot(r.PathValue("id"))
	if err != nil {
		s.writeSessionError(w, err)
		return
	}
	now := time.Now()
	writeJSON(w, http.StatusOK, SessionResponse{
		ID:         snap.ID,
		Algorithm:  snap.Algorithm,
		SizeCap:    snap.SizeCap,
		Version:    snap.Version,
		Value:      snap.Value,
		Users:      snap.Users,
		Active:     snap.Active,
		Slots:      snap.Slots,
		Assignment: snap.Assignment,
		AgeMS:      ms(now.Sub(snap.Created)),
		IdleMS:     ms(now.Sub(snap.LastTouch)),
		Metrics:    snap.Metrics,
	})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, routeSessionGet) {
		return
	}
	defer s.release()
	if err := s.mgr.Delete(r.PathValue("id")); err != nil {
		s.writeSessionError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
