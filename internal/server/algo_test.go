package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/engine"
	"github.com/svgic/svgic/internal/registry"
)

// newAlgoServer builds a default-engine server for the per-request algorithm
// tests.
func newAlgoServer(t *testing.T) (*Server, *engine.Engine, *httptest.Server) {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	srv, err := New(Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, eng, ts
}

// withAlgo wraps a marshalled instance with an "algo" (and optional
// "params") selection, exercising the real wire shape rather than the Go
// structs.
func withAlgo(t *testing.T, instance []byte, algo string, params string) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(instance, &m); err != nil {
		t.Fatal(err)
	}
	if algo != "" {
		m["algo"] = algo
	}
	if params != "" {
		m["params"] = json.RawMessage(params)
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func sameAssignment(a [][]int, b *core.Configuration) bool {
	for u := range b.Assign {
		for s := range b.Assign[u] {
			if a[u][s] != b.Assign[u][s] {
				return false
			}
		}
	}
	return true
}

// TestSolveAlgoSelectionDoesNotAlias is the acceptance property of the
// solver-registry redesign: "algo":"avgd" and "algo":"per" on the SAME
// instance return independently cached, non-aliased results — repeated
// requests are answered from the cache (keyed on fingerprint + solver) and
// each algorithm keeps returning its own configuration.
func TestSolveAlgoSelectionDoesNotAlias(t *testing.T) {
	srv, eng, ts := newAlgoServer(t)
	in, body := testInstance(t, 31)

	wantAVGD, _, err := core.SolveAVGD(in, core.AVGDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantPER := core.PersonalizedConfig(in)

	check := func(algo string, wantName string, want *core.Configuration) SolveResponse {
		t.Helper()
		resp, data := postJSON(t, ts.URL+"/v1/solve", withAlgo(t, body, algo, ""))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", algo, resp.StatusCode, data)
		}
		var sr SolveResponse
		decodeInto(t, data, &sr)
		if sr.Algorithm != wantName {
			t.Fatalf("%s: algorithm = %q, want %q", algo, sr.Algorithm, wantName)
		}
		if !sameAssignment(sr.Assignment, want) {
			t.Fatalf("%s: served assignment diverges from the library result", algo)
		}
		return sr
	}

	// First round fills two distinct cache entries for one fingerprint.
	check("avgd", "AVG-D", wantAVGD)
	check("per", "PER", wantPER)
	if st := eng.Stats(); st.CacheHits != 0 || st.Solved != 2 {
		t.Fatalf("after first round: %+v, want 2 solves and no hits", st)
	}
	// Second round: both served from cache, still non-aliased.
	check("avgd", "AVG-D", wantAVGD)
	check("per", "PER", wantPER)
	st := eng.Stats()
	if st.CacheHits != 2 || st.Solved != 2 {
		t.Fatalf("after second round: %+v, want 2 hits over 2 solves", st)
	}
	// Per-algorithm counters split the traffic and keep the identity.
	for _, name := range []string{"AVG-D", "PER"} {
		a, ok := st.PerAlgorithm[name]
		if !ok {
			t.Fatalf("no per-algorithm counters for %s: %+v", name, st.PerAlgorithm)
		}
		if a.Solves != 2 || a.CacheHits != 1 || a.Solved != 1 {
			t.Errorf("%s counters = %+v, want 2 solves = 1 hit + 1 solved", name, a)
		}
	}
	// The per-algorithm split shows up over the wire too.
	snap := srv.StatsSnapshot()
	if got := snap.Engine.PerAlgorithm["PER"].Solves; got != 2 {
		t.Errorf("wire per-algo PER solves = %d, want 2", got)
	}
}

// TestSolveAlgoParams: "params" parameterizes the chosen algorithm (and the
// default algorithm when "algo" is absent), with the same strictness as the
// registry — unknown names and bad values are a 400 naming the problem.
func TestSolveAlgoParams(t *testing.T) {
	_, _, ts := newAlgoServer(t)
	in, body := testInstance(t, 32)

	// avg with an explicit seed must equal the library run with that seed.
	want, _, err := core.SolveAVG(in, core.AVGOptions{Seed: 5, Repeats: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The engine decomposes (AVG is component-safe), so compare against the
	// equivalent per-component library merge.
	subs, origs := core.ComponentDecompose(in)
	if len(subs) > 1 {
		parts := make([]*core.Configuration, len(subs))
		for i, sub := range subs {
			if parts[i], _, err = core.SolveAVG(sub, core.AVGOptions{Seed: 5, Repeats: 3}); err != nil {
				t.Fatal(err)
			}
		}
		want = core.MergeConfigurations(in.NumUsers(), in.K, parts, origs)
	}
	resp, data := postJSON(t, ts.URL+"/v1/solve", withAlgo(t, body, "avg", `{"seed": 5}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("avg seed=5: status %d: %s", resp.StatusCode, data)
	}
	var sr SolveResponse
	decodeInto(t, data, &sr)
	if sr.Algorithm != "AVG" {
		t.Errorf("algorithm = %q, want AVG", sr.Algorithm)
	}
	if !sameAssignment(sr.Assignment, want) {
		t.Error("served AVG(seed=5) diverges from the library result")
	}

	// Unknown algorithm: 400 listing the registry.
	resp, data = postJSON(t, ts.URL+"/v1/solve", withAlgo(t, body, "gurobi", ""))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown algo: status %d, want 400", resp.StatusCode)
	}
	var er ErrorResponse
	decodeInto(t, data, &er)
	if !strings.Contains(er.Error, "unknown solver") || !strings.Contains(er.Error, "avgd") {
		t.Errorf("unknown-algo error %q does not list the registry", er.Error)
	}

	// Unknown parameter: 400 naming it.
	resp, data = postJSON(t, ts.URL+"/v1/solve", withAlgo(t, body, "avgd", `{"rr": 1}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown param: status %d, want 400", resp.StatusCode)
	}
	decodeInto(t, data, &er)
	if !strings.Contains(er.Error, `"rr"`) {
		t.Errorf("unknown-param error %q does not name the parameter", er.Error)
	}

	// Out-of-range parameter: 400 from the solver's validation.
	resp, data = postJSON(t, ts.URL+"/v1/solve", withAlgo(t, body, "avgd", `{"sizeCap": -1}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad param value: status %d, want 400", resp.StatusCode)
	}
	decodeInto(t, data, &er)
	if !strings.Contains(er.Error, "sizeCap") {
		t.Errorf("range error %q does not name the parameter", er.Error)
	}
}

// TestDefaultParamsBackExplicitDefaultAlgo: a request naming the server's
// default algorithm explicitly resolves the server's flag-derived default
// parameters (svgicd passes the same params it built the engine with), so
// bare and explicit requests return the same result; request "params"
// overlay the defaults.
func TestDefaultParamsBackExplicitDefaultAlgo(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	srv, err := New(Options{
		Engine:        eng,
		DefaultAlgo:   "avgd",
		DefaultParams: registry.Params{"r": 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	in, body := testInstance(t, 34)

	// {"algo":"avgd"} must resolve r=1 (the server default), not the
	// registry default r=0.25.
	want, _, err := core.SolveAVGD(in, core.AVGDOptions{R: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts.URL+"/v1/solve", withAlgo(t, body, "avgd", ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var sr SolveResponse
	decodeInto(t, data, &sr)
	if !sameAssignment(sr.Assignment, want) {
		t.Error(`explicit {"algo":"avgd"} diverges from the server's configured default parameters`)
	}

	// Case variants of the default algorithm select the same defaults
	// (registry lookup is case-insensitive, so the overlay must be too).
	resp, data = postJSON(t, ts.URL+"/v1/solve", withAlgo(t, body, "AVGD", ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upper-case algo: status %d: %s", resp.StatusCode, data)
	}
	decodeInto(t, data, &sr)
	if !sameAssignment(sr.Assignment, want) {
		t.Error(`{"algo":"AVGD"} dropped the server's default parameters`)
	}

	// Request params overlay the server defaults.
	wantQuarter, _, err := core.SolveAVGD(in, core.AVGDOptions{R: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	resp, data = postJSON(t, ts.URL+"/v1/solve", withAlgo(t, body, "avgd", `{"r": 0.25}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("override: status %d: %s", resp.StatusCode, data)
	}
	decodeInto(t, data, &sr)
	if !sameAssignment(sr.Assignment, wantQuarter) {
		t.Error(`request "params" did not overlay the server defaults`)
	}

	// Invalid DefaultParams fail at construction, not on the first request.
	if _, err := New(Options{Engine: eng, DefaultParams: registry.Params{"bogus": 1}}); err == nil {
		t.Error("bad DefaultParams accepted at server construction")
	}
}

// TestBatchMixedAlgorithms: one batch may mix algorithms per item; results
// stay positional and per-item correct.
func TestBatchMixedAlgorithms(t *testing.T) {
	_, _, ts := newAlgoServer(t)
	in, body := testInstance(t, 33)

	var sr SolveRequest
	decodeInto(t, body, &sr.InstanceJSON)
	avgd := sr
	avgd.Algo = "avgd"
	per := sr
	per.Algo = "per"
	batch, err := json.Marshal([]SolveRequest{avgd, per, avgd})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts.URL+"/v1/solve/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var br BatchResponse
	decodeInto(t, data, &br)
	if len(br.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(br.Results))
	}
	wantAVGD, _, err := core.SolveAVGD(in, core.AVGDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantPER := core.PersonalizedConfig(in)
	for i, want := range []*core.Configuration{wantAVGD, wantPER, wantAVGD} {
		wantName := "AVG-D"
		if i == 1 {
			wantName = "PER"
		}
		if br.Results[i].Algorithm != wantName {
			t.Errorf("result %d: algorithm %q, want %q", i, br.Results[i].Algorithm, wantName)
		}
		if !sameAssignment(br.Results[i].Assignment, want) {
			t.Errorf("result %d diverges from the %s library result", i, wantName)
		}
	}
}

// TestAlgorithmsEndpoint: the registry is discoverable over the wire, with
// parameter schemas.
func TestAlgorithmsEndpoint(t *testing.T) {
	_, _, ts := newAlgoServer(t)
	resp, err := http.Get(ts.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var ar AlgorithmsResponse
	decodeInto(t, data, &ar)
	if ar.Default != "avgd" {
		t.Errorf("default = %q, want avgd", ar.Default)
	}
	byName := map[string]AlgorithmInfo{}
	for _, a := range ar.Algorithms {
		byName[a.Name] = a
	}
	for _, name := range []string{"avg", "avgd", "per", "fmg", "sdp", "grf", "ip"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("algorithm %q missing from /v1/algorithms", name)
		}
	}
	if byName["avgd"].Display != "AVG-D" {
		t.Errorf("avgd display = %q", byName["avgd"].Display)
	}
	var hasR bool
	for _, p := range byName["avgd"].Params {
		if p.Name == "r" && p.Kind == "float" {
			hasR = true
		}
	}
	if !hasR {
		t.Error("avgd parameter schema does not describe r")
	}
	// POST is refused.
	post, err := http.Post(ts.URL+"/v1/algorithms", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, post.Body)
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/algorithms: status %d, want 405", post.StatusCode)
	}
}
