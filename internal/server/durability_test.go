package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/engine"
	"github.com/svgic/svgic/internal/session"
	"github.com/svgic/svgic/internal/store"
)

// durableStack is the full durable serving stack over one data directory:
// engine + store + manager (persisting through the store) + server
// (recovering through the store) + httptest front.
type durableStack struct {
	eng *engine.Engine
	st  *store.Store
	mgr *session.Manager
	srv *Server
	ts  *httptest.Server
}

func openDurableStack(t *testing.T, dir string, policy store.SyncPolicy, snapshotEvery int) *durableStack {
	t.Helper()
	backend, err := store.NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(store.Options{Backend: backend, Sync: policy})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Workers: 2})
	mgr, err := session.NewManager(session.Options{
		Engine:        eng,
		Persister:     st,
		SnapshotEvery: snapshotEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Engine: eng, Sessions: mgr, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	return &durableStack{eng: eng, st: st, mgr: mgr, srv: srv, ts: httptest.NewServer(srv)}
}

// stop tears the stack down in dependency order (flushing everything to
// disk — the in-process analogue of a clean restart; torn-tail and
// mid-write crash shapes are exercised by the store tests and the
// crash-smoke lane, which SIGKILLs a real process).
func (d *durableStack) stop() {
	d.ts.Close()
	d.mgr.Close()
	d.st.Close()
	d.eng.Close()
}

// TestKillRestartServesIdenticalState is the PR's acceptance test at the
// serving layer, run under every fsync policy: sessions created over HTTP
// (mixed algorithms, one SVGIC-ST-capped), driven with a recorded trace,
// then the whole stack is torn down and rebuilt on the same directory —
// recovery must serve the identical (version, value, configuration, active
// set) that an offline session.Replay of the recorded trace produces, with
// snapshot compaction bounding the replayed tail (asserted via store
// stats), a pre-crash DELETE staying deleted, and recovered sessions
// keeping their algorithm for drift repair.
func TestKillRestartServesIdenticalState(t *testing.T) {
	for _, policy := range []store.SyncPolicy{store.SyncAlways, store.SyncInterval, store.SyncOff} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			d := openDurableStack(t, dir, policy, 8)

			type tracked struct {
				id     string
				algo   string
				cap    int
				in     *core.Instance
				events []session.Event
			}
			var live []*tracked
			for i, spec := range []struct {
				algo string
				cap  int
			}{{"avgd", 0}, {"avg", 0}, {"avgd", 2}} {
				in, raw := testInstance(t, uint64(60+i))
				trace := session.GenerateEvents(in.NumUsers(), in.NumItems, 21, uint64(600+i))
				var req CreateSessionRequest
				decodeInto(t, raw, &req.InstanceJSON)
				req.Algo = spec.algo
				req.SizeCap = spec.cap
				body, err := json.Marshal(req)
				if err != nil {
					t.Fatal(err)
				}
				resp, data := doJSON(t, http.MethodPost, d.ts.URL+"/v1/sessions", body)
				if resp.StatusCode != http.StatusCreated {
					t.Fatalf("create %d: status %d: %s", i, resp.StatusCode, data)
				}
				var created CreateSessionResponse
				decodeInto(t, data, &created)
				tr := &tracked{id: created.ID, algo: spec.algo, cap: spec.cap, in: in, events: trace}
				live = append(live, tr)
				for at := 0; at < len(trace); at += 4 {
					end := min(at+4, len(trace))
					eb, err := json.Marshal(SessionEventsRequest{Events: trace[at:end]})
					if err != nil {
						t.Fatal(err)
					}
					resp, data := doJSON(t, http.MethodPost, d.ts.URL+"/v1/sessions/"+created.ID+"/events", eb)
					if resp.StatusCode != http.StatusOK {
						t.Fatalf("events[%d:%d]: status %d: %s", at, end, resp.StatusCode, data)
					}
				}
			}
			// One more session, deleted before the crash: its tombstone must
			// hold across the restart.
			_, rawDel := testInstance(t, 77)
			var delReq CreateSessionRequest
			decodeInto(t, rawDel, &delReq.InstanceJSON)
			delBody, _ := json.Marshal(delReq)
			resp, data := doJSON(t, http.MethodPost, d.ts.URL+"/v1/sessions", delBody)
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("create deletable: status %d: %s", resp.StatusCode, data)
			}
			var deletable CreateSessionResponse
			decodeInto(t, data, &deletable)
			if resp, _ := doJSON(t, http.MethodDelete, d.ts.URL+"/v1/sessions/"+deletable.ID, nil); resp.StatusCode != http.StatusNoContent {
				t.Fatalf("delete: status %d", resp.StatusCode)
			}

			d.stop()

			// Restart on the same directory; server.New recovers before the
			// first request.
			d2 := openDurableStack(t, dir, policy, 8)
			defer d2.stop()

			for _, tr := range live {
				resp, data := doJSON(t, http.MethodGet, d2.ts.URL+"/v1/sessions/"+tr.id, nil)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("recovered GET %s: status %d: %s", tr.id, resp.StatusCode, data)
				}
				var got SessionResponse
				decodeInto(t, data, &got)

				// Ground truth: solve through an identically configured
				// engine path and replay the full recorded trace offline.
				solver, err := d2.srv.resolveSessionSolver(tr.algo, nil, tr.cap)
				if err != nil {
					t.Fatal(err)
				}
				var sol *core.Solution
				if solver != nil {
					sol, err = d2.eng.SolveWith(context.Background(), tr.in, solver)
				} else {
					sol, err = d2.eng.Solve(context.Background(), tr.in)
				}
				if err != nil {
					t.Fatal(err)
				}
				ds, err := core.NewDynamicSession(tr.in, sol.Config, tr.cap)
				if err != nil {
					t.Fatal(err)
				}
				if n, err := session.Replay(ds, tr.events); err != nil {
					t.Fatalf("offline replay stopped at %d: %v", n, err)
				}
				if got.Version != uint64(len(tr.events)) {
					t.Fatalf("session %s recovered at v%d, want v%d", tr.id, got.Version, len(tr.events))
				}
				if got.Value != ds.Value() {
					t.Fatalf("session %s: recovered value %v != offline replay %v", tr.id, got.Value, ds.Value())
				}
				wantConf := ds.Config()
				for u := range wantConf.Assign {
					for sl := range wantConf.Assign[u] {
						if got.Assignment[u][sl] != wantConf.Assign[u][sl] {
							t.Fatalf("session %s: assignment[%d][%d] = %d, offline %d",
								tr.id, u, sl, got.Assignment[u][sl], wantConf.Assign[u][sl])
						}
					}
				}
				wantActive := ds.ActiveUsers()
				if len(got.Active) != len(wantActive) {
					t.Fatalf("session %s: %d active, offline %d", tr.id, len(got.Active), len(wantActive))
				}
				for i := range wantActive {
					if got.Active[i] != wantActive[i] {
						t.Fatalf("session %s: active[%d] = %d, offline %d", tr.id, i, got.Active[i], wantActive[i])
					}
				}
				if tr.cap > 0 {
					conf := &core.Configuration{Assign: got.Assignment, K: got.Slots}
					if m := conf.MaxSubgroupSize(); m > tr.cap {
						t.Fatalf("session %s: recovered subgroup size %d violates cap %d", tr.id, m, tr.cap)
					}
				}
			}

			// The deleted session stays dead.
			if resp, _ := doJSON(t, http.MethodGet, d2.ts.URL+"/v1/sessions/"+deletable.ID, nil); resp.StatusCode != http.StatusNotFound {
				t.Fatalf("deleted session resurrected: status %d", resp.StatusCode)
			}

			// Store stats over HTTP: everything recovered, and the snapshot
			// cadence (8) bounded replay to the post-snapshot tails — far
			// fewer than the 63 events ever applied.
			resp, data = doJSON(t, http.MethodGet, d2.ts.URL+"/v1/stats", nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("stats: status %d", resp.StatusCode)
			}
			var stats StatsResponse
			decodeInto(t, data, &stats)
			if stats.Store == nil || !stats.Store.Enabled {
				t.Fatal("store stats missing from /v1/stats")
			}
			if stats.Store.RecoveredSessions != 3 || stats.Store.RecoveryErrors != 0 {
				t.Fatalf("recovered %d sessions (%d errors), want 3/0",
					stats.Store.RecoveredSessions, stats.Store.RecoveryErrors)
			}
			total := uint64(3 * 21)
			if stats.Store.ReplayedEvents >= total {
				t.Fatalf("recovery replayed %d of %d events; snapshots did not bound the tail",
					stats.Store.ReplayedEvents, total)
			}
			if stats.Sessions.Restored != 3 {
				t.Fatalf("manager restored = %d, want 3", stats.Sessions.Restored)
			}
		})
	}
}

// TestRecoveredSessionKeepsAlgorithm: the persisted solver reference
// survives the restart — a session created with a non-default algorithm
// recovers reporting (and repairing with) that algorithm.
func TestRecoveredSessionKeepsAlgorithm(t *testing.T) {
	dir := t.TempDir()
	d := openDurableStack(t, dir, store.SyncOff, 1000)
	_, raw := testInstance(t, 71)
	var req CreateSessionRequest
	decodeInto(t, raw, &req.InstanceJSON)
	req.Algo = "avg"
	body, _ := json.Marshal(req)
	resp, data := doJSON(t, http.MethodPost, d.ts.URL+"/v1/sessions", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, data)
	}
	var created CreateSessionResponse
	decodeInto(t, data, &created)
	d.stop()

	d2 := openDurableStack(t, dir, store.SyncOff, 1000)
	defer d2.stop()
	resp, data = doJSON(t, http.MethodGet, d2.ts.URL+"/v1/sessions/"+created.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered GET: status %d", resp.StatusCode)
	}
	var got SessionResponse
	decodeInto(t, data, &got)
	if got.Algorithm != created.Algorithm {
		t.Fatalf("recovered algorithm %q, want %q", got.Algorithm, created.Algorithm)
	}
}

// TestMetricsEndpoint: /metrics speaks Prometheus text format, carries the
// serving families, and agrees with /v1/stats.
func TestMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	d := openDurableStack(t, dir, store.SyncOff, 1000)
	defer d.stop()
	_, raw := testInstance(t, 72)
	var req CreateSessionRequest
	decodeInto(t, raw, &req.InstanceJSON)
	body, _ := json.Marshal(req)
	if resp, data := doJSON(t, http.MethodPost, d.ts.URL+"/v1/sessions", body); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, data)
	}
	// The creation snapshot is written asynchronously by a store shard;
	// wait for it so the snapshots counter below is deterministic.
	d.st.Barrier()

	resp, err := http.Get(d.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	raw2, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw2)

	for _, want := range []string{
		"# TYPE svgicd_requests_admitted_total counter",
		"# TYPE svgicd_engine_solves_total counter",
		"# TYPE svgicd_sessions_live gauge",
		"svgicd_sessions_live 1",
		"svgicd_sessions_created_total 1",
		`svgicd_engine_algo_solves_total{algo=`,
		"# TYPE svgicd_store_appends_total counter",
		"svgicd_store_snapshots_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q\n---\n%s", want, text)
		}
	}

	// POST is refused.
	pr, err := http.Post(d.ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics: status %d, want 405", pr.StatusCode)
	}
}
