package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/engine"
	"github.com/svgic/svgic/internal/registry"
	"github.com/svgic/svgic/internal/session"
)

// newSessionServer builds an engine + manager + server stack for the
// live-session tests and returns the manager for white-box pokes (manual
// repair cycles).
func newSessionServer(t *testing.T, mopts session.Options, sopts Options) (*httptest.Server, *session.Manager) {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	mopts.Engine = eng
	mgr, err := session.NewManager(mopts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	sopts.Engine = eng
	sopts.Sessions = mgr
	srv, err := New(sopts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, mgr
}

func doJSON(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestSessionTraceReplayMatchesOffline is the end-to-end acceptance check:
// create a session over HTTP, stream a recorded join/leave/update trace at
// it in batches, and the final GET must report a configuration whose value
// matches an offline core.DynamicSession replay of the same trace — bit for
// bit — with the version counting exactly the applied events.
func TestSessionTraceReplayMatchesOffline(t *testing.T) {
	ts, _ := newSessionServer(t, session.Options{}, Options{})
	in, raw := testInstance(t, 81)
	trace := session.NewTrace(in, 0, 36, 4242)

	var create CreateSessionRequest
	decodeInto(t, raw, &create.InstanceJSON)
	create.Algo = "avgd"
	body, err := json.Marshal(create)
	if err != nil {
		t.Fatal(err)
	}
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, data)
	}
	var created CreateSessionResponse
	decodeInto(t, data, &created)
	if created.ID == "" || created.Version != 0 {
		t.Fatalf("create response: %+v", created)
	}

	version := created.Version
	for at := 0; at < len(trace.Events); at += 5 {
		end := min(at+5, len(trace.Events))
		body, err := json.Marshal(SessionEventsRequest{Events: trace.Events[at:end]})
		if err != nil {
			t.Fatal(err)
		}
		resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+created.ID+"/events", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("events[%d:%d]: status %d: %s", at, end, resp.StatusCode, data)
		}
		var er SessionEventsResponse
		decodeInto(t, data, &er)
		if want := version + uint64(end-at); er.Version != want {
			t.Fatalf("events[%d:%d]: version %d, want %d", at, end, er.Version, want)
		}
		if len(er.Results) != end-at {
			t.Fatalf("events[%d:%d]: %d results", at, end, len(er.Results))
		}
		version = er.Version
	}

	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+created.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: status %d: %s", resp.StatusCode, data)
	}
	var got SessionResponse
	decodeInto(t, data, &got)

	// Offline replay: same algorithm (explicitly "avgd", as the request
	// named), same starting configuration, same event-application semantics.
	solver, err := registry.New("avgd", nil)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := solver.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := core.NewDynamicSession(in, sol.Config, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := session.Replay(ds, trace.Events); err != nil {
		t.Fatalf("offline replay stopped at %d: %v", n, err)
	}
	if got.Value != ds.Value() {
		t.Fatalf("served value %v != offline replay value %v", got.Value, ds.Value())
	}
	if got.Version != uint64(len(trace.Events)) {
		t.Fatalf("version %d, want %d", got.Version, len(trace.Events))
	}
	offConf := ds.Config()
	if len(got.Assignment) != len(offConf.Assign) {
		t.Fatalf("assignment covers %d users, offline %d", len(got.Assignment), len(offConf.Assign))
	}
	for u := range offConf.Assign {
		for s, it := range offConf.Assign[u] {
			if got.Assignment[u][s] != it {
				t.Fatalf("assignment[%d][%d] = %d, offline %d", u, s, got.Assignment[u][s], it)
			}
		}
	}
	if len(got.Active) != len(ds.ActiveUsers()) {
		t.Fatalf("active %d != offline %d", len(got.Active), len(ds.ActiveUsers()))
	}
	if got.Metrics.EventsApplied != uint64(len(trace.Events)) {
		t.Fatalf("metrics events = %d, want %d", got.Metrics.EventsApplied, len(trace.Events))
	}
}

// TestSessionDriftRepairOverHTTP: degrade a live session, run a repair
// cycle, and the swap shows up in the session response and /v1/stats.
func TestSessionDriftRepairOverHTTP(t *testing.T) {
	ts, mgr := newSessionServer(t, session.Options{RepairMargin: -1}, Options{})
	in, raw := testInstance(t, 82)

	var create CreateSessionRequest
	decodeInto(t, raw, &create.InstanceJSON)
	body, err := json.Marshal(create)
	if err != nil {
		t.Fatal(err)
	}
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, data)
	}
	var created CreateSessionResponse
	decodeInto(t, data, &created)

	// Drift the session away from optimal: flood it with churn that the
	// incremental path absorbs greedily, then let repair re-solve. To make
	// the swap deterministic, degrade through the API: a stream of joins
	// whose greedy admission leaves value on the table is not guaranteed, so
	// instead apply updatePreference events that shuffle everyone's
	// preferences — the incremental best responses land in a local optimum.
	events := make([]session.Event, 0, in.NumUsers())
	for u := 0; u < in.NumUsers(); u++ {
		pref := make([]float64, in.NumItems)
		for c := range pref {
			pref[c] = float64((c+u*3)%in.NumItems) / float64(in.NumItems)
		}
		events = append(events, session.Event{Type: session.EventUpdatePreference, User: u, Pref: pref})
	}
	body, err = json.Marshal(SessionEventsRequest{Events: events})
	if err != nil {
		t.Fatal(err)
	}
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+created.ID+"/events", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d: %s", resp.StatusCode, data)
	}
	var afterEvents SessionEventsResponse
	decodeInto(t, data, &afterEvents)

	mgr.RepairAll(context.Background())

	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+created.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: status %d: %s", resp.StatusCode, data)
	}
	var got SessionResponse
	decodeInto(t, data, &got)
	cycles := got.Metrics.RepairSwaps + got.Metrics.RepairKeeps
	if cycles != 1 {
		t.Fatalf("repair cycles = %d (swaps=%d keeps=%d), want 1",
			cycles, got.Metrics.RepairSwaps, got.Metrics.RepairKeeps)
	}
	if got.Metrics.RepairSwaps == 1 {
		if got.Value < afterEvents.Value {
			t.Fatalf("swap decreased value: %v -> %v", afterEvents.Value, got.Value)
		}
		if got.Version != afterEvents.Version+1 {
			t.Fatalf("swap version %d, want %d", got.Version, afterEvents.Version+1)
		}
	}

	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	var st StatsResponse
	decodeInto(t, data, &st)
	if !st.Sessions.Enabled || st.Sessions.Live != 1 || st.Sessions.Created != 1 {
		t.Fatalf("sessions stats: %+v", st.Sessions)
	}
	if st.Sessions.RepairRuns != 1 {
		t.Fatalf("stats repair runs = %d, want 1", st.Sessions.RepairRuns)
	}
	if st.Sessions.EventsApplied != uint64(len(events)) {
		t.Fatalf("stats events = %d, want %d", st.Sessions.EventsApplied, len(events))
	}
}

// TestSessionDriftRepairSwapsStuckSession forces the demonstrable swap
// using only the public API: a coordination-game store where the
// incremental join path provably lands in a local optimum a full re-solve
// beats.
//
// The store has one shopper (u0) and two items: A with preference 0.6, B
// with preference 0.5. The initial solve shows u0 item A. Then u1 joins
// with the same preferences and a strong mutual social tie on item B
// (τ = 1.0 each direction). The admission best response puts u1 on A too
// (0.5·0.6 alone beats 0.5·0.5 alone, and u0 is on A so there is no
// co-display gain on B to collect) and u0's reaction pass cannot move
// either — moving to B alone strictly loses. The session is stuck at
// weighted value 0.6 while the full re-solve co-displays B for a weighted
// value of 0.5·(0.5+0.5) + 0.5·(1.0+1.0) = 1.5. The drift-repair cycle must
// swap it in.
func TestSessionDriftRepairSwapsStuckSession(t *testing.T) {
	ts, mgr := newSessionServer(t, session.Options{}, Options{})

	create := []byte(`{
		"users": 1, "items": 2, "slots": 1, "lambda": 0.5,
		"preferences": [[0.6, 0.5]]
	}`)
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", create)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, data)
	}
	var created CreateSessionResponse
	decodeInto(t, data, &created)

	join := []byte(`{"events": [{
		"type": "join",
		"pref": [0.6, 0.5],
		"friends": [{"id": 0, "out": [0, 1.0], "in": [0, 1.0]}]
	}]}`)
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+created.ID+"/events", join)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: status %d: %s", resp.StatusCode, data)
	}
	var joined SessionEventsResponse
	decodeInto(t, data, &joined)
	if joined.Value != 0.6 {
		t.Fatalf("incremental value = %v, want the stuck 0.6", joined.Value)
	}

	mgr.RepairAll(context.Background())

	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+created.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: status %d", resp.StatusCode)
	}
	var repaired SessionResponse
	decodeInto(t, data, &repaired)
	if repaired.Metrics.RepairSwaps != 1 {
		t.Fatalf("repair swaps = %d, want 1 (value %v)", repaired.Metrics.RepairSwaps, repaired.Value)
	}
	if repaired.Value != 1.5 {
		t.Fatalf("repaired value = %v, want the re-solved 1.5", repaired.Value)
	}
	if repaired.Version != joined.Version+1 {
		t.Fatalf("swap version = %d, want %d", repaired.Version, joined.Version+1)
	}
	// Both shoppers co-display item B after the swap.
	for u, row := range repaired.Assignment {
		if len(row) != 1 || row[0] != 1 {
			t.Fatalf("shopper %d sees %v, want item 1 (B)", u, row)
		}
	}
}

// TestSessionEndpointErrors: the HTTP error contract of the session surface.
func TestSessionEndpointErrors(t *testing.T) {
	ts, _ := newSessionServer(t, session.Options{MaxSessions: 1}, Options{})
	_, raw := testInstance(t, 84)
	var create CreateSessionRequest
	decodeInto(t, raw, &create.InstanceJSON)
	body, err := json.Marshal(create)
	if err != nil {
		t.Fatal(err)
	}

	// Unknown id → 404 for GET, events and DELETE.
	for _, probe := range []struct {
		method, path string
		body         []byte
	}{
		{http.MethodGet, "/v1/sessions/nope", nil},
		{http.MethodPost, "/v1/sessions/nope/events", mustJSON(t, SessionEventsRequest{Events: []session.Event{{Type: session.EventRebalance}}})},
		{http.MethodDelete, "/v1/sessions/nope", nil},
	} {
		resp, data := doJSON(t, probe.method, ts.URL+probe.path, probe.body)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s: status %d: %s", probe.method, probe.path, resp.StatusCode, data)
		}
	}

	// Create within the bound, then overflow → 429 with Retry-After.
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, data)
	}
	var created CreateSessionResponse
	decodeInto(t, data, &created)
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow create: status %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Bad event batches → 400; oversized batch → 413; unknown field → 400.
	bad := []struct {
		name string
		body string
		want int
	}{
		{"empty batch", `{"events": []}`, http.StatusBadRequest},
		{"unknown event type", `{"events": [{"type": "jump"}]}`, http.StatusBadRequest},
		{"unknown field", `{"events": [{"type": "rebalance", "passes": 3}]}`, http.StatusBadRequest},
		{"inactive user", `{"events": [{"type": "leave", "user": 999}]}`, http.StatusBadRequest},
		{"short join pref", `{"events": [{"type": "join", "pref": [1]}]}`, http.StatusBadRequest},
	}
	for _, tc := range bad {
		resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+created.ID+"/events", []byte(tc.body))
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.want, data)
		}
	}
	big := SessionEventsRequest{}
	for i := 0; i < DefaultMaxBatch+1; i++ {
		big.Events = append(big.Events, session.Event{Type: session.EventRebalance, MaxPasses: 1})
	}
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+created.ID+"/events", mustJSON(t, big))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d: %s", resp.StatusCode, data)
	}

	// Partial batch failure → 400 naming how far it got; the prefix stays.
	partial := `{"events": [{"type": "leave", "user": 0}, {"type": "leave", "user": 0}]}`
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+created.ID+"/events", []byte(partial))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partial batch: status %d: %s", resp.StatusCode, data)
	}
	var er ErrorResponse
	decodeInto(t, data, &er)
	if !strings.Contains(er.Error, "1 of 2 events applied") {
		t.Fatalf("partial batch error lacks progress: %q", er.Error)
	}

	// Bad create payloads.
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", []byte(`{"users": 1}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid instance create: status %d: %s", resp.StatusCode, data)
	}

	// DELETE then GET → 404, and capacity is freed.
	resp, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+created.ID, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+created.ID, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status %d", resp.StatusCode)
	}
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create after delete: status %d: %s", resp.StatusCode, data)
	}
}

// TestSessionCappedCreate: a capped session resolves a capped solver (the
// injected sizeCap param) and its initial configuration respects the bound;
// cap-incapable or cap-conflicting selections are 400s, because their
// initial solve and every drift repair would silently violate the bound.
func TestSessionCappedCreate(t *testing.T) {
	ts, mgr := newSessionServer(t, session.Options{}, Options{})
	_, raw := testInstance(t, 85)
	var create CreateSessionRequest
	decodeInto(t, raw, &create.InstanceJSON)
	create.SizeCap = 2

	for _, tc := range []struct{ name, patch string }{
		{"cap-incapable algo", `"algo": "per"`},
		{"conflicting params cap", `"algo": "avgd", "params": {"sizeCap": 3}`},
	} {
		create.Algo = ""
		create.Params = nil
		body := mustJSON(t, create)
		body = append([]byte(`{`+tc.patch+`,`), body[1:]...)
		resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, data)
		}
	}

	body, err := json.Marshal(create)
	if err != nil {
		t.Fatal(err)
	}
	resp, data := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("capped create: status %d: %s", resp.StatusCode, data)
	}
	var created CreateSessionResponse
	decodeInto(t, data, &created)
	if created.SizeCap != 2 {
		t.Fatalf("sizeCap = %d, want 2", created.SizeCap)
	}
	resp, data = doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+created.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: status %d", resp.StatusCode)
	}
	var got SessionResponse
	decodeInto(t, data, &got)
	conf := &core.Configuration{Assign: got.Assignment, K: got.Slots}
	if maxSub := conf.MaxSubgroupSize(); maxSub > 2 {
		t.Fatalf("capped session served subgroup of %d > 2", maxSub)
	}
	_ = mgr
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
