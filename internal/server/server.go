// Package server implements svgicd's HTTP serving layer over the engine: the
// JSON API (core.InstanceJSON in, solutions and utility reports out) plus
// the serving-path machinery a network front door needs —
//
//   - admission control: a bounded in-flight limit that sheds excess load
//     with 429 + Retry-After instead of queueing unboundedly;
//   - per-request deadlines: a `timeout` query parameter (capped by the
//     server maximum) wired into the context the engine and every solver
//     honour, mapped to 504 on expiry and 499 when the client goes away;
//   - per-request algorithm selection: an optional "algo" + "params" pair on
//     solve requests resolves any registered solver (GET /v1/algorithms
//     lists them with parameter schemas); cache and coalescing keys pair the
//     instance fingerprint with the solver identity, so AVG and AVG-D
//     results never alias;
//   - request coalescing: concurrent identical (instance, solver) requests
//     run the solver once and fan the result out as deep copies — the
//     flash-crowd case the result cache cannot help with, because nothing is
//     cached until the first solve completes;
//   - graceful shutdown: Shutdown stops admitting, drains every in-flight
//     solve, and only then lets the caller close the engine.
//
// Endpoints:
//
//	POST   /v1/solve               SolveRequest             -> SolveResponse
//	POST   /v1/solve/batch         [SolveRequest...]        -> BatchResponse
//	POST   /v1/evaluate            EvaluateRequest          -> EvaluateResponse
//	POST   /v1/sessions            CreateSessionRequest     -> CreateSessionResponse
//	POST   /v1/sessions/{id}/events SessionEventsRequest    -> SessionEventsResponse
//	GET    /v1/sessions/{id}                                -> SessionResponse
//	DELETE /v1/sessions/{id}                                -> 204
//	GET    /v1/algorithms          registered solvers + parameter schemas
//	GET    /healthz                liveness + drain state
//	GET    /v1/stats               StatsResponse (engine + admission + coalescing + sessions + store)
//	GET    /metrics                the same counters in Prometheus text format
//
// The /v1/sessions endpoints are the live-session subsystem (the paper's
// Extension F as a serving path): ID-keyed versioned sessions over a
// session.Manager with serialized event application, bounded admission, TTL
// eviction and background drift repair. See internal/session. With
// Options.Store set, every persisted session is recovered — snapshot +
// WAL-tail replay — before the server takes its first request, and served
// at the exact (version, value, configuration) it had before the restart.
// See internal/store.
//
// All request bodies are decoded strictly: unknown fields and trailing
// content are rejected with 400, so a misspelled field fails loudly instead
// of solving a silently-zeroed instance.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/engine"
	"github.com/svgic/svgic/internal/registry"
	"github.com/svgic/svgic/internal/session"
	"github.com/svgic/svgic/internal/store"
	"github.com/svgic/svgic/internal/telemetry"
)

// StatusClientClosedRequest is the non-standard 499 status (nginx
// convention) reported when the client abandoned the request before the
// solve finished.
const StatusClientClosedRequest = 499

// Defaults for Options zero values.
const (
	DefaultTimeout      = 10 * time.Second
	DefaultMaxTimeout   = 2 * time.Minute
	DefaultMaxBodyBytes = 8 << 20
	DefaultMaxBatch     = 64
	DefaultRetryAfter   = time.Second
)

// Options configures a Server.
type Options struct {
	// Engine executes the solves. Required; the server does not own it —
	// call Engine.Close after Shutdown. Requests without an "algo"/"params"
	// selection run the engine's default solver.
	Engine *engine.Engine
	// DefaultAlgo is the registry name backing requests that send "params"
	// without "algo" (and the name advertised by /v1/algorithms as the
	// default). Empty means "avgd". It should match the engine's default
	// solver so explicit and implicit requests share cache entries.
	DefaultAlgo string
	// DefaultParams parameterizes DefaultAlgo the way the engine's default
	// solver is configured (svgicd derives both from the same flags), so a
	// request naming the default algorithm explicitly resolves the SAME
	// solver as a bare request — request "params" overlay these.
	DefaultParams registry.Params
	// MaxInFlight bounds concurrently admitted requests; excess load is shed
	// with 429. Zero means 4 × engine workers.
	MaxInFlight int
	// DefaultTimeout bounds a request that sends no `timeout` parameter.
	DefaultTimeout time.Duration
	// MaxTimeout caps the client-requested `timeout` parameter.
	MaxTimeout time.Duration
	// MaxBodyBytes caps request body size. Zero means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxBatch caps instances per batch request. Zero means DefaultMaxBatch.
	MaxBatch int
	// RetryAfter is the hint sent with 429 responses.
	RetryAfter time.Duration
	// NoCoalesce disables request coalescing (solves go straight to the
	// engine). For measurement and tests; production serving wants it on.
	NoCoalesce bool
	// Sessions is the live-session manager backing the /v1/sessions
	// endpoints. The server does not own it — close it after Shutdown, before
	// the engine. Nil builds a loop-less default manager over Engine (bounded
	// admission, but no TTL eviction and no background drift repair), which
	// the server DOES own and closes at the end of Shutdown.
	Sessions *session.Manager
	// Store is the durable session store. When set, New recovers every
	// persisted session into the manager before the server can take a
	// request — re-resolving each session's drift-repair solver from its
	// persisted registry reference — and /v1/stats (and /metrics) carry the
	// store's counters. The server does not own the store: the caller closes
	// it after the manager (and typically also attached it to the manager as
	// its Persister; New does not do that wiring, because the manager is
	// built first).
	Store *store.Store
	// Telemetry is the latency tracker behind the per-route series, the
	// /v1/stats latency section, the /metrics digest families and the SLO
	// controller. Nil builds one on the system clock. svgicd shares one
	// tracker between the server and the engine/session observer hooks, so
	// route, per-algorithm and repair series live side by side.
	Telemetry *telemetry.Tracker
	// SLOs are the latency objectives the adaptive admission controller
	// enforces (see telemetry.ParseObjectives for the grammar). Empty means
	// no controller: nothing degrades, nothing sheds adaptively, and
	// /v1/stats carries no slo section.
	SLOs []telemetry.Objective
	// DegradeAlgo is the cheap fallback algorithm degraded requests are
	// rerouted to. Empty means "avgd".
	DegradeAlgo string
	// DegradeFrom lists the algorithms eligible for rerouting while
	// degraded. Empty means {"ip", "sdp"} — the expensive exact/relaxation
	// solvers. Requests that don't name an algorithm are never degraded.
	DegradeFrom []string
	// NoAdaptiveAdmission keeps the SLO measurement (burn rates in /v1/stats
	// and /metrics) but disables the feedback: no degrading, no adaptive
	// shedding.
	NoAdaptiveAdmission bool
	// SLOEvalEvery, SLOEscalateAfter, SLOMinDwell and SLOShedFactor tune the
	// admission controller; zeros mean the telemetry package defaults.
	SLOEvalEvery     time.Duration
	SLOEscalateAfter time.Duration
	SLOMinDwell      time.Duration
	SLOShedFactor    float64
}

// Server is the svgicd HTTP handler. Create with New, stop with Shutdown.
type Server struct {
	eng    *engine.Engine
	coal   *engine.Coalescer
	mgr    *session.Manager
	ownMgr bool // New built mgr itself (Options.Sessions was nil): Shutdown closes it
	opts   Options
	mux    *http.ServeMux

	// tel records per-route latency; ctrl (nil without Options.SLOs) walks
	// the degradation ladder over it. degradeFrom is the lowered DegradeFrom
	// set.
	tel         *telemetry.Tracker
	ctrl        *telemetry.Controller
	degradeFrom map[string]bool

	// sem holds one token per admitted request; Shutdown drains the server
	// by acquiring every token after flipping draining, so "all tokens held
	// by Shutdown" == "no request in flight".
	sem      chan struct{}
	draining atomic.Bool

	admitted      atomic.Uint64
	shed          atomic.Uint64
	adaptiveShed  atomic.Uint64
	degradedTotal atomic.Uint64
	badRequests   atomic.Uint64
	timeouts      atomic.Uint64
	clientClosed  atomic.Uint64
}

// New builds a Server over an engine.
func New(opts Options) (*Server, error) {
	if opts.Engine == nil {
		return nil, errors.New("server: Options.Engine is required")
	}
	opts.DefaultAlgo = strings.ToLower(opts.DefaultAlgo)
	if opts.DefaultAlgo == "" {
		opts.DefaultAlgo = "avgd"
	}
	if _, err := registry.New(opts.DefaultAlgo, opts.DefaultParams); err != nil {
		return nil, fmt.Errorf("server: default algorithm: %w", err)
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 4 * opts.Engine.Stats().Workers
	}
	if opts.DefaultTimeout <= 0 {
		opts.DefaultTimeout = DefaultTimeout
	}
	if opts.MaxTimeout <= 0 {
		opts.MaxTimeout = DefaultMaxTimeout
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = DefaultRetryAfter
	}
	if opts.Telemetry == nil {
		opts.Telemetry = telemetry.NewTracker(telemetry.TrackerOptions{})
	}
	opts.DegradeAlgo = strings.ToLower(opts.DegradeAlgo)
	if opts.DegradeAlgo == "" {
		opts.DegradeAlgo = "avgd"
	}
	if _, err := registry.New(opts.DegradeAlgo, nil); err != nil {
		return nil, fmt.Errorf("server: degrade algorithm: %w", err)
	}
	if len(opts.DegradeFrom) == 0 {
		opts.DegradeFrom = []string{"ip", "sdp"}
	}
	s := &Server{
		eng:         opts.Engine,
		opts:        opts,
		sem:         make(chan struct{}, opts.MaxInFlight),
		tel:         opts.Telemetry,
		degradeFrom: make(map[string]bool, len(opts.DegradeFrom)),
	}
	for _, algo := range opts.DegradeFrom {
		s.degradeFrom[strings.ToLower(algo)] = true
	}
	if len(opts.SLOs) > 0 {
		ctrl, err := telemetry.NewController(telemetry.ControllerOptions{
			Tracker:       opts.Telemetry,
			Objectives:    opts.SLOs,
			EvalEvery:     opts.SLOEvalEvery,
			EscalateAfter: opts.SLOEscalateAfter,
			MinDwell:      opts.SLOMinDwell,
			ShedFactor:    opts.SLOShedFactor,
		})
		if err != nil {
			return nil, fmt.Errorf("server: slo controller: %w", err)
		}
		s.ctrl = ctrl
	}
	if !opts.NoCoalesce {
		s.coal = engine.NewCoalescer(opts.Engine)
	}
	s.mgr = opts.Sessions
	if s.mgr == nil {
		// The default manager persists through Options.Store when one is
		// given — otherwise recovered sessions would be served but their
		// subsequent transitions silently dropped, and the NEXT restart
		// would resurrect stale state.
		mopts := session.Options{Engine: opts.Engine}
		if opts.Store != nil {
			mopts.Persister = opts.Store
		}
		mgr, err := session.NewManager(mopts)
		if err != nil {
			return nil, fmt.Errorf("server: session manager: %w", err)
		}
		s.mgr = mgr
		s.ownMgr = true
	}
	if opts.Store != nil {
		if err := s.recoverSessions(); err != nil {
			// A manager New built itself has no other owner to stop its
			// background loop.
			if s.ownMgr {
				s.mgr.Close()
			}
			return nil, err
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/v1/solve/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("/v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("POST /v1/sessions/{id}/events", s.handleSessionEvents)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	return s, nil
}

// Sessions returns the live-session manager serving /v1/sessions.
func (s *Server) Sessions() *session.Manager { return s.mgr }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown drains the server: new requests are refused with 503, in-flight
// solves run to completion, and once every admission token is reclaimed the
// call returns — after which it is safe to Engine.Close. The context bounds
// the wait; on expiry the server stays draining but some requests may still
// be in flight.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	for i := 0; i < cap(s.sem); i++ {
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			return fmt.Errorf("server: drain interrupted with requests in flight: %w", ctx.Err())
		}
	}
	// A manager the server built itself (Options.Sessions was nil) has no
	// other owner; close it now that no request can touch it. A
	// caller-supplied manager stays the caller's to close.
	if s.ownMgr {
		s.mgr.Close()
	}
	return nil
}

// Draining reports whether Shutdown has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// admit reserves an in-flight slot, writing the refusal response itself when
// the server is draining (503) or saturated (429). The Retry-After hint on a
// 429 derives from the route's observed p50 (see retryAfterSeconds). The
// caller must release() iff admit returns true.
func (s *Server) admit(w http.ResponseWriter, route string) bool {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return false
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.shed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(route)))
		writeError(w, http.StatusTooManyRequests, "server at max in-flight capacity")
		return false
	}
	// Re-check after acquiring: Shutdown may have flipped draining between
	// the check above and the acquire; it is now collecting every token, so
	// hand this one back instead of racing the drain.
	if s.draining.Load() {
		<-s.sem
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return false
	}
	// Adaptive shed: while the controller sheds, the effective cap sits
	// below the semaphore's; a token beyond it is handed straight back.
	if eff := s.effectiveMaxInFlight(); len(s.sem) > eff {
		<-s.sem
		s.shed.Add(1)
		s.adaptiveShed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(route)))
		writeError(w, http.StatusTooManyRequests, "shedding load to protect latency objectives")
		return false
	}
	s.admitted.Add(1)
	return true
}

func (s *Server) release() { <-s.sem }

// requestTimeout resolves the per-request deadline from the `timeout` query
// parameter, clamped to the server maximum.
func (s *Server) requestTimeout(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		return s.opts.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("invalid timeout %q: %v", raw, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("timeout %q must be positive", raw)
	}
	if d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	return d, nil
}

// resolveSolver maps a request's algorithm selection to a solver. A request
// with neither "algo" nor "params" returns nil: it runs the engine's default
// solver (whatever svgicd configured), which keeps a bare InstanceJSON body
// a valid request. "params" without "algo" parameterizes the server's
// default algorithm. Requests naming the default algorithm start from
// Options.DefaultParams (the server's flag-derived configuration) with the
// request's "params" overlaid, so explicit and bare requests resolve the
// same solver.
func (s *Server) resolveSolver(algo string, raw json.RawMessage) (core.Solver, error) {
	if algo == "" && len(raw) == 0 {
		return nil, nil
	}
	// Normalize before comparing with DefaultAlgo: registry lookup is
	// case-insensitive, so "AVGD" must select the same default parameters
	// as "avgd".
	algo = strings.ToLower(algo)
	if algo == "" {
		algo = s.opts.DefaultAlgo
	}
	var params registry.Params
	if algo == s.opts.DefaultAlgo && len(s.opts.DefaultParams) > 0 {
		params = make(registry.Params, len(s.opts.DefaultParams))
		for k, v := range s.opts.DefaultParams {
			params[k] = v
		}
	}
	if len(raw) > 0 {
		var req registry.Params
		if err := json.Unmarshal(raw, &req); err != nil {
			return nil, fmt.Errorf(`"params" must be an object: %v`, err)
		}
		if params == nil {
			params = req
		} else {
			for k, v := range req {
				params[k] = v
			}
		}
	}
	return registry.New(algo, params)
}

// solve routes one instance through the coalescer (or straight to the engine
// when coalescing is off); a nil solver means the engine default.
func (s *Server) solve(ctx context.Context, in *core.Instance, solver core.Solver) (*core.Solution, error) {
	switch {
	case s.coal != nil && solver != nil:
		return s.coal.SolveWith(ctx, in, solver)
	case s.coal != nil:
		return s.coal.Solve(ctx, in)
	case solver != nil:
		return s.eng.SolveWith(ctx, in, solver)
	default:
		return s.eng.Solve(ctx, in)
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.admit(w, routeSolve) {
		return
	}
	defer s.release()
	defer s.observe(routeSolve)()
	timeout, err := s.requestTimeout(r)
	if err != nil {
		s.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var sr SolveRequest
	if err := core.DecodeStrict(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes), &sr); err != nil {
		s.writeDecodeError(w, "decoding instance", err)
		return
	}
	in, err := core.InstanceFromJSON(&sr.InstanceJSON)
	if err != nil {
		s.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	solver, err := s.resolveSolver(sr.Algo, sr.Params)
	if err != nil {
		s.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	degraded := false
	if s.shouldDegrade(sr.Algo) {
		if fallback, ferr := s.resolveSolver(s.opts.DegradeAlgo, nil); ferr == nil {
			solver = fallback
			degraded = true
			s.noteDegraded(sr.Algo)
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	start := time.Now()
	sol, err := s.solve(ctx, in, solver)
	if err != nil {
		s.writeSolveError(w, err)
		return
	}
	resp := solveResponse(sol, time.Since(start))
	resp.Degraded = degraded
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.admit(w, routeBatch) {
		return
	}
	defer s.release()
	defer s.observe(routeBatch)()
	timeout, err := s.requestTimeout(r)
	if err != nil {
		s.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var srs []SolveRequest
	if err := core.DecodeStrict(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes), &srs); err != nil {
		s.writeDecodeError(w, "decoding batch", err)
		return
	}
	if len(srs) == 0 {
		s.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(srs) > s.opts.MaxBatch {
		s.badRequests.Add(1)
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d exceeds limit %d", len(srs), s.opts.MaxBatch))
		return
	}
	ins := make([]*core.Instance, len(srs))
	solvers := make([]core.Solver, len(srs))
	degraded := make([]bool, len(srs))
	for i := range srs {
		in, err := core.InstanceFromJSON(&srs[i].InstanceJSON)
		if err != nil {
			s.badRequests.Add(1)
			writeError(w, http.StatusBadRequest, fmt.Sprintf("instance %d: %v", i, err))
			return
		}
		ins[i] = in
		solver, err := s.resolveSolver(srs[i].Algo, srs[i].Params)
		if err != nil {
			s.badRequests.Add(1)
			writeError(w, http.StatusBadRequest, fmt.Sprintf("instance %d: %v", i, err))
			return
		}
		if s.shouldDegrade(srs[i].Algo) {
			if fallback, ferr := s.resolveSolver(s.opts.DegradeAlgo, nil); ferr == nil {
				solver = fallback
				degraded[i] = true
				s.noteDegraded(srs[i].Algo)
			}
		}
		solvers[i] = solver
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	start := time.Now()
	// Per-item solvers (instances may select different algorithms); the
	// coalescer still collapses duplicates inside and across batches.
	var sols []*core.Solution
	var solveErr error
	if s.coal != nil {
		sols, solveErr = s.coal.SolveBatchEach(ctx, ins, solvers)
	} else {
		sols, solveErr = s.eng.SolveBatchEach(ctx, ins, solvers)
	}
	elapsed := time.Since(start)
	// The batch shares one deadline, so a context failure is the whole
	// request's failure; any other per-item error is an internal fault.
	if solveErr != nil {
		if errors.Is(solveErr, context.DeadlineExceeded) || errors.Is(solveErr, context.Canceled) {
			s.writeSolveError(w, solveErr)
			return
		}
		writeError(w, http.StatusInternalServerError, solveErr.Error())
		return
	}
	resp := BatchResponse{Results: make([]SolveResponse, len(sols)), ElapsedMS: ms(elapsed)}
	for i, sol := range sols {
		resp.Results[i] = solveResponse(sol, 0)
		resp.Results[i].Degraded = degraded[i]
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.admit(w, routeEvaluate) {
		return
	}
	defer s.release()
	defer s.observe(routeEvaluate)()
	var req EvaluateRequest
	if err := core.DecodeStrict(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes), &req); err != nil {
		s.writeDecodeError(w, "decoding evaluate request", err)
		return
	}
	in, err := core.InstanceFromJSON(&req.Instance)
	if err != nil {
		s.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	conf := &core.Configuration{Assign: req.Configuration.Assignment, K: req.Configuration.Slots}
	if err := conf.Validate(in); err != nil {
		s.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	rep := core.EvaluateST(in, conf, req.DTel)
	writeJSON(w, http.StatusOK, EvaluateResponse{
		Preference: rep.Preference,
		Social:     rep.Social,
		Weighted:   rep.Weighted(),
		Scaled:     rep.Scaled(),
	})
}

// handleAlgorithms serves the solver registry: names, display names and
// parameter schemas, so clients can discover what "algo"/"params" accept
// without a deploy-time contract.
func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	specs := registry.Specs()
	resp := AlgorithmsResponse{
		Default:    s.opts.DefaultAlgo,
		Algorithms: make([]AlgorithmInfo, len(specs)),
	}
	for i, spec := range specs {
		resp.Algorithms[i] = AlgorithmInfo{
			Name:          spec.Name,
			Display:       spec.Display,
			Description:   spec.Description,
			Deterministic: spec.Deterministic,
			Params:        spec.Params,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Workers: s.eng.Stats().Workers})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// StatsSnapshot assembles the /v1/stats payload: engine counters (global and
// per algorithm), admission counters and coalescing counters.
func (s *Server) StatsSnapshot() StatsResponse {
	est := s.eng.Stats()
	resp := StatsResponse{
		Server: ServerStats{
			Admitted:     s.admitted.Load(),
			Shed:         s.shed.Load(),
			BadRequests:  s.badRequests.Load(),
			Timeouts:     s.timeouts.Load(),
			ClientClosed: s.clientClosed.Load(),
			InFlight:     len(s.sem),
			MaxInFlight:  cap(s.sem),
			Draining:     s.draining.Load(),
		},
		Engine: EngineStats{
			Solves:           est.Solves,
			Batches:          est.Batches,
			ComponentsSolved: est.ComponentsSolved,
			CacheHits:        est.CacheHits,
			CacheMisses:      est.CacheMisses,
			Solved:           est.Solved,
			Canceled:         est.Canceled,
			Errors:           est.Errors,
			AvgLatencyMS:     ms(est.AvgLatency()),
			Workers:          est.Workers,
		},
	}
	if len(est.PerAlgorithm) > 0 {
		resp.Engine.PerAlgorithm = make(map[string]AlgoStats, len(est.PerAlgorithm))
		for name, a := range est.PerAlgorithm {
			avg := 0.0
			if a.Solved > 0 {
				avg = ms(a.TotalLatency / time.Duration(a.Solved))
			}
			resp.Engine.PerAlgorithm[name] = AlgoStats{
				Solves:       a.Solves,
				CacheHits:    a.CacheHits,
				Solved:       a.Solved,
				Canceled:     a.Canceled,
				Errors:       a.Errors,
				AvgLatencyMS: avg,
			}
		}
	}
	if s.coal != nil {
		cst := s.coal.Stats()
		resp.Coalesce = CoalesceStats{Enabled: true, Leads: cst.Leads, Joins: cst.Joins}
	}
	resp.Sessions = SessionsStats{
		Enabled:     true,
		MaxSessions: s.mgr.MaxSessions(),
		Shards:      s.mgr.Shards(),
		Stats:       s.mgr.Stats(),
		PerShard:    s.mgr.ShardStats(),
	}
	if s.opts.Store != nil {
		resp.Store = &StoreStats{Enabled: true, Stats: s.opts.Store.Stats()}
	}
	if lat := s.tel.Snapshot(); len(lat) > 0 {
		resp.Latency = make(map[string]LatencyStats, len(lat))
		for name, sn := range lat {
			resp.Latency[name] = LatencyStats{
				Count: sn.Count,
				P50MS: ms(sn.P50),
				P90MS: ms(sn.P90),
				P99MS: ms(sn.P99),
				MaxMS: ms(sn.Max),
			}
		}
	}
	if s.ctrl != nil {
		cs := s.ctrl.Snapshot()
		resp.SLO = &SLOStats{
			AdaptiveAdmission:    !s.opts.NoAdaptiveAdmission,
			Level:                cs.Level,
			EffectiveMaxInFlight: s.effectiveMaxInFlight(),
			Transitions:          cs.Transitions,
			AdaptiveShed:         s.adaptiveShed.Load(),
			DegradedTotal:        s.degradedTotal.Load(),
			DegradedByAlgo:       cs.Degraded,
			Objectives:           cs.Objectives,
		}
	}
	return resp
}

// writeDecodeError maps a request-body decode failure: an oversized body is
// 413 (the client should not blindly retry a "malformed" 400), everything
// else — malformed JSON, unknown fields, trailing content — is 400.
func (s *Server) writeDecodeError(w http.ResponseWriter, what string, err error) {
	s.badRequests.Add(1)
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("%s: request body exceeds %d bytes", what, mbe.Limit))
		return
	}
	writeError(w, http.StatusBadRequest, what+": "+err.Error())
}

// writeSolveError maps a solve failure to its HTTP status: deadline → 504,
// client gone → 499, engine closed → 503, anything else → 500.
func (s *Server) writeSolveError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		writeError(w, http.StatusGatewayTimeout, "solve deadline exceeded")
	case errors.Is(err, context.Canceled):
		s.clientClosed.Add(1)
		writeError(w, StatusClientClosedRequest, "client closed request")
	case errors.Is(err, engine.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "engine is shut down")
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// solveResponse assembles the response for one solution: the assignment,
// its utility report and the solver provenance the Solution carries.
func solveResponse(sol *core.Solution, elapsed time.Duration) SolveResponse {
	resp := SolveResponse{
		Algorithm:  sol.Algorithm,
		Slots:      sol.Config.K,
		Assignment: sol.Config.Assign,
		Preference: sol.Report.Preference,
		Social:     sol.Report.Social,
		Weighted:   sol.Report.Weighted(),
		Scaled:     sol.Report.Scaled(),
		Components: sol.Components,
		Nodes:      sol.Nodes,
		Bound:      sol.Bound,
		Exact:      sol.Exact,
		SolveMS:    ms(sol.Wall),
		ElapsedMS:  ms(elapsed),
	}
	if sol.Rounding != nil {
		resp.LPObjective = sol.Rounding.LPObjective
	}
	return resp
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg})
}
