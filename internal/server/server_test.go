package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/datasets"
	"github.com/svgic/svgic/internal/engine"
)

// testInstance builds the canonical multi-component workload used across the
// engine tests, and its JSON interchange form.
func testInstance(t *testing.T, seed uint64) (*core.Instance, []byte) {
	t.Helper()
	in := datasets.MultiGroup(seed, 2, 4, 10, 2, 0.5)
	data, err := core.MarshalInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	return in, data
}

// gateSolver blocks every Solve on a gate channel and counts executions, so
// tests can deterministically hold requests in flight.
type gateSolver struct {
	gate  <-chan struct{}
	runs  *atomic.Int64
	inner core.Solver
}

func (g *gateSolver) Name() string { return "gate" }

func (g *gateSolver) Solve(ctx context.Context, in *core.Instance) (*core.Solution, error) {
	g.runs.Add(1)
	<-g.gate
	return g.inner.Solve(ctx, in)
}

// newGatedServer builds a 1-worker engine whose solver parks on the returned
// gate, wrapped in a server with the given options.
func newGatedServer(t *testing.T, opts Options) (*Server, chan struct{}, *atomic.Int64) {
	t.Helper()
	gate := make(chan struct{})
	runs := &atomic.Int64{}
	eng := engine.New(engine.Options{
		Workers:   1,
		CacheSize: -1,
		NewSolver: func() core.Solver {
			return &gateSolver{gate: gate, runs: runs, inner: &core.AVGDSolver{}}
		},
		NoDecompose: true, // one gated solver run per solve
	})
	t.Cleanup(eng.Close)
	opts.Engine = eng
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return srv, gate, runs
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeInto(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
}

// TestSolveRoundTripMatchesSolveAVGD: the served configuration is bit-for-bit
// the one a direct library call computes, report included.
func TestSolveRoundTripMatchesSolveAVGD(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	srv, err := New(Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for seed := uint64(1); seed <= 5; seed++ {
		in, body := testInstance(t, seed)
		want, _, err := core.SolveAVGD(in, core.AVGDOptions{})
		if err != nil {
			t.Fatal(err)
		}
		resp, data := postJSON(t, ts.URL+"/v1/solve", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, resp.StatusCode, data)
		}
		var sr SolveResponse
		decodeInto(t, data, &sr)
		if sr.Slots != in.K || len(sr.Assignment) != in.NumUsers() {
			t.Fatalf("seed %d: wrong shape %dx%d", seed, len(sr.Assignment), sr.Slots)
		}
		for u := range want.Assign {
			for s := range want.Assign[u] {
				if sr.Assignment[u][s] != want.Assign[u][s] {
					t.Fatalf("seed %d: served assignment diverges from SolveAVGD at (%d,%d)", seed, u, s)
				}
			}
		}
		rep := core.Evaluate(in, want)
		if math.Abs(sr.Weighted-rep.Weighted()) > 1e-12 || math.Abs(sr.Scaled-rep.Scaled()) > 1e-12 {
			t.Errorf("seed %d: served report (%g, %g) != library report (%g, %g)",
				seed, sr.Weighted, sr.Scaled, rep.Weighted(), rep.Scaled())
		}
		if sr.Algorithm != "AVG-D" {
			t.Errorf("seed %d: algorithm = %q", seed, sr.Algorithm)
		}
	}
}

// TestBatchRoundTrip: positional results, each equal to a direct solve.
func TestBatchRoundTrip(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	srv, err := New(Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var ijs []core.InstanceJSON
	var ins []*core.Instance
	for seed := uint64(10); seed < 13; seed++ {
		in, body := testInstance(t, seed)
		var ij core.InstanceJSON
		decodeInto(t, body, &ij)
		ijs = append(ijs, ij)
		ins = append(ins, in)
	}
	body, err := json.Marshal(ijs)
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts.URL+"/v1/solve/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var br BatchResponse
	decodeInto(t, data, &br)
	if len(br.Results) != len(ins) {
		t.Fatalf("got %d results, want %d", len(br.Results), len(ins))
	}
	for i, in := range ins {
		want, _, err := core.SolveAVGD(in, core.AVGDOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for u := range want.Assign {
			for s := range want.Assign[u] {
				if br.Results[i].Assignment[u][s] != want.Assign[u][s] {
					t.Fatalf("result %d diverges from SolveAVGD at (%d,%d)", i, u, s)
				}
			}
		}
	}
}

// TestStrictDecodeRejectsUnknownField: the serving path inherits the strict
// ingestion discipline — a misspelled field is a 400, not a silent drop.
func TestStrictDecodeRejectsUnknownField(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 1})
	t.Cleanup(eng.Close)
	srv, err := New(Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	typo := []byte(`{
	  "users": 2, "items": 3, "slots": 2, "lambda": 0.5,
	  "preference": [[1, 0.5, 0], [0.9, 0.1, 0.2]]
	}`)
	resp, data := postJSON(t, ts.URL+"/v1/solve", typo)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf(`misspelled "preference": status %d, want 400`, resp.StatusCode)
	}
	var er ErrorResponse
	decodeInto(t, data, &er)
	if !strings.Contains(er.Error, "preference") {
		t.Errorf("error %q does not name the unknown field", er.Error)
	}

	// Trailing garbage after the document is rejected too.
	_, good := testInstance(t, 1)
	resp, _ = postJSON(t, ts.URL+"/v1/solve", append(append([]byte{}, good...), []byte(`{"users":1}`)...))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("trailing garbage: status %d, want 400", resp.StatusCode)
	}

	// A batch containing one malformed instance fails whole with the index.
	var ij core.InstanceJSON
	decodeInto(t, good, &ij)
	bad := ij
	bad.Slots = bad.Items + 1 // k > m
	body, err := json.Marshal([]core.InstanceJSON{ij, bad})
	if err != nil {
		t.Fatal(err)
	}
	resp, data = postJSON(t, ts.URL+"/v1/solve/batch", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid batch member: status %d, want 400", resp.StatusCode)
	}
	decodeInto(t, data, &er)
	if !strings.Contains(er.Error, "instance 1") {
		t.Errorf("batch error %q does not locate the bad instance", er.Error)
	}
}

// TestAdmissionControlSheds429: with MaxInFlight=1 and the single slot held
// by a gated solve, the next (distinct) request is shed immediately with 429
// and a Retry-After hint; the held request still completes.
func TestAdmissionControlSheds429(t *testing.T) {
	srv, gate, runs := newGatedServer(t, Options{MaxInFlight: 1, RetryAfter: 2 * time.Second})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	_, bodyA := testInstance(t, 1)
	_, bodyB := testInstance(t, 2)

	type res struct {
		status int
		data   []byte
	}
	aDone := make(chan res, 1)
	go func() {
		resp, data := postJSON(t, ts.URL+"/v1/solve", bodyA)
		aDone <- res{resp.StatusCode, data}
	}()
	waitFor(t, "request A to reach the solver", func() bool { return runs.Load() == 1 })

	resp, _ := postJSON(t, ts.URL+"/v1/solve", bodyB)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated solve: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}

	close(gate)
	if a := <-aDone; a.status != http.StatusOK {
		t.Fatalf("held request finished with %d: %s", a.status, a.data)
	}
	if st := srv.StatsSnapshot(); st.Server.Shed != 1 || st.Server.Admitted != 1 {
		t.Errorf("admission stats = %+v, want shed=1 admitted=1", st.Server)
	}
}

// TestDeadlineMapsTo504: a request whose `timeout` budget expires while the
// worker is busy maps to 504 Gateway Timeout.
func TestDeadlineMapsTo504(t *testing.T) {
	srv, gate, runs := newGatedServer(t, Options{MaxInFlight: 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	_, bodyA := testInstance(t, 1)
	_, bodyB := testInstance(t, 2)
	aDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/solve", bodyA)
		aDone <- resp.StatusCode
	}()
	waitFor(t, "request A to occupy the worker", func() bool { return runs.Load() == 1 })

	// B cannot reach the single worker before its 30ms budget expires.
	resp, data := postJSON(t, ts.URL+"/v1/solve?timeout=30ms", bodyB)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired solve: status %d, want 504: %s", resp.StatusCode, data)
	}
	close(gate)
	if a := <-aDone; a != http.StatusOK {
		t.Fatalf("held request finished with %d", a)
	}
	if st := srv.StatsSnapshot(); st.Server.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", st.Server.Timeouts)
	}

	// Malformed timeout values are a 400, not a silent default.
	resp, _ = postJSON(t, ts.URL+"/v1/solve?timeout=fast", bodyB)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus timeout: status %d, want 400", resp.StatusCode)
	}
}

// TestClientCancelMapsTo499: a request abandoned by its client reports the
// 499 convention (and lands in the clientClosed counter, since the client
// itself will never see the status).
func TestClientCancelMapsTo499(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 1})
	t.Cleanup(eng.Close)
	srv, err := New(Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, body := testInstance(t, 3)
	req := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("canceled request: status %d, want %d", rec.Code, StatusClientClosedRequest)
	}
	if st := srv.StatsSnapshot(); st.Server.ClientClosed != 1 {
		t.Errorf("ClientClosed = %d, want 1", st.Server.ClientClosed)
	}
}

// TestCoalescingCollapsesConcurrentDuplicates is the acceptance property: N
// concurrent identical requests trigger exactly one solver execution and all
// N receive the correct configuration. The cache is disabled, so the
// collapse is pure coalescing.
func TestCoalescingCollapsesConcurrentDuplicates(t *testing.T) {
	const n = 5
	srv, gate, runs := newGatedServer(t, Options{MaxInFlight: 2 * n})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	in, body := testInstance(t, 7)
	want, _, err := core.SolveAVGD(in, core.AVGDOptions{})
	if err != nil {
		t.Fatal(err)
	}

	type res struct {
		status int
		data   []byte
	}
	results := make(chan res, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/v1/solve", body)
			results <- res{resp.StatusCode, data}
		}()
	}
	waitFor(t, "leader to reach the solver", func() bool { return runs.Load() == 1 })
	waitFor(t, "followers to coalesce", func() bool {
		return srv.StatsSnapshot().Coalesce.Joins == n-1
	})
	close(gate)
	wg.Wait()
	close(results)

	for r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("status %d: %s", r.status, r.data)
		}
		var sr SolveResponse
		decodeInto(t, r.data, &sr)
		for u := range want.Assign {
			for s := range want.Assign[u] {
				if sr.Assignment[u][s] != want.Assign[u][s] {
					t.Fatalf("coalesced result diverges from SolveAVGD at (%d,%d)", u, s)
				}
			}
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("solver executed %d times for %d identical requests, want 1", got, n)
	}
	st := srv.StatsSnapshot()
	if st.Coalesce.Leads != 1 || st.Coalesce.Joins != n-1 {
		t.Errorf("coalesce stats = %+v, want 1 lead / %d joins", st.Coalesce, n-1)
	}
	if st.Engine.Solved != 1 {
		t.Errorf("engine Solved = %d, want 1", st.Engine.Solved)
	}
}

// TestGracefulShutdownDrains: Shutdown refuses new work with 503 but the
// in-flight solve runs to completion before Shutdown returns — only then is
// it safe to close the engine.
func TestGracefulShutdownDrains(t *testing.T) {
	srv, gate, runs := newGatedServer(t, Options{MaxInFlight: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	_, bodyA := testInstance(t, 1)
	aDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/solve", bodyA)
		aDone <- resp.StatusCode
	}()
	waitFor(t, "request A to reach the solver", func() bool { return runs.Load() == 1 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	waitFor(t, "server to start draining", srv.Draining)

	// New work is refused while draining...
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", resp.StatusCode)
	}
	_, bodyB := testInstance(t, 2)
	respB, _ := postJSON(t, ts.URL+"/v1/solve", bodyB)
	if respB.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("solve while draining: status %d, want 503", respB.StatusCode)
	}
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned before the in-flight solve finished: %v", err)
	default:
	}

	// ...but the in-flight solve completes and unblocks the drain.
	close(gate)
	if a := <-aDone; a != http.StatusOK {
		t.Fatalf("in-flight request finished with %d during drain", a)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestEvaluateEndpoint round-trips a configuration through /v1/evaluate and
// checks the report against the library.
func TestEvaluateEndpoint(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 1})
	t.Cleanup(eng.Close)
	srv, err := New(Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	in, body := testInstance(t, 4)
	conf, _, err := core.SolveAVGD(in, core.AVGDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var ij core.InstanceJSON
	decodeInto(t, body, &ij)
	req, err := json.Marshal(EvaluateRequest{
		Instance:      ij,
		Configuration: ConfigurationJSON{Slots: conf.K, Assignment: conf.Assign},
		DTel:          0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts.URL+"/v1/evaluate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var er EvaluateResponse
	decodeInto(t, data, &er)
	want := core.EvaluateST(in, conf, 0.5)
	if math.Abs(er.Weighted-want.Weighted()) > 1e-12 || math.Abs(er.Preference-want.Preference) > 1e-12 {
		t.Errorf("served report (%g, %g) != library report (%g, %g)",
			er.Weighted, er.Preference, want.Weighted(), want.Preference)
	}

	// An assignment that breaks no-duplication is a 400.
	badConf := conf.Clone()
	badConf.Assign[0][1] = badConf.Assign[0][0]
	req, err = json.Marshal(EvaluateRequest{
		Instance:      ij,
		Configuration: ConfigurationJSON{Slots: badConf.K, Assignment: badConf.Assign},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/evaluate", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("duplicate-item configuration: status %d, want 400", resp.StatusCode)
	}
}

// TestOversizedBodyMapsTo413: a body over MaxBodyBytes is a 413, not a 400 —
// clients must learn to shrink the request, not "fix" well-formed JSON.
func TestOversizedBodyMapsTo413(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 1})
	t.Cleanup(eng.Close)
	srv, err := New(Options{Engine: eng, MaxBodyBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	_, body := testInstance(t, 1) // well-formed, but far over 64 bytes
	if len(body) <= 64 {
		t.Fatalf("test instance too small (%d bytes) to trip the cap", len(body))
	}
	resp, data := postJSON(t, ts.URL+"/v1/solve", body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413: %s", resp.StatusCode, data)
	}
}

// TestStatsAndLimits covers the remaining surface: stats sanity, the engine
// counter identity over the wire, method guards, batch size cap and the
// non-finite rejection at the HTTP boundary.
func TestStatsAndLimits(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	srv, err := New(Options{Engine: eng, MaxBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	_, body := testInstance(t, 5)
	for i := 0; i < 3; i++ { // 1 miss + 2 cache hits
		if resp, data := postJSON(t, ts.URL+"/v1/solve", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d: %s", i, resp.StatusCode, data)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st StatsResponse
	decodeInto(t, data, &st)
	e := st.Engine
	if e.Solves != e.CacheHits+e.Solved+e.Canceled+e.Errors {
		t.Errorf("served counter identity broken: %+v", e)
	}
	if e.Solves != 3 || e.CacheHits != 2 {
		t.Errorf("engine stats = %+v, want 3 solves / 2 hits", e)
	}
	if !st.Coalesce.Enabled || st.Coalesce.Leads != 3 {
		t.Errorf("coalesce stats = %+v, want enabled with 3 leads", st.Coalesce)
	}

	// healthz happy path.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var hr HealthResponse
	decodeInto(t, data, &hr)
	if resp.StatusCode != http.StatusOK || hr.Status != "ok" || hr.Workers != 2 {
		t.Errorf("healthz = %d %+v", resp.StatusCode, hr)
	}

	// Method guards.
	if resp, err := http.Get(ts.URL + "/v1/solve"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/solve: status %d, want 405", resp.StatusCode)
		}
	}

	// Batch above the cap is refused with 413.
	var ij core.InstanceJSON
	decodeInto(t, body, &ij)
	big, err := json.Marshal([]core.InstanceJSON{ij, ij, ij})
	if err != nil {
		t.Fatal(err)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/solve/batch", big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d, want 413", resp.StatusCode)
	}

	// The validation boundary answers over the wire: out-of-range λ is a 400.
	badLambda := `{"users":1,"items":2,"slots":1,"lambda":2,"preferences":[[1,0]]}`
	if resp, _ := postJSON(t, ts.URL+"/v1/solve", []byte(badLambda)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("λ=2: status %d, want 400", resp.StatusCode)
	}
}
