package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"github.com/svgic/svgic/internal/session"
)

// GET /metrics: the serving counters in Prometheus text exposition format
// (version 0.0.4), so restarts, recovery and drift repair are observable by
// a standard scraper without parsing the /v1/stats JSON. The endpoint is
// handwritten over StatsSnapshot rather than pulling in a client library —
// the format is three line shapes, and the container must not grow
// dependencies for it.
//
// Naming follows the Prometheus conventions: one svgicd_* namespace,
// _total suffixes on counters, base units, and per-algorithm engine
// counters as an algo="" label rather than a name explosion.

// promWriter accumulates one exposition document.
type promWriter struct {
	b strings.Builder
}

// counter emits a single-sample counter with its TYPE header.
func (p *promWriter) counter(name, help string, v uint64) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// gauge emits a single-sample gauge with its TYPE header.
func (p *promWriter) gauge(name, help string, v float64) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

// labeled emits a labeled family: one TYPE header, one sample per (label
// value, sample value) pair, in the given order.
func (p *promWriter) labeled(name, help, typ, label string, keys []string, vals func(string) float64) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, k := range keys {
		fmt.Fprintf(&p.b, "%s{%s=%q} %g\n", name, label, k, vals(k))
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// ladderNum maps the admission ladder rung to its numeric gauge value.
func ladderNum(level string) float64 {
	switch level {
	case "degrade":
		return 1
	case "shed":
		return 2
	default:
		return 0
	}
}

// stateNum maps an objective state to its numeric gauge value.
func stateNum(state string) float64 {
	switch state {
	case "recovering":
		return 1
	case "breached":
		return 2
	default:
		return 0
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.StatsSnapshot()
	var p promWriter

	// Admission / HTTP plane.
	p.counter("svgicd_requests_admitted_total", "Requests admitted past the in-flight bound.", st.Server.Admitted)
	p.counter("svgicd_requests_shed_total", "Requests shed with 429 (admission or session limit).", st.Server.Shed)
	p.counter("svgicd_bad_requests_total", "Requests rejected as malformed (4xx).", st.Server.BadRequests)
	p.counter("svgicd_timeouts_total", "Solves that exceeded their deadline (504).", st.Server.Timeouts)
	p.counter("svgicd_client_closed_total", "Requests abandoned by the client mid-solve (499).", st.Server.ClientClosed)
	p.gauge("svgicd_in_flight_requests", "Requests currently holding an admission token.", float64(st.Server.InFlight))
	p.gauge("svgicd_max_in_flight_requests", "Admission bound.", float64(st.Server.MaxInFlight))
	p.gauge("svgicd_draining", "1 while the server is draining for shutdown.", boolGauge(st.Server.Draining))

	// Engine.
	p.counter("svgicd_engine_solves_total", "Solve requests reaching the engine.", st.Engine.Solves)
	p.counter("svgicd_engine_solved_total", "Solves completed by running a solver.", st.Engine.Solved)
	p.counter("svgicd_engine_cache_hits_total", "Solves answered from the result cache.", st.Engine.CacheHits)
	p.counter("svgicd_engine_cache_misses_total", "Result-cache misses.", st.Engine.CacheMisses)
	p.counter("svgicd_engine_canceled_total", "Solves canceled by context.", st.Engine.Canceled)
	p.counter("svgicd_engine_errors_total", "Solves that failed.", st.Engine.Errors)
	p.counter("svgicd_engine_batches_total", "Batch solve calls.", st.Engine.Batches)
	p.counter("svgicd_engine_components_solved_total", "Independently solved social-network components.", st.Engine.ComponentsSolved)
	p.gauge("svgicd_engine_workers", "Solver worker pool size.", float64(st.Engine.Workers))
	p.gauge("svgicd_engine_avg_solve_seconds", "Mean solver wall time.", st.Engine.AvgLatencyMS/1000)
	if len(st.Engine.PerAlgorithm) > 0 {
		algos := make([]string, 0, len(st.Engine.PerAlgorithm))
		for name := range st.Engine.PerAlgorithm {
			algos = append(algos, name)
		}
		sort.Strings(algos)
		p.labeled("svgicd_engine_algo_solves_total", "Solve requests per algorithm.", "counter", "algo", algos,
			func(a string) float64 { return float64(st.Engine.PerAlgorithm[a].Solves) })
		p.labeled("svgicd_engine_algo_cache_hits_total", "Cache hits per algorithm.", "counter", "algo", algos,
			func(a string) float64 { return float64(st.Engine.PerAlgorithm[a].CacheHits) })
		p.labeled("svgicd_engine_algo_errors_total", "Failed solves per algorithm.", "counter", "algo", algos,
			func(a string) float64 { return float64(st.Engine.PerAlgorithm[a].Errors) })
	}

	// Coalescing.
	p.gauge("svgicd_coalesce_enabled", "1 when request coalescing is on.", boolGauge(st.Coalesce.Enabled))
	p.counter("svgicd_coalesce_leads_total", "Coalesced flights that ran the engine.", st.Coalesce.Leads)
	p.counter("svgicd_coalesce_joins_total", "Requests answered by joining an in-flight solve.", st.Coalesce.Joins)

	// Live sessions.
	ss := st.Sessions
	p.gauge("svgicd_sessions_live", "Live sessions.", float64(ss.Live))
	p.gauge("svgicd_sessions_max", "Session admission bound.", float64(ss.MaxSessions))
	p.counter("svgicd_sessions_created_total", "Sessions created.", ss.Created)
	p.counter("svgicd_sessions_restored_total", "Sessions recovered from the durable store at startup.", ss.Restored)
	p.counter("svgicd_sessions_rejected_total", "Session creates refused at the bound.", ss.Rejected)
	p.counter("svgicd_sessions_evicted_total", "Idle sessions evicted by the TTL sweep.", ss.Evicted)
	p.counter("svgicd_sessions_deleted_total", "Sessions explicitly deleted.", ss.Deleted)
	kinds := []string{"join", "leave", "updatePreference", "rebalance"}
	byKind := map[string]uint64{"join": ss.Joins, "leave": ss.Leaves, "updatePreference": ss.Updates, "rebalance": ss.Rebalances}
	p.labeled("svgicd_session_events_total", "Applied live-session events by kind.", "counter", "kind", kinds,
		func(k string) float64 { return float64(byKind[k]) })
	p.counter("svgicd_repair_runs_total", "Drift-repair re-solves attempted.", ss.RepairRuns)
	p.counter("svgicd_repair_swaps_total", "Drift repairs adopted over the incremental configuration.", ss.RepairSwaps)
	p.counter("svgicd_repair_keeps_total", "Drift repairs that kept the incremental configuration.", ss.RepairKeeps)
	p.counter("svgicd_repair_stale_total", "Drift repairs discarded as stale.", ss.RepairStale)
	p.counter("svgicd_repair_errors_total", "Drift repairs that failed or timed out.", ss.RepairErrors)

	// Per-shard session routing: a shard="i" label per hash-partitioned lock
	// domain, so scrapers can watch routing imbalance and hot shards without
	// parsing the /v1/stats JSON.
	p.gauge("svgicd_sessions_shards", "Hash-partitioned session shard count.", float64(ss.Shards))
	if len(ss.PerShard) > 0 {
		perShard := make(map[string]session.ShardStats, len(ss.PerShard))
		shardKeys := make([]string, 0, len(ss.PerShard))
		for _, sp := range ss.PerShard {
			k := fmt.Sprintf("%d", sp.Shard)
			perShard[k] = sp
			shardKeys = append(shardKeys, k)
		}
		p.labeled("svgicd_sessions_shard_live", "Live sessions per shard.", "gauge", "shard", shardKeys,
			func(k string) float64 { return float64(perShard[k].Live) })
		p.labeled("svgicd_sessions_shard_created_total", "Sessions created per shard.", "counter", "shard", shardKeys,
			func(k string) float64 { return float64(perShard[k].Created) })
		p.labeled("svgicd_sessions_shard_events_total", "Applied live-session events per shard.", "counter", "shard", shardKeys,
			func(k string) float64 { return float64(perShard[k].EventsApplied) })
	}

	// Latency digests: one histogram family over the per-series sliding
	// windows (samples expire with the window, so unlike a stock Prometheus
	// histogram these can decrease between scrapes), plus explicit quantile
	// gauges so dashboards get p50/p90/p99 without a histogram_quantile over
	// coarse buckets.
	if names := s.tel.Names(); len(names) > 0 {
		bounds := []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
		wrote := false
		for _, name := range names {
			w := s.tel.Window(name)
			if w == nil {
				continue
			}
			snap := w.Snapshot()
			if snap.Count == 0 {
				continue
			}
			if !wrote {
				fmt.Fprintf(&p.b, "# HELP svgicd_latency_seconds Windowed latency distribution per series (routes, algo:*, repair).\n# TYPE svgicd_latency_seconds histogram\n")
				wrote = true
			}
			for _, le := range bounds {
				fmt.Fprintf(&p.b, "svgicd_latency_seconds_bucket{series=%q,le=%q} %g\n",
					name, strconv.FormatFloat(le, 'g', -1, 64), w.CDFOver(0, le)*float64(snap.Count))
			}
			fmt.Fprintf(&p.b, "svgicd_latency_seconds_bucket{series=%q,le=\"+Inf\"} %d\n", name, snap.Count)
			fmt.Fprintf(&p.b, "svgicd_latency_seconds_sum{series=%q} %g\n", name, snap.Sum)
			fmt.Fprintf(&p.b, "svgicd_latency_seconds_count{series=%q} %d\n", name, snap.Count)
		}
		wrote = false
		for _, name := range names {
			w := s.tel.Window(name)
			if w == nil || w.Count() == 0 {
				continue
			}
			if !wrote {
				fmt.Fprintf(&p.b, "# HELP svgicd_latency_quantile_seconds Windowed latency quantiles per series.\n# TYPE svgicd_latency_quantile_seconds gauge\n")
				wrote = true
			}
			for _, q := range []float64{0.5, 0.9, 0.99} {
				fmt.Fprintf(&p.b, "svgicd_latency_quantile_seconds{series=%q,quantile=%q} %g\n",
					name, strconv.FormatFloat(q, 'g', -1, 64), w.Quantile(q))
			}
		}
	}

	// SLO burn rates and adaptive admission (present only with -slo).
	if st.SLO != nil {
		slo := st.SLO
		p.gauge("svgicd_adaptive_admission", "1 when SLO feedback (degrade/shed) is enabled.", boolGauge(slo.AdaptiveAdmission))
		p.gauge("svgicd_admission_level", "Degradation ladder rung: 0 normal, 1 degrade, 2 shed.", ladderNum(slo.Level))
		p.gauge("svgicd_effective_max_in_flight", "In-flight cap after adaptive shedding.", float64(slo.EffectiveMaxInFlight))
		p.counter("svgicd_slo_transitions_total", "Degradation ladder transitions (the anti-flap budget).", slo.Transitions)
		p.counter("svgicd_adaptive_shed_total", "Requests shed by the tightened adaptive cap.", slo.AdaptiveShed)
		p.counter("svgicd_degraded_requests_total", "Requests rerouted to the fallback algorithm while degraded.", slo.DegradedTotal)
		if len(slo.DegradedByAlgo) > 0 {
			algos := make([]string, 0, len(slo.DegradedByAlgo))
			for a := range slo.DegradedByAlgo {
				algos = append(algos, a)
			}
			sort.Strings(algos)
			p.labeled("svgicd_degraded_requests_by_algo_total", "Degraded requests by the algorithm they asked for.", "counter", "algo", algos,
				func(a string) float64 { return float64(slo.DegradedByAlgo[a]) })
		}
		fmt.Fprintf(&p.b, "# HELP svgicd_slo_burn_rate Error-budget burn rate per objective and window (1.0 = burning exactly the budget).\n# TYPE svgicd_slo_burn_rate gauge\n")
		for _, o := range slo.Objectives {
			fmt.Fprintf(&p.b, "svgicd_slo_burn_rate{slo=%q,window=\"fast\"} %g\n", o.Name, o.FastBurn)
			fmt.Fprintf(&p.b, "svgicd_slo_burn_rate{slo=%q,window=\"slow\"} %g\n", o.Name, o.SlowBurn)
		}
		fmt.Fprintf(&p.b, "# HELP svgicd_slo_state Objective state: 0 ok, 1 recovering, 2 breached.\n# TYPE svgicd_slo_state gauge\n")
		for _, o := range slo.Objectives {
			fmt.Fprintf(&p.b, "svgicd_slo_state{slo=%q} %g\n", o.Name, stateNum(o.State))
		}
		fmt.Fprintf(&p.b, "# HELP svgicd_slo_observed_quantile_seconds The objective's quantile observed over its window.\n# TYPE svgicd_slo_observed_quantile_seconds gauge\n")
		for _, o := range slo.Objectives {
			fmt.Fprintf(&p.b, "svgicd_slo_observed_quantile_seconds{slo=%q} %g\n", o.Name, o.ObservedMS/1000)
		}
	}

	// Durable store (present only with -data-dir).
	if st.Store != nil {
		d := st.Store.Stats
		p.counter("svgicd_store_appends_total", "WAL records appended.", d.Appends)
		p.counter("svgicd_store_appended_events_total", "Events inside appended WAL records.", d.AppendedEvents)
		p.counter("svgicd_store_appended_bytes_total", "Bytes appended to WALs (frames included).", d.AppendedBytes)
		p.counter("svgicd_store_syncs_total", "fsync calls issued by the store.", d.Syncs)
		p.counter("svgicd_store_snapshots_total", "Session snapshots written.", d.Snapshots)
		p.counter("svgicd_store_compactions_total", "WAL truncations behind a snapshot.", d.Compactions)
		p.counter("svgicd_store_tombstones_total", "Session tombstones written.", d.Tombstones)
		p.counter("svgicd_store_io_errors_total", "Persistence operations abandoned on I/O failure.", d.IOErrors)
		p.gauge("svgicd_store_queue_depth", "Persist ops waiting across writer shards.", float64(d.QueueDepth))
		p.gauge("svgicd_store_open_logs", "Session logs currently open.", float64(d.OpenLogs))
		p.counter("svgicd_store_recovered_sessions_total", "Sessions recovered at the last startup.", d.RecoveredSessions)
		p.counter("svgicd_store_replayed_records_total", "WAL tail records replayed during recovery.", d.ReplayedRecords)
		p.counter("svgicd_store_replayed_events_total", "Events replayed during recovery.", d.ReplayedEvents)
		p.counter("svgicd_store_torn_tails_total", "WALs that ended in a torn frame at recovery.", d.TornTails)
		p.counter("svgicd_store_recovery_errors_total", "Sessions that failed to recover.", d.RecoveryErrors)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(p.b.String()))
}
