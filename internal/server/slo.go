package server

import (
	"strings"
	"time"

	"github.com/svgic/svgic/internal/telemetry"
)

// The SLO feedback loop: every admitted request records its wall time into a
// per-route telemetry series; when Options.SLOs are set, a
// telemetry.Controller watches those series' burn rates and the server reacts
// by walking the degradation ladder —
//
//   - LevelDegrade: requests selecting an expensive algorithm (DegradeFrom,
//     default ip and sdp) are silently rerouted to the cheap fallback
//     (DegradeAlgo, default avgd) and marked "degraded": true in the
//     response, trading optimality for latency before trading availability;
//   - LevelShed: on top of degrading, the effective in-flight cap tightens
//     to ShedFactor × MaxInFlight, so excess load is refused with 429 while
//     the latency objective recovers.
//
// The controller is built (and burn rates reported in /v1/stats and
// /metrics) whenever SLOs are configured; NoAdaptiveAdmission keeps the
// measurement but disables both feedback rungs.

// Route series names: one latency window per endpoint family. The engine
// hook adds "algo:<Display>" series and the session hook adds "repair".
const (
	routeSolve         = "solve"
	routeBatch         = "batch"
	routeEvaluate      = "evaluate"
	routeSessionCreate = "session_create"
	routeSessionEvents = "session_events"
	routeSessionGet    = "session_get"
)

// observe starts timing one admitted request; the returned func records the
// elapsed wall time into the route's series. Time comes from the tracker's
// clock, so tests on a ManualClock control the samples.
func (s *Server) observe(route string) func() {
	start := s.tel.Now()
	return func() { s.tel.Record(route, s.tel.Now().Sub(start)) }
}

// effectiveMaxInFlight is the in-flight cap after adaptive shedding: the
// configured cap, tightened by the controller while it sheds.
func (s *Server) effectiveMaxInFlight() int {
	if s.ctrl == nil || s.opts.NoAdaptiveAdmission {
		return cap(s.sem)
	}
	return s.ctrl.EffectiveCap(cap(s.sem))
}

// retryAfterSeconds derives the 429 hint from the observed p50 of the
// route's latency window: a client backing off for one typical request's
// duration retries right about when a slot frees up. The derived hint is
// floored at 1s (sub-second hints round to zero wait) and capped at the
// configured Options.RetryAfter; a route that never recorded falls back to
// the configured value outright.
func (s *Server) retryAfterSeconds(route string) int {
	hint := s.opts.RetryAfter
	if p50 := s.tel.Quantile(route, 0.5); p50 > 0 {
		switch {
		case p50 < time.Second:
			hint = time.Second
		case p50 < hint:
			hint = p50
		}
	}
	return int((hint + time.Second - 1) / time.Second)
}

// shouldDegrade reports whether a request selecting the named algorithm is
// rerouted to the fallback right now: the controller exists, feedback is on,
// the algorithm is on the degrade list, and the ladder sits at LevelDegrade
// or above.
func (s *Server) shouldDegrade(algo string) bool {
	if s.ctrl == nil || s.opts.NoAdaptiveAdmission {
		return false
	}
	algo = strings.ToLower(algo)
	if algo == "" || algo == s.opts.DegradeAlgo || !s.degradeFrom[algo] {
		return false
	}
	return s.ctrl.Level() >= telemetry.LevelDegrade
}

// noteDegraded counts one request rerouted away from the named algorithm.
func (s *Server) noteDegraded(algo string) {
	s.degradedTotal.Add(1)
	s.ctrl.NoteDegraded(strings.ToLower(algo))
}
