package server

import (
	"encoding/json"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/registry"
	"github.com/svgic/svgic/internal/session"
	"github.com/svgic/svgic/internal/store"
	"github.com/svgic/svgic/internal/telemetry"
)

// Wire types of the svgicd JSON API. Instances travel as core.InstanceJSON
// (the interchange schema shared with the CLI and datagen); everything here
// is the server's side of the conversation. The loadgen and the e2e tests
// decode into these same types, so schema drift breaks the build, not the
// wire.

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// SolveRequest is the body of POST /v1/solve: the instance itself (the
// core.InstanceJSON fields, inline) plus an optional algorithm selection.
// A bare InstanceJSON document remains a valid request and runs the server's
// default solver; "algo" picks any registered solver by name and "params"
// overrides its parameters (schemas via GET /v1/algorithms).
type SolveRequest struct {
	core.InstanceJSON
	Algo   string          `json:"algo,omitempty"`
	Params json.RawMessage `json:"params,omitempty"`
}

// SolveResponse answers POST /v1/solve: the SAVG k-Configuration plus its
// utility report under plain SVGIC semantics and the solver's provenance.
type SolveResponse struct {
	Algorithm  string  `json:"algorithm"`
	Slots      int     `json:"slots"`
	Assignment [][]int `json:"assignment"`
	Preference float64 `json:"preference"`
	Social     float64 `json:"social"`
	Weighted   float64 `json:"weighted"`
	Scaled     float64 `json:"scaled"`
	// Components is the number of independently solved social-network
	// components merged into the assignment (1 = solved whole).
	Components int `json:"components,omitempty"`
	// LPObjective is the fractional relaxation objective (AVG/AVG-D only).
	LPObjective float64 `json:"lpObjective,omitempty"`
	// Nodes/Bound/Exact carry the branch-and-bound certificate (IP only).
	Nodes     int     `json:"nodes,omitempty"`
	Bound     float64 `json:"bound,omitempty"`
	Exact     bool    `json:"exact,omitempty"`
	SolveMS   float64 `json:"solveMs,omitempty"`   // solver wall time (cached: the original solve's)
	ElapsedMS float64 `json:"elapsedMs,omitempty"` // request wall time
	// Degraded marks a request whose algorithm selection was rerouted to the
	// cheap fallback by SLO-driven admission control (Algorithm reports the
	// solver that actually ran).
	Degraded bool `json:"degraded,omitempty"`
}

// BatchResponse answers POST /v1/solve/batch; Results is positional with the
// request's instance array.
type BatchResponse struct {
	Results   []SolveResponse `json:"results"`
	ElapsedMS float64         `json:"elapsedMs"`
}

// EvaluateRequest is the body of POST /v1/evaluate: score a configuration
// against an instance under SVGIC-ST semantics (dtel = 0 gives plain SVGIC).
type EvaluateRequest struct {
	Instance      core.InstanceJSON `json:"instance"`
	Configuration ConfigurationJSON `json:"configuration"`
	DTel          float64           `json:"dtel,omitempty"`
}

// ConfigurationJSON mirrors core.ConfigurationJSON on the wire.
type ConfigurationJSON struct {
	Slots      int     `json:"slots"`
	Assignment [][]int `json:"assignment"`
}

// EvaluateResponse answers POST /v1/evaluate.
type EvaluateResponse struct {
	Preference float64 `json:"preference"`
	Social     float64 `json:"social"`
	Weighted   float64 `json:"weighted"`
	Scaled     float64 `json:"scaled"`
}

// AlgorithmInfo describes one registered solver for GET /v1/algorithms.
type AlgorithmInfo struct {
	Name          string               `json:"name"`    // registry name, what "algo" accepts
	Display       string               `json:"display"` // reported in SolveResponse.Algorithm
	Description   string               `json:"description,omitempty"`
	Deterministic bool                 `json:"deterministic"`
	Params        []registry.ParamSpec `json:"params,omitempty"`
}

// AlgorithmsResponse answers GET /v1/algorithms.
type AlgorithmsResponse struct {
	Default    string          `json:"default"` // server default algorithm name
	Algorithms []AlgorithmInfo `json:"algorithms"`
}

// CreateSessionRequest is the body of POST /v1/sessions: the starting
// instance (core.InstanceJSON fields, inline) plus an optional algorithm
// selection — the named solver both produces the initial configuration and
// backs the session's drift repair — and an optional SVGIC-ST subgroup size
// cap enforced on event application. When sizeCap is set and the selected
// algorithm's schema has a sizeCap parameter not explicitly given, the
// server injects it, so the repair solver solves the same capped problem the
// session maintains.
type CreateSessionRequest struct {
	core.InstanceJSON
	Algo    string          `json:"algo,omitempty"`
	Params  json.RawMessage `json:"params,omitempty"`
	SizeCap int             `json:"sizeCap,omitempty"`
}

// CreateSessionResponse answers POST /v1/sessions.
type CreateSessionResponse struct {
	ID        string  `json:"id"`
	Algorithm string  `json:"algorithm"`
	Version   uint64  `json:"version"`
	Value     float64 `json:"value"`
	Users     int     `json:"users"`
	SizeCap   int     `json:"sizeCap,omitempty"`
	// Degraded marks a create whose algorithm selection was rerouted to the
	// cheap fallback by SLO-driven admission control; the session keeps the
	// fallback as its durable solver identity.
	Degraded  bool    `json:"degraded,omitempty"`
	SolveMS   float64 `json:"solveMs,omitempty"`
	ElapsedMS float64 `json:"elapsedMs,omitempty"`
}

// SessionEventsRequest is the body of POST /v1/sessions/{id}/events: a batch
// of live-session events applied in order under the session's serializing
// lock (see the session package for the event schema).
type SessionEventsRequest struct {
	Events []session.Event `json:"events"`
}

// SessionEventsResponse answers POST /v1/sessions/{id}/events: the session's
// version and objective value after the batch, plus one result per applied
// event. Every applied event bumps the version by exactly one (drift-repair
// swaps between batches bump it too), so a client replaying a trace can
// assert monotone progress.
type SessionEventsResponse struct {
	Version   uint64                `json:"version"`
	Value     float64               `json:"value"`
	Results   []session.EventResult `json:"results"`
	ElapsedMS float64               `json:"elapsedMs,omitempty"`
}

// SessionResponse answers GET /v1/sessions/{id}: the live configuration and
// the per-session metrics (events applied per kind, accumulated rebalance
// gain, drift-repair swap/keep/stale counts).
type SessionResponse struct {
	ID         string          `json:"id"`
	Algorithm  string          `json:"algorithm"`
	SizeCap    int             `json:"sizeCap,omitempty"`
	Version    uint64          `json:"version"`
	Value      float64         `json:"value"`
	Users      int             `json:"users"`
	Active     []int           `json:"active"`
	Slots      int             `json:"slots"`
	Assignment [][]int         `json:"assignment"`
	AgeMS      float64         `json:"ageMs"`
	IdleMS     float64         `json:"idleMs"`
	Metrics    session.Metrics `json:"metrics"`
}

// SessionsStats is the live-session slice of GET /v1/stats: manager-level
// admission/eviction counters, aggregate event counts, the drift-repair
// swap/keep/stale split, and the per-shard counter slices (shard count plus
// one entry per hash-partitioned lock domain, for routing-imbalance and
// hot-shard monitoring).
type SessionsStats struct {
	Enabled     bool `json:"enabled"`
	MaxSessions int  `json:"maxSessions"`
	Shards      int  `json:"shards"`
	session.Stats
	PerShard []session.ShardStats `json:"perShard,omitempty"`
}

// StoreStats is the durable-session-store slice of GET /v1/stats: WAL
// append/fsync/snapshot/compaction counters plus the recovery counters of
// the last startup (sessions recovered, WAL tail records replayed, torn
// tails tolerated). Absent when svgicd runs without -data-dir.
type StoreStats struct {
	Enabled bool `json:"enabled"`
	store.Stats
}

// HealthResponse answers GET /healthz.
type HealthResponse struct {
	Status  string `json:"status"`
	Workers int    `json:"workers,omitempty"`
}

// ServerStats is the admission-control slice of GET /v1/stats.
type ServerStats struct {
	Admitted     uint64 `json:"admitted"`
	Shed         uint64 `json:"shed"`
	BadRequests  uint64 `json:"badRequests"`
	Timeouts     uint64 `json:"timeouts"`
	ClientClosed uint64 `json:"clientClosed"`
	InFlight     int    `json:"inFlight"`
	MaxInFlight  int    `json:"maxInFlight"`
	Draining     bool   `json:"draining"`
}

// AlgoStats is the per-algorithm slice of EngineStats; the counter identity
// Solves == CacheHits + Solved + Canceled + Errors holds per algorithm.
type AlgoStats struct {
	Solves       uint64  `json:"solves"`
	CacheHits    uint64  `json:"cacheHits"`
	Solved       uint64  `json:"solved"`
	Canceled     uint64  `json:"canceled"`
	Errors       uint64  `json:"errors"`
	AvgLatencyMS float64 `json:"avgLatencyMs"`
}

// EngineStats is the engine-counter slice of GET /v1/stats. The identity
// Solves == CacheHits + Solved + Canceled + Errors holds at any quiescent
// point, globally and per algorithm.
type EngineStats struct {
	Solves           uint64               `json:"solves"`
	Batches          uint64               `json:"batches"`
	ComponentsSolved uint64               `json:"componentsSolved"`
	CacheHits        uint64               `json:"cacheHits"`
	CacheMisses      uint64               `json:"cacheMisses"`
	Solved           uint64               `json:"solved"`
	Canceled         uint64               `json:"canceled"`
	Errors           uint64               `json:"errors"`
	AvgLatencyMS     float64              `json:"avgLatencyMs"`
	Workers          int                  `json:"workers"`
	PerAlgorithm     map[string]AlgoStats `json:"perAlgorithm,omitempty"`
}

// CoalesceStats is the request-coalescing slice of GET /v1/stats: Leads
// counts flights that ran the engine, Joins counts requests answered by
// parking on an identical in-flight solve (same instance AND same solver).
type CoalesceStats struct {
	Enabled bool   `json:"enabled"`
	Leads   uint64 `json:"leads"`
	Joins   uint64 `json:"joins"`
}

// LatencyStats is one latency series' sliding-window summary in GET
// /v1/stats: per-route request wall times ("solve", "session_create", ...),
// per-algorithm solver wall times ("algo:AVG-D", ...) and drift-repair cycle
// times ("repair").
type LatencyStats struct {
	Count uint64  `json:"count"`
	P50MS float64 `json:"p50Ms"`
	P90MS float64 `json:"p90Ms"`
	P99MS float64 `json:"p99Ms"`
	MaxMS float64 `json:"maxMs"`
}

// SLOStats is the SLO/adaptive-admission slice of GET /v1/stats: the
// controller's ladder rung, the anti-flap transition counter, the shed and
// degrade counters, and every objective's burn-rate state. Absent when the
// server runs without SLOs.
type SLOStats struct {
	// AdaptiveAdmission is false when feedback is disabled
	// (-no-adaptive-admission): burn rates are still reported but nothing
	// degrades or sheds.
	AdaptiveAdmission    bool                        `json:"adaptiveAdmission"`
	Level                string                      `json:"level"`
	EffectiveMaxInFlight int                         `json:"effectiveMaxInFlight"`
	Transitions          uint64                      `json:"transitions"`
	AdaptiveShed         uint64                      `json:"adaptiveShed"`
	DegradedTotal        uint64                      `json:"degradedTotal"`
	DegradedByAlgo       map[string]uint64           `json:"degradedByAlgo,omitempty"`
	Objectives           []telemetry.ObjectiveStatus `json:"objectives"`
}

// StatsResponse answers GET /v1/stats.
type StatsResponse struct {
	Server   ServerStats             `json:"server"`
	Engine   EngineStats             `json:"engine"`
	Coalesce CoalesceStats           `json:"coalesce"`
	Sessions SessionsStats           `json:"sessions"`
	Store    *StoreStats             `json:"store,omitempty"`
	Latency  map[string]LatencyStats `json:"latency,omitempty"`
	SLO      *SLOStats               `json:"slo,omitempty"`
}
