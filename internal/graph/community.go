package graph

import (
	"math/rand/v2"
	"sort"
)

// Community detection and balanced partitioning, used by the
// subgroup-by-friendship baseline (SDP) and by the prepartitioning wrapper
// for SVGIC-ST.

// LabelPropagation runs asynchronous label propagation on pair adjacency and
// returns a community label per vertex (labels are compacted to 0..k-1).
// It is deterministic given r.
func LabelPropagation(g *Graph, r *rand.Rand, maxRounds int) []int {
	n := g.NumVertices()
	label := make([]int, n)
	for i := range label {
		label[i] = i
	}
	if maxRounds <= 0 {
		maxRounds = 50
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	counts := make(map[int]int)
	for round := 0; round < maxRounds; round++ {
		// Shuffle the update order each round.
		for i := n - 1; i > 0; i-- {
			j := r.IntN(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		changed := false
		for _, u := range order {
			nb := g.Neighbors(u)
			if len(nb) == 0 {
				continue
			}
			clear(counts)
			for _, v := range nb {
				counts[label[v]]++
			}
			maxCount := 0
			for _, c := range counts {
				if c > maxCount {
					maxCount = c
				}
			}
			// Retention variant: keep the current label whenever it is among
			// the most frequent; otherwise pick uniformly among the argmax
			// labels (sorted first so the draw is reproducible given r).
			if counts[label[u]] == maxCount {
				continue
			}
			keys := make([]int, 0, len(counts))
			for k, c := range counts {
				if c == maxCount {
					keys = append(keys, k)
				}
			}
			sort.Ints(keys)
			label[u] = keys[r.IntN(len(keys))]
			changed = true
		}
		if !changed {
			break
		}
	}
	return compactLabels(label)
}

func compactLabels(label []int) []int {
	remap := make(map[int]int)
	out := make([]int, len(label))
	for i, l := range label {
		if _, ok := remap[l]; !ok {
			remap[l] = len(remap)
		}
		out[i] = remap[l]
	}
	return out
}

// Modularity returns the Newman modularity of the given community assignment
// on pair adjacency.
func Modularity(g *Graph, community []int) float64 {
	m := float64(g.NumPairs())
	if m == 0 {
		return 0
	}
	var q float64
	deg := make([]float64, g.NumVertices())
	for u := range deg {
		deg[u] = float64(len(g.Neighbors(u)))
	}
	inside := make(map[int]float64)
	degSum := make(map[int]float64)
	for _, p := range g.Pairs() {
		if community[p[0]] == community[p[1]] {
			inside[community[p[0]]]++
		}
	}
	for u, c := range community {
		degSum[c] += deg[u]
	}
	for c, in := range inside {
		q += in / m
		_ = c
	}
	for _, ds := range degSum {
		q -= (ds / (2 * m)) * (ds / (2 * m))
	}
	return q
}

// GreedyModularity runs agglomerative community merging (CNM-style): start
// from singletons and repeatedly merge the community pair with the best
// modularity gain until no merge improves modularity. O(n^2·merges); intended
// for the group sizes used in SVGIC experiments (n ≤ a few hundred).
func GreedyModularity(g *Graph) []int {
	n := g.NumVertices()
	community := make([]int, n)
	for i := range community {
		community[i] = i
	}
	for {
		base := Modularity(g, community)
		bestGain := 1e-12
		bestA, bestB := -1, -1
		// Candidate merges: community pairs connected by at least one edge.
		tried := make(map[int64]struct{})
		for _, p := range g.Pairs() {
			a, b := community[p[0]], community[p[1]]
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			k := int64(a)*int64(n) + int64(b)
			if _, ok := tried[k]; ok {
				continue
			}
			tried[k] = struct{}{}
			trial := make([]int, n)
			copy(trial, community)
			for i := range trial {
				if trial[i] == b {
					trial[i] = a
				}
			}
			if gain := Modularity(g, trial) - base; gain > bestGain {
				bestGain, bestA, bestB = gain, a, b
			}
		}
		if bestA < 0 {
			break
		}
		for i := range community {
			if community[i] == bestB {
				community[i] = bestA
			}
		}
	}
	return compactLabels(community)
}

// BalancedPartition splits the vertices into numGroups groups whose sizes
// differ by at most one, minimizing the number of cut pairs by
// Kernighan–Lin-style swap refinement from a BFS seeding. Deterministic
// given r. It returns a group index per vertex.
func BalancedPartition(g *Graph, numGroups int, r *rand.Rand) []int {
	n := g.NumVertices()
	group := make([]int, n)
	if numGroups <= 1 || n == 0 {
		return group
	}
	if numGroups > n {
		numGroups = n
	}
	// BFS seeding: walk components in BFS order and deal vertices into groups
	// contiguously so that connected runs land together.
	order := make([]int, 0, n)
	for _, comp := range ConnectedComponents(g) {
		order = append(order, comp...)
	}
	size := make([]int, numGroups)
	target := make([]int, numGroups)
	for i := 0; i < numGroups; i++ {
		target[i] = n / numGroups
		if i < n%numGroups {
			target[i]++
		}
	}
	gi := 0
	for _, v := range order {
		for size[gi] >= target[gi] {
			gi = (gi + 1) % numGroups
		}
		group[v] = gi
		size[gi]++
	}
	// Swap refinement: exchange vertex pairs across groups while the cut
	// improves. Sizes are preserved by swapping, keeping the partition
	// balanced.
	gain := func(u, v int) int {
		// Cut change when u and v (in different groups) swap groups.
		gu, gv := group[u], group[v]
		delta := 0
		for _, w := range g.Neighbors(u) {
			if w == v {
				continue
			}
			if group[w] == gu {
				delta++ // edge becomes cut
			} else if group[w] == gv {
				delta-- // edge becomes internal
			}
		}
		for _, w := range g.Neighbors(v) {
			if w == u {
				continue
			}
			if group[w] == gv {
				delta++
			} else if group[w] == gu {
				delta--
			}
		}
		return delta
	}
	for pass := 0; pass < 2*n+10; pass++ {
		improved := false
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if group[u] == group[v] {
					continue
				}
				if gain(u, v) < 0 {
					group[u], group[v] = group[v], group[u]
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return group
}

// GroupsOf converts a per-vertex assignment into explicit vertex lists,
// ordered by group index with empty groups removed.
func GroupsOf(assignment []int) [][]int {
	maxG := -1
	for _, a := range assignment {
		if a > maxG {
			maxG = a
		}
	}
	groups := make([][]int, maxG+1)
	for v, a := range assignment {
		groups[a] = append(groups[a], v)
	}
	out := groups[:0]
	for _, grp := range groups {
		if len(grp) > 0 {
			out = append(out, grp)
		}
	}
	return out
}
