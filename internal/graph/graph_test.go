package graph

import (
	"testing"
	"testing/quick"

	"github.com/svgic/svgic/internal/stats"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	if !g.AddEdge(0, 1) {
		t.Fatal("AddEdge(0,1) = false")
	}
	if g.AddEdge(0, 1) {
		t.Error("duplicate AddEdge succeeded")
	}
	if g.AddEdge(1, 1) {
		t.Error("self-loop accepted")
	}
	if g.AddEdge(-1, 2) || g.AddEdge(0, 3) {
		t.Error("out-of-range edge accepted")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("directedness broken")
	}
	if !g.Connected(1, 0) {
		t.Error("Connected should be symmetric")
	}
	if g.NumEdges() != 1 || g.NumPairs() != 1 {
		t.Errorf("edges/pairs = %d/%d, want 1/1", g.NumEdges(), g.NumPairs())
	}
	g.AddEdge(1, 0) // reverse direction: new edge, same pair
	if g.NumEdges() != 2 || g.NumPairs() != 1 {
		t.Errorf("after reverse: edges/pairs = %d/%d, want 2/1", g.NumEdges(), g.NumPairs())
	}
	if idx, ok := g.PairIndex(1, 0); !ok || idx != 0 {
		t.Errorf("PairIndex(1,0) = %d,%v want 0,true", idx, ok)
	}
	if _, ok := g.PairIndex(0, 2); ok {
		t.Error("PairIndex of non-pair returned ok")
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New(3)
	g.AddEdge(2, 0)
	g.AddEdge(0, 2)
	g.AddEdge(1, 0)
	es := g.Edges()
	want := [][2]int{{0, 2}, {1, 0}, {2, 0}}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("Edges() = %v, want %v", es, want)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(5)
	g.AddMutualEdge(0, 1)
	g.AddMutualEdge(1, 2)
	g.AddEdge(3, 1)
	sub, orig, err := g.InducedSubgraph([]int{1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(orig) != 3 || orig[0] != 1 {
		t.Errorf("orig = %v", orig)
	}
	if !sub.HasEdge(1, 0) { // 3->1 becomes 1->0
		t.Error("missing remapped edge 3->1")
	}
	if sub.NumEdges() != 1 {
		t.Errorf("sub edges = %d, want 1", sub.NumEdges())
	}
	if _, _, err := g.InducedSubgraph([]int{1, 1}); err == nil {
		t.Error("duplicate vertex accepted")
	}
	if _, _, err := g.InducedSubgraph([]int{9}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(3)
	g.AddMutualEdge(0, 1)
	c := g.Clone()
	c.AddMutualEdge(1, 2)
	if g.Connected(1, 2) {
		t.Error("clone mutated the original")
	}
	if !c.Connected(0, 1) {
		t.Error("clone lost an edge")
	}
}

func TestCompleteAndEmpty(t *testing.T) {
	g := Complete(5)
	if g.NumPairs() != 10 || g.NumEdges() != 20 {
		t.Errorf("complete: pairs=%d edges=%d", g.NumPairs(), g.NumEdges())
	}
	if Density(g) != 1 {
		t.Errorf("complete density = %v", Density(g))
	}
	if AverageClustering(g) != 1 {
		t.Errorf("complete clustering = %v", AverageClustering(g))
	}
	e := Empty(4)
	if e.NumEdges() != 0 || Density(e) != 0 {
		t.Error("empty graph not empty")
	}
}

func TestGeneratorsDeterministicAndSane(t *testing.T) {
	cases := []struct {
		name string
		gen  func(seed uint64) *Graph
	}{
		{"ER", func(s uint64) *Graph { return ErdosRenyi(30, 0.2, stats.NewRand(s)) }},
		{"BA", func(s uint64) *Graph { return BarabasiAlbert(30, 3, stats.NewRand(s)) }},
		{"HK", func(s uint64) *Graph { return HolmeKim(30, 3, 0.5, stats.NewRand(s)) }},
		{"WS", func(s uint64) *Graph { return WattsStrogatz(30, 2, 0.1, stats.NewRand(s)) }},
	}
	for _, tc := range cases {
		a, b := tc.gen(7), tc.gen(7)
		if a.NumEdges() != b.NumEdges() || a.NumPairs() != b.NumPairs() {
			t.Errorf("%s: same seed, different graphs", tc.name)
		}
		if a.NumVertices() != 30 {
			t.Errorf("%s: wrong vertex count", tc.name)
		}
		// All generators make mutual edges: edges = 2 * pairs.
		if a.NumEdges() != 2*a.NumPairs() {
			t.Errorf("%s: edges=%d pairs=%d, want mutual", tc.name, a.NumEdges(), a.NumPairs())
		}
	}
}

func TestBAConnectedAndDegreeSkew(t *testing.T) {
	g := BarabasiAlbert(200, 3, stats.NewRand(9))
	comps := ConnectedComponents(g)
	if len(comps) != 1 {
		t.Errorf("BA graph has %d components, want 1", len(comps))
	}
	_, mean, max := DegreeStats(g)
	if float64(max) < 2.5*mean {
		t.Errorf("BA degree distribution not heavy-tailed: mean %.1f max %d", mean, max)
	}
}

func TestHolmeKimClusteringHigherThanBA(t *testing.T) {
	ba := BarabasiAlbert(150, 3, stats.NewRand(5))
	hk := HolmeKim(150, 3, 0.8, stats.NewRand(5))
	if AverageClustering(hk) <= AverageClustering(ba) {
		t.Errorf("triad closure did not raise clustering: HK %.3f vs BA %.3f",
			AverageClustering(hk), AverageClustering(ba))
	}
}

func TestRandomWalkSample(t *testing.T) {
	g := BarabasiAlbert(100, 3, stats.NewRand(1))
	sub, orig := RandomWalkSample(g, 20, stats.NewRand(2))
	if sub.NumVertices() != 20 || len(orig) != 20 {
		t.Fatalf("sample size = %d", sub.NumVertices())
	}
	seen := map[int]bool{}
	for _, v := range orig {
		if seen[v] {
			t.Fatal("duplicate vertex in sample")
		}
		seen[v] = true
	}
	// Sampling more than the population returns everything.
	all, origAll := RandomWalkSample(g, 500, stats.NewRand(3))
	if all.NumVertices() != 100 || len(origAll) != 100 {
		t.Error("oversized sample did not return the full graph")
	}
}

func TestEgoNetwork(t *testing.T) {
	// Path 0-1-2-3-4: 2 hops from 2 reaches everyone except nothing; from 0
	// reaches {0,1,2}.
	g := New(5)
	for i := 0; i < 4; i++ {
		g.AddMutualEdge(i, i+1)
	}
	sub, orig := EgoNetwork(g, 0, 2)
	if sub.NumVertices() != 3 || orig[0] != 0 {
		t.Errorf("ego(0,2) = %v", orig)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	g.AddMutualEdge(0, 1)
	g.AddMutualEdge(2, 3)
	g.AddMutualEdge(3, 4)
	comps := ConnectedComponents(g)
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 3 {
		t.Errorf("largest component size = %d, want 3", len(comps[0]))
	}
}

func TestSubsetDensity(t *testing.T) {
	g := Complete(6)
	if d := SubsetDensity(g, []int{0, 1, 2}); d != 1 {
		t.Errorf("subset density of clique = %v", d)
	}
	if d := SubsetDensity(g, []int{0}); d != 0 {
		t.Errorf("singleton density = %v", d)
	}
	e := Empty(6)
	if d := SubsetDensity(e, []int{0, 1, 2}); d != 0 {
		t.Errorf("empty subset density = %v", d)
	}
}

func TestBalancedPartitionPaperExample(t *testing.T) {
	// The running example's friendship graph: pairs A-B, A-C, A-D, B-C.
	// The unique minimum balanced 2-cut is {A,D} | {B,C}.
	g := New(4)
	g.AddMutualEdge(0, 1)
	g.AddMutualEdge(0, 2)
	g.AddMutualEdge(0, 3)
	g.AddMutualEdge(1, 2)
	p := BalancedPartition(g, 2, stats.NewRand(1))
	if p[0] != p[3] || p[1] != p[2] || p[0] == p[1] {
		t.Errorf("partition = %v, want {0,3}|{1,2}", p)
	}
	side := make([]bool, 4)
	for v, grp := range p {
		side[v] = grp == p[0]
	}
	if cut := CutSize(g, side); cut != 2 {
		t.Errorf("cut = %d, want 2", cut)
	}
}

func TestBalancedPartitionSizes(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw, gRaw uint8) bool {
		n := int(nRaw%40) + 2
		groups := int(gRaw%5) + 1
		g := ErdosRenyi(n, 0.3, stats.NewRand(seed))
		p := BalancedPartition(g, groups, stats.NewRand(seed+1))
		if groups > n {
			groups = n
		}
		sizes := make(map[int]int)
		for _, grp := range p {
			sizes[grp]++
		}
		min, max := n, 0
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		return max-min <= 1
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestLabelPropagationFindsTwoCliques(t *testing.T) {
	// Two 6-cliques joined by one edge.
	g := New(12)
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			g.AddMutualEdge(a, b)
			g.AddMutualEdge(a+6, b+6)
		}
	}
	g.AddMutualEdge(0, 6)
	labels := LabelPropagation(g, stats.NewRand(3), 50)
	if labels[0] != labels[5] || labels[6] != labels[11] {
		t.Errorf("cliques split: %v", labels)
	}
	if labels[0] == labels[6] {
		t.Errorf("cliques merged: %v", labels)
	}
}

func TestGreedyModularityTwoCliques(t *testing.T) {
	g := New(8)
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			g.AddMutualEdge(a, b)
			g.AddMutualEdge(a+4, b+4)
		}
	}
	g.AddMutualEdge(0, 4)
	comm := GreedyModularity(g)
	if comm[0] != comm[3] || comm[4] != comm[7] || comm[0] == comm[4] {
		t.Errorf("modularity communities = %v, want two cliques", comm)
	}
	if q := Modularity(g, comm); q <= 0.2 {
		t.Errorf("modularity = %v, want > 0.2", q)
	}
}

func TestGroupsOf(t *testing.T) {
	groups := GroupsOf([]int{0, 2, 0, 2, 5})
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 2 || groups[0][0] != 0 || groups[0][1] != 2 {
		t.Errorf("group 0 = %v", groups[0])
	}
}

func TestModularityEmptyGraph(t *testing.T) {
	if q := Modularity(Empty(5), []int{0, 0, 0, 0, 0}); q != 0 {
		t.Errorf("modularity of empty graph = %v", q)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := New(5)
	g.AddMutualEdge(0, 1)
	g.AddMutualEdge(0, 2)
	g.AddMutualEdge(0, 3)
	h := DegreeHistogram(g)
	if h[0] != 1 { // vertex 4 isolated
		t.Errorf("bucket 0 = %d", h[0])
	}
	if h[1] != 3 || h[3] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestReciprocity(t *testing.T) {
	g := New(3)
	g.AddMutualEdge(0, 1)
	g.AddEdge(1, 2)
	if r := Reciprocity(g); r != 0.5 {
		t.Errorf("reciprocity = %v, want 0.5", r)
	}
	if r := Reciprocity(Empty(3)); r != 0 {
		t.Errorf("empty reciprocity = %v", r)
	}
}

func TestAveragePathLength(t *testing.T) {
	// Path graph 0-1-2: pairs (0,1)=1, (1,2)=1, (0,2)=2 → mean 4/3.
	g := New(3)
	g.AddMutualEdge(0, 1)
	g.AddMutualEdge(1, 2)
	if got := AveragePathLength(g, 0); got < 1.33 || got > 1.34 {
		t.Errorf("average path length = %v, want 4/3", got)
	}
	if got := AveragePathLength(Complete(6), 0); got != 1 {
		t.Errorf("clique path length = %v, want 1", got)
	}
}

func TestDegreeAssortativityDisassortativeStar(t *testing.T) {
	// A star is maximally disassortative.
	g := New(6)
	for v := 1; v < 6; v++ {
		g.AddMutualEdge(0, v)
	}
	if a := DegreeAssortativity(g); a >= 0 {
		t.Errorf("star assortativity = %v, want < 0", a)
	}
	if a := DegreeAssortativity(Empty(3)); a != 0 {
		t.Errorf("empty assortativity = %v", a)
	}
}
