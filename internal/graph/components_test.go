package graph

import (
	"testing"

	"github.com/svgic/svgic/internal/stats"
)

func TestComponentDecomposeCanonicalOrder(t *testing.T) {
	g := New(9)
	// Components: {0,4,8}, {1,7}, {2}, {3,5,6}. Edges added out of order.
	g.AddMutualEdge(8, 4)
	g.AddMutualEdge(4, 0)
	g.AddMutualEdge(7, 1)
	g.AddMutualEdge(5, 3)
	g.AddMutualEdge(6, 5)
	comps := ComponentDecompose(g)
	want := [][]int{{0, 4, 8}, {1, 7}, {2}, {3, 5, 6}}
	if len(comps) != len(want) {
		t.Fatalf("got %d components, want %d", len(comps), len(want))
	}
	for i, w := range want {
		if len(comps[i]) != len(w) {
			t.Fatalf("component %d = %v, want %v", i, comps[i], w)
		}
		for j := range w {
			if comps[i][j] != w[j] {
				t.Fatalf("component %d = %v, want %v", i, comps[i], w)
			}
		}
	}
}

func TestComponentLabelsMatchDecompose(t *testing.T) {
	g := ErdosRenyi(40, 0.05, stats.NewRand(42))
	labels, count := ComponentLabels(g)
	comps := ComponentDecompose(g)
	if count != len(comps) {
		t.Fatalf("label count %d != %d components", count, len(comps))
	}
	for i, comp := range comps {
		for _, v := range comp {
			if labels[v] != i {
				t.Fatalf("vertex %d labelled %d, listed in component %d", v, labels[v], i)
			}
		}
	}
	// Labels must agree with pair connectivity.
	for _, p := range g.Pairs() {
		if labels[p[0]] != labels[p[1]] {
			t.Fatalf("connected pair %v straddles components", p)
		}
	}
}

func TestComponentDecomposeEmptyAndSingletons(t *testing.T) {
	if got := ComponentDecompose(New(0)); got != nil {
		t.Fatalf("empty graph: got %v, want nil", got)
	}
	comps := ComponentDecompose(New(3))
	if len(comps) != 3 {
		t.Fatalf("edgeless graph: %d components, want 3", len(comps))
	}
	for i, c := range comps {
		if len(c) != 1 || c[0] != i {
			t.Fatalf("component %d = %v, want [%d]", i, c, i)
		}
	}
}
