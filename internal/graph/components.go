package graph

// Component decomposition for instance splitting.
//
// ConnectedComponents (metrics.go) reports components largest-first in DFS
// discovery order, which suits the dataset-calibration metrics. The solver
// engine instead needs a canonical decomposition whose vertex order is
// reproducible and order-preserving, so that splitting an instance, solving
// the parts and merging the results is deterministic: ComponentDecompose
// orders components by their smallest vertex and lists each component's
// vertices in ascending order. Restricting any vertex-indexed tie-break to a
// component therefore sees the same relative order as the whole graph.

// ComponentDecompose returns the vertex sets of the pair-connectivity
// components in canonical order: components sorted by smallest member,
// members ascending within each component. A graph with no vertices returns
// nil.
func ComponentDecompose(g *Graph) [][]int {
	labels, count := ComponentLabels(g)
	if count == 0 {
		return nil
	}
	comps := make([][]int, count)
	for v, c := range labels {
		comps[c] = append(comps[c], v)
	}
	return comps
}

// ComponentLabels assigns every vertex the index of its pair-connectivity
// component and returns the labels with the component count. Components are
// numbered in order of their smallest vertex, so label i's component has a
// smaller minimum vertex than label i+1's.
func ComponentLabels(g *Graph) ([]int, int) {
	n := g.NumVertices()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	count := 0
	var stack []int
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = count
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Neighbors(u) {
				if labels[v] < 0 {
					labels[v] = count
					stack = append(stack, v)
				}
			}
		}
		count++
	}
	return labels, count
}
