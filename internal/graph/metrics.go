package graph

// Structural metrics used to calibrate the synthetic datasets and to report
// the subgroup statistics of Section 6.5 of the paper.

// Density returns the pair density: |pairs| / C(n,2).
func Density(g *Graph) float64 {
	n := g.NumVertices()
	if n < 2 {
		return 0
	}
	return float64(g.NumPairs()) / (float64(n) * float64(n-1) / 2)
}

// SubsetDensity returns the pair density of the subgraph induced by the
// given vertex set (pairs entirely inside the set).
func SubsetDensity(g *Graph, vertices []int) float64 {
	if len(vertices) < 2 {
		return 0
	}
	in := make(map[int]struct{}, len(vertices))
	for _, v := range vertices {
		in[v] = struct{}{}
	}
	var count int
	for _, v := range vertices {
		for _, w := range g.Neighbors(v) {
			if w > v {
				if _, ok := in[w]; ok {
					count++
				}
			}
		}
	}
	k := float64(len(vertices))
	return float64(count) / (k * (k - 1) / 2)
}

// AverageClustering returns the mean local clustering coefficient over all
// vertices (vertices of degree < 2 contribute 0), on pair adjacency.
func AverageClustering(g *Graph) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	var total float64
	for u := 0; u < n; u++ {
		nb := g.Neighbors(u)
		d := len(nb)
		if d < 2 {
			continue
		}
		var tri int
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.Connected(nb[i], nb[j]) {
					tri++
				}
			}
		}
		total += 2 * float64(tri) / (float64(d) * float64(d-1))
	}
	return total / float64(n)
}

// DegreeStats returns the min, mean and max pair degree.
func DegreeStats(g *Graph) (min int, mean float64, max int) {
	n := g.NumVertices()
	if n == 0 {
		return 0, 0, 0
	}
	min = g.n
	var sum int
	for u := 0; u < n; u++ {
		d := len(g.Neighbors(u))
		sum += d
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	return min, float64(sum) / float64(n), max
}

// ConnectedComponents returns the vertex sets of the pair-connectivity
// components, largest first.
func ConnectedComponents(g *Graph) [][]int {
	n := g.NumVertices()
	seen := make([]bool, n)
	var comps [][]int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range g.Neighbors(u) {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	// Largest first (stable enough for tests: sort by size then first vertex).
	for i := 0; i < len(comps); i++ {
		for j := i + 1; j < len(comps); j++ {
			if len(comps[j]) > len(comps[i]) ||
				(len(comps[j]) == len(comps[i]) && comps[j][0] < comps[i][0]) {
				comps[i], comps[j] = comps[j], comps[i]
			}
		}
	}
	return comps
}

// CutSize returns the number of pairs crossing the given 0/1 assignment.
func CutSize(g *Graph, side []bool) int {
	var cut int
	for _, p := range g.Pairs() {
		if side[p[0]] != side[p[1]] {
			cut++
		}
	}
	return cut
}
