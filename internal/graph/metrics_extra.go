package graph

import "math"

// Additional structural statistics used to calibrate and validate the
// synthetic dataset profiles against the characteristics the paper reports
// for Timik, Epinions and Yelp.

// DegreeHistogram returns counts of pair degrees bucketed as
// [0, 1, 2, 3, 4-7, 8-15, 16-31, 32+].
func DegreeHistogram(g *Graph) []int {
	buckets := make([]int, 8)
	for u := 0; u < g.NumVertices(); u++ {
		d := len(g.Neighbors(u))
		switch {
		case d <= 3:
			buckets[d]++
		case d < 8:
			buckets[4]++
		case d < 16:
			buckets[5]++
		case d < 32:
			buckets[6]++
		default:
			buckets[7]++
		}
	}
	return buckets
}

// DegreeAssortativity returns the Pearson correlation of pair degrees across
// the pair list (positive: hubs link to hubs; heavy-tailed preferential-
// attachment graphs are typically disassortative).
func DegreeAssortativity(g *Graph) float64 {
	pairs := g.Pairs()
	if len(pairs) == 0 {
		return 0
	}
	xs := make([]float64, 0, 2*len(pairs))
	ys := make([]float64, 0, 2*len(pairs))
	for _, p := range pairs {
		du := float64(len(g.Neighbors(p[0])))
		dv := float64(len(g.Neighbors(p[1])))
		// Symmetrize: each pair contributes both orientations.
		xs = append(xs, du, dv)
		ys = append(ys, dv, du)
	}
	return pearson(xs, ys)
}

// Reciprocity returns the fraction of social pairs connected in both
// directions — 1 for fully mutual friendship graphs, lower for trust
// networks like Epinions.
func Reciprocity(g *Graph) float64 {
	pairs := g.Pairs()
	if len(pairs) == 0 {
		return 0
	}
	mutual := 0
	for _, p := range pairs {
		if g.HasEdge(p[0], p[1]) && g.HasEdge(p[1], p[0]) {
			mutual++
		}
	}
	return float64(mutual) / float64(len(pairs))
}

// AveragePathLength estimates the mean shortest-path length over pair
// adjacency by BFS from up to maxSources vertices (0 = all); unreachable
// pairs are skipped. Small-world networks have short average paths.
func AveragePathLength(g *Graph, maxSources int) float64 {
	n := g.NumVertices()
	if n < 2 {
		return 0
	}
	if maxSources <= 0 || maxSources > n {
		maxSources = n
	}
	var total, count float64
	dist := make([]int, n)
	queue := make([]int, 0, n)
	for s := 0; s < maxSources; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(u) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
					total += float64(dist[v])
					count++
				}
			}
		}
	}
	if count == 0 {
		return math.Inf(1)
	}
	return total / count
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
