// Package graph implements the directed social-network substrate used by the
// SVGIC library: storage, synthetic generators matching the characteristics
// of the paper's datasets, sub-network sampling, structural metrics and the
// community-detection routines needed by the subgroup-based baselines.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple directed graph over vertices 0..n-1 with no self loops
// and no parallel edges. In SVGIC the vertices are shoppers and a directed
// edge (u,v) means u receives social utility from discussing items with v.
//
// Besides the directed view the graph maintains its "social pairs": the
// unordered pairs {u,v} connected in at least one direction. Co-display is a
// symmetric event, so the core algorithms and metrics are defined over pairs
// while the per-direction τ utilities stay directional.
type Graph struct {
	n        int
	out      [][]int
	in       [][]int
	edgeSet  map[int64]struct{}
	pairs    [][2]int      // unique unordered pairs, u < v
	pairIdx  map[int64]int // key(u,v) with u < v -> index into pairs
	adjPairs [][]int       // per vertex: indices of incident pairs
	und      [][]int       // per vertex: unordered-pair neighbours
}

// New returns an empty directed graph with n vertices.
func New(n int) *Graph {
	return &Graph{
		n:        n,
		out:      make([][]int, n),
		in:       make([][]int, n),
		edgeSet:  make(map[int64]struct{}),
		pairIdx:  make(map[int64]int),
		adjPairs: make([][]int, n),
		und:      make([][]int, n),
	}
}

func (g *Graph) key(u, v int) int64 { return int64(u)*int64(g.n) + int64(v) }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.edgeSet) }

// NumPairs returns the number of social pairs (unordered connected pairs).
func (g *Graph) NumPairs() int { return len(g.pairs) }

// AddEdge inserts the directed edge (u,v). Self loops and duplicates are
// ignored. It returns true when a new edge was inserted.
func (g *Graph) AddEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n {
		return false
	}
	k := g.key(u, v)
	if _, ok := g.edgeSet[k]; ok {
		return false
	}
	g.edgeSet[k] = struct{}{}
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	a, b := u, v
	if a > b {
		a, b = b, a
	}
	pk := g.key(a, b)
	if _, ok := g.pairIdx[pk]; !ok {
		idx := len(g.pairs)
		g.pairIdx[pk] = idx
		g.pairs = append(g.pairs, [2]int{a, b})
		g.adjPairs[a] = append(g.adjPairs[a], idx)
		g.adjPairs[b] = append(g.adjPairs[b], idx)
		g.und[a] = append(g.und[a], b)
		g.und[b] = append(g.und[b], a)
	}
	return true
}

// AddMutualEdge inserts both (u,v) and (v,u).
func (g *Graph) AddMutualEdge(u, v int) {
	g.AddEdge(u, v)
	g.AddEdge(v, u)
}

// HasEdge reports whether the directed edge (u,v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		return false
	}
	_, ok := g.edgeSet[g.key(u, v)]
	return ok
}

// Connected reports whether u and v form a social pair (either direction).
func (g *Graph) Connected(u, v int) bool {
	return g.HasEdge(u, v) || g.HasEdge(v, u)
}

// Out returns the out-neighbours of u. The slice must not be modified.
func (g *Graph) Out(u int) []int { return g.out[u] }

// In returns the in-neighbours of u. The slice must not be modified.
func (g *Graph) In(u int) []int { return g.in[u] }

// Neighbors returns the social-pair neighbours of u (unordered adjacency).
// The slice must not be modified.
func (g *Graph) Neighbors(u int) []int { return g.und[u] }

// Pairs returns all social pairs as (u,v) with u < v.
// The slice must not be modified.
func (g *Graph) Pairs() [][2]int { return g.pairs }

// PairAt returns the i-th social pair.
func (g *Graph) PairAt(i int) (u, v int) { p := g.pairs[i]; return p[0], p[1] }

// PairIndex returns the index of the social pair {u,v} and whether it exists.
func (g *Graph) PairIndex(u, v int) (int, bool) {
	if u > v {
		u, v = v, u
	}
	idx, ok := g.pairIdx[g.key(u, v)]
	return idx, ok
}

// IncidentPairs returns the indices of the social pairs incident to u.
// The slice must not be modified.
func (g *Graph) IncidentPairs(u int) []int { return g.adjPairs[u] }

// Edges returns all directed edges sorted lexicographically.
func (g *Graph) Edges() [][2]int {
	es := make([][2]int, 0, len(g.edgeSet))
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			es = append(es, [2]int{u, v})
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	return es
}

// InducedSubgraph returns the subgraph induced by the given vertices together
// with the mapping from new vertex ids to the original ids. Vertex order is
// preserved; duplicate vertices are an error.
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, []int, error) {
	remap := make(map[int]int, len(vertices))
	orig := make([]int, len(vertices))
	for i, v := range vertices {
		if v < 0 || v >= g.n {
			return nil, nil, fmt.Errorf("graph: vertex %d out of range [0,%d)", v, g.n)
		}
		if _, dup := remap[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in induced subgraph", v)
		}
		remap[v] = i
		orig[i] = v
	}
	sub := New(len(vertices))
	for i, v := range vertices {
		for _, w := range g.out[v] {
			if j, ok := remap[w]; ok {
				sub.AddEdge(i, j)
			}
		}
	}
	return sub, orig, nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			c.AddEdge(u, v)
		}
	}
	return c
}

// String returns a short description like "Graph(n=4, edges=8, pairs=4)".
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, edges=%d, pairs=%d)", g.n, g.NumEdges(), g.NumPairs())
}
