package graph

import (
	"math/rand/v2"
)

// Generators for the synthetic social networks used throughout the
// experiments. All generators are deterministic given the *rand.Rand stream.
// Every generated edge is mutual (both directions), matching how the paper's
// datasets expose friendships, while τ utilities remain per-direction.

// Complete returns the complete graph on n vertices (mutual edges).
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddMutualEdge(u, v)
		}
	}
	return g
}

// Empty returns the edgeless graph on n vertices.
func Empty(n int) *Graph { return New(n) }

// ErdosRenyi returns a G(n, p) graph with mutual edges.
func ErdosRenyi(n int, p float64, r *rand.Rand) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				g.AddMutualEdge(u, v)
			}
		}
	}
	return g
}

// BarabasiAlbert returns a preferential-attachment graph: each new vertex
// attaches to mAttach existing vertices chosen proportionally to degree.
// Degree distributions are heavy-tailed, like the Timik VR network.
func BarabasiAlbert(n, mAttach int, r *rand.Rand) *Graph {
	return HolmeKim(n, mAttach, 0, r)
}

// HolmeKim returns a Barabási–Albert graph with triad closure: after each
// preferential attachment, with probability pTriad the next link closes a
// triangle through the last target instead. Larger pTriad raises the
// clustering coefficient, matching location-based networks like Yelp.
func HolmeKim(n, mAttach int, pTriad float64, r *rand.Rand) *Graph {
	if mAttach < 1 {
		mAttach = 1
	}
	if mAttach >= n {
		mAttach = n - 1
	}
	g := New(n)
	// repeated holds one entry per pair-endpoint so that uniform sampling from
	// it realizes degree-proportional (preferential) attachment.
	repeated := make([]int, 0, 2*n*mAttach)
	// Seed clique of mAttach+1 vertices.
	seed := mAttach + 1
	for u := 0; u < seed && u < n; u++ {
		for v := u + 1; v < seed && v < n; v++ {
			g.AddMutualEdge(u, v)
			repeated = append(repeated, u, v)
		}
	}
	for u := seed; u < n; u++ {
		seen := make(map[int]struct{}, mAttach)
		targets := make([]int, 0, mAttach) // insertion order kept: determinism
		last := -1
		for len(targets) < mAttach {
			var t int
			if last >= 0 && pTriad > 0 && r.Float64() < pTriad && len(g.Neighbors(last)) > 0 {
				// Triad closure: connect to a neighbour of the previous target.
				nb := g.Neighbors(last)
				t = nb[r.IntN(len(nb))]
			} else {
				t = repeated[r.IntN(len(repeated))]
			}
			if t == u {
				continue
			}
			if _, ok := seen[t]; ok {
				continue
			}
			seen[t] = struct{}{}
			targets = append(targets, t)
			last = t
		}
		for _, t := range targets {
			g.AddMutualEdge(u, t)
			repeated = append(repeated, u, t)
		}
	}
	return g
}

// WattsStrogatz returns a small-world ring lattice where each vertex connects
// to its kNear nearest neighbours on each side and each edge rewires with
// probability beta.
func WattsStrogatz(n, kNear int, beta float64, r *rand.Rand) *Graph {
	g := New(n)
	if n < 2 {
		return g
	}
	if kNear < 1 {
		kNear = 1
	}
	for u := 0; u < n; u++ {
		for d := 1; d <= kNear; d++ {
			v := (u + d) % n
			if beta > 0 && r.Float64() < beta {
				// Rewire to a uniform non-neighbour.
				for tries := 0; tries < 2*n; tries++ {
					w := r.IntN(n)
					if w != u && !g.Connected(u, w) {
						v = w
						break
					}
				}
			}
			g.AddMutualEdge(u, v)
		}
	}
	return g
}

// RandomWalkSample samples size distinct vertices by a random walk with
// restart (restart probability 0.15, following the sampling setting cited in
// the paper's small-dataset experiments) and returns the induced subgraph
// and the sampled original vertex ids. When the walk saturates (e.g. a small
// component), unvisited vertices are added uniformly at random.
func RandomWalkSample(g *Graph, size int, r *rand.Rand) (*Graph, []int) {
	n := g.NumVertices()
	if size >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		sub, _, _ := g.InducedSubgraph(all)
		return sub, all
	}
	const restart = 0.15
	start := r.IntN(n)
	cur := start
	visited := make(map[int]struct{}, size)
	order := make([]int, 0, size)
	add := func(v int) {
		if _, ok := visited[v]; !ok {
			visited[v] = struct{}{}
			order = append(order, v)
		}
	}
	add(start)
	for steps := 0; len(order) < size && steps < 200*size; steps++ {
		nb := g.Neighbors(cur)
		if len(nb) == 0 || r.Float64() < restart {
			cur = start
			continue
		}
		cur = nb[r.IntN(len(nb))]
		add(cur)
	}
	for len(order) < size {
		add(r.IntN(n))
	}
	sub, orig, _ := g.InducedSubgraph(order)
	return sub, orig
}

// EgoNetwork returns the induced subgraph of all vertices within the given
// number of hops of center (following pair adjacency), together with the
// original ids; center maps to new id 0.
func EgoNetwork(g *Graph, center, hops int) (*Graph, []int) {
	dist := map[int]int{center: 0}
	frontier := []int{center}
	order := []int{center}
	for h := 0; h < hops; h++ {
		var next []int
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				if _, ok := dist[v]; !ok {
					dist[v] = h + 1
					next = append(next, v)
					order = append(order, v)
				}
			}
		}
		frontier = next
	}
	sub, orig, _ := g.InducedSubgraph(order)
	return sub, orig
}
