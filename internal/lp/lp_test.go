package lp

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/svgic/svgic/internal/stats"
)

func solveOrDie(t *testing.T, p *Problem) Solution {
	t.Helper()
	sol, err := SolveSimplex(p)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestSimplexBasicLE(t *testing.T) {
	// max 3x + 2y st x+y ≤ 4, x ≤ 2 → x=2, y=2, obj=10.
	p := NewProblem(2)
	p.SetObj(0, 3)
	p.SetObj(1, 2)
	p.MustAddConstraint([]int{0, 1}, []float64{1, 1}, LE, 4)
	p.MustAddConstraint([]int{0}, []float64{1}, LE, 2)
	sol := solveOrDie(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-10) > 1e-9 {
		t.Fatalf("sol = %+v, want obj 10", sol)
	}
	if math.Abs(sol.X[0]-2) > 1e-9 || math.Abs(sol.X[1]-2) > 1e-9 {
		t.Errorf("x = %v, want (2,2)", sol.X)
	}
}

func TestSimplexEquality(t *testing.T) {
	// max x + y st x + 2y = 4, x ≤ 3 → x=3, y=0.5, obj=3.5.
	p := NewProblem(2)
	p.SetObj(0, 1)
	p.SetObj(1, 1)
	p.MustAddConstraint([]int{0, 1}, []float64{1, 2}, EQ, 4)
	p.MustAddConstraint([]int{0}, []float64{1}, LE, 3)
	sol := solveOrDie(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-3.5) > 1e-9 {
		t.Fatalf("sol = %+v, want obj 3.5", sol)
	}
}

func TestSimplexGE(t *testing.T) {
	// max -x st x ≥ 2 → x=2, obj=-2 (phase 1 must find feasibility).
	p := NewProblem(1)
	p.SetObj(0, -1)
	p.MustAddConstraint([]int{0}, []float64{1}, GE, 2)
	sol := solveOrDie(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective+2) > 1e-9 {
		t.Fatalf("sol = %+v, want obj -2", sol)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// max x st -x ≤ -1 (i.e. x ≥ 1), x ≤ 5 → obj 5.
	p := NewProblem(1)
	p.SetObj(0, 1)
	p.MustAddConstraint([]int{0}, []float64{-1}, LE, -1)
	p.MustAddConstraint([]int{0}, []float64{1}, LE, 5)
	sol := solveOrDie(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-5) > 1e-9 {
		t.Fatalf("sol = %+v, want 5", sol)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetObj(0, 1)
	p.MustAddConstraint([]int{0}, []float64{1}, LE, 1)
	p.MustAddConstraint([]int{0}, []float64{1}, GE, 2)
	sol := solveOrDie(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.SetObj(0, 1)
	sol := solveOrDie(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// A classic degenerate model; must terminate (anti-cycling fallback).
	p := NewProblem(3)
	p.SetObj(0, 10)
	p.SetObj(1, -57)
	p.SetObj(2, -9)
	p.MustAddConstraint([]int{0, 1, 2}, []float64{0.5, -5.5, -2.5}, LE, 0)
	p.MustAddConstraint([]int{0, 1, 2}, []float64{0.5, -1.5, -0.5}, LE, 0)
	p.MustAddConstraint([]int{0}, []float64{1}, LE, 1)
	sol := solveOrDie(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Objective < 1-1e-9 {
		t.Errorf("objective = %v, want ≥ 1", sol.Objective)
	}
}

func TestAddConstraintValidation(t *testing.T) {
	p := NewProblem(2)
	if err := p.AddConstraint([]int{0}, []float64{1, 2}, LE, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := p.AddConstraint([]int{5}, []float64{1}, LE, 1); err == nil {
		t.Error("out-of-range variable accepted")
	}
}

func TestProjectCappedSimplexProperties(t *testing.T) {
	err := quick.Check(func(raw []float64, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			v[i] = math.Mod(x, 10)
		}
		k := float64(int(kRaw)%len(v) + 1)
		if k > float64(len(v)) {
			k = float64(len(v))
		}
		out := ProjectCappedSimplex(v, k)
		var sum float64
		for _, x := range out {
			if x < -1e-9 || x > 1+1e-9 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-k) < 1e-6
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestProjectCappedSimplexFixedPoints(t *testing.T) {
	v := []float64{1, 0, 1, 0}
	out := ProjectCappedSimplex(append([]float64(nil), v...), 2)
	for i := range v {
		if math.Abs(out[i]-v[i]) > 1e-9 {
			t.Errorf("feasible point moved: %v -> %v", v, out)
			break
		}
	}
	// k out of range clamps to the boundary.
	z := ProjectCappedSimplex([]float64{0.5, 0.7}, 0)
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("k=0 projection = %v", z)
	}
	o := ProjectCappedSimplex([]float64{0.5, 0.7}, 5)
	if o[0] != 1 || o[1] != 1 {
		t.Errorf("k≥n projection = %v", o)
	}
}

func TestProjectMinimizesDistance(t *testing.T) {
	// The projection must be at least as close as random feasible points.
	r := stats.NewRand(11)
	for trial := 0; trial < 50; trial++ {
		n := 4 + r.IntN(4)
		k := 1 + r.IntN(n-1)
		v := make([]float64, n)
		for i := range v {
			v[i] = 3*r.Float64() - 1
		}
		proj := ProjectCappedSimplex(append([]float64(nil), v...), float64(k))
		dProj := dist2(v, proj)
		// Random feasible comparison point: project a random vector.
		w := make([]float64, n)
		for i := range w {
			w[i] = r.Float64()
		}
		feas := ProjectCappedSimplex(w, float64(k))
		if dist2(v, feas) < dProj-1e-9 {
			t.Fatalf("found a closer feasible point: %v vs projection %v of %v", feas, proj, v)
		}
	}
}

func dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// randomRelaxation builds a small random LP_SIMP instance.
func randomRelaxation(seed uint64, n, m, k, pairs int) *Relaxation {
	r := stats.NewRand(seed)
	rx := &Relaxation{NumUsers: n, NumItems: m, K: k}
	rx.Pref = make([][]float64, n)
	for u := range rx.Pref {
		rx.Pref[u] = make([]float64, m)
		for c := range rx.Pref[u] {
			rx.Pref[u][c] = r.Float64()
		}
	}
	seen := map[[2]int]bool{}
	for len(rx.Pairs) < pairs {
		a, b := r.IntN(n), r.IntN(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		rx.Pairs = append(rx.Pairs, [2]int{a, b})
		row := make([]float64, m)
		for c := range row {
			row[c] = 0.8 * r.Float64()
		}
		rx.PairW = append(rx.PairW, row)
	}
	return rx
}

func TestStructuredSolverNearExact(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		rx := randomRelaxation(seed, 4, 5, 2, 4)
		_, exact, err := rx.SolveExact()
		if err != nil {
			t.Fatalf("seed %d: exact: %v", seed, err)
		}
		X, obj := rx.Solve(RelaxOptions{Seed: seed, MaxPasses: 60, PolishIters: 150, Restarts: 2})
		if obj > exact+1e-6 {
			t.Errorf("seed %d: structured %.6f exceeds exact optimum %.6f", seed, obj, exact)
		}
		if obj < 0.95*exact {
			t.Errorf("seed %d: structured %.6f below 95%% of exact %.6f", seed, obj, exact)
		}
		// Feasibility of the returned point.
		for u, row := range X {
			var sum float64
			for _, x := range row {
				if x < -1e-9 || x > 1+1e-9 {
					t.Fatalf("seed %d: X[%d] out of box: %v", seed, u, row)
				}
				sum += x
			}
			if math.Abs(sum-float64(rx.K)) > 1e-6 {
				t.Fatalf("seed %d: user %d mass %.9f, want %d", seed, u, sum, rx.K)
			}
		}
		// Reported objective matches recomputation.
		if math.Abs(rx.Objective(X)-obj) > 1e-9 {
			t.Errorf("seed %d: reported objective %.9f != recomputed %.9f", seed, obj, rx.Objective(X))
		}
	}
}

func TestStructuredSolverIndifferentInstance(t *testing.T) {
	// Lemma 3's instance: all preferences zero, all pair weights equal.
	// Any point with x[u] identical across users is optimal; the solver must
	// reach objective = pairs · k · w.
	const n, m, k = 5, 6, 2
	rx := &Relaxation{NumUsers: n, NumItems: m, K: k}
	rx.Pref = make([][]float64, n)
	for u := range rx.Pref {
		rx.Pref[u] = make([]float64, m)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			rx.Pairs = append(rx.Pairs, [2]int{a, b})
			row := make([]float64, m)
			for c := range row {
				row[c] = 1
			}
			rx.PairW = append(rx.PairW, row)
		}
	}
	_, obj := rx.Solve(RelaxOptions{Seed: 3})
	want := float64(len(rx.Pairs) * k)
	if math.Abs(obj-want) > 1e-6 {
		t.Errorf("objective = %v, want %v", obj, want)
	}
}

func TestSolveSimplexIterLimit(t *testing.T) {
	p := NewProblem(2)
	p.SetObj(0, 1)
	p.SetObj(1, 1)
	p.MustAddConstraint([]int{0, 1}, []float64{1, 1}, LE, 1)
	if _, err := SolveSimplexIter(p, 1); err == nil {
		// A 1-iteration budget may or may not suffice; just ensure no panic
		// and that a generous budget works.
		t.Log("tiny budget happened to suffice")
	}
	sol, err := SolveSimplexIter(p, 1000)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("generous budget failed: %v %v", sol.Status, err)
	}
}

func TestUpperBoundSandwichesOptimum(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rx := randomRelaxation(seed, 5, 6, 2, 6)
		_, exact, err := rx.SolveExact()
		if err != nil {
			t.Fatal(err)
		}
		ub := rx.UpperBound()
		if ub < exact-1e-6 {
			t.Errorf("seed %d: upper bound %.6f below LP optimum %.6f", seed, ub, exact)
		}
		_, feasible := rx.Solve(RelaxOptions{Seed: seed})
		if feasible > ub+1e-6 {
			t.Errorf("seed %d: feasible objective %.6f exceeds upper bound %.6f", seed, feasible, ub)
		}
	}
}

func TestUpperBoundTightOnIndependentUsers(t *testing.T) {
	// Without pairs the bound is exactly the optimum: per-user top-K.
	rx := randomRelaxation(3, 4, 6, 2, 0)
	_, exact, err := rx.SolveExact()
	if err != nil {
		t.Fatal(err)
	}
	if ub := rx.UpperBound(); math.Abs(ub-exact) > 1e-6 {
		t.Errorf("pairless bound %.6f != optimum %.6f", ub, exact)
	}
}

func TestSmoothedSolverNearExact(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rx := randomRelaxation(seed, 4, 5, 2, 4)
		_, exact, err := rx.SolveExact()
		if err != nil {
			t.Fatal(err)
		}
		X, obj := rx.Solve(RelaxOptions{Seed: seed, Method: MethodSmoothed, MaxPasses: 40, PolishIters: 120})
		if obj > exact+1e-6 {
			t.Errorf("seed %d: smoothed %.6f exceeds exact %.6f", seed, obj, exact)
		}
		if obj < 0.93*exact {
			t.Errorf("seed %d: smoothed %.6f below 93%% of exact %.6f", seed, obj, exact)
		}
		for u, row := range X {
			var sum float64
			for _, x := range row {
				sum += x
			}
			if math.Abs(sum-float64(rx.K)) > 1e-6 {
				t.Fatalf("seed %d: user %d mass %.9f", seed, u, sum)
			}
		}
	}
}

func TestMethodsAgreeOnEasyInstance(t *testing.T) {
	// Pairless instance: both methods must hit the separable optimum.
	rx := randomRelaxation(9, 5, 6, 2, 0)
	_, exact, err := rx.SolveExact()
	if err != nil {
		t.Fatal(err)
	}
	_, bcd := rx.Solve(RelaxOptions{Seed: 1})
	_, sm := rx.Solve(RelaxOptions{Seed: 1, Method: MethodSmoothed})
	if math.Abs(bcd-exact) > 1e-6 {
		t.Errorf("block-coordinate %.6f != exact %.6f", bcd, exact)
	}
	if sm < exact-1e-3 {
		t.Errorf("smoothed %.6f below exact %.6f", sm, exact)
	}
	if MethodSmoothed.String() != "smoothed" || MethodBlockCoordinate.String() != "block-coordinate" {
		t.Error("Method.String misbehaves")
	}
}

// TestStructuredSolverWarmStart: a warm point seeds the ascent instead of
// the cold restarts — solving from the cold optimum itself must reproduce
// (at least) its objective; mis-dimensioned or out-of-range warm input is
// sanitized or ignored rather than breaking feasibility.
func TestStructuredSolverWarmStart(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		rx := randomRelaxation(seed, 5, 6, 2, 6)
		coldX, coldObj := rx.Solve(RelaxOptions{Seed: seed})

		warmX, warmObj := rx.Solve(RelaxOptions{Seed: seed + 99, Warm: coldX})
		if warmObj < coldObj-1e-9 {
			t.Fatalf("seed %d: warm solve from the cold optimum regressed: %v -> %v", seed, coldObj, warmObj)
		}
		for u, row := range warmX {
			var sum float64
			for _, x := range row {
				if x < -1e-12 || x > 1+1e-12 {
					t.Fatalf("seed %d: warm solution out of box: x[%d]=%v", seed, u, row)
				}
				sum += x
			}
			if math.Abs(sum-float64(rx.K)) > 1e-9 {
				t.Fatalf("seed %d: warm solution row %d sums to %v, want %d", seed, u, sum, rx.K)
			}
		}
		// The caller keeps ownership: the warm input must not be mutated.
		reObj := rx.Objective(coldX)
		if math.Abs(reObj-coldObj) > 1e-9 {
			t.Fatalf("seed %d: Solve mutated the caller's warm point: objective %v -> %v", seed, coldObj, reObj)
		}

		// Garbage warm inputs: wrong shape is ignored (cold path), values
		// outside [0,1] and NaN are clamped and projected back to feasibility.
		if _, obj := rx.Solve(RelaxOptions{Seed: seed, Warm: coldX[:len(coldX)-1]}); math.Abs(obj-coldObj) > 1e-9 {
			t.Fatalf("seed %d: mis-dimensioned warm input changed the cold result: %v vs %v", seed, obj, coldObj)
		}
		dirty := make([][]float64, rx.NumUsers)
		for u := range dirty {
			dirty[u] = make([]float64, rx.NumItems)
			for c := range dirty[u] {
				dirty[u][c] = 5
			}
			dirty[u][0] = math.NaN()
			dirty[u][1] = -3
		}
		dX, _ := rx.Solve(RelaxOptions{Seed: seed, Warm: dirty})
		for u, row := range dX {
			var sum float64
			for _, x := range row {
				if math.IsNaN(x) || x < -1e-12 || x > 1+1e-12 {
					t.Fatalf("seed %d: dirty warm input leaked into solution row %d: %v", seed, u, row)
				}
				sum += x
			}
			if math.Abs(sum-float64(rx.K)) > 1e-9 {
				t.Fatalf("seed %d: dirty warm solution row %d sums to %v, want %d", seed, u, sum, rx.K)
			}
		}
	}
}
