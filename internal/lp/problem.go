// Package lp implements the linear-programming substrate of the SVGIC
// library: a dense two-phase primal simplex for exact solutions of small
// models (the role CPLEX/Gurobi play in the paper), an exact projection onto
// the capped simplex, and a scalable structured solver for the condensed
// SVGIC relaxation LP_SIMP (paper §4.4, "Advanced LP Transformation").
package lp

import "fmt"

// Op is a linear-constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota // a·x ≤ b
	GE           // a·x ≥ b
	EQ           // a·x = b
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Constraint is one sparse row a·x (op) rhs.
type Constraint struct {
	Idx  []int
	Coef []float64
	Op   Op
	RHS  float64
}

// Problem is a linear program in the form
//
//	maximize   c·x
//	subject to a_i·x (op_i) b_i  for every constraint
//	           x ≥ 0
//
// Upper bounds are expressed as explicit ≤ rows by the model builders.
type Problem struct {
	NumVars   int
	Objective []float64
	Rows      []Constraint
}

// NewProblem returns an empty maximization problem over n variables.
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n, Objective: make([]float64, n)}
}

// SetObj sets the objective coefficient of variable j.
func (p *Problem) SetObj(j int, c float64) { p.Objective[j] = c }

// AddConstraint appends the sparse row Σ coef[i]·x[idx[i]] (op) rhs.
func (p *Problem) AddConstraint(idx []int, coef []float64, op Op, rhs float64) error {
	if len(idx) != len(coef) {
		return fmt.Errorf("lp: index/coefficient length mismatch (%d vs %d)", len(idx), len(coef))
	}
	for _, j := range idx {
		if j < 0 || j >= p.NumVars {
			return fmt.Errorf("lp: variable index %d out of range [0,%d)", j, p.NumVars)
		}
	}
	ci := make([]int, len(idx))
	cc := make([]float64, len(coef))
	copy(ci, idx)
	copy(cc, coef)
	p.Rows = append(p.Rows, Constraint{Idx: ci, Coef: cc, Op: op, RHS: rhs})
	return nil
}

// MustAddConstraint is AddConstraint that panics on malformed input; model
// builders use it with programmatically generated indices.
func (p *Problem) MustAddConstraint(idx []int, coef []float64, op Op, rhs float64) {
	if err := p.AddConstraint(idx, coef, op, rhs); err != nil {
		panic(err)
	}
}

// Status describes the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterationLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	}
	return "unknown"
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}
