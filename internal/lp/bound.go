package lp

import "sort"

// UpperBound returns a cheap valid upper bound on the LP_SIMP optimum:
// since y[e][c] ≤ (x[u][c] + x[v][c]) / 2 for every pair, the objective is
// dominated by the separable program
//
//	Σ_u max{ Σ_c (Pref[u][c] + ½·Σ_{e∋u} PairW[e][c])·x : x ∈ capped simplex }
//
// whose per-user optimum is the sum of the K largest combined coefficients.
// Together with the structured solver's feasible objective this sandwiches
// the true LP optimum, giving the β of Corollary 4.2 a computable certificate
// without running the exact simplex.
func (rx *Relaxation) UpperBound() float64 {
	rx.buildAdj()
	var total float64
	scores := make([]float64, rx.NumItems)
	for u := 0; u < rx.NumUsers; u++ {
		copy(scores, rx.Pref[u])
		for _, pr := range rx.adj[u] {
			we := rx.PairW[pr.pair]
			for c := 0; c < rx.NumItems; c++ {
				scores[c] += we[c] / 2
			}
		}
		total += topKSum(scores, rx.K)
	}
	return total
}

func topKSum(xs []float64, k int) float64 {
	if k >= len(xs) {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	var s float64
	for i := len(tmp) - k; i < len(tmp); i++ {
		s += tmp[i]
	}
	return s
}
