package lp

// ProjectCappedSimplex computes the Euclidean projection of v onto the
// capped simplex {x : 0 ≤ x_i ≤ 1, Σ x_i = k} in place, returning the result.
//
// The projection has the water-filling form x_i = clamp(v_i − θ, 0, 1) where
// θ is chosen so the coordinates sum to k; Σ clamp(v_i − θ) is continuous and
// non-increasing in θ, so θ is found by bisection to machine precision. The
// structured LP solver uses this in its supergradient polish phase.
//
// k must satisfy 0 ≤ k ≤ len(v); out of that range the nearest feasible
// boundary (all zeros / all ones) is returned.
func ProjectCappedSimplex(v []float64, k float64) []float64 {
	n := len(v)
	if n == 0 {
		return v
	}
	if k <= 0 {
		for i := range v {
			v[i] = 0
		}
		return v
	}
	if k >= float64(n) {
		for i := range v {
			v[i] = 1
		}
		return v
	}
	lo, hi := v[0]-1, v[0]
	for _, x := range v {
		if x-1 < lo {
			lo = x - 1
		}
		if x > hi {
			hi = x
		}
	}
	sum := func(theta float64) float64 {
		var s float64
		for _, x := range v {
			y := x - theta
			if y > 1 {
				y = 1
			} else if y < 0 {
				y = 0
			}
			s += y
		}
		return s
	}
	for iter := 0; iter < 100; iter++ {
		mid := (lo + hi) / 2
		if sum(mid) > k {
			lo = mid
		} else {
			hi = mid
		}
	}
	theta := (lo + hi) / 2
	for i, x := range v {
		y := x - theta
		if y > 1 {
			y = 1
		} else if y < 0 {
			y = 0
		}
		v[i] = y
	}
	// Distribute the residual round-off over interior coordinates so the sum
	// is k to high precision.
	var s float64
	for _, x := range v {
		s += x
	}
	resid := k - s
	if resid != 0 {
		for i := range v {
			if v[i] > 1e-12 && v[i] < 1-1e-12 {
				nv := v[i] + resid
				if nv >= 0 && nv <= 1 {
					v[i] = nv
					break
				}
			}
		}
	}
	return v
}
