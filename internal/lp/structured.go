package lp

import (
	"math"
	"sort"

	"github.com/svgic/svgic/internal/stats"
)

// Relaxation is the condensed SVGIC linear relaxation LP_SIMP of the paper
// (§4.4, Observation 2):
//
//	maximize   Σ_u Σ_c Pref[u][c]·x[u][c] + Σ_e Σ_c PairW[e][c]·y[e][c]
//	subject to Σ_c x[u][c] = K          for every user u
//	           0 ≤ x[u][c] ≤ 1
//	           y[e][c] ≤ min(x[u][c], x[v][c])
//
// Because PairW ≥ 0, the optimum always has y = min(x_u, x_v), so only the x
// block is represented explicitly. The per-(user,item,slot) utility factors of
// the full LP_SVGIC follow as x[u][c]/K (Observation 2).
//
// Pref and PairW already carry the λ weighting: Pref[u][c] = (1−λ)·p(u,c) and
// PairW[e][c] = λ·(τ(u,v,c)+τ(v,u,c)) for the social pair e = {u,v}.
type Relaxation struct {
	NumUsers int
	NumItems int
	K        int
	Pref     [][]float64 // [user][item], ≥ 0
	Pairs    [][2]int    // social pairs, u < v
	PairW    [][]float64 // [pair][item], ≥ 0

	adj [][]pairRef // built lazily: per user, incident pairs
}

type pairRef struct {
	pair  int
	other int
}

func (rx *Relaxation) buildAdj() {
	if rx.adj != nil {
		return
	}
	rx.adj = make([][]pairRef, rx.NumUsers)
	for i, p := range rx.Pairs {
		rx.adj[p[0]] = append(rx.adj[p[0]], pairRef{pair: i, other: p[1]})
		rx.adj[p[1]] = append(rx.adj[p[1]], pairRef{pair: i, other: p[0]})
	}
}

// Objective returns the LP_SIMP objective of the (feasible) point X.
func (rx *Relaxation) Objective(X [][]float64) float64 {
	var obj float64
	for u := 0; u < rx.NumUsers; u++ {
		pu := rx.Pref[u]
		xu := X[u]
		for c := 0; c < rx.NumItems; c++ {
			obj += pu[c] * xu[c]
		}
	}
	for e, p := range rx.Pairs {
		wu, wv := X[p[0]], X[p[1]]
		we := rx.PairW[e]
		for c := 0; c < rx.NumItems; c++ {
			obj += we[c] * math.Min(wu[c], wv[c])
		}
	}
	return obj
}

// RelaxOptions tunes the structured solver.
type RelaxOptions struct {
	MaxPasses   int     // block-coordinate sweeps (default 40)
	PolishIters int     // projected-supergradient iterations (default 60; -1 disables)
	Tol         float64 // relative sweep-improvement stopping tolerance (default 1e-7)
	Seed        uint64  // RNG seed for sweep order and restarts
	Restarts    int     // extra random restarts (default 1 extra start)
	Method      Method  // MethodBlockCoordinate (default) or MethodSmoothed

	// Warm, when non-nil and dimensioned [NumUsers][NumItems], seeds the
	// block-coordinate ascent from this point (projected onto the capped
	// simplex) INSTEAD of the cold random restarts — the warm-start path for
	// drift repair, where the incumbent configuration's indicator point is
	// already near a good optimum and cold restarts would re-pay full
	// convergence cost. Ignored by MethodSmoothed and by mis-dimensioned
	// input. The caller keeps ownership; Solve copies before mutating.
	Warm [][]float64
}

func (o *RelaxOptions) fill() {
	if o.MaxPasses <= 0 {
		o.MaxPasses = 40
	}
	if o.PolishIters < 0 {
		o.PolishIters = 0
	} else if o.PolishIters == 0 {
		o.PolishIters = 60
	}
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
	if o.Restarts <= 0 {
		o.Restarts = 1
	}
}

// Solve maximizes the relaxation with exact per-user block-coordinate ascent
// (each block is a separable concave resource-allocation problem solved by a
// greedy over slope segments) followed by a projected-supergradient polish.
// It returns the best feasible point found and its objective — a valid
// β-approximate LP solution in the sense of Corollary 4.2 of the paper.
func (rx *Relaxation) Solve(opts RelaxOptions) ([][]float64, float64) {
	opts.fill()
	rx.buildAdj()
	if opts.Method == MethodSmoothed {
		X, obj := rx.solveSmoothed(opts)
		if opts.PolishIters > 0 {
			if px, pobj := rx.polish(cloneMatrix(X), opts.PolishIters); pobj > obj {
				return px, pobj
			}
		}
		return X, obj
	}
	r := stats.NewRand(opts.Seed + 0x51a7)

	bestObj := math.Inf(-1)
	var bestX [][]float64
	if warm := rx.warmPoint(opts.Warm); warm != nil {
		// Warm start: ascend from the supplied point only. A near-optimal
		// seed converges in a couple of sweeps; running the cold restarts
		// too would throw the saving away.
		rx.blockCoordinateAscent(warm, opts, r)
		bestX = warm
		bestObj = rx.Objective(warm)
	} else {
		for restart := 0; restart < opts.Restarts+1; restart++ {
			X := rx.initialPoint(restart)
			rx.blockCoordinateAscent(X, opts, r)
			obj := rx.Objective(X)
			if obj > bestObj {
				bestObj = obj
				bestX = X
			}
		}
	}
	if opts.PolishIters > 0 {
		px, pobj := rx.polish(cloneMatrix(bestX), opts.PolishIters)
		if pobj > bestObj {
			bestObj, bestX = pobj, px
		}
	}
	return bestX, bestObj
}

// warmPoint validates and feasibility-projects a caller-supplied warm-start
// point: nil unless warm is exactly [NumUsers][NumItems]; otherwise a clamped
// copy with every row projected onto the capped simplex Σ_c x = K, 0 ≤ x ≤ 1.
func (rx *Relaxation) warmPoint(warm [][]float64) [][]float64 {
	if len(warm) != rx.NumUsers {
		return nil
	}
	for _, row := range warm {
		if len(row) != rx.NumItems {
			return nil
		}
	}
	X := cloneMatrix(warm)
	for _, row := range X {
		for c, x := range row {
			if math.IsNaN(x) || x < 0 {
				row[c] = 0
			} else if x > 1 {
				row[c] = 1
			}
		}
		ProjectCappedSimplex(row, float64(rx.K))
	}
	return X
}

// initialPoint builds a feasible start: restart 0 spreads the budget
// uniformly; later restarts concentrate it on the top-K preferred items with
// a uniform floor, which helps escape the symmetric stall points of the
// uniform start.
func (rx *Relaxation) initialPoint(restart int) [][]float64 {
	n, m, k := rx.NumUsers, rx.NumItems, rx.K
	X := make([][]float64, n)
	if restart == 0 || m == k {
		for u := range X {
			row := make([]float64, m)
			v := float64(k) / float64(m)
			for c := range row {
				row[c] = v
			}
			X[u] = row
		}
		return X
	}
	for u := range X {
		row := make([]float64, m)
		// Score items by preference plus total incident social weight so the
		// start already reflects shared interests.
		score := make([]float64, m)
		copy(score, rx.Pref[u])
		for _, pr := range rx.adj[u] {
			we := rx.PairW[pr.pair]
			for c := 0; c < m; c++ {
				score[c] += 0.5 * we[c]
			}
		}
		idx := make([]int, m)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return score[idx[a]] > score[idx[b]] })
		// 0.8 mass on each of the top-K items, the rest spread uniformly.
		const top = 0.8
		for i := 0; i < k; i++ {
			row[idx[i]] = top
		}
		rest := (float64(k) - top*float64(k)) / float64(m)
		for c := range row {
			row[c] += rest
		}
		ProjectCappedSimplex(row, float64(k))
		X[u] = row
	}
	return X
}

type segment struct {
	slope float64
	width float64
	coord int
	ord   int
}

func (rx *Relaxation) blockCoordinateAscent(X [][]float64, opts RelaxOptions, r interface{ IntN(int) int }) {
	n := rx.NumUsers
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	prev := rx.Objective(X)
	for pass := 0; pass < opts.MaxPasses; pass++ {
		for i := n - 1; i > 0; i-- {
			j := r.IntN(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, u := range order {
			rx.solveBlock(u, X)
		}
		cur := rx.Objective(X)
		if cur-prev <= opts.Tol*(1+math.Abs(cur)) {
			break
		}
		prev = cur
	}
}

// solveBlock exactly maximizes the relaxation over user u's row with all
// other rows fixed: maximize Σ_c f_c(x_c) over the capped simplex, where
// each f_c is a piecewise-linear concave function with breakpoints at the
// neighbours' current values. Solved greedily over slope segments.
func (rx *Relaxation) solveBlock(u int, X [][]float64) {
	m, k := rx.NumItems, rx.K
	var segs []segment
	type thr struct {
		t float64
		w float64
	}
	thrBuf := make([]thr, 0, 8)
	for c := 0; c < m; c++ {
		base := rx.Pref[u][c]
		thrBuf = thrBuf[:0]
		for _, pr := range rx.adj[u] {
			w := rx.PairW[pr.pair][c]
			if w <= 0 {
				continue
			}
			t := X[pr.other][c]
			if t > 1 {
				t = 1
			} else if t < 0 {
				t = 0
			}
			thrBuf = append(thrBuf, thr{t: t, w: w})
		}
		sort.Slice(thrBuf, func(a, b int) bool { return thrBuf[a].t < thrBuf[b].t })
		// Suffix sums give the slope of each segment: below threshold t_j the
		// pair term min(x, t_j) still grows with x and contributes w_j.
		suffix := 0.0
		for _, tw := range thrBuf {
			suffix += tw.w
		}
		lo := 0.0
		ord := 0
		for _, tw := range thrBuf {
			if tw.t > lo {
				segs = append(segs, segment{slope: base + suffix, width: tw.t - lo, coord: c, ord: ord})
				ord++
				lo = tw.t
			}
			suffix -= tw.w
		}
		if lo < 1 {
			segs = append(segs, segment{slope: base, width: 1 - lo, coord: c, ord: ord})
		}
	}
	// Greedy fill: take segments by descending slope; ties resolved by
	// (coord, ord) so lower segments of a coordinate always fill first.
	sort.Slice(segs, func(a, b int) bool {
		if segs[a].slope != segs[b].slope {
			return segs[a].slope > segs[b].slope
		}
		if segs[a].coord != segs[b].coord {
			return segs[a].coord < segs[b].coord
		}
		return segs[a].ord < segs[b].ord
	})
	row := X[u]
	for c := range row {
		row[c] = 0
	}
	budget := float64(k)
	for _, s := range segs {
		if budget <= 0 {
			break
		}
		take := s.width
		if take > budget {
			take = budget
		}
		row[s.coord] += take
		budget -= take
	}
	// Guard against drift: the greedy fills exactly k because total width is
	// m ≥ k, but accumulated rounding may leave an epsilon.
	if budget > 1e-9 {
		for c := range row {
			if row[c] < 1 {
				add := 1 - row[c]
				if add > budget {
					add = budget
				}
				row[c] += add
				budget -= add
				if budget <= 1e-12 {
					break
				}
			}
		}
	}
}

// polish runs projected supergradient ascent from X, returning the best
// iterate seen and its objective.
func (rx *Relaxation) polish(X [][]float64, iters int) ([][]float64, float64) {
	n, m, k := rx.NumUsers, rx.NumItems, rx.K
	best := cloneMatrix(X)
	bestObj := rx.Objective(X)
	grad := make([][]float64, n)
	for u := range grad {
		grad[u] = make([]float64, m)
	}
	// Step scale: a small fraction of the budget per coordinate magnitude.
	base := 0.25
	for t := 1; t <= iters; t++ {
		for u := range grad {
			copy(grad[u], rx.Pref[u])
		}
		for e, p := range rx.Pairs {
			xu, xv := X[p[0]], X[p[1]]
			gu, gv := grad[p[0]], grad[p[1]]
			we := rx.PairW[e]
			for c := 0; c < m; c++ {
				w := we[c]
				if w == 0 {
					continue
				}
				switch {
				case xu[c] < xv[c]:
					gu[c] += w
				case xu[c] > xv[c]:
					gv[c] += w
				default:
					gu[c] += w / 2
					gv[c] += w / 2
				}
			}
		}
		eta := base / math.Sqrt(float64(t))
		for u := 0; u < n; u++ {
			xu, gu := X[u], grad[u]
			var norm float64
			for c := 0; c < m; c++ {
				norm += gu[c] * gu[c]
			}
			if norm == 0 {
				continue
			}
			scale := eta / math.Sqrt(norm)
			for c := 0; c < m; c++ {
				xu[c] += scale * gu[c]
			}
			ProjectCappedSimplex(xu, float64(k))
		}
		if obj := rx.Objective(X); obj > bestObj {
			bestObj = obj
			for u := range X {
				copy(best[u], X[u])
			}
		}
	}
	return best, bestObj
}

// BuildSimplexModel materializes LP_SIMP as an explicit Problem for the dense
// simplex: variables x[u][c] then y[e][c]. Intended for small models (tests
// and the exact IP pipeline); variable count is NumUsers·NumItems +
// len(Pairs)·NumItems.
func (rx *Relaxation) BuildSimplexModel() *Problem {
	n, m := rx.NumUsers, rx.NumItems
	nx := n * m
	ny := len(rx.Pairs) * m
	p := NewProblem(nx + ny)
	xv := func(u, c int) int { return u*m + c }
	yv := func(e, c int) int { return nx + e*m + c }
	for u := 0; u < n; u++ {
		for c := 0; c < m; c++ {
			p.SetObj(xv(u, c), rx.Pref[u][c])
		}
	}
	for e := range rx.Pairs {
		for c := 0; c < m; c++ {
			p.SetObj(yv(e, c), rx.PairW[e][c])
		}
	}
	for u := 0; u < n; u++ {
		idx := make([]int, m)
		coef := make([]float64, m)
		for c := 0; c < m; c++ {
			idx[c] = xv(u, c)
			coef[c] = 1
		}
		p.MustAddConstraint(idx, coef, EQ, float64(rx.K))
		for c := 0; c < m; c++ {
			p.MustAddConstraint([]int{xv(u, c)}, []float64{1}, LE, 1)
		}
	}
	for e, pr := range rx.Pairs {
		for c := 0; c < m; c++ {
			p.MustAddConstraint([]int{yv(e, c), xv(pr[0], c)}, []float64{1, -1}, LE, 0)
			p.MustAddConstraint([]int{yv(e, c), xv(pr[1], c)}, []float64{1, -1}, LE, 0)
		}
	}
	return p
}

// SolveExact solves LP_SIMP with the dense simplex and returns the x block
// reshaped to [user][item] plus the optimal objective. Use only for small
// models; the structured Solve is the scalable path.
func (rx *Relaxation) SolveExact() ([][]float64, float64, error) {
	sol, err := SolveSimplex(rx.BuildSimplexModel())
	if err != nil {
		return nil, 0, err
	}
	n, m := rx.NumUsers, rx.NumItems
	X := make([][]float64, n)
	for u := 0; u < n; u++ {
		X[u] = make([]float64, m)
		copy(X[u], sol.X[u*m:(u+1)*m])
	}
	return X, sol.Objective, nil
}

func cloneMatrix(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i := range x {
		out[i] = make([]float64, len(x[i]))
		copy(out[i], x[i])
	}
	return out
}
