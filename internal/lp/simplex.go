package lp

import (
	"fmt"
	"math"
)

// Dense two-phase primal simplex. This plays the role of the commercial LP
// solver in the paper's pipeline for exact solves of small models (the IP
// baseline's node relaxations and the cross-validation of the structured
// solver). It uses Bland's rule, which guarantees termination at the cost of
// speed; intended model sizes are up to a few thousand tableau cells.

const simplexEps = 1e-9

type simplex struct {
	t        [][]float64 // tableau: rows = constraints, last col = rhs
	basis    []int       // basic variable per row
	nStruct  int         // structural variables
	nTotal   int         // structural + slack/surplus + artificial
	artStart int         // first artificial column
	maxIter  int
}

// SolveSimplex solves p exactly with the two-phase simplex method.
func SolveSimplex(p *Problem) (Solution, error) {
	return SolveSimplexIter(p, 0)
}

// SolveSimplexIter is SolveSimplex with an iteration cap per phase
// (0 means an automatic cap based on model size).
func SolveSimplexIter(p *Problem, maxIter int) (Solution, error) {
	m := len(p.Rows)
	n := p.NumVars
	if maxIter <= 0 {
		maxIter = 200 * (m + n + 10)
	}

	// Count auxiliary columns. Every row gets either a slack (LE), a surplus
	// plus artificial (GE) or an artificial (EQ), after normalizing rhs ≥ 0.
	type rowKind int
	const (
		kindLE rowKind = iota
		kindGE
		kindEQ
	)
	kinds := make([]rowKind, m)
	numSlack, numArt := 0, 0
	for i, r := range p.Rows {
		op, rhs := r.Op, r.RHS
		if rhs < 0 {
			// Flip the row so rhs ≥ 0.
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		switch op {
		case LE:
			kinds[i] = kindLE
			numSlack++
		case GE:
			kinds[i] = kindGE
			numSlack++
			numArt++
		case EQ:
			kinds[i] = kindEQ
			numArt++
		}
	}
	s := &simplex{
		nStruct:  n,
		nTotal:   n + numSlack + numArt,
		artStart: n + numSlack,
		maxIter:  maxIter,
	}
	s.t = make([][]float64, m)
	s.basis = make([]int, m)
	slackCol := n
	artCol := s.artStart
	for i, r := range p.Rows {
		row := make([]float64, s.nTotal+1)
		sign := 1.0
		if r.RHS < 0 {
			sign = -1.0
		}
		for j, idx := range r.Idx {
			row[idx] += sign * r.Coef[j]
		}
		row[s.nTotal] = sign * r.RHS
		switch kinds[i] {
		case kindLE:
			row[slackCol] = 1
			s.basis[i] = slackCol
			slackCol++
		case kindGE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			s.basis[i] = artCol
			artCol++
		case kindEQ:
			row[artCol] = 1
			s.basis[i] = artCol
			artCol++
		}
		s.t[i] = row
	}

	// Phase 1: maximize -Σ artificials.
	if numArt > 0 {
		obj := make([]float64, s.nTotal)
		for j := s.artStart; j < s.nTotal; j++ {
			obj[j] = -1
		}
		val, ok := s.run(obj, s.nTotal)
		if !ok {
			return Solution{Status: IterationLimit}, fmt.Errorf("lp: phase-1 iteration limit")
		}
		if val < -1e-7 {
			return Solution{Status: Infeasible}, nil
		}
		// Pivot any artificial still in the basis out (degenerate rows).
		for i, b := range s.basis {
			if b < s.artStart {
				continue
			}
			pivoted := false
			for j := 0; j < s.artStart; j++ {
				if math.Abs(s.t[i][j]) > simplexEps {
					s.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: zero it so it can never pivot again.
				for j := range s.t[i] {
					s.t[i][j] = 0
				}
			}
		}
	}

	// Phase 2: original objective over structural + slack columns only.
	obj := make([]float64, s.nTotal)
	copy(obj, p.Objective)
	val, ok := s.run(obj, s.artStart)
	if !ok {
		return Solution{Status: IterationLimit}, fmt.Errorf("lp: phase-2 iteration limit")
	}
	if math.IsInf(val, 1) {
		return Solution{Status: Unbounded}, nil
	}
	x := make([]float64, n)
	for i, b := range s.basis {
		if b < n {
			x[b] = s.t[i][s.nTotal]
		}
	}
	var objective float64
	for j := 0; j < n; j++ {
		objective += p.Objective[j] * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: objective}, nil
}

// run maximizes obj over the current tableau restricted to columns < colLimit,
// returning the objective value (or +Inf if unbounded) and whether it finished
// within the iteration budget.
//
// An explicit reduced-cost row is carried through the pivots, so pricing is
// O(cols) per iteration. Pricing is Dantzig's rule (most positive reduced
// cost); after a long run of degenerate pivots it falls back to Bland's rule,
// which guarantees termination.
func (s *simplex) run(obj []float64, colLimit int) (float64, bool) {
	m := len(s.t)
	rhs := s.nTotal
	// rc[j] = c_j − Σ_i c_{basis[i]}·t[i][j]; rc[rhs] tracks −objective.
	rc := make([]float64, s.nTotal+1)
	copy(rc, obj)
	for i := 0; i < m; i++ {
		cb := obj[s.basis[i]]
		if cb == 0 {
			continue
		}
		row := s.t[i]
		for j := range rc {
			rc[j] -= cb * row[j]
		}
	}
	objective := func() float64 { return -rc[rhs] }

	stall := 0
	lastObj := objective()
	blandLimit := 4 * (m + s.nTotal + 10)
	for iter := 0; iter < s.maxIter; iter++ {
		bland := stall > blandLimit
		enter := -1
		best := simplexEps
		for j := 0; j < colLimit; j++ {
			if rc[j] > best {
				enter = j
				if bland {
					break // Bland: first improving column
				}
				best = rc[j]
			}
		}
		if enter < 0 {
			return objective(), true
		}
		// Ratio test (smallest basis index among ties, needed for Bland).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := s.t[i][enter]
			if a > simplexEps {
				ratio := s.t[i][rhs] / a
				if ratio < bestRatio-simplexEps ||
					(ratio < bestRatio+simplexEps && (leave < 0 || s.basis[i] < s.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return math.Inf(1), true // unbounded
		}
		s.pivot(leave, enter)
		// Update the reduced-cost row with the (normalized) pivot row.
		f := rc[enter]
		if f != 0 {
			prow := s.t[leave]
			for j := range rc {
				rc[j] -= f * prow[j]
			}
			rc[enter] = 0
		}
		if cur := objective(); cur > lastObj+simplexEps {
			lastObj = cur
			stall = 0
		} else {
			stall++
		}
	}
	return 0, false
}

func (s *simplex) pivot(row, col int) {
	t := s.t
	p := t[row][col]
	inv := 1 / p
	for j := range t[row] {
		t[row][j] *= inv
	}
	t[row][col] = 1 // kill round-off
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		rowv := t[row]
		for j := range t[i] {
			t[i][j] -= f * rowv[j]
		}
		t[i][col] = 0
	}
	s.basis[row] = col
}
