package lp

import "math"

// Smoothed-objective solver: an alternative first-order method for the
// relaxation. The non-smooth pair terms min(x_u, x_v) are replaced by the
// softmin −μ·log(e^{−x_u/μ} + e^{−x_v/μ}), a concave lower bound within
// μ·log 2 of the true min, and projected gradient ascent runs over an
// annealed temperature schedule. It trades the block solver's exact
// per-user steps for fully smooth global steps; the two methods
// cross-validate each other in the test suite and either can be selected
// via RelaxOptions.Method.

// Method selects the structured solver's algorithm.
type Method int

const (
	// MethodBlockCoordinate (default): exact per-user block maximization
	// sweeps plus a supergradient polish.
	MethodBlockCoordinate Method = iota
	// MethodSmoothed: projected gradient ascent on the softmin-smoothed
	// objective with temperature annealing.
	MethodSmoothed
)

func (m Method) String() string {
	if m == MethodSmoothed {
		return "smoothed"
	}
	return "block-coordinate"
}

// solveSmoothed runs the annealed smoothed ascent from the uniform start and
// returns the best feasible point by true objective.
func (rx *Relaxation) solveSmoothed(opts RelaxOptions) ([][]float64, float64) {
	n, m, k := rx.NumUsers, rx.NumItems, rx.K
	X := make([][]float64, n)
	for u := range X {
		row := make([]float64, m)
		v := float64(k) / float64(m)
		for c := range row {
			row[c] = v
		}
		X[u] = row
	}
	best := cloneMatrix(X)
	bestObj := rx.Objective(X)

	grad := make([][]float64, n)
	for u := range grad {
		grad[u] = make([]float64, m)
	}
	stages := 5
	itersPerStage := opts.MaxPasses * 4
	if itersPerStage < 20 {
		itersPerStage = 20
	}
	mu := 0.5
	for stage := 0; stage < stages; stage++ {
		for t := 1; t <= itersPerStage; t++ {
			for u := range grad {
				copy(grad[u], rx.Pref[u])
			}
			for e, p := range rx.Pairs {
				xu, xv := X[p[0]], X[p[1]]
				gu, gv := grad[p[0]], grad[p[1]]
				we := rx.PairW[e]
				for c := 0; c < m; c++ {
					w := we[c]
					if w == 0 {
						continue
					}
					// Softmin gradient: logistic weights on the smaller side.
					d := (xu[c] - xv[c]) / mu
					su := 1 / (1 + math.Exp(d)) // weight on x_u
					gu[c] += w * su
					gv[c] += w * (1 - su)
				}
			}
			eta := 0.3 / math.Sqrt(float64(stage*itersPerStage+t))
			for u := 0; u < n; u++ {
				xu, gu := X[u], grad[u]
				var norm float64
				for c := 0; c < m; c++ {
					norm += gu[c] * gu[c]
				}
				if norm == 0 {
					continue
				}
				scale := eta / math.Sqrt(norm)
				for c := 0; c < m; c++ {
					xu[c] += scale * gu[c]
				}
				ProjectCappedSimplex(xu, float64(k))
			}
			if obj := rx.Objective(X); obj > bestObj {
				bestObj = obj
				for u := range X {
					copy(best[u], X[u])
				}
			}
		}
		mu /= 2.5
	}
	return best, bestObj
}
