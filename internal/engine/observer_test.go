package engine

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestSolveObserver pins the telemetry contract: the hook fires once per
// completed solve with the solver's display name, and never for cache hits.
func TestSolveObserver(t *testing.T) {
	var mu sync.Mutex
	var algos []string
	e := New(Options{Workers: 2, CacheSize: 8, SolveObserver: func(algo string, wall time.Duration) {
		if wall < 0 {
			t.Errorf("observed negative wall time %v", wall)
		}
		mu.Lock()
		algos = append(algos, algo)
		mu.Unlock()
	}})
	defer e.Close()
	ctx := context.Background()
	in := multiComponentInstance(9, 2, 5, 12, 2, 0.5)

	if _, err := e.Solve(ctx, in); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(algos) != 1 || algos[0] != "AVG-D" {
		t.Fatalf("observed %v after first solve, want [AVG-D]", algos)
	}
	mu.Unlock()

	// Cache hit: no observation.
	if _, err := e.Solve(ctx, in); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(algos) != 1 {
		t.Fatalf("observed %v after cache hit, want just the first solve", algos)
	}
}
