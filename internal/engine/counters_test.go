package engine

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/svgic/svgic/internal/core"
)

// errFlaky is the deterministic failure injected by flakySolver.
var errFlaky = errors.New("flaky solver: injected failure")

// flakySolver fails every instance whose item count equals failItems and
// delegates the rest to AVG-D — a deterministic way to mix solver errors
// into a concurrent workload.
type flakySolver struct {
	failItems int
}

func (f flakySolver) Name() string { return "flaky" }

func (f flakySolver) Solve(ctx context.Context, in *core.Instance) (*core.Solution, error) {
	if in.NumItems == f.failItems {
		return nil, errFlaky
	}
	return (&core.AVGDSolver{}).Solve(ctx, in)
}

// DecomposeSafe keeps the stress mix exercising the decomposition path, as
// the pre-registry engine did for its per-worker custom solvers.
func (f flakySolver) DecomposeSafe() bool { return true }

// assertCounterIdentity checks the Stats contract: every counted Solve call
// lands in exactly one of the four terminal buckets.
func assertCounterIdentity(t *testing.T, st Stats) {
	t.Helper()
	if got, want := st.Solves, st.CacheHits+st.Solved+st.Canceled+st.Errors; got != want {
		t.Errorf("counter identity broken: Solves=%d != CacheHits=%d + Solved=%d + Canceled=%d + Errors=%d (=%d)",
			got, st.CacheHits, st.Solved, st.Canceled, st.Errors, want)
	}
	// The identity holds per algorithm too, and the per-algorithm buckets sum
	// to the global ones.
	var sum AlgoStats
	for name, a := range st.PerAlgorithm {
		if got, want := a.Solves, a.CacheHits+a.Solved+a.Canceled+a.Errors; got != want {
			t.Errorf("per-algo counter identity broken for %s: %+v", name, a)
		}
		sum.Solves += a.Solves
		sum.CacheHits += a.CacheHits
		sum.Solved += a.Solved
		sum.Canceled += a.Canceled
		sum.Errors += a.Errors
	}
	if sum.Solves != st.Solves || sum.CacheHits != st.CacheHits || sum.Solved != st.Solved ||
		sum.Canceled != st.Canceled || sum.Errors != st.Errors {
		t.Errorf("per-algorithm buckets (%+v) do not sum to the global counters (%+v)", sum, st)
	}
}

// TestEngineCounterIdentityStress is the ISSUE's acceptance property: under
// a concurrent mix of cache hits, fresh solves, solver errors, canceled
// contexts and invalid instances, Solves == CacheHits + Solved + Canceled +
// Errors holds — an errored solve used to vanish from Solves entirely while
// its cache miss was already counted, so Solves drifted below the sum and
// misses double-counted on retry. Run with -race.
func TestEngineCounterIdentityStress(t *testing.T) {
	const failItems = 9 // flakySolver poison marker; valid instances use m=10/12
	e := New(Options{
		Workers:   4,
		CacheSize: 8,
		NewSolver: func() core.Solver { return flakySolver{failItems: failItems} },
	})
	defer e.Close()
	ctx := context.Background()
	canceledCtx, cancel := context.WithCancel(context.Background())
	cancel()

	const (
		goroutines = 8
		iters      = 12
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0: // repeatable valid instance: first solve fills the cache, rest hit
					in := multiComponentInstance(uint64(1+(g+i)%3), 2, 4, 10, 2, 0.5)
					if _, err := e.Solve(ctx, in); err != nil {
						t.Errorf("valid solve failed: %v", err)
					}
				case 1: // distinct valid instance: always a fresh solve
					in := multiComponentInstance(uint64(1000+g*iters+i), 2, 4, 12, 2, 0.5)
					if _, err := e.Solve(ctx, in); err != nil {
						t.Errorf("distinct solve failed: %v", err)
					}
				case 2: // solver error: must land in Errors, never in the cache
					in := multiComponentInstance(uint64(500+g), 2, 4, failItems, 2, 0.5)
					if _, err := e.Solve(ctx, in); !errors.Is(err, errFlaky) {
						t.Errorf("flaky solve: err = %v, want errFlaky", err)
					}
				case 3: // dead-on-arrival context: must land in Canceled
					in := multiComponentInstance(uint64(1+(g+i)%3), 2, 4, 10, 2, 0.5)
					if _, err := e.Solve(canceledCtx, in); !errors.Is(err, context.Canceled) {
						t.Errorf("canceled solve: err = %v, want context.Canceled", err)
					}
					// Invalid instances are rejected before admission and
					// must not move any counter.
					bad := multiComponentInstance(uint64(g), 1, 3, 2, 3, 0.5) // k > m
					if _, err := e.Solve(ctx, bad); err == nil {
						t.Error("invalid instance accepted")
					}
				}
			}
		}()
	}
	wg.Wait()

	st := e.Stats()
	assertCounterIdentity(t, st)
	total := uint64(goroutines * iters)
	if st.Solves != total {
		t.Errorf("Solves = %d, want %d (one per admitted call)", st.Solves, total)
	}
	if st.CacheHits == 0 || st.Solved == 0 || st.Canceled == 0 || st.Errors == 0 {
		t.Errorf("stress mix did not exercise every bucket: %+v", st)
	}
	// Errored solves never fill the cache, so retries miss again; DOA cancels
	// never reach the cache. Hence misses split exactly into solved + errored.
	if st.CacheMisses != st.Solved+st.Errors {
		t.Errorf("CacheMisses = %d, want Solved+Errors = %d", st.CacheMisses, st.Solved+st.Errors)
	}
	wantCanceled := uint64(goroutines * iters / 4)
	if st.Canceled != wantCanceled {
		t.Errorf("Canceled = %d, want %d", st.Canceled, wantCanceled)
	}
	wantErrors := uint64(goroutines * iters / 4)
	if st.Errors != wantErrors {
		t.Errorf("Errors = %d, want %d", st.Errors, wantErrors)
	}
}

// TestEngineErrorCountedOnceWithCacheDisabled: the identity holds with the
// cache off too (no miss counter in play at all).
func TestEngineErrorCountedOnceWithCacheDisabled(t *testing.T) {
	e := New(Options{
		Workers:   2,
		CacheSize: -1,
		NewSolver: func() core.Solver { return flakySolver{failItems: 9} },
	})
	defer e.Close()
	ctx := context.Background()
	if _, err := e.Solve(ctx, multiComponentInstance(1, 2, 4, 9, 2, 0.5)); !errors.Is(err, errFlaky) {
		t.Fatalf("err = %v, want errFlaky", err)
	}
	if _, err := e.Solve(ctx, multiComponentInstance(2, 2, 4, 12, 2, 0.5)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	assertCounterIdentity(t, st)
	if st.Solves != 2 || st.Errors != 1 || st.Solved != 1 {
		t.Errorf("stats = %+v, want Solves=2 Errors=1 Solved=1", st)
	}
}
