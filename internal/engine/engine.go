// Package engine provides the concurrent batch-solving layer over the SVGIC
// solvers: a fixed worker pool that splits every incoming instance into the
// connected components of its social network, solves the components in
// parallel with per-worker solver instances, merges the per-component
// configurations back (objective-preserving, see core.ComponentDecompose) and
// memoizes whole-instance results behind a fingerprint-keyed LRU cache.
//
// The engine is the serving-path counterpart of the one-shot library calls:
// where SolveAVGD answers one group on one goroutine, an Engine answers many
// groups at once on a bounded number of goroutines, under context
// cancellation and deadlines, with throughput and latency counters.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/svgic/svgic/internal/core"
)

// DefaultCacheSize is the LRU capacity used when Options.CacheSize is zero.
const DefaultCacheSize = 256

// ErrClosed is returned by Solve and SolveBatch after Close.
var ErrClosed = errors.New("engine: closed")

// Options configures an Engine.
type Options struct {
	// Workers is the number of solver goroutines in the pool.
	// Zero means GOMAXPROCS.
	Workers int
	// NewSolver returns a fresh solver for one worker. Solvers carry mutable
	// per-solve state (e.g. RoundingStats on the AVG/AVG-D adapters), so every
	// worker owns a private instance. Nil means deterministic AVG-D with
	// default options.
	NewSolver func() core.Solver
	// CacheSize bounds the fingerprint-keyed result cache: zero means
	// DefaultCacheSize, negative disables caching. Cached configurations are
	// returned as deep copies, so callers may mutate results freely.
	CacheSize int
	// NoDecompose solves every instance whole instead of per connected
	// component. Required when the configured solver couples components
	// beyond the SAVG objective — e.g. an SVGIC-ST subgroup size cap, which
	// binds across components because subgroups are keyed by (item, slot)
	// over all users. New forces it automatically for AVG/AVG-D solvers
	// configured with a size cap; custom capped solvers must set it.
	NoDecompose bool
}

// Stats is a snapshot of an Engine's counters.
//
// Every Solve call that passes validation ends in exactly one of four
// buckets, so the identity
//
//	Solves == CacheHits + Solved + Canceled + Errors
//
// holds at any quiescent point (asserted under -race by the engine stress
// test). Calls rejected before admission — validation failures and calls on
// an already-closed engine — touch no counters at all.
type Stats struct {
	Solves           uint64        // terminated Solve calls (sum of the four buckets below)
	Batches          uint64        // completed SolveBatch calls
	ComponentsSolved uint64        // component subproblems run through the pool
	CacheHits        uint64        // Solve calls answered from the cache
	CacheMisses      uint64        // Solve calls that missed the cache (retries of errored solves miss again)
	Solved           uint64        // Solve calls that ran the solver to completion
	Canceled         uint64        // Solve calls aborted by their context
	Errors           uint64        // Solve calls failed by a component solver or mid-flight Close
	TotalLatency     time.Duration // summed wall time of the Solved bucket (cache hits excluded)
	Workers          int
}

// AvgLatency returns the mean wall time of a Solve that actually solved;
// cache hits are excluded so a warm cache does not flatter the solver. Zero
// when nothing solved yet.
func (s Stats) AvgLatency() time.Duration {
	if s.Solved == 0 {
		return 0
	}
	return s.TotalLatency / time.Duration(s.Solved)
}

// Throughput returns solver-executed Solve calls per second of summed solve
// latency — the per-worker service rate of the uncached path; multiply by
// Workers for the pool ceiling. Cache hits are excluded (they are ~free and
// would inflate the rate arbitrarily).
func (s Stats) Throughput() float64 {
	if s.TotalLatency <= 0 {
		return 0
	}
	return float64(s.Solved) / s.TotalLatency.Seconds()
}

// task is one component subproblem handed to the pool.
type task struct {
	ctx  context.Context
	in   *core.Instance
	done func(*core.Configuration, error)
}

// Engine is a concurrent batch solver. Create with New, release with Close.
// All methods are safe for concurrent use; Solve and SolveBatch may be called
// from any number of goroutines and share the worker pool fairly at component
// granularity. A Solve racing Close returns ErrClosed (or a partial
// "component" error) — it never panics.
type Engine struct {
	workers     int
	noDecompose bool
	tasks       chan task
	done        chan struct{} // closed by Close; unblocks submitters and workers
	wg          sync.WaitGroup
	cache       *lruCache
	closeOnce   sync.Once
	closed      atomic.Bool

	solves      atomic.Uint64
	batches     atomic.Uint64
	components  atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	solved      atomic.Uint64
	canceled    atomic.Uint64
	errored     atomic.Uint64
	latencyNS   atomic.Int64
}

// New starts an Engine with its worker pool running.
func New(opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	newSolver := opts.NewSolver
	if newSolver == nil {
		newSolver = func() core.Solver { return &core.AVGDSolver{} }
	}
	noDecompose := opts.NoDecompose
	solvers := make([]core.Solver, workers)
	for w := range solvers {
		solvers[w] = newSolver()
	}
	// An SVGIC-ST subgroup size cap binds across components (subgroups are
	// keyed by item and slot over ALL users), so decomposing would merge
	// per-component subgroups into oversized ones. Force whole-instance
	// solving for the solver types whose cap the engine can see; solvers the
	// engine cannot introspect must set NoDecompose themselves.
	if !noDecompose {
		switch s := solvers[0].(type) {
		case *core.AVGDSolver:
			noDecompose = s.Opts.SizeCap != 0
		case *core.AVGSolver:
			noDecompose = s.Opts.SizeCap != 0
		}
	}
	e := &Engine{
		workers:     workers,
		noDecompose: noDecompose,
		tasks:       make(chan task),
		done:        make(chan struct{}),
	}
	switch {
	case opts.CacheSize == 0:
		e.cache = newLRUCache(DefaultCacheSize)
	case opts.CacheSize > 0:
		e.cache = newLRUCache(opts.CacheSize)
	}
	e.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go e.worker(solvers[w])
	}
	return e
}

// worker drains the task channel with a private solver until Close.
func (e *Engine) worker(solver core.Solver) {
	defer e.wg.Done()
	for {
		select {
		case <-e.done:
			return
		case t := <-e.tasks:
			if err := t.ctx.Err(); err != nil {
				t.done(nil, err)
				continue
			}
			conf, err := solver.Solve(t.in)
			t.done(conf, err)
		}
	}
}

// Close shuts the worker pool down: components already on a worker run to
// completion, unsubmitted ones fail their Solve with ErrClosed, and later
// Solve/SolveBatch calls return ErrClosed. Close is idempotent and safe to
// race with in-flight calls.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		close(e.done)
		e.wg.Wait()
	})
}

// Stats returns a point-in-time snapshot of the counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Solves:           e.solves.Load(),
		Batches:          e.batches.Load(),
		ComponentsSolved: e.components.Load(),
		CacheHits:        e.cacheHits.Load(),
		CacheMisses:      e.cacheMisses.Load(),
		Solved:           e.solved.Load(),
		Canceled:         e.canceled.Load(),
		Errors:           e.errored.Load(),
		TotalLatency:     time.Duration(e.latencyNS.Load()),
		Workers:          e.workers,
	}
}

// Solve answers one instance: cache lookup, component decomposition,
// concurrent component solves on the pool, merge, cache fill. The context
// bounds the call — cancellation abandons components that have not started
// (a component already on a worker runs to completion but its result is
// discarded).
func (e *Engine) Solve(ctx context.Context, in *core.Instance) (*core.Configuration, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	// Dead-on-arrival requests: don't pay the O(n·m + |E|·m) fingerprint or
	// touch the cache counters for a call that cannot run.
	if err := ctx.Err(); err != nil {
		e.canceled.Add(1)
		e.solves.Add(1)
		return nil, err
	}
	start := time.Now()
	var fp uint64
	if e.cache != nil {
		fp = core.Fingerprint(in)
		if conf, ok := e.cache.get(fp); ok {
			e.cacheHits.Add(1)
			e.solves.Add(1) // counted as served, but not in the latency metrics
			return conf, nil
		}
		e.cacheMisses.Add(1)
	}

	subs := []*core.Instance{in}
	var origs [][]int
	if !e.noDecompose {
		subs, origs = core.ComponentDecompose(in)
	}
	parts := make([]*core.Configuration, len(subs))
	errs := make([]error, len(subs))
	var wg sync.WaitGroup
	for i, sub := range subs {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		i := i
		wg.Add(1)
		t := task{ctx: ctx, in: sub, done: func(c *core.Configuration, err error) {
			parts[i], errs[i] = c, err
			wg.Done()
		}}
		select {
		case e.tasks <- t:
		case <-ctx.Done():
			wg.Done()
			errs[i] = ctx.Err()
		case <-e.done:
			wg.Done()
			errs[i] = ErrClosed
		}
	}
	wg.Wait()
	// Real solver errors win over concurrent cancellation/shutdown: a caller
	// retrying a context error must not be hiding a deterministic failure.
	// Every terminal path below lands the call in exactly one Stats bucket
	// (Errors / Canceled / Solved), keeping the counter identity intact — an
	// errored solve used to vanish from Solves entirely while its cache miss
	// had already been counted.
	var ctxErr, closedErr error
	for i, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			ctxErr = err
		case errors.Is(err, ErrClosed):
			closedErr = err
		default:
			e.errored.Add(1)
			e.solves.Add(1)
			return nil, fmt.Errorf("engine: component %d: %w", i, err)
		}
	}
	if ctxErr != nil {
		e.canceled.Add(1)
		e.solves.Add(1)
		return nil, ctxErr
	}
	if closedErr != nil {
		e.errored.Add(1)
		e.solves.Add(1)
		return nil, ErrClosed
	}
	e.components.Add(uint64(len(subs)))

	conf := parts[0]
	if len(subs) > 1 {
		conf = core.MergeConfigurations(in.NumUsers(), in.K, parts, origs)
	}
	if e.cache != nil {
		e.cache.put(fp, conf)
	}
	e.finish(start)
	return conf, nil
}

// finish records a Solve that ran the solver to completion.
func (e *Engine) finish(start time.Time) {
	e.solves.Add(1)
	e.solved.Add(1)
	e.latencyNS.Add(int64(time.Since(start)))
}

// SolveBatch answers a batch of instances concurrently, sharing the worker
// pool at component granularity, and returns one configuration per instance
// in input order. On error the slice still carries every configuration that
// completed (nil for the failures) and the error joins the per-instance
// failures.
func (e *Engine) SolveBatch(ctx context.Context, ins []*core.Instance) ([]*core.Configuration, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	confs := make([]*core.Configuration, len(ins))
	errs := make([]error, len(ins))
	var wg sync.WaitGroup
	for i, in := range ins {
		i, in := i, in
		wg.Add(1)
		go func() {
			defer wg.Done()
			confs[i], errs[i] = e.Solve(ctx, in)
		}()
	}
	wg.Wait()
	e.batches.Add(1)
	return confs, errors.Join(errs...)
}
