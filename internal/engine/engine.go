// Package engine provides the concurrent batch-solving layer over the SVGIC
// solvers: a fixed worker pool that splits every incoming instance into the
// connected components of its social network (when the solver is
// decomposition-safe), solves the components in parallel, merges the
// per-component solutions back (objective-preserving, see
// core.ComponentDecompose) and memoizes whole-instance solutions behind an
// LRU cache keyed by instance fingerprint AND solver identity.
//
// The engine is the serving-path counterpart of the one-shot library calls:
// where SolveAVGD answers one group on one goroutine, an Engine answers many
// groups at once on a bounded number of goroutines, under context
// cancellation and deadlines, with throughput, latency and per-algorithm
// counters. Every registered solver can be used per request via SolveWith;
// the cache and the Coalescer incorporate the solver's cache key, so AVG and
// AVG-D results (or one algorithm under two parameterizations) never alias.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/svgic/svgic/internal/core"
)

// DefaultCacheSize is the LRU capacity used when Options.CacheSize is zero.
const DefaultCacheSize = 256

// ErrClosed is returned by Solve and SolveBatch after Close.
var ErrClosed = errors.New("engine: closed")

// Options configures an Engine.
type Options struct {
	// Workers is the number of solver goroutines in the pool.
	// Zero means GOMAXPROCS.
	Workers int
	// NewSolver returns the engine's default solver, called once per worker.
	// Solvers must be safe for concurrent use (core.Solver's contract); the
	// per-worker instantiation additionally isolates any implementation that
	// cheats. Nil means deterministic AVG-D with default options.
	NewSolver func() core.Solver
	// CacheSize bounds the (fingerprint, solver)-keyed result cache: zero
	// means DefaultCacheSize, negative disables caching. Cached solutions are
	// returned as deep copies, so callers may mutate results freely.
	CacheSize int
	// NoDecompose solves every instance whole instead of per connected
	// component, regardless of what the solver reports. Decomposition is
	// only ever applied to solvers that declare themselves safe via
	// core.ComponentSafe (AVG/AVG-D without a size cap, PER, IP); all other
	// solvers are solved whole automatically.
	NoDecompose bool
	// SolveObserver, when set, receives the display name and wall time of
	// every solve that ran a solver to completion (cache hits, cancels and
	// errors are not observed — they carry no solver wall time). Called
	// synchronously on the solving caller's goroutine, so it must be cheap
	// and safe for concurrent use; svgicd wires it into the telemetry
	// tracker's per-algorithm latency series.
	SolveObserver func(algo string, wall time.Duration)
}

// AlgoStats is the per-algorithm slice of Stats: every terminated Solve call
// lands in its solver's bucket alongside the global counters.
type AlgoStats struct {
	Solves       uint64        // terminated Solve calls routed to this algorithm
	CacheHits    uint64        // answered from the result cache
	Solved       uint64        // ran the solver to completion
	Canceled     uint64        // aborted by their context
	Errors       uint64        // failed by a component solver or mid-flight Close
	TotalLatency time.Duration // summed wall time of the Solved bucket
}

// Stats is a snapshot of an Engine's counters.
//
// Every Solve call that passes validation ends in exactly one of four
// buckets, so the identity
//
//	Solves == CacheHits + Solved + Canceled + Errors
//
// holds at any quiescent point (asserted under -race by the engine stress
// test), globally and per algorithm. Calls rejected before admission —
// validation failures and calls on an already-closed engine — touch no
// counters at all.
type Stats struct {
	Solves           uint64        // terminated Solve calls (sum of the four buckets below)
	Batches          uint64        // completed SolveBatch calls
	ComponentsSolved uint64        // component subproblems run through the pool
	CacheHits        uint64        // Solve calls answered from the cache
	CacheMisses      uint64        // Solve calls that missed the cache (retries of errored solves miss again)
	Solved           uint64        // Solve calls that ran the solver to completion
	Canceled         uint64        // Solve calls aborted by their context
	Errors           uint64        // Solve calls failed by a component solver or mid-flight Close
	TotalLatency     time.Duration // summed wall time of the Solved bucket (cache hits excluded)
	Workers          int
	// PerAlgorithm splits the terminal buckets by solver display name
	// (e.g. "AVG-D"), so a mixed-algorithm serving workload is observable
	// per algorithm.
	PerAlgorithm map[string]AlgoStats
}

// AvgLatency returns the mean wall time of a Solve that actually solved;
// cache hits are excluded so a warm cache does not flatter the solver. Zero
// when nothing solved yet.
func (s Stats) AvgLatency() time.Duration {
	if s.Solved == 0 {
		return 0
	}
	return s.TotalLatency / time.Duration(s.Solved)
}

// Throughput returns solver-executed Solve calls per second of summed solve
// latency — the per-worker service rate of the uncached path; multiply by
// Workers for the pool ceiling. Cache hits are excluded (they are ~free and
// would inflate the rate arbitrarily).
func (s Stats) Throughput() float64 {
	if s.TotalLatency <= 0 {
		return 0
	}
	return float64(s.Solved) / s.TotalLatency.Seconds()
}

// task is one component subproblem handed to the pool. A nil solver means
// "use the worker's default solver".
type task struct {
	ctx    context.Context
	in     *core.Instance
	solver core.Solver
	done   func(*core.Solution, error)
}

// SolverKey returns the caching identity of a solver: its CacheKey when it
// implements core.CacheKeyer (registry-built solvers do), its Name
// otherwise. Cache and coalescing keys pair it with the instance
// fingerprint.
func SolverKey(s core.Solver) string {
	if ck, ok := s.(core.CacheKeyer); ok {
		return ck.CacheKey()
	}
	return s.Name()
}

// keyedSolver reports whether the solver carries a parameter-precise cache
// identity. The engine's default solver is always keyed (its parameters are
// fixed for the engine's lifetime, so even a bare Name cannot alias); a
// per-request solver without core.CacheKeyer is NOT — two AVG-D instances
// with different size caps share one Name — so such solvers bypass the
// result cache and the coalescer rather than risk serving one
// parameterization's result for another.
func keyedSolver(s core.Solver) bool {
	_, ok := s.(core.CacheKeyer)
	return ok
}

// solverKeyFor resolves the cache identity for a request-level solver (nil
// means the engine default).
func (e *Engine) solverKeyFor(s core.Solver) string {
	if s == nil {
		return e.defaultKey
	}
	return SolverKey(s)
}

// decomposeSafe reports whether the solver declares component decomposition
// result-preserving. Unknown solvers are conservatively solved whole.
func decomposeSafe(s core.Solver) bool {
	if ds, ok := s.(core.ComponentSafe); ok {
		return ds.DecomposeSafe()
	}
	return false
}

// Uncached strips a solver down to the bare Solver interface: no CacheKeyer,
// no ComponentSafe. The engine then solves the instance whole and bypasses
// the result cache and the coalescer. Warm-started repair solvers ride
// through here — their results depend on a session's incumbent configuration
// (not just the instance fingerprint), so serving them from a keyed cache
// would alias distinct incumbents, and the caller has already decomposed to
// the component it wants solved.
type Uncached struct {
	S core.Solver
}

// Name implements core.Solver.
func (u Uncached) Name() string { return u.S.Name() }

// Solve implements core.Solver.
func (u Uncached) Solve(ctx context.Context, in *core.Instance) (*core.Solution, error) {
	return u.S.Solve(ctx, in)
}

// Engine is a concurrent batch solver. Create with New, release with Close.
// All methods are safe for concurrent use; Solve and SolveBatch may be called
// from any number of goroutines and share the worker pool fairly at component
// granularity. A Solve racing Close returns ErrClosed (or a partial
// "component" error) — it never panics.
type Engine struct {
	workers       int
	forceWhole    bool // Options.NoDecompose: never decompose, for any solver
	defaultWhole  bool // resolved decomposition decision for the default solver
	defaultSolver core.Solver
	defaultKey    string
	tasks         chan task
	done          chan struct{} // closed by Close; unblocks submitters and workers
	wg            sync.WaitGroup
	cache         *lruCache
	closeOnce     sync.Once
	closed        atomic.Bool

	solves      atomic.Uint64
	batches     atomic.Uint64
	components  atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	solved      atomic.Uint64
	canceled    atomic.Uint64
	errored     atomic.Uint64
	latencyNS   atomic.Int64

	algoMu sync.Mutex
	algos  map[string]*AlgoStats

	observer func(algo string, wall time.Duration)
}

// New starts an Engine with its worker pool running.
func New(opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	newSolver := opts.NewSolver
	if newSolver == nil {
		newSolver = func() core.Solver { return &core.AVGDSolver{} }
	}
	solvers := make([]core.Solver, workers)
	for w := range solvers {
		solvers[w] = newSolver()
	}
	e := &Engine{
		workers:       workers,
		forceWhole:    opts.NoDecompose,
		defaultWhole:  opts.NoDecompose || !decomposeSafe(solvers[0]),
		defaultSolver: solvers[0],
		defaultKey:    SolverKey(solvers[0]),
		tasks:         make(chan task),
		done:          make(chan struct{}),
		algos:         make(map[string]*AlgoStats),
		observer:      opts.SolveObserver,
	}
	switch {
	case opts.CacheSize == 0:
		e.cache = newLRUCache(DefaultCacheSize)
	case opts.CacheSize > 0:
		e.cache = newLRUCache(opts.CacheSize)
	}
	e.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go e.worker(solvers[w])
	}
	return e
}

// worker drains the task channel until Close, running each task with its own
// solver or, when the task carries none, the worker's default instance.
func (e *Engine) worker(def core.Solver) {
	defer e.wg.Done()
	for {
		select {
		case <-e.done:
			return
		case t := <-e.tasks:
			if err := t.ctx.Err(); err != nil {
				t.done(nil, err)
				continue
			}
			solver := t.solver
			if solver == nil {
				solver = def
			}
			sol, err := solver.Solve(t.ctx, t.in)
			t.done(sol, err)
		}
	}
}

// Close shuts the worker pool down: components already on a worker run to
// completion, unsubmitted ones fail their Solve with ErrClosed, and later
// Solve/SolveBatch calls return ErrClosed. Close is idempotent and safe to
// race with in-flight calls.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		close(e.done)
		e.wg.Wait()
	})
}

// Stats returns a point-in-time snapshot of the counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Solves:           e.solves.Load(),
		Batches:          e.batches.Load(),
		ComponentsSolved: e.components.Load(),
		CacheHits:        e.cacheHits.Load(),
		CacheMisses:      e.cacheMisses.Load(),
		Solved:           e.solved.Load(),
		Canceled:         e.canceled.Load(),
		Errors:           e.errored.Load(),
		TotalLatency:     time.Duration(e.latencyNS.Load()),
		Workers:          e.workers,
	}
	e.algoMu.Lock()
	if len(e.algos) > 0 {
		st.PerAlgorithm = make(map[string]AlgoStats, len(e.algos))
		for name, a := range e.algos {
			st.PerAlgorithm[name] = *a
		}
	}
	e.algoMu.Unlock()
	return st
}

// terminal buckets for counter accounting.
type outcome int

const (
	outcomeCacheHit outcome = iota
	outcomeSolved
	outcomeCanceled
	outcomeErrored
)

// record lands one terminated Solve call in exactly one global bucket and
// the matching per-algorithm bucket, keeping the counter identity intact.
func (e *Engine) record(algo string, o outcome, latency time.Duration) {
	e.solves.Add(1)
	switch o {
	case outcomeCacheHit:
		e.cacheHits.Add(1)
	case outcomeSolved:
		e.solved.Add(1)
		e.latencyNS.Add(int64(latency))
	case outcomeCanceled:
		e.canceled.Add(1)
	case outcomeErrored:
		e.errored.Add(1)
	}
	e.algoMu.Lock()
	a := e.algos[algo]
	if a == nil {
		a = &AlgoStats{}
		e.algos[algo] = a
	}
	a.Solves++
	switch o {
	case outcomeCacheHit:
		a.CacheHits++
	case outcomeSolved:
		a.Solved++
		a.TotalLatency += latency
	case outcomeCanceled:
		a.Canceled++
	case outcomeErrored:
		a.Errors++
	}
	e.algoMu.Unlock()
	if e.observer != nil && o == outcomeSolved {
		e.observer(algo, latency)
	}
}

// Solve answers one instance with the engine's default solver. See SolveWith.
func (e *Engine) Solve(ctx context.Context, in *core.Instance) (*core.Solution, error) {
	return e.solve(ctx, in, nil)
}

// DefaultSolver returns the engine's default solver instance — what Solve
// runs when no per-request solver is supplied. Callers that derive variants
// of the default (e.g. warm-started repair solvers via core.WarmStarter)
// start from here. The returned solver is shared and must not be mutated.
func (e *Engine) DefaultSolver() core.Solver {
	return e.defaultSolver
}

// SolveWith answers one instance with the given solver (any core.Solver —
// typically a registry-built one): cache lookup under the (fingerprint,
// solver-key) pair, component decomposition when the solver declares it
// safe, concurrent component solves on the shared pool, merge, cache fill.
// A solver that does not implement core.CacheKeyer has no parameter-precise
// identity and therefore bypasses the result cache (every call solves);
// registry-built solvers are always keyed. The solver must be safe for
// concurrent use: decomposed components run it from several workers at
// once. The context bounds the call — cancellation abandons components that
// have not started (a component already on a worker runs to completion but
// its result is discarded).
func (e *Engine) SolveWith(ctx context.Context, in *core.Instance, solver core.Solver) (*core.Solution, error) {
	if solver == nil {
		return nil, errors.New("engine: SolveWith requires a solver (use Solve for the default)")
	}
	return e.solve(ctx, in, solver)
}

func (e *Engine) solve(ctx context.Context, in *core.Instance, solver core.Solver) (*core.Solution, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	algo := e.defaultSolver.Name()
	whole := e.defaultWhole
	useCache := e.cache != nil
	if solver != nil {
		algo = solver.Name()
		whole = e.forceWhole || !decomposeSafe(solver)
		useCache = useCache && keyedSolver(solver)
	}
	// Dead-on-arrival requests: don't pay the O(n·m + |E|·m) fingerprint or
	// touch the cache counters for a call that cannot run.
	if err := ctx.Err(); err != nil {
		e.record(algo, outcomeCanceled, 0)
		return nil, err
	}
	start := time.Now()
	var key cacheKey
	if useCache {
		key = cacheKey{fp: core.Fingerprint(in), solver: e.solverKeyFor(solver)}
		if sol, ok := e.cache.get(key); ok {
			e.record(algo, outcomeCacheHit, 0)
			return sol, nil
		}
		e.cacheMisses.Add(1)
	}

	subs := []*core.Instance{in}
	var origs [][]int
	if !whole {
		subs, origs = core.ComponentDecompose(in)
	}
	parts := make([]*core.Solution, len(subs))
	errs := make([]error, len(subs))
	var wg sync.WaitGroup
	for i, sub := range subs {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		i := i
		wg.Add(1)
		t := task{ctx: ctx, in: sub, solver: solver, done: func(sol *core.Solution, err error) {
			parts[i], errs[i] = sol, err
			wg.Done()
		}}
		select {
		case e.tasks <- t:
		case <-ctx.Done():
			wg.Done()
			errs[i] = ctx.Err()
		case <-e.done:
			wg.Done()
			errs[i] = ErrClosed
		}
	}
	wg.Wait()
	// Real solver errors win over concurrent cancellation/shutdown: a caller
	// retrying a context error must not be hiding a deterministic failure.
	// Every terminal path below lands the call in exactly one Stats bucket
	// (Errors / Canceled / Solved), keeping the counter identity intact.
	var ctxErr, closedErr error
	for i, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			ctxErr = err
		case errors.Is(err, ErrClosed):
			closedErr = err
		default:
			e.record(algo, outcomeErrored, 0)
			return nil, fmt.Errorf("engine: component %d: %w", i, err)
		}
	}
	if ctxErr != nil {
		e.record(algo, outcomeCanceled, 0)
		return nil, ctxErr
	}
	if closedErr != nil {
		e.record(algo, outcomeErrored, 0)
		return nil, ErrClosed
	}
	e.components.Add(uint64(len(subs)))

	sol := parts[0]
	if len(subs) > 1 {
		sol = core.MergeSolutions(in, parts, origs)
	}
	sol.Wall = time.Since(start)
	if useCache {
		e.cache.put(key, sol)
	}
	e.record(algo, outcomeSolved, sol.Wall)
	return sol, nil
}

// SolveBatch answers a batch of instances concurrently with the default
// solver, sharing the worker pool at component granularity, and returns one
// solution per instance in input order. On error the slice still carries
// every solution that completed (nil for the failures) and the error joins
// the per-instance failures.
func (e *Engine) SolveBatch(ctx context.Context, ins []*core.Instance) ([]*core.Solution, error) {
	return e.SolveBatchWith(ctx, ins, nil)
}

// SolveBatchWith is SolveBatch with a per-batch solver (nil means the
// engine default).
func (e *Engine) SolveBatchWith(ctx context.Context, ins []*core.Instance, solver core.Solver) ([]*core.Solution, error) {
	var solvers []core.Solver
	if solver != nil {
		solvers = make([]core.Solver, len(ins))
		for i := range solvers {
			solvers[i] = solver
		}
	}
	return e.SolveBatchEach(ctx, ins, solvers)
}

// SolveBatchEach is SolveBatch with a per-item solver selection: solvers is
// either nil (every item uses the engine default) or positional with ins
// (nil entries use the default). The server's mixed-algorithm batches route
// through here.
func (e *Engine) SolveBatchEach(ctx context.Context, ins []*core.Instance, solvers []core.Solver) ([]*core.Solution, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if solvers != nil && len(solvers) != len(ins) {
		return nil, fmt.Errorf("engine: %d solvers for %d instances", len(solvers), len(ins))
	}
	sols := make([]*core.Solution, len(ins))
	errs := make([]error, len(ins))
	var wg sync.WaitGroup
	for i, in := range ins {
		i, in := i, in
		var solver core.Solver
		if solvers != nil {
			solver = solvers[i]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sols[i], errs[i] = e.solve(ctx, in, solver)
		}()
	}
	wg.Wait()
	e.batches.Add(1)
	return sols, errors.Join(errs...)
}
