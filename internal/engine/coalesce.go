package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"github.com/svgic/svgic/internal/core"
)

// Coalescer collapses concurrent identical Solve calls into one solver
// execution (singleflight keyed on core.Fingerprint). The LRU cache only
// helps *after* the first solve of an instance completes; under a flash
// crowd — N identical requests arriving inside one solve's latency — all N
// would miss the cache and run the solver N times. The coalescer makes the
// first arrival the leader, parks the rest on its in-flight call, and fans
// the leader's result out as deep copies, so every caller may mutate its
// configuration freely.
//
// Followers share the leader's results but not its context: if the leader's
// own deadline expires or its client disconnects mid-solve, a parked
// follower whose context is still live retries — leading a fresh flight or
// joining a newer one — instead of failing with an error that was never its
// own. A follower's context also bounds its wait, so it can give up early
// without affecting the leader.
type Coalescer struct {
	e *Engine

	mu       sync.Mutex
	inflight map[uint64]*call

	leads atomic.Uint64
	joins atomic.Uint64
}

// call is one in-flight solve other requests can park on.
type call struct {
	done    chan struct{}
	joiners int
	conf    *core.Configuration // set before done closes iff joiners > 0; never mutated after
	err     error
}

// CoalesceStats is a snapshot of a Coalescer's counters.
type CoalesceStats struct {
	Leads uint64 // calls that ran the engine (first arrival for their fingerprint)
	Joins uint64 // calls answered by parking on another call's in-flight solve
}

// NewCoalescer wraps an engine with request coalescing. The engine may be
// shared with direct callers; only calls routed through the coalescer are
// collapsed.
func NewCoalescer(e *Engine) *Coalescer {
	return &Coalescer{e: e, inflight: make(map[uint64]*call)}
}

// Stats returns a point-in-time snapshot of the coalescing counters.
func (c *Coalescer) Stats() CoalesceStats {
	return CoalesceStats{Leads: c.leads.Load(), Joins: c.joins.Load()}
}

// Solve answers one instance, collapsing it into an identical in-flight call
// when one exists. The returned configuration is always private to the
// caller (the leader gets the engine's copy, followers get deep copies of
// the leader's result). Validation is the engine's: the fingerprint key is
// total on any input, and an invalid leader fails fast in Engine.Solve with
// the same error a direct call would see.
func (c *Coalescer) Solve(ctx context.Context, in *core.Instance) (*core.Configuration, error) {
	key := core.Fingerprint(in)
	for {
		c.mu.Lock()
		if cl, ok := c.inflight[key]; ok {
			cl.joiners++
			c.mu.Unlock()
			c.joins.Add(1)
			select {
			case <-cl.done:
				if cl.err != nil {
					// The leader's context failure is the leader's, not ours:
					// with a still-live context, go around — lead a fresh
					// flight or join a newer one. One dead client must not
					// fail the whole crowd.
					if isContextErr(cl.err) && ctx.Err() == nil {
						continue
					}
					return nil, cl.err
				}
				// cl.conf is immutable once done is closed; every follower
				// clones it so results stay independently mutable.
				return cl.conf.Clone(), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		cl := &call{done: make(chan struct{})}
		c.inflight[key] = cl
		c.mu.Unlock()
		c.leads.Add(1)

		conf, err := c.e.Solve(ctx, in)

		// Unregister first: arrivals from here on start a fresh flight (and
		// hit the engine's result cache if this one succeeded). The joiner
		// count is frozen by the same lock, so cloning only when someone
		// actually waits is race-free.
		c.mu.Lock()
		delete(c.inflight, key)
		joiners := cl.joiners
		c.mu.Unlock()

		cl.err = err
		if err == nil && joiners > 0 {
			cl.conf = conf.Clone()
		}
		close(cl.done)
		return conf, err
	}
}

// isContextErr reports whether err is a context cancellation or deadline
// failure (possibly wrapped).
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// SolveBatch answers a batch through the coalescing path: each instance is
// solved concurrently via Solve, so duplicates inside the batch — and across
// concurrent batches — collapse too. Results are positional; the error joins
// the per-instance failures like Engine.SolveBatch.
func (c *Coalescer) SolveBatch(ctx context.Context, ins []*core.Instance) ([]*core.Configuration, error) {
	confs := make([]*core.Configuration, len(ins))
	errs := make([]error, len(ins))
	var wg sync.WaitGroup
	for i, in := range ins {
		i, in := i, in
		wg.Add(1)
		go func() {
			defer wg.Done()
			confs[i], errs[i] = c.Solve(ctx, in)
		}()
	}
	wg.Wait()
	return confs, errors.Join(errs...)
}
