package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/svgic/svgic/internal/core"
)

// Coalescer collapses concurrent identical Solve calls into one solver
// execution (singleflight keyed on core.Fingerprint PLUS the solver's cache
// key — a flash crowd asking for AVG must never be answered with AVG-D's
// result). The LRU cache only helps *after* the first solve of an instance
// completes; under a flash crowd — N identical requests arriving inside one
// solve's latency — all N would miss the cache and run the solver N times.
// The coalescer makes the first arrival the leader, parks the rest on its
// in-flight call, and fans the leader's solution out as deep copies, so
// every caller may mutate its configuration freely.
//
// Followers share the leader's results but not its context: if the leader's
// own deadline expires or its client disconnects mid-solve, a parked
// follower whose context is still live retries — leading a fresh flight or
// joining a newer one — instead of failing with an error that was never its
// own. A follower's context also bounds its wait, so it can give up early
// without affecting the leader.
type Coalescer struct {
	e *Engine

	mu sync.Mutex
	// inflight is keyed by the same (fingerprint, solver identity) pair as
	// the engine's result cache, so the two layers can never disagree about
	// what counts as "the same request".
	inflight map[cacheKey]*call

	leads atomic.Uint64
	joins atomic.Uint64
}

// call is one in-flight solve other requests can park on.
type call struct {
	done    chan struct{}
	joiners int
	sol     *core.Solution // set before done closes iff joiners > 0; never mutated after
	err     error
}

// CoalesceStats is a snapshot of a Coalescer's counters.
type CoalesceStats struct {
	Leads uint64 // calls that ran the engine (first arrival for their key)
	Joins uint64 // calls answered by parking on another call's in-flight solve
}

// NewCoalescer wraps an engine with request coalescing. The engine may be
// shared with direct callers; only calls routed through the coalescer are
// collapsed.
func NewCoalescer(e *Engine) *Coalescer {
	return &Coalescer{e: e, inflight: make(map[cacheKey]*call)}
}

// Stats returns a point-in-time snapshot of the coalescing counters.
func (c *Coalescer) Stats() CoalesceStats {
	return CoalesceStats{Leads: c.leads.Load(), Joins: c.joins.Load()}
}

// Solve answers one instance with the engine's default solver, collapsing it
// into an identical in-flight call when one exists. See SolveWith.
func (c *Coalescer) Solve(ctx context.Context, in *core.Instance) (*core.Solution, error) {
	return c.solve(ctx, in, nil)
}

// SolveWith answers one instance with the given solver, coalescing only with
// in-flight calls of the same instance AND same solver identity. A solver
// without core.CacheKeyer has no parameter-precise identity, so it bypasses
// coalescing (the call leads unconditionally) rather than risk answering one
// parameterization's crowd with another's result. The returned solution is
// always private to the caller (the leader gets the engine's copy, followers
// get deep copies of the leader's result). Validation is the engine's: the
// key is total on any input, and an invalid leader fails fast in the engine
// with the same error a direct call would see.
func (c *Coalescer) SolveWith(ctx context.Context, in *core.Instance, solver core.Solver) (*core.Solution, error) {
	if solver == nil {
		return nil, errors.New("engine: Coalescer.SolveWith requires a solver (use Solve for the default)")
	}
	return c.solve(ctx, in, solver)
}

func (c *Coalescer) solve(ctx context.Context, in *core.Instance, solver core.Solver) (*core.Solution, error) {
	if solver != nil && !keyedSolver(solver) {
		c.leads.Add(1)
		return c.e.solve(ctx, in, solver)
	}
	key := cacheKey{fp: core.Fingerprint(in), solver: c.e.solverKeyFor(solver)}
	for {
		c.mu.Lock()
		if cl, ok := c.inflight[key]; ok {
			cl.joiners++
			c.mu.Unlock()
			c.joins.Add(1)
			select {
			case <-cl.done:
				if cl.err != nil {
					// The leader's context failure is the leader's, not ours:
					// with a still-live context, go around — lead a fresh
					// flight or join a newer one. One dead client must not
					// fail the whole crowd.
					if isContextErr(cl.err) && ctx.Err() == nil {
						continue
					}
					return nil, cl.err
				}
				// cl.sol is immutable once done is closed; every follower
				// clones it so results stay independently mutable.
				return cl.sol.Clone(), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		cl := &call{done: make(chan struct{})}
		c.inflight[key] = cl
		c.mu.Unlock()
		c.leads.Add(1)

		sol, err := c.e.solve(ctx, in, solver)

		// Unregister first: arrivals from here on start a fresh flight (and
		// hit the engine's result cache if this one succeeded). The joiner
		// count is frozen by the same lock, so cloning only when someone
		// actually waits is race-free.
		c.mu.Lock()
		delete(c.inflight, key)
		joiners := cl.joiners
		c.mu.Unlock()

		cl.err = err
		if err == nil && joiners > 0 {
			cl.sol = sol.Clone()
		}
		close(cl.done)
		return sol, err
	}
}

// isContextErr reports whether err is a context cancellation or deadline
// failure (possibly wrapped).
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// SolveBatch answers a batch through the coalescing path with the default
// solver: each instance is solved concurrently via Solve, so duplicates
// inside the batch — and across concurrent batches — collapse too. Results
// are positional; the error joins the per-instance failures like
// Engine.SolveBatch.
func (c *Coalescer) SolveBatch(ctx context.Context, ins []*core.Instance) ([]*core.Solution, error) {
	return c.SolveBatchEach(ctx, ins, nil)
}

// SolveBatchEach is SolveBatch with a per-item solver selection: solvers is
// either nil (every item uses the engine default) or positional with ins
// (nil entries use the default). The server's mixed-algorithm batches route
// through here.
func (c *Coalescer) SolveBatchEach(ctx context.Context, ins []*core.Instance, solvers []core.Solver) ([]*core.Solution, error) {
	if solvers != nil && len(solvers) != len(ins) {
		return nil, fmt.Errorf("engine: %d solvers for %d instances", len(solvers), len(ins))
	}
	sols := make([]*core.Solution, len(ins))
	errs := make([]error, len(ins))
	var wg sync.WaitGroup
	for i, in := range ins {
		i, in := i, in
		var solver core.Solver
		if solvers != nil {
			solver = solvers[i]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sols[i], errs[i] = c.solve(ctx, in, solver)
		}()
	}
	wg.Wait()
	return sols, errors.Join(errs...)
}
