package engine

import (
	"container/list"
	"sync"

	"github.com/svgic/svgic/internal/core"
)

// cacheKey identifies one cache entry: the instance fingerprint
// (core.Fingerprint) paired with the solver identity (SolverKey), so two
// algorithms — or one algorithm under two parameterizations — never alias
// each other's results.
type cacheKey struct {
	fp     uint64
	solver string
}

// lruCache memoizes solved solutions. It owns private deep copies on both
// sides: put stores a clone and get returns a clone, so cached entries can
// never be mutated through a caller's solution or vice versa.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	byKey map[cacheKey]*list.Element
}

type cacheEntry struct {
	key cacheKey
	sol *core.Solution
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[cacheKey]*list.Element, capacity),
	}
}

func (c *lruCache) get(key cacheKey) (*core.Solution, bool) {
	c.mu.Lock()
	el, ok := c.byKey[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.order.MoveToFront(el)
	sol := el.Value.(*cacheEntry).sol
	c.mu.Unlock()
	// Clone outside the lock: cached solutions are immutable (put swaps the
	// pointer, never mutates in place), so concurrent hits only contend for
	// the pointer grab, not the O(n·k) copy.
	return sol.Clone(), true
}

func (c *lruCache) put(key cacheKey, sol *core.Solution) {
	clone := sol.Clone()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).sol = clone
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, sol: clone})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
