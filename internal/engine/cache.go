package engine

import (
	"container/list"
	"sync"

	"github.com/svgic/svgic/internal/core"
)

// lruCache memoizes solved configurations keyed by instance fingerprint
// (core.Fingerprint). It owns private deep copies on both sides: put stores a
// clone and get returns a clone, so cached entries can never be mutated
// through a caller's configuration or vice versa.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	byKey map[uint64]*list.Element
}

type cacheEntry struct {
	key  uint64
	conf *core.Configuration
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[uint64]*list.Element, capacity),
	}
}

func (c *lruCache) get(key uint64) (*core.Configuration, bool) {
	c.mu.Lock()
	el, ok := c.byKey[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.order.MoveToFront(el)
	conf := el.Value.(*cacheEntry).conf
	c.mu.Unlock()
	// Clone outside the lock: cached configurations are immutable (put swaps
	// the pointer, never mutates in place), so concurrent hits only contend
	// for the pointer grab, not the O(n·k) copy.
	return conf.Clone(), true
}

func (c *lruCache) put(key uint64, conf *core.Configuration) {
	clone := conf.Clone()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).conf = clone
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, conf: clone})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
