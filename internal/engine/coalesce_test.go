package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/svgic/svgic/internal/core"
)

// gateSolver blocks every Solve on a gate channel and counts executions —
// the deterministic way to hold a request in flight while concurrent
// duplicates pile up on the coalescer.
type gateSolver struct {
	gate  <-chan struct{} // closed by the test to release all solves
	runs  *atomic.Int64
	inner core.Solver
}

func (g *gateSolver) Name() string { return "gate" }

func (g *gateSolver) Solve(ctx context.Context, in *core.Instance) (*core.Solution, error) {
	g.runs.Add(1)
	<-g.gate
	return g.inner.Solve(ctx, in)
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescerCollapsesConcurrentDuplicates is the flash-crowd property: N
// concurrent identical requests run the solver exactly once, everyone gets a
// correct configuration, and the copies are independently mutable.
func TestCoalescerCollapsesConcurrentDuplicates(t *testing.T) {
	const n = 6
	gate := make(chan struct{})
	var runs atomic.Int64
	e := New(Options{
		Workers:   1,
		CacheSize: -1, // cache off: any collapse below is the coalescer's doing
		NewSolver: func() core.Solver {
			return &gateSolver{gate: gate, runs: &runs, inner: &core.AVGDSolver{}}
		},
		NoDecompose: true, // one component = one gated solver run per solve
	})
	defer e.Close()
	c := NewCoalescer(e)

	in := multiComponentInstance(7, 1, 6, 12, 3, 0.5)
	sols := make([]*core.Solution, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sols[i], errs[i] = c.Solve(context.Background(), in)
		}()
	}
	// One leader is stuck on the gate; everyone else must park on its call.
	waitFor(t, "leader to start", func() bool { return runs.Load() == 1 })
	waitFor(t, "followers to join", func() bool { return c.Stats().Joins == n-1 })
	close(gate)
	wg.Wait()

	want, _, err := core.SolveAVGD(in, core.AVGDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		for u := range want.Assign {
			for s := range want.Assign[u] {
				if sols[i].Config.Assign[u][s] != want.Assign[u][s] {
					t.Fatalf("request %d diverges from SolveAVGD at (%d,%d)", i, u, s)
				}
			}
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("solver ran %d times, want 1", got)
	}
	if st := e.Stats(); st.Solved != 1 {
		t.Errorf("engine Solved = %d, want 1", st.Solved)
	}
	if st := c.Stats(); st.Leads != 1 || st.Joins != n-1 {
		t.Errorf("coalesce stats = %+v, want 1 lead / %d joins", st, n-1)
	}
	// Deep-copy fan-out: mutating one caller's result must not reach another.
	sols[0].Config.Assign[0][0] = -42
	for i := 1; i < n; i++ {
		if sols[i].Config.Assign[0][0] == -42 {
			t.Fatalf("request %d shares memory with request 0", i)
		}
	}
}

// TestCoalescerFollowerHonorsOwnContext: a parked follower can give up on
// its own deadline without disturbing the leader.
func TestCoalescerFollowerHonorsOwnContext(t *testing.T) {
	gate := make(chan struct{})
	var runs atomic.Int64
	e := New(Options{
		Workers:   1,
		CacheSize: -1,
		NewSolver: func() core.Solver {
			return &gateSolver{gate: gate, runs: &runs, inner: &core.AVGDSolver{}}
		},
		NoDecompose: true,
	})
	defer e.Close()
	c := NewCoalescer(e)
	in := multiComponentInstance(8, 1, 5, 10, 2, 0.5)

	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.Solve(context.Background(), in)
		leaderDone <- err
	}()
	waitFor(t, "leader to start", func() bool { return runs.Load() == 1 })

	fctx, fcancel := context.WithCancel(context.Background())
	followerDone := make(chan error, 1)
	go func() {
		_, err := c.Solve(fctx, in)
		followerDone <- err
	}()
	waitFor(t, "follower to join", func() bool { return c.Stats().Joins == 1 })
	fcancel()
	if err := <-followerDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("follower error = %v, want context.Canceled", err)
	}

	close(gate)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed after follower cancel: %v", err)
	}
}

// TestCoalescerLeaderErrorFansOut: a solver failure reaches every parked
// follower, and the failed flight is unregistered so a retry leads afresh.
func TestCoalescerLeaderErrorFansOut(t *testing.T) {
	gate := make(chan struct{})
	var runs atomic.Int64
	e := New(Options{
		Workers:   1,
		CacheSize: -1,
		NewSolver: func() core.Solver {
			return &gateSolver{gate: gate, runs: &runs, inner: flakySolver{failItems: 10}}
		},
		NoDecompose: true,
	})
	defer e.Close()
	c := NewCoalescer(e)
	in := multiComponentInstance(9, 1, 5, 10, 2, 0.5) // m=10 trips the flaky solver

	results := make(chan error, 2)
	go func() { _, err := c.Solve(context.Background(), in); results <- err }()
	waitFor(t, "leader to start", func() bool { return runs.Load() == 1 })
	go func() { _, err := c.Solve(context.Background(), in); results <- err }()
	waitFor(t, "follower to join", func() bool { return c.Stats().Joins == 1 })
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-results; err == nil || !errors.Is(err, errFlaky) {
			t.Fatalf("result %d: err = %v, want flaky failure", i, err)
		}
	}
	if st := c.Stats(); st.Leads != 1 || st.Joins != 1 {
		t.Errorf("coalesce stats after error = %+v", st)
	}
	// The flight is gone: the next identical request leads again.
	if _, err := c.Solve(context.Background(), in); err == nil {
		t.Fatal("retry unexpectedly succeeded")
	}
	if st := c.Stats(); st.Leads != 2 {
		t.Errorf("retry did not lead a fresh flight: %+v", st)
	}
}

// TestCoalescerBatchCollapsesInternalDuplicates: duplicates inside one batch
// collapse onto the same flight as duplicates across requests.
func TestCoalescerBatchCollapsesInternalDuplicates(t *testing.T) {
	gate := make(chan struct{})
	var runs atomic.Int64
	e := New(Options{
		Workers:   1,
		CacheSize: -1,
		NewSolver: func() core.Solver {
			return &gateSolver{gate: gate, runs: &runs, inner: &core.AVGDSolver{}}
		},
		NoDecompose: true,
	})
	defer e.Close()
	c := NewCoalescer(e)

	a := multiComponentInstance(11, 1, 5, 12, 2, 0.5)
	b := multiComponentInstance(12, 1, 5, 12, 2, 0.5)
	done := make(chan struct{})
	var sols []*core.Solution
	var batchErr error
	go func() {
		defer close(done)
		sols, batchErr = c.SolveBatch(context.Background(), []*core.Instance{a, a, a, b})
	}()
	// Two flights (a's leader and b's leader) and two joined duplicates of a.
	waitFor(t, "duplicates to join", func() bool { return c.Stats().Joins == 2 })
	close(gate)
	<-done
	if batchErr != nil {
		t.Fatal(batchErr)
	}
	if st := c.Stats(); st.Leads != 2 || st.Joins != 2 {
		t.Errorf("coalesce stats = %+v, want 2 leads / 2 joins", st)
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("solver ran %d times, want 2", got)
	}
	for i, sol := range sols {
		in := a
		if i == 3 {
			in = b
		}
		if err := sol.Config.Validate(in); err != nil {
			t.Errorf("batch result %d: %v", i, err)
		}
	}
}

// TestCoalescerSequentialCallsDoNotCoalesce: with no overlap there is nothing
// to collapse — every call leads (and, with the cache off, solves).
func TestCoalescerSequentialCallsDoNotCoalesce(t *testing.T) {
	e := New(Options{Workers: 2, CacheSize: -1})
	defer e.Close()
	c := NewCoalescer(e)
	in := multiComponentInstance(13, 2, 4, 10, 2, 0.5)
	for i := 0; i < 3; i++ {
		if _, err := c.Solve(context.Background(), in); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Leads != 3 || st.Joins != 0 {
		t.Errorf("coalesce stats = %+v, want 3 leads / 0 joins", st)
	}
	if st := e.Stats(); st.Solved != 3 {
		t.Errorf("engine Solved = %d, want 3 (cache off, no overlap)", st.Solved)
	}
}

// TestCoalescerRejectsInvalidInstance: validation is delegated to the
// engine, whose error comes back unchanged, and the failed flight does not
// poison later requests on the same key.
func TestCoalescerRejectsInvalidInstance(t *testing.T) {
	e := New(Options{Workers: 1, CacheSize: -1})
	defer e.Close()
	c := NewCoalescer(e)
	invalid := multiComponentInstance(14, 1, 4, 10, 2, 0.5)
	invalid.K = invalid.NumItems + 1 // k > m
	wantErr := invalid.Validate()
	if wantErr == nil {
		t.Fatal("test instance unexpectedly valid")
	}
	if _, err := c.Solve(context.Background(), invalid); err == nil || err.Error() != wantErr.Error() {
		t.Fatalf("err = %v, want the engine's validation error %v", err, wantErr)
	}
	// Rejected calls never touch engine counters, and the flight is gone.
	if st := e.Stats(); st.Solves != 0 {
		t.Errorf("invalid instance moved engine counters: %+v", st)
	}
	valid := multiComponentInstance(14, 1, 4, 10, 2, 0.5)
	if _, err := c.Solve(context.Background(), valid); err != nil {
		t.Fatalf("valid instance after invalid flight: %v", err)
	}
}

// TestCoalescerFollowerRetriesAfterLeaderCancel: when the leader's own
// context dies mid-solve, a follower with a live context goes around and
// leads a fresh flight instead of inheriting an error that was never its —
// one impatient client must not fail the whole crowd.
func TestCoalescerFollowerRetriesAfterLeaderCancel(t *testing.T) {
	gate := make(chan struct{})
	var runs atomic.Int64
	e := New(Options{
		Workers:   1,
		CacheSize: -1,
		NewSolver: func() core.Solver {
			return &gateSolver{gate: gate, runs: &runs, inner: &core.AVGDSolver{}}
		},
		NoDecompose: true,
	})
	defer e.Close()
	c := NewCoalescer(e)

	// A blocker on a different instance pins the only worker behind the
	// gate, so the leader below is stuck at the submit select and its cancel
	// is observed deterministically.
	blocker := multiComponentInstance(20, 1, 5, 12, 2, 0.5)
	blockerDone := make(chan error, 1)
	go func() {
		_, err := c.Solve(context.Background(), blocker)
		blockerDone <- err
	}()
	waitFor(t, "blocker to occupy the worker", func() bool { return runs.Load() == 1 })

	in := multiComponentInstance(21, 1, 4, 10, 2, 0.5)
	lctx, lcancel := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.Solve(lctx, in)
		leaderDone <- err
	}()
	waitFor(t, "leader to lead", func() bool { return c.Stats().Leads == 2 })

	followerDone := make(chan error, 1)
	var followerSol *core.Solution
	go func() {
		sol, err := c.Solve(context.Background(), in)
		followerSol = sol
		followerDone <- err
	}()
	waitFor(t, "follower to join", func() bool { return c.Stats().Joins == 1 })

	lcancel() // the worker is still pinned, so the leader must fail here
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want context.Canceled", err)
	}
	close(gate) // free the worker so the blocker and the retried flight finish
	if err := <-blockerDone; err != nil {
		t.Fatalf("blocker failed: %v", err)
	}
	if err := <-followerDone; err != nil {
		t.Fatalf("follower inherited the leader's cancellation: %v", err)
	}
	if err := followerSol.Config.Validate(in); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Leads != 3 || st.Joins != 1 {
		t.Errorf("coalesce stats = %+v, want 3 leads (blocker, leader, follower retry) / 1 join", st)
	}
}
