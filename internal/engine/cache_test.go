package engine

import (
	"testing"

	"github.com/svgic/svgic/internal/core"
)

func solOf(item int) *core.Solution {
	c := core.NewConfiguration(1, 1)
	c.Assign[0][0] = item
	return &core.Solution{Algorithm: "test", Config: c, Components: 1}
}

func ck(fp uint64) cacheKey { return cacheKey{fp: fp, solver: "test"} }

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.put(ck(1), solOf(1))
	c.put(ck(2), solOf(2))
	if _, ok := c.get(ck(1)); !ok { // promotes 1 over 2
		t.Fatal("entry 1 missing")
	}
	c.put(ck(3), solOf(3)) // evicts 2, the least recently used
	if _, ok := c.get(ck(2)); ok {
		t.Fatal("entry 2 not evicted")
	}
	for _, k := range []uint64{1, 3} {
		got, ok := c.get(ck(k))
		if !ok {
			t.Fatalf("entry %d missing", k)
		}
		if got.Config.Assign[0][0] != int(k) {
			t.Fatalf("entry %d carries item %d", k, got.Config.Assign[0][0])
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

// TestLRUCacheSolverKeyed: one fingerprint under two solver identities is
// two independent entries — the non-aliasing property the serving layer
// depends on.
func TestLRUCacheSolverKeyed(t *testing.T) {
	c := newLRUCache(4)
	c.put(cacheKey{fp: 1, solver: "avg{seed=1}"}, solOf(10))
	c.put(cacheKey{fp: 1, solver: "avgd{r=0.25}"}, solOf(20))
	a, ok := c.get(cacheKey{fp: 1, solver: "avg{seed=1}"})
	if !ok || a.Config.Assign[0][0] != 10 {
		t.Fatalf("avg entry = %+v, %v", a, ok)
	}
	b, ok := c.get(cacheKey{fp: 1, solver: "avgd{r=0.25}"})
	if !ok || b.Config.Assign[0][0] != 20 {
		t.Fatalf("avgd entry = %+v, %v", b, ok)
	}
	if _, ok := c.get(cacheKey{fp: 1, solver: "per{}"}); ok {
		t.Fatal("unknown solver key unexpectedly hit")
	}
}

func TestLRUCacheUpdateExisting(t *testing.T) {
	c := newLRUCache(2)
	c.put(ck(7), solOf(1))
	c.put(ck(7), solOf(2))
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	got, _ := c.get(ck(7))
	if got.Config.Assign[0][0] != 2 {
		t.Fatalf("stale value %d after update", got.Config.Assign[0][0])
	}
}

func TestLRUCacheIsolation(t *testing.T) {
	c := newLRUCache(2)
	orig := solOf(5)
	c.put(ck(9), orig)
	orig.Config.Assign[0][0] = -1 // caller mutates after put
	a, _ := c.get(ck(9))
	if a.Config.Assign[0][0] != 5 {
		t.Fatal("put did not copy")
	}
	a.Config.Assign[0][0] = -2 // caller mutates a get result
	b, _ := c.get(ck(9))
	if b.Config.Assign[0][0] != 5 {
		t.Fatal("get did not copy")
	}
}
