package engine

import (
	"testing"

	"github.com/svgic/svgic/internal/core"
)

func confOf(item int) *core.Configuration {
	c := core.NewConfiguration(1, 1)
	c.Assign[0][0] = item
	return c
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.put(1, confOf(1))
	c.put(2, confOf(2))
	if _, ok := c.get(1); !ok { // promotes 1 over 2
		t.Fatal("entry 1 missing")
	}
	c.put(3, confOf(3)) // evicts 2, the least recently used
	if _, ok := c.get(2); ok {
		t.Fatal("entry 2 not evicted")
	}
	for _, k := range []uint64{1, 3} {
		got, ok := c.get(k)
		if !ok {
			t.Fatalf("entry %d missing", k)
		}
		if got.Assign[0][0] != int(k) {
			t.Fatalf("entry %d carries item %d", k, got.Assign[0][0])
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestLRUCacheUpdateExisting(t *testing.T) {
	c := newLRUCache(2)
	c.put(7, confOf(1))
	c.put(7, confOf(2))
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	got, _ := c.get(7)
	if got.Assign[0][0] != 2 {
		t.Fatalf("stale value %d after update", got.Assign[0][0])
	}
}

func TestLRUCacheIsolation(t *testing.T) {
	c := newLRUCache(2)
	orig := confOf(5)
	c.put(9, orig)
	orig.Assign[0][0] = -1 // caller mutates after put
	a, _ := c.get(9)
	if a.Assign[0][0] != 5 {
		t.Fatal("put did not copy")
	}
	a.Assign[0][0] = -2 // caller mutates a get result
	b, _ := c.get(9)
	if b.Assign[0][0] != 5 {
		t.Fatal("get did not copy")
	}
}
