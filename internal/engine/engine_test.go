package engine

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/datasets"
	"github.com/svgic/svgic/internal/graph"
)

// multiComponentInstance builds the canonical multi-component workload
// (disjoint social rings with synthetic utilities) shared with the engine
// demo and benchmarks.
func multiComponentInstance(seed uint64, blocks, blockN, m, k int, lambda float64) *core.Instance {
	return datasets.MultiGroup(seed, blocks, blockN, m, k, lambda)
}

// TestEngineMatchesWholeInstanceSolve is the ISSUE's acceptance property: on
// ≥ 20 random multi-component instances the engine (component-decomposed,
// solved concurrently, merged) returns the same Evaluate objective — in fact
// the same configuration — as a direct whole-instance SolveAVGD.
func TestEngineMatchesWholeInstanceSolve(t *testing.T) {
	e := New(Options{Workers: 4, CacheSize: -1})
	defer e.Close()
	ctx := context.Background()
	for seed := uint64(1); seed <= 20; seed++ {
		in := multiComponentInstance(seed, 4, 6, 20, 3, 0.5)
		want, _, err := core.SolveAVGD(in, core.AVGDOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := e.Solve(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		got := sol.Config
		if err := got.Validate(in); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sol.Algorithm != "AVG-D" {
			t.Fatalf("seed %d: solution algorithm = %q", seed, sol.Algorithm)
		}
		if sol.Components < 2 {
			t.Fatalf("seed %d: solution reports %d components for a multi-component instance", seed, sol.Components)
		}
		for u := range want.Assign {
			for s := range want.Assign[u] {
				if want.Assign[u][s] != got.Assign[u][s] {
					t.Fatalf("seed %d: engine diverges from SolveAVGD at (%d,%d)", seed, u, s)
				}
			}
		}
		ow := core.Evaluate(in, want).Weighted()
		og := sol.Report.Weighted()
		if math.Abs(ow-og) > 1e-12 {
			t.Errorf("seed %d: objective %.12f != %.12f", seed, og, ow)
		}
	}
	st := e.Stats()
	if st.Solves != 20 {
		t.Errorf("Solves = %d, want 20", st.Solves)
	}
	if st.ComponentsSolved < 20*2 {
		t.Errorf("ComponentsSolved = %d, want ≥ 40 (multi-component inputs)", st.ComponentsSolved)
	}
	if st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Errorf("cache counters moved with caching disabled: %+v", st)
	}
}

func TestEngineCacheHitMiss(t *testing.T) {
	e := New(Options{Workers: 2, CacheSize: 8})
	defer e.Close()
	ctx := context.Background()
	in := multiComponentInstance(3, 3, 5, 12, 2, 0.5)
	firstSol, err := e.Solve(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	first := firstSol.Config
	if st := e.Stats(); st.CacheMisses != 1 || st.CacheHits != 0 {
		t.Fatalf("after first solve: %+v", st)
	}
	// Poisoning guard: mutating a returned configuration must not reach the
	// cached copy.
	first.Assign[0][0] = -7
	secondSol, err := e.Solve(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	second := secondSol.Config
	if st := e.Stats(); st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("after second solve: %+v", st)
	}
	if second.Assign[0][0] == -7 {
		t.Fatal("cache returned the caller's mutated configuration")
	}
	if err := second.Validate(in); err != nil {
		t.Fatal(err)
	}
	// An equal-but-distinct instance hits too (fingerprint keyed, not pointer
	// keyed); a perturbed one misses.
	if _, err := e.Solve(ctx, multiComponentInstance(3, 3, 5, 12, 2, 0.5)); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.CacheHits != 2 {
		t.Fatalf("value-identical instance missed the cache: %+v", st)
	}
	perturbed := multiComponentInstance(3, 3, 5, 12, 2, 0.5)
	perturbed.SetPref(0, 0, perturbed.Pref[0][0]+1)
	if _, err := e.Solve(ctx, perturbed); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.CacheMisses != 2 {
		t.Fatalf("perturbed instance hit the cache: %+v", st)
	}
}

func TestEngineContextCancellation(t *testing.T) {
	e := New(Options{Workers: 1, CacheSize: -1})
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := multiComponentInstance(5, 3, 5, 12, 2, 0.5)
	if _, err := e.Solve(ctx, in); !errors.Is(err, context.Canceled) {
		t.Fatalf("Solve on canceled context: err = %v", err)
	}
	if st := e.Stats(); st.Canceled != 1 {
		t.Errorf("Canceled = %d, want 1", st.Canceled)
	}
	// A deadline in the past behaves the same through SolveBatch.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	sols, err := e.SolveBatch(dctx, []*core.Instance{in, in})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SolveBatch past deadline: err = %v", err)
	}
	for i, c := range sols {
		if c != nil {
			t.Errorf("solution[%d] non-nil after deadline", i)
		}
	}
}

func TestEngineSolveBatch(t *testing.T) {
	e := New(Options{Workers: 4})
	defer e.Close()
	ins := make([]*core.Instance, 12)
	for i := range ins {
		ins[i] = multiComponentInstance(uint64(100+i), 3, 5, 15, 3, 0.5)
	}
	sols, err := e.SolveBatch(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != len(ins) {
		t.Fatalf("got %d solutions, want %d", len(sols), len(ins))
	}
	for i, sol := range sols {
		if err := sol.Config.Validate(ins[i]); err != nil {
			t.Errorf("instance %d: %v", i, err)
		}
		// Order preserved: the batch result must score what a direct solve of
		// the same input scores.
		want, _, err := core.SolveAVGD(ins[i], core.AVGDOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if w, g := core.Evaluate(ins[i], want).Weighted(), sol.Report.Weighted(); math.Abs(w-g) > 1e-12 {
			t.Errorf("instance %d: objective %.12f, want %.12f", i, g, w)
		}
	}
	if st := e.Stats(); st.Batches != 1 || st.Solves != uint64(len(ins)) {
		t.Errorf("stats after batch: %+v", st)
	}
}

func TestEngineBatchPartialFailure(t *testing.T) {
	e := New(Options{Workers: 2, CacheSize: -1})
	defer e.Close()
	good := multiComponentInstance(9, 2, 4, 10, 2, 0.5)
	bad := core.NewInstance(graph.New(2), 1, 3, 0.5) // k > m: invalid
	sols, err := e.SolveBatch(context.Background(), []*core.Instance{good, bad})
	if err == nil {
		t.Fatal("invalid instance did not fail the batch")
	}
	if sols[0] == nil {
		t.Error("valid instance result dropped")
	}
	if sols[1] != nil {
		t.Error("invalid instance produced a solution")
	}
}

func TestEngineConcurrentSolvesRaceClean(t *testing.T) {
	e := New(Options{Workers: 4, CacheSize: 4})
	defer e.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				in := multiComponentInstance(uint64(1+(w+i)%3), 3, 4, 10, 2, 0.5)
				sol, err := e.Solve(context.Background(), in)
				if err != nil {
					t.Error(err)
					return
				}
				if err := sol.Config.Validate(in); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := e.Stats(); st.Solves != 32 {
		t.Errorf("Solves = %d, want 32", st.Solves)
	}
}

func TestEngineClosed(t *testing.T) {
	e := New(Options{Workers: 1})
	e.Close()
	e.Close() // idempotent
	if _, err := e.Solve(context.Background(), multiComponentInstance(1, 2, 3, 8, 2, 0.5)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Solve after Close: err = %v", err)
	}
	if _, err := e.SolveBatch(context.Background(), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("SolveBatch after Close: err = %v", err)
	}
}

func TestEngineNoDecompose(t *testing.T) {
	e := New(Options{Workers: 2, CacheSize: -1, NoDecompose: true})
	defer e.Close()
	in := multiComponentInstance(4, 3, 5, 12, 2, 0.5)
	sol, err := e.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Config.Validate(in); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.ComponentsSolved != 1 {
		t.Errorf("ComponentsSolved = %d, want 1 under NoDecompose", st.ComponentsSolved)
	}
}

// TestEngineCappedSolverNoDecompose: an ST-capped solver must run whole-
// instance; the result then respects the cap globally.
func TestEngineCappedSolverNoDecompose(t *testing.T) {
	const cap = 2
	e := New(Options{
		Workers:     2,
		CacheSize:   -1,
		NoDecompose: true,
		NewSolver:   func() core.Solver { return &core.AVGDSolver{Opts: core.AVGDOptions{SizeCap: cap}} },
	})
	defer e.Close()
	in := multiComponentInstance(6, 3, 4, 14, 2, 0.5)
	sol, err := e.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.Config.SizeViolations(cap); v != 0 {
		t.Errorf("%d size violations at cap %d", v, cap)
	}
}

// TestEngineCappedSolverAutoNoDecompose: New detects a size cap on the
// AVG/AVG-D adapters and forces whole-instance solving even when the caller
// forgot NoDecompose — otherwise merged per-component subgroups could exceed
// the cap silently.
func TestEngineCappedSolverAutoNoDecompose(t *testing.T) {
	const cap = 2
	e := New(Options{
		Workers:   2,
		CacheSize: -1,
		NewSolver: func() core.Solver { return &core.AVGDSolver{Opts: core.AVGDOptions{SizeCap: cap}} },
	})
	defer e.Close()
	in := multiComponentInstance(6, 3, 4, 14, 2, 0.5)
	sol, err := e.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.Config.SizeViolations(cap); v != 0 {
		t.Errorf("%d size violations at cap %d", v, cap)
	}
	if st := e.Stats(); st.ComponentsSolved != 1 {
		t.Errorf("ComponentsSolved = %d, want 1 (auto NoDecompose)", st.ComponentsSolved)
	}
}

// TestEngineCloseRacesSolve: Close concurrent with in-flight Solves must
// never panic; each Solve either completes or returns ErrClosed.
func TestEngineCloseRacesSolve(t *testing.T) {
	e := New(Options{Workers: 2, CacheSize: -1})
	ins := make([]*core.Instance, 16)
	for i := range ins {
		ins[i] = multiComponentInstance(uint64(50+i), 3, 4, 10, 2, 0.5)
	}
	var wg sync.WaitGroup
	for _, in := range ins {
		in := in
		wg.Add(1)
		go func() {
			defer wg.Done()
			sol, err := e.Solve(context.Background(), in)
			if err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("unexpected error: %v", err)
				return
			}
			if err == nil {
				if verr := sol.Config.Validate(in); verr != nil {
					t.Error(verr)
				}
			}
		}()
	}
	e.Close() // races the Solves above
	wg.Wait()
}

// TestEngineUnkeyedSolverBypassesCache: a per-request solver without
// core.CacheKeyer has no parameter-precise identity, so SolveWith must not
// cache under its bare Name — two AVG-D adapters with different size caps
// share the name "AVG-D", and serving one's cached result for the other
// could violate the requested cap.
func TestEngineUnkeyedSolverBypassesCache(t *testing.T) {
	e := New(Options{Workers: 2, CacheSize: 8})
	defer e.Close()
	ctx := context.Background()
	in := multiComponentInstance(6, 3, 4, 14, 2, 0.5)

	uncapped := &core.AVGDSolver{}
	capped := &core.AVGDSolver{Opts: core.AVGDOptions{SizeCap: 2}}
	if _, err := e.SolveWith(ctx, in, uncapped); err != nil {
		t.Fatal(err)
	}
	got, err := e.SolveWith(ctx, in, capped)
	if err != nil {
		t.Fatal(err)
	}
	if v := got.Config.SizeViolations(2); v != 0 {
		t.Errorf("capped solve served an aliased uncapped result: %d violations", v)
	}
	st := e.Stats()
	if st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Errorf("unkeyed solvers touched the cache: %+v", st)
	}
	// Repeating the same unkeyed solver still solves (no stale entry).
	if _, err := e.SolveWith(ctx, in, uncapped); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Solved != 3 || st.CacheHits != 0 {
		t.Errorf("stats after repeat = %+v, want 3 solved / 0 hits", st)
	}
}

// TestEngineSolveBatchEachMixesSolvers: positional per-item solvers, nil
// entries falling back to the default, one Batches tick.
func TestEngineSolveBatchEachMixesSolvers(t *testing.T) {
	e := New(Options{Workers: 2, CacheSize: -1})
	defer e.Close()
	in := multiComponentInstance(7, 2, 4, 10, 2, 0.5)
	per := flakySolver{failItems: -1} // never fails; delegates to AVG-D
	sols, err := e.SolveBatchEach(context.Background(), []*core.Instance{in, in},
		[]core.Solver{nil, per})
	if err != nil {
		t.Fatal(err)
	}
	for i, sol := range sols {
		if err := sol.Config.Validate(in); err != nil {
			t.Errorf("result %d: %v", i, err)
		}
	}
	st := e.Stats()
	if st.Batches != 1 {
		t.Errorf("Batches = %d, want 1", st.Batches)
	}
	// Per-item routing is visible in the per-algorithm counters: one solve
	// under the default's name, one under the override's.
	if st.PerAlgorithm["AVG-D"].Solves != 1 || st.PerAlgorithm["flaky"].Solves != 1 {
		t.Errorf("per-algo split = %+v, want one AVG-D and one flaky", st.PerAlgorithm)
	}
	if _, err := e.SolveBatchEach(context.Background(), []*core.Instance{in}, make([]core.Solver, 2)); err == nil {
		t.Error("mismatched solver slice accepted")
	}
}
