// Package baselines implements the comparison schemes of the paper's
// Section 6.1: PER (personalized top-k), FMG (group recommendation with
// fairness reweighting), SDP (subgroup-by-friendship) and GRF
// (subgroup-by-preference), plus the prepartitioning wrapper used in the
// SVGIC-ST experiments. All satisfy core.Solver.
package baselines

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/graph"
	"github.com/svgic/svgic/internal/stats"
)

// PER is the personalized approach: each user independently receives their
// top-k preferred items, best item at slot 0. It ignores social utility
// entirely (the λ=0 special case of SVGIC).
type PER struct{}

// Name implements core.Solver.
func (PER) Name() string { return "PER" }

// Solve implements core.Solver.
func (PER) Solve(ctx context.Context, in *core.Instance) (*core.Solution, error) {
	start := time.Now()
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return core.NewSolution("PER", in, core.PersonalizedConfig(in), start), nil
}

// DecomposeSafe implements core.ComponentSafe: per-user top-k selection is
// independent across users, so component decomposition preserves it exactly.
func (PER) DecomposeSafe() bool { return true }

// FMG is the group approach: one bundled k-itemset for the whole group,
// chosen greedily by the λ-weighted aggregate score. Fairness > 0 reweights
// each user's preference contribution by 1/(1+Fairness·sat_u), where sat_u is
// the preference utility the user has already accumulated — the fairness
// consideration of the package-to-group recommender the paper compares
// against. Fairness = 0 reduces to the plain aggregate of the paper's
// running example.
type FMG struct {
	Fairness float64
}

// Name implements core.Solver.
func (FMG) Name() string { return "FMG" }

// Solve implements core.Solver. FMG picks one itemset for the whole group,
// so it is NOT component-decomposition safe: per-component itemsets would be
// a different (usually better) algorithm.
func (f FMG) Solve(ctx context.Context, in *core.Instance) (*core.Solution, error) {
	start := time.Now()
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := in.NumUsers()
	users := make([]int, n)
	for i := range users {
		users[i] = i
	}
	items := selectGroupItems(in, users, in.K, f.Fairness, true)
	conf := core.NewConfiguration(n, in.K)
	for u := 0; u < n; u++ {
		copy(conf.Assign[u], items)
	}
	return core.NewSolution("FMG", in, conf, start), nil
}

// selectGroupItems greedily picks k distinct items for the given user set by
// descending λ-weighted aggregate score (preference over the members plus,
// when withSocial, the within-set social weight), with optional fairness
// reweighting. The returned order is the slot order (best first).
func selectGroupItems(in *core.Instance, users []int, k int, fairness float64, withSocial bool) []int {
	m := in.NumItems
	inSet := make(map[int]struct{}, len(users))
	for _, u := range users {
		inSet[u] = struct{}{}
	}
	// Within-set social weight per item, independent of fairness.
	social := make([]float64, m)
	if withSocial {
		for _, p := range in.G.Pairs() {
			if _, ok := inSet[p[0]]; !ok {
				continue
			}
			if _, ok := inSet[p[1]]; !ok {
				continue
			}
			for c := 0; c < m; c++ {
				social[c] += in.PairSocial(p[0], p[1], c)
			}
		}
	}
	sat := make(map[int]float64, len(users))
	chosen := make([]int, 0, k)
	used := make([]bool, m)
	for round := 0; round < k; round++ {
		bestC, bestScore := -1, math.Inf(-1)
		for c := 0; c < m; c++ {
			if used[c] {
				continue
			}
			var score float64
			for _, u := range users {
				w := 1.0
				if fairness > 0 {
					w = 1 / (1 + fairness*sat[u])
				}
				score += w * (1 - in.Lambda) * in.Pref[u][c]
			}
			score += in.Lambda * social[c]
			// Strictly-greater with an epsilon keeps ties on the smaller
			// item id regardless of summation round-off.
			if score > bestScore+1e-9 {
				bestScore, bestC = score, c
			}
		}
		chosen = append(chosen, bestC)
		used[bestC] = true
		for _, u := range users {
			sat[u] += (1 - in.Lambda) * in.Pref[u][bestC]
		}
	}
	return chosen
}

// SDP is the subgroup-by-friendship approach: partition the social network
// into dense subgroups, then run the group selection within each subgroup.
// Groups > 0 forces a balanced partition into that many groups
// (Kernighan–Lin refinement); Groups = 0 uses greedy-modularity communities.
type SDP struct {
	Groups int
	Seed   uint64
}

// Name implements core.Solver.
func (SDP) Name() string { return "SDP" }

// Solve implements core.Solver. The community detection is global, so SDP is
// not component-decomposition safe (a balanced partition mixes components).
func (s SDP) Solve(ctx context.Context, in *core.Instance) (*core.Solution, error) {
	start := time.Now()
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var assignment []int
	if s.Groups > 0 {
		assignment = graph.BalancedPartition(in.G, s.Groups, stats.NewRand(s.Seed+1))
	} else {
		assignment = graph.GreedyModularity(in.G)
	}
	conf, err := solvePerSubgroup(ctx, in, graph.GroupsOf(assignment), true)
	if err != nil {
		return nil, err
	}
	return core.NewSolution("SDP", in, conf, start), nil
}

// GRF is the subgroup-by-preference approach: cluster users by preference
// similarity (average-linkage agglomerative clustering on cosine similarity,
// ignoring the social topology) and select each cluster's items by aggregate
// preference only.
type GRF struct {
	Groups int // 0 = ceil(n/4) clusters
}

// Name implements core.Solver.
func (GRF) Name() string { return "GRF" }

// Solve implements core.Solver. Preference clustering is global, so GRF is
// not component-decomposition safe.
func (g GRF) Solve(ctx context.Context, in *core.Instance) (*core.Solution, error) {
	start := time.Now()
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := in.NumUsers()
	groups := g.Groups
	if groups <= 0 {
		groups = (n + 3) / 4
	}
	if groups > n {
		groups = n
	}
	clusters := agglomerativeCosine(in.Pref, groups)
	conf, err := solvePerSubgroup(ctx, in, clusters, false)
	if err != nil {
		return nil, err
	}
	return core.NewSolution("GRF", in, conf, start), nil
}

// solvePerSubgroup runs the greedy itemset selection inside every subgroup,
// polling the context between subgroups.
func solvePerSubgroup(ctx context.Context, in *core.Instance, groups [][]int, withSocial bool) (*core.Configuration, error) {
	conf := core.NewConfiguration(in.NumUsers(), in.K)
	for _, members := range groups {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		items := selectGroupItems(in, members, in.K, 0, withSocial)
		for _, u := range members {
			copy(conf.Assign[u], items)
		}
	}
	return conf, nil
}

// agglomerativeCosine merges clusters by maximum average pairwise cosine
// similarity until `groups` clusters remain. Deterministic; ties broken by
// smaller cluster indices.
func agglomerativeCosine(pref [][]float64, groups int) [][]int {
	n := len(pref)
	sim := make([][]float64, n)
	norm := make([]float64, n)
	for u := range pref {
		var s float64
		for _, x := range pref[u] {
			s += x * x
		}
		norm[u] = math.Sqrt(s)
	}
	for u := 0; u < n; u++ {
		sim[u] = make([]float64, n)
		for v := 0; v < n; v++ {
			if u == v || norm[u] == 0 || norm[v] == 0 {
				continue
			}
			var dot float64
			for c := range pref[u] {
				dot += pref[u][c] * pref[v][c]
			}
			sim[u][v] = dot / (norm[u] * norm[v])
		}
	}
	clusters := make([][]int, n)
	for u := 0; u < n; u++ {
		clusters[u] = []int{u}
	}
	avgSim := func(a, b []int) float64 {
		var s float64
		for _, u := range a {
			for _, v := range b {
				s += sim[u][v]
			}
		}
		return s / float64(len(a)*len(b))
	}
	for len(clusters) > groups {
		bi, bj, bs := -1, -1, math.Inf(-1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if s := avgSim(clusters[i], clusters[j]); s > bs {
					bi, bj, bs = i, j, s
				}
			}
		}
		clusters[bi] = append(clusters[bi], clusters[bj]...)
		sort.Ints(clusters[bi])
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}
	return clusters
}

// Prepartitioned wraps any solver with the "-P" prepartitioning of the
// paper's SVGIC-ST experiments: the user set is split into ⌈n/M⌉ balanced
// groups along the social network, the inner solver runs on each induced
// subinstance independently, and the per-group configurations are merged.
type Prepartitioned struct {
	Inner core.Solver
	M     int // target maximum group size
	Seed  uint64
}

// Name implements core.Solver.
func (p Prepartitioned) Name() string { return p.Inner.Name() + "-P" }

// Solve implements core.Solver, polling the context between per-group
// sub-solves (each of which honours the context itself). The returned
// Solution reports one Component per prepartition group.
func (p Prepartitioned) Solve(ctx context.Context, in *core.Instance) (*core.Solution, error) {
	start := time.Now()
	if p.M <= 0 {
		return nil, fmt.Errorf("baselines: prepartition group size M=%d must be positive", p.M)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := in.NumUsers()
	numGroups := (n + p.M - 1) / p.M
	assignment := graph.BalancedPartition(in.G, numGroups, stats.NewRand(p.Seed+7))
	groups := graph.GroupsOf(assignment)
	parts := make([]*core.Solution, 0, len(groups))
	origs := make([][]int, 0, len(groups))
	for _, members := range groups {
		sub, orig, err := core.SubInstance(in, members)
		if err != nil {
			return nil, err
		}
		part, err := p.Inner.Solve(ctx, sub)
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
		origs = append(origs, orig)
	}
	sol := core.MergeSolutions(in, parts, origs)
	sol.Algorithm = p.Name()
	sol.Exact = false // per-group optimality does not certify the whole
	sol.Wall = time.Since(start)
	return sol, nil
}
