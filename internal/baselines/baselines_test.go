package baselines_test

import (
	"context"
	"math"
	"testing"

	"github.com/svgic/svgic/internal/baselines"
	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/graph"
	"github.com/svgic/svgic/internal/paperex"
	"github.com/svgic/svgic/internal/utility"
)

// The paper's Example 5 reports exact objective values for each baseline on
// the running example (λ=1/2, scaled objective = preference + social):
// personalized 8.25, group 8.35, subgroup-by-friendship 8.4,
// subgroup-by-preference 8.7.

func scaledValue(t *testing.T, in *core.Instance, s core.Solver) float64 {
	t.Helper()
	sol, err := s.Solve(context.Background(), in)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	if err := sol.Config.Validate(in); err != nil {
		t.Fatalf("%s produced invalid config: %v", s.Name(), err)
	}
	if sol.Algorithm != s.Name() {
		t.Fatalf("solution algorithm %q != solver name %q", sol.Algorithm, s.Name())
	}
	return sol.Report.Scaled()
}

func TestPaperExampleBaselines(t *testing.T) {
	in := paperex.New(0.5)
	cases := []struct {
		solver core.Solver
		want   float64
	}{
		{baselines.PER{}, paperex.PersonalizedScaled},
		{baselines.FMG{}, paperex.GroupScaled},
		{baselines.SDP{Groups: 2}, paperex.SubgroupByFriendshipScaled},
		{baselines.GRF{Groups: 2}, paperex.SubgroupByPreferenceScaled},
	}
	for _, tc := range cases {
		if got := scaledValue(t, in, tc.solver); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s scaled value = %.4f, want %.4f", tc.solver.Name(), got, tc.want)
		}
	}
}

func TestPaperExamplePERConfig(t *testing.T) {
	// Table 9's personalized rows: Alice ⟨c5,c2,c1⟩, Bob ⟨c2,c1,c4⟩,
	// Charlie ⟨c3,c4,c2⟩, Dave ⟨c4,c5,c3⟩.
	in := paperex.New(0.5)
	sol, err := baselines.PER{}.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	conf := sol.Config
	want := [][]int{
		{paperex.SPCamera, paperex.DSLR, paperex.Tripod},
		{paperex.DSLR, paperex.Tripod, paperex.MemoryCard},
		{paperex.PSD, paperex.MemoryCard, paperex.DSLR},
		{paperex.MemoryCard, paperex.SPCamera, paperex.PSD},
	}
	for u := range want {
		for s := range want[u] {
			if conf.Assign[u][s] != want[u][s] {
				t.Errorf("PER A(%s, slot %d) = %s, want %s",
					paperex.UserNames[u], s+1,
					paperex.ItemNames[conf.Assign[u][s]], paperex.ItemNames[want[u][s]])
			}
		}
	}
}

func TestPaperExampleFMGConfig(t *testing.T) {
	// Table 9's group row: everyone sees ⟨c5, c1, c2⟩.
	in := paperex.New(0.5)
	sol, err := baselines.FMG{}.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	conf := sol.Config
	want := []int{paperex.SPCamera, paperex.Tripod, paperex.DSLR}
	for u := 0; u < 4; u++ {
		for s, it := range want {
			if conf.Assign[u][s] != it {
				t.Errorf("FMG A(%d,%d) = %d, want %d", u, s, conf.Assign[u][s], it)
			}
		}
	}
}

func TestPaperExampleSubgroupPartitions(t *testing.T) {
	in := paperex.New(0.5)
	// Friendship split must be {Alice, Dave} vs {Bob, Charlie} (minimum
	// balanced cut); preference split must be {Alice, Bob} vs {Charlie, Dave}.
	sdpSol, err := baselines.SDP{Groups: 2}.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	sdpConf := sdpSol.Config
	if sdpConf.Assign[paperex.Alice][0] != sdpConf.Assign[paperex.Dave][0] ||
		sdpConf.Assign[paperex.Bob][0] != sdpConf.Assign[paperex.Charlie][0] ||
		sdpConf.Assign[paperex.Alice][0] == sdpConf.Assign[paperex.Bob][0] {
		t.Errorf("SDP did not split {Alice,Dave} | {Bob,Charlie}: %v", sdpConf.Assign)
	}
	grfSol, err := baselines.GRF{Groups: 2}.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	grfConf := grfSol.Config
	if grfConf.Assign[paperex.Alice][0] != grfConf.Assign[paperex.Bob][0] ||
		grfConf.Assign[paperex.Charlie][0] != grfConf.Assign[paperex.Dave][0] ||
		grfConf.Assign[paperex.Alice][0] == grfConf.Assign[paperex.Charlie][0] {
		t.Errorf("GRF did not split {Alice,Bob} | {Charlie,Dave}: %v", grfConf.Assign)
	}
}

func TestFMGFairnessSpreadsPreference(t *testing.T) {
	// With fairness reweighting, an item loved by an already-served user
	// should lose to one serving the underserved user. Two users, two
	// rounds: user 0 loves items 0 and 1; user 1 loves item 2.
	g := graph.Empty(2)
	in := core.NewInstance(g, 3, 2, 0.5)
	in.SetPref(0, 0, 1.0)
	in.SetPref(0, 1, 0.9)
	in.SetPref(1, 2, 0.8)
	plainSol, err := baselines.FMG{}.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	plain := plainSol.Config
	fairSol, err := baselines.FMG{Fairness: 10}.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	fair := fairSol.Config
	if plain.Assign[0][1] != 1 {
		t.Errorf("plain FMG second pick = %d, want 1 (aggregate order)", plain.Assign[0][1])
	}
	if fair.Assign[0][1] != 2 {
		t.Errorf("fair FMG second pick = %d, want 2 (underserved user's item)", fair.Assign[0][1])
	}
}

func TestPrepartitionedRespectsGroups(t *testing.T) {
	in, err := mkDatasetLike(24, 10, 3, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	p := baselines.Prepartitioned{Inner: baselines.FMG{}, M: 5, Seed: 3}
	sol, err := p.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	conf := sol.Config
	if err := conf.Validate(in); err != nil {
		t.Fatalf("merged config invalid: %v", err)
	}
	if p.Name() != "FMG-P" {
		t.Errorf("Name() = %q, want FMG-P", p.Name())
	}
	if sol.Algorithm != "FMG-P" || sol.Components != 5 {
		t.Errorf("solution provenance = %q/%d components, want FMG-P/5", sol.Algorithm, sol.Components)
	}
	// FMG shows one itemset per prepartitioned group, so the number of
	// distinct user rows is at most the number of groups (⌈24/5⌉ = 5). Note
	// subgroups can still exceed M when two groups pick the same popular
	// item at the same slot — exactly the residual-violation phenomenon the
	// paper reports in Figure 13.
	rows := make(map[string]struct{})
	for u := range conf.Assign {
		key := ""
		for _, it := range conf.Assign[u] {
			key += string(rune('A' + it))
		}
		rows[key] = struct{}{}
	}
	if len(rows) > 5 {
		t.Errorf("prepartitioned FMG produced %d distinct itemsets, want ≤ 5", len(rows))
	}
}

// mkDatasetLike builds a deterministic mid-size instance without importing
// the datasets package (keeping this test focused on baselines).
func mkDatasetLike(n, m, k int, lambda float64, seed uint64) (*core.Instance, error) {
	r := utility.RandRand(seed)
	g := graph.HolmeKim(n, 3, 0.3, r)
	in := core.NewInstance(g, m, k, lambda)
	utility.Populate(in, utility.Defaults(), seed+1)
	return in, in.Validate()
}
