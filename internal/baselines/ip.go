package baselines

import (
	"context"
	"errors"
	"time"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/mip"
)

// IP is the exact integer-programming baseline of the paper (Section 3.3),
// backed by the branch-and-bound solver. Like the paper's Gurobi runs it is
// exact when it terminates and anytime under a time limit. Stateless: the
// bound, node count and optimality certificate travel in the Solution.
type IP struct {
	Strategy  mip.Strategy
	TimeLimit time.Duration
	NodeLimit int
	WarmStart bool // seed the incumbent with AVG-D
}

// Name implements core.Solver.
func (IP) Name() string { return "IP" }

// Solve implements core.Solver. The branch and bound polls the context
// between nodes, so cancellation stops the search at node granularity rather
// than waiting out the wall-clock limit.
func (s IP) Solve(ctx context.Context, in *core.Instance) (*core.Solution, error) {
	start := time.Now()
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts := mip.Options{Strategy: s.Strategy, TimeLimit: s.TimeLimit, NodeLimit: s.NodeLimit}
	if s.WarmStart {
		if warm, err := (&core.AVGDSolver{}).Solve(ctx, in); err == nil {
			opts.WarmStart = warm.Config
		} else if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	res, err := mip.SolveCtx(ctx, in, opts)
	if err != nil {
		return nil, err
	}
	if res.Config == nil {
		return nil, errors.New("baselines: IP found no feasible configuration")
	}
	sol := core.NewSolution("IP", in, res.Config, start)
	sol.Nodes = res.Nodes
	sol.Bound = res.Bound
	sol.Exact = res.Status == mip.Optimal
	return sol, nil
}

// DecomposeSafe implements core.ComponentSafe: the exact optimum is additive
// across connected components, so per-component exact solves merge into the
// whole-instance optimum.
func (IP) DecomposeSafe() bool { return true }
