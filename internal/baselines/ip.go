package baselines

import (
	"time"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/mip"
)

// IP is the exact integer-programming baseline of the paper (Section 3.3),
// backed by the branch-and-bound solver. Like the paper's Gurobi runs it is
// exact when it terminates and anytime under a time limit.
type IP struct {
	Strategy  mip.Strategy
	TimeLimit time.Duration
	WarmStart bool // seed the incumbent with AVG-D
	// Result holds the full outcome of the most recent Solve (bound, node
	// count, status).
	Result mip.Result
}

// Name implements core.Solver.
func (s *IP) Name() string { return "IP" }

// Solve implements core.Solver.
func (s *IP) Solve(in *core.Instance) (*core.Configuration, error) {
	opts := mip.Options{Strategy: s.Strategy, TimeLimit: s.TimeLimit}
	if s.WarmStart {
		warm, _, err := core.SolveAVGD(in, core.AVGDOptions{})
		if err == nil {
			opts.WarmStart = warm
		}
	}
	res, err := mip.Solve(in, opts)
	if err != nil {
		return nil, err
	}
	s.Result = res
	return res.Config, nil
}
