package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// CRC-framed record encoding, the integrity layer of the filesystem backend.
// Every durable payload — WAL records and snapshots alike — travels as one
// frame:
//
//	[4B little-endian payload length][4B little-endian CRC-32C of payload][payload]
//
// A write-ahead log is an append-only sequence of frames. A crash can tear
// the tail in three ways — a truncated header, a truncated payload, or a
// payload the kernel never finished writing (CRC mismatch) — and readers
// must treat all three the same: the log ends at the last intact frame, the
// torn tail is REPORTED, never an error. Anything before the tear was
// acknowledged durable and is served; anything after it never finished
// being written, so losing it is the contract, not corruption.

// maxFrameBytes bounds a single frame's payload. Snapshots of large
// instances run to megabytes; anything near this bound is a corrupted
// length field, not a real record.
const maxFrameBytes = 256 << 20

// frameHeaderSize is the fixed per-frame overhead.
const frameHeaderSize = 8

// castagnoli is the CRC-32C table (the polynomial with hardware support on
// both amd64 and arm64 — frame checksumming must not show up in serving
// profiles).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends the framed encoding of payload to dst and returns the
// extended slice.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Corruption describes where and why a frame stream stopped short of its
// physical end: the byte offset of the first bad frame and the reason. It is
// a report, not an error — the decoded prefix is valid.
type Corruption struct {
	Offset int64
	Reason string
}

func (c *Corruption) String() string {
	return fmt.Sprintf("torn frame at offset %d: %s", c.Offset, c.Reason)
}

// readFrames decodes every intact frame from data. It returns the decoded
// payloads and, when the stream ends in a torn or corrupt frame, a
// Corruption describing the tear. The payload slices alias data.
func readFrames(data []byte) ([][]byte, *Corruption) {
	var payloads [][]byte
	off := int64(0)
	rest := data
	for len(rest) > 0 {
		if len(rest) < frameHeaderSize {
			return payloads, &Corruption{Offset: off, Reason: fmt.Sprintf("truncated header (%d of %d bytes)", len(rest), frameHeaderSize)}
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n == 0 {
			// A zero-length frame is never written (every record has a JSON
			// payload); a run of zero bytes is preallocated or zero-filled
			// space, i.e. a tear.
			return payloads, &Corruption{Offset: off, Reason: "zero-length frame"}
		}
		if n > maxFrameBytes {
			return payloads, &Corruption{Offset: off, Reason: fmt.Sprintf("frame length %d exceeds limit %d", n, maxFrameBytes)}
		}
		if uint64(len(rest)-frameHeaderSize) < uint64(n) {
			return payloads, &Corruption{Offset: off, Reason: fmt.Sprintf("truncated payload (%d of %d bytes)", len(rest)-frameHeaderSize, n)}
		}
		payload := rest[frameHeaderSize : frameHeaderSize+int(n)]
		if got := crc32.Checksum(payload, castagnoli); got != sum {
			return payloads, &Corruption{Offset: off, Reason: fmt.Sprintf("CRC mismatch (stored %08x, computed %08x)", sum, got)}
		}
		payloads = append(payloads, payload)
		off += frameHeaderSize + int64(n)
		rest = rest[frameHeaderSize+int(n):]
	}
	return payloads, nil
}
