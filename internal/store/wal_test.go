package store

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"testing"
)

func frames(payloads ...[]byte) []byte {
	var out []byte
	for _, p := range payloads {
		out = appendFrame(out, p)
	}
	return out
}

// TestFrameRoundTrip: what goes in comes out, in order, with no corruption
// report.
func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte(`{"kind":"events"}`),
		[]byte("x"),
		bytes.Repeat([]byte("abc123"), 10_000),
	}
	got, torn := readFrames(frames(payloads...))
	if torn != nil {
		t.Fatalf("round trip reported corruption: %v", torn)
	}
	if len(got) != len(payloads) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("frame %d: got %q, want %q", i, got[i], payloads[i])
		}
	}
	if got, torn := readFrames(nil); torn != nil || len(got) != 0 {
		t.Fatalf("empty log decoded as %d frames, torn=%v", len(got), torn)
	}
}

// TestTornTailEveryTruncation is the satellite's core requirement: for a
// log truncated at EVERY byte offset, the reader returns exactly the frames
// that fit intact before the cut, reports the tear for any trailing
// partial, and never errors or panics.
func TestTornTailEveryTruncation(t *testing.T) {
	payloads := [][]byte{
		[]byte(`{"a":1}`),
		[]byte(`{"bb":"2222"}`),
		[]byte(`{"ccc":[3,3,3]}`),
	}
	full := frames(payloads...)
	// boundaries[i] = end offset of frame i.
	boundaries := make([]int, len(payloads))
	off := 0
	for i, p := range payloads {
		off += frameHeaderSize + len(p)
		boundaries[i] = off
	}
	for cut := 0; cut <= len(full); cut++ {
		wantFrames := 0
		for _, b := range boundaries {
			if cut >= b {
				wantFrames++
			}
		}
		atBoundary := cut == 0
		for _, b := range boundaries {
			if cut == b {
				atBoundary = true
			}
		}
		got, torn := readFrames(full[:cut])
		if len(got) != wantFrames {
			t.Fatalf("cut at %d: decoded %d frames, want %d", cut, len(got), wantFrames)
		}
		if atBoundary && torn != nil {
			t.Fatalf("cut at clean boundary %d reported corruption: %v", cut, torn)
		}
		if !atBoundary && torn == nil {
			t.Fatalf("cut mid-frame at %d reported no corruption", cut)
		}
		for i := 0; i < wantFrames; i++ {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("cut at %d: frame %d corrupted", cut, i)
			}
		}
	}
}

// TestCorruptionFuzz flips, zeroes and splices random bytes all over a
// multi-frame log: the reader must never panic, never return a frame that
// was not written intact, and — when the corruption lands strictly after a
// frame boundary — still return every frame before the damage.
func TestCorruptionFuzz(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 13))
	var payloads [][]byte
	for i := 0; i < 8; i++ {
		p := make([]byte, 1+rng.IntN(200))
		for j := range p {
			p[j] = byte(rng.Uint32())
		}
		payloads = append(payloads, p)
	}
	full := frames(payloads...)
	boundaries := []int{0}
	off := 0
	for _, p := range payloads {
		off += frameHeaderSize + len(p)
		boundaries = append(boundaries, off)
	}
	intactBefore := func(pos int) int {
		n := 0
		for _, b := range boundaries[1:] {
			if b <= pos {
				n++
			}
		}
		return n
	}

	for trial := 0; trial < 2000; trial++ {
		data := append([]byte(nil), full...)
		pos := rng.IntN(len(data))
		switch rng.IntN(3) {
		case 0: // flip one byte
			data[pos] ^= 1 << rng.IntN(8)
		case 1: // zero a random run
			run := 1 + rng.IntN(32)
			for i := pos; i < len(data) && i < pos+run; i++ {
				data[i] = 0
			}
		case 2: // truncate and append garbage
			data = data[:pos]
			junk := make([]byte, rng.IntN(16))
			for i := range junk {
				junk[i] = byte(rng.Uint32())
			}
			data = append(data, junk...)
		}
		got, _ := readFrames(data)
		// Frames wholly before the first damaged byte must all decode.
		if want := intactBefore(pos); len(got) < want {
			t.Fatalf("trial %d: corruption at %d lost %d intact frames (decoded %d, want ≥ %d)",
				trial, pos, want-len(got), len(got), want)
		}
		// Every decoded frame must be byte-identical to a written one at its
		// position (a flipped byte may leave earlier frames plus, very
		// rarely, CRC-colliding garbage; positional equality catches any
		// frame the reader should not have trusted).
		for i, g := range got {
			if i < len(payloads) && !bytes.Equal(g, payloads[i]) {
				// CRC-32C would need a 1-in-4-billion collision to let a
				// mutated payload through; a mismatch here is a reader bug.
				t.Fatalf("trial %d: corruption at %d produced altered frame %d", trial, pos, i)
			}
		}
	}
}

// TestFrameLengthBounds: absurd and zero length fields are tears, not
// allocations or panics.
func TestFrameLengthBounds(t *testing.T) {
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if got, torn := readFrames(huge); torn == nil || len(got) != 0 {
		t.Fatalf("absurd length decoded as %d frames, torn=%v", len(got), torn)
	}
	zeros := make([]byte, 64)
	if got, torn := readFrames(zeros); torn == nil || len(got) != 0 {
		t.Fatalf("zero-fill decoded as %d frames, torn=%v", len(got), torn)
	}
	if torn := func() *Corruption { _, torn := readFrames(zeros); return torn }(); torn.Offset != 0 {
		t.Fatalf("zero-fill tear at offset %d, want 0", torn.Offset)
	}
}

// TestCorruptionString: the report pinpoints the tear for operators.
func TestCorruptionString(t *testing.T) {
	data := frames([]byte("ok"))
	data = append(data, 1, 2, 3) // partial header
	_, torn := readFrames(data)
	if torn == nil {
		t.Fatal("no corruption reported")
	}
	want := fmt.Sprintf("torn frame at offset %d", frameHeaderSize+2)
	if got := torn.String(); len(got) == 0 || !bytes.Contains([]byte(got), []byte(want)) {
		t.Fatalf("corruption report %q does not pinpoint offset (%s)", got, want)
	}
}
