// Package store is the durable session store: a crash-safe persistence
// subsystem for the live-serving path (internal/session). Every live
// session gets a per-session write-ahead log of its typed JSON events plus
// periodic full-state snapshots; recovery rebuilds every session on startup
// by loading its latest snapshot and replaying the WAL tail through the
// exact event-application semantics the live path uses (session.Apply), so
// a restarted svgicd serves the identical (version, value, configuration)
// it served before the crash.
//
// Architecture:
//
//   - The Store implements session.Persister. The session manager reports
//     every transition — creation, applied event batches, drift-repair
//     adoptions, snapshot cuts, tombstoning ends — in per-session order;
//     the Store enqueues each onto one of a small number of writer shards
//     (sessions hash to shards, so one session's ops stay ordered) and the
//     shard goroutines do all marshalling, framing, appending and fsyncing
//     off the serving path. Event latency sees a buffered channel send —
//     never an fsync — plus, on the SnapshotEvery-th transition only, the
//     O(instance) state clone a snapshot cut takes under the session lock
//     (the same cost the drift-repair path already pays every cycle).
//
//   - Durability is governed by the fsync policy: SyncAlways fsyncs after
//     every record (every acknowledged-and-drained event survives a machine
//     crash), SyncInterval fsyncs dirty logs on a timer (bounded loss
//     window), SyncOff leaves it to the OS (a process kill loses nothing —
//     the page cache survives — but a machine crash may lose the tail).
//     Recovery tolerates all three: a torn or missing tail parses as a
//     shorter, still-consistent log.
//
//   - Snapshots bound recovery time: every SnapshotEvery transitions the
//     manager cuts a full-state image, which the Store writes atomically
//     and then truncates the WAL (log compaction) — replay at recovery is
//     bounded by the post-snapshot tail, not session lifetime.
//
//   - The Backend interface (filesystem today) isolates the byte-moving so
//     an embedded-KV or replicated backend can be swapped in.
//
// Record framing (filesystem backend): every payload is CRC-32C framed
// (wal.go); recovery stops at the last intact frame and reports — never
// fails on — a torn tail.
package store

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/session"
)

// SyncPolicy says when appended WAL records are fsynced.
type SyncPolicy int

// The fsync policies.
const (
	// SyncInterval fsyncs dirty logs every Options.SyncInterval — the
	// throughput default with a bounded loss window.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every appended record.
	SyncAlways
	// SyncOff never fsyncs; durability is the OS's promise, not ours.
	SyncOff
)

// ParseSyncPolicy maps the CLI spelling (always | interval | off) to a
// policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always|interval|off)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return "interval"
	}
}

// Defaults for Options zero values.
const (
	DefaultSyncInterval = 100 * time.Millisecond
	DefaultShards       = 4
	DefaultQueueDepth   = 256
)

// Options configures a Store.
type Options struct {
	// Backend holds the bytes. Required; the Store owns it and closes it.
	Backend Backend
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncInterval is the dirty-log fsync cadence under SyncInterval
	// (default DefaultSyncInterval).
	SyncInterval time.Duration
	// Shards is the writer-goroutine count; sessions hash onto shards, so
	// per-session op order is preserved. Default DefaultShards.
	Shards int
	// QueueDepth is each shard's buffered op queue. A full queue
	// backpressures the serving path (the durability contract beats
	// unbounded memory). Default DefaultQueueDepth.
	QueueDepth int
}

// Store is the durable session store. Open with Open, attach to a
// session.Manager via Options.Persister, recover with Recover, release with
// Close (after the manager). All methods are safe for concurrent use.
type Store struct {
	backend Backend
	policy  SyncPolicy
	every   time.Duration

	shards []*shard

	// encMu lets Close wait out in-flight enqueues (writers hold R, Close
	// holds W) so channel sends never race channel close.
	encMu  sync.RWMutex
	closed bool
	once   sync.Once

	appends    atomic.Uint64
	appendedEv atomic.Uint64
	bytes      atomic.Uint64
	syncs      atomic.Uint64
	snapshots  atomic.Uint64
	snapBytes  atomic.Uint64
	compacts   atomic.Uint64
	tombstones atomic.Uint64
	ioErrors   atomic.Uint64
	dropped    atomic.Uint64
	openLogs   atomic.Int64

	recSessions atomic.Uint64
	recRecords  atomic.Uint64
	recEvents   atomic.Uint64
	recSkipped  atomic.Uint64
	recTorn     atomic.Uint64
	recErrors   atomic.Uint64
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Policy string `json:"fsync"`

	Appends        uint64 `json:"appends"`        // WAL records written
	AppendedEvents uint64 `json:"appendedEvents"` // events inside those records
	AppendedBytes  uint64 `json:"appendedBytes"`
	Syncs          uint64 `json:"syncs"`
	Snapshots      uint64 `json:"snapshots"`
	SnapshotBytes  uint64 `json:"snapshotBytes"`
	Compactions    uint64 `json:"compactions"` // WAL truncations behind a snapshot
	Tombstones     uint64 `json:"tombstones"`
	IOErrors       uint64 `json:"ioErrors"`
	Dropped        uint64 `json:"dropped"` // ops discarded after Close (caller bug)

	QueueDepth int `json:"queueDepth"` // ops waiting across all shards
	OpenLogs   int `json:"openLogs"`

	// Recovery counters (populated by Recover).
	RecoveredSessions uint64 `json:"recoveredSessions"`
	ReplayedRecords   uint64 `json:"replayedRecords"` // WAL tail records replayed
	ReplayedEvents    uint64 `json:"replayedEvents"`  // events inside those records
	SkippedRecords    uint64 `json:"skippedRecords"`  // already covered by the snapshot
	TornTails         uint64 `json:"tornTails"`       // logs that ended in a torn frame
	RecoveryErrors    uint64 `json:"recoveryErrors"`  // sessions that could not be recovered
}

// shard owns a subset of sessions: their open logs and the ordered op queue.
type shard struct {
	ch   chan op
	done chan struct{}
	logs map[string]*openLog
}

type openLog struct {
	log    Log
	dirty  bool // appended since last fsync
	broken bool // a partial append may have left a mid-log tear; no more
	// appends until a snapshot+truncate rebuilds the log clean (appending
	// past a tear writes records recovery can never read)
}

type op struct {
	kind   opKind
	id     string
	events []session.Event
	conf   *core.Configuration
	state  *session.State
	from   uint64
	to     uint64
	value  float64
	ack    chan<- struct{} // barrier: closed once every earlier op is durable
}

type opKind uint8

const (
	opSnapshot opKind = iota // create + periodic cuts: full image, then compact
	opAppend                 // events batch or adopted configuration
	opEnd                    // tombstone
	opBarrier                // flush + fsync, then ack (tests, shutdown)
)

// walRecord is the JSON payload of one WAL frame: either an applied event
// batch or a drift-repair adoption. From/To are the session versions
// before/after; Value is the objective after, the recovery cross-check.
type walRecord struct {
	Kind   string                  `json:"kind"` // "events" | "adopt"
	From   uint64                  `json:"from"`
	To     uint64                  `json:"to"`
	Value  float64                 `json:"value"`
	Events []session.Event         `json:"events,omitempty"`
	Config *core.ConfigurationJSON `json:"config,omitempty"`
}

// snapshotRecord is the JSON payload of a snapshot frame: the full durable
// image of one session.
type snapshotRecord struct {
	ID       string                 `json:"id"`
	Solver   session.SolverRef      `json:"solver,omitempty"`
	Algo     string                 `json:"algo,omitempty"`
	SizeCap  int                    `json:"sizeCap,omitempty"`
	TTL      time.Duration          `json:"ttl,omitempty"`
	Version  uint64                 `json:"version"`
	Value    float64                `json:"value"`
	Created  time.Time              `json:"created"`
	Instance core.InstanceJSON      `json:"instance"`
	Config   core.ConfigurationJSON `json:"config"`
	Active   []int                  `json:"active"`
	Metrics  session.Metrics        `json:"metrics"`
}

// Open starts a store over a backend: one writer goroutine per shard, plus
// the interval-fsync timer when the policy asks for one.
func Open(opts Options) (*Store, error) {
	if opts.Backend == nil {
		return nil, fmt.Errorf("store: Options.Backend is required")
	}
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = DefaultSyncInterval
	}
	s := &Store{
		backend: opts.Backend,
		policy:  opts.Sync,
		every:   opts.SyncInterval,
		shards:  make([]*shard, opts.Shards),
	}
	for i := range s.shards {
		sh := &shard{
			ch:   make(chan op, opts.QueueDepth),
			done: make(chan struct{}),
			logs: make(map[string]*openLog),
		}
		s.shards[i] = sh
		go s.shardLoop(sh)
	}
	return s, nil
}

// shardFor hashes a session id onto its owning shard.
func (s *Store) shardFor(id string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// enqueue hands an op to its session's shard, preserving per-session order.
// After Close the op is counted and dropped (the manager is contractually
// closed first, so this is a caller bug, not data loss to hide).
func (s *Store) enqueue(o op) {
	s.encMu.RLock()
	defer s.encMu.RUnlock()
	if s.closed {
		s.dropped.Add(1)
		if o.ack != nil {
			close(o.ack)
		}
		return
	}
	s.shardFor(o.id).ch <- o
}

// SessionCreated implements session.Persister: the creation image is the
// session's first snapshot.
func (s *Store) SessionCreated(st *session.State) {
	s.enqueue(op{kind: opSnapshot, id: st.ID, state: st})
}

// EventsApplied implements session.Persister.
func (s *Store) EventsApplied(id string, events []session.Event, from, to uint64, value float64) {
	s.enqueue(op{kind: opAppend, id: id, events: events, from: from, to: to, value: value})
}

// ConfigAdopted implements session.Persister. Ownership transfer by
// contract: the session layer clones the adopted configuration into its
// outbox before handing it to the persister, so the pointer received here is
// already private to the durability path.
func (s *Store) ConfigAdopted(id string, conf *core.Configuration, from, to uint64, value float64) {
	//lint:ignore cloneescape Persister contract passes ownership of an already-cloned configuration; cloning again would double every adopt's allocations
	s.enqueue(op{kind: opAppend, id: id, conf: conf, from: from, to: to, value: value})
}

// SnapshotCut implements session.Persister.
func (s *Store) SnapshotCut(st *session.State) {
	s.enqueue(op{kind: opSnapshot, id: st.ID, state: st})
}

// SessionEnded implements session.Persister. The reason (delete vs. evict)
// does not change what the store writes — both end in the same tombstone.
func (s *Store) SessionEnded(id string, _ session.EndReason) {
	s.enqueue(op{kind: opEnd, id: id})
}

// Barrier blocks until every op enqueued before the call has been written
// and fsynced (whatever the policy). Tests use it to make "everything acked
// so far is durable" a checkable statement; Close implies it.
func (s *Store) Barrier() {
	acks := make([]chan struct{}, 0, len(s.shards))
	s.encMu.RLock()
	if s.closed {
		s.encMu.RUnlock()
		return
	}
	for _, sh := range s.shards {
		ack := make(chan struct{})
		acks = append(acks, ack)
		sh.ch <- op{kind: opBarrier, ack: ack}
	}
	s.encMu.RUnlock()
	for _, ack := range acks {
		<-ack
	}
}

// Close drains every shard queue, fsyncs and closes all logs, and releases
// the backend. Close the session manager FIRST — a manager still serving
// would have its persist ops dropped. Idempotent.
func (s *Store) Close() error {
	s.once.Do(func() {
		s.encMu.Lock()
		s.closed = true
		for _, sh := range s.shards {
			close(sh.ch)
		}
		s.encMu.Unlock()
		for _, sh := range s.shards {
			<-sh.done
		}
		_ = s.backend.Close()
	})
	return nil
}

// shardLoop is one writer goroutine: it drains the shard's op queue in
// order and, under SyncInterval, fsyncs dirty logs on the timer. On channel
// close it flushes (fsync + close) every open log and exits.
func (s *Store) shardLoop(sh *shard) {
	defer close(sh.done)
	var tick <-chan time.Time
	if s.policy == SyncInterval {
		t := time.NewTicker(s.every)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case o, ok := <-sh.ch:
			if !ok {
				s.flushShard(sh)
				return
			}
			s.handle(sh, o)
		case <-tick:
			s.syncDirty(sh)
		}
	}
}

func (s *Store) flushShard(sh *shard) {
	for id, ol := range sh.logs {
		if ol.dirty {
			if err := ol.log.Sync(); err != nil {
				s.ioErrors.Add(1)
			} else {
				s.syncs.Add(1)
			}
		}
		_ = ol.log.Close()
		delete(sh.logs, id)
		s.openLogs.Add(-1)
	}
}

func (s *Store) syncDirty(sh *shard) {
	for _, ol := range sh.logs {
		if !ol.dirty {
			continue
		}
		if err := ol.log.Sync(); err != nil {
			// Retrying fsync after a failure is a lie on Linux (the failed
			// pages were marked clean; a later fsync can report success for
			// data that never hit the disk). Quarantine until a snapshot
			// rebuilds the log instead.
			s.ioErrors.Add(1)
			ol.dirty = false
			ol.broken = true
			continue
		}
		ol.dirty = false
		s.syncs.Add(1)
	}
}

// open returns the shard's open log for a session, opening it on first use.
func (s *Store) open(sh *shard, id string) (*openLog, error) {
	if ol, ok := sh.logs[id]; ok {
		return ol, nil
	}
	log, err := s.backend.Open(id)
	if err != nil {
		return nil, err
	}
	ol := &openLog{log: log}
	sh.logs[id] = ol
	s.openLogs.Add(1)
	return ol, nil
}

// handle applies one op to its session's log. I/O failures are counted and
// the op abandoned: a persistence fault degrades durability, it must never
// take the serving path down.
func (s *Store) handle(sh *shard, o op) {
	if o.kind == opBarrier {
		s.syncDirty(sh)
		close(o.ack)
		return
	}
	if o.kind == opEnd {
		// Tombstoning needs no open log — opening one here would mkdir and
		// create an empty wal for a never-persisted session just to remove
		// them (and defeat Tombstone's nothing-to-end fast path).
		if ol, ok := sh.logs[o.id]; ok {
			_ = ol.log.Close()
			delete(sh.logs, o.id)
			s.openLogs.Add(-1)
		}
		if err := s.backend.Tombstone(o.id); err != nil {
			s.ioErrors.Add(1)
			return
		}
		s.tombstones.Add(1)
		return
	}
	ol, err := s.open(sh, o.id)
	if err != nil {
		s.ioErrors.Add(1)
		return
	}
	switch o.kind {
	case opSnapshot:
		// Any snapshot failure quarantines the log, symmetric with the
		// append paths: events appended onto a WAL whose base image failed
		// (the creation-snapshot case) or whose compaction half-finished
		// would form a chain recovery rejects wholesale. Quarantined, the
		// loss stays bounded by one snapshot cadence — the next successful
		// cut rebuilds everything.
		payload, err := json.Marshal(snapshotFromState(o.state))
		if err != nil {
			s.ioErrors.Add(1)
			ol.broken = true
			return
		}
		if err := ol.log.WriteSnapshot(payload); err != nil {
			s.ioErrors.Add(1)
			ol.broken = true
			return
		}
		s.snapshots.Add(1)
		s.snapBytes.Add(uint64(len(payload)))
		// Compaction: everything in the WAL is ≤ the snapshot's version
		// (per-session ops arrive in version order), so the whole log is
		// behind the image and can go. A crash between the two leaves
		// stale-but-skippable records (recovery filters on version).
		if err := ol.log.Truncate(); err != nil {
			s.ioErrors.Add(1)
			ol.broken = true
			return
		}
		s.compacts.Add(1)
		// A complete snapshot+truncate also erased any mid-log tear or
		// version gap a quarantined log carried: clean again.
		ol.broken = false
	case opAppend:
		if ol.broken {
			// The log already lost a record (version gap) or may hold a
			// mid-log tear; either way, appending more would write records
			// recovery rejects — a gapped chain fails the whole session,
			// forever. Drop (and count) until the next snapshot rebuilds
			// the log on a consistent image.
			s.ioErrors.Add(1)
			return
		}
		rec := walRecord{From: o.from, To: o.to, Value: o.value}
		if o.conf != nil {
			rec.Kind = walAdopt
			rec.Config = &core.ConfigurationJSON{Slots: o.conf.K, Assignment: o.conf.Assign}
		} else {
			rec.Kind = walEvents
			rec.Events = o.events
		}
		payload, err := json.Marshal(rec)
		if err != nil {
			// The record is lost either way; a WAL continuing past the gap
			// would flunk recovery's version-chain check and take the whole
			// session with it. Quarantine until the next snapshot.
			s.ioErrors.Add(1)
			ol.broken = true
			return
		}
		if err := ol.log.Append(payload); err != nil {
			// Same logic for EVERY append failure, healed (transient,
			// truncated back — the file is clean but this record is a hole
			// in the version chain) or poisoned (a tear may sit mid-log):
			// stop appending until a snapshot re-baselines. That converts
			// "session permanently unrecoverable at the next restart" into
			// "loss bounded by one snapshot cadence".
			s.ioErrors.Add(1)
			ol.broken = true
			return
		}
		s.appends.Add(1)
		s.appendedEv.Add(uint64(len(o.events)))
		s.bytes.Add(uint64(len(payload) + frameHeaderSize))
		if s.policy == SyncAlways {
			if err := ol.log.Sync(); err != nil {
				// Post-EIO fsync semantics (ext4 marks the failed pages
				// clean) mean the record may be a hole or tear mid-WAL even
				// though Append succeeded — same quarantine as an append
				// failure, for the same reason.
				s.ioErrors.Add(1)
				ol.broken = true
				return
			}
			s.syncs.Add(1)
		} else {
			ol.dirty = true
		}
	}
}

// The walRecord kinds.
const (
	walEvents = "events"
	walAdopt  = "adopt"
)

func snapshotFromState(st *session.State) *snapshotRecord {
	return &snapshotRecord{
		ID:       st.ID,
		Solver:   st.Ref,
		Algo:     st.Algo,
		SizeCap:  st.SizeCap,
		TTL:      st.TTL,
		Version:  st.Version,
		Value:    st.Value,
		Created:  st.Created,
		Instance: *core.InstanceAsJSON(st.Instance),
		Config:   core.ConfigurationJSON{Slots: st.Config.K, Assignment: st.Config.Assign},
		Active:   st.Active,
		Metrics:  st.Metrics,
	}
}

// Stats returns a point-in-time snapshot of the store's counters.
func (s *Store) Stats() Stats {
	depth := 0
	for _, sh := range s.shards {
		depth += len(sh.ch)
	}
	open := int(s.openLogs.Load())
	return Stats{
		Policy:            s.policy.String(),
		Appends:           s.appends.Load(),
		AppendedEvents:    s.appendedEv.Load(),
		AppendedBytes:     s.bytes.Load(),
		Syncs:             s.syncs.Load(),
		Snapshots:         s.snapshots.Load(),
		SnapshotBytes:     s.snapBytes.Load(),
		Compactions:       s.compacts.Load(),
		Tombstones:        s.tombstones.Load(),
		IOErrors:          s.ioErrors.Load(),
		Dropped:           s.dropped.Load(),
		QueueDepth:        depth,
		OpenLogs:          open,
		RecoveredSessions: s.recSessions.Load(),
		ReplayedRecords:   s.recRecords.Load(),
		ReplayedEvents:    s.recEvents.Load(),
		SkippedRecords:    s.recSkipped.Load(),
		TornTails:         s.recTorn.Load(),
		RecoveryErrors:    s.recErrors.Load(),
	}
}
