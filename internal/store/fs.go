package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Filesystem backend: one directory per session under <root>/sessions/,
// holding
//
//	wal        append-only CRC-framed event records
//	snapshot   the latest full-state image (one frame; replaced atomically
//	           via snapshot.tmp + rename)
//	tombstone  present iff the session was deliberately ended
//
// The tombstone file — not the absence of the directory — is the durable
// "ended" marker: a crash midway through removing a session's files must
// not leave a half-deleted directory that recovery mistakes for a live
// session. Tombstoned directories are swept (fully removed) on List, i.e.
// at the next startup's recovery pass.

// FS is the filesystem Backend.
type FS struct {
	root string
}

// NewFS opens (creating if needed) a filesystem backend rooted at dir.
func NewFS(dir string) (*FS, error) {
	if dir == "" {
		return nil, errors.New("store: empty data directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "sessions"), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data directory: %w", err)
	}
	return &FS{root: dir}, nil
}

// Root returns the backend's data directory.
func (f *FS) Root() string { return f.root }

// validID rejects ids that could escape the sessions directory. Manager-
// minted ids are [a-z0-9-] already; this is the trust boundary for any
// other caller.
func validID(id string) error {
	if id == "" || strings.ContainsAny(id, "/\\") || id == "." || id == ".." {
		return fmt.Errorf("store: invalid session id %q", id)
	}
	return nil
}

func (f *FS) dir(id string) string { return filepath.Join(f.root, "sessions", id) }

// syncDir fsyncs a directory, making the entries inside it (renames,
// creations) durable. On Linux — the deployment target — it is the
// load-bearing half of every rename-based atomicity argument in this file,
// so its failure IS the caller's failure (no best-effort fallback: a store
// that cannot order its renames cannot keep the durability contract, and
// the counters should say so rather than hide it).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// List returns every non-tombstoned session directory, sweeping tombstoned
// ones away as it goes.
func (f *FS) List() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(f.root, "sessions"))
	if err != nil {
		return nil, fmt.Errorf("store: listing sessions: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		if _, err := os.Stat(filepath.Join(f.dir(id), "tombstone")); err == nil {
			// Deliberately ended; finish the removal a crash may have
			// interrupted.
			_ = os.RemoveAll(f.dir(id))
			continue
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Open opens (creating if needed) one session's directory. A tombstoned id
// is being reused: clear the stale state so the old session's log cannot
// leak into the new one.
func (f *FS) Open(id string) (Log, error) {
	if err := validID(id); err != nil {
		return nil, err
	}
	dir := f.dir(id)
	if _, err := os.Stat(filepath.Join(dir, "tombstone")); err == nil {
		if err := os.RemoveAll(dir); err != nil {
			return nil, fmt.Errorf("store: clearing tombstoned session %s: %w", id, err)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating session dir %s: %w", id, err)
	}
	wal, err := os.OpenFile(filepath.Join(dir, "wal"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening wal for %s: %w", id, err)
	}
	st, err := wal.Stat()
	if err != nil {
		_ = wal.Close()
		return nil, fmt.Errorf("store: sizing wal for %s: %w", id, err)
	}
	return &fsLog{dir: dir, wal: wal, size: st.Size()}, nil
}

// Tombstone durably marks the session ended, then removes its files. The
// marker is created and synced BEFORE any removal, so a crash mid-removal
// leaves a directory List will sweep rather than recover.
func (f *FS) Tombstone(id string) error {
	if err := validID(id); err != nil {
		return err
	}
	dir := f.dir(id)
	if _, err := os.Stat(dir); errors.Is(err, fs.ErrNotExist) {
		return nil // never persisted, nothing to end
	}
	t, err := os.Create(filepath.Join(dir, "tombstone"))
	if err != nil {
		return fmt.Errorf("store: tombstoning %s: %w", id, err)
	}
	err = t.Sync()
	if cerr := t.Close(); err == nil {
		err = cerr
	}
	// The marker's DIRECTORY ENTRY must be durable too, or a power loss
	// after the removals below could leave a half-deleted session with no
	// tombstone — which recovery would try to serve.
	if serr := syncDir(dir); err == nil {
		err = serr
	}
	if err != nil {
		return fmt.Errorf("store: tombstoning %s: %w", id, err)
	}
	// Best-effort space reclaim; List sweeps whatever remains.
	_ = os.Remove(filepath.Join(dir, "wal"))
	_ = os.Remove(filepath.Join(dir, "snapshot"))
	_ = os.Remove(filepath.Join(dir, "tombstone"))
	_ = os.Remove(dir)
	return nil
}

// Close releases the backend (the filesystem backend holds no global
// resources; per-session files are closed via their Logs).
func (f *FS) Close() error { return nil }

// fsLog is one session's on-disk state. size tracks the WAL's length — the
// file is written only by this handle (one owning shard) and truncated only
// through these methods, so no per-append Stat is needed; it exists for the
// failed-append truncate-back.
type fsLog struct {
	dir  string
	wal  *os.File
	size int64
}

func (l *fsLog) Append(payload []byte) error {
	if len(payload) > maxFrameBytes {
		// Enforced at write time, not just read time: an oversized frame
		// would be written "successfully" and then declared corrupt at the
		// next recovery, taking every later record with it.
		return fmt.Errorf("store: record of %d bytes exceeds the %d frame limit", len(payload), maxFrameBytes)
	}
	frame := appendFrame(make([]byte, 0, frameHeaderSize+len(payload)), payload)
	if _, werr := l.wal.Write(frame); werr != nil {
		// A failed write (ENOSPC, I/O error) may have landed PART of the
		// frame. A torn frame at the very end is fine — the reader stops
		// there — but appending past it would bury every later record
		// behind an unreadable tear. Truncate back to the pre-append length
		// so the log is exactly as it was; if even that fails, poison the
		// log so the Store stops appending until a snapshot rebuilds it.
		if terr := l.wal.Truncate(l.size); terr != nil {
			return fmt.Errorf("store: append failed (%v), truncate-back to %d failed (%v): %w",
				werr, l.size, terr, ErrPoisoned)
		}
		return werr
	}
	l.size += int64(len(frame))
	return nil
}

func (l *fsLog) Sync() error { return l.wal.Sync() }

func (l *fsLog) ReadWAL() ([][]byte, *Corruption, error) {
	data, err := os.ReadFile(filepath.Join(l.dir, "wal"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	payloads, torn := readFrames(data)
	return payloads, torn, nil
}

func (l *fsLog) Truncate() error {
	if err := l.wal.Truncate(0); err != nil {
		return err
	}
	l.size = 0
	return nil
}

func (l *fsLog) WriteSnapshot(payload []byte) error {
	if len(payload) > maxFrameBytes {
		return fmt.Errorf("store: snapshot of %d bytes exceeds the %d frame limit", len(payload), maxFrameBytes)
	}
	tmp := filepath.Join(l.dir, "snapshot.tmp")
	final := filepath.Join(l.dir, "snapshot")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	frame := appendFrame(make([]byte, 0, frameHeaderSize+len(payload)), payload)
	_, werr := f.Write(frame)
	// The temp file is synced before the rename: renaming a dirty file can
	// surface as a zero-length "snapshot" after a power loss, which would
	// shadow the previous good image.
	serr := f.Sync()
	cerr := f.Close()
	for _, err := range []error{werr, serr, cerr} {
		if err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	// The rename must be durable BEFORE the caller truncates the WAL: a
	// power loss that kept the truncate but lost the rename would pair the
	// OLD snapshot with a post-truncate WAL whose first record continues a
	// newer version — recovery would reject the whole session.
	return syncDir(l.dir)
}

func (l *fsLog) ReadSnapshot() ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(l.dir, "snapshot"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	payloads, torn := readFrames(data)
	if torn != nil || len(payloads) != 1 {
		return nil, fmt.Errorf("store: snapshot in %s is corrupt (%d frames, torn=%v)", l.dir, len(payloads), torn)
	}
	return payloads[0], nil
}

func (l *fsLog) Close() error { return l.wal.Close() }
