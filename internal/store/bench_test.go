package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/svgic/svgic/internal/engine"
	"github.com/svgic/svgic/internal/session"
)

// BenchmarkRecovery measures startup recovery against the WAL tail length —
// the number EXPERIMENTS.md's "recovery time vs. log length" table reports,
// and the cost -snapshot-every trades against write amplification. The
// populate phase streams `tail` events with snapshots disabled (so every
// event stays in the WAL), then each iteration recovers the directory cold.
func BenchmarkRecovery(b *testing.B) {
	for _, tail := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("tail=%d", tail), func(b *testing.B) {
			dir := b.TempDir()
			func() {
				backend, err := NewFS(dir)
				if err != nil {
					b.Fatal(err)
				}
				st, err := Open(Options{Backend: backend, Sync: SyncOff})
				if err != nil {
					b.Fatal(err)
				}
				eng := engine.New(engine.Options{Workers: 2})
				defer eng.Close()
				mgr, err := session.NewManager(session.Options{
					Engine:        eng,
					Persister:     st,
					SnapshotEvery: -1, // keep the whole stream in the WAL
				})
				if err != nil {
					b.Fatal(err)
				}
				in := testInstance(90)
				snap, _, err := mgr.CreateWith(context.Background(), in, session.CreateSpec{})
				if err != nil {
					b.Fatal(err)
				}
				events := session.GenerateEvents(in.NumUsers(), in.NumItems, tail, 90)
				for at := 0; at < len(events); at += 8 {
					end := min(at+8, len(events))
					if _, err := mgr.Apply(snap.ID, events[at:end]); err != nil {
						b.Fatal(err)
					}
				}
				mgr.Close()
				st.Close()
			}()
			// Recovery re-baselines the log (fresh snapshot, truncated WAL),
			// so the populated state must be restored before every
			// iteration or only the first one would measure tail replay.
			sessions, err := os.ReadDir(filepath.Join(dir, "sessions"))
			if err != nil || len(sessions) != 1 {
				b.Fatalf("session dirs: %v, err %v", sessions, err)
			}
			sdir := filepath.Join(dir, "sessions", sessions[0].Name())
			savedWAL, err := os.ReadFile(filepath.Join(sdir, "wal"))
			if err != nil {
				b.Fatal(err)
			}
			savedSnap, err := os.ReadFile(filepath.Join(sdir, "snapshot"))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := os.WriteFile(filepath.Join(sdir, "wal"), savedWAL, 0o644); err != nil {
					b.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(sdir, "snapshot"), savedSnap, 0o644); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				backend, err := NewFS(dir)
				if err != nil {
					b.Fatal(err)
				}
				st, err := Open(Options{Backend: backend, Sync: SyncOff})
				if err != nil {
					b.Fatal(err)
				}
				recs, err := st.Recover()
				if err != nil {
					b.Fatal(err)
				}
				if len(recs) != 1 || recs[0].State.Version != uint64(tail) {
					b.Fatalf("recovered %d sessions at v%d, want 1 at v%d", len(recs), recs[0].State.Version, tail)
				}
				if st.Stats().ReplayedEvents != uint64(tail) {
					b.Fatalf("replayed %d events, want %d", st.Stats().ReplayedEvents, tail)
				}
				st.Close()
			}
		})
	}
}
