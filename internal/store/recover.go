package store

import (
	"encoding/json"
	"fmt"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/session"
)

// Recovered is one session rebuilt from the durable store, ready for
// session.Manager.Restore: the full state plus the solver reference the
// serving layer re-resolves and the replayed tail length (which seeds the
// restored session's snapshot cadence).
type Recovered struct {
	State *session.State
	// SinceSnapshot seeds the restored session's snapshot cadence. Recovery
	// re-baselines every session (fresh snapshot + truncated WAL), so it is
	// currently always zero; it stays in the contract so a backend that
	// recovers without rewriting can report a real tail distance.
	SinceSnapshot int
}

// Recover rebuilds every persisted, non-tombstoned session. For each: load
// the latest snapshot, restore the dynamic session (core state, active set,
// cap), replay the WAL tail through session.Apply — the SAME
// event-application semantics the live path uses — and assert the replayed
// state lands exactly on the (version, value) the log recorded, so a
// recovered session provably serves what it served before the crash.
//
// Recovery is deliberately forgiving at the edges and strict in the middle:
// a torn tail frame (crash mid-append) is logged in the stats and replay
// stops at the last intact record — that data was never acknowledged as
// durable; but an intact record that fails to apply or lands on the wrong
// value means the log lies, and the session is dropped (counted in
// RecoveryErrors) rather than served wrong.
//
// Call Recover once, before the attached manager starts serving; it reads
// through the backend directly and must not race the writer shards.
func (s *Store) Recover() ([]Recovered, error) {
	ids, err := s.backend.List()
	if err != nil {
		return nil, err
	}
	var out []Recovered
	for _, id := range ids {
		rec, err := s.recoverOne(id)
		if err != nil {
			s.recErrors.Add(1)
			continue
		}
		if rec == nil {
			continue // empty husk (created but nothing durable): swept
		}
		s.recSessions.Add(1)
		out = append(out, *rec)
	}
	return out, nil
}

// recoverOne rebuilds a single session; (nil, nil) means there was nothing
// durable to recover and the husk was cleaned up.
func (s *Store) recoverOne(id string) (*Recovered, error) {
	log, err := s.backend.Open(id)
	if err != nil {
		return nil, err
	}
	defer log.Close()

	snapPayload, err := log.ReadSnapshot()
	if err != nil {
		return nil, err
	}
	records, torn, err := log.ReadWAL()
	if err != nil {
		return nil, err
	}
	if torn != nil {
		s.recTorn.Add(1)
	}
	if snapPayload == nil {
		// A session's first durable write is its creation snapshot; a
		// directory without one is a crash artifact from before that write
		// landed. With no base image the WAL is unreplayable.
		if len(records) == 0 {
			_ = s.backend.Tombstone(id)
			return nil, nil
		}
		return nil, fmt.Errorf("store: session %s has %d WAL records but no snapshot", id, len(records))
	}

	var snap snapshotRecord
	if err := json.Unmarshal(snapPayload, &snap); err != nil {
		return nil, fmt.Errorf("store: session %s: decoding snapshot: %w", id, err)
	}
	if snap.ID != id {
		return nil, fmt.Errorf("store: session %s: snapshot claims id %q", id, snap.ID)
	}
	in, err := core.InstanceFromJSON(&snap.Instance)
	if err != nil {
		return nil, fmt.Errorf("store: session %s: snapshot instance: %w", id, err)
	}
	conf := &core.Configuration{Assign: snap.Config.Assignment, K: snap.Config.Slots}
	ds, err := core.RestoreDynamicSession(in, conf, snap.SizeCap, snap.Active)
	if err != nil {
		return nil, fmt.Errorf("store: session %s: %w", id, err)
	}
	// Seed the value accumulator with the snapshotted value before replaying
	// the tail: the live session maintained its value incrementally, and a
	// cold Evaluate on restore can differ in final ulps. Replay then continues
	// the exact floating-point chain the live path ran, which is what lets the
	// recovery assertion below demand bit equality.
	if err := ds.SeedValue(snap.Value); err != nil {
		return nil, fmt.Errorf("store: session %s: %w", id, err)
	}

	// Metrics continue through the replayed tail, so a recovered session's
	// counters line up with what its clients observed, not with the last
	// snapshot cut.
	metrics := snap.Metrics
	version, value := snap.Version, snap.Value
	for i, payload := range records {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return nil, fmt.Errorf("store: session %s: decoding WAL record %d: %w", id, i, err)
		}
		if rec.To <= version {
			// Behind the snapshot: a crash landed between the snapshot write
			// and the compaction truncate. Covered state, skip.
			s.recSkipped.Add(1)
			continue
		}
		if rec.From != version {
			return nil, fmt.Errorf("store: session %s: WAL record %d continues version %d, session is at %d",
				id, i, rec.From, version)
		}
		switch rec.Kind {
		case walEvents:
			for j, ev := range rec.Events {
				res, err := session.Apply(ds, ev)
				if err != nil {
					return nil, fmt.Errorf("store: session %s: replaying record %d event %d: %w", id, i, j, err)
				}
				metrics.EventsApplied++
				switch res.Type {
				case session.EventJoin:
					metrics.Joins++
				case session.EventLeave:
					metrics.Leaves++
				case session.EventUpdatePreference:
					metrics.Updates++
				case session.EventRebalance:
					metrics.Rebalances++
					metrics.RebalanceGain += res.Gain
				}
			}
			version += uint64(len(rec.Events))
			s.recEvents.Add(uint64(len(rec.Events)))
		case walAdopt:
			if rec.Config == nil {
				return nil, fmt.Errorf("store: session %s: adopt record %d has no configuration", id, i)
			}
			ac := &core.Configuration{Assign: rec.Config.Assignment, K: rec.Config.Slots}
			if err := ds.Adopt(ac); err != nil {
				return nil, fmt.Errorf("store: session %s: adopting record %d: %w", id, i, err)
			}
			version++
			metrics.RepairSwaps++
		default:
			return nil, fmt.Errorf("store: session %s: unknown WAL record kind %q", id, rec.Kind)
		}
		if version != rec.To {
			return nil, fmt.Errorf("store: session %s: record %d replayed to version %d, log says %d",
				id, i, version, rec.To)
		}
		value = rec.Value
		s.recRecords.Add(1)
	}

	// The recovery assertion: the deterministic replay must land on the
	// exact objective value the live path served at this version. A
	// mismatch means instance round-tripping or event application diverged
	// — serving that state would silently violate the durability contract.
	if got := ds.Value(); got != value {
		return nil, fmt.Errorf("store: session %s: replayed value %v != logged value %v at version %d",
			id, got, value, version)
	}

	state := &session.State{
		ID:       snap.ID,
		Ref:      snap.Solver,
		Algo:     snap.Algo,
		SizeCap:  snap.SizeCap,
		TTL:      snap.TTL,
		Version:  version,
		Value:    value,
		Created:  snap.Created,
		Instance: ds.Instance(),
		Config:   ds.Config(),
		Active:   ds.ActiveUsers(),
		Metrics:  metrics,
	}

	// Re-baseline the durable state on what was just recovered — write the
	// recovered image as the snapshot and truncate the WAL — whenever the
	// log held ANYTHING beyond the snapshot: a replayed tail (bounds the
	// next startup to zero replay), skipped stale records (reclaims them),
	// or a torn tail. The tear is the load-bearing case: without the
	// rewrite it would stay in the file, and because appends are O_APPEND,
	// every post-restart record would land AFTER it — durably fsynced yet
	// invisible to the next recovery, silently losing acknowledged events.
	// A session whose re-baseline fails is not served: its next crash would
	// hit exactly that loss. A clean log (no records, no tear — the normal
	// restart after a graceful shutdown) skips the rewrite: re-snapshotting
	// thousands of idle sessions would turn startup into thousands of
	// needless synchronous writes.
	if len(records) > 0 || torn != nil {
		payload, err := json.Marshal(snapshotFromState(state))
		if err != nil {
			return nil, fmt.Errorf("store: session %s: re-baselining: %w", id, err)
		}
		if err := log.WriteSnapshot(payload); err != nil {
			return nil, fmt.Errorf("store: session %s: re-baselining snapshot: %w", id, err)
		}
		if err := log.Truncate(); err != nil {
			return nil, fmt.Errorf("store: session %s: re-baselining truncate: %w", id, err)
		}
		s.snapshots.Add(1)
		s.snapBytes.Add(uint64(len(payload)))
		s.compacts.Add(1)
	}

	return &Recovered{State: state, SinceSnapshot: 0}, nil
}
