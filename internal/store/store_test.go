package store

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/datasets"
	"github.com/svgic/svgic/internal/engine"
	"github.com/svgic/svgic/internal/session"
)

func testInstance(seed uint64) *core.Instance {
	return datasets.MultiGroup(seed, 2, 4, 12, 2, 0.5)
}

// stack is one full persistence stack over a shared data directory.
type stack struct {
	eng *engine.Engine
	st  *Store
	mgr *session.Manager
}

func openStack(t *testing.T, dir string, policy SyncPolicy, snapshotEvery int) *stack {
	t.Helper()
	backend, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(Options{Backend: backend, Sync: policy, SyncInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Workers: 2})
	mgr, err := session.NewManager(session.Options{
		Engine:        eng,
		Persister:     st,
		SnapshotEvery: snapshotEvery,
		RepairMargin:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &stack{eng: eng, st: st, mgr: mgr}
}

// close tears the stack down in dependency order; safe to call twice.
func (s *stack) close() {
	s.mgr.Close()
	s.st.Close()
	s.eng.Close()
}

// reopen recovers the directory into a brand-new stack and restores every
// recovered session, returning the recovered list too.
func reopen(t *testing.T, dir string, policy SyncPolicy, snapshotEvery int) (*stack, []Recovered) {
	t.Helper()
	s := openStack(t, dir, policy, snapshotEvery)
	recs, err := s.st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if _, err := s.mgr.Restore(rec.State, nil, rec.SinceSnapshot); err != nil {
			t.Fatal(err)
		}
	}
	return s, recs
}

func mustCreate(t *testing.T, s *stack, seed uint64) session.Snapshot {
	t.Helper()
	snap, _, err := s.mgr.CreateWith(context.Background(), testInstance(seed), session.CreateSpec{})
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func applyAll(t *testing.T, s *stack, id string, events []session.Event, batch int) session.ApplyResult {
	t.Helper()
	var res session.ApplyResult
	var err error
	for at := 0; at < len(events); at += batch {
		end := min(at+batch, len(events))
		res, err = s.mgr.Apply(id, events[at:end])
		if err != nil {
			t.Fatalf("events[%d:%d]: %v", at, end, err)
		}
	}
	return res
}

func assertSameSession(t *testing.T, before, after session.Snapshot) {
	t.Helper()
	if after.Version != before.Version || after.Value != before.Value {
		t.Fatalf("recovered (v%d, %v), served (v%d, %v)", after.Version, after.Value, before.Version, before.Value)
	}
	if after.Slots != before.Slots || len(after.Assignment) != len(before.Assignment) {
		t.Fatalf("recovered shape %dx%d, served %dx%d",
			len(after.Assignment), after.Slots, len(before.Assignment), before.Slots)
	}
	for u := range before.Assignment {
		for sl := range before.Assignment[u] {
			if after.Assignment[u][sl] != before.Assignment[u][sl] {
				t.Fatalf("assignment[%d][%d]: recovered %d, served %d",
					u, sl, after.Assignment[u][sl], before.Assignment[u][sl])
			}
		}
	}
	if len(after.Active) != len(before.Active) {
		t.Fatalf("recovered %d active users, served %d", len(after.Active), len(before.Active))
	}
	for i := range before.Active {
		if after.Active[i] != before.Active[i] {
			t.Fatalf("active[%d]: recovered %d, served %d", i, after.Active[i], before.Active[i])
		}
	}
	if after.Metrics.EventsApplied != before.Metrics.EventsApplied {
		t.Fatalf("recovered metrics count %d, served %d", after.Metrics.EventsApplied, before.Metrics.EventsApplied)
	}
}

// TestRoundTripEveryPolicy is the acceptance core at the library level:
// under every fsync policy, a session that lived through churn (plus a
// drift-repair cycle) is recovered serving the identical version, value,
// configuration, active set and metrics. Graceful close flushes the queues,
// so all three policies must recover everything.
func TestRoundTripEveryPolicy(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			s := openStack(t, dir, policy, 1000)
			snap := mustCreate(t, s, 11)
			in := testInstance(11)
			events := session.GenerateEvents(in.NumUsers(), in.NumItems, 30, 99)
			applyAll(t, s, snap.ID, events, 7)
			// A repair cycle may or may not swap (margin -1 swaps on any
			// strict improvement); either way the log must reproduce it.
			s.mgr.RepairAll(context.Background())
			before, err := s.mgr.Snapshot(snap.ID)
			if err != nil {
				t.Fatal(err)
			}
			s.close()

			s2, recs := reopen(t, dir, policy, 1000)
			defer s2.close()
			if len(recs) != 1 {
				t.Fatalf("recovered %d sessions, want 1", len(recs))
			}
			after, err := s2.mgr.Snapshot(snap.ID)
			if err != nil {
				t.Fatal(err)
			}
			assertSameSession(t, before, after)
			if st := s2.mgr.Stats(); st.Restored != 1 {
				t.Fatalf("manager restored counter = %d, want 1", st.Restored)
			}
			// The recovered session keeps serving: another event and another
			// restart must still round-trip (the WAL continues past the
			// restored tail). A rebalance is valid against any active set.
			res, err := s2.mgr.Apply(snap.ID, []session.Event{{Type: session.EventRebalance, MaxPasses: 2}})
			if err != nil {
				t.Fatal(err)
			}
			before2, err := s2.mgr.Snapshot(snap.ID)
			if err != nil {
				t.Fatal(err)
			}
			if res.Version != before.Version+1 {
				t.Fatalf("post-recovery event went to v%d, want v%d", res.Version, before.Version+1)
			}
			s2.close()
			s3, recs3 := reopen(t, dir, policy, 1000)
			defer s3.close()
			if len(recs3) != 1 {
				t.Fatalf("second recovery found %d sessions, want 1", len(recs3))
			}
			after2, err := s3.mgr.Snapshot(snap.ID)
			if err != nil {
				t.Fatal(err)
			}
			assertSameSession(t, before2, after2)
		})
	}
}

// TestSnapshotCompactionBoundsTail: with a small snapshot cadence, recovery
// replays only the post-snapshot tail — the whole point of compaction — and
// the stats prove it.
func TestSnapshotCompactionBoundsTail(t *testing.T) {
	dir := t.TempDir()
	s := openStack(t, dir, SyncOff, 8)
	snap := mustCreate(t, s, 12)
	in := testInstance(12)
	events := session.GenerateEvents(in.NumUsers(), in.NumItems, 32, 7)
	applyAll(t, s, snap.ID, events, 5)
	// Batches land at 5,10,15,20,25,30,32; cuts fire when ≥8 events
	// accumulated: at 10, 20, 30. Tail after the last cut: one record of 2.
	s.st.Barrier()
	wrote := s.st.Stats()
	if wrote.Snapshots < 4 { // create + 3 cuts
		t.Fatalf("snapshots written = %d, want ≥ 4", wrote.Snapshots)
	}
	if wrote.Compactions != wrote.Snapshots {
		t.Fatalf("every snapshot must compact: %d snapshots, %d compactions", wrote.Snapshots, wrote.Compactions)
	}
	s.close()

	s2, recs := reopen(t, dir, SyncOff, 8)
	defer s2.close()
	if len(recs) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(recs))
	}
	if recs[0].State.Version != 32 {
		t.Fatalf("recovered version %d, want 32", recs[0].State.Version)
	}
	st := s2.st.Stats()
	if st.ReplayedRecords != 1 || st.ReplayedEvents != 2 {
		t.Fatalf("recovery replayed %d records / %d events, want 1 / 2 (tail only)",
			st.ReplayedRecords, st.ReplayedEvents)
	}
	if recs[0].SinceSnapshot != 0 {
		t.Fatalf("SinceSnapshot = %d, want 0 (recovery re-baselines)", recs[0].SinceSnapshot)
	}
	// Recovery re-baselined: the next startup replays nothing at all.
	s2.close()
	s3, recs3 := reopen(t, dir, SyncOff, 8)
	defer s3.close()
	if len(recs3) != 1 || recs3[0].State.Version != 32 {
		t.Fatalf("re-baselined recovery found %d sessions at v%d, want 1 at v32", len(recs3), recs3[0].State.Version)
	}
	if st := s3.st.Stats(); st.ReplayedRecords != 0 || st.SkippedRecords != 0 || st.Snapshots != 0 {
		t.Fatalf("clean recovery replayed %d / skipped %d / rewrote %d snapshots, want 0 / 0 / 0 (no needless re-baseline)",
			st.ReplayedRecords, st.SkippedRecords, st.Snapshots)
	}
}

// TestTombstones: deleted and TTL-evicted sessions leave nothing to
// recover — the eviction satellite's contract.
func TestTombstones(t *testing.T) {
	dir := t.TempDir()
	backend, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(Options{Backend: backend, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Workers: 2})
	defer eng.Close()
	// TTL long enough that the create/apply/delete sequence below cannot be
	// swept out from under the test (it has flaked at 1ms under -race), yet
	// short enough to wait out.
	const ttl = 500 * time.Millisecond
	mgr, err := session.NewManager(session.Options{
		Engine:    eng,
		Persister: st,
		TTL:       ttl,
	})
	if err != nil {
		t.Fatal(err)
	}
	deleted := func() session.Snapshot {
		snap, _, err := mgr.CreateWith(context.Background(), testInstance(13), session.CreateSpec{})
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}()
	evicted := func() session.Snapshot {
		snap, _, err := mgr.CreateWith(context.Background(), testInstance(14), session.CreateSpec{})
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}()
	if _, err := mgr.Apply(deleted.ID, []session.Event{{Type: session.EventRebalance}}); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Delete(deleted.ID); err != nil {
		t.Fatal(err)
	}
	// Wait out the TTL; the background sweep (or our manual call) must
	// evict the survivor.
	deadline := time.Now().Add(10 * ttl)
	for mgr.Stats().Evicted != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("evicted %d sessions, want 1 (%s)", mgr.Stats().Evicted, evicted.ID)
		}
		time.Sleep(20 * time.Millisecond)
		mgr.EvictIdle()
	}
	mgr.Close()
	st.Barrier()
	if got := st.Stats().Tombstones; got != 2 {
		t.Fatalf("tombstones = %d, want 2", got)
	}
	st.Close()

	backend2, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Options{Backend: backend2, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	recs, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("recovered %d tombstoned sessions, want 0", len(recs))
	}
	// The sweep reclaimed the directories too.
	entries, err := os.ReadDir(filepath.Join(dir, "sessions"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("%d session directories survived their tombstones", len(entries))
	}
}

func walPath(dir, id string) string { return filepath.Join(dir, "sessions", id, "wal") }

// TestTornTailRecovery: a WAL whose last frame is torn (the crash-mid-append
// shape) recovers to the last intact record — and that prefix state matches
// a fresh offline replay of exactly that many events, the prefix-consistency
// contract.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStack(t, dir, SyncOff, 1000) // no cuts: keep every record in the WAL
	snap := mustCreate(t, s, 15)
	in := testInstance(15)
	events := session.GenerateEvents(in.NumUsers(), in.NumItems, 24, 5)
	applyAll(t, s, snap.ID, events, 4) // 6 records of 4 events
	s.close()

	// Tear mid-way into the last frame.
	raw, err := os.ReadFile(walPath(dir, snap.ID))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath(dir, snap.ID), raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, recs := reopen(t, dir, SyncOff, 1000)
	defer s2.close()
	if len(recs) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(recs))
	}
	if got := s2.st.Stats().TornTails; got != 1 {
		t.Fatalf("torn tails = %d, want 1", got)
	}
	gotVersion := recs[0].State.Version
	if want := uint64(20); gotVersion != want {
		t.Fatalf("recovered version %d, want %d (last intact record)", gotVersion, want)
	}
	// Prefix consistency: rebuild from scratch and replay exactly that many
	// events; the recovered session must match bit for bit.
	sol, err := s2.eng.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := core.NewDynamicSession(in, sol.Config, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := session.Replay(ds, events[:gotVersion]); err != nil {
		t.Fatal(err)
	}
	after, err := s2.mgr.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.Value != ds.Value() {
		t.Fatalf("recovered value %v != offline prefix replay %v", after.Value, ds.Value())
	}

	// The tear must be HEALED, not just tolerated: recovery re-baselines
	// the log, so events applied after a torn-tail recovery land in a clean
	// WAL. (Before the re-baseline fix, O_APPEND put them after the torn
	// bytes — durably written yet invisible to the next recovery.)
	res, err := s2.mgr.Apply(snap.ID, []session.Event{{Type: session.EventRebalance, MaxPasses: 1}})
	if err != nil {
		t.Fatal(err)
	}
	s2.close()
	s3, recs3 := reopen(t, dir, SyncOff, 1000)
	defer s3.close()
	if len(recs3) != 1 {
		t.Fatalf("post-tear recovery found %d sessions, want 1", len(recs3))
	}
	if got := recs3[0].State.Version; got != res.Version {
		t.Fatalf("post-tear event lost: recovered v%d, want v%d", got, res.Version)
	}
	if st := s3.st.Stats(); st.TornTails != 0 {
		t.Fatalf("tear survived the re-baseline: torn tails = %d", st.TornTails)
	}
}

// TestRecoveryRejectsLyingLog: an intact, well-framed record whose content
// cannot replay (an event on a user that was never active) must fail that
// session's recovery — counted, not served wrong, and not fatal to the
// store as a whole.
func TestRecoveryRejectsLyingLog(t *testing.T) {
	dir := t.TempDir()
	s := openStack(t, dir, SyncOff, 1000)
	good := mustCreate(t, s, 16)
	bad := mustCreate(t, s, 17)
	in := testInstance(16)
	events := session.GenerateEvents(in.NumUsers(), in.NumItems, 10, 3)
	applyAll(t, s, good.ID, events, 5)
	badRes := applyAll(t, s, bad.ID, session.GenerateEvents(in.NumUsers(), in.NumItems, 6, 4), 3)
	s.close()

	// Append a perfectly framed record that lies: it continues the version
	// chain but names a user the session never had.
	lie, err := json.Marshal(walRecord{
		Kind: walEvents, From: badRes.Version, To: badRes.Version + 1,
		Events: []session.Event{{Type: session.EventLeave, User: 9999}},
		Value:  badRes.Value,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(walPath(dir, bad.ID), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(appendFrame(nil, lie)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, recs := reopen(t, dir, SyncOff, 1000)
	defer s2.close()
	if len(recs) != 1 || recs[0].State.ID != good.ID {
		t.Fatalf("recovered %d sessions, want only %s", len(recs), good.ID)
	}
	st := s2.st.Stats()
	if st.RecoveryErrors != 1 || st.RecoveredSessions != 1 {
		t.Fatalf("recovery stats errors=%d recovered=%d, want 1/1", st.RecoveryErrors, st.RecoveredSessions)
	}
}

// TestCrashBetweenSnapshotAndTruncate: records at-or-behind the snapshot
// version (the shape a crash between WriteSnapshot and Truncate leaves) are
// skipped, not replayed twice.
func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	s := openStack(t, dir, SyncOff, 1000)
	snap := mustCreate(t, s, 18)
	in := testInstance(18)
	events := session.GenerateEvents(in.NumUsers(), in.NumItems, 12, 9)
	applyAll(t, s, snap.ID, events, 6)
	before, err := s.mgr.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	s.st.Barrier()

	// Simulate the torn compaction: stash the WAL, let the final-state
	// snapshot land (via a fresh cut on close? no — craft it directly):
	// write the CURRENT state as the snapshot while the WAL still holds all
	// 12 events' records.
	raw, err := os.ReadFile(walPath(dir, snap.ID))
	if err != nil {
		t.Fatal(err)
	}
	s.close()
	// The graceful close did not cut a snapshot (cadence 1000), so the
	// on-disk image is still the creation snapshot + full WAL. Recover once
	// to obtain the end state, write it as the snapshot, and put the FULL
	// WAL back — snapshot covers everything, WAL duplicates it.
	s2, recs := reopen(t, dir, SyncOff, 1000)
	if len(recs) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(recs))
	}
	stateSnap, err := json.Marshal(snapshotFromState(recs[0].State))
	if err != nil {
		t.Fatal(err)
	}
	s2.close()
	if err := os.WriteFile(filepath.Join(dir, "sessions", snap.ID, "snapshot"), appendFrame(nil, stateSnap), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath(dir, snap.ID), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s3, recs3 := reopen(t, dir, SyncOff, 1000)
	defer s3.close()
	if len(recs3) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(recs3))
	}
	st := s3.st.Stats()
	if st.SkippedRecords == 0 {
		t.Fatalf("no records skipped; the stale WAL was replayed onto the snapshot")
	}
	if st.ReplayedRecords != 0 {
		t.Fatalf("replayed %d records, want 0 (snapshot covers the whole log)", st.ReplayedRecords)
	}
	after, err := s3.mgr.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSession(t, before, after)
}

// TestRecycledIDAfterTombstone: opening a tombstoned id starts clean — the
// old session's log cannot leak into a new session that happens to reuse
// the id.
func TestRecycledIDAfterTombstone(t *testing.T) {
	dir := t.TempDir()
	backend, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	log1, err := backend.Open("s1")
	if err != nil {
		t.Fatal(err)
	}
	if err := log1.Append([]byte("old-life")); err != nil {
		t.Fatal(err)
	}
	if err := log1.WriteSnapshot([]byte("old-snap")); err != nil {
		t.Fatal(err)
	}
	log1.Close()
	if err := backend.Tombstone("s1"); err != nil {
		t.Fatal(err)
	}
	log2, err := backend.Open("s1")
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	records, torn, err := log2.ReadWAL()
	if err != nil || torn != nil || len(records) != 0 {
		t.Fatalf("recycled id inherited %d records (torn=%v, err=%v)", len(records), torn, err)
	}
	snap, err := log2.ReadSnapshot()
	if err != nil || snap != nil {
		t.Fatalf("recycled id inherited a snapshot (%q, err=%v)", snap, err)
	}
}

// TestStoreStress races concurrent event streams, snapshot cuts, deletes
// and barriers across sessions sharing writer shards, then recovers and
// verifies every survivor. It runs in the -short lane on purpose — that is
// the CI lane with -race, and the store's whole job is ordering under
// concurrency.
func TestStoreStress(t *testing.T) {
	dir := t.TempDir()
	s := openStack(t, dir, SyncOff, 4) // hot snapshot cadence: constant compaction
	const sessions = 6
	type ses struct {
		snap   session.Snapshot
		seed   uint64
		events []session.Event
	}
	var all []*ses
	for i := 0; i < sessions; i++ {
		seed := uint64(40 + i)
		in := testInstance(seed)
		snap, _, err := s.mgr.CreateWith(context.Background(), in, session.CreateSpec{})
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, &ses{
			snap:   snap,
			seed:   seed,
			events: session.GenerateEvents(in.NumUsers(), in.NumItems, 30, seed),
		})
	}
	var wg sync.WaitGroup
	for _, se := range all {
		wg.Add(1)
		go func(se *ses) {
			defer wg.Done()
			for at := 0; at < len(se.events); at += 3 {
				end := min(at+3, len(se.events))
				if _, err := s.mgr.Apply(se.snap.ID, se.events[at:end]); err != nil {
					t.Errorf("session %s: %v", se.snap.ID, err)
					return
				}
			}
		}(se)
	}
	wg.Add(1)
	go func() { // barriers racing the writers
		defer wg.Done()
		for i := 0; i < 5; i++ {
			s.st.Barrier()
			_ = s.st.Stats()
		}
	}()
	wg.Wait()
	// Delete one session; it must not come back.
	if err := s.mgr.Delete(all[0].snap.ID); err != nil {
		t.Fatal(err)
	}
	finals := make(map[string]session.Snapshot)
	for _, se := range all[1:] {
		snap, err := s.mgr.Snapshot(se.snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		finals[se.snap.ID] = snap
	}
	s.close()

	s2, recs := reopen(t, dir, SyncOff, 4)
	defer s2.close()
	if len(recs) != sessions-1 {
		t.Fatalf("recovered %d sessions, want %d", len(recs), sessions-1)
	}
	if st := s2.st.Stats(); st.RecoveryErrors != 0 {
		t.Fatalf("recovery errors: %d", st.RecoveryErrors)
	}
	for id, before := range finals {
		after, err := s2.mgr.Snapshot(id)
		if err != nil {
			t.Fatal(err)
		}
		assertSameSession(t, before, after)
	}
}

// faultLog wraps a real Log and fails Append on demand, optionally
// reporting the failure as unhealable (ErrPoisoned).
type faultLog struct {
	Log
	failNext *atomic.Int32 // >0: fail that many appends
	poisoned bool          // report failures as ErrPoisoned
	appends  *atomic.Int32
}

func (f *faultLog) Append(p []byte) error {
	if f.failNext.Load() > 0 {
		f.failNext.Add(-1)
		if f.poisoned {
			return fmt.Errorf("injected: %w", ErrPoisoned)
		}
		return fmt.Errorf("injected transient append failure")
	}
	f.appends.Add(1)
	return f.Log.Append(p)
}

type faultBackend struct {
	*FS
	failNext atomic.Int32
	poisoned bool
	appends  atomic.Int32
}

func (b *faultBackend) Open(id string) (Log, error) {
	log, err := b.FS.Open(id)
	if err != nil {
		return nil, err
	}
	return &faultLog{Log: log, failNext: &b.failNext, poisoned: b.poisoned, appends: &b.appends}, nil
}

// TestPoisonedLogStopsAppendsUntilSnapshot: after an append failure that
// may have left a mid-log tear, the store must NOT keep appending (those
// records would be invisible behind the tear at recovery) — it drops and
// counts them until a snapshot+truncate rebuilds the log, after which
// appends flow again and recovery serves the snapshot-consistent state.
func TestPoisonedLogStopsAppendsUntilSnapshot(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	backend := &faultBackend{FS: fs, poisoned: true}
	st, err := Open(Options{Backend: backend, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Workers: 2})
	defer eng.Close()
	mgr, err := session.NewManager(session.Options{Engine: eng, Persister: st, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	snap, _, err := mgr.CreateWith(context.Background(), testInstance(19), session.CreateSpec{})
	if err != nil {
		t.Fatal(err)
	}
	rebalance := []session.Event{{Type: session.EventRebalance, MaxPasses: 1}}
	apply := func() {
		t.Helper()
		if _, err := mgr.Apply(snap.ID, rebalance); err != nil {
			t.Fatal(err)
		}
	}
	apply() // v1: durable
	st.Barrier()
	backend.failNext.Store(1)
	apply() // v2: poisons the log
	apply() // v3: MUST be dropped, not appended past the (possible) tear
	st.Barrier()
	if got := backend.appends.Load(); got != 1 {
		t.Fatalf("%d records appended to a poisoned log, want 1 (pre-poison only)", got)
	}
	stt := st.Stats()
	if stt.IOErrors != 2 { // the failed append + the dropped one
		t.Fatalf("ioErrors = %d, want 2", stt.IOErrors)
	}
	apply() // v4: snapshot cadence (4 transitions) cuts here, rebuilding the log
	apply() // v5: appends flow again
	st.Barrier()
	if got := st.Stats().Snapshots; got < 2 { // create + the healing cut
		t.Fatalf("snapshots = %d, want ≥ 2", got)
	}
	if got := backend.appends.Load(); got != 2 {
		t.Fatalf("appends after healing = %d, want 2 (pre-poison + post-snapshot)", got)
	}
	before, err := mgr.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	mgr.Close()
	st.Close()

	s2, recs := reopen(t, dir, SyncOff, 4)
	defer s2.close()
	if len(recs) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(recs))
	}
	after, err := s2.mgr.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	// v2/v3 were lost to the fault (the documented degradation); everything
	// from the healing snapshot on — v4, v5 — must be served exactly.
	assertSameSession(t, before, after)
}

// TestTransientAppendFailureQuarantines: a failed append — even one whose
// truncate-back left the FILE clean (the ENOSPC shape) — is a hole in the
// version chain, so the store must stop appending: a later record
// continuing past the gap would make recovery reject the ENTIRE session
// (From != version), turning a transient blip into permanent total loss.
// With no snapshot to heal the log, recovery must serve the pre-failure
// prefix exactly.
func TestTransientAppendFailureQuarantines(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	backend := &faultBackend{FS: fs, poisoned: false}
	st, err := Open(Options{Backend: backend, Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Workers: 2})
	defer eng.Close()
	mgr, err := session.NewManager(session.Options{Engine: eng, Persister: st, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	snap, _, err := mgr.CreateWith(context.Background(), testInstance(20), session.CreateSpec{})
	if err != nil {
		t.Fatal(err)
	}
	rebalance := []session.Event{{Type: session.EventRebalance, MaxPasses: 1}}
	if _, err := mgr.Apply(snap.ID, rebalance); err != nil { // v1 durable
		t.Fatal(err)
	}
	st.Barrier()
	before, err := mgr.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	backend.failNext.Store(1)
	if _, err := mgr.Apply(snap.ID, rebalance); err != nil { // v2 lost (gap)
		t.Fatal(err)
	}
	if _, err := mgr.Apply(snap.ID, rebalance); err != nil { // v3 MUST be dropped, not appended past the gap
		t.Fatal(err)
	}
	st.Barrier()
	if got := backend.appends.Load(); got != 1 {
		t.Fatalf("appends = %d, want 1 (v1 only; the chain is broken at v2)", got)
	}
	mgr.Close()
	st.Close()

	s2, recs := reopen(t, dir, SyncOff, -1)
	defer s2.close()
	if len(recs) != 1 {
		t.Fatalf("recovered %d sessions, want 1 (the durable v1 prefix)", len(recs))
	}
	if got := s2.st.Stats().RecoveryErrors; got != 0 {
		t.Fatalf("recovery errors = %d, want 0", got)
	}
	after, err := s2.mgr.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSession(t, before, after)
}
