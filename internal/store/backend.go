package store

import "errors"

// Backend is the durable medium behind a Store: per-session append-only
// logs plus atomically replaceable snapshots, with tombstones marking
// deliberately ended sessions. The Store layers record semantics, fsync
// policy, compaction and recovery on top; a Backend only moves bytes. The
// filesystem backend (NewFS) is the first implementation; the interface is
// deliberately small so an embedded-KV or replicated backend can follow
// without touching the Store.
//
// A Backend must tolerate crashes at any point: List must never return a
// tombstoned session, Open must start a tombstoned id from a clean slate,
// and a half-written snapshot must be invisible (the filesystem backend
// uses write-to-temp + rename).
type Backend interface {
	// List returns the ids of every persisted, non-tombstoned session.
	List() ([]string, error)
	// Open opens (creating if absent) one session's durable state. Opening
	// a tombstoned id clears the stale state first — the id is being
	// legitimately reused.
	Open(id string) (Log, error)
	// Tombstone durably marks a session ended and releases its log and
	// snapshot. After a tombstone, List omits the id and Open starts fresh.
	Tombstone(id string) error
	// Close releases the backend. Logs must be closed first.
	Close() error
}

// ErrPoisoned wraps an Append failure that may have left a torn frame
// MID-log (the write failed partway and truncating back to the pre-append
// length also failed). Appending past such a tear would write records —
// fsynced, acknowledged records — that recovery can never see, because the
// reader stops at the first bad frame. The Store stops appending to a
// poisoned log until a snapshot+truncate rebuilds it clean.
var ErrPoisoned = errors.New("store: log poisoned by a partial append")

// Log is one session's durable state: a framed write-ahead log plus at most
// one snapshot. Implementations need not be safe for concurrent use — the
// Store serializes all access to one session's Log on its owning shard.
type Log interface {
	// Append durably queues one record payload at the log's end (framed,
	// CRC-protected). Durability against a machine crash requires Sync. On
	// error the log must be exactly as it was before the call; when that
	// cannot be guaranteed (a partial write that could not be truncated
	// back), the error wraps ErrPoisoned.
	Append(payload []byte) error
	// Sync forces every appended record and the current snapshot to stable
	// storage.
	Sync() error
	// ReadWAL returns every intact record payload in append order, plus a
	// Corruption report when the log ends in a torn frame. A torn tail is
	// data loss bounded by the fsync policy, not an error.
	ReadWAL() ([][]byte, *Corruption, error)
	// Truncate discards the whole WAL (records up to the just-written
	// snapshot — the Store only truncates immediately after WriteSnapshot).
	Truncate() error
	// WriteSnapshot atomically replaces the snapshot with payload: after a
	// crash, ReadSnapshot returns either the old or the new image, never a
	// mix.
	WriteSnapshot(payload []byte) error
	// ReadSnapshot returns the current snapshot payload, or nil when none
	// has ever been written.
	ReadSnapshot() ([]byte, error)
	// Close releases the log's resources. The Store reopens on demand.
	Close() error
}
