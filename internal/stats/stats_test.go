package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFenwickBasics(t *testing.T) {
	f := NewFenwick(5)
	if f.Len() != 5 {
		t.Fatalf("Len = %d, want 5", f.Len())
	}
	f.Set(0, 1)
	f.Set(2, 3)
	f.Set(4, 0.5)
	if got := f.Total(); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("Total = %v, want 4.5", got)
	}
	f.Set(2, 1) // overwrite, not add
	if got := f.Total(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Total after overwrite = %v, want 2.5", got)
	}
	if got := f.Get(2); got != 1 {
		t.Errorf("Get(2) = %v, want 1", got)
	}
	f.Set(0, -3) // negative clamps to zero
	if got := f.Get(0); got != 0 {
		t.Errorf("Get(0) after negative set = %v, want 0", got)
	}
}

func TestFenwickTotalMatchesNaiveSum(t *testing.T) {
	err := quick.Check(func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		f := NewFenwick(len(vals))
		var want float64
		for i, v := range vals {
			v = math.Abs(math.Mod(v, 100))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			f.Set(i, v)
			want += v
		}
		return math.Abs(f.Total()-want) < 1e-6*(1+want)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestFenwickSampleDistribution(t *testing.T) {
	f := NewFenwick(4)
	f.Set(0, 1)
	f.Set(1, 0)
	f.Set(2, 3)
	f.Set(3, 0)
	r := NewRand(1)
	counts := make([]int, 4)
	const trials = 20000
	for i := 0; i < trials; i++ {
		idx, err := f.Sample(r)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	if counts[1] != 0 || counts[3] != 0 {
		t.Errorf("zero-weight indices sampled: %v", counts)
	}
	got := float64(counts[2]) / float64(counts[0])
	if got < 2.7 || got > 3.3 {
		t.Errorf("weight-3/weight-1 sampling ratio = %.3f, want ≈ 3", got)
	}
}

func TestFenwickSampleEmpty(t *testing.T) {
	f := NewFenwick(3)
	if _, err := f.Sample(NewRand(1)); err == nil {
		t.Error("sampling an all-zero tree succeeded, want error")
	}
}

func TestPearsonKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect linear Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("anti-linear Pearson = %v, want -1", got)
	}
	if got := Pearson(xs, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Errorf("constant-series Pearson = %v, want 0", got)
	}
	if got := Pearson(xs, ys[:3]); got != 0 {
		t.Errorf("mismatched-length Pearson = %v, want 0", got)
	}
}

func TestRanksWithTies(t *testing.T) {
	ranks := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if ranks[i] != want[i] {
			t.Errorf("ranks = %v, want %v", ranks, want)
			break
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{1, 4, 9, 16, 25, 36} // monotone but nonlinear
	if got := Spearman(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Errorf("monotone Spearman = %v, want 1", got)
	}
}

func TestTwoSampleTPValue(t *testing.T) {
	same := []float64{1, 2, 3, 4, 5, 1, 2, 3, 4, 5}
	if p := TwoSampleTPValue(same, same); p < 0.9 {
		t.Errorf("identical samples p = %v, want ≈ 1", p)
	}
	lo := []float64{1, 1.1, 0.9, 1, 1.05, 0.95, 1.02, 0.98}
	hi := []float64{3, 3.1, 2.9, 3, 3.05, 2.95, 3.02, 2.98}
	if p := TwoSampleTPValue(lo, hi); p > 0.001 {
		t.Errorf("separated samples p = %v, want ≈ 0", p)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if q := c.Quantile(0); q != 1 {
		t.Errorf("Quantile(0) = %v, want 1", q)
	}
	if q := c.Quantile(1); q != 3 {
		t.Errorf("Quantile(1) = %v, want 3", q)
	}
	if q := c.Quantile(0.5); q < 1 || q > 3 {
		t.Errorf("Quantile(0.5) = %v out of sample range", q)
	}
	pts := c.Points([]float64{0, 2})
	if pts[0][1] != 0 || pts[1][1] != 0.75 {
		t.Errorf("Points = %v", pts)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.05, 0.15, 0.15, 0.95, -1, 2}, 0, 1, 10)
	if h[0] != 2 { // 0.05 and the clamped -1
		t.Errorf("bin 0 = %d, want 2", h[0])
	}
	if h[1] != 2 {
		t.Errorf("bin 1 = %d, want 2", h[1])
	}
	if h[9] != 2 { // 0.95 and the clamped 2
		t.Errorf("bin 9 = %d, want 2", h[9])
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	r := NewRand(3)
	for _, alpha := range []float64{0.05, 0.3, 1, 5} {
		v := Dirichlet(r, 8, alpha)
		var sum float64
		for _, x := range v {
			if x < 0 {
				t.Fatalf("Dirichlet(α=%v) produced negative coordinate %v", alpha, x)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("Dirichlet(α=%v) sums to %v", alpha, sum)
		}
	}
}

func TestGammaMean(t *testing.T) {
	r := NewRand(4)
	const shape = 2.5
	var sum float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		g := Gamma(r, shape)
		if g < 0 {
			t.Fatalf("negative gamma draw %v", g)
		}
		sum += g
	}
	mean := sum / trials
	if mean < shape*0.95 || mean > shape*1.05 {
		t.Errorf("Gamma(%v) sample mean %v, want ≈ %v", shape, mean, shape)
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(100, 1.0)
	var sum float64
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("Zipf weights sum %v, want 100", sum)
	}
	if w[0] <= w[50] {
		t.Errorf("Zipf not decreasing: w[0]=%v w[50]=%v", w[0], w[50])
	}
	u := ZipfWeights(10, 0)
	for _, x := range u {
		if math.Abs(x-1) > 1e-12 {
			t.Errorf("Zipf s=0 not uniform: %v", u)
			break
		}
	}
}

func TestBetaRangeAndMean(t *testing.T) {
	r := NewRand(5)
	var sum float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		b := Beta(r, 2.6, 2.2)
		if b < 0 || b > 1 {
			t.Fatalf("Beta out of range: %v", b)
		}
		sum += b
	}
	mean := sum / trials
	want := 2.6 / (2.6 + 2.2)
	if math.Abs(mean-want) > 0.01 {
		t.Errorf("Beta mean %v, want ≈ %v", mean, want)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(6)
	p := Perm(r, 50)
	seen := make([]bool, 50)
	for _, x := range p {
		if x < 0 || x >= 50 || seen[x] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[x] = true
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRand(42).Float64() == c.Float64() {
			continue
		}
		same = false
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(-1, 0, 1) != 0 || Clamp(2, 0, 1) != 1 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}
