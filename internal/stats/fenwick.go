package stats

import (
	"fmt"
	"math/rand/v2"
)

// Fenwick is a binary indexed tree over non-negative float64 weights.
//
// It supports point updates, prefix sums and weighted sampling in O(log n).
// AVG uses it to sample focal (item, slot) pairs proportionally to the
// maintained maximum utility factors (the advanced focal-parameter sampling
// scheme of the paper, Observation 3).
type Fenwick struct {
	tree []float64 // 1-based
	vals []float64 // current point values, 0-based
}

// NewFenwick returns a Fenwick tree with n zero weights.
func NewFenwick(n int) *Fenwick {
	return &Fenwick{tree: make([]float64, n+1), vals: make([]float64, n)}
}

// Len returns the number of weights.
func (f *Fenwick) Len() int { return len(f.vals) }

// Set replaces the weight at index i. Negative weights are clamped to zero:
// sampling weights are utility factors, which are non-negative by
// construction, so a tiny negative value can only arise from floating-point
// round-off.
func (f *Fenwick) Set(i int, w float64) {
	if w < 0 {
		w = 0
	}
	delta := w - f.vals[i]
	if delta == 0 {
		return
	}
	f.vals[i] = w
	for j := i + 1; j <= len(f.vals); j += j & (-j) {
		f.tree[j] += delta
	}
}

// Get returns the weight at index i.
func (f *Fenwick) Get(i int) float64 { return f.vals[i] }

// Total returns the sum of all weights.
func (f *Fenwick) Total() float64 { return f.prefix(len(f.vals)) }

// prefix returns the sum of weights in [0, n).
func (f *Fenwick) prefix(n int) float64 {
	var s float64
	for ; n > 0; n -= n & (-n) {
		s += f.tree[n]
	}
	return s
}

// Sample draws an index with probability proportional to its weight.
// It reports an error when the total weight is not positive.
func (f *Fenwick) Sample(r *rand.Rand) (int, error) {
	total := f.Total()
	if total <= 0 {
		return 0, fmt.Errorf("stats: sampling from empty weight tree (total=%g)", total)
	}
	target := r.Float64() * total
	// Descend the implicit tree: classic Fenwick lower_bound on prefix sums.
	idx := 0
	bit := 1
	for bit<<1 <= len(f.vals) {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		next := idx + bit
		if next <= len(f.vals) && f.tree[next] < target {
			target -= f.tree[next]
			idx = next
		}
	}
	if idx >= len(f.vals) {
		idx = len(f.vals) - 1
	}
	// Accumulated round-off can land on a zero-weight slot; walk to the next
	// positive weight to keep the sampler total-preserving.
	for i := 0; i < len(f.vals); i++ {
		j := (idx + i) % len(f.vals)
		if f.vals[j] > 0 {
			return j, nil
		}
	}
	return 0, fmt.Errorf("stats: no positive weight found despite total=%g", total)
}
