package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when either series is constant or the lengths differ.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Ranks returns the fractional ranks of xs (average rank for ties),
// with rank 1 for the smallest value.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie block [i, j].
		avg := float64(i+j)/2 + 1
		for t := i; t <= j; t++ {
			ranks[idx[t]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns the Spearman rank correlation between xs and ys.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// TwoSampleTPValue returns an approximate two-sided p-value for the
// difference in means of two samples using Welch's t statistic with a normal
// tail approximation. The user-study analysis (paper §6.9) only needs the
// "p ≤ 0.05" significance call, for which this approximation is adequate.
func TwoSampleTPValue(xs, ys []float64) float64 {
	nx, ny := float64(len(xs)), float64(len(ys))
	if nx < 2 || ny < 2 {
		return 1
	}
	mx, my := Mean(xs), Mean(ys)
	return twoSidedNormalP(welchT(xs, ys, mx, my, nx, ny))
}

func welchT(xs, ys []float64, mx, my, nx, ny float64) float64 {
	var vx, vy float64
	for _, x := range xs {
		d := x - mx
		vx += d * d
	}
	for _, y := range ys {
		d := y - my
		vy += d * d
	}
	vx /= nx - 1
	vy /= ny - 1
	se := math.Sqrt(vx/nx + vy/ny)
	if se == 0 {
		return 0
	}
	return (mx - my) / se
}

func twoSidedNormalP(t float64) float64 {
	// 2 * (1 - Phi(|t|)) via the complementary error function.
	return math.Erfc(math.Abs(t) / math.Sqrt2)
}
