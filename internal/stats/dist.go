package stats

import (
	"math"
	"math/rand/v2"
)

// Gamma draws from a Gamma(shape, 1) distribution using the
// Marsaglia–Tsang squeeze method (with the shape<1 boost).
func Gamma(r *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) · U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return Gamma(r, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet draws a probability vector from Dirichlet(alpha, ..., alpha) of
// the given dimension. Small alpha concentrates the mass on few coordinates.
func Dirichlet(r *rand.Rand, dim int, alpha float64) []float64 {
	v := make([]float64, dim)
	var sum float64
	for i := range v {
		v[i] = Gamma(r, alpha)
		sum += v[i]
	}
	if sum == 0 {
		// Degenerate draw (possible for very small alpha in float64):
		// fall back to a single spike.
		v[r.IntN(dim)] = 1
		return v
	}
	for i := range v {
		v[i] /= sum
	}
	return v
}

// ZipfWeights returns n weights w_i ∝ 1/(i+1)^s normalized to sum to n
// (so a weight of 1 is "average popularity"). s=0 gives uniform weights.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] = w[i] / sum * float64(n)
	}
	return w
}

// Beta draws from a Beta(a, b) distribution.
func Beta(r *rand.Rand, a, b float64) float64 {
	x := Gamma(r, a)
	y := Gamma(r, b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Clamp bounds x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
