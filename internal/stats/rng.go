// Package stats provides the small numerical substrate shared by the SVGIC
// library: deterministic random streams, a Fenwick tree with weighted
// sampling (used by AVG's advanced focal-parameter sampling), rank
// correlations and empirical distributions (used by the evaluation harness),
// and summary helpers.
package stats

import "math/rand/v2"

// NewRand returns a deterministic random stream for the given seed.
//
// Every randomized component in the library takes an explicit seed so that
// experiments, tests and benchmarks are exactly reproducible.
func NewRand(seed uint64) *rand.Rand {
	// The second PCG word is a fixed odd constant so distinct seeds produce
	// well-separated streams.
	return rand.New(rand.NewPCG(seed, seed*0x9e3779b97f4a7c15+0xda942042e4dd58b5))
}

// Perm fills a permutation of [0, n) using r.
func Perm(r *rand.Rand, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
