package stats

import "sort"

// CDF is an empirical cumulative distribution over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs (which it copies).
func NewCDF(xs []float64) *CDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns the fraction of sample points ≤ x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (q in [0,1]) of the sample.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	pos := q * float64(len(c.sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(c.sorted) {
		return c.sorted[lo]
	}
	return c.sorted[lo]*(1-frac) + c.sorted[lo+1]*frac
}

// Points returns (x, F(x)) pairs sampled at the given x grid, suitable for
// plotting a CDF curve like the regret-ratio figures of the paper.
func (c *CDF) Points(grid []float64) [][2]float64 {
	out := make([][2]float64, len(grid))
	for i, x := range grid {
		out[i] = [2]float64{x, c.At(x)}
	}
	return out
}

// Histogram counts the sample points of xs falling into nbins equal-width
// bins over [lo, hi]; values outside the range are clamped to the end bins.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	counts := make([]int, nbins)
	if nbins == 0 || hi <= lo {
		return counts
	}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}
