package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression policy: a finding is silenced only by a staticcheck-style
//
//	//lint:ignore <check>[,<check>…] <justification>
//
// directive on the flagged line or the line directly above it, with a
// non-empty justification. There are deliberately no flag-level or
// file-level disables — every suppression is a reviewed, justified call
// site, visible in the diff that introduces it.

// Directive is one parsed //lint:ignore comment.
type Directive struct {
	Line   int
	Checks []string
	Reason string
}

// DirectivesFor extracts the //lint:ignore directives of one file, keyed by
// the line the directive sits on.
func DirectivesFor(fset *token.FileSet, file *ast.File) map[int]Directive {
	var out map[int]Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			d := Directive{Line: fset.Position(c.Pos()).Line}
			if len(fields) > 0 {
				d.Checks = strings.Split(fields[0], ",")
			}
			if len(fields) > 1 {
				d.Reason = strings.Join(fields[1:], " ")
			}
			if out == nil {
				out = make(map[int]Directive)
			}
			out[d.Line] = d
		}
	}
	return out
}

// matches reports whether the directive names one of the given checks and
// carries a justification. A directive without a justification suppresses
// nothing — the policy requires the why, not just the what.
func (d Directive) matches(names ...string) bool {
	if d.Reason == "" {
		return false
	}
	for _, c := range d.Checks {
		for _, n := range names {
			if c == n {
				return true
			}
		}
	}
	return false
}

// SanctionedAt reports whether a directive for one of the named checks
// covers the given line: the directive sits on the line itself (a trailing
// comment) or on the line directly above.
func SanctionedAt(dirs map[int]Directive, line int, names ...string) bool {
	if d, ok := dirs[line]; ok && d.matches(names...) {
		return true
	}
	if d, ok := dirs[line-1]; ok && d.matches(names...) {
		return true
	}
	return false
}
