// Package analysistest runs an analyzer against testdata fixture packages and
// checks its diagnostics against `// want` expectations, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract:
//
//	bad := solve(x) // want `solver call .* while s\.mu is held`
//
// Each want comment holds one or more quoted Go strings (interpreted or
// backquoted), each a regexp that must match exactly one diagnostic reported
// on that line. Diagnostics without a matching want, and wants without a
// matching diagnostic, both fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"github.com/svgic/svgic/internal/analysis"
)

// TestData returns the caller package's testdata directory.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: cannot locate caller")
	}
	dir, err := filepath.Abs(filepath.Join(filepath.Dir(file), "testdata"))
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each fixture package from testdata/src/<path>, executes the
// analyzer (suppression filtering included, exactly as the driver would), and
// compares diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := analysis.NewFixtureLoader(filepath.Join(testdata, "src"))
	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := analysis.Run(pkg, loader.Facts, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		failures, err := Check(pkg, diags)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range failures {
			t.Error(f)
		}
	}
}

// expectation is one want regexp, with a flag for single-use matching.
type expectation struct {
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// Check compares the diagnostics against the fixture's want comments and
// returns one failure per mismatch, in both directions — diagnostics no want
// matched AND wants no diagnostic matched. The symmetry is load-bearing: an
// analyzer that silently stops reporting must fail its fixtures, not pass
// them by default. The error return is reserved for malformed fixtures (bad
// want syntax or regexps); Run turns each failure into a t.Error.
func Check(pkg *analysis.Package, diags []analysis.Diagnostic) ([]string, error) {
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*expectation)
	var order []key // failure output follows source order, not map order
	for _, file := range pkg.Files {
		fname := pkg.Fset.File(file.Pos()).Name()
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				raws, err := parseWants(fname, pkg.Fset, c)
				if err != nil {
					return nil, err
				}
				for _, raw := range raws {
					rx, err := regexp.Compile(raw.pattern)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", fname, raw.line, raw.pattern, err)
					}
					k := key{fname, raw.line}
					if len(wants[k]) == 0 {
						order = append(order, k)
					}
					wants[k] = append(wants[k], &expectation{rx: rx, raw: raw.pattern})
				}
			}
		}
	}
	var failures []string
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		found := false
		for _, exp := range wants[k] {
			if !exp.matched && exp.rx.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			failures = append(failures, fmt.Sprintf("%s:%d: unexpected diagnostic: [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message))
		}
	}
	for _, k := range order {
		for _, exp := range wants[k] {
			if !exp.matched {
				failures = append(failures, fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, exp.raw))
			}
		}
	}
	return failures, nil
}

type rawWant struct {
	line    int
	pattern string
}

// parseWants extracts the quoted patterns of a `// want "..."` comment. The
// expectations anchor to the comment's own line.
func parseWants(fname string, fset *token.FileSet, c *ast.Comment) ([]rawWant, error) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil, nil
	}
	line := fset.Position(c.Pos()).Line
	var out []rawWant
	rest = strings.TrimSpace(rest)
	for rest != "" {
		var lit string
		switch rest[0] {
		case '"':
			end := matchInterpreted(rest)
			if end < 0 {
				return nil, fmt.Errorf("%s:%d: unterminated want string: %s", fname, line, rest)
			}
			lit = rest[:end]
			rest = rest[end:]
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("%s:%d: unterminated want raw string: %s", fname, line, rest)
			}
			lit = rest[:end+2]
			rest = rest[end+2:]
		default:
			return nil, fmt.Errorf("%s:%d: want expects quoted regexps, got: %s", fname, line, rest)
		}
		pattern, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad want literal %s: %v", fname, line, lit, err)
		}
		out = append(out, rawWant{line: line, pattern: pattern})
		rest = strings.TrimSpace(rest)
	}
	return out, nil
}

// matchInterpreted returns the index just past the closing quote of the
// interpreted string literal at the start of s, or -1.
func matchInterpreted(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i + 1
		}
	}
	return -1
}
