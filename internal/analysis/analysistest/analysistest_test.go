package analysistest_test

import (
	"go/ast"
	"strings"
	"testing"

	"github.com/svgic/svgic/internal/analysis"
	"github.com/svgic/svgic/internal/analysis/analysistest"
)

// marktest is a minimal analyzer used only to exercise the harness: it
// reports "mark call" at every call to a function literally named mark, and
// "mark arg" at each argument, so a single fixture line can carry several
// diagnostics.
var marktest = &analysis.Analyzer{
	Name: "marktest",
	Doc:  "harness self-test: reports mark calls and their arguments",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
					pass.Reportf(call.Pos(), "mark call")
					for _, arg := range call.Args {
						pass.Reportf(arg.Pos(), "mark arg")
					}
				}
				return true
			})
		}
		return nil
	},
}

// TestMultipleWantsPerLine proves that several quoted patterns on one want
// comment each consume a distinct diagnostic from that line.
func TestMultipleWantsPerLine(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), marktest, "harness")
}

// TestCheckReportsBothDirections runs Check directly against a fixture that
// is wrong in both ways — a diagnostic with no want and a want with no
// diagnostic — and asserts each produces its own failure. Run cannot be used
// here: it would (correctly) fail the test.
func TestCheckReportsBothDirections(t *testing.T) {
	loader := analysis.NewFixtureLoader(analysistest.TestData() + "/src")
	pkg, err := loader.Load("harnessmismatch")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.Run(pkg, loader.Facts, []*analysis.Analyzer{marktest})
	if err != nil {
		t.Fatalf("running marktest: %v", err)
	}

	failures, err := analysistest.Check(pkg, diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 2 {
		t.Fatalf("Check returned %d failures, want 2:\n%s", len(failures), strings.Join(failures, "\n"))
	}
	if !strings.Contains(failures[0], "unexpected diagnostic: [marktest] mark call") {
		t.Errorf("first failure should flag the unmatched diagnostic, got %q", failures[0])
	}
	if !strings.Contains(failures[1], `expected diagnostic matching "never reported", got none`) {
		t.Errorf("second failure should flag the unmatched want, got %q", failures[1])
	}
}

// TestCheckCleanFixture pins the zero-failure path: matched wants produce no
// failures and no error.
func TestCheckCleanFixture(t *testing.T) {
	loader := analysis.NewFixtureLoader(analysistest.TestData() + "/src")
	pkg, err := loader.Load("harness")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.Run(pkg, loader.Facts, []*analysis.Analyzer{marktest})
	if err != nil {
		t.Fatalf("running marktest: %v", err)
	}
	failures, err := analysistest.Check(pkg, diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Errorf("Check on a clean fixture returned failures:\n%s", strings.Join(failures, "\n"))
	}
}
