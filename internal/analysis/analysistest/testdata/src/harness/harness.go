// Package harness is a self-test fixture for the analysistest harness itself.
// The marktest analyzer (defined in analysistest_test.go) reports "mark call"
// at every call to mark and "mark arg" at every argument, so one source line
// can carry several diagnostics — exercising the harness's multi-pattern
// matching rather than any real analyzer.
package harness

func mark(args ...int) {}

func one() {
	mark() // want "mark call"
}

func twoOnOneLine() {
	mark(1) // want "mark call" "mark arg"
}

func threeOnOneLine() {
	mark(1, 2) // want "mark call" "mark arg" `mark arg`
}

func none() {
	_ = 1
}
