// Package harnessmismatch is a deliberately failing fixture: it carries one
// diagnostic with no want and one want with no diagnostic. The harness's own
// tests feed it through Check directly and assert that BOTH directions are
// reported — it must never be run through analysistest.Run.
package harnessmismatch

func mark(args ...int) {}

func unmatchedDiagnostic() {
	mark()
}

func unmatchedWant() {
	_ = 1 // want "never reported"
}
