// Package cloneescape is the fixture for the deep-clone-before-store
// analyzer. DynamicSession/Adopt reproduce the historical Leave aliasing bug
// shape: a constructor stored the caller's instance/configuration pointer
// raw, so later caller-side mutation changed session state in place.
package cloneescape

// Instance mirrors core.Instance: cloneable input data.
type Instance struct {
	Items []int
}

// Clone deep-copies the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{Items: make([]int, len(in.Items))}
	copy(out.Items, in.Items)
	return out
}

// Configuration mirrors core.Configuration.
type Configuration struct {
	Groups [][]int
}

// Clone deep-copies the configuration.
func (c *Configuration) Clone() *Configuration {
	out := &Configuration{Groups: make([][]int, len(c.Groups))}
	for i, g := range c.Groups {
		out.Groups[i] = append([]int(nil), g...)
	}
	return out
}

// Options has no Clone method: storing it raw is not this analyzer's
// business.
type Options struct {
	Cap int
}

// DynamicSession mirrors core.DynamicSession.
type DynamicSession struct {
	in   *Instance
	conf *Configuration
	opts *Options
}

// NewDynamicSession is the buggy historical shape: the instance escapes raw
// into the session while the configuration is cloned properly.
func NewDynamicSession(in *Instance, conf *Configuration) *DynamicSession {
	return &DynamicSession{
		in:   in, // want `NewDynamicSession stores parameter in into a struct literal without Clone`
		conf: conf.Clone(),
	}
}

// NewDynamicSessionClean is the fixed shape.
func NewDynamicSessionClean(in *Instance, conf *Configuration) *DynamicSession {
	return &DynamicSession{
		in:   in.Clone(),
		conf: conf.Clone(),
	}
}

// Adopt is the buggy field-assignment shape.
func (s *DynamicSession) Adopt(conf *Configuration) {
	s.conf = conf // want `Adopt stores parameter conf into a field without Clone`
}

// AdoptClean is the fixed field-assignment shape.
func (s *DynamicSession) AdoptClean(conf *Configuration) {
	s.conf = conf.Clone()
}

// Configure stores a non-cloneable pointer: allowed.
func (s *DynamicSession) Configure(opts *Options) {
	s.opts = opts
}

// Peek only reads from the parameter: allowed.
func (s *DynamicSession) Peek(in *Instance) int {
	if len(in.Items) == 0 {
		return 0
	}
	return in.Items[0]
}

// newScratch is unexported: internal borrows of read-only references are the
// callee's and caller's shared business, not the analyzer's.
func newScratch(in *Instance) *DynamicSession {
	return &DynamicSession{in: in}
}

var _ = newScratch
