package cloneescape_test

import (
	"testing"

	"github.com/svgic/svgic/internal/analysis/analysistest"
	"github.com/svgic/svgic/internal/analysis/cloneescape"
)

func TestCloneEscape(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), cloneescape.Analyzer, "cloneescape")
}
