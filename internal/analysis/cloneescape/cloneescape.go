// Package cloneescape enforces the deep-clone-before-store rule for
// cloneable inputs: an exported function or method that receives a pointer to
// a Clone-able type (*core.Instance, *core.Configuration, …) must not store
// that pointer into a struct field as-is — it must store a Clone. Storing the
// raw pointer aliases caller-owned memory into long-lived state, which is
// exactly the historical `Leave` bug: a dynamic session adopted a caller's
// configuration, the caller kept mutating it, and the session's state changed
// out from under it.
//
// Unexported helpers are exempt: internal scratch structs (solver round
// state, engine task envelopes) deliberately borrow read-only references, and
// their callers are in the same review unit.
package cloneescape

import (
	"go/ast"
	"go/types"

	"github.com/svgic/svgic/internal/analysis"
)

// Analyzer is the cloneescape check.
var Analyzer = &analysis.Analyzer{
	Name: "cloneescape",
	Doc: "report exported constructors and adopt-style methods that store a cloneable pointer parameter " +
		"(a *T where T has a Clone method) into a struct field without calling Clone first",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() || pass.InTestFile(fd.Pos()) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// The parameters under watch: pointer-to-named types carrying a Clone
	// method. (Value parameters are copies already; non-cloneable pointers
	// have no sanctioned deep-copy to demand.)
	params := make(map[types.Object]string)
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && cloneable(obj.Type()) {
				params[obj] = name.Name
			}
		}
	}
	if len(params) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || !isFieldSel(pass.TypesInfo, sel) {
					continue
				}
				if name, ok := paramRef(pass.TypesInfo, params, n.Rhs[i]); ok {
					pass.Reportf(n.Rhs[i].Pos(),
						"%s stores parameter %s into a field without Clone; the caller keeps a mutable alias — store %s.Clone()",
						fd.Name.Name, name, name)
				}
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok {
				return true
			}
			if _, isStruct := tv.Type.Underlying().(*types.Struct); !isStruct {
				return true
			}
			for _, elt := range n.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if name, ok := paramRef(pass.TypesInfo, params, val); ok {
					pass.Reportf(val.Pos(),
						"%s stores parameter %s into a struct literal without Clone; the caller keeps a mutable alias — store %s.Clone()",
						fd.Name.Name, name, name)
				}
			}
		}
		return true
	})
}

// paramRef reports whether expr is a bare reference to one of the watched
// parameters (a Clone() call, a field read, or any other derivation is fine —
// only the raw pointer escaping is the bug).
func paramRef(info *types.Info, params map[types.Object]string, expr ast.Expr) (string, bool) {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return "", false
	}
	name, ok := params[info.Uses[id]]
	return name, ok
}

func isFieldSel(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}

// cloneable reports whether t is *T for a named T whose method set includes
// Clone.
func cloneable(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	if _, ok := ptr.Elem().(*types.Named); !ok {
		return false
	}
	ms := types.NewMethodSet(ptr)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == "Clone" {
			return true
		}
	}
	return false
}
