package analysis

import (
	"strings"
	"testing"
)

// The concurrency facts are computed by ComputePackageFacts as a side effect
// of loading; the analyzer fixtures double as inputs here, so the shapes
// under test are exactly the ones the analyzers' own self-tests exercise.

func TestLockFactsFromFixture(t *testing.T) {
	l := NewFixtureLoader("lockorder/testdata/src")
	if _, err := l.Load("lockcycle"); err != nil {
		t.Fatalf("loading fixture: %v", err)
	}

	// markClean's lock acquisition must be recorded as a fact, and sweep —
	// which only locks Session.mu through markClean — must inherit it.
	for fn, want := range map[string][]string{
		"lockcycle.Session.markClean": {"lockcycle.Session.mu"},
		"lockcycle.shard.sweep":       {"lockcycle.Session.mu", "lockcycle.shard.mu"},
		"lockcycle.Session.touch":     {"lockcycle.Session.mu", "lockcycle.shard.mu"},
	} {
		got := l.Facts.m[fn].Locks
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("%s Locks = %v, want %v", fn, got, want)
		}
	}

	// The acquisition-order graph must contain the cycle's two edges and the
	// one-way coordination edge, each anchored to a real line.
	edges := make(map[string]string)
	for _, e := range l.Facts.LockEdges() {
		edges[e.From+" -> "+e.To] = e.Pos
	}
	for _, want := range []string{
		"lockcycle.shard.mu -> lockcycle.Session.mu",
		"lockcycle.Session.mu -> lockcycle.shard.mu",
		"lockcycle.Session.outMu -> lockcycle.Session.mu",
	} {
		pos, ok := edges[want]
		if !ok {
			t.Errorf("edge %q missing from graph %v", want, edges)
			continue
		}
		if !strings.HasPrefix(pos, "lockcycle.go:") {
			t.Errorf("edge %q anchored at %q, want lockcycle.go:<line>", want, pos)
		}
	}
	if got := len(edges); got != 3 {
		t.Errorf("graph has %d edges, want 3: %v", got, edges)
	}
}

func TestLifecycleFactsFromFixture(t *testing.T) {
	l := NewFixtureLoader("goleak/testdata/src")
	if _, err := l.Load("goleak/engine"); err != nil {
		t.Fatalf("loading fixture: %v", err)
	}

	// loop Dones the owner WaitGroup and selects on the closed done channel;
	// flush only reaches Done through the finish helper — the WGDone fact
	// must propagate through the intra-package fixpoint.
	for fn, wantWG := range map[string][]string{
		"goleak/engine.Owner.loop":   {"engine.Owner.wg"},
		"goleak/engine.Owner.finish": {"engine.Owner.wg"},
		"goleak/engine.Owner.flush":  {"engine.Owner.wg"},
	} {
		got := l.Facts.m[fn].WGDone
		if strings.Join(got, ",") != strings.Join(wantWG, ",") {
			t.Errorf("%s WGDone = %v, want %v", fn, got, wantWG)
		}
	}
	for fn, want := range map[string]bool{
		"goleak/engine.Owner.loop":  true,  // selects on Owner.done, closed by Close
		"goleak/engine.Owner.watch": true,  // likewise
		"goleak/engine.Pool.drain":  true,  // ranges over Pool.ch, closed by Close
		"goleak/engine.Owner.poke":  false, // plain increment
	} {
		if got := l.Facts.m[fn].Terminates; got != want {
			t.Errorf("%s Terminates = %v, want %v", fn, got, want)
		}
	}
}
