// Package lockorder detects potential deadlocks: cycles in the program-wide
// lock-acquisition-order graph.
//
// Every package contributes edges "lock class To is acquired while class
// From is held" — computed flow-sensitively (the shared internal/analysis/flow
// engine), including acquisitions made transitively through calls in this or
// any other package (the callee's Locks fact). The edges travel program-wide
// through the facts table; this analyzer walks the current package's own
// acquisitions and, for each one that closes a cycle in the global graph,
// reports the full acquisition chain with one file:line anchor per edge.
//
// Lock classes are receiver-scoped (`session.shard.mu`, `engine.Engine.mu`):
// a cycle between classes means two goroutines can interleave the same two
// locks in opposite orders, whichever instances they hold — the
// shard-sweep-vs-session-lock shape. A self-edge (a class acquired while
// another instance of the same class is held) is reported as a one-edge
// cycle: without a documented instance order it is the same hazard.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"github.com/svgic/svgic/internal/analysis"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "report cycles in the program-wide lock-acquisition-order graph as potential deadlocks, " +
		"with the full acquisition chain (file:line per edge); acquire lock classes in one fixed global order",
	Run: run,
}

func run(pass *analysis.Pass) error {
	var prod []*ast.File
	for _, file := range pass.Files {
		if !pass.InTestFile(file.Pos()) {
			prod = append(prod, file)
		}
	}
	local := analysis.CollectLockEdges(pass.TypesInfo, prod, pass.Facts)
	if len(local) == 0 {
		return nil
	}

	// The program-wide graph: every edge any processed package contributed,
	// the current package's included (facts run before analyzers).
	adj := make(map[string][]analysis.LockEdge)
	for _, e := range pass.Facts.LockEdges() {
		adj[e.From] = append(adj[e.From], e)
	}

	// One anchor per distinct (from, to) the current package acquires: the
	// first occurrence in source order.
	type pair struct{ from, to string }
	anchor := make(map[pair]token.Pos)
	for _, e := range local {
		k := pair{e.From, e.To}
		if cur, ok := anchor[k]; !ok || e.Pos < cur {
			anchor[k] = e.Pos
		}
	}
	pairs := make([]pair, 0, len(anchor))
	for k := range anchor {
		pairs = append(pairs, k)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].from != pairs[j].from {
			return pairs[i].from < pairs[j].from
		}
		return pairs[i].to < pairs[j].to
	})

	// For each local edge u→v, a shortest path v⇝u in the global graph
	// closes a cycle. Each distinct cycle (canonicalized by rotating its
	// class sequence) is reported once per package, at the first local edge
	// that exposes it.
	reported := make(map[string]bool)
	for _, p := range pairs {
		back, ok := shortestPath(adj, p.to, p.from)
		if !ok {
			continue
		}
		cycle := append([]analysis.LockEdge{globalEdge(adj, p.from, p.to)}, back...)
		classes := make([]string, len(cycle))
		for i, e := range cycle {
			classes[i] = e.From
		}
		key := canonical(classes)
		if reported[key] {
			continue
		}
		reported[key] = true

		chain := make([]string, len(cycle))
		var msg strings.Builder
		msg.WriteString("lock-order cycle (potential deadlock): ")
		msg.WriteString(cycle[0].From)
		for i, e := range cycle {
			chain[i] = fmt.Sprintf("%s -> %s (%s)", e.From, e.To, e.Pos)
			fmt.Fprintf(&msg, " -> %s (%s)", e.To, e.Pos)
		}
		msg.WriteString("; acquire these lock classes in one fixed order")
		pass.ReportChain(anchor[p], chain, msg.String())
	}
	return nil
}

// globalEdge returns the graph's edge from→to (it exists: the local
// observation put it there), carrying the canonical position label.
func globalEdge(adj map[string][]analysis.LockEdge, from, to string) analysis.LockEdge {
	for _, e := range adj[from] {
		if e.To == to {
			return e
		}
	}
	return analysis.LockEdge{From: from, To: to, Pos: "?"}
}

// shortestPath BFS-walks the edge graph from src to dst and returns the edge
// path. src == dst returns an empty path (the cycle is the single edge the
// caller already holds).
func shortestPath(adj map[string][]analysis.LockEdge, src, dst string) ([]analysis.LockEdge, bool) {
	if src == dst {
		return nil, true
	}
	prev := make(map[string]analysis.LockEdge)
	queue := []string{src}
	seen := map[string]bool{src: true}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range adj[u] {
			if seen[e.To] {
				continue
			}
			seen[e.To] = true
			prev[e.To] = e
			if e.To == dst {
				var path []analysis.LockEdge
				for at := dst; at != src; at = prev[at].From {
					path = append(path, prev[at])
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path, true
			}
			queue = append(queue, e.To)
		}
	}
	return nil, false
}

// canonical keys a cycle independent of its starting point: rotate the class
// sequence to begin at the lexicographically smallest class.
func canonical(classes []string) string {
	min := 0
	for i := range classes {
		if classes[i] < classes[min] {
			min = i
		}
	}
	return strings.Join(append(append([]string(nil), classes[min:]...), classes[:min]...), "|")
}
