// Package lockcycle reproduces the shard-sweep-vs-session-lock ordering bug:
// the sweeper walks the shard table under shard.mu and locks each session,
// while the touch path locks the session first and then reaches back to its
// shard. Two goroutines interleaving those paths deadlock.
package lockcycle

import "sync"

// Session mirrors the real session shape: mu guards state, outMu is the
// outbox coordination lock.
type Session struct {
	mu    sync.Mutex
	outMu sync.Mutex
	sh    *shard
	dirty bool
	out   []int
}

type shard struct {
	mu       sync.Mutex
	sessions map[string]*Session
}

// sweep walks the shard under shard.mu, locking each session through a
// helper — the shard.mu -> Session.mu edge arrives transitively, via the
// helper's Locks fact.
func (sh *shard) sweep() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, s := range sh.sessions {
		s.markClean()
	}
}

func (s *Session) markClean() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dirty = false
}

// touch takes the same two locks in the opposite order: Session.mu first,
// then the owning shard's. Together with sweep this closes the cycle, and
// the diagnostic carries the full acquisition chain.
func (s *Session) touch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sh.mu.Lock() // want `lock-order cycle \(potential deadlock\): lockcycle\.Session\.mu -> lockcycle\.shard\.mu \(lockcycle\.go:\d+\) -> lockcycle\.Session\.mu \(lockcycle\.go:\d+\); acquire these lock classes in one fixed order`
	s.sh.mu.Unlock()
}

// evictSnapshot is the sanctioned sweep shape: snapshot the sessions under
// shard.mu, release it, then lock sessions one at a time. No nesting, no
// edge, no finding.
func (sh *shard) evictSnapshot() {
	sh.mu.Lock()
	snapshot := make([]*Session, 0, len(sh.sessions))
	for _, s := range sh.sessions {
		snapshot = append(snapshot, s)
	}
	sh.mu.Unlock()
	for _, s := range snapshot {
		s.markClean()
	}
}

// drain holds the coordination lock while taking the state lock — a one-way
// outMu -> mu edge with no reverse path, so it stays acyclic and silent.
func (s *Session) drain() {
	s.outMu.Lock()
	defer s.outMu.Unlock()
	for range s.out {
		s.mu.Lock()
		s.dirty = true
		s.mu.Unlock()
	}
	s.out = s.out[:0]
}
