// Package reglib is a fixture dependency: its lock facts (Bump acquires
// Registry.Mu) must travel across the package boundary for the cross-package
// cycle in the main fixture to close.
package reglib

import "sync"

// Registry exposes its lock so callers can pin the registry across a
// multi-step update — the exported-mutex API shape that makes cross-package
// lock ordering the caller's problem.
type Registry struct {
	Mu sync.Mutex
	n  int
}

// Bump locks the registry internally.
func (r *Registry) Bump() {
	r.Mu.Lock()
	r.n++
	r.Mu.Unlock()
}

// Len never locks: calling it under any lock adds no edge.
func (r *Registry) Len() int { return r.n }
