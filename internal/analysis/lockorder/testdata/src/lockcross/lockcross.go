// Package lockcross closes a lock-order cycle across a package boundary:
// fill holds the cache lock while calling into reglib (whose fact says Bump
// acquires Registry.Mu), and evict pins the registry's exported lock before
// taking the cache lock. Neither package sees both edges in its own source —
// only the program-wide graph assembled from facts does.
package lockcross

import (
	"sync"

	"lockcross/reglib"
)

// Cache fronts a shared registry.
type Cache struct {
	mu  sync.Mutex
	reg *reglib.Registry
	hot int
}

// fill refreshes under the cache lock; the cross-package call acquires the
// registry lock transitively. The cycle is anchored here because this edge
// is the first (in class order) that this package contributes to it.
func (c *Cache) fill() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg.Bump() // want `lock-order cycle \(potential deadlock\): lockcross\.Cache\.mu -> reglib\.Registry\.Mu \(lockcross\.go:\d+\) -> lockcross\.Cache\.mu \(lockcross\.go:\d+\); acquire these lock classes in one fixed order`
	c.hot++
}

// evict pins the registry first, then takes the cache lock: the reverse
// order.
func (c *Cache) evict() {
	c.reg.Mu.Lock()
	defer c.reg.Mu.Unlock()
	c.mu.Lock()
	c.hot = 0
	c.mu.Unlock()
}

// stats reads the registry under the cache lock through a non-locking
// callee: no edge, no finding.
func (c *Cache) stats() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reg.Len()
}
