package lockorder_test

import (
	"testing"

	"github.com/svgic/svgic/internal/analysis/analysistest"
	"github.com/svgic/svgic/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "lockcycle", "lockcross")
}
