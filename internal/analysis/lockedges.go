package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"

	"github.com/svgic/svgic/internal/analysis/flow"
)

// This file derives lock-acquisition-order edges: "lock class To is acquired
// at Pos while lock class From is held". The edges from every package,
// carried program-wide through the facts table, form the acquisition-order
// graph whose cycles the lockorder analyzer reports as potential deadlocks.

// LockEdgeAt is one held→acquired observation in the package under analysis,
// anchored to the acquisition (or the call that transitively acquires).
type LockEdgeAt struct {
	From, To string
	Pos      token.Pos
}

// CollectLockEdges flow-walks every function declaration in files and
// returns all lock-order edges: direct acquisitions made while another class
// is held, plus — for every call made under held locks — one edge per class
// the callee's fact says it synchronously acquires. The facts table must
// already hold final Locks for every resolvable callee, including the
// current package's own functions. `go`-spawned literal bodies contribute
// edges too (a goroutine orders its own acquisitions) but start from a fresh
// held set: the spawner's locks are not held on the new goroutine.
func CollectLockEdges(info *types.Info, files []*ast.File, facts *Facts) []LockEdgeAt {
	c := &edgeCollector{info: info, facts: facts, class: make(map[string]string)}
	for _, file := range files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				flow.Walk(fd.Body, c.hooks())
			}
		}
	}
	return c.edges
}

type edgeCollector struct {
	info  *types.Info
	facts *Facts
	class map[string]string // flow key (receiver expression) → lock class
	edges []LockEdgeAt
}

func (c *edgeCollector) hooks() flow.Hooks {
	return flow.Hooks{
		Classify: func(call *ast.CallExpr) (string, flow.Op) {
			key, class, op := MutexOp(c.info, call)
			if op != flow.None {
				c.class[key] = class
			}
			return key, op
		},
		OnAcquire: func(call *ast.CallExpr, key string, held flow.Set) {
			to := c.class[key]
			for _, from := range c.heldClasses(held) {
				c.edges = append(c.edges, LockEdgeAt{From: from, To: to, Pos: call.Pos()})
			}
		},
		OnCall: func(call *ast.CallExpr, held flow.Set) {
			if len(held) == 0 {
				return
			}
			fact := c.facts.Of(Callee(c.info, call))
			if len(fact.Locks) == 0 {
				return
			}
			froms := c.heldClasses(held)
			for _, to := range fact.Locks {
				for _, from := range froms {
					c.edges = append(c.edges, LockEdgeAt{From: from, To: to, Pos: call.Pos()})
				}
			}
		},
		OnGo: func(g *ast.GoStmt, _ flow.Set) {
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				flow.Walk(lit.Body, c.hooks())
			}
		},
	}
}

// heldClasses maps the held flow keys to their distinct lock classes, sorted.
func (c *edgeCollector) heldClasses(held flow.Set) []string {
	seen := make(map[string]bool)
	var out []string
	for _, k := range held.Keys() {
		if class := c.class[k]; class != "" && !seen[class] {
			seen[class] = true
			out = append(out, class)
		}
	}
	sort.Strings(out)
	return out
}

// PosLabel renders a position as "file.go:line" — the compact per-edge
// anchor carried in lock-order facts and printed in diagnostic chains.
func PosLabel(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}
