// Package analysis is the repo's static-analysis framework: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// API surface that svgiclint's checkers are written against.
//
// Six PRs of growth piled up invariants that existed only in comments and
// reviewer memory: solver calls must happen outside session/shard state
// locks, instances must be deep-cloned before a constructor stores them,
// serving paths must thread context.Context, and workload randomness must
// flow from an explicit seed. The analyzer suite under this directory turns
// each of those into a mechanical, CI-gated check (see docs/STATIC_ANALYSIS.md
// for the catalogue).
//
// Why not golang.org/x/tools itself? The repo deliberately has zero
// third-party dependencies, and the build environment cannot fetch any. The
// subset re-implemented here — Analyzer, Pass, Reportf, a package loader, an
// analysistest-style fixture harness and the `go vet -vettool` JSON-config
// protocol — is exactly what the five project checkers need; if the module
// ever grows an x/tools dependency, the analyzers port over almost verbatim
// because the API shape is the same.
//
// Cross-package knowledge (which functions transitively reach a solver,
// which symbols are deprecated) travels as serialized per-function Facts
// rather than shared ASTs, so the same analyzers run identically in the
// in-process driver, in the analysistest harness, and as separate `go vet`
// compilation units.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check. The suite's analyzers are
// package-level singletons (e.g. locksolve.Analyzer), composed by the
// cmd/svgiclint driver.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by `svgiclint -list`.
	Doc string
	// Aliases are additional directive names that suppress this analyzer's
	// diagnostics (nodeprecated honors the staticcheck name SA1019, so one
	// directive satisfies both tools at a sanctioned call site).
	Aliases []string
	// NoAutoSuppress opts the analyzer out of the runner's generic
	// //lint:ignore filtering: the analyzer interprets directives itself
	// (nodeprecated must see them to tell sanctioned suppressions from new
	// ones, rather than having the runner hide the call sites from it).
	NoAutoSuppress bool
	// Run performs the check over one package and reports findings through
	// the pass.
	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is the accumulated cross-package function-fact table; it always
	// includes the current package's own functions.
	Facts *Facts

	diags *[]Diagnostic
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the runner
	// Chain is the step-by-step evidence for findings that are paths rather
	// than points — lockorder fills it with the acquisition chain, one
	// "from -> to (file.go:line)" entry per edge. Carried into -json output.
	Chain []string
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// ReportChain reports a finding whose evidence is a chain of steps. The
// message should already summarize the chain — plain-text output prints only
// the message; the structured chain additionally travels in -json mode.
func (p *Pass) ReportChain(pos token.Pos, chain []string, message string) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  message,
		Analyzer: p.Analyzer.Name,
		Chain:    chain,
	})
}

// InTestFile reports whether pos lies in a _test.go file. Most analyzers
// exempt test files: tests legitimately use context.Background and exercise
// deliberately unexported shapes. nodeprecated does NOT exempt them — the
// sanctioned deprecated-wrapper call sites live in tests.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// PkgPathHasSuffix reports whether a package import path ends in one of the
// given path segments ("session" matches both the repo's
// ".../internal/session" and a fixture's "example.com/session"). Analyzers
// scope themselves by suffix so the same check logic runs against the real
// tree and against self-contained testdata packages.
func PkgPathHasSuffix(path string, suffixes ...string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// SortDiagnostics orders findings by file position, then message, for stable
// output.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Message < diags[j].Message
	})
}
