// Package locksolve enforces the repo's "solve outside the lock" rule: no
// solver entry point (Solve/Solve*) and no Persister durability hook may be
// reachable — directly or through a helper, in this package or another — while
// a session/shard state mutex is held.
//
// The project's lock-naming convention scopes the check: state mutexes are
// fields or variables named exactly `mu` (Session.mu, shard.mu). Coordination
// locks with descriptive names (outMu, algoMu, encMu, closeMu) deliberately do
// not count — draining an outbox under outMu is the designed pattern, solving
// under s.mu is the deadlock-and-latency bug this analyzer exists to stop.
package locksolve

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"github.com/svgic/svgic/internal/analysis"
)

// Analyzer is the locksolve check.
var Analyzer = &analysis.Analyzer{
	Name: "locksolve",
	Doc: "report solver or persistence calls reachable while a session/shard state mutex (a `mu`-named sync lock) is held; " +
		"snapshot under the lock, solve outside it, re-validate on re-lock",
	Run: run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			c.funcBody(fd.Body, make(map[string]bool))
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	// deferred collects the `defer mu.Unlock()` keys of the function (or
	// function literal) currently being walked. Within the function the lock
	// stays held — deferred releases run at return — so the keys are removed
	// from the held set only when funcBody finishes the walk.
	deferred map[string]bool
}

// funcBody walks one function's body: deferred unlocks keep their locks held
// for the whole walk, then release them from the (caller-shared, for IIFEs)
// held set when the function returns.
func (c *checker) funcBody(b *ast.BlockStmt, held map[string]bool) {
	prev := c.deferred
	c.deferred = make(map[string]bool)
	c.block(b, held)
	for k := range c.deferred {
		delete(held, k)
	}
	c.deferred = prev
}

// block walks statements in source order, threading the set of held locks.
// Branch bodies get copies of the set: a lock taken or released inside a
// branch does not leak into the statements after it.
func (c *checker) block(b *ast.BlockStmt, held map[string]bool) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		c.stmt(s, held)
	}
}

func (c *checker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		c.block(s, held)
	case *ast.ExprStmt:
		c.expr(s.X, held)
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the lock held to the end of the enclosing
		// function, where funcBody releases it. Any other deferred call runs
		// before the function returns, so it is checked like a synchronous
		// call.
		if key, op := c.lockOp(s.Call); op != "" {
			if op == "unlock" {
				c.deferred[key] = true
			}
			return
		}
		c.expr(s.Call, held)
	case *ast.GoStmt:
		// The spawned call runs on its own goroutine, which does not hold the
		// caller's locks — but the receiver and argument expressions evaluate
		// synchronously, on the caller's path.
		if sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok {
			c.expr(sel.X, held)
		}
		for _, arg := range s.Call.Args {
			if _, isLit := ast.Unparen(arg).(*ast.FuncLit); !isLit {
				c.expr(arg, held)
			}
		}
	case *ast.IfStmt:
		c.stmt(s.Init, held)
		c.expr(s.Cond, held)
		c.block(s.Body, copyHeld(held))
		c.stmt(s.Else, copyHeld(held))
	case *ast.ForStmt:
		c.stmt(s.Init, held)
		c.expr(s.Cond, held)
		inner := copyHeld(held)
		c.block(s.Body, inner)
		c.stmt(s.Post, inner)
	case *ast.RangeStmt:
		c.expr(s.X, held)
		c.block(s.Body, copyHeld(held))
	case *ast.SwitchStmt:
		c.stmt(s.Init, held)
		c.expr(s.Tag, held)
		c.caseBodies(s.Body, held)
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init, held)
		c.stmt(s.Assign, held)
		c.caseBodies(s.Body, held)
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			inner := copyHeld(held)
			c.stmt(cc.Comm, inner)
			for _, bs := range cc.Body {
				c.stmt(bs, inner)
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e, held)
		}
		for _, e := range s.Lhs {
			c.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						c.expr(e, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		c.expr(s.Chan, held)
		c.expr(s.Value, held)
	case *ast.IncDecStmt:
		c.expr(s.X, held)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held)
	}
}

func (c *checker) caseBodies(body *ast.BlockStmt, held map[string]bool) {
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.expr(e, held)
			}
			stmts = cl.Body
		case *ast.CommClause:
			stmts = cl.Body
		}
		inner := copyHeld(held)
		for _, s := range stmts {
			c.stmt(s, inner)
		}
	}
}

// expr walks an expression in evaluation order, updating the held set for
// lock/unlock calls and reporting solve/persist calls made while it is
// non-empty. Function-literal bodies are walked with the current held set:
// an immediately-invoked literal runs inline, and a stored closure is
// conservatively assumed to be called where it is built.
func (c *checker) expr(e ast.Expr, held map[string]bool) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		if key, op := c.lockOp(e); op != "" {
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				c.expr(sel.X, held)
			}
			if op == "lock" {
				held[key] = true
			} else {
				delete(held, key)
			}
			return
		}
		for _, arg := range e.Args {
			c.expr(arg, held)
		}
		if lit, ok := ast.Unparen(e.Fun).(*ast.FuncLit); ok {
			// An IIFE runs inline on the caller's path: it shares the held
			// set, so locks it takes or releases (including its deferred
			// unlocks, applied at its return) carry over to the code after it.
			c.funcBody(lit.Body, held)
			return
		}
		c.expr(e.Fun, held)
		c.checkCall(e, held)
	case *ast.FuncLit:
		// A literal that is not invoked on the spot: conservatively walked as
		// if called here (a stored closure usually is), but on a copy of the
		// held set — its lock traffic must not leak into the enclosing flow.
		c.funcBody(e.Body, copyHeld(held))
	case *ast.ParenExpr:
		c.expr(e.X, held)
	case *ast.SelectorExpr:
		c.expr(e.X, held)
	case *ast.BinaryExpr:
		c.expr(e.X, held)
		c.expr(e.Y, held)
	case *ast.UnaryExpr:
		c.expr(e.X, held)
	case *ast.StarExpr:
		c.expr(e.X, held)
	case *ast.IndexExpr:
		c.expr(e.X, held)
		c.expr(e.Index, held)
	case *ast.SliceExpr:
		c.expr(e.X, held)
		c.expr(e.Low, held)
		c.expr(e.High, held)
		c.expr(e.Max, held)
	case *ast.TypeAssertExpr:
		c.expr(e.X, held)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			c.expr(elt, held)
		}
	case *ast.KeyValueExpr:
		c.expr(e.Value, held)
	}
}

// lockOp classifies a call as a state-lock operation: ("s.mu", "lock") for
// s.mu.Lock()/s.mu.RLock(), ("s.mu", "unlock") for the releases, ("", "")
// otherwise. Only sync package lock methods on a `mu`-named field or variable
// count.
func (c *checker) lockOp(call *ast.CallExpr) (key, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return "", ""
	}
	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		if x.Name != "mu" {
			return "", ""
		}
	case *ast.SelectorExpr:
		if x.Sel.Name != "mu" {
			return "", ""
		}
	default:
		return "", ""
	}
	return types.ExprString(sel.X), op
}

func (c *checker) checkCall(call *ast.CallExpr, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	name := analysis.CalleeName(call)
	fact := c.pass.Facts.Of(analysis.Callee(c.pass.TypesInfo, call))
	switch {
	case analysis.SolveName(name):
		c.pass.Reportf(call.Pos(), "solver call %s while %s is held; solve outside the lock", name, heldDesc(held))
	case analysis.PersistNames[name]:
		c.pass.Reportf(call.Pos(), "persistence call %s while %s is held; enqueue after unlocking", name, heldDesc(held))
	case fact.Solvy:
		c.pass.Reportf(call.Pos(), "call to %s reaches a solver while %s is held; solve outside the lock", name, heldDesc(held))
	case fact.Persisty:
		c.pass.Reportf(call.Pos(), "call to %s reaches a persistence hook while %s is held; enqueue after unlocking", name, heldDesc(held))
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

func heldDesc(held map[string]bool) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
