// Package locksolve enforces the repo's "solve outside the lock" rule: no
// solver entry point (Solve/Solve*) and no Persister durability hook may be
// reachable — directly or through a helper, in this package or another — while
// a session/shard state mutex is held.
//
// The project's lock-naming convention scopes the check: state mutexes are
// fields or variables named exactly `mu` (Session.mu, shard.mu). Coordination
// locks with descriptive names (outMu, algoMu, encMu, closeMu) deliberately do
// not count — draining an outbox under outMu is the designed pattern, solving
// under s.mu is the deadlock-and-latency bug this analyzer exists to stop.
//
// The control-flow semantics (branch copies, deferred-unlock tracking, IIFE
// lock scoping) live in the shared internal/analysis/flow engine; this
// analyzer contributes only the lock classifier and the held-call check.
package locksolve

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"github.com/svgic/svgic/internal/analysis"
	"github.com/svgic/svgic/internal/analysis/flow"
)

// Analyzer is the locksolve check.
var Analyzer = &analysis.Analyzer{
	Name: "locksolve",
	Doc: "report solver or persistence calls reachable while a session/shard state mutex (a `mu`-named sync lock) is held; " +
		"snapshot under the lock, solve outside it, re-validate on re-lock",
	Run: run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	hooks := flow.Hooks{
		Classify: c.lockOp,
		OnCall:   c.checkCall,
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			flow.Walk(fd.Body, hooks)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
}

// lockOp classifies a call as a state-lock operation: ("s.mu", flow.Acquire)
// for s.mu.Lock()/s.mu.RLock(), ("s.mu", flow.Release) for the releases,
// ("", flow.None) otherwise. Only sync package lock methods on a `mu`-named
// field or variable count.
func (c *checker) lockOp(call *ast.CallExpr) (string, flow.Op) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", flow.None
	}
	var op flow.Op
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = flow.Acquire
	case "Unlock", "RUnlock":
		op = flow.Release
	default:
		return "", flow.None
	}
	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", flow.None
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		if x.Name != "mu" {
			return "", flow.None
		}
	case *ast.SelectorExpr:
		if x.Sel.Name != "mu" {
			return "", flow.None
		}
	default:
		return "", flow.None
	}
	return types.ExprString(sel.X), op
}

func (c *checker) checkCall(call *ast.CallExpr, held flow.Set) {
	if len(held) == 0 {
		return
	}
	name := analysis.CalleeName(call)
	fact := c.pass.Facts.Of(analysis.Callee(c.pass.TypesInfo, call))
	switch {
	case analysis.SolveName(name):
		c.pass.Reportf(call.Pos(), "solver call %s while %s is held; solve outside the lock", name, heldDesc(held))
	case analysis.PersistNames[name]:
		c.pass.Reportf(call.Pos(), "persistence call %s while %s is held; enqueue after unlocking", name, heldDesc(held))
	case fact.Solvy:
		c.pass.Reportf(call.Pos(), "call to %s reaches a solver while %s is held; solve outside the lock", name, heldDesc(held))
	case fact.Persisty:
		c.pass.Reportf(call.Pos(), "call to %s reaches a persistence hook while %s is held; enqueue after unlocking", name, heldDesc(held))
	}
}

func heldDesc(held flow.Set) string {
	keys := held.Keys()
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
