package locksolve_test

import (
	"testing"

	"github.com/svgic/svgic/internal/analysis/analysistest"
	"github.com/svgic/svgic/internal/analysis/locksolve"
)

func TestLockSolve(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), locksolve.Analyzer, "locksolve")
}
