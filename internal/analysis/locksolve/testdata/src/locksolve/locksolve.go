// Package locksolve is the fixture for the solve-outside-the-lock analyzer.
package locksolve

import (
	"sync"

	"locksolve/enginelib"
)

// Persister mirrors the durability hooks of the real session.Persister.
type Persister interface {
	EventsApplied(id string, n int) error
	SessionEnded(id string) error
}

// Session mirrors the real session shape: mu guards state, outMu is a
// coordination lock exempt from the rule.
type Session struct {
	mu    sync.Mutex
	outMu sync.Mutex
	eng   *enginelib.Engine
	p     Persister
	val   int
}

// BadDirect solves under the state lock.
func (s *Session) BadDirect(x int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Solve(x) // want `solver call Solve while s\.mu is held`
}

// BadTransitiveLocal reaches the solver through an unexported same-package
// helper.
func (s *Session) BadTransitiveLocal(x int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recompute(x) // want `call to recompute reaches a solver while s\.mu is held`
}

func (s *Session) recompute(x int) int { return s.eng.Solve(x) }

// BadTransitiveImported reaches the solver through another package; the
// knowledge arrives as a fact.
func (s *Session) BadTransitiveImported(x int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return enginelib.Compute(s.eng, x) // want `call to Compute reaches a solver while s\.mu is held`
}

// BadPersist enqueues durability work under the state lock.
func (s *Session) BadPersist(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.EventsApplied("s1", n) // want `persistence call EventsApplied while s\.mu is held`
}

// GoodSnapshot is the sanctioned pattern: snapshot under the lock, solve
// after releasing it.
func (s *Session) GoodSnapshot(x int) int {
	s.mu.Lock()
	v := s.val
	s.mu.Unlock()
	out := s.eng.Solve(v + x)
	s.mu.Lock()
	s.val = out
	s.mu.Unlock()
	return out
}

// GoodCoordinationLock solves under outMu: descriptive coordination locks
// are exempt by design.
func (s *Session) GoodCoordinationLock(x int) int {
	s.outMu.Lock()
	defer s.outMu.Unlock()
	return s.eng.Solve(x)
}

// GoodAsync spawns the solve on its own goroutine, which does not hold mu.
func (s *Session) GoodAsync(x int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		_ = s.eng.Solve(x)
	}()
}

// GoodBranchRelease releases inside the early-return branch; the solve after
// the branch runs unlocked on that path and re-locks properly otherwise.
func (s *Session) GoodBranchRelease(x int) int {
	s.mu.Lock()
	if x < 0 {
		s.mu.Unlock()
		return 0
	}
	s.mu.Unlock()
	return s.eng.Solve(x)
}

// GoodIIFELockScope mirrors the repair path: an immediately-invoked literal
// holds mu with a defer, which releases at the literal's return — the solve
// and persist after it run unlocked.
func (s *Session) GoodIIFELockScope(x int) error {
	func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.val = x
	}()
	s.val = s.eng.Solve(s.val)
	return s.p.SessionEnded("s1")
}

// BadIIFEInherited still fires: the literal runs while the caller holds mu.
func (s *Session) BadIIFEInherited(x int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := 0
	func() {
		out = s.eng.Solve(x) // want `solver call Solve while s\.mu is held`
	}()
	return out
}

// GoodSafeCall calls a non-solvy dependency under the lock.
func (s *Session) GoodSafeCall() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return enginelib.Describe(s.eng)
}
