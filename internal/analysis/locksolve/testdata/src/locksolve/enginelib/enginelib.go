// Package enginelib is a fixture dependency: its facts (SolveBest reaches a
// solver) must travel across the package boundary for the transitive cases in
// the main fixture to fire.
package enginelib

// Engine is a stand-in solver.
type Engine struct{}

// Solve is the solver entry point.
func (e *Engine) Solve(x int) int { return x + 1 }

// Compute reaches Solve without carrying a Solve* name: only the fact
// machinery can tell callers it is solvy.
func Compute(e *Engine, x int) int { return e.Solve(x) }

// Describe is lock-safe: it never reaches a solver.
func Describe(e *Engine) string { return "engine" }
