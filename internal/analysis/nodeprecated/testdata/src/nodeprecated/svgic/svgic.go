// Package svgic is the nodeprecated fixture's deprecated-API surface; its
// import path ends in /svgic so the sanctioned-site suffixes match the real
// module's root package.
package svgic

// SolveAVG solves with default factors.
//
// Deprecated: use SolveAVGWith and pass explicit factors.
func SolveAVG(x int) int { return SolveAVGWith(x, 1) }

// SolveAVGWith is the replacement API.
func SolveAVGWith(x, f int) int { return x * f }

// OldHelper has no sanctioned call sites at all.
//
// Deprecated: superseded, delete on sight.
func OldHelper() int { return 0 }
