// Package client exercises every nodeprecated outcome: bare deprecated
// calls, a sanctioned justified suppression, an unjustified directive, and a
// directive on a non-sanctioned symbol.
package client

import "nodeprecated/svgic"

// Bare calls are flagged regardless of the callee's package.
func bare() int {
	return svgic.SolveAVG(4) + // want `call to deprecated SolveAVG \(Deprecated: use SolveAVGWith and pass explicit factors\.\)`
		svgic.OldHelper() // want `call to deprecated OldHelper`
}

// sanctioned is the one legal shape: a justified directive on a listed site.
func sanctioned() int {
	//lint:ignore SA1019 compatibility coverage for the deprecated wrapper
	return svgic.SolveAVG(4)
}

// unjustified directives suppress nothing: the policy demands the why.
func unjustified() int {
	//lint:ignore SA1019
	return svgic.SolveAVG(4) // want `call to deprecated SolveAVG`
}

// unsanctioned symbols cannot buy a suppression at all.
func unsanctioned() int {
	//lint:ignore SA1019 trying to grandfather a helper that has no sanctioned sites
	return svgic.OldHelper() // want `suppressed call to deprecated OldHelper is not a sanctioned legacy site`
}

// modern code uses the replacement.
func modern() int {
	return svgic.SolveAVGWith(4, 2)
}

var _ = []func() int{bare, sanctioned, unjustified, unsanctioned, modern}
