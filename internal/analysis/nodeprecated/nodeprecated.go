// Package nodeprecated is the project-aware deprecation check. It flags every
// call to a function or method carrying a "Deprecated:" doc paragraph, with
// one carve-out: the repo keeps a short sanctioned list of legacy call sites
// (the compatibility wrappers' own tests) that may suppress the finding with
// a justified //lint:ignore directive. A //lint:ignore on any OTHER deprecated
// call is itself a finding — the suppression budget is closed, new code
// migrates instead.
//
// The analyzer interprets the directives itself (NoAutoSuppress) and honors
// the staticcheck name SA1019 as an alias, so the pre-existing sanctioned
// sites keep their single directive and satisfy both tools.
package nodeprecated

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/svgic/svgic/internal/analysis"
)

// Sanctioned lists the call-site keys (suffix-matched FuncKeys of the callee)
// where a justified //lint:ignore SA1019 / nodeprecated directive is accepted.
// Everything else must migrate off the deprecated API.
var Sanctioned = []string{
	"svgic.SolveAVG",
	"svgic.SolveAVGD",
	"session.Manager.Create",
}

// Analyzer is the nodeprecated check.
var Analyzer = &analysis.Analyzer{
	Name:    "nodeprecated",
	Aliases: []string{"SA1019"},
	Doc: "report calls to Deprecated functions; only the sanctioned legacy sites (Manager.Create / SolveAVG / SolveAVGD " +
		"compatibility tests) may carry a justified //lint:ignore, new suppressions are rejected",
	NoAutoSuppress: true,
	Run:            run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		dirs := analysis.DirectivesFor(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// A deprecated wrapper may call other deprecated APIs: it is
			// itself scheduled for removal, flagging its body helps no one.
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok && pass.Facts.Of(fn).Deprecated != "" {
				continue
			}
			checkBody(pass, fd.Body, dirs)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt, dirs map[int]analysis.Directive) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		fact := pass.Facts.Of(fn)
		if fact.Deprecated == "" {
			return true
		}
		key := analysis.FuncKey(fn)
		line := pass.Fset.Position(call.Pos()).Line
		suppressed := analysis.SanctionedAt(dirs, line, "nodeprecated", "SA1019")
		switch {
		case !suppressed:
			pass.Reportf(call.Pos(), "call to deprecated %s (Deprecated: %s)", fn.Name(), fact.Deprecated)
		case !sanctionedKey(key):
			pass.Reportf(call.Pos(),
				"suppressed call to deprecated %s is not a sanctioned legacy site (allowed: %s); migrate instead",
				fn.Name(), strings.Join(Sanctioned, ", "))
		}
		return true
	})
}

func sanctionedKey(key string) bool {
	for _, s := range Sanctioned {
		if analysis.KeyMatches(key, s) {
			return true
		}
	}
	return false
}
