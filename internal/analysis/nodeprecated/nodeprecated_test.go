package nodeprecated_test

import (
	"testing"

	"github.com/svgic/svgic/internal/analysis/analysistest"
	"github.com/svgic/svgic/internal/analysis/nodeprecated"
)

func TestNoDeprecated(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nodeprecated.Analyzer, "nodeprecated/client")
}
