package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader turns source into type-checked Packages for the in-process
// execution modes (the standalone driver and the analysistest harness; the
// `go vet -vettool` mode gets its inputs from the vet config instead — see
// cmd/svgiclint). Module packages and testdata fixtures are type-checked
// from source in dependency order, so facts for a dependency are always
// computed before its dependents run. Standard-library imports are resolved
// through compiled export data located with `go list -export` — the analyzers
// never need std ASTs, only std types.

// Package is one type-checked package plus its syntax.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the slice of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
}

// Loader loads and type-checks packages, accumulating Facts as it goes.
type Loader struct {
	Fset  *token.FileSet
	Facts *Facts

	fixtureRoot string // testdata "src" root; "" outside the test harness
	modulePkgs  map[string]*listPkg
	stdExport   map[string]string
	loaded      map[string]*Package
	loading     map[string]bool
	gc          types.ImporterFrom
	goVersion   string
}

func newLoader() *Loader {
	l := &Loader{
		Fset:       token.NewFileSet(),
		Facts:      NewFacts(),
		modulePkgs: make(map[string]*listPkg),
		stdExport:  make(map[string]string),
		loaded:     make(map[string]*Package),
		loading:    make(map[string]bool),
	}
	l.gc = importer.ForCompiler(l.Fset, "gc", l.lookupExport).(types.ImporterFrom)
	return l
}

// NewFixtureLoader returns a loader that resolves import paths against
// root/<path> directories first (the analysistest testdata/src layout) and
// the standard library second.
func NewFixtureLoader(root string) *Loader {
	l := newLoader()
	l.fixtureRoot = root
	return l
}

// LoadModule loads every package of the module rooted at dir (the `./...`
// universe, test files excluded), in dependency order.
func LoadModule(dir string) ([]*Package, *Loader, error) {
	l := newLoader()
	if v, err := moduleGoVersion(dir); err == nil {
		l.goVersion = v
	}
	out, err := goList(dir, "-deps", "-export", "./...")
	if err != nil {
		return nil, nil, err
	}
	var roots []string
	for _, p := range out {
		if p.Standard {
			if p.Export != "" {
				l.stdExport[p.ImportPath] = p.Export
			}
			continue
		}
		l.modulePkgs[p.ImportPath] = p
		roots = append(roots, p.ImportPath)
	}
	sort.Strings(roots)
	var pkgs []*Package
	for _, path := range roots {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	// Dependency order for the caller: a package sorts after its imports.
	sort.SliceStable(pkgs, func(i, j int) bool {
		return depends(l.modulePkgs, pkgs[j].Path, pkgs[i].Path) &&
			!depends(l.modulePkgs, pkgs[i].Path, pkgs[j].Path)
	})
	return pkgs, l, nil
}

func depends(pkgs map[string]*listPkg, from, on string) bool {
	seen := make(map[string]bool)
	var walk func(p string) bool
	walk = func(p string) bool {
		if p == on {
			return true
		}
		if seen[p] {
			return false
		}
		seen[p] = true
		lp := pkgs[p]
		if lp == nil {
			return false
		}
		for _, imp := range lp.Imports {
			if walk(imp) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// Load type-checks one package (and, recursively, its source dependencies),
// computing its Facts exactly once.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	var files []string
	switch {
	case l.fixtureRoot != "" && dirExists(filepath.Join(l.fixtureRoot, path)):
		dir := filepath.Join(l.fixtureRoot, path)
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
	case l.modulePkgs[path] != nil:
		lp := l.modulePkgs[path]
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
	default:
		return nil, fmt.Errorf("analysis: %q is neither a fixture nor a module package", path)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: package %q has no Go files", path)
	}
	sort.Strings(files)

	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.Fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l, GoVersion: l.goVersion}
	tpkg, err := conf.Check(path, l.Fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Fset: l.Fset, Files: syntax, Types: tpkg, Info: info}
	l.loaded[path] = pkg
	ComputePackageFacts(l.Fset, syntax, info, l.Facts)
	return pkg, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: source packages (fixtures and
// module packages) are loaded recursively, everything else through compiled
// export data.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if (l.fixtureRoot != "" && dirExists(filepath.Join(l.fixtureRoot, path))) || l.modulePkgs[path] != nil {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.gc.ImportFrom(path, dir, mode)
}

// lookupExport feeds the gc importer: import path → export-data file,
// resolved with `go list -export` on first need.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	file, ok := l.stdExport[path]
	if !ok {
		out, err := goList(".", "-deps", "-export", path)
		if err != nil {
			return nil, fmt.Errorf("analysis: locating export data for %q: %w", path, err)
		}
		for _, p := range out {
			if p.Export != "" {
				l.stdExport[p.ImportPath] = p.Export
			}
		}
		file = l.stdExport[path]
	}
	if file == "" {
		return nil, fmt.Errorf("analysis: no export data for %q", path)
	}
	return os.Open(file)
}

func goList(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-json=ImportPath,Dir,GoFiles,Imports,Export,Standard"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	var out []*listPkg
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		out = append(out, p)
	}
	return out, nil
}

func moduleGoVersion(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if v, ok := strings.CutPrefix(strings.TrimSpace(line), "go "); ok {
			return "go" + strings.TrimSpace(v), nil
		}
	}
	return "", fmt.Errorf("no go directive in %s/go.mod", dir)
}

func dirExists(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}
