package seedrand_test

import (
	"testing"

	"github.com/svgic/svgic/internal/analysis/analysistest"
	"github.com/svgic/svgic/internal/analysis/seedrand"
)

func TestSeedRand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), seedrand.Analyzer, "seedrand/cmd/workload")
}
