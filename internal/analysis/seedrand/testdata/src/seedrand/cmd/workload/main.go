// Command workload is the seedrand fixture: a workload generator whose
// import path sits under cmd/, putting it in the analyzer's scope.
package main

import (
	"flag"
	"math/rand"
	"time"
)

var seed = flag.Int64("seed", 1, "workload seed")

func main() {
	flag.Parse()

	_ = rand.Intn(10)  // want `math/rand\.Intn draws from the process-wide source`
	_ = rand.Float64() // want `math/rand\.Float64 draws from the process-wide source`

	bad := rand.New(rand.NewSource(time.Now().UnixNano())) // want `time-based seed for math/rand\.NewSource`
	_ = bad.Intn(10)

	good := rand.New(rand.NewSource(*seed))
	_ = good.Intn(10)

	sizes := make([]int, 8)
	for i := range sizes {
		sizes[i] = 1 + good.Intn(4)
	}
	_ = sizes
}
