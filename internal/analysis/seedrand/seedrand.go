// Package seedrand enforces deterministic randomness in workload generators
// and stateful serving code: inside cmd/ binaries and the session, store and
// telemetry packages, randomness must flow from an explicitly seeded source (a -seed
// flag, an Options field, an injected *rand.Rand) — never from the global
// math/rand source and never from an ad-hoc time-of-day seed. Global and
// time-seeded draws make benchmark workloads and session IDs unreproducible,
// which is exactly what the repo's seeded-workload fixes were about.
package seedrand

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/svgic/svgic/internal/analysis"
)

// Analyzer is the seedrand check.
var Analyzer = &analysis.Analyzer{
	Name: "seedrand",
	Doc: "in cmd/ and session/store/telemetry packages: forbid global math/rand draws and time-based seeding; " +
		"randomness must come from an explicitly seeded source so runs are reproducible",
	Run: run,
}

// constructors are the math/rand and math/rand/v2 source builders: allowed in
// themselves (building a seeded source is the sanctioned pattern), but their
// seed arguments must not be derived from the clock.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || pass.InTestFile(call.Pos()) {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // a method on an explicitly built source/Rand is the sanctioned pattern
			}
			if constructors[fn.Name()] {
				for _, arg := range call.Args {
					if tc := timeDerived(pass.TypesInfo, arg); tc != nil {
						pass.Reportf(tc.Pos(),
							"time-based seed for %s.%s; derive the seed from a -seed flag or injected source so runs are reproducible",
							path, fn.Name())
					}
				}
				return true
			}
			pass.Reportf(call.Pos(),
				"%s.%s draws from the process-wide source; use a *rand.Rand built from an explicit seed",
				path, fn.Name())
			return true
		})
	}
	return nil
}

// timeDerived returns the first time.Now() call contained in the expression —
// the `rand.NewSource(time.Now().UnixNano())` shape and friends — or nil.
func timeDerived(info *types.Info, expr ast.Expr) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" {
				found = call
				return false
			}
		case "math/rand", "math/rand/v2":
			// A nested rand constructor reports its own seed; don't blame the
			// outer call for it too.
			return false
		}
		return true
	})
	return found
}

func inScope(path string) bool {
	return analysis.PkgPathHasSuffix(path, "session", "store", "telemetry") ||
		strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}
