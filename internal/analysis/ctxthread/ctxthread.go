// Package ctxthread enforces context threading on the serving path. In the
// serving packages (engine, registry, session, server, telemetry):
//
//  1. every exported function or method that synchronously reaches a solver
//     must accept a context.Context, so cancellation and deadlines propagate
//     from the RPC edge all the way into the solve; and
//  2. no function may mint a fresh context with context.Background() or
//     context.TODO() — a detached context silently severs the cancellation
//     chain. The rare legitimate root (a manager's own lifecycle context,
//     canceled by Close) carries a justified //lint:ignore.
package ctxthread

import (
	"go/ast"
	"go/types"

	"github.com/svgic/svgic/internal/analysis"
)

// scope is the set of serving-package path suffixes the check applies to.
var scope = []string{"engine", "registry", "session", "server", "telemetry"}

// Analyzer is the ctxthread check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxthread",
	Doc: "in serving packages (engine/registry/session/server/telemetry): exported functions that transitively call Solve " +
		"must take a context.Context, and context.Background()/context.TODO() are forbidden — thread the caller's ctx",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PkgPathHasSuffix(pass.Pkg.Path(), scope...) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if fd.Name.IsExported() && pass.Facts.Of(fn).Solvy && !hasCtxParam(fn) {
				pass.Reportf(fd.Name.Pos(),
					"exported %s transitively calls a solver but takes no context.Context; accept and forward the caller's ctx",
					fd.Name.Name)
			}
			checkFreshContexts(pass, fd.Body)
		}
	}
	return nil
}

func hasCtxParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if named, ok := sig.Params().At(i).Type().(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
				return true
			}
		}
	}
	return false
}

func checkFreshContexts(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if name := fn.Name(); name == "Background" || name == "TODO" {
			pass.Reportf(call.Pos(),
				"context.%s() in a serving package detaches the cancellation chain; thread the caller's ctx instead",
				name)
		}
		return true
	})
}
