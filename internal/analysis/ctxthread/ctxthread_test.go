package ctxthread_test

import (
	"testing"

	"github.com/svgic/svgic/internal/analysis/analysistest"
	"github.com/svgic/svgic/internal/analysis/ctxthread"
)

func TestCtxThread(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxthread.Analyzer, "ctxthread/session")
}
