// Package session is the ctxthread fixture; its import path ends in
// /session, putting it in the analyzer's serving-package scope.
package session

import "context"

// Engine is a stand-in solver.
type Engine struct{}

// Solve is the solver entry point.
func (e *Engine) Solve(ctx context.Context, x int) int { return x }

// Manager mirrors the real session manager.
type Manager struct {
	eng    *Engine
	ctx    context.Context
	cancel context.CancelFunc
}

// NewManager is solvy only through a goroutine, which is not the caller's
// serving path — no ctx parameter is demanded. Its root context carries the
// sanctioned lifecycle suppression.
func NewManager(eng *Engine) *Manager {
	m := &Manager{eng: eng}
	//lint:ignore ctxthread manager root context, canceled by Close; serving calls still thread their own ctx
	m.ctx, m.cancel = context.WithCancel(context.Background())
	go m.loop()
	return m
}

func (m *Manager) loop() {
	<-m.ctx.Done()
}

// CreateWith threads the caller's context into the solve: the sanctioned
// shape.
func (m *Manager) CreateWith(ctx context.Context, x int) int {
	return m.eng.Solve(ctx, x)
}

// Create reaches the solver without accepting a context, and detaches the
// cancellation chain to do it.
func (m *Manager) Create(x int) int { // want `exported Create transitively calls a solver but takes no context\.Context`
	return m.eng.Solve(context.Background(), x) // want `context\.Background\(\) in a serving package detaches the cancellation chain`
}

// Refresh hides the solve behind a helper; the fact still demands a context.
func (m *Manager) Refresh(x int) int { // want `exported Refresh transitively calls a solver but takes no context\.Context`
	return m.resolve(x)
}

func (m *Manager) resolve(x int) int {
	return m.eng.Solve(m.ctx, x)
}

// Sweep is unexported-equivalent housekeeping on the exported surface: not
// solvy, so no ctx is demanded — but a fresh TODO context is still banned.
func (m *Manager) Sweep() {
	_ = context.TODO() // want `context\.TODO\(\) in a serving package detaches the cancellation chain`
}

// Close is exported and not solvy: no ctx demanded.
func (m *Manager) Close() {
	m.cancel()
}
