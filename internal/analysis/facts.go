package analysis

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/svgic/svgic/internal/analysis/flow"
)

// This file is the cross-package knowledge layer. Analyzers like locksolve
// ("no solve call reachable while a state lock is held") need to know, for a
// call to some helper in another package, whether that helper transitively
// reaches a solver. ASTs of dependency packages are not available when
// running as a `go vet -vettool` compilation unit, so the knowledge travels
// as per-function Facts: computed bottom-up in dependency order, serialized
// between vet units as JSON (the .vetx files of the vet protocol), and
// accumulated in-process by the standalone driver and the test harness.

// FuncFact is what the suite records about one function or method.
type FuncFact struct {
	// Solvy: the function synchronously calls a solver entry point
	// (Solve/SolveWith/SolveBatch…, see SolveName), directly or transitively.
	// Calls made on new goroutines (`go f(...)`) do not count: spawning
	// background solving is not the same as solving on the caller's path.
	Solvy bool `json:"solvy,omitempty"`
	// Persisty: the function synchronously reaches a durability hook (the
	// session.Persister methods — the "store enqueue" of the lock invariant).
	Persisty bool `json:"persisty,omitempty"`
	// Deprecated is the first line of the declaration's "Deprecated:" doc
	// paragraph, empty for non-deprecated functions.
	Deprecated string `json:"deprecated,omitempty"`
	// Locks are the lock classes (see SyncClass) the function synchronously
	// acquires, directly or transitively. Acquisitions inside `go`-spawned
	// bodies do not count — they happen on another goroutine, so a caller
	// holding a lock across this call is not ordered against them.
	Locks []string `json:"locks,omitempty"`
	// WGDone are the sync.WaitGroup classes the function synchronously calls
	// Done on, directly or transitively — how goleak proves a named spawned
	// function pays back the owner's Add.
	WGDone []string `json:"wgDone,omitempty"`
	// Terminates: the function is lifecycle-bound per TerminatesLifecycle —
	// it selects on a context Done channel or a channel its package closes.
	// Propagated through synchronous callees: a thin wrapper around a
	// terminating loop terminates too.
	Terminates bool `json:"terminates,omitempty"`
}

func (f FuncFact) isZero() bool {
	return !f.Solvy && !f.Persisty && f.Deprecated == "" &&
		len(f.Locks) == 0 && len(f.WGDone) == 0 && !f.Terminates
}

// LockEdge is one program-wide lock-order edge: lock class To is acquired
// while From is held, first observed at Pos ("file.go:line"). The edges are
// global by nature — a cycle is a property of the whole program, not of one
// package — so unlike FuncFacts they are not keyed by function.
type LockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Pos  string `json:"pos"`
}

// Facts is a function-fact table keyed by FuncKey, plus the accumulated
// program-wide lock-order edges.
type Facts struct {
	m     map[string]FuncFact
	edges map[[2]string]string // {from, to} → pos label
}

// NewFacts returns an empty fact table.
func NewFacts() *Facts {
	return &Facts{m: make(map[string]FuncFact), edges: make(map[[2]string]string)}
}

// AddLockEdge records a lock-order edge. The position label kept for a
// duplicated edge is the lexicographically smallest, so the table is
// deterministic regardless of package processing order.
func (fs *Facts) AddLockEdge(from, to, pos string) {
	k := [2]string{from, to}
	if cur, ok := fs.edges[k]; !ok || pos < cur {
		fs.edges[k] = pos
	}
}

// LockEdges returns the accumulated acquisition-order graph, sorted.
func (fs *Facts) LockEdges() []LockEdge {
	out := make([]LockEdge, 0, len(fs.edges))
	for k, pos := range fs.edges {
		out = append(out, LockEdge{From: k[0], To: k[1], Pos: pos})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Of looks up the fact recorded for a function object. The zero fact is
// returned for functions the suite has not (yet) analyzed — external code is
// assumed neither solvy nor persisty nor deprecated, which keeps the
// analyzers quiet rather than noisy about the standard library.
func (fs *Facts) Of(fn *types.Func) FuncFact {
	if fn == nil {
		return FuncFact{}
	}
	return fs.m[FuncKey(fn)]
}

// factsPayload is the vetx wire format: the per-function table plus the
// lock-order edges contributed by every package seen so far.
type factsPayload struct {
	Funcs     map[string]FuncFact `json:"funcs,omitempty"`
	LockEdges []LockEdge          `json:"lockEdges,omitempty"`
}

// Merge adds every entry of the JSON-encoded table (a dependency's .vetx
// payload) to the receiver.
func (fs *Facts) Merge(data []byte) error {
	var p factsPayload
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	for k, v := range p.Funcs {
		fs.m[k] = v
	}
	for _, e := range p.LockEdges {
		fs.AddLockEdge(e.From, e.To, e.Pos)
	}
	return nil
}

// ExportAll serializes every non-zero fact in the table, plus the whole edge
// graph. The vet protocol hands each compilation unit only its direct
// dependencies' fact files, so a unit must re-export the transitive closure
// it has accumulated, not just its own slice.
func (fs *Facts) ExportAll() ([]byte, error) {
	p := factsPayload{Funcs: make(map[string]FuncFact), LockEdges: fs.LockEdges()}
	for k, v := range fs.m {
		if !v.isZero() {
			p.Funcs[k] = v
		}
	}
	return json.Marshal(p)
}

// FuncKey names a function or method across package boundaries:
// "pkg/path.Func" or "pkg/path.Recv.Method" (pointer receivers are
// flattened). The key is what fact tables and the sanctioned-suppression
// table are indexed by.
func FuncKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name() // error.Error and friends
	}
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if name := recvTypeName(sig.Recv().Type()); name != "" {
			key += name + "."
		}
	}
	return key + fn.Name()
}

func recvTypeName(t types.Type) string {
	switch t := t.(type) {
	case *types.Pointer:
		return recvTypeName(t.Elem())
	case *types.Named:
		return t.Obj().Name()
	case *types.Interface:
		return "" // anonymous interface receiver: method sets only
	}
	return ""
}

// KeyMatches reports whether a FuncKey ends in the given shorthand — e.g.
// "session.Manager.Create" matches the real
// "github.com/svgic/svgic/internal/session.Manager.Create" and a fixture's
// "example.com/session.Manager.Create". The boundary must fall on a path
// separator so "mysession.Manager.Create" does not match.
func KeyMatches(key, shorthand string) bool {
	return key == shorthand || strings.HasSuffix(key, "/"+shorthand)
}

// SolveName reports whether a callee name is a solver entry point: Solve
// itself and the Solve* family (SolveWith, SolveBatch, SolveCtx, SolveAVG,
// SolveRelaxation, …). Solver*, the registry/identity helpers, are not solve
// calls.
func SolveName(name string) bool {
	if name == "Solve" {
		return true
	}
	return strings.HasPrefix(name, "Solve") && !strings.HasPrefix(name, "Solver")
}

// PersistNames are the durability hooks of session.Persister — the "store
// enqueue" calls of the locksolve invariant. Name-matched so fixture
// persisters and the real interface both count.
var PersistNames = map[string]bool{
	"SessionCreated": true,
	"EventsApplied":  true,
	"ConfigAdopted":  true,
	"SnapshotCut":    true,
	"SessionEnded":   true,
}

// Callee resolves the static callee of a call expression, or nil for
// builtins, conversions and function-typed variables.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// CalleeName returns the bare name a call is made under, resolving through
// nothing — "Solve" for both s.Solve(...) and Solve(...). Empty for calls to
// function values computed by arbitrary expressions.
func CalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// funcNode is one declaration during the per-package fact fixpoint.
type funcNode struct {
	key     string
	fact    FuncFact
	callees []string        // FuncKeys of statically resolved synchronous callees
	locks   map[string]bool // lock classes acquired, updated during the fixpoint
	wgDone  map[string]bool // WaitGroup classes Done'd, likewise
}

// ComputePackageFacts derives the FuncFacts of one package and adds them,
// plus the package's lock-order edges, to the table. Dependencies' facts
// must already be present (packages are processed in dependency order);
// intra-package recursion is handled by a fixpoint.
func ComputePackageFacts(fset *token.FileSet, files []*ast.File, info *types.Info, facts *Facts) {
	// Production files only for the lifecycle and lock-order scans: a test
	// unit (package + _test.go files) must derive the same concurrency facts
	// as the plain unit, and test-only lock usage must not order the graph.
	var prod []*ast.File
	for _, file := range files {
		if f := fset.File(file.Pos()); f == nil || !strings.HasSuffix(f.Name(), "_test.go") {
			prod = append(prod, file)
		}
	}
	closed := ClosedChanClasses(prod, info)
	nodes := make(map[string]*funcNode)
	var order []string
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			n := &funcNode{
				key:    FuncKey(obj),
				locks:  make(map[string]bool),
				wgDone: make(map[string]bool),
			}
			n.fact.Deprecated = deprecationOf(fd.Doc)
			n.fact.Terminates = TerminatesLifecycle(fd.Body, info, closed)
			SyncCalls(fd.Body, func(call *ast.CallExpr) {
				if name := CalleeName(call); SolveName(name) {
					n.fact.Solvy = true
				} else if PersistNames[name] {
					n.fact.Persisty = true
				}
				if _, class, op := MutexOp(info, call); op == flow.Acquire {
					n.locks[class] = true
				}
				if class, method := WaitGroupOp(info, call); method == "Done" {
					n.wgDone[class] = true
				}
				if callee := Callee(info, call); callee != nil {
					n.callees = append(n.callees, FuncKey(callee))
				}
			})
			nodes[n.key] = n
			order = append(order, n.key)
		}
	}
	// Propagate the synchronous facts through the package's internal call
	// graph to a fixpoint; external callees are final already.
	for changed := true; changed; {
		changed = false
		for _, key := range order {
			n := nodes[key]
			for _, callee := range n.callees {
				var f FuncFact
				if cn, ok := nodes[callee]; ok {
					f = FuncFact{
						Solvy:      cn.fact.Solvy,
						Persisty:   cn.fact.Persisty,
						Terminates: cn.fact.Terminates,
						Locks:      sortedKeys(cn.locks),
						WGDone:     sortedKeys(cn.wgDone),
					}
				} else {
					f = facts.m[callee]
				}
				if f.Solvy && !n.fact.Solvy {
					n.fact.Solvy = true
					changed = true
				}
				if f.Persisty && !n.fact.Persisty {
					n.fact.Persisty = true
					changed = true
				}
				if f.Terminates && !n.fact.Terminates {
					n.fact.Terminates = true
					changed = true
				}
				for _, lock := range f.Locks {
					if !n.locks[lock] {
						n.locks[lock] = true
						changed = true
					}
				}
				for _, wg := range f.WGDone {
					if !n.wgDone[wg] {
						n.wgDone[wg] = true
						changed = true
					}
				}
			}
		}
	}
	for _, key := range order {
		n := nodes[key]
		n.fact.Locks = sortedKeys(n.locks)
		n.fact.WGDone = sortedKeys(n.wgDone)
		if !n.fact.isZero() {
			facts.m[key] = n.fact
		}
	}
	// Lock-order edges, collected after the fixpoint so calls made under
	// held locks expand through final callee lock sets.
	for _, e := range CollectLockEdges(info, prod, facts) {
		facts.AddLockEdge(e.From, e.To, PosLabel(fset, e.Pos))
	}
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// deprecationOf extracts the first line of a "Deprecated:" doc paragraph.
func deprecationOf(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "Deprecated:") {
			return strings.TrimSpace(strings.TrimPrefix(line, "Deprecated:"))
		}
	}
	return ""
}

// SyncCalls walks a function body and invokes fn for every call that
// executes on the caller's goroutine. Calls launched with `go` are skipped —
// along with the bodies of function literals launched that way — but their
// argument expressions are walked (they evaluate synchronously). Function
// literals that are deferred, invoked immediately or stored all count as
// synchronous: deferred calls run before the function returns, and a stored
// closure is conservatively assumed to be called.
func SyncCalls(body *ast.BlockStmt, fn func(*ast.CallExpr)) {
	if body == nil {
		return
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			if call, ok := n.(*ast.CallExpr); ok {
				fn(call)
			}
			return true
		}
		for _, arg := range g.Call.Args {
			ast.Inspect(arg, walk)
		}
		// Skip g.Call itself and, for `go func(){...}()`, the literal's body.
		if _, isLit := ast.Unparen(g.Call.Fun).(*ast.FuncLit); !isLit {
			// A method value like `go m.loop()` still evaluates its receiver
			// expression synchronously.
			if sel, ok := ast.Unparen(g.Call.Fun).(*ast.SelectorExpr); ok {
				ast.Inspect(sel.X, walk)
			}
		}
		return false
	}
	ast.Inspect(body, walk)
}
