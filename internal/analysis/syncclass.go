package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"github.com/svgic/svgic/internal/analysis/flow"
)

// This file names sync primitives. The concurrency analyzers (lockorder,
// goleak) reason about lock CLASSES, not lock instances: every shard's `mu`
// is the same class, because the deadlock question "may shard.mu be acquired
// while Session.mu is held?" is a property of the code shape, not of which
// shard a particular goroutine touched. A class is keyed by the receiver
// type that owns the field — `session.shard.mu`, `engine.Engine.cacheMu`,
// `store.Store.writerMu` — which is exactly the taxonomy documented in
// docs/STATIC_ANALYSIS.md.

// syncTypeName returns the sync-package type name of t after pointer deref —
// "Mutex", "RWMutex", "WaitGroup", … — or "" for anything not from sync.
func syncTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	return obj.Name()
}

// SyncClass names the sync primitive denoted by e as a class string:
//
//	pkg.Type.field   for a struct field (the lock-class taxonomy)
//	pkg.name         for a package-level variable
//	name@offset      for a function-local variable (never crosses functions)
//
// Empty when the expression does not name a field or variable (map/slice
// elements, results of calls).
func SyncClass(info *types.Info, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		obj, ok := info.Uses[x.Sel].(*types.Var)
		if !ok || !obj.IsField() {
			return ""
		}
		return fieldClass(info.TypeOf(x.X), x.Sel.Name)
	case *ast.Ident:
		v, ok := info.Uses[x].(*types.Var)
		if !ok {
			return ""
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
		return v.Name() + "@" + strconv.Itoa(int(v.Pos()))
	}
	return ""
}

// fieldClass scopes a field name by the named type that holds it.
func fieldClass(recv types.Type, field string) string {
	if recv == nil {
		return ""
	}
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	n, ok := recv.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Name() + "." + n.Obj().Name() + "." + field
}

// MutexOp classifies a call as a mutex operation: for s.mu.Lock() it returns
// the flow key (the receiver expression, so releases match their acquires
// precisely), the lock class, and Acquire; Unlock/RUnlock return Release.
// Anything that is not a sync.Mutex/sync.RWMutex method call — including
// TryLock, whose success is conditional — classifies as None.
func MutexOp(info *types.Info, call *ast.CallExpr) (key, class string, op flow.Op) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", flow.None
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = flow.Acquire
	case "Unlock", "RUnlock":
		op = flow.Release
	default:
		return "", "", flow.None
	}
	fn := Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", flow.None
	}
	switch syncTypeName(info.TypeOf(sel.X)) {
	case "Mutex", "RWMutex":
		class = SyncClass(info, sel.X)
	default:
		// A promoted method on a type embedding the mutex: class the lock by
		// the embedding type itself, named after the sync type.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			class = fieldClass(info.TypeOf(sel.X), syncTypeName(sig.Recv().Type()))
		}
	}
	if class == "" {
		return "", "", flow.None
	}
	return types.ExprString(sel.X), class, op
}

// WaitGroupOp classifies a call as a sync.WaitGroup method: the WaitGroup's
// class and "Add", "Done" or "Wait". Empty class for anything else.
func WaitGroupOp(info *types.Info, call *ast.CallExpr) (class, method string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
	default:
		return "", ""
	}
	fn := Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	if syncTypeName(info.TypeOf(sel.X)) != "WaitGroup" {
		return "", ""
	}
	class = SyncClass(info, sel.X)
	if class == "" {
		return "", ""
	}
	return class, sel.Sel.Name
}

// ChanClass names a channel-valued field or variable, or "" for other
// expressions. Used to match a close(ch) against the receives that select on
// the same channel class.
func ChanClass(info *types.Info, e ast.Expr) string {
	t := info.TypeOf(ast.Unparen(e))
	if t == nil {
		return ""
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return ""
	}
	return SyncClass(info, e)
}

// ClosedChanClasses records every channel class the package calls close() on,
// anywhere — Close methods close the done channels that loops spawned
// elsewhere in the package select on, so the scan is deliberately
// package-wide and includes goroutine bodies.
func ClosedChanClasses(files []*ast.File, info *types.Info) map[string]bool {
	out := make(map[string]bool)
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if _, ok := info.Uses[id].(*types.Builtin); !ok || id.Name != "close" {
				return true
			}
			if class := ChanClass(info, call.Args[0]); class != "" {
				out[class] = true
			}
			return true
		})
	}
	return out
}

// TerminatesLifecycle reports whether a function body is lifecycle-bound: on
// its own goroutine it selects on — or ranges over — a context's Done channel
// or a channel class its package closes (closed per ClosedChanClasses). A
// goroutine running such a body exits when its owner cancels the context or
// closes the channel. Bare `<-ch` receives outside a select deliberately do
// not count: blocking forever on an un-closed channel is exactly the leak
// shape, not a termination guarantee. Nested `go` bodies are their own
// goroutines and are skipped.
func TerminatesLifecycle(body *ast.BlockStmt, info *types.Info, closed map[string]bool) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && commReceiveTerminates(cc.Comm, info, closed) {
					found = true
				}
			}
		case *ast.RangeStmt:
			if chanTerminates(n.X, info, closed) {
				found = true
			}
		}
		return true
	})
	return found
}

// commReceiveTerminates reports whether a select comm clause receives from a
// lifecycle channel (`case <-done:`, `case v, ok := <-ch:`).
func commReceiveTerminates(comm ast.Stmt, info *types.Info, closed map[string]bool) bool {
	var x ast.Expr
	switch c := comm.(type) {
	case *ast.ExprStmt:
		x = c.X
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			x = c.Rhs[0]
		}
	}
	u, ok := ast.Unparen(x).(*ast.UnaryExpr)
	if !ok || u.Op != token.ARROW {
		return false
	}
	return chanTerminates(u.X, info, closed)
}

// chanTerminates: the channel expression is a context Done channel or a
// channel class the package closes.
func chanTerminates(x ast.Expr, info *types.Info, closed map[string]bool) bool {
	x = ast.Unparen(x)
	if call, ok := x.(*ast.CallExpr); ok {
		fn := Callee(info, call)
		return fn != nil && fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context"
	}
	return closed[ChanClass(info, x)]
}
