package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// harness walks the body of function `f` in src with a purely syntactic
// classifier (X.Lock / X.Unlock by method name — the engine itself is
// type-agnostic) and records, per observed call or go statement, the held
// set at that point as "name:key1+key2".
type harness struct {
	calls []string // OnCall observations
	gos   []string // OnGo observations
	acqs  []string // OnAcquire observations (key acquired : held-before)
}

func heldString(held Set) string {
	keys := held.Keys()
	sort.Strings(keys)
	return strings.Join(keys, "+")
}

func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "?"
}

func (h *harness) walk(t *testing.T, src string) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "flow_test_src.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parsing test source: %v", err)
	}
	var body *ast.BlockStmt
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			body = fd.Body
		}
	}
	if body == nil {
		t.Fatalf("no func f in test source")
	}
	Walk(body, Hooks{
		Classify: func(call *ast.CallExpr) (string, Op) {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return "", None
			}
			x, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return "", None
			}
			switch sel.Sel.Name {
			case "Lock":
				return x.Name, Acquire
			case "Unlock":
				return x.Name, Release
			}
			return "", None
		},
		OnAcquire: func(call *ast.CallExpr, key string, held Set) {
			h.acqs = append(h.acqs, key+":"+heldString(held))
		},
		OnCall: func(call *ast.CallExpr, held Set) {
			h.calls = append(h.calls, callName(call)+":"+heldString(held))
		},
		OnGo: func(g *ast.GoStmt, held Set) {
			h.gos = append(h.gos, "go:"+heldString(held))
		},
	})
}

func expect(t *testing.T, what string, got, want []string) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s:\n got  %v\n want %v", what, got, want)
	}
}

func TestSequentialLockUnlock(t *testing.T) {
	h := &harness{}
	h.walk(t, `
func f() {
	before()
	a.Lock()
	during()
	a.Unlock()
	after()
}`)
	expect(t, "calls", h.calls, []string{"before:", "during:a", "after:"})
	expect(t, "acquires", h.acqs, []string{"a:"})
}

func TestDeferredUnlockHoldsToFunctionEnd(t *testing.T) {
	h := &harness{}
	h.walk(t, `
func f() {
	a.Lock()
	defer a.Unlock()
	one()
	two()
}`)
	expect(t, "calls", h.calls, []string{"one:a", "two:a"})
}

func TestDeferredPlainCallIsSynchronous(t *testing.T) {
	h := &harness{}
	h.walk(t, `
func f() {
	a.Lock()
	defer cleanup()
	a.Unlock()
}`)
	// The deferred non-lock call is observed with the set held at the defer
	// statement — it runs before return, and conservatively counts where it
	// is written.
	expect(t, "calls", h.calls, []string{"cleanup:a"})
}

func TestBranchIsolation(t *testing.T) {
	h := &harness{}
	h.walk(t, `
func f() {
	if cond {
		a.Lock()
		inIf()
	} else {
		b.Lock()
		inElse()
	}
	after()
}`)
	expect(t, "calls", h.calls, []string{"inIf:a", "inElse:b", "after:"})
}

func TestBranchReleaseDoesNotLeak(t *testing.T) {
	h := &harness{}
	h.walk(t, `
func f() {
	a.Lock()
	if cond {
		a.Unlock()
		inIf()
	}
	after()
}`)
	// The release inside the branch frees the branch's copy only; the
	// statements after the if conservatively still hold a.
	expect(t, "calls", h.calls, []string{"inIf:", "after:a"})
}

func TestLoopBodyIsolation(t *testing.T) {
	h := &harness{}
	h.walk(t, `
func f() {
	for i := 0; i < n; i++ {
		a.Lock()
		inLoop()
	}
	after()
	for range xs {
		b.Lock()
		inRange()
	}
	done()
}`)
	expect(t, "calls", h.calls, []string{"inLoop:a", "after:", "inRange:b", "done:"})
}

func TestSwitchAndSelectCaseIsolation(t *testing.T) {
	h := &harness{}
	h.walk(t, `
func f() {
	switch v {
	case 1:
		a.Lock()
		inOne()
	case 2:
		inTwo()
	}
	select {
	case <-ch:
		b.Lock()
		inRecv()
	default:
		inDefault()
	}
	after()
}`)
	expect(t, "calls", h.calls, []string{"inOne:a", "inTwo:", "inRecv:b", "inDefault:", "after:"})
}

func TestIIFESharesHeldSet(t *testing.T) {
	h := &harness{}
	h.walk(t, `
func f() {
	func() {
		a.Lock()
		inside()
	}()
	after()
}`)
	// The IIFE runs inline: the lock it takes (with no deferred release)
	// carries over to the code after it.
	expect(t, "calls", h.calls, []string{"inside:a", "after:a"})
}

func TestIIFEDeferredUnlockReleasesAtItsReturn(t *testing.T) {
	h := &harness{}
	h.walk(t, `
func f() {
	a.Lock()
	func() {
		defer a.Unlock()
		inside()
	}()
	after()
}`)
	// The drainOutbox/repairOne shape: the IIFE's deferred unlock applies
	// when the IIFE returns, so the caller's code after it runs unlocked.
	expect(t, "calls", h.calls, []string{"inside:a", "after:"})
}

func TestStoredClosureWalksOnCopy(t *testing.T) {
	h := &harness{}
	h.walk(t, `
func f() {
	cb := func() {
		a.Lock()
		inside()
	}
	after()
	use(cb)
}`)
	// The stored literal is conservatively walked as if invoked where it is
	// built, but on a copy: its lock does not leak into the enclosing flow.
	expect(t, "calls", h.calls, []string{"inside:a", "after:", "use:"})
}

func TestGoStatement(t *testing.T) {
	h := &harness{}
	h.walk(t, `
func f() {
	a.Lock()
	go func() {
		inSpawned()
	}()
	go m.loop(argCall())
	after()
}`)
	// Spawned literal bodies are not walked (the goroutine holds nothing);
	// argument expressions evaluate synchronously and are.
	expect(t, "calls", h.calls, []string{"argCall:a", "after:a"})
	expect(t, "gos", h.gos, []string{"go:a", "go:a"})
}

func TestOnAcquireSeesHeldBefore(t *testing.T) {
	h := &harness{}
	h.walk(t, `
func f() {
	a.Lock()
	b.Lock()
	c.Lock()
}`)
	expect(t, "acquires", h.acqs, []string{"a:", "b:a", "c:a+b"})
}

func TestNestedIIFEDeferredScoping(t *testing.T) {
	h := &harness{}
	h.walk(t, `
func f() {
	a.Lock()
	defer a.Unlock()
	func() {
		b.Lock()
		defer b.Unlock()
		inner()
	}()
	outer()
}`)
	// The IIFE's deferred release drops b at the IIFE's return; the outer
	// function's deferred release keeps a held throughout.
	expect(t, "calls", h.calls, []string{"inner:a+b", "outer:a"})
}
