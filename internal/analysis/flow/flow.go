// Package flow is the suite's shared flow-sensitive dataflow engine: a
// statement/expression walker that threads a set of "held" keys (mutexes for
// locksolve and lockorder, WaitGroup reservations for goleak) through one
// function body in evaluation order.
//
// The engine owns the control-flow semantics the analyzers previously each
// re-implemented:
//
//   - Branch bodies (if/else, loop bodies, switch and select cases) walk on
//     COPIES of the held set — a key acquired or released inside a branch
//     never leaks into the statements after it.
//   - `defer x.Unlock()` keeps the key held to the end of the enclosing
//     function (or function literal), where it is released; any other
//     deferred call is checked like a synchronous call, because it runs
//     before the function returns.
//   - An immediately-invoked function literal (IIFE) runs inline on the
//     caller's path: its body shares the caller's held set, and its deferred
//     releases apply when it returns — the drainOutbox/repairOne pattern.
//   - A function literal that is stored rather than invoked is walked
//     conservatively as if called on the spot, but on a copy of the set: its
//     traffic must not leak into the enclosing flow.
//   - A `go` statement's callee runs on its own goroutine, which holds none
//     of the caller's keys — the spawned body is NOT walked — but receiver
//     and argument expressions evaluate synchronously and are. The OnGo hook
//     sees the held set at the spawn point; analyzers that care about the
//     spawned body (goleak) recurse into it themselves with a fresh set.
//
// Analyzers plug in through Hooks: Classify names the calls that mutate the
// set, OnCall/OnAcquire/OnGo observe the set at the program points they care
// about.
package flow

import (
	"go/ast"
)

// Op classifies what a call does to the held set.
type Op int

const (
	// None: the call does not touch the held set.
	None Op = iota
	// Acquire adds the classified key to the held set.
	Acquire
	// Release removes the classified key from the held set.
	Release
)

// Set is the engine's flow state: the keys currently held on this path.
// Hooks receive the live set and must not mutate or retain it — copy first.
type Set map[string]bool

// Copy returns an independent copy of the set.
func (s Set) Copy() Set {
	out := make(Set, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// Keys returns the held keys in unspecified order.
func (s Set) Keys() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	return out
}

// Hooks parameterize one walk. Any hook may be nil.
type Hooks struct {
	// Classify maps a call to its effect on the held set. A call classified
	// Acquire or Release is consumed by the engine (OnCall does not fire for
	// it); its receiver expression is still walked. Nil classifies nothing.
	Classify func(call *ast.CallExpr) (key string, op Op)
	// OnAcquire fires for every Acquire-classified call, with the set held
	// BEFORE the key is added — the acquisition-order edge source.
	OnAcquire func(call *ast.CallExpr, key string, held Set)
	// OnCall fires for every unclassified call that executes synchronously on
	// the walked function's goroutine (deferred calls included).
	OnCall func(call *ast.CallExpr, held Set)
	// OnGo fires for every `go` statement, with the set held at the spawn
	// point. The spawned body is not walked by the engine.
	OnGo func(g *ast.GoStmt, held Set)
}

// Walk runs one function body through the engine with an initially empty
// held set.
func Walk(body *ast.BlockStmt, h Hooks) {
	w := &walker{hooks: h}
	w.funcBody(body, make(Set))
}

type walker struct {
	hooks Hooks
	// deferred collects the deferred Release keys of the function (or
	// function literal) currently being walked. Within the function the key
	// stays held — deferred releases run at return — so the keys leave the
	// held set only when funcBody finishes the walk.
	deferred map[string]bool
}

// funcBody walks one function's body: deferred releases keep their keys held
// for the whole walk, then drop them from the (caller-shared, for IIFEs)
// held set when the function returns.
func (w *walker) funcBody(b *ast.BlockStmt, held Set) {
	prev := w.deferred
	w.deferred = make(map[string]bool)
	w.block(b, held)
	for k := range w.deferred {
		delete(held, k)
	}
	w.deferred = prev
}

func (w *walker) classify(call *ast.CallExpr) (string, Op) {
	if w.hooks.Classify == nil {
		return "", None
	}
	return w.hooks.Classify(call)
}

// block walks statements in source order, threading the held set.
func (w *walker) block(b *ast.BlockStmt, held Set) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		w.stmt(s, held)
	}
}

func (w *walker) stmt(s ast.Stmt, held Set) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.block(s, held)
	case *ast.ExprStmt:
		w.expr(s.X, held)
	case *ast.DeferStmt:
		// A deferred Release runs at function return: funcBody drops the key
		// then. A deferred Acquire is ignored (locking on the way out is not
		// a pattern the suite models). Any other deferred call runs before
		// the function returns, so it is checked like a synchronous call.
		if key, op := w.classify(s.Call); op != None {
			if op == Release {
				w.deferred[key] = true
			}
			return
		}
		w.expr(s.Call, held)
	case *ast.GoStmt:
		// The spawned call runs on its own goroutine, which does not hold the
		// caller's keys — but the receiver and argument expressions evaluate
		// synchronously, on the caller's path.
		if sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok {
			w.expr(sel.X, held)
		}
		for _, arg := range s.Call.Args {
			if _, isLit := ast.Unparen(arg).(*ast.FuncLit); !isLit {
				w.expr(arg, held)
			}
		}
		if w.hooks.OnGo != nil {
			w.hooks.OnGo(s, held)
		}
	case *ast.IfStmt:
		w.stmt(s.Init, held)
		w.expr(s.Cond, held)
		w.block(s.Body, held.Copy())
		w.stmt(s.Else, held.Copy())
	case *ast.ForStmt:
		w.stmt(s.Init, held)
		w.expr(s.Cond, held)
		inner := held.Copy()
		w.block(s.Body, inner)
		w.stmt(s.Post, inner)
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.block(s.Body, held.Copy())
	case *ast.SwitchStmt:
		w.stmt(s.Init, held)
		w.expr(s.Tag, held)
		w.caseBodies(s.Body, held)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held)
		w.stmt(s.Assign, held)
		w.caseBodies(s.Body, held)
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			inner := held.Copy()
			w.stmt(cc.Comm, inner)
			for _, bs := range cc.Body {
				w.stmt(bs, inner)
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	}
}

func (w *walker) caseBodies(body *ast.BlockStmt, held Set) {
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				w.expr(e, held)
			}
			stmts = cl.Body
		case *ast.CommClause:
			stmts = cl.Body
		}
		inner := held.Copy()
		for _, s := range stmts {
			w.stmt(s, inner)
		}
	}
}

// expr walks an expression in evaluation order, applying classified ops to
// the held set and firing OnCall for synchronous calls.
func (w *walker) expr(e ast.Expr, held Set) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		if key, op := w.classify(e); op != None {
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				w.expr(sel.X, held)
			}
			switch op {
			case Acquire:
				if w.hooks.OnAcquire != nil {
					w.hooks.OnAcquire(e, key, held)
				}
				held[key] = true
			case Release:
				delete(held, key)
			}
			return
		}
		for _, arg := range e.Args {
			w.expr(arg, held)
		}
		if lit, ok := ast.Unparen(e.Fun).(*ast.FuncLit); ok {
			// An IIFE runs inline on the caller's path: it shares the held
			// set, so keys it takes or releases (including its deferred
			// releases, applied at its return) carry over to the code after it.
			w.funcBody(lit.Body, held)
			return
		}
		w.expr(e.Fun, held)
		if w.hooks.OnCall != nil {
			w.hooks.OnCall(e, held)
		}
	case *ast.FuncLit:
		// A literal that is not invoked on the spot: conservatively walked as
		// if called here (a stored closure usually is), but on a copy of the
		// held set — its traffic must not leak into the enclosing flow.
		w.funcBody(e.Body, held.Copy())
	case *ast.ParenExpr:
		w.expr(e.X, held)
	case *ast.SelectorExpr:
		w.expr(e.X, held)
	case *ast.BinaryExpr:
		w.expr(e.X, held)
		w.expr(e.Y, held)
	case *ast.UnaryExpr:
		w.expr(e.X, held)
	case *ast.StarExpr:
		w.expr(e.X, held)
	case *ast.IndexExpr:
		w.expr(e.X, held)
		w.expr(e.Index, held)
	case *ast.SliceExpr:
		w.expr(e.X, held)
		w.expr(e.Low, held)
		w.expr(e.High, held)
		w.expr(e.Max, held)
	case *ast.TypeAssertExpr:
		w.expr(e.X, held)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			w.expr(elt, held)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Value, held)
	}
}
