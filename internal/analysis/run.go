package analysis

import (
	"go/token"
)

// Run executes the analyzers over one type-checked package and returns the
// surviving diagnostics: findings covered by a justified //lint:ignore
// directive (naming the analyzer or one of its aliases) are filtered out
// here, except for analyzers that opted out with NoAutoSuppress and police
// the directives themselves.
func Run(pkg *Package, facts *Facts, analyzers []*Analyzer) ([]Diagnostic, error) {
	// Directive maps are per file; index them by file name once.
	dirs := make(map[string]map[int]Directive)
	for _, f := range pkg.Files {
		if tf := pkg.Fset.File(f.Pos()); tf != nil {
			dirs[tf.Name()] = DirectivesFor(pkg.Fset, f)
		}
	}
	var out []Diagnostic
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
		names := append([]string{a.Name}, a.Aliases...)
		for _, d := range diags {
			if !a.NoAutoSuppress && suppressed(dirs, pkg.Fset, d.Pos, names) {
				continue
			}
			out = append(out, d)
		}
	}
	SortDiagnostics(pkg.Fset, out)
	return out, nil
}

func suppressed(dirs map[string]map[int]Directive, fset *token.FileSet, pos token.Pos, names []string) bool {
	p := fset.Position(pos)
	return SanctionedAt(dirs[p.Filename], p.Line, names...)
}
