package goleak_test

import (
	"testing"

	"github.com/svgic/svgic/internal/analysis/analysistest"
	"github.com/svgic/svgic/internal/analysis/goleak"
)

func TestGoLeak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), goleak.Analyzer, "goleak/engine")
}
