// Package goleak enforces the goroutine-ownership policy in the serving
// packages (engine, session, server, store, and the svgicd binary): every
// `go` statement must be lifecycle-bound. A spawned goroutine is acceptable
// when it is
//
//   - WaitGroup-tracked: a sync.WaitGroup is Add'ed on the owner's path
//     before the spawn, the spawned body (directly or through a callee's
//     WGDone fact) calls Done on that same WaitGroup class, and the package
//     Waits on it somewhere — the Close/Shutdown join; or
//   - lifecycle-terminated: the spawned body (or a callee, per its
//     Terminates fact) selects on a context Done channel or on a channel
//     class its package closes, so the owner's shutdown reaches it.
//
// Anything else is an untracked goroutine — the repair-fan-out leak shape.
// The analyzer also reports WaitGroup.Add inside the spawned function on a
// WaitGroup the owner did not Add before the spawn: that Add races with the
// owner's Wait (Wait may observe the counter at zero and return before the
// goroutine gets scheduled), the classic Add-after-Wait bug.
//
// Held-Add tracking is flow-sensitive via the shared internal/analysis/flow
// engine; cross-function knowledge (which callees Done which WaitGroups,
// which loops terminate) arrives through the facts table, so the check sees
// through helpers in this package and in dependencies alike.
package goleak

import (
	"go/ast"
	"go/types"

	"github.com/svgic/svgic/internal/analysis"
	"github.com/svgic/svgic/internal/analysis/flow"
)

// Analyzer is the goleak check.
var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc: "report goroutines in serving packages that are neither tracked by an owner-waited sync.WaitGroup " +
		"nor terminated by a lifecycle done channel/context, and WaitGroup.Add calls inside the spawned " +
		"function (the Add-after-Wait race)",
	Run: run,
}

const advice = "track it with an owner-waited WaitGroup (Add before the spawn, Done inside, Wait in Close/Shutdown) " +
	"or terminate it with a lifecycle done channel or context"

func run(pass *analysis.Pass) error {
	if !analysis.PkgPathHasSuffix(pass.Pkg.Path(), "engine", "session", "server", "store", "telemetry", "svgicd") {
		return nil
	}
	var prod []*ast.File
	for _, file := range pass.Files {
		if !pass.InTestFile(file.Pos()) {
			prod = append(prod, file)
		}
	}
	c := &checker{
		pass:   pass,
		closed: analysis.ClosedChanClasses(prod, pass.TypesInfo),
		waits:  waitClasses(prod, pass.TypesInfo),
	}
	// The hooks thread the set of WaitGroup classes Add'ed on the current
	// path; the variable is named so nested goroutine bodies can re-enter
	// the same walk with a fresh set.
	var hooks flow.Hooks
	hooks = flow.Hooks{
		Classify: func(call *ast.CallExpr) (string, flow.Op) {
			class, method := analysis.WaitGroupOp(pass.TypesInfo, call)
			switch method {
			case "Add":
				return class, flow.Acquire
			case "Done":
				return class, flow.Release
			}
			return "", flow.None
		},
		OnGo: func(g *ast.GoStmt, held flow.Set) { c.spawn(g, held, hooks) },
	}
	for _, file := range prod {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				flow.Walk(fd.Body, hooks)
			}
		}
	}
	return nil
}

type checker struct {
	pass   *analysis.Pass
	closed map[string]bool // channel classes the package closes
	waits  map[string]bool // WaitGroup classes the package Waits on
}

// spawn judges one `go` statement with the WaitGroup classes Add'ed on the
// owner's path at the spawn point.
func (c *checker) spawn(g *ast.GoStmt, held flow.Set, hooks flow.Hooks) {
	info := c.pass.TypesInfo
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		c.checkLiteral(g, lit, held)
		// The literal's own spawns are judged with the literal's own Adds.
		flow.Walk(lit.Body, hooks)
		return
	}
	fn := analysis.Callee(info, g.Call)
	if fn == nil {
		c.pass.Reportf(g.Pos(), "untracked goroutine: the spawned function value cannot be resolved statically; %s", advice)
		return
	}
	fact := c.pass.Facts.Of(fn)
	if fact.Terminates || c.tracked(fact.WGDone, held) {
		return
	}
	c.pass.Reportf(g.Pos(), "untracked goroutine %s: not WaitGroup-tracked and not lifecycle-terminated; %s", fn.Name(), advice)
}

// checkLiteral judges a `go func(){...}()` body: Done/termination evidence
// makes it lifecycle-bound, and Adds on a WaitGroup the owner did not
// reserve before the spawn are the Add-after-Wait race.
func (c *checker) checkLiteral(g *ast.GoStmt, lit *ast.FuncLit, held flow.Set) {
	info := c.pass.TypesInfo
	tracked := false
	terminates := analysis.TerminatesLifecycle(lit.Body, info, c.closed)
	analysis.SyncCalls(lit.Body, func(call *ast.CallExpr) {
		if class, method := analysis.WaitGroupOp(info, call); class != "" {
			switch method {
			case "Done":
				if held[class] && c.waits[class] {
					tracked = true
				}
			case "Add":
				if !held[class] && wgDeclaredOutside(info, call, lit) {
					c.pass.Reportf(call.Pos(), "sync.WaitGroup.Add inside the spawned goroutine races with the owner's Wait; Add on the owner's path before the go statement")
				}
			}
			return
		}
		fact := c.pass.Facts.Of(analysis.Callee(info, call))
		if fact.Terminates {
			terminates = true
		}
		if c.tracked(fact.WGDone, held) {
			tracked = true
		}
	})
	if !tracked && !terminates {
		c.pass.Reportf(g.Pos(), "untracked goroutine: not WaitGroup-tracked and not lifecycle-terminated; %s", advice)
	}
}

// tracked: some WaitGroup class was Add'ed by the owner before the spawn,
// is Done'd by the spawned code, and is Waited on in this package.
func (c *checker) tracked(done []string, held flow.Set) bool {
	for _, class := range done {
		if held[class] && c.waits[class] {
			return true
		}
	}
	return false
}

// waitClasses scans the package — literals and goroutine bodies included,
// joiners legitimately Wait inside both — for WaitGroup classes Waited on.
func waitClasses(files []*ast.File, info *types.Info) map[string]bool {
	out := make(map[string]bool)
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if class, method := analysis.WaitGroupOp(info, call); method == "Wait" {
					out[class] = true
				}
			}
			return true
		})
	}
	return out
}

// wgDeclaredOutside reports whether the WaitGroup operated on by call is
// declared outside the spawned literal. A WaitGroup created inside the
// goroutine (a local fan-out join the goroutine itself waits on) cannot race
// with an owner's Wait.
func wgDeclaredOutside(info *types.Info, call *ast.CallExpr, lit *ast.FuncLit) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	var obj types.Object
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	case *ast.Ident:
		obj = info.Uses[x]
	}
	return obj != nil && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End())
}
