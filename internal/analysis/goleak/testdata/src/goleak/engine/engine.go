// Package engine is the goleak fixture: the repair-fan-out goroutine shapes
// from the tree's history, good and bad. The package path ends in /engine so
// the analyzer's serving-package scope applies.
package engine

import (
	"context"
	"sync"
)

// Owner is the canonical lifecycle owner: a WaitGroup its Close waits on and
// a done channel its Close closes.
type Owner struct {
	wg   sync.WaitGroup
	done chan struct{}
	tick chan int
	n    int
}

// Start spawns the two owner-tracked loops: Add on the owner's path, Done
// inside the spawned function (directly, or through the finish helper whose
// WGDone fact carries the knowledge), Wait in Close.
func (o *Owner) Start() {
	o.wg.Add(2)
	go o.loop()
	go o.flush()
}

func (o *Owner) loop() {
	defer o.wg.Done()
	for {
		select {
		case <-o.done:
			return
		case v := <-o.tick:
			o.n += v
		}
	}
}

func (o *Owner) flush() {
	defer o.finish()
	o.n++
}

func (o *Owner) finish() { o.wg.Done() }

// StartWatcher spawns a goroutine bound by termination instead of tracking:
// watch selects on the done channel Close closes.
func (o *Owner) StartWatcher() {
	go o.watch()
}

func (o *Owner) watch() {
	for {
		select {
		case <-o.done:
			return
		case <-o.tick:
		}
	}
}

// WatchCtx is context-bound: the literal selects on ctx.Done().
func (o *Owner) WatchCtx(ctx context.Context) {
	go func() {
		select {
		case <-ctx.Done():
		case <-o.tick:
		}
	}()
}

// Close is the join point: release the loops, then wait for the tracked ones.
func (o *Owner) Close() {
	close(o.done)
	o.wg.Wait()
}

func (o *Owner) poke() { o.n++ }

// Leak is the plain untracked spawn: no Add, no Done, no termination.
func (o *Owner) Leak() {
	go func() { // want `untracked goroutine: not WaitGroup-tracked and not lifecycle-terminated`
		o.poke()
	}()
}

// LeakNamed spawns a named method that neither Dones a WaitGroup nor
// terminates.
func (o *Owner) LeakNamed() {
	go o.poke() // want `untracked goroutine poke: not WaitGroup-tracked and not lifecycle-terminated`
}

// Submit spawns an arbitrary function value: nothing provable about it.
func (o *Owner) Submit(fn func()) {
	go fn() // want `untracked goroutine: the spawned function value cannot be resolved statically`
}

// AddForgotten reserves on the owner's path but the goroutine never pays it
// back — not tracked (and Close would hang, the dual bug).
func (o *Owner) AddForgotten() {
	o.wg.Add(1)
	go func() { // want `untracked goroutine: not WaitGroup-tracked and not lifecycle-terminated`
		o.poke()
	}()
}

// AddInside is the Add-after-Wait race: the goroutine registers itself after
// the spawn, so Close's Wait can observe zero and return first.
func (o *Owner) AddInside() {
	go func() { // want `untracked goroutine: not WaitGroup-tracked and not lifecycle-terminated`
		o.wg.Add(1) // want `sync\.WaitGroup\.Add inside the spawned goroutine races with the owner's Wait`
		defer o.wg.Done()
		<-o.done
	}()
}

// StartNested: the outer literal is tracked, but the goroutine it spawns in
// turn is bound to nothing.
func (o *Owner) StartNested() {
	o.wg.Add(1)
	go func() {
		defer o.wg.Done()
		go o.poke() // want `untracked goroutine poke: not WaitGroup-tracked and not lifecycle-terminated`
		<-o.done
	}()
}

// Fire has a WaitGroup nobody waits on: Add/Done bookkeeping without a join
// is not lifecycle tracking.
type Fire struct {
	wg sync.WaitGroup
	n  int
}

func (f *Fire) Launch() {
	f.wg.Add(1)
	go func() { // want `untracked goroutine: not WaitGroup-tracked and not lifecycle-terminated`
		defer f.wg.Done()
		f.n++
	}()
}

// Pool drains with a range loop over a channel its Close closes — the store
// shard-writer shape.
type Pool struct {
	ch  chan int
	sum int
}

func (p *Pool) Start() {
	go p.drain()
}

func (p *Pool) drain() {
	for v := range p.ch {
		p.sum += v
	}
}

func (p *Pool) Close() { close(p.ch) }

// FanOut is the scoped fan-out join: a local WaitGroup, Add before each
// spawn, Done inside, Wait before returning. The goroutine-local WaitGroup
// it builds internally (inner) is its own business, not a race.
func FanOut(jobs []int) []int {
	var wg sync.WaitGroup
	out := make([]int, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func(i, j int) {
			defer wg.Done()
			var inner sync.WaitGroup
			inner.Add(1)
			inner.Done()
			inner.Wait()
			out[i] = j * 2
		}(i, j)
	}
	wg.Wait()
	return out
}
