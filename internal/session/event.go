package session

import (
	"errors"
	"fmt"

	"github.com/svgic/svgic/internal/core"
)

// EventType names one kind of live-session event.
type EventType string

// The four event kinds of the live-session protocol, mirroring the dynamic
// scenario of the paper's Extension F.
const (
	// EventJoin admits a new shopper: Pref carries their per-item
	// preferences, Friends their social ties to standing users.
	EventJoin EventType = "join"
	// EventLeave removes shopper User from the store; their former friends
	// rebalance with one best-response pass.
	EventLeave EventType = "leave"
	// EventUpdatePreference replaces shopper User's preference vector with
	// Pref and reacts with best responses for them and their friends.
	EventUpdatePreference EventType = "updatePreference"
	// EventRebalance runs up to MaxPasses best-response passes over all
	// active shoppers (the local-search step of Extension F).
	EventRebalance EventType = "rebalance"
)

// DefaultRebalancePasses is used when a rebalance event carries no
// maxPasses.
const DefaultRebalancePasses = 3

// MaxRebalancePasses caps the per-event pass count: events arrive from
// untrusted JSON, and an unbounded pass budget would let one request pin a
// session's serializing lock arbitrarily long.
const MaxRebalancePasses = 16

// TieJSON is the wire form of one friend tie of a join event: the standing
// user's id plus the per-item social utilities in both directions (omitted =
// all-zero; present = exactly `items` entries).
type TieJSON struct {
	ID  int       `json:"id"`
	Out []float64 `json:"out,omitempty"`
	In  []float64 `json:"in,omitempty"`
}

// Event is one typed, JSON-encodable live-session event. Exactly the fields
// of its type may be set; Validate rejects cross-type leakage so a malformed
// trace fails loudly instead of silently dropping intent.
//
//	{"type": "join", "pref": [0.9, 0.1], "friends": [{"id": 0, "out": [0.3, 0]}]}
//	{"type": "leave", "user": 3}
//	{"type": "updatePreference", "user": 2, "pref": [0, 1]}
//	{"type": "rebalance", "maxPasses": 2}
type Event struct {
	Type      EventType `json:"type"`
	User      int       `json:"user,omitempty"`      // leave, updatePreference
	Pref      []float64 `json:"pref,omitempty"`      // join, updatePreference
	Friends   []TieJSON `json:"friends,omitempty"`   // join
	MaxPasses int       `json:"maxPasses,omitempty"` // rebalance
}

// EventResult reports what applying one event did: the affected user (the
// assigned id for a join) and the best-response improvement where the event
// kind produces one.
type EventResult struct {
	Type EventType `json:"type"`
	User int       `json:"user"`
	Gain float64   `json:"gain,omitempty"`
}

// Validate checks the event's structure (field presence per type, bounded
// pass budgets, no duplicate friend ids). Value-level checks — vector
// lengths, finiteness, user liveness — happen in core when the event is
// applied against a concrete session.
func (ev *Event) Validate() error {
	switch ev.Type {
	case EventJoin:
		if ev.Pref == nil {
			return errors.New(`session: join event requires "pref"`)
		}
		if ev.User != 0 {
			return errors.New(`session: join event does not take "user" (ids are assigned by the session)`)
		}
		if ev.MaxPasses != 0 {
			return errors.New(`session: join event does not take "maxPasses"`)
		}
		seen := make(map[int]struct{}, len(ev.Friends))
		for _, tie := range ev.Friends {
			if _, dup := seen[tie.ID]; dup {
				return fmt.Errorf("session: join event declares friend %d twice", tie.ID)
			}
			seen[tie.ID] = struct{}{}
		}
	case EventLeave:
		if ev.Pref != nil || ev.Friends != nil || ev.MaxPasses != 0 {
			return errors.New(`session: leave event takes only "user"`)
		}
		if ev.User < 0 {
			return fmt.Errorf("session: leave event user %d is negative", ev.User)
		}
	case EventUpdatePreference:
		if ev.Pref == nil {
			return errors.New(`session: updatePreference event requires "pref"`)
		}
		if ev.Friends != nil || ev.MaxPasses != 0 {
			return errors.New(`session: updatePreference event takes only "user" and "pref"`)
		}
		if ev.User < 0 {
			return fmt.Errorf("session: updatePreference event user %d is negative", ev.User)
		}
	case EventRebalance:
		if ev.Pref != nil || ev.Friends != nil || ev.User != 0 {
			return errors.New(`session: rebalance event takes only "maxPasses"`)
		}
		if ev.MaxPasses < 0 || ev.MaxPasses > MaxRebalancePasses {
			return fmt.Errorf("session: rebalance maxPasses %d out of [0,%d]", ev.MaxPasses, MaxRebalancePasses)
		}
	case "":
		return errors.New(`session: event is missing "type"`)
	default:
		return fmt.Errorf("session: unknown event type %q (want join|leave|updatePreference|rebalance)", ev.Type)
	}
	return nil
}

// ties converts the wire friend list to the core representation.
func (ev *Event) ties() core.FriendTies {
	if len(ev.Friends) == 0 {
		return nil
	}
	ties := make(core.FriendTies, len(ev.Friends))
	for _, t := range ev.Friends {
		ties[t.ID] = core.FriendTie{Out: t.Out, In: t.In}
	}
	return ties
}

// Apply validates ev and applies it to a dynamic session. It is the single
// event-application semantics shared by the live Session, offline trace
// replay and the equivalence tests — one code path, so a server-side replay
// and a library replay of the same trace agree bit-for-bit.
func Apply(ds *core.DynamicSession, ev Event) (EventResult, error) {
	if err := ev.Validate(); err != nil {
		return EventResult{}, err
	}
	switch ev.Type {
	case EventJoin:
		id, err := ds.Join(ev.Pref, ev.ties())
		if err != nil {
			return EventResult{}, err
		}
		return EventResult{Type: ev.Type, User: id}, nil
	case EventLeave:
		if err := ds.Leave(ev.User); err != nil {
			return EventResult{}, err
		}
		return EventResult{Type: ev.Type, User: ev.User}, nil
	case EventUpdatePreference:
		gain, err := ds.UpdatePreference(ev.User, ev.Pref)
		if err != nil {
			return EventResult{}, err
		}
		return EventResult{Type: ev.Type, User: ev.User, Gain: gain}, nil
	default: // EventRebalance; Validate rejected everything else
		passes := ev.MaxPasses
		if passes == 0 {
			passes = DefaultRebalancePasses
		}
		return EventResult{Type: ev.Type, Gain: ds.Rebalance(passes)}, nil
	}
}

// Replay applies a whole trace to a dynamic session, stopping at the first
// failing event. It returns the number of events applied.
func Replay(ds *core.DynamicSession, events []Event) (int, error) {
	for i, ev := range events {
		if _, err := Apply(ds, ev); err != nil {
			return i, fmt.Errorf("session: event %d: %w", i, err)
		}
	}
	return len(events), nil
}
