package session

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// TestRepairObserver pins the telemetry contract: the hook fires once per
// repair cycle that got past the version check (swap or keep alike), and
// never for the version-unchanged skip path.
func TestRepairObserver(t *testing.T) {
	var calls atomic.Int64
	m, _ := newTestManager(t, Options{
		RepairObserver: func(d time.Duration) {
			if d < 0 {
				t.Errorf("observed negative repair duration %v", d)
			}
			calls.Add(1)
		},
	})
	ctx := context.Background()
	snap, _, err := m.CreateWith(ctx, testInstance(5), CreateSpec{})
	if err != nil {
		t.Fatal(err)
	}

	// First cycle re-solves (never repaired before): observed.
	m.RepairAll(ctx)
	if got := calls.Load(); got != 1 {
		t.Fatalf("observer calls after first cycle = %d, want 1", got)
	}

	// Nothing moved: the skip path must not be observed.
	m.RepairAll(ctx)
	if got := calls.Load(); got != 1 {
		t.Fatalf("observer calls after skipped cycle = %d, want 1", got)
	}

	// Advance the version so the next cycle actually runs.
	if _, err := m.Apply(snap.ID, []Event{{Type: EventRebalance, MaxPasses: 1}}); err != nil {
		t.Fatal(err)
	}
	m.RepairAll(ctx)
	if got := calls.Load(); got != 2 {
		t.Fatalf("observer calls after third cycle = %d, want 2", got)
	}
}
