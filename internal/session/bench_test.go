package session

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/svgic/svgic/internal/datasets"
	"github.com/svgic/svgic/internal/engine"
)

// BenchmarkManagerSharded measures serving-path contention: W concurrent
// workers hammering snapshot reads over a manager partitioned into S shards.
// shards=1 reproduces the old single-lock manager exactly (one mutex in
// front of one map), so each workers=W column is a direct single-lock vs
// sharded comparison. GOMAXPROCS is raised to the worker count for the
// duration of each sub-benchmark: RunParallel spawns GOMAXPROCS goroutines,
// and the lock convoy under measurement only exists when that many OS
// threads can actually interleave — without this, a 1-CPU CI runner would
// silently serialize the workers and measure nothing.
func BenchmarkManagerSharded(b *testing.B) {
	eng := engine.New(engine.Options{Workers: 2})
	defer eng.Close()
	for _, shards := range []int{1, 4, 8} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(workers)
				defer runtime.GOMAXPROCS(prev)
				m, err := NewManager(Options{Engine: eng, Shards: shards, MaxSessions: 4096})
				if err != nil {
					b.Fatal(err)
				}
				defer m.Close()
				const nSessions = 128
				ids := make([]string, nSessions)
				for i := range ids {
					snap, _, err := m.CreateWith(context.Background(), testInstance(uint64(i%8)), CreateSpec{})
					if err != nil {
						b.Fatal(err)
					}
					ids[i] = snap.ID
				}
				var seq atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					// Distinct stride origin per worker, so workers walk the
					// session pool out of phase instead of in lockstep on the
					// same shard.
					i := int(seq.Add(1)) * 31
					for pb.Next() {
						i++
						if _, err := m.Snapshot(ids[i%nSessions]); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// BenchmarkRepairCycle measures one drift-repair cycle on a 1000-user
// session of 40 independent 25-user subgroups after a single preference
// event. The delta mode is the default pipeline: re-solve only the one dirty
// component and overlay it, warm-started from the incumbent. The full mode
// disables both (NoDeltaRepair + NoWarmStart), re-solving the whole
// 1000-user instance cold every cycle — the pre-incremental behavior. The
// engine cache is disabled so each cycle pays for its solves; RepairMargin
// -1 makes every cycle a swap, keeping the two modes on the same code path
// every iteration instead of diverging into keeps.
func BenchmarkRepairCycle(b *testing.B) {
	in := datasets.MultiGroup(7, 40, 25, 30, 2, 0.5)
	prefs := make([][]float64, 2)
	for i := range prefs {
		prefs[i] = make([]float64, in.NumItems)
		for c := range prefs[i] {
			prefs[i][c] = float64((i+c)%7) / 7
		}
	}
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{name: "delta", opts: Options{RepairMargin: -1}},
		{name: "full", opts: Options{RepairMargin: -1, NoDeltaRepair: true, NoWarmStart: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			eng := engine.New(engine.Options{Workers: 2, CacheSize: -1})
			defer eng.Close()
			opts := mode.opts
			opts.Engine = eng
			m, err := NewManager(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			ctx := context.Background()
			snap, _, err := m.CreateWith(ctx, in, CreateSpec{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := Event{Type: EventUpdatePreference, User: i % 25, Pref: prefs[i%2]}
				if _, err := m.Apply(snap.ID, []Event{ev}); err != nil {
					b.Fatal(err)
				}
				m.RepairAll(ctx)
			}
		})
	}
}
