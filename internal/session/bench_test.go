package session

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/svgic/svgic/internal/engine"
)

// BenchmarkManagerSharded measures serving-path contention: W concurrent
// workers hammering snapshot reads over a manager partitioned into S shards.
// shards=1 reproduces the old single-lock manager exactly (one mutex in
// front of one map), so each workers=W column is a direct single-lock vs
// sharded comparison. GOMAXPROCS is raised to the worker count for the
// duration of each sub-benchmark: RunParallel spawns GOMAXPROCS goroutines,
// and the lock convoy under measurement only exists when that many OS
// threads can actually interleave — without this, a 1-CPU CI runner would
// silently serialize the workers and measure nothing.
func BenchmarkManagerSharded(b *testing.B) {
	eng := engine.New(engine.Options{Workers: 2})
	defer eng.Close()
	for _, shards := range []int{1, 4, 8} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(workers)
				defer runtime.GOMAXPROCS(prev)
				m, err := NewManager(Options{Engine: eng, Shards: shards, MaxSessions: 4096})
				if err != nil {
					b.Fatal(err)
				}
				defer m.Close()
				const nSessions = 128
				ids := make([]string, nSessions)
				for i := range ids {
					snap, _, err := m.CreateWith(context.Background(), testInstance(uint64(i%8)), CreateSpec{})
					if err != nil {
						b.Fatal(err)
					}
					ids[i] = snap.ID
				}
				var seq atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					// Distinct stride origin per worker, so workers walk the
					// session pool out of phase instead of in lockstep on the
					// same shard.
					i := int(seq.Add(1)) * 31
					for pb.Next() {
						i++
						if _, err := m.Snapshot(ids[i%nSessions]); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}
