package session

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestShardForIDDeterminism: the routing is canonical FNV-1a over the id
// bytes — a pure, process-independent function, so a session restored after
// a restart lands on the shard that will serve it. Asserted against the
// stdlib FNV-1a, not a second copy of our own arithmetic.
func TestShardForIDDeterminism(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for n := 0; n < 1000; n++ {
		id := fmt.Sprintf("s%06d-%08x", n, rng.Uint32())
		for _, shards := range []int{1, 2, 4, 8, 16} {
			h := fnv.New32a()
			h.Write([]byte(id))
			want := int(h.Sum32() % uint32(shards))
			if got := ShardForID(id, shards); got != want {
				t.Fatalf("ShardForID(%q, %d) = %d, canonical FNV-1a says %d", id, shards, got, want)
			}
			if again := ShardForID(id, shards); again != want {
				t.Fatalf("ShardForID(%q, %d) not stable: %d then %d", id, shards, want, again)
			}
		}
	}
}

// TestShardDistribution: 10k ids in the manager's own id format spread
// within ±20% of uniform over 8 shards — the partition cannot concentrate
// load on a hot shard.
func TestShardDistribution(t *testing.T) {
	const (
		shards = 8
		n      = 10000
	)
	rng := rand.New(rand.NewPCG(7, 11))
	counts := make([]int, shards)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%06d-%08x", i+1, rng.Uint32())
		counts[ShardForID(id, shards)]++
	}
	uniform := float64(n) / shards
	for i, c := range counts {
		if dev := float64(c)/uniform - 1; dev > 0.20 || dev < -0.20 {
			t.Errorf("shard %d holds %d ids, %+.1f%% off uniform %g (counts %v)", i, c, 100*dev, uniform, counts)
		}
	}
}

// TestRestoreRoutesToOwningShard: Restore installs the session into the
// shard its id hashes to, not wherever is convenient — the invariant that
// makes per-shard eviction and repair see every session exactly once after
// a crash.
func TestRestoreRoutesToOwningShard(t *testing.T) {
	src, eng := newTestManager(t, Options{})
	snap, _, err := src.CreateWith(context.Background(), testInstance(61), CreateSpec{TTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	s, err := src.get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	st := s.stateLocked()
	s.mu.Unlock()

	dst, _ := newTestManager(t, Options{Engine: eng, Shards: 8})
	if _, err := dst.Restore(st, nil, 0); err != nil {
		t.Fatal(err)
	}
	owner := dst.shardOf(st.ID)
	owner.mu.Lock()
	_, onOwner := owner.sessions[st.ID]
	owner.mu.Unlock()
	if !onOwner {
		t.Fatalf("restored session %s not on its owning shard %d", st.ID, owner.idx)
	}
	if got := dst.shards[owner.idx].restored.Load(); got != 1 {
		t.Fatalf("owning shard restored counter = %d, want 1", got)
	}
	if st.TTL != time.Hour {
		t.Fatalf("TTL override lost from durable state: %v", st.TTL)
	}
	restored, err := dst.get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if restored.ttl != time.Hour {
		t.Fatalf("restored session ttl = %v, want 1h", restored.ttl)
	}
}

// TestPerSessionTTLOverride: a CreateSpec.TTL session is evicted after ITS
// idle bound even on a manager whose global TTL is zero, and a session
// without the override on the same manager is never evicted.
func TestPerSessionTTLOverride(t *testing.T) {
	m, _ := newTestManager(t, Options{Shards: 4})
	base := time.Now()
	m.now = func() time.Time { return base }
	ctx := context.Background()

	mortal, _, err := m.CreateWith(ctx, testInstance(62), CreateSpec{TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	immortal, _, err := m.CreateWith(ctx, testInstance(63), CreateSpec{})
	if err != nil {
		t.Fatal(err)
	}
	base = base.Add(2 * time.Minute)
	if n := m.EvictIdle(); n != 1 {
		t.Fatalf("EvictIdle = %d, want 1 (only the TTL-override session)", n)
	}
	if _, err := m.Snapshot(mortal.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("override session after eviction: %v, want ErrNotFound", err)
	}
	if _, err := m.Snapshot(immortal.ID); err != nil {
		t.Fatalf("no-TTL session evicted on a TTL-0 manager: %v", err)
	}
	if st := m.Stats(); st.Evicted != 1 || st.Live != 1 {
		t.Fatalf("stats after override eviction: %+v", st)
	}
}

// TestTTLOverrideArmsShardSweep: creating a short-TTL session on a manager
// with no global TTL wakes the owning shard's goroutine into running the
// eviction sweep — no manual EvictIdle call anywhere.
func TestTTLOverrideArmsShardSweep(t *testing.T) {
	m, _ := newTestManager(t, Options{Shards: 2})
	snap, _, err := m.CreateWith(context.Background(), testInstance(64), CreateSpec{TTL: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := m.Snapshot(snap.ID); errors.Is(err, ErrNotFound) {
			return // evicted by the shard's own sweep
		}
		// NOT polling via Snapshot alone — a read refreshes the idle clock,
		// so back off well past the TTL between probes.
		time.Sleep(60 * time.Millisecond)
	}
	t.Fatal("session with a 40ms TTL override never evicted by the shard sweep")
}

// TestDeprecatedCreateDelegates: the positional wrapper still works and is
// exactly CreateWith with a two-field spec.
func TestDeprecatedCreateDelegates(t *testing.T) {
	m, _ := newTestManager(t, Options{})
	//lint:ignore SA1019 the deprecated wrapper is exercised deliberately
	snap, sol, err := m.Create(context.Background(), testInstance(65), nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sol == nil || snap.SizeCap != 3 {
		t.Fatalf("wrapper lost its arguments: sizeCap=%d sol=%v", snap.SizeCap, sol)
	}
	if err := m.Delete(snap.ID); err != nil {
		t.Fatal(err)
	}
}

// TestShardStatsMergeToManagerStats: the per-shard counter slices sum to
// the merged Stats, and live counts agree between the global atomic and the
// per-shard ones — no counter is dropped or double-attributed by sharding.
func TestShardStatsMergeToManagerStats(t *testing.T) {
	m, _ := newTestManager(t, Options{Shards: 4})
	ctx := context.Background()
	var ids []string
	for i := 0; i < 12; i++ {
		snap, _, err := m.CreateWith(ctx, testInstance(uint64(70+i)), CreateSpec{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
		if _, err := m.Apply(snap.ID, []Event{{Type: EventRebalance}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	per := m.ShardStats()
	if len(per) != 4 || m.Shards() != 4 {
		t.Fatalf("shard count: len(per)=%d Shards()=%d, want 4", len(per), m.Shards())
	}
	var sum ShardStats
	for i, sp := range per {
		if sp.Shard != i {
			t.Fatalf("shard slice %d claims index %d", i, sp.Shard)
		}
		sum.Live += sp.Live
		sum.Created += sp.Created
		sum.Deleted += sp.Deleted
		sum.EventsApplied += sp.EventsApplied
	}
	if sum.Live != st.Live || st.Live != m.Len() {
		t.Fatalf("live mismatch: per-shard %d, merged %d, Len %d", sum.Live, st.Live, m.Len())
	}
	if sum.Created != st.Created || sum.Created != 12 {
		t.Fatalf("created mismatch: per-shard %d, merged %d, want 12", sum.Created, st.Created)
	}
	if sum.Deleted != st.Deleted || sum.Deleted != 1 {
		t.Fatalf("deleted mismatch: per-shard %d, merged %d, want 1", sum.Deleted, st.Deleted)
	}
	if sum.EventsApplied != st.EventsApplied || sum.EventsApplied != 12 {
		t.Fatalf("events mismatch: per-shard %d, merged %d, want 12", sum.EventsApplied, st.EventsApplied)
	}
}

// TestCrossShardStress: concurrent create / apply / snapshot / delete /
// restore / evict / stats across every shard of a small-shard manager, run
// under -race in CI. The assertions at the end are conservation laws: every
// session ever admitted is exactly one of live, deleted, evicted or closed
// with the manager.
func TestCrossShardStress(t *testing.T) {
	m, eng := newTestManager(t, Options{Shards: 4, MaxSessions: 256})
	ctx := context.Background()

	// Restorable state images, minted from throwaway sessions up front so
	// the restore goroutine exercises the cross-epoch path (ids unknown to
	// the live id minter).
	var states []*State
	{
		src, _ := newTestManager(t, Options{Engine: eng})
		for i := 0; i < 8; i++ {
			snap, _, err := src.CreateWith(ctx, testInstance(uint64(90+i)), CreateSpec{})
			if err != nil {
				t.Fatal(err)
			}
			s, err := src.get(snap.ID)
			if err != nil {
				t.Fatal(err)
			}
			s.mu.Lock()
			st := s.stateLocked()
			s.mu.Unlock()
			st.ID = fmt.Sprintf("epoch0-%02d", i)
			states = append(states, st)
		}
		src.Close()
	}

	var (
		wg       sync.WaitGroup
		created  atomic.Uint64
		deleted  atomic.Uint64
		restored atomic.Uint64
	)
	var idMu sync.Mutex
	var idPool []string
	pushID := func(id string) { idMu.Lock(); idPool = append(idPool, id); idMu.Unlock() }
	takeID := func() (string, bool) {
		idMu.Lock()
		defer idMu.Unlock()
		if len(idPool) == 0 {
			return "", false
		}
		id := idPool[len(idPool)-1]
		idPool = idPool[:len(idPool)-1]
		return id, true
	}
	peekID := func() (string, bool) {
		idMu.Lock()
		defer idMu.Unlock()
		if len(idPool) == 0 {
			return "", false
		}
		return idPool[0], true
	}

	const rounds = 30
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) { // creators
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				snap, _, err := m.CreateWith(ctx, testInstance(uint64(100+10*g+i%7)), CreateSpec{})
				if err != nil {
					if errors.Is(err, ErrLimit) {
						continue
					}
					t.Error(err)
					return
				}
				created.Add(1)
				pushID(snap.ID)
			}
		}(g)
	}
	wg.Add(1)
	go func() { // restorer
		defer wg.Done()
		for _, st := range states {
			if _, err := m.Restore(st, nil, 0); err != nil {
				t.Error(err)
				return
			}
			restored.Add(1)
			pushID(st.ID)
		}
	}()
	wg.Add(1)
	go func() { // deleter
		defer wg.Done()
		for i := 0; i < 2*rounds; i++ {
			id, ok := takeID()
			if !ok {
				time.Sleep(time.Millisecond)
				continue
			}
			switch err := m.Delete(id); {
			case err == nil:
				deleted.Add(1)
			case errors.Is(err, ErrNotFound):
			default:
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() { // appliers + readers
			defer wg.Done()
			for i := 0; i < 2*rounds; i++ {
				id, ok := peekID()
				if !ok {
					time.Sleep(time.Millisecond)
					continue
				}
				if _, err := m.Apply(id, []Event{{Type: EventRebalance}}); err != nil && !errors.Is(err, ErrNotFound) {
					t.Error(err)
					return
				}
				if _, err := m.Snapshot(id); err != nil && !errors.Is(err, ErrNotFound) {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // sweepers: eviction (a no-op without TTLs, but takes every path) + stats scrapes
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			m.EvictIdle()
			st := m.Stats()
			if st.Live < 0 || st.Live > 256 {
				t.Errorf("impossible live count %d", st.Live)
				return
			}
			_ = m.ShardStats()
			_ = m.Len()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	st := m.Stats()
	if st.Created != created.Load() || st.Restored != restored.Load() || st.Deleted != deleted.Load() {
		t.Fatalf("counter drift: manager %+v vs observed created=%d restored=%d deleted=%d",
			st, created.Load(), restored.Load(), deleted.Load())
	}
	admitted := st.Created + st.Restored
	gone := st.Deleted + st.Evicted
	if uint64(st.Live) != admitted-gone {
		t.Fatalf("conservation broken: live %d != admitted %d - gone %d", st.Live, admitted, gone)
	}
	if st.Live != m.Len() {
		t.Fatalf("Len %d != Stats.Live %d", m.Len(), st.Live)
	}
	var perLive int
	for _, sp := range m.ShardStats() {
		perLive += sp.Live
	}
	if perLive != st.Live {
		t.Fatalf("per-shard live %d != global live %d", perLive, st.Live)
	}
}
