package session

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/datasets"
	"github.com/svgic/svgic/internal/engine"
)

func newTestManager(t *testing.T, opts Options) (*Manager, *engine.Engine) {
	t.Helper()
	if opts.Engine == nil {
		opts.Engine = engine.New(engine.Options{Workers: 2})
		t.Cleanup(opts.Engine.Close)
	}
	m, err := NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m, opts.Engine
}

func testInstance(seed uint64) *core.Instance {
	return datasets.MultiGroup(seed, 2, 4, 12, 2, 0.5)
}

// TestEventValidate: each event type accepts exactly its own fields.
func TestEventValidate(t *testing.T) {
	pref := make([]float64, 3)
	valid := []Event{
		{Type: EventJoin, Pref: pref},
		{Type: EventJoin, Pref: pref, Friends: []TieJSON{{ID: 0}}},
		{Type: EventLeave, User: 1},
		{Type: EventUpdatePreference, User: 0, Pref: pref},
		{Type: EventRebalance},
		{Type: EventRebalance, MaxPasses: MaxRebalancePasses},
	}
	for i, ev := range valid {
		if err := ev.Validate(); err != nil {
			t.Errorf("valid event %d rejected: %v", i, err)
		}
	}
	invalid := []Event{
		{},                                     // no type
		{Type: "jump"},                         // unknown type
		{Type: EventJoin},                      // join without pref
		{Type: EventJoin, Pref: pref, User: 2}, // join with user
		{Type: EventJoin, Pref: pref, MaxPasses: 1},                              // join with passes
		{Type: EventJoin, Pref: pref, Friends: []TieJSON{{ID: 1}, {ID: 1}}},      // duplicate friend
		{Type: EventLeave, User: -1},                                             // negative user
		{Type: EventLeave, User: 1, Pref: pref},                                  // leave with pref
		{Type: EventUpdatePreference, User: 0},                                   // update without pref
		{Type: EventUpdatePreference, User: 0, Pref: pref, Friends: []TieJSON{}}, // update with friends
		{Type: EventRebalance, MaxPasses: MaxRebalancePasses + 1},                // unbounded passes
		{Type: EventRebalance, MaxPasses: -1},
		{Type: EventRebalance, User: 3},
	}
	for i, ev := range invalid {
		if err := ev.Validate(); err == nil {
			t.Errorf("invalid event %d accepted", i)
		}
	}
}

// TestManagerReplayEquivalence: applying a generated trace through the
// manager produces, bit for bit, the value and version an offline
// core.DynamicSession replay of the same trace reaches from the same solve.
func TestManagerReplayEquivalence(t *testing.T) {
	m, eng := newTestManager(t, Options{})
	in := testInstance(11)
	events := GenerateEvents(in.NumUsers(), in.NumItems, 30, 99)

	snap, sol, err := m.CreateWith(context.Background(), in, CreateSpec{})
	if err != nil {
		t.Fatal(err)
	}
	var res ApplyResult
	for at := 0; at < len(events); at += 7 {
		end := min(at+7, len(events))
		res, err = m.Apply(snap.ID, events[at:end])
		if err != nil {
			t.Fatalf("events[%d:%d]: %v", at, end, err)
		}
	}
	if res.Version != uint64(len(events)) {
		t.Fatalf("version = %d, want %d", res.Version, len(events))
	}

	// Offline replay from the same engine solve (cache-hit: identical
	// configuration) through the same Apply semantics.
	offSol, err := eng.Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := core.NewDynamicSession(in, offSol.Config, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := Replay(ds, events); err != nil {
		t.Fatalf("offline replay stopped at %d: %v", n, err)
	}
	if got := ds.Value(); got != res.Value {
		t.Fatalf("online value %v != offline replay value %v", res.Value, got)
	}
	_ = sol

	final, err := m.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Value != res.Value || final.Version != res.Version {
		t.Fatalf("snapshot (%v, v%d) != last apply (%v, v%d)",
			final.Value, final.Version, res.Value, res.Version)
	}
	if got := len(final.Active); got != len(ds.ActiveUsers()) {
		t.Fatalf("active count %d != offline %d", got, len(ds.ActiveUsers()))
	}
}

// TestApplyPartialBatch: a failing event stops the batch, keeps the applied
// prefix, and reports the failure's index; the version counts only applied
// events.
func TestApplyPartialBatch(t *testing.T) {
	m, _ := newTestManager(t, Options{})
	in := testInstance(12)
	snap, _, err := m.CreateWith(context.Background(), in, CreateSpec{})
	if err != nil {
		t.Fatal(err)
	}
	batch := []Event{
		{Type: EventLeave, User: 0},
		{Type: EventLeave, User: 0}, // double leave: fails
		{Type: EventLeave, User: 1}, // never applied
	}
	res, err := m.Apply(snap.ID, batch)
	if err == nil {
		t.Fatal("partial batch reported success")
	}
	if len(res.Results) != 1 || res.Version != 1 {
		t.Fatalf("applied %d events at version %d, want 1 at 1", len(res.Results), res.Version)
	}
	after, err := m.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Active) != in.NumUsers()-1 {
		t.Fatalf("active = %d, want %d (only the first leave applied)", len(after.Active), in.NumUsers()-1)
	}
}

// TestManagerAdmission: the session bound rejects creates with ErrLimit and
// frees capacity on delete.
func TestManagerAdmission(t *testing.T) {
	m, _ := newTestManager(t, Options{MaxSessions: 2})
	ctx := context.Background()
	a, _, err := m.CreateWith(ctx, testInstance(1), CreateSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.CreateWith(ctx, testInstance(2), CreateSpec{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.CreateWith(ctx, testInstance(3), CreateSpec{}); !errors.Is(err, ErrLimit) {
		t.Fatalf("third create: %v, want ErrLimit", err)
	}
	if err := m.Delete(a.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.CreateWith(ctx, testInstance(3), CreateSpec{}); err != nil {
		t.Fatalf("create after delete: %v", err)
	}
	if err := m.Delete(a.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
	st := m.Stats()
	if st.Live != 2 || st.Created != 3 || st.Rejected != 1 || st.Deleted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestManagerTTLEviction: sessions idle past the TTL are evicted; activity
// (events or reads) keeps them alive.
func TestManagerTTLEviction(t *testing.T) {
	m, _ := newTestManager(t, Options{TTL: time.Hour})
	ctx := context.Background()
	idle, _, err := m.CreateWith(ctx, testInstance(4), CreateSpec{})
	if err != nil {
		t.Fatal(err)
	}
	busy, _, err := m.CreateWith(ctx, testInstance(5), CreateSpec{})
	if err != nil {
		t.Fatal(err)
	}

	// Fake clock: jump 90 minutes, but touch `busy` 30 minutes in.
	base := time.Now()
	m.now = func() time.Time { return base.Add(30 * time.Minute) }
	if _, err := m.Apply(busy.ID, []Event{{Type: EventRebalance, MaxPasses: 1}}); err != nil {
		t.Fatal(err)
	}
	m.now = func() time.Time { return base.Add(90 * time.Minute) }
	if got := m.EvictIdle(); got != 1 {
		t.Fatalf("evicted %d sessions, want 1", got)
	}
	if _, err := m.Snapshot(idle.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("idle session still reachable: %v", err)
	}
	if _, err := m.Snapshot(busy.ID); err != nil {
		t.Fatalf("busy session evicted: %v", err)
	}
	if st := m.Stats(); st.Evicted != 1 || st.Live != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDriftRepairSwapsAndKeeps: a session whose configuration has drifted
// below what a full re-solve achieves gets the re-solve swapped in (version
// bump, swap counter); a session already at the re-solved value keeps its
// configuration.
func TestDriftRepairSwapsAndKeeps(t *testing.T) {
	// Whole-instance, cold re-solves: the delta path and warm starts have
	// their own tests; this one pins the classic swap/keep state machine.
	m, _ := newTestManager(t, Options{RepairMargin: -1, NoDeltaRepair: true, NoWarmStart: true}) // swap on any strict improvement
	ctx := context.Background()
	in := testInstance(6)
	snap, sol, err := m.CreateWith(ctx, in, CreateSpec{})
	if err != nil {
		t.Fatal(err)
	}

	// Degrade the live configuration to a valid but deliberately bad one:
	// every shopper sees items 0..k-1, ignoring preferences and friends.
	s, err := m.get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	bad := core.NewConfiguration(in.NumUsers(), in.K)
	for u := range bad.Assign {
		for sl := range bad.Assign[u] {
			bad.Assign[u][sl] = sl
		}
	}
	if err := s.ds.Adopt(bad); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	s.value = s.ds.Value()
	degraded := s.value
	s.mu.Unlock()
	if degraded >= sol.Report.Weighted() {
		t.Fatalf("degraded value %v not below solved %v; test instance too easy", degraded, sol.Report.Weighted())
	}

	m.RepairAll(ctx)
	repaired, err := m.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Metrics.RepairSwaps != 1 {
		t.Fatalf("repair swaps = %d, want 1 (value %v -> %v)", repaired.Metrics.RepairSwaps, degraded, repaired.Value)
	}
	if repaired.Value <= degraded {
		t.Fatalf("repair did not improve value: %v -> %v", degraded, repaired.Value)
	}
	if repaired.Version != snap.Version+1 {
		t.Fatalf("swap did not bump version: %d -> %d", snap.Version, repaired.Version)
	}

	// A repair cycle on an untouched session is skipped outright; advance the
	// version with a rebalance so the second cycle actually re-solves.
	res, err := m.Apply(snap.ID, []Event{{Type: EventRebalance, MaxPasses: 2}})
	if err != nil {
		t.Fatal(err)
	}

	// Second cycle: the configuration now IS the full re-solve — keep.
	m.RepairAll(ctx)
	kept, err := m.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if kept.Metrics.RepairKeeps != 1 || kept.Metrics.RepairSwaps != 1 {
		t.Fatalf("second cycle: swaps=%d keeps=%d, want 1/1", kept.Metrics.RepairSwaps, kept.Metrics.RepairKeeps)
	}
	if kept.Version != res.Version {
		t.Fatalf("keep bumped version: %d -> %d", res.Version, kept.Version)
	}
	st := m.Stats()
	if st.RepairRuns != 2 || st.RepairSwaps != 1 || st.RepairKeeps != 1 || st.RepairErrors != 0 {
		t.Fatalf("manager repair stats = %+v", st)
	}
	if st.RepairCold != 2 || st.RepairWarm != 0 {
		t.Fatalf("NoWarmStart manager ran warm solves: %+v", st)
	}

	// Third cycle: nothing moved since the keep — skipped without a solve.
	m.RepairAll(ctx)
	if st := m.Stats(); st.RepairRuns != 2 || st.RepairSkips != 1 {
		t.Fatalf("third cycle: runs=%d skips=%d, want 2/1", st.RepairRuns, st.RepairSkips)
	}
}

// TestDriftRepairStale: events that land while a repair solve is in flight
// make its solution stale; the repair must discard it rather than clobber
// state it never saw.
func TestDriftRepairStale(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	eng := engine.New(engine.Options{
		Workers:   1,
		CacheSize: -1,
		NewSolver: func() core.Solver {
			return &gatedSolver{gate: gate, started: started, inner: &core.AVGDSolver{}}
		},
		NoDecompose: true,
	})
	t.Cleanup(eng.Close)
	m, _ := newTestManager(t, Options{Engine: eng, RepairMargin: -1})

	in := testInstance(7)
	// Create solves once through the gate.
	createDone := make(chan struct{})
	var snap Snapshot
	var createErr error
	go func() {
		defer close(createDone)
		snap, _, createErr = m.CreateWith(context.Background(), in, CreateSpec{})
	}()
	<-started
	gate <- struct{}{}
	<-createDone
	if createErr != nil {
		t.Fatal(createErr)
	}

	// Start a repair cycle; while its solve is parked on the gate, apply an
	// event. The repair's version check must then discard the solution.
	repairDone := make(chan struct{})
	go func() {
		defer close(repairDone)
		m.RepairAll(context.Background())
	}()
	<-started
	if _, err := m.Apply(snap.ID, []Event{{Type: EventLeave, User: 0}}); err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{}
	<-repairDone

	after, err := m.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.Metrics.RepairStale != 1 || after.Metrics.RepairSwaps != 0 {
		t.Fatalf("stale=%d swaps=%d, want 1/0", after.Metrics.RepairStale, after.Metrics.RepairSwaps)
	}
	if st := m.Stats(); st.RepairStale != 1 {
		t.Fatalf("manager stale counter = %d, want 1", st.RepairStale)
	}
}

// gatedSolver parks each Solve until the gate is fed, signalling `started`
// when a solve begins.
type gatedSolver struct {
	gate    <-chan struct{}
	started chan<- struct{}
	inner   core.Solver
}

func (g *gatedSolver) Name() string { return "gated" }

func (g *gatedSolver) Solve(ctx context.Context, in *core.Instance) (*core.Solution, error) {
	select {
	case g.started <- struct{}{}:
	default:
	}
	<-g.gate
	return g.inner.Solve(ctx, in)
}

// TestManagerClosed: every entry point fails cleanly after Close.
func TestManagerClosed(t *testing.T) {
	m, _ := newTestManager(t, Options{})
	snap, _, err := m.CreateWith(context.Background(), testInstance(8), CreateSpec{})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if _, _, err := m.CreateWith(context.Background(), testInstance(9), CreateSpec{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close: %v", err)
	}
	if _, err := m.Apply(snap.ID, []Event{{Type: EventRebalance}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("apply after close: %v", err)
	}
	if _, err := m.Snapshot(snap.ID); !errors.Is(err, ErrClosed) {
		t.Fatalf("snapshot after close: %v", err)
	}
	m.Close() // idempotent
}

// TestManagerStress races concurrent event application, snapshots, deletes,
// drift repair and TTL sweeps across many sessions. It runs in the -short
// lane on purpose: that is the CI lane with -race, and racing the event path
// against the repair loop is this test's whole reason to exist. The
// assertions are version monotonicity per session and counter consistency
// at quiescence.
func TestManagerStress(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 4})
	t.Cleanup(eng.Close)
	m, _ := newTestManager(t, Options{
		Engine:         eng,
		MaxSessions:    16,
		TTL:            time.Hour, // sweeps run, nothing qualifies
		RepairInterval: 2 * time.Millisecond,
		RepairMargin:   -1,
	})
	ctx := context.Background()

	const sessions = 6
	ids := make([]string, sessions)
	for i := range ids {
		snap, _, err := m.CreateWith(ctx, testInstance(uint64(20+i)), CreateSpec{})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = snap.ID
	}

	var wg sync.WaitGroup
	errCh := make(chan error, sessions*2+2)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			in := testInstance(uint64(20 + i))
			events := GenerateEvents(in.NumUsers(), in.NumItems, 40, uint64(i))
			last := uint64(0)
			for at := 0; at < len(events); at += 3 {
				end := min(at+3, len(events))
				res, err := m.Apply(id, events[at:end])
				if err != nil {
					errCh <- fmt.Errorf("session %s events[%d:%d]: %w", id, at, end, err)
					return
				}
				if res.Version <= last {
					errCh <- fmt.Errorf("session %s: version not monotone (%d -> %d)", id, last, res.Version)
					return
				}
				last = res.Version
			}
		}(i, id)
	}
	// Concurrent readers.
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				if _, err := m.Snapshot(id); err != nil {
					errCh <- fmt.Errorf("snapshot %s: %w", id, err)
					return
				}
			}
		}(id)
	}
	// Churn on extra sessions: create + delete in a loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 10; j++ {
			snap, _, err := m.CreateWith(ctx, testInstance(uint64(50+j)), CreateSpec{})
			if err != nil {
				if errors.Is(err, ErrLimit) {
					continue
				}
				errCh <- err
				return
			}
			if err := m.Delete(snap.ID); err != nil {
				errCh <- err
				return
			}
		}
	}()
	// Explicit repair cycles racing the ticker-driven ones.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 5; j++ {
			m.RepairAll(ctx)
			m.EvictIdle()
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st := m.Stats()
	if st.EventsApplied != st.Joins+st.Leaves+st.Updates+st.Rebalances {
		t.Fatalf("event counter identity broken: %+v", st)
	}
	if want := uint64(sessions * 40); st.EventsApplied != want {
		t.Fatalf("events applied = %d, want %d", st.EventsApplied, want)
	}
	if done := st.RepairSwaps + st.RepairKeeps + st.RepairStale + st.RepairErrors; done > st.RepairRuns {
		t.Fatalf("repair counter identity broken: %d outcomes > %d runs", done, st.RepairRuns)
	}
	// Per-session metrics agree with the trace sizes.
	for _, id := range ids {
		snap, err := m.Snapshot(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Metrics.EventsApplied != 40 {
			t.Fatalf("session %s: %d events, want 40", id, snap.Metrics.EventsApplied)
		}
		if snap.Version < 40 {
			t.Fatalf("session %s: version %d < events applied", id, snap.Version)
		}
	}
}

// TestSeededIDsReproducible: a fixed Options.Seed reproduces the exact
// session-id sequence, and the zero seed (crypto/rand) diverges.
func TestSeededIDsReproducible(t *testing.T) {
	mint := func(opts Options) []string {
		m, _ := newTestManager(t, opts)
		ids := make([]string, 3)
		for i := range ids {
			ids[i] = m.newID()
		}
		return ids
	}
	a, b := mint(Options{Seed: 7}), mint(Options{Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded id sequence diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := mint(Options{Seed: 8})
	if a[0] == c[0] {
		t.Fatalf("different seeds minted the same id tail: %q", a[0])
	}
}

// TestDriftRepairDelta: when only one connected component's utilities have
// changed since the last repair, the repair re-solves exactly that component
// (warm-started from the incumbent rows) and overlays the result — the rows
// of untouched components come through the swap byte-identical.
func TestDriftRepairDelta(t *testing.T) {
	m, _ := newTestManager(t, Options{RepairMargin: -1})
	ctx := context.Background()
	in := testInstance(6) // two 4-user components: users 0-3 and 4-7
	snap, _, err := m.CreateWith(ctx, in, CreateSpec{})
	if err != nil {
		t.Fatal(err)
	}

	// Degrade the whole configuration out-of-band, then clear the dirty
	// flags: from the repair loop's point of view, only what the next event
	// touches has changed.
	s, err := m.get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	bad := core.NewConfiguration(in.NumUsers(), in.K)
	for u := range bad.Assign {
		for sl := range bad.Assign[u] {
			bad.Assign[u][sl] = sl
		}
	}
	if err := s.ds.Adopt(bad); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	s.ds.ClearDirty()
	s.value = s.ds.Value()
	s.mu.Unlock()

	// Touch user 0: only the 0-3 component becomes dirty.
	pref := make([]float64, in.NumItems)
	pref[in.NumItems-1] = 5
	res, err := m.Apply(snap.ID, []Event{{Type: EventUpdatePreference, User: 0, Pref: pref}})
	if err != nil {
		t.Fatal(err)
	}
	before, err := m.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}

	m.RepairAll(ctx)
	rep, err := m.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.RepairSwaps != 1 {
		t.Fatalf("delta repair swaps = %d, want 1 (value %v -> %v)", rep.Metrics.RepairSwaps, before.Value, rep.Value)
	}
	if rep.Value <= before.Value {
		t.Fatalf("delta repair did not improve value: %v -> %v", before.Value, rep.Value)
	}
	if rep.Version != res.Version+1 {
		t.Fatalf("swap did not bump version: %d -> %d", res.Version, rep.Version)
	}
	// The untouched component's rows came through the overlay unchanged.
	for u := 4; u < 8; u++ {
		for sl, it := range rep.Assignment[u] {
			if it != before.Assignment[u][sl] {
				t.Fatalf("delta repair rewrote untouched user %d: %v -> %v", u, before.Assignment[u], rep.Assignment[u])
			}
		}
	}
	st := m.Stats()
	if st.RepairRuns != 1 {
		t.Fatalf("repair runs = %d, want 1 (one dirty component, one batch)", st.RepairRuns)
	}
	if st.RepairWarm != 1 || st.RepairCold != 0 {
		t.Fatalf("warm/cold = %d/%d, want 1/0 (AVG-D warm-starts)", st.RepairWarm, st.RepairCold)
	}

	// Nothing changed since the swap: the next cycle is a free skip.
	m.RepairAll(ctx)
	if st := m.Stats(); st.RepairRuns != 1 || st.RepairSkips != 1 {
		t.Fatalf("post-swap cycle: runs=%d skips=%d, want 1/1", st.RepairRuns, st.RepairSkips)
	}
}

// TestDriftRepairWholeWarm: a repair forced onto the whole-instance path
// still warm-starts when the solver supports it, and a warm-started repair
// never lands below the incumbent value (the incumbent is the floor of the
// warm solve).
func TestDriftRepairWholeWarm(t *testing.T) {
	m, _ := newTestManager(t, Options{RepairMargin: -1, NoDeltaRepair: true})
	ctx := context.Background()
	in := testInstance(6)
	snap, _, err := m.CreateWith(ctx, in, CreateSpec{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	bad := core.NewConfiguration(in.NumUsers(), in.K)
	for u := range bad.Assign {
		for sl := range bad.Assign[u] {
			bad.Assign[u][sl] = sl
		}
	}
	if err := s.ds.Adopt(bad); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	s.value = s.ds.Value()
	degraded := s.value
	s.mu.Unlock()

	m.RepairAll(ctx)
	rep, err := m.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.RepairSwaps != 1 {
		t.Fatalf("warm whole repair swaps = %d, want 1", rep.Metrics.RepairSwaps)
	}
	if rep.Value < degraded {
		t.Fatalf("warm repair lost value: %v -> %v", degraded, rep.Value)
	}
	st := m.Stats()
	if st.RepairRuns != 1 || st.RepairWarm != 1 || st.RepairCold != 0 {
		t.Fatalf("runs/warm/cold = %d/%d/%d, want 1/1/0", st.RepairRuns, st.RepairWarm, st.RepairCold)
	}
}
