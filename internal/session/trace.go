package session

import (
	"fmt"
	"math/rand/v2"

	"github.com/svgic/svgic/internal/core"
)

// TraceJSON is a replayable live-session workload: the starting instance
// plus an event stream valid against it (every leave/update names a user
// active at its point in the stream; joined users get the ids the session
// will assign). cmd/datagen emits traces, the loadgen's -dynamic mode and
// `make session-smoke` replay them, and the server e2e tests replay the same
// trace offline to assert bit-for-bit equivalence.
type TraceJSON struct {
	Instance core.InstanceJSON `json:"instance"`
	SizeCap  int               `json:"sizeCap,omitempty"`
	Events   []Event           `json:"events"`
}

// NewTrace builds a trace over an instance: the interchange form of the
// instance plus count generated churn events.
func NewTrace(in *core.Instance, sizeCap, count int, seed uint64) *TraceJSON {
	return &TraceJSON{
		Instance: *core.InstanceAsJSON(in),
		SizeCap:  sizeCap,
		Events:   GenerateEvents(in.NumUsers(), in.NumItems, count, seed),
	}
}

// Validate checks the trace's instance and the structure of every event.
func (t *TraceJSON) Validate() error {
	if _, err := core.InstanceFromJSON(&t.Instance); err != nil {
		return err
	}
	if t.SizeCap < 0 {
		return fmt.Errorf("session: trace sizeCap %d is negative", t.SizeCap)
	}
	for i := range t.Events {
		if err := t.Events[i].Validate(); err != nil {
			return fmt.Errorf("session: trace event %d: %w", i, err)
		}
	}
	return nil
}

// GenerateEvents produces a deterministic churn stream for a store that
// starts with initialUsers active shoppers over numItems items: a mix of
// joins (fresh preferences, 1–3 friend ties to standing shoppers), leaves,
// preference updates and periodic rebalances. The generator simulates the
// active set — including the ids a live session will assign to joiners — so
// the stream replays cleanly against any session started from an instance
// with those dimensions.
func GenerateEvents(initialUsers, numItems, count int, seed uint64) []Event {
	rng := rand.New(rand.NewPCG(seed, 0x5e55104))
	active := make([]int, initialUsers)
	for u := range active {
		active[u] = u
	}
	next := initialUsers
	randPref := func() []float64 {
		pref := make([]float64, numItems)
		hot := rng.IntN(numItems)
		for c := range pref {
			pref[c] = 0.1 * rng.Float64()
			if c%5 == hot%5 {
				pref[c] += 0.8 * rng.Float64()
			}
		}
		return pref
	}
	events := make([]Event, 0, count)
	for len(events) < count {
		switch x := rng.Float64(); {
		case x < 0.35:
			pref := randPref()
			want := 1 + rng.IntN(3)
			seen := make(map[int]struct{}, want)
			var ties []TieJSON
			for len(ties) < want && len(seen) < len(active) {
				f := active[rng.IntN(len(active))]
				if _, dup := seen[f]; dup {
					continue
				}
				seen[f] = struct{}{}
				out := make([]float64, numItems)
				inn := make([]float64, numItems)
				for c := range out {
					out[c] = 0.3 * pref[c] * rng.Float64()
					inn[c] = 0.2 * pref[c] * rng.Float64()
				}
				ties = append(ties, TieJSON{ID: f, Out: out, In: inn})
			}
			events = append(events, Event{Type: EventJoin, Pref: pref, Friends: ties})
			active = append(active, next)
			next++
		case x < 0.60 && len(active) > 2:
			i := rng.IntN(len(active))
			u := active[i]
			active[i] = active[len(active)-1]
			active = active[:len(active)-1]
			events = append(events, Event{Type: EventLeave, User: u})
		case x < 0.85 && len(active) > 0:
			u := active[rng.IntN(len(active))]
			events = append(events, Event{Type: EventUpdatePreference, User: u, Pref: randPref()})
		default:
			events = append(events, Event{Type: EventRebalance, MaxPasses: 2})
		}
	}
	return events
}
