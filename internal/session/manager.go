package session

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/engine"
)

// Errors of the serving contract. The HTTP layer maps ErrLimit to 429,
// ErrNotFound to 404 and ErrClosed to 503.
var (
	ErrLimit    = errors.New("session: session limit reached")
	ErrNotFound = errors.New("session: no such session")
	ErrClosed   = errors.New("session: manager closed")
)

// Defaults for Options zero values.
const (
	DefaultMaxSessions   = 1024
	DefaultRepairMargin  = 0.01
	DefaultRepairTimeout = 30 * time.Second
)

// Options configures a Manager.
type Options struct {
	// Engine runs the initial solve of every session and the drift-repair
	// re-solves. Required; the manager does not own it — close the manager
	// first, then the engine.
	Engine *engine.Engine
	// Shards is the number of hash-partitioned lock domains the session map
	// is split over (see shard.go): session id → FNV-1a → shard, each shard
	// an independent mutex plus a pinned owner goroutine for its eviction and
	// repair. Zero means GOMAXPROCS — one shard per schedulable core; one
	// reproduces the old single-lock manager exactly.
	Shards int
	// MaxSessions bounds concurrently live sessions; Create beyond the bound
	// fails with ErrLimit. Zero means DefaultMaxSessions.
	MaxSessions int
	// TTL evicts sessions idle (no events, no reads) for longer than this.
	// Zero disables eviction (a per-session CreateSpec.TTL override still
	// evicts that session).
	TTL time.Duration
	// RepairInterval is the period of the background drift-repair loop: each
	// tick re-solves every session's current instance through the engine and
	// swaps the result in when it clears the margin. Zero disables the loop
	// (RepairAll can still be called directly).
	RepairInterval time.Duration
	// RepairMargin is the relative improvement a full re-solve must show
	// over the incremental configuration to be swapped in: swap when
	// resolved > current·(1+margin). Zero means DefaultRepairMargin;
	// negative means swap on any strict improvement.
	RepairMargin float64
	// RepairTimeout bounds each drift-repair solve. Zero means
	// DefaultRepairTimeout.
	RepairTimeout time.Duration
	// Persister receives durability hooks for every session transition
	// (internal/store implements it over a write-ahead log + snapshots).
	// Nil keeps sessions purely in memory — a restart discards them.
	Persister Persister
	// SnapshotEvery is the snapshot cadence: a full-state image is cut (and
	// the persister may compact the log behind it) every this many applied
	// transitions per session. Zero means DefaultSnapshotEvery; negative
	// disables periodic cuts (the creation snapshot still happens). Ignored
	// without a Persister.
	SnapshotEvery int
	// Seed seeds the random tail of generated session ids, making id
	// sequences reproducible for tests and seeded workloads. Zero draws a
	// one-off seed from crypto/rand — unguessable ids, explicitly not
	// derived from the clock or the global math/rand source.
	Seed uint64
	// NoDeltaRepair disables the dirty-component delta re-solve: every
	// repair cycle clones and re-solves the whole instance, as before the
	// incremental path existed. For benchmarking the delta win and for
	// tests that need whole-solve semantics.
	NoDeltaRepair bool
	// NoWarmStart disables warm-starting repair solves from the session's
	// incumbent configuration, forcing every repair solve cold.
	NoWarmStart bool
	// RepairObserver, when set, receives the wall time of every drift-repair
	// cycle that got past the version check and did repair work (delta or
	// whole; version-unchanged skips are not observed). Called synchronously
	// on the repair goroutine, so it must be cheap and safe for concurrent
	// use; svgicd wires it into the telemetry tracker's "repair" series.
	RepairObserver func(d time.Duration)
}

// Stats is a snapshot of the manager's counters, aggregated over all
// sessions that ever lived (deleting a session does not erase its event
// counts). Reading it is lock-free: Live is a single atomic and the rest
// merge per-shard atomic counters, so stats scrapes never contend with the
// serving path.
type Stats struct {
	Live     int    `json:"live"`
	Created  uint64 `json:"created"`
	Restored uint64 `json:"restored,omitempty"` // sessions recovered from the durable store
	Rejected uint64 `json:"rejected"`           // Create calls refused by MaxSessions
	Evicted  uint64 `json:"evicted"`            // idle sessions removed by the TTL sweep
	Deleted  uint64 `json:"deleted"`            // explicit deletes

	EventsApplied uint64 `json:"eventsApplied"`
	Joins         uint64 `json:"joins"`
	Leaves        uint64 `json:"leaves"`
	Updates       uint64 `json:"updates"`
	Rebalances    uint64 `json:"rebalances"`

	RepairRuns   uint64 `json:"repairRuns"`   // drift-repair solves attempted
	RepairSwaps  uint64 `json:"repairSwaps"`  // re-solve beat the margin and was adopted
	RepairKeeps  uint64 `json:"repairKeeps"`  // incremental configuration held
	RepairStale  uint64 `json:"repairStale"`  // discarded: events raced the re-solve
	RepairErrors uint64 `json:"repairErrors"` // re-solve failed or timed out
	RepairSkips  uint64 `json:"repairSkips"`  // cycles skipped: session unchanged since its last repair
	RepairWarm   uint64 `json:"repairWarm"`   // repair solves seeded from the incumbent configuration
	RepairCold   uint64 `json:"repairCold"`   // repair solves run cold
}

// Manager is the concurrency-safe registry of live sessions: a thin router
// over hash-partitioned shards (see shard.go). Create with NewManager,
// release with Close. All methods are safe for concurrent use.
type Manager struct {
	eng            *engine.Engine
	maxSessions    int
	ttl            time.Duration
	repairMargin   float64
	repairTimeout  time.Duration
	noDeltaRepair  bool
	noWarmStart    bool
	persister      Persister
	snapshotEvery  int
	repairObserver func(d time.Duration)

	now func() time.Time // test seam; time.Now in production

	shards []*shard

	// live is the global admission counter: a single atomic, because the
	// MaxSessions bound must be reserved atomically across shards (summing
	// per-shard counters cannot reserve). It also backs the lock-free Len.
	live atomic.Int64

	idc      atomic.Uint64
	rejected atomic.Uint64 // rejections have no session id, hence no shard

	// idRand supplies the random tail of session ids from an explicit seed
	// (Options.Seed, or one drawn once from crypto/rand). idMu guards it:
	// *rand.Rand is not concurrency-safe and id minting is cross-shard.
	idMu   sync.Mutex
	idRand *rand.Rand

	// repairSem bounds in-flight repair solves manager-wide; per-shard
	// cycles share it (see repairShard).
	repairSem chan struct{}

	// closeMu guards the manager-level closed flag: the Create pre-gate joins
	// the creating group under it, so Close (which sets closed under the same
	// lock, then waits on the group) always waits out in-flight creates. The
	// per-shard closed flags, set during Close's sweep, are the authoritative
	// gate on every id-routed path.
	closeMu   sync.Mutex
	closed    bool
	ctx       context.Context // canceled by Close; bounds repair solves
	cancel    context.CancelFunc
	done      chan struct{}
	wg        sync.WaitGroup
	creating  sync.WaitGroup // in-flight CreateWith calls; Close waits them out
	closeOnce sync.Once
}

// NewManager starts a session manager over an engine. Every shard gets a
// pinned owner goroutine driving its eviction sweep and drift-repair cycle
// until Close.
func NewManager(opts Options) (*Manager, error) {
	if opts.Engine == nil {
		return nil, errors.New("session: Options.Engine is required")
	}
	m := &Manager{
		eng:            opts.Engine,
		maxSessions:    opts.MaxSessions,
		ttl:            opts.TTL,
		repairMargin:   opts.RepairMargin,
		repairTimeout:  opts.RepairTimeout,
		noDeltaRepair:  opts.NoDeltaRepair,
		noWarmStart:    opts.NoWarmStart,
		persister:      opts.Persister,
		snapshotEvery:  opts.SnapshotEvery,
		repairObserver: opts.RepairObserver,
		now:            time.Now,
		done:           make(chan struct{}),
	}
	if m.snapshotEvery == 0 {
		m.snapshotEvery = DefaultSnapshotEvery
	}
	if m.maxSessions <= 0 {
		m.maxSessions = DefaultMaxSessions
	}
	if m.repairMargin == 0 {
		m.repairMargin = DefaultRepairMargin
	}
	if m.repairTimeout <= 0 {
		m.repairTimeout = DefaultRepairTimeout
	}
	seed := opts.Seed
	if seed == 0 {
		var buf [8]byte
		if _, err := crand.Read(buf[:]); err != nil {
			return nil, fmt.Errorf("session: seeding id source: %w", err)
		}
		seed = binary.LittleEndian.Uint64(buf[:])
	}
	m.idRand = rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	nshards := opts.Shards
	if nshards <= 0 {
		nshards = runtime.GOMAXPROCS(0)
	}
	m.shards = make([]*shard, nshards)
	for i := range m.shards {
		sh := &shard{
			idx:      i,
			sessions: make(map[string]*Session),
			wake:     make(chan struct{}, 1),
		}
		if m.ttl > 0 {
			sh.minTTL.Store(int64(m.ttl))
		}
		m.shards[i] = sh
	}
	m.repairSem = make(chan struct{}, repairConcurrency)
	//lint:ignore ctxthread manager-lifecycle root context, canceled by Close; serving calls thread their own ctx and repair solves derive from this one so Close cancels them
	m.ctx, m.cancel = context.WithCancel(context.Background())
	m.wg.Add(nshards)
	for _, sh := range m.shards {
		go m.shardLoop(sh, opts.RepairInterval)
	}
	return m, nil
}

// shardOf routes an id to its owning shard.
func (m *Manager) shardOf(id string) *shard {
	return m.shards[ShardForID(id, len(m.shards))]
}

// Shards returns the number of hash-partitioned lock domains.
func (m *Manager) Shards() int { return len(m.shards) }

// Close stops the shard owner goroutines, cancels any in-flight repair solve
// and closes every session. Idempotent. The engine stays open — it belongs
// to the caller.
func (m *Manager) Close() {
	m.closeOnce.Do(func() {
		m.closeMu.Lock()
		m.closed = true
		m.closeMu.Unlock()
		var victims []*Session
		for _, sh := range m.shards {
			sh.mu.Lock()
			sh.closed = true
			for _, s := range sh.sessions {
				victims = append(victims, s)
			}
			sh.sessions = make(map[string]*Session)
			sh.live.Store(0)
			sh.mu.Unlock()
		}
		m.cancel()
		// Wait out in-flight creates: each either inserted before its shard
		// was swept (its session is among the victims) or will fail the
		// insert re-check and tombstone its creation image — both must
		// finish before the caller may close the persister's store.
		m.creating.Wait()
		close(m.done)
		m.wg.Wait()
		for _, s := range victims {
			// Shutdown is not a tombstone: the sessions' durable state must
			// survive the restart, so close with no end reason (pending
			// persist ops still flush).
			s.close("")
		}
		m.live.Store(0)
	})
}

// newID mints a session id: a monotone sequence number plus random tail, so
// ids are unguessable enough not to collide across restarts yet still sort
// by creation order within one process. The tail comes from the manager's
// seeded source, never the global one, so a fixed Options.Seed reproduces
// the exact id sequence.
func (m *Manager) newID() string {
	m.idMu.Lock()
	tail := m.idRand.Uint32()
	m.idMu.Unlock()
	return fmt.Sprintf("s%06d-%08x", m.idc.Add(1), tail)
}

// solveWith routes a full solve through the engine: the session's own solver
// when it has one, the engine default otherwise.
func (m *Manager) solveWith(ctx context.Context, in *core.Instance, solver core.Solver) (*core.Solution, error) {
	if solver != nil {
		return m.eng.SolveWith(ctx, in, solver)
	}
	return m.eng.Solve(ctx, in)
}

// CreateSpec is the one session-creation surface: everything optional about
// a new session in a single value.
type CreateSpec struct {
	// Solver backs the initial solve and every drift repair; nil means the
	// engine's default solver.
	Solver core.Solver
	// SizeCap > 0 enforces the SVGIC-ST subgroup bound on event application;
	// pass a Solver parameterized with the same cap so drift repair solves
	// the same capped problem.
	SizeCap int
	// Ref is the registry identity of Solver, persisted so a recovery path
	// can re-resolve it (see SolverRef). Only meaningful with a Persister.
	Ref SolverRef
	// TTL > 0 overrides the manager-wide idle TTL for this session alone —
	// it is evicted after this long idle even on a manager whose Options.TTL
	// is zero. The override survives crash recovery (it travels in State).
	TTL time.Duration
}

// Create solves the instance through the engine (with the given solver, or
// the engine default when nil) and registers a live session seeded with the
// solution.
//
// Deprecated: the positional (solver, sizeCap) signature cannot grow; use
// CreateWith, whose CreateSpec carries solver, cap, solver reference and the
// per-session TTL override. This wrapper only delegates.
func (m *Manager) Create(ctx context.Context, in *core.Instance, solver core.Solver, sizeCap int) (Snapshot, *core.Solution, error) {
	return m.CreateWith(ctx, in, CreateSpec{Solver: solver, SizeCap: sizeCap})
}

// CreateWith solves the instance through the engine and registers a live
// session seeded with the solution, per spec. The instance is deep-cloned
// into the session; the caller's copy is never mutated. Returns the new
// session's snapshot together with the initial Solution. When the manager
// has a Persister, the new session's full state is persisted (as its
// creation snapshot) before the session becomes reachable, so the durable
// log never sees an event for a session it has not seen born.
func (m *Manager) CreateWith(ctx context.Context, in *core.Instance, spec CreateSpec) (Snapshot, *core.Solution, error) {
	// The creating group is joined under the same lock that checked closed,
	// so Close (which sets closed first, then waits on the group) always
	// waits out this call — otherwise a create's persisted creation image
	// could land before Store.Close while its abort tombstone lands after,
	// and the next restart would recover a session no client was ever told
	// about.
	m.closeMu.Lock()
	if m.closed {
		m.closeMu.Unlock()
		return Snapshot{}, nil, ErrClosed
	}
	m.creating.Add(1)
	m.closeMu.Unlock()
	defer m.creating.Done()

	// Cheap pre-admission: don't burn a solve for a session that cannot be
	// registered. Advisory only — the binding reservation happens at insert.
	if m.live.Load() >= int64(m.maxSessions) {
		m.rejected.Add(1)
		return Snapshot{}, nil, ErrLimit
	}

	sol, err := m.solveWith(ctx, in, spec.Solver)
	if err != nil {
		return Snapshot{}, nil, err
	}
	ds, err := core.NewDynamicSession(in, sol.Config, spec.SizeCap)
	if err != nil {
		return Snapshot{}, nil, err
	}
	now := m.now()
	s := &Session{
		algo:          sol.Algorithm,
		ref:           spec.Ref,
		solver:        spec.Solver,
		sizeCap:       spec.SizeCap,
		ttl:           spec.TTL,
		persist:       m.persister,
		snapshotEvery: m.snapshotEvery,
		ds:            ds,
		value:         ds.Value(),
		created:       now,
		lastTouch:     now,
		lastRepair:    noRepairYet,
	}
	// Mint an id free of collisions. Minted ids carry a random tail and a
	// monotone sequence (so two racing creates can never mint the same one);
	// the map check guards against colliding with a session RESTORED from a
	// previous process epoch, whose log a reused id would silently fuse with.
	// Restores all happen before serving starts, so an id checked free here
	// is still free at insert below. Each candidate id is checked only on
	// the shard it routes to — where it would live.
	var sh *shard
	for {
		s.id = m.newID()
		sh = m.shardOf(s.id)
		sh.mu.Lock()
		_, taken := sh.sessions[s.id]
		sh.mu.Unlock()
		if !taken {
			break
		}
	}
	if m.persister != nil {
		// The session is not reachable yet, so the creation image
		// happens-before every later hook for this id.
		m.persister.SessionCreated(s.stateLocked())
	}
	// A failure between the creation image and the insert must tombstone the
	// image, or a restart would recover a session that was never reachable.
	abort := func() {
		if m.persister != nil {
			m.persister.SessionEnded(s.id, EndDeleted)
		}
	}
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		abort()
		return Snapshot{}, nil, ErrClosed
	}
	// The binding admission check: reserve a slot in the global live count,
	// give it back if that overshot the bound. A single atomic reserves
	// across all shards without any cross-shard lock.
	if m.live.Add(1) > int64(m.maxSessions) {
		m.live.Add(-1)
		sh.mu.Unlock()
		m.rejected.Add(1)
		abort()
		return Snapshot{}, nil, ErrLimit
	}
	sh.sessions[s.id] = s
	sh.live.Add(1)
	sh.mu.Unlock()
	sh.created.Add(1)
	sh.noteTTL(spec.TTL)
	snap, err := s.snapshot(now, false)
	return snap, sol, err
}

func (m *Manager) get(id string) (*Session, error) {
	return m.shardOf(id).get(id)
}

// Apply runs an event batch against a session, serialized with every other
// batch and drift-repair swap on that session. See Session.apply for batch
// semantics.
func (m *Manager) Apply(id string, events []Event) (ApplyResult, error) {
	sh := m.shardOf(id)
	s, err := sh.get(id)
	if err != nil {
		return ApplyResult{}, err
	}
	res, err := s.apply(m.now(), events)
	sh.countEvents(res.Results)
	return res, err
}

// Snapshot returns a point-in-time copy of a session's state and refreshes
// its idle clock.
func (m *Manager) Snapshot(id string) (Snapshot, error) {
	s, err := m.get(id)
	if err != nil {
		return Snapshot{}, err
	}
	return s.snapshot(m.now(), true)
}

// Delete removes a session. Idempotent at the HTTP layer's discretion — a
// second delete returns ErrNotFound.
func (m *Manager) Delete(id string) error {
	sh := m.shardOf(id)
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return ErrClosed
	}
	s, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
		sh.live.Add(-1)
		m.live.Add(-1)
	}
	sh.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	sh.deleted.Add(1)
	s.close(EndDeleted)
	return nil
}

// MaxSessions returns the admission bound on live sessions.
func (m *Manager) MaxSessions() int { return m.maxSessions }

// Len returns the number of live sessions. Lock-free: it reads the global
// admission counter, never a shard lock.
func (m *Manager) Len() int {
	return int(m.live.Load())
}

// EvictIdle sweeps every shard for sessions idle longer than their effective
// TTL, returning how many were evicted. The shard owner goroutines call the
// per-shard sweep periodically; this whole-manager form is exported for
// tests and manual sweeps.
func (m *Manager) EvictIdle() int {
	n := 0
	for _, sh := range m.shards {
		n += m.evictShard(sh)
	}
	return n
}

// repairConcurrency bounds how many repair solves are in flight at once
// manager-wide: enough to keep the engine's pool busy, few enough that a
// large session count cannot flood it and starve interactive solves.
const repairConcurrency = 4

// RepairAll runs one drift-repair cycle over every live session — all shards
// in parallel, solve concurrency bounded by the manager-wide semaphore — and
// returns when the whole cycle is done. The shard owner goroutines trigger
// per-shard cycles on RepairInterval; this whole-manager form is exported
// for tests and manual cycles. The context bounds the cycle.
func (m *Manager) RepairAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, sh := range m.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			m.repairShard(ctx, sh)
		}(sh)
	}
	wg.Wait()
}

// repairOne runs one drift-repair cycle for one session, attributing the
// outcome to the session's owning shard. A session whose version has not
// moved since its last completed cycle is skipped outright — no clone, no
// solve. Otherwise the cycle routes to the dirty-component delta path
// (uncapped sessions whose solver decomposes safely) or falls back to the
// whole-instance re-solve.
func (m *Manager) repairOne(ctx context.Context, sh *shard, s *Session) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.lastRepair == s.version {
		s.repairSkips++
		sh.repSkips.Add(1)
		s.mu.Unlock()
		return
	}
	base := s.solver
	if base == nil {
		base = m.eng.DefaultSolver()
	}
	// The delta path re-solves dirty components in isolation and overlays the
	// results, which is only sound when per-component optima compose: never
	// under a size cap (the cap couples components through shared units — the
	// session's contract since capped sessions solve whole) and never for a
	// solver that declares itself component-unsafe.
	deltaOK := !m.noDeltaRepair && s.ds.SizeCap() == 0
	if deltaOK {
		cs, ok := base.(core.ComponentSafe)
		deltaOK = ok && cs.DecomposeSafe()
	}
	s.mu.Unlock()
	start := m.now()
	if deltaOK && m.repairDelta(ctx, sh, s, base) {
		m.observeRepair(start)
		return
	}
	m.repairWhole(ctx, sh, s, base)
	m.observeRepair(start)
}

// observeRepair reports one completed repair cycle's wall time to the
// telemetry hook, when one is installed.
func (m *Manager) observeRepair(start time.Time) {
	if m.repairObserver != nil {
		m.repairObserver(m.now().Sub(start))
	}
}

// repairDelta is the dirty-component repair path: it re-solves only the
// connected components events have touched since the session's last completed
// repair, warm-started from the incumbent rows, and overlays the re-solved
// rows onto the live configuration. Reports true when it completed the cycle
// (including skips and errors); false means the caller should fall back to a
// whole-instance repair.
func (m *Manager) repairDelta(ctx context.Context, sh *shard, s *Session, base core.Solver) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return true
	}
	dirty := s.ds.DirtyComponents()
	if len(dirty) == 0 {
		// Events advanced the version without touching any component's
		// utilities (pure rebalance sweeps move the configuration along the
		// same best-response dynamics a repair would): complete the cycle as
		// a skip so the next one is free too.
		s.lastRepair = s.version
		s.repairSkips++
		sh.repSkips.Add(1)
		s.mu.Unlock()
		return true
	}
	in := s.ds.Instance()
	conf := s.ds.Config()
	version, current := s.version, s.value
	ins := make([]*core.Instance, len(dirty))
	origs := make([][]int, len(dirty))
	incs := make([]float64, len(dirty))
	solvers := make([]core.Solver, len(dirty))
	warmed := 0
	for i, members := range dirty {
		// SubInstance deep-copies preferences, edges and τ, so the sub-solves
		// below run outside the session lock against immutable inputs.
		sub, orig, err := core.SubInstance(in, members)
		if err != nil {
			// Cannot happen for active user ids; fall back to the whole-
			// instance path rather than fail the cycle on one component.
			s.mu.Unlock()
			return false
		}
		subConf := core.NewConfiguration(len(orig), in.K)
		for j, o := range orig {
			copy(subConf.Assign[j], conf.Assign[o])
		}
		ins[i] = sub
		origs[i] = orig
		incs[i] = core.Evaluate(sub, subConf).Weighted()
		sv := base
		if !m.noWarmStart {
			if ws, ok := base.(core.WarmStarter); ok {
				if w := ws.WarmStart(subConf); w != nil {
					sv = w
					warmed++
				}
			}
		}
		// Warm solvers depend on this session's incumbent and sub-instances
		// are single components already: run them uncached and undecomposed
		// so the engine's cache and coalescer never see them.
		solvers[i] = engine.Uncached{S: sv}
	}
	s.mu.Unlock()

	sh.repRuns.Add(1)
	sh.repWarm.Add(uint64(warmed))
	sh.repCold.Add(uint64(len(dirty) - warmed))
	sctx, cancel := context.WithTimeout(ctx, m.repairTimeout)
	sols, err := m.eng.SolveBatchEach(sctx, ins, solvers)
	cancel()
	if err != nil {
		sh.repErrors.Add(1)
		return true
	}
	// The merged objective moves by exactly the per-component improvements:
	// components are utility-independent (no edges cross them), so swapping a
	// component's rows changes the global objective by (re-solved − incumbent)
	// on that component alone.
	merged := current
	confs := make([]*core.Configuration, len(sols))
	for i, sol := range sols {
		merged += sol.Report.Weighted() - incs[i]
		confs[i] = sol.Config
	}
	threshold := current * (1 + m.repairMargin)
	if m.repairMargin < 0 {
		threshold = current
	}

	s.mu.Lock()
	swapped := false
	func() {
		defer s.mu.Unlock()
		if s.closed {
			return
		}
		if s.version != version {
			s.repairStale++
			sh.repStale.Add(1)
			return
		}
		if merged > threshold {
			overlay := core.OverlayConfiguration(s.ds.Config(), confs, origs)
			if err := s.ds.Adopt(overlay); err != nil {
				// Cannot happen for rows solved on sub-instances of this very
				// instance; account it rather than crash the loop.
				sh.repErrors.Add(1)
				return
			}
			s.ds.ClearDirty()
			s.value = s.ds.Value()
			s.version++
			s.lastRepair = s.version
			s.repairSwaps++
			sh.repSwaps.Add(1)
			swapped = true
			if s.persist != nil {
				// The swap is a state transition like any event batch: log the
				// overlaid configuration (Adopt deep-cloned it, so this is the
				// only live reference) so WAL replay lands on the exact served
				// configuration, not just the same value.
				s.outbox = append(s.outbox, persistOp{
					kind:  opAdopt,
					conf:  overlay,
					from:  version,
					to:    s.version,
					value: s.value,
				})
				s.sinceSnapshot++
				s.maybeSnapshotLocked()
			}
			return
		}
		s.ds.ClearDirty()
		s.lastRepair = s.version
		s.repairKeeps++
		sh.repKeeps.Add(1)
	}()
	if swapped {
		s.drainOutbox()
	}
	return true
}

// repairWhole re-solves one session's current instance through the engine and
// swaps the result in when it beats the incremental configuration by the
// margin. The snapshot is taken under the session lock but the solve runs
// outside it, so event application never blocks on a re-solve; if events
// advanced the session meanwhile, the (now stale) solution is discarded
// rather than clobbering state it never saw. When the session's solver can
// warm-start, the re-solve is seeded from the incumbent configuration and run
// uncached (a warm result depends on the incumbent, so it must never enter
// the engine's keyed cache).
func (m *Manager) repairWhole(ctx context.Context, sh *shard, s *Session, base core.Solver) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	snap := s.ds.Instance().Clone()
	version, current := s.version, s.value
	solver := s.solver
	warm := false
	if !m.noWarmStart {
		if ws, ok := base.(core.WarmStarter); ok {
			if w := ws.WarmStart(s.ds.Config()); w != nil {
				solver = engine.Uncached{S: w}
				warm = true
			}
		}
	}
	s.mu.Unlock()

	sh.repRuns.Add(1)
	if warm {
		sh.repWarm.Add(1)
	} else {
		sh.repCold.Add(1)
	}
	sctx, cancel := context.WithTimeout(ctx, m.repairTimeout)
	sol, err := m.solveWith(sctx, snap, solver)
	cancel()
	if err != nil {
		sh.repErrors.Add(1)
		return
	}
	resolved := sol.Report.Weighted()
	threshold := current * (1 + m.repairMargin)
	if m.repairMargin < 0 {
		threshold = current
	}

	s.mu.Lock()
	swapped := false
	func() {
		defer s.mu.Unlock()
		if s.closed {
			return
		}
		if s.version != version {
			s.repairStale++
			sh.repStale.Add(1)
			return
		}
		// A capped session never adopts a configuration that violates its
		// bound, whatever the solver produced — the cap is the session's
		// contract, better objective or not. (The serving layer already rejects
		// cap-incapable solvers at create; this holds the invariant for
		// library-constructed sessions too.)
		if cap := s.ds.SizeCap(); cap > 0 && sol.Config.MaxSubgroupSize() > cap {
			s.ds.ClearDirty()
			s.lastRepair = s.version
			s.repairKeeps++
			sh.repKeeps.Add(1)
			return
		}
		if resolved > threshold {
			if err := s.ds.Adopt(sol.Config); err != nil {
				// Cannot happen for a solution solved on a clone of this very
				// instance; account it rather than crash the loop.
				sh.repErrors.Add(1)
				return
			}
			s.ds.ClearDirty()
			s.value = s.ds.Value()
			s.version++
			s.lastRepair = s.version
			s.repairSwaps++
			sh.repSwaps.Add(1)
			swapped = true
			if s.persist != nil {
				// The swap is a state transition like any event batch: log it
				// (the adopted configuration travels as a deep clone — the
				// Solution may live in the engine cache) so WAL replay lands
				// on the exact served configuration, not just the same value.
				s.outbox = append(s.outbox, persistOp{
					kind:  opAdopt,
					conf:  sol.Config.Clone(),
					from:  version,
					to:    s.version,
					value: s.value,
				})
				s.sinceSnapshot++
				s.maybeSnapshotLocked()
			}
			return
		}
		s.ds.ClearDirty()
		s.lastRepair = s.version
		s.repairKeeps++
		sh.repKeeps.Add(1)
	}()
	if swapped {
		s.drainOutbox()
	}
}

// Stats returns a point-in-time snapshot of the manager's counters, merged
// over the shards. Lock-free: every field is an atomic read.
func (m *Manager) Stats() Stats {
	st := Stats{
		Live:     int(m.live.Load()),
		Rejected: m.rejected.Load(),
	}
	for _, sh := range m.shards {
		st.Created += sh.created.Load()
		st.Restored += sh.restored.Load()
		st.Evicted += sh.evicted.Load()
		st.Deleted += sh.deleted.Load()
		st.EventsApplied += sh.events.Load()
		st.Joins += sh.joins.Load()
		st.Leaves += sh.leaves.Load()
		st.Updates += sh.updates.Load()
		st.Rebalances += sh.rebals.Load()
		st.RepairRuns += sh.repRuns.Load()
		st.RepairSwaps += sh.repSwaps.Load()
		st.RepairKeeps += sh.repKeeps.Load()
		st.RepairStale += sh.repStale.Load()
		st.RepairErrors += sh.repErrors.Load()
		st.RepairSkips += sh.repSkips.Load()
		st.RepairWarm += sh.repWarm.Load()
		st.RepairCold += sh.repCold.Load()
	}
	return st
}

// ShardStats returns every shard's counter slice, in shard order — the raw
// material for imbalance and hot-shard monitoring. Lock-free.
func (m *Manager) ShardStats() []ShardStats {
	out := make([]ShardStats, len(m.shards))
	for i, sh := range m.shards {
		out[i] = sh.stats()
	}
	return out
}
