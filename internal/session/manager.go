package session

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/engine"
)

// Errors of the serving contract. The HTTP layer maps ErrLimit to 429,
// ErrNotFound to 404 and ErrClosed to 503.
var (
	ErrLimit    = errors.New("session: session limit reached")
	ErrNotFound = errors.New("session: no such session")
	ErrClosed   = errors.New("session: manager closed")
)

// Defaults for Options zero values.
const (
	DefaultMaxSessions   = 1024
	DefaultRepairMargin  = 0.01
	DefaultRepairTimeout = 30 * time.Second
)

// Options configures a Manager.
type Options struct {
	// Engine runs the initial solve of every session and the drift-repair
	// re-solves. Required; the manager does not own it — close the manager
	// first, then the engine.
	Engine *engine.Engine
	// MaxSessions bounds concurrently live sessions; Create beyond the bound
	// fails with ErrLimit. Zero means DefaultMaxSessions.
	MaxSessions int
	// TTL evicts sessions idle (no events, no reads) for longer than this.
	// Zero disables eviction.
	TTL time.Duration
	// RepairInterval is the period of the background drift-repair loop: each
	// tick re-solves every session's current instance through the engine and
	// swaps the result in when it clears the margin. Zero disables the loop
	// (RepairAll can still be called directly).
	RepairInterval time.Duration
	// RepairMargin is the relative improvement a full re-solve must show
	// over the incremental configuration to be swapped in: swap when
	// resolved > current·(1+margin). Zero means DefaultRepairMargin;
	// negative means swap on any strict improvement.
	RepairMargin float64
	// RepairTimeout bounds each drift-repair solve. Zero means
	// DefaultRepairTimeout.
	RepairTimeout time.Duration
	// Persister receives durability hooks for every session transition
	// (internal/store implements it over a write-ahead log + snapshots).
	// Nil keeps sessions purely in memory — a restart discards them.
	Persister Persister
	// SnapshotEvery is the snapshot cadence: a full-state image is cut (and
	// the persister may compact the log behind it) every this many applied
	// transitions per session. Zero means DefaultSnapshotEvery; negative
	// disables periodic cuts (the creation snapshot still happens). Ignored
	// without a Persister.
	SnapshotEvery int
}

// Stats is a snapshot of the manager's counters, aggregated over all
// sessions that ever lived (deleting a session does not erase its event
// counts).
type Stats struct {
	Live     int    `json:"live"`
	Created  uint64 `json:"created"`
	Restored uint64 `json:"restored,omitempty"` // sessions recovered from the durable store
	Rejected uint64 `json:"rejected"`           // Create calls refused by MaxSessions
	Evicted  uint64 `json:"evicted"`            // idle sessions removed by the TTL sweep
	Deleted  uint64 `json:"deleted"`            // explicit deletes

	EventsApplied uint64 `json:"eventsApplied"`
	Joins         uint64 `json:"joins"`
	Leaves        uint64 `json:"leaves"`
	Updates       uint64 `json:"updates"`
	Rebalances    uint64 `json:"rebalances"`

	RepairRuns   uint64 `json:"repairRuns"`   // drift-repair solves attempted
	RepairSwaps  uint64 `json:"repairSwaps"`  // re-solve beat the margin and was adopted
	RepairKeeps  uint64 `json:"repairKeeps"`  // incremental configuration held
	RepairStale  uint64 `json:"repairStale"`  // discarded: events raced the re-solve
	RepairErrors uint64 `json:"repairErrors"` // re-solve failed or timed out
}

// Manager is the concurrency-safe registry of live sessions. Create with
// NewManager, release with Close. All methods are safe for concurrent use.
type Manager struct {
	eng           *engine.Engine
	maxSessions   int
	ttl           time.Duration
	repairMargin  float64
	repairTimeout time.Duration
	persister     Persister
	snapshotEvery int

	now func() time.Time // test seam; time.Now in production

	mu       sync.Mutex
	sessions map[string]*Session
	closed   bool

	idc       atomic.Uint64
	created   atomic.Uint64
	restored  atomic.Uint64
	rejected  atomic.Uint64
	evicted   atomic.Uint64
	deleted   atomic.Uint64
	events    atomic.Uint64
	joins     atomic.Uint64
	leaves    atomic.Uint64
	updates   atomic.Uint64
	rebals    atomic.Uint64
	repRuns   atomic.Uint64
	repSwaps  atomic.Uint64
	repKeeps  atomic.Uint64
	repStale  atomic.Uint64
	repErrors atomic.Uint64

	ctx       context.Context // canceled by Close; bounds repair solves
	cancel    context.CancelFunc
	done      chan struct{}
	wg        sync.WaitGroup
	creating  sync.WaitGroup // in-flight CreateWith calls; Close waits them out
	closeOnce sync.Once
}

// NewManager starts a session manager over an engine. When TTL or
// RepairInterval is set, a background goroutine runs the eviction sweep and
// the drift-repair loop until Close.
func NewManager(opts Options) (*Manager, error) {
	if opts.Engine == nil {
		return nil, errors.New("session: Options.Engine is required")
	}
	m := &Manager{
		eng:           opts.Engine,
		maxSessions:   opts.MaxSessions,
		ttl:           opts.TTL,
		repairMargin:  opts.RepairMargin,
		repairTimeout: opts.RepairTimeout,
		persister:     opts.Persister,
		snapshotEvery: opts.SnapshotEvery,
		now:           time.Now,
		sessions:      make(map[string]*Session),
		done:          make(chan struct{}),
	}
	if m.snapshotEvery == 0 {
		m.snapshotEvery = DefaultSnapshotEvery
	}
	if m.maxSessions <= 0 {
		m.maxSessions = DefaultMaxSessions
	}
	if m.repairMargin == 0 {
		m.repairMargin = DefaultRepairMargin
	}
	if m.repairTimeout <= 0 {
		m.repairTimeout = DefaultRepairTimeout
	}
	m.ctx, m.cancel = context.WithCancel(context.Background())
	if opts.TTL > 0 || opts.RepairInterval > 0 {
		m.wg.Add(1)
		go m.loop(opts.RepairInterval)
	}
	return m, nil
}

// loop drives the periodic work: drift repair on its interval, TTL eviction
// on a quarter-TTL cadence.
func (m *Manager) loop(repairInterval time.Duration) {
	defer m.wg.Done()
	var repairC, evictC <-chan time.Time
	if repairInterval > 0 {
		t := time.NewTicker(repairInterval)
		defer t.Stop()
		repairC = t.C
	}
	if m.ttl > 0 {
		iv := m.ttl / 4
		if iv < 10*time.Millisecond {
			iv = 10 * time.Millisecond
		}
		t := time.NewTicker(iv)
		defer t.Stop()
		evictC = t.C
	}
	// Repair cycles run off the ticker goroutine so a slow cycle (many
	// sessions × solve time) never starves eviction ticks; a tick that
	// arrives while the previous cycle is still running is skipped rather
	// than queued.
	repairing := make(chan struct{}, 1)
	for {
		select {
		case <-m.done:
			return
		case <-repairC:
			select {
			case repairing <- struct{}{}:
				m.wg.Add(1)
				go func() {
					defer m.wg.Done()
					defer func() { <-repairing }()
					m.RepairAll(m.ctx)
				}()
			default: // previous cycle still in flight
			}
		case <-evictC:
			m.EvictIdle()
		}
	}
}

// Close stops the background loop, cancels any in-flight repair solve and
// closes every session. Idempotent. The engine stays open — it belongs to
// the caller.
func (m *Manager) Close() {
	m.closeOnce.Do(func() {
		m.mu.Lock()
		m.closed = true
		victims := make([]*Session, 0, len(m.sessions))
		for _, s := range m.sessions {
			victims = append(victims, s)
		}
		m.sessions = make(map[string]*Session)
		m.mu.Unlock()
		m.cancel()
		// Wait out in-flight creates: each either inserted before closed
		// was set (its session is among the victims) or will fail the
		// insert re-check and tombstone its creation image — both must
		// finish before the caller may close the persister's store.
		m.creating.Wait()
		close(m.done)
		m.wg.Wait()
		for _, s := range victims {
			// Shutdown is not a tombstone: the sessions' durable state must
			// survive the restart, so close with no end reason (pending
			// persist ops still flush).
			s.close("")
		}
	})
}

// newID mints a session id: a monotone sequence number plus random tail, so
// ids are unguessable enough not to collide across restarts yet still sort
// by creation order within one process.
func (m *Manager) newID() string {
	return fmt.Sprintf("s%06d-%08x", m.idc.Add(1), rand.Uint32())
}

// solveWith routes a full solve through the engine: the session's own solver
// when it has one, the engine default otherwise.
func (m *Manager) solveWith(ctx context.Context, in *core.Instance, solver core.Solver) (*core.Solution, error) {
	if solver != nil {
		return m.eng.SolveWith(ctx, in, solver)
	}
	return m.eng.Solve(ctx, in)
}

// CreateSpec bundles Create's optional inputs.
type CreateSpec struct {
	// Solver backs the initial solve and every drift repair; nil means the
	// engine's default solver.
	Solver core.Solver
	// SizeCap > 0 enforces the SVGIC-ST subgroup bound on event application;
	// pass a Solver parameterized with the same cap so drift repair solves
	// the same capped problem.
	SizeCap int
	// Ref is the registry identity of Solver, persisted so a recovery path
	// can re-resolve it (see SolverRef). Only meaningful with a Persister.
	Ref SolverRef
}

// Create solves the instance through the engine (with the given solver, or
// the engine default when nil) and registers a live session seeded with the
// solution. The instance is deep-cloned into the session; the caller's copy
// is never mutated. Returns the new session's snapshot together with the
// initial Solution. See CreateWith for the full-spec form.
func (m *Manager) Create(ctx context.Context, in *core.Instance, solver core.Solver, sizeCap int) (Snapshot, *core.Solution, error) {
	return m.CreateWith(ctx, in, CreateSpec{Solver: solver, SizeCap: sizeCap})
}

// CreateWith is Create with the full specification: solver, SVGIC-ST cap
// and the solver's registry identity for durable recovery. When the manager
// has a Persister, the new session's full state is persisted (as its
// creation snapshot) before the session becomes reachable, so the durable
// log never sees an event for a session it has not seen born.
func (m *Manager) CreateWith(ctx context.Context, in *core.Instance, spec CreateSpec) (Snapshot, *core.Solution, error) {
	// Cheap pre-admission: don't burn a solve for a session that cannot be
	// registered. Re-checked at insert — creates race each other. The
	// creating group is joined under the same lock that checked closed, so
	// Close (which sets closed first, then waits on the group) always waits
	// out this call — otherwise a create's persisted creation image could
	// land before Store.Close while its abort tombstone lands after, and
	// the next restart would recover a session no client was ever told
	// about.
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Snapshot{}, nil, ErrClosed
	}
	m.creating.Add(1)
	defer m.creating.Done()
	if len(m.sessions) >= m.maxSessions {
		m.mu.Unlock()
		m.rejected.Add(1)
		return Snapshot{}, nil, ErrLimit
	}
	m.mu.Unlock()

	sol, err := m.solveWith(ctx, in, spec.Solver)
	if err != nil {
		return Snapshot{}, nil, err
	}
	ds, err := core.NewDynamicSession(in, sol.Config, spec.SizeCap)
	if err != nil {
		return Snapshot{}, nil, err
	}
	now := m.now()
	s := &Session{
		algo:          sol.Algorithm,
		ref:           spec.Ref,
		solver:        spec.Solver,
		sizeCap:       spec.SizeCap,
		persist:       m.persister,
		snapshotEvery: m.snapshotEvery,
		ds:            ds,
		value:         ds.Value(),
		created:       now,
		lastTouch:     now,
	}
	// Mint an id free of collisions. Minted ids carry a random tail and a
	// monotone sequence (so two racing creates can never mint the same one);
	// the map check guards against colliding with a session RESTORED from a
	// previous process epoch, whose log a reused id would silently fuse with.
	// Restores all happen before serving starts, so an id checked free here
	// is still free at insert below.
	m.mu.Lock()
	for s.id = m.newID(); ; s.id = m.newID() {
		if _, taken := m.sessions[s.id]; !taken {
			break
		}
	}
	m.mu.Unlock()
	if m.persister != nil {
		// The session is not reachable yet, so the creation image
		// happens-before every later hook for this id.
		m.persister.SessionCreated(s.stateLocked())
	}
	// A failure between the creation image and the insert must tombstone the
	// image, or a restart would recover a session that was never reachable.
	abort := func() {
		if m.persister != nil {
			m.persister.SessionEnded(s.id, EndDeleted)
		}
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		abort()
		return Snapshot{}, nil, ErrClosed
	}
	if len(m.sessions) >= m.maxSessions {
		m.mu.Unlock()
		m.rejected.Add(1)
		abort()
		return Snapshot{}, nil, ErrLimit
	}
	m.sessions[s.id] = s
	m.mu.Unlock()
	m.created.Add(1)
	snap, err := s.snapshot(now, false)
	return snap, sol, err
}

func (m *Manager) get(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	s, ok := m.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	return s, nil
}

// Apply runs an event batch against a session, serialized with every other
// batch and drift-repair swap on that session. See Session.apply for batch
// semantics.
func (m *Manager) Apply(id string, events []Event) (ApplyResult, error) {
	s, err := m.get(id)
	if err != nil {
		return ApplyResult{}, err
	}
	res, err := s.apply(m.now(), events)
	for _, r := range res.Results {
		m.events.Add(1)
		switch r.Type {
		case EventJoin:
			m.joins.Add(1)
		case EventLeave:
			m.leaves.Add(1)
		case EventUpdatePreference:
			m.updates.Add(1)
		case EventRebalance:
			m.rebals.Add(1)
		}
	}
	return res, err
}

// Snapshot returns a point-in-time copy of a session's state and refreshes
// its idle clock.
func (m *Manager) Snapshot(id string) (Snapshot, error) {
	s, err := m.get(id)
	if err != nil {
		return Snapshot{}, err
	}
	return s.snapshot(m.now(), true)
}

// Delete removes a session. Idempotent at the HTTP layer's discretion — a
// second delete returns ErrNotFound.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
	}
	m.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	m.deleted.Add(1)
	s.close(EndDeleted)
	return nil
}

// MaxSessions returns the admission bound on live sessions.
func (m *Manager) MaxSessions() int { return m.maxSessions }

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// EvictIdle removes every session idle longer than the TTL, returning how
// many were evicted. The background loop calls it periodically; it is
// exported for tests and manual sweeps. No-op when TTL is zero.
//
// Session locks are never taken while holding the manager lock: a sweep
// blocking on one session's long event batch under m.mu would stall every
// manager operation server-wide. Idleness is checked lock-by-lock outside
// m.mu; confirmed candidates are then removed under m.mu by identity alone.
// A session touched in the narrow window between its idleness check and
// removal can be evicted anyway — it had been idle for a full TTL moments
// earlier, which is within the eviction contract — and an event batch
// already in flight on a victim completes normally before close() lands.
func (m *Manager) EvictIdle() int {
	if m.ttl <= 0 {
		return 0
	}
	cutoff := m.now().Add(-m.ttl)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0
	}
	all := make(map[string]*Session, len(m.sessions))
	for id, s := range m.sessions {
		all[id] = s
	}
	m.mu.Unlock()

	candidates := make(map[string]*Session)
	for id, s := range all {
		s.mu.Lock()
		idle := !s.closed && s.lastTouch.Before(cutoff)
		s.mu.Unlock()
		if idle {
			candidates[id] = s
		}
	}
	if len(candidates) == 0 {
		return 0
	}

	var victims []*Session
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0
	}
	for id, s := range candidates {
		if m.sessions[id] != s {
			continue // deleted or replaced meanwhile
		}
		delete(m.sessions, id)
		victims = append(victims, s)
	}
	m.mu.Unlock()
	for _, s := range victims {
		// The eviction tombstone is part of the eviction, not an
		// afterthought: a TTL-evicted id whose WAL survived a restart would
		// resurrect as a live session the client believed gone.
		s.close(EndEvicted)
		m.evicted.Add(1)
	}
	return len(victims)
}

// repairConcurrency bounds how many repair solves are in flight at once:
// enough to keep the engine's pool busy, few enough that a large session
// count cannot flood it and starve interactive solves.
const repairConcurrency = 4

// RepairAll runs one drift-repair cycle over every live session, up to
// repairConcurrency sessions at a time (the engine's worker pool is the
// real execution bound), and returns when the whole cycle is done. The
// background loop triggers it on RepairInterval; it is exported for tests
// and manual cycles. The context bounds the cycle.
func (m *Manager) RepairAll(ctx context.Context) {
	m.mu.Lock()
	list := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		list = append(list, s)
	}
	m.mu.Unlock()
	sem := make(chan struct{}, repairConcurrency)
	var wg sync.WaitGroup
	for _, s := range list {
		if ctx.Err() != nil {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			defer func() { <-sem }()
			m.repairOne(ctx, s)
		}(s)
	}
	wg.Wait()
}

// repairOne re-solves one session's current instance through the engine and
// swaps the result in when it beats the incremental configuration by the
// margin. The snapshot is taken under the session lock but the solve runs
// outside it, so event application never blocks on a re-solve; if events
// advanced the session meanwhile, the (now stale) solution is discarded
// rather than clobbering state it never saw.
func (m *Manager) repairOne(ctx context.Context, s *Session) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	snap := s.ds.Instance().Clone()
	version, current := s.version, s.value
	solver := s.solver
	s.mu.Unlock()

	m.repRuns.Add(1)
	sctx, cancel := context.WithTimeout(ctx, m.repairTimeout)
	sol, err := m.solveWith(sctx, snap, solver)
	cancel()
	if err != nil {
		m.repErrors.Add(1)
		return
	}
	resolved := sol.Report.Weighted()
	threshold := current * (1 + m.repairMargin)
	if m.repairMargin < 0 {
		threshold = current
	}

	s.mu.Lock()
	swapped := false
	func() {
		defer s.mu.Unlock()
		if s.closed {
			return
		}
		if s.version != version {
			s.repairStale++
			m.repStale.Add(1)
			return
		}
		// A capped session never adopts a configuration that violates its
		// bound, whatever the solver produced — the cap is the session's
		// contract, better objective or not. (The serving layer already rejects
		// cap-incapable solvers at create; this holds the invariant for
		// library-constructed sessions too.)
		if cap := s.ds.SizeCap(); cap > 0 && sol.Config.MaxSubgroupSize() > cap {
			s.repairKeeps++
			m.repKeeps.Add(1)
			return
		}
		if resolved > threshold {
			if err := s.ds.Adopt(sol.Config); err != nil {
				// Cannot happen for a solution solved on a clone of this very
				// instance; account it rather than crash the loop.
				m.repErrors.Add(1)
				return
			}
			s.value = s.ds.Value()
			s.version++
			s.repairSwaps++
			m.repSwaps.Add(1)
			swapped = true
			if s.persist != nil {
				// The swap is a state transition like any event batch: log it
				// (the adopted configuration travels as a deep clone — the
				// Solution may live in the engine cache) so WAL replay lands
				// on the exact served configuration, not just the same value.
				s.outbox = append(s.outbox, persistOp{
					kind:  opAdopt,
					conf:  sol.Config.Clone(),
					from:  version,
					to:    s.version,
					value: s.value,
				})
				s.sinceSnapshot++
				s.maybeSnapshotLocked()
			}
			return
		}
		s.repairKeeps++
		m.repKeeps.Add(1)
	}()
	if swapped {
		s.drainOutbox()
	}
}

// Stats returns a point-in-time snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	live := len(m.sessions)
	m.mu.Unlock()
	return Stats{
		Live:          live,
		Created:       m.created.Load(),
		Restored:      m.restored.Load(),
		Rejected:      m.rejected.Load(),
		Evicted:       m.evicted.Load(),
		Deleted:       m.deleted.Load(),
		EventsApplied: m.events.Load(),
		Joins:         m.joins.Load(),
		Leaves:        m.leaves.Load(),
		Updates:       m.updates.Load(),
		Rebalances:    m.rebals.Load(),
		RepairRuns:    m.repRuns.Load(),
		RepairSwaps:   m.repSwaps.Load(),
		RepairKeeps:   m.repKeeps.Load(),
		RepairStale:   m.repStale.Load(),
		RepairErrors:  m.repErrors.Load(),
	}
}
