package session

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/svgic/svgic/internal/core"
)

// recordingPersister captures every hook call, per session, in call order.
type recordedOp struct {
	kind   string // "create" | "events" | "adopt" | "snapshot" | "end"
	events []Event
	conf   *core.Configuration
	state  *State
	from   uint64
	to     uint64
	value  float64
	reason EndReason
}

type recordingPersister struct {
	mu  sync.Mutex
	ops map[string][]recordedOp
}

func newRecorder() *recordingPersister {
	return &recordingPersister{ops: make(map[string][]recordedOp)}
}

func (r *recordingPersister) add(id string, op recordedOp) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops[id] = append(r.ops[id], op)
}

func (r *recordingPersister) SessionCreated(st *State) {
	r.add(st.ID, recordedOp{kind: "create", state: st, to: st.Version, value: st.Value})
}

func (r *recordingPersister) EventsApplied(id string, events []Event, from, to uint64, value float64) {
	r.add(id, recordedOp{kind: "events", events: events, from: from, to: to, value: value})
}

func (r *recordingPersister) ConfigAdopted(id string, conf *core.Configuration, from, to uint64, value float64) {
	r.add(id, recordedOp{kind: "adopt", conf: conf, from: from, to: to, value: value})
}

func (r *recordingPersister) SnapshotCut(st *State) {
	r.add(st.ID, recordedOp{kind: "snapshot", state: st, to: st.Version, value: st.Value})
}

func (r *recordingPersister) SessionEnded(id string, reason EndReason) {
	r.add(id, recordedOp{kind: "end", reason: reason})
}

func (r *recordingPersister) of(id string) []recordedOp {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]recordedOp(nil), r.ops[id]...)
}

// TestPersisterOrderAndPrefix: the persister sees creation first, then
// exactly the APPLIED event prefixes (a partial batch logs only what
// applied), with contiguous version ranges throughout.
func TestPersisterOrderAndPrefix(t *testing.T) {
	rec := newRecorder()
	m, _ := newTestManager(t, Options{Persister: rec, SnapshotEvery: -1})
	in := testInstance(31)
	snap, _, err := m.CreateWith(context.Background(), in, CreateSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(snap.ID, []Event{{Type: EventRebalance, MaxPasses: 1}, {Type: EventLeave, User: 0}}); err != nil {
		t.Fatal(err)
	}
	// Partial batch: second leave of user 0 fails; only the first event
	// (leave 1) applies and only it may be logged.
	if _, err := m.Apply(snap.ID, []Event{{Type: EventLeave, User: 1}, {Type: EventLeave, User: 0}}); err == nil {
		t.Fatal("double leave batch reported success")
	}
	// Fully failing batch: nothing applied, nothing logged.
	if _, err := m.Apply(snap.ID, []Event{{Type: EventLeave, User: 0}}); err == nil {
		t.Fatal("leave of departed user reported success")
	}
	if err := m.Delete(snap.ID); err != nil {
		t.Fatal(err)
	}

	ops := rec.of(snap.ID)
	kinds := make([]string, len(ops))
	for i, op := range ops {
		kinds[i] = op.kind
	}
	want := []string{"create", "events", "events", "end"}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("op sequence %v, want %v", kinds, want)
	}
	if n := len(ops[1].events); n != 2 {
		t.Fatalf("first batch logged %d events, want 2", n)
	}
	if n := len(ops[2].events); n != 1 {
		t.Fatalf("partial batch logged %d events, want 1 (the applied prefix)", n)
	}
	if ops[1].from != 0 || ops[1].to != 2 || ops[2].from != 2 || ops[2].to != 3 {
		t.Fatalf("version chain broken: [%d,%d] then [%d,%d]", ops[1].from, ops[1].to, ops[2].from, ops[2].to)
	}
	if ops[3].reason != EndDeleted {
		t.Fatalf("end reason %q, want %q", ops[3].reason, EndDeleted)
	}
	if ops[0].state.Instance == in {
		t.Fatal("creation state shares the caller's instance; must be a clone")
	}
}

// TestPersisterSnapshotCadence: a snapshot op is cut once SnapshotEvery
// transitions accumulate, positioned after the triggering batch.
func TestPersisterSnapshotCadence(t *testing.T) {
	rec := newRecorder()
	m, _ := newTestManager(t, Options{Persister: rec, SnapshotEvery: 4})
	snap, _, err := m.CreateWith(context.Background(), testInstance(32), CreateSpec{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := m.Apply(snap.ID, []Event{{Type: EventRebalance, MaxPasses: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	ops := rec.of(snap.ID)
	kinds := make([]string, len(ops))
	for i, op := range ops {
		kinds[i] = op.kind
	}
	// create, 4 event batches, snapshot at version 4, 2 more batches.
	want := []string{"create", "events", "events", "events", "events", "snapshot", "events", "events"}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("op sequence %v, want %v", kinds, want)
	}
	if cut := ops[5]; cut.state.Version != 4 {
		t.Fatalf("snapshot cut at version %d, want 4", cut.state.Version)
	}
}

// TestPersisterEvictionTombstone: TTL eviction persists an end op with the
// eviction reason — the satellite fix — while manager Close persists no end
// op at all (shutdown must leave sessions recoverable).
func TestPersisterEvictionTombstone(t *testing.T) {
	rec := newRecorder()
	m, _ := newTestManager(t, Options{Persister: rec, TTL: time.Hour})
	idle, _, err := m.CreateWith(context.Background(), testInstance(33), CreateSpec{})
	if err != nil {
		t.Fatal(err)
	}
	survivor, _, err := m.CreateWith(context.Background(), testInstance(34), CreateSpec{})
	if err != nil {
		t.Fatal(err)
	}
	// Fake clock: jump past the TTL, but keep the survivor touched.
	base := time.Now()
	m.now = func() time.Time { return base.Add(30 * time.Minute) }
	if _, err := m.Apply(survivor.ID, []Event{{Type: EventRebalance, MaxPasses: 1}}); err != nil {
		t.Fatal(err)
	}
	m.now = func() time.Time { return base.Add(90 * time.Minute) }
	if got := m.EvictIdle(); got != 1 {
		t.Fatalf("evicted %d sessions, want 1", got)
	}
	ops := rec.of(idle.ID)
	last := ops[len(ops)-1]
	if last.kind != "end" || last.reason != EndEvicted {
		t.Fatalf("evicted session's last op = %s/%s, want end/%s", last.kind, last.reason, EndEvicted)
	}
	// Shutdown: the survivor must NOT get a tombstone.
	m.Close()
	for _, op := range rec.of(survivor.ID) {
		if op.kind == "end" {
			t.Fatalf("manager Close tombstoned a live session (reason %q)", op.reason)
		}
	}
}

// TestPersisterAdoptOp: a drift-repair swap is logged as an adopt op whose
// configuration is a clone of (not an alias into) the adopted solution.
func TestPersisterAdoptOp(t *testing.T) {
	rec := newRecorder()
	m, _ := newTestManager(t, Options{Persister: rec, RepairMargin: -1})
	ctx := context.Background()
	in := testInstance(6)
	snap, _, err := m.CreateWith(ctx, in, CreateSpec{})
	if err != nil {
		t.Fatal(err)
	}
	// Degrade the live configuration (the TestDriftRepairSwapsAndKeeps
	// trick) so the next repair cycle provably swaps.
	s, err := m.get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	bad := core.NewConfiguration(in.NumUsers(), in.K)
	for u := range bad.Assign {
		for sl := range bad.Assign[u] {
			bad.Assign[u][sl] = sl
		}
	}
	if err := s.ds.Adopt(bad); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	s.value = s.ds.Value()
	s.mu.Unlock()

	m.RepairAll(ctx)
	after, err := m.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.Metrics.RepairSwaps != 1 {
		t.Fatalf("repair swaps = %d, want 1", after.Metrics.RepairSwaps)
	}
	ops := rec.of(snap.ID)
	var adopt *recordedOp
	for i := range ops {
		if ops[i].kind == "adopt" {
			adopt = &ops[i]
		}
	}
	if adopt == nil {
		t.Fatalf("no adopt op recorded (ops: %d)", len(ops))
	}
	if adopt.from != snap.Version || adopt.to != snap.Version+1 {
		t.Fatalf("adopt versions [%d,%d], want [%d,%d]", adopt.from, adopt.to, snap.Version, snap.Version+1)
	}
	if adopt.value != after.Value {
		t.Fatalf("adopt value %v, served %v", adopt.value, after.Value)
	}
	// The logged configuration must match what the session now serves.
	for u := range after.Assignment {
		for sl := range after.Assignment[u] {
			if adopt.conf.Assign[u][sl] != after.Assignment[u][sl] {
				t.Fatalf("adopt config[%d][%d] = %d, served %d", u, sl, adopt.conf.Assign[u][sl], after.Assignment[u][sl])
			}
		}
	}
}

// TestRestoreRoundTrip: Manager → State (via the persister's creation/cut
// images) → Restore reproduces version, value, configuration, active set
// and metrics, and the restored session keeps serving events.
func TestRestoreRoundTrip(t *testing.T) {
	rec := newRecorder()
	m, eng := newTestManager(t, Options{Persister: rec, SnapshotEvery: 4})
	in := testInstance(35)
	snap, _, err := m.CreateWith(context.Background(), in, CreateSpec{})
	if err != nil {
		t.Fatal(err)
	}
	events := GenerateEvents(in.NumUsers(), in.NumItems, 8, 5)
	if _, err := m.Apply(snap.ID, events); err != nil {
		t.Fatal(err)
	}
	before, err := m.Snapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	ops := rec.of(snap.ID)
	var lastCut *State
	for _, op := range ops {
		if op.kind == "snapshot" || op.kind == "create" {
			lastCut = op.state
		}
	}
	if lastCut.Version != 8 {
		t.Fatalf("last cut at version %d, want 8 (cadence 4, batch of 8)", lastCut.Version)
	}

	m2, err := NewManager(Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m2.Close)
	restored, err := m2.Restore(lastCut, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Version != before.Version || restored.Value != before.Value {
		t.Fatalf("restored (v%d, %v), want (v%d, %v)", restored.Version, restored.Value, before.Version, before.Value)
	}
	if fmt.Sprint(restored.Assignment) != fmt.Sprint(before.Assignment) {
		t.Fatal("restored assignment differs")
	}
	if fmt.Sprint(restored.Active) != fmt.Sprint(before.Active) {
		t.Fatal("restored active set differs")
	}
	if restored.Metrics != before.Metrics {
		t.Fatalf("restored metrics %+v, want %+v", restored.Metrics, before.Metrics)
	}
	// Still serves, and versions continue from where they were.
	res, err := m2.Apply(snap.ID, []Event{{Type: EventRebalance, MaxPasses: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != before.Version+1 {
		t.Fatalf("restored session applied to v%d, want v%d", res.Version, before.Version+1)
	}
	// A duplicate restore must be refused.
	if _, err := m2.Restore(lastCut, nil, 0); err == nil {
		t.Fatal("duplicate restore accepted")
	}
}
