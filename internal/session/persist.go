package session

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/svgic/svgic/internal/core"
)

// This file is the session side of the durability contract. A Manager built
// with Options.Persister reports every state transition of every session —
// creation, applied event batches, drift-repair adoptions, periodic snapshot
// cuts and tombstoning ends — to the persister, which turns them into a
// write-ahead log and snapshots (see internal/store). Restore is the inverse
// path: after a crash, recovered State images are installed back into a
// fresh manager without re-solving.
//
// Ordering is the whole game for a log: the persister must observe one
// session's transitions in exactly the order they were applied, or replay
// diverges. Hook calls therefore never happen under the session's state lock
// (a slow persister — an fsync — must not serialize with event application),
// but they ARE sequenced by it: each transition appends a persistOp to the
// session's outbox while still holding the state lock, and the outbox is
// drained to the persister under a dedicated drain lock after the state lock
// is released. Event latency is bounded by the persister's enqueue (a
// buffered append), never by its I/O — except that the SnapshotEvery-th
// transition clones the full instance under the state lock to cut its
// image, the same O(instance) cost the drift-repair path pays per cycle.

// EndReason says why a session's durable state is being tombstoned.
type EndReason string

// The tombstoning reasons.
const (
	// EndDeleted: an explicit DELETE ended the session.
	EndDeleted EndReason = "deleted"
	// EndEvicted: the TTL sweep dropped an idle session. Persisted like a
	// delete, so an evicted-then-recycled session id can never resurrect
	// stale WAL state on restart.
	EndEvicted EndReason = "evicted"
)

// SolverRef names the registry solver backing a session — the piece a
// recovery path needs to re-resolve the session's drift-repair solver, since
// a core.Solver value itself cannot be persisted. An empty Name means the
// engine's default solver.
type SolverRef struct {
	Name   string          `json:"name,omitempty"`
	Params json.RawMessage `json:"params,omitempty"`
}

// State is the full durable image of one live session: everything Restore
// needs to serve it again bit-for-bit. Instance and Config are deep clones —
// the persister may marshal them long after the live session has moved on.
type State struct {
	ID      string
	Ref     SolverRef
	Algo    string // display name of the backing algorithm
	SizeCap int
	// TTL is the session's idle-eviction override (CreateSpec.TTL); zero
	// means the manager default. It travels in the durable image so a
	// restored session keeps its eviction contract across restarts.
	TTL     time.Duration
	Version uint64
	Value   float64
	Created time.Time

	Instance *core.Instance
	Config   *core.Configuration
	Active   []int

	Metrics Metrics
}

// Persister receives a Manager's durability hooks. Implementations must be
// safe for concurrent use across sessions; calls for ONE session are always
// sequential and in application order. Calls must not re-enter the manager.
//
// internal/store implements it over a write-ahead log with snapshots; a nil
// persister (the default) keeps sessions purely in memory.
type Persister interface {
	// SessionCreated reports a new session, with its full post-solve state.
	// It is invoked before the session becomes reachable, so it
	// happens-before every other hook for that id.
	SessionCreated(st *State)
	// EventsApplied reports one applied event batch (exactly the applied
	// prefix on a partial failure): the session moved from version `from` to
	// version `to` and now evaluates to value.
	EventsApplied(id string, events []Event, from, to uint64, value float64)
	// ConfigAdopted reports a drift-repair swap: the session jumped to conf
	// (deep clone, callee may keep it) at version `to`.
	ConfigAdopted(id string, conf *core.Configuration, from, to uint64, value float64)
	// SnapshotCut reports a periodic full-state image (every
	// Options.SnapshotEvery applied transitions); the persister may compact
	// everything older than it.
	SnapshotCut(st *State)
	// SessionEnded reports a tombstone: the session was deleted or evicted
	// and its durable state must not be recovered.
	SessionEnded(id string, reason EndReason)
}

// DefaultSnapshotEvery is the snapshot cadence (in applied transitions) when
// Options.SnapshotEvery is zero.
const DefaultSnapshotEvery = 256

// persistOp is one queued hook call. Ops are appended to the session outbox
// under the state lock and replayed to the persister in order.
type persistOp struct {
	kind   opKind
	events []Event
	conf   *core.Configuration
	state  *State
	from   uint64
	to     uint64
	value  float64
	reason EndReason
}

type opKind uint8

const (
	opEvents opKind = iota
	opAdopt
	opSnapshot
	opEnd
)

// stateLocked assembles the session's durable image. Caller holds s.mu.
func (s *Session) stateLocked() *State {
	return &State{
		ID:       s.id,
		Ref:      s.ref,
		Algo:     s.algo,
		SizeCap:  s.sizeCap,
		TTL:      s.ttl,
		Version:  s.version,
		Value:    s.value,
		Created:  s.created,
		Instance: s.ds.Instance().Clone(),
		Config:   s.ds.Config().Clone(),
		Active:   s.ds.ActiveUsers(),
		Metrics:  s.metricsLocked(),
	}
}

// maybeSnapshotLocked cuts a snapshot op once enough transitions accumulated
// since the last cut. Caller holds s.mu and has already appended the
// triggering transition's op, so the snapshot lands after it in the log.
func (s *Session) maybeSnapshotLocked() {
	if s.persist == nil || s.snapshotEvery <= 0 {
		return
	}
	if s.sinceSnapshot < s.snapshotEvery {
		return
	}
	s.sinceSnapshot = 0
	s.outbox = append(s.outbox, persistOp{kind: opSnapshot, state: s.stateLocked()})
}

// drainOutbox replays queued persistOps to the persister, in order, outside
// the state lock. The drain lock serializes drainers, so two appliers
// finishing close together cannot interleave their ops at the persister; the
// loop re-checks the outbox because ops may be appended while a drain is
// mid-flight (that appender then blocks here and picks up anything left).
func (s *Session) drainOutbox() {
	if s.persist == nil {
		return
	}
	s.outMu.Lock()
	defer s.outMu.Unlock()
	for {
		s.mu.Lock()
		ops := s.outbox
		s.outbox = nil
		s.mu.Unlock()
		if len(ops) == 0 {
			return
		}
		for _, op := range ops {
			switch op.kind {
			case opEvents:
				s.persist.EventsApplied(s.id, op.events, op.from, op.to, op.value)
			case opAdopt:
				s.persist.ConfigAdopted(s.id, op.conf, op.from, op.to, op.value)
			case opSnapshot:
				s.persist.SnapshotCut(op.state)
			case opEnd:
				s.persist.SessionEnded(s.id, op.reason)
			}
		}
	}
}

// Restore installs a recovered session image into the manager without
// re-solving: the recovery path (internal/store.Recover) rebuilds State from
// the latest snapshot plus the replayed WAL tail, the serving layer
// re-resolves the drift-repair solver from st.Ref, and the session then
// serves exactly the (version, value, configuration) it served before the
// crash. sinceSnapshot seeds the snapshot cadence with the replayed tail
// length, so a session recovered just short of a cut does not wait a full
// interval for its next one. Restored sessions bypass MaxSessions — they
// were admitted before the restart — but collide with nothing: a duplicate
// id is an error. The session is installed into the shard its id hashes to
// (the routing is a pure function of the id), so the restored session is
// served, evicted and repaired by the same shard that owned it before the
// crash.
func (m *Manager) Restore(st *State, solver core.Solver, sinceSnapshot int) (Snapshot, error) {
	if st == nil || st.Instance == nil || st.Config == nil {
		return Snapshot{}, fmt.Errorf("session: restore: incomplete state")
	}
	if st.ID == "" {
		return Snapshot{}, fmt.Errorf("session: restore: empty session id")
	}
	ds, err := core.RestoreDynamicSession(st.Instance, st.Config, st.SizeCap, st.Active)
	if err != nil {
		return Snapshot{}, fmt.Errorf("session: restore %s: %w", st.ID, err)
	}
	// Seed the restored accumulator with the persisted value: the live
	// session's incremental chain and a cold Evaluate can differ in final
	// ulps, and recovery promises the exact (version, value, configuration)
	// served before the crash — including the values later events build on.
	if err := ds.SeedValue(st.Value); err != nil {
		return Snapshot{}, fmt.Errorf("session: restore %s: %w", st.ID, err)
	}
	now := m.now()
	s := &Session{
		id:            st.ID,
		algo:          st.Algo,
		ref:           st.Ref,
		solver:        solver,
		sizeCap:       st.SizeCap,
		ttl:           st.TTL,
		persist:       m.persister,
		snapshotEvery: m.snapshotEvery,
		sinceSnapshot: sinceSnapshot,
		ds:            ds,
		version:       st.Version,
		value:         st.Value,
		created:       st.Created,
		lastTouch:     now,
		lastRepair:    noRepairYet,
		joins:         st.Metrics.Joins,
		leaves:        st.Metrics.Leaves,
		updates:       st.Metrics.Updates,
		rebalances:    st.Metrics.Rebalances,
		rebalanceGain: st.Metrics.RebalanceGain,
		repairSwaps:   st.Metrics.RepairSwaps,
		repairKeeps:   st.Metrics.RepairKeeps,
		repairStale:   st.Metrics.RepairStale,
		repairSkips:   st.Metrics.RepairSkips,
	}
	sh := m.shardOf(st.ID)
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return Snapshot{}, ErrClosed
	}
	if _, dup := sh.sessions[st.ID]; dup {
		sh.mu.Unlock()
		return Snapshot{}, fmt.Errorf("session: restore %s: id already live", st.ID)
	}
	sh.sessions[st.ID] = s
	// Counters move under the shard lock so a concurrent Close sweep (which
	// zeroes them after sweeping this shard) is strictly ordered after.
	sh.live.Add(1)
	m.live.Add(1)
	sh.mu.Unlock()
	sh.restored.Add(1)
	sh.noteTTL(st.TTL)
	return s.snapshot(now, false)
}
