// Package session is the live-session subsystem: it promotes the dynamic
// scenario of Extension F (shoppers joining and leaving a running VR store,
// the configuration repaired incrementally instead of re-solved) from a
// single-threaded library type into a stateful, concurrency-safe serving
// path.
//
// A Manager holds ID-keyed, versioned Sessions, each wrapping a
// core.DynamicSession behind a serializing lock. Clients mutate a session by
// applying batches of typed, JSON-encodable events (join, leave,
// updatePreference, rebalance); every applied event bumps the session's
// version, so replays and monitoring can assert exactly how far a session
// has advanced. The manager bounds the live-session count (admission
// errors, not queues), evicts idle sessions after a TTL, and — the piece
// that keeps a million incremental sessions near-optimal — runs drift
// repair: a background loop that periodically re-solves each session's
// current instance through the shared engine and atomically swaps in the
// full solution when it beats the incrementally maintained configuration by
// a configurable margin. Repair solves run outside the session lock, so the
// event path never blocks on a re-solve; a version check at swap time
// discards solutions made stale by concurrent events.
package session

import (
	"fmt"
	"sync"
	"time"

	"github.com/svgic/svgic/internal/core"
)

// Session is one live store: a dynamic session plus the serving state around
// it — identity, version, activity timestamps and per-session metrics. All
// methods are safe for concurrent use; event application is serialized.
type Session struct {
	id      string
	algo    string      // display name of the solver backing create + repair
	solver  core.Solver // nil = the engine's default solver
	sizeCap int

	mu        sync.Mutex
	ds        *core.DynamicSession
	version   uint64
	value     float64
	created   time.Time
	lastTouch time.Time
	closed    bool

	joins, leaves, updates, rebalances uint64
	rebalanceGain                      float64
	repairSwaps, repairKeeps           uint64
	repairStale                        uint64
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// ApplyResult reports the outcome of one event batch: the session's version
// and objective value after the last applied event, plus one result per
// applied event (positional with the request on success; on error, the
// prefix that applied before the failure).
type ApplyResult struct {
	Version uint64        `json:"version"`
	Value   float64       `json:"value"`
	Results []EventResult `json:"results"`
}

// apply runs one event batch under the session lock. Events apply in order;
// the first failure stops the batch and the error reports its index, with
// every earlier event still applied (the returned result reflects the
// session as it stands). Each applied event bumps the version by one.
func (s *Session) apply(now time.Time, events []Event) (ApplyResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ApplyResult{}, ErrNotFound
	}
	results := make([]EventResult, 0, len(events))
	var failed error
	for i, ev := range events {
		res, err := Apply(s.ds, ev)
		if err != nil {
			failed = fmt.Errorf("session: event %d: %w", i, err)
			break
		}
		s.version++
		switch res.Type {
		case EventJoin:
			s.joins++
		case EventLeave:
			s.leaves++
		case EventUpdatePreference:
			s.updates++
		case EventRebalance:
			s.rebalances++
			s.rebalanceGain += res.Gain
		}
		results = append(results, res)
	}
	s.value = s.ds.Value()
	s.lastTouch = now
	return ApplyResult{Version: s.version, Value: s.value, Results: results}, failed
}

// Metrics is the per-session counter block exposed by snapshots and the
// sessions section of /v1/stats.
type Metrics struct {
	EventsApplied uint64  `json:"eventsApplied"`
	Joins         uint64  `json:"joins"`
	Leaves        uint64  `json:"leaves"`
	Updates       uint64  `json:"updates"`
	Rebalances    uint64  `json:"rebalances"`
	RebalanceGain float64 `json:"rebalanceGain"`
	RepairSwaps   uint64  `json:"repairSwaps"`
	RepairKeeps   uint64  `json:"repairKeeps"`
	RepairStale   uint64  `json:"repairStale"`
}

// Snapshot is a point-in-time copy of a session's serving state: the current
// configuration (deep-copied; callers may keep it), the active-user set and
// the metrics.
type Snapshot struct {
	ID         string
	Algorithm  string
	SizeCap    int
	Version    uint64
	Value      float64
	Users      int   // instance rows, including departed shoppers
	Active     []int // ids of shoppers currently in the store
	Slots      int
	Assignment [][]int
	Created    time.Time
	LastTouch  time.Time
	Metrics    Metrics
}

// snapshot assembles a Snapshot under the session lock; touch refreshes the
// idle clock (reads count as activity for TTL eviction).
func (s *Session) snapshot(now time.Time, touch bool) (Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Snapshot{}, ErrNotFound
	}
	if touch {
		s.lastTouch = now
	}
	conf := s.ds.Config()
	return Snapshot{
		ID:         s.id,
		Algorithm:  s.algo,
		SizeCap:    s.sizeCap,
		Version:    s.version,
		Value:      s.value,
		Users:      s.ds.Instance().NumUsers(),
		Active:     s.ds.ActiveUsers(),
		Slots:      conf.K,
		Assignment: conf.Clone().Assign,
		Created:    s.created,
		LastTouch:  s.lastTouch,
		Metrics:    s.metricsLocked(),
	}, nil
}

func (s *Session) metricsLocked() Metrics {
	return Metrics{
		EventsApplied: s.joins + s.leaves + s.updates + s.rebalances,
		Joins:         s.joins,
		Leaves:        s.leaves,
		Updates:       s.updates,
		Rebalances:    s.rebalances,
		RebalanceGain: s.rebalanceGain,
		RepairSwaps:   s.repairSwaps,
		RepairKeeps:   s.repairKeeps,
		RepairStale:   s.repairStale,
	}
}

// close marks the session dead; later applies and snapshots see ErrNotFound
// and an in-flight drift repair discards its result.
func (s *Session) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}
