// Package session is the live-session subsystem: it promotes the dynamic
// scenario of Extension F (shoppers joining and leaving a running VR store,
// the configuration repaired incrementally instead of re-solved) from a
// single-threaded library type into a stateful, concurrency-safe serving
// path.
//
// A Manager holds ID-keyed, versioned Sessions, each wrapping a
// core.DynamicSession behind a serializing lock. The manager itself is a
// thin router: sessions are hash-partitioned (FNV-1a over the id) across a
// fixed array of shards, each an independent lock domain with a pinned owner
// goroutine, so no hot path ever crosses a shard boundary (see shard.go).
// Clients mutate a session by applying batches of typed, JSON-encodable
// events (join, leave, updatePreference, rebalance); every applied event
// bumps the session's version, so replays and monitoring can assert exactly
// how far a session has advanced. The manager bounds the live-session count
// (admission errors, not queues), evicts idle sessions after a TTL, and —
// the piece that keeps a million incremental sessions near-optimal — runs
// drift repair: each shard's owner goroutine periodically re-solves its
// sessions' current instances through the shared engine and atomically
// swaps in the full solution when it beats the incrementally maintained
// configuration by a configurable margin. Repair solves run outside the
// session lock, so the event path never blocks on a re-solve; a version
// check at swap time discards solutions made stale by concurrent events.
//
// A manager built with Options.Persister is durable: every transition —
// creation, applied batches, repair adoptions, periodic snapshot cuts,
// tombstoning ends — is reported to the persister in per-session order (see
// persist.go for the ordering machinery), and Restore installs recovered
// state images back into a fresh manager after a restart. internal/store
// implements the persister over a write-ahead log with snapshots.
package session

import (
	"fmt"
	"sync"
	"time"

	"github.com/svgic/svgic/internal/core"
)

// Session is one live store: a dynamic session plus the serving state around
// it — identity, version, activity timestamps and per-session metrics. All
// methods are safe for concurrent use; event application is serialized.
type Session struct {
	id      string
	algo    string      // display name of the solver backing create + repair
	ref     SolverRef   // registry identity persisted for recovery
	solver  core.Solver // nil = the engine's default solver
	sizeCap int
	ttl     time.Duration // per-session idle TTL override; 0 = manager default

	persist       Persister // nil = in-memory only
	snapshotEvery int

	mu        sync.Mutex
	ds        *core.DynamicSession
	version   uint64
	value     float64
	created   time.Time
	lastTouch time.Time
	closed    bool

	// Durability outbox: transitions queue here under mu and are drained to
	// the persister in order under outMu (see persist.go). sinceSnapshot
	// counts transitions since the last snapshot cut.
	outbox        []persistOp
	sinceSnapshot int
	outMu         sync.Mutex

	// lastRepair is the session version as of the last COMPLETED repair
	// cycle (swap or keep). A repair cycle that finds the version unchanged
	// skips the clone + solve entirely. The sentinel noRepairYet marks a
	// session no repair has examined (version 0 is a real, repairable state).
	lastRepair uint64

	joins, leaves, updates, rebalances uint64
	rebalanceGain                      float64
	repairSwaps, repairKeeps           uint64
	repairStale, repairSkips           uint64
}

// noRepairYet is the lastRepair sentinel of a session that has never
// completed a repair cycle.
const noRepairYet = ^uint64(0)

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// ApplyResult reports the outcome of one event batch: the session's version
// and objective value after the last applied event, plus one result per
// applied event (positional with the request on success; on error, the
// prefix that applied before the failure).
type ApplyResult struct {
	Version uint64        `json:"version"`
	Value   float64       `json:"value"`
	Results []EventResult `json:"results"`
}

// apply runs one event batch under the session lock. Events apply in order;
// the first failure stops the batch and the error reports its index, with
// every earlier event still applied (the returned result reflects the
// session as it stands). Each applied event bumps the version by one. The
// applied prefix is queued for the persister (exactly the prefix — a replay
// of the log must reproduce what actually happened, not what was asked) and
// drained outside the state lock.
func (s *Session) apply(now time.Time, events []Event) (ApplyResult, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ApplyResult{}, ErrNotFound
	}
	from := s.version
	results := make([]EventResult, 0, len(events))
	var failed error
	for i, ev := range events {
		res, err := Apply(s.ds, ev)
		if err != nil {
			failed = fmt.Errorf("session: event %d: %w", i, err)
			break
		}
		s.version++
		switch res.Type {
		case EventJoin:
			s.joins++
		case EventLeave:
			s.leaves++
		case EventUpdatePreference:
			s.updates++
		case EventRebalance:
			s.rebalances++
			s.rebalanceGain += res.Gain
		}
		results = append(results, res)
	}
	s.value = s.ds.Value()
	s.lastTouch = now
	out := ApplyResult{Version: s.version, Value: s.value, Results: results}
	if s.persist != nil && len(results) > 0 {
		s.outbox = append(s.outbox, persistOp{
			kind:   opEvents,
			events: events[:len(results)],
			from:   from,
			to:     s.version,
			value:  s.value,
		})
		s.sinceSnapshot += len(results)
		s.maybeSnapshotLocked()
	}
	s.mu.Unlock()
	s.drainOutbox()
	return out, failed
}

// Metrics is the per-session counter block exposed by snapshots and the
// sessions section of /v1/stats.
type Metrics struct {
	EventsApplied uint64  `json:"eventsApplied"`
	Joins         uint64  `json:"joins"`
	Leaves        uint64  `json:"leaves"`
	Updates       uint64  `json:"updates"`
	Rebalances    uint64  `json:"rebalances"`
	RebalanceGain float64 `json:"rebalanceGain"`
	RepairSwaps   uint64  `json:"repairSwaps"`
	RepairKeeps   uint64  `json:"repairKeeps"`
	RepairStale   uint64  `json:"repairStale"`
	RepairSkips   uint64  `json:"repairSkips"`
}

// Snapshot is a point-in-time copy of a session's serving state: the current
// configuration (deep-copied; callers may keep it), the active-user set and
// the metrics.
type Snapshot struct {
	ID         string
	Algorithm  string
	SizeCap    int
	Version    uint64
	Value      float64
	Users      int   // instance rows, including departed shoppers
	Active     []int // ids of shoppers currently in the store
	Slots      int
	Assignment [][]int
	Created    time.Time
	LastTouch  time.Time
	Metrics    Metrics
}

// snapshot assembles a Snapshot under the session lock; touch refreshes the
// idle clock (reads count as activity for TTL eviction).
func (s *Session) snapshot(now time.Time, touch bool) (Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Snapshot{}, ErrNotFound
	}
	if touch {
		s.lastTouch = now
	}
	conf := s.ds.Config()
	return Snapshot{
		ID:         s.id,
		Algorithm:  s.algo,
		SizeCap:    s.sizeCap,
		Version:    s.version,
		Value:      s.value,
		Users:      s.ds.Instance().NumUsers(),
		Active:     s.ds.ActiveUsers(),
		Slots:      conf.K,
		Assignment: conf.Clone().Assign,
		Created:    s.created,
		LastTouch:  s.lastTouch,
		Metrics:    s.metricsLocked(),
	}, nil
}

func (s *Session) metricsLocked() Metrics {
	return Metrics{
		EventsApplied: s.joins + s.leaves + s.updates + s.rebalances,
		Joins:         s.joins,
		Leaves:        s.leaves,
		Updates:       s.updates,
		Rebalances:    s.rebalances,
		RebalanceGain: s.rebalanceGain,
		RepairSwaps:   s.repairSwaps,
		RepairKeeps:   s.repairKeeps,
		RepairStale:   s.repairStale,
		RepairSkips:   s.repairSkips,
	}
}

// close marks the session dead; later applies and snapshots see ErrNotFound
// and an in-flight drift repair discards its result. A non-empty reason
// queues a durable tombstone (delete / TTL eviction); an empty reason is a
// manager shutdown — the session's durable state must survive the restart,
// so only the pending outbox is flushed. close takes the state lock, so it
// serializes after any in-flight apply: the tombstone always lands after
// that apply's ops in the log.
func (s *Session) close(reason EndReason) {
	s.mu.Lock()
	s.closed = true
	if s.persist != nil && reason != "" {
		s.outbox = append(s.outbox, persistOp{kind: opEnd, reason: reason})
	}
	s.mu.Unlock()
	s.drainOutbox()
}
