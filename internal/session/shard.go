package session

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the sharded serving path. The Manager no longer guards one
// sessions map with one mutex: it hash-partitions session ids over a fixed
// shard array (FNV-1a, the same routing internal/store uses for its writer
// shards), and each shard is an independent lock domain with a pinned owner
// goroutine. The shard's mutex covers only ITS map; its owner goroutine
// exclusively drives ITS TTL eviction sweeps and drift-repair cycles. No hot
// path — create, apply, snapshot, delete — ever takes another shard's lock,
// so contention scales down with the shard count instead of serializing the
// whole serving layer behind one mutex.

// ShardForID routes a session id to a shard: FNV-1a over the id bytes,
// reduced modulo the shard count. It is a pure function of the id, so the
// same id lands on the same shard across restarts — crash recovery restores
// every session into the shard that will serve it.
func ShardForID(id string, shards int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return int(h % uint32(shards))
}

// ShardStats is one shard's slice of the manager counters, exposed so
// operators can see routing imbalance (per-shard live counts) and hot-shard
// skew (per-shard event totals) directly.
type ShardStats struct {
	Shard         int    `json:"shard"`
	Live          int    `json:"live"`
	Created       uint64 `json:"created"`
	Restored      uint64 `json:"restored,omitempty"`
	Evicted       uint64 `json:"evicted"`
	Deleted       uint64 `json:"deleted"`
	EventsApplied uint64 `json:"eventsApplied"`
	RepairRuns    uint64 `json:"repairRuns"`
	RepairSwaps   uint64 `json:"repairSwaps"`
	RepairSkips   uint64 `json:"repairSkips"`
	RepairWarm    uint64 `json:"repairWarm"`
	RepairCold    uint64 `json:"repairCold"`
}

// shard is one lock domain: a slice of the session map plus the counters
// attributed to it. Mutations touch only this shard's mutex; the owner
// goroutine (Manager.shardLoop) drives eviction and repair for exactly the
// sessions routed here.
type shard struct {
	idx int

	mu       sync.Mutex
	sessions map[string]*Session
	closed   bool

	// minTTL is the tightest positive effective TTL (nanoseconds) carried by
	// any session ever routed here; the owner goroutine derives its eviction
	// cadence from it. wake nudges the owner to re-arm when a session with a
	// tighter TTL override arrives (a manager with TTL zero starts with no
	// eviction ticker at all — the first override session creates it).
	minTTL atomic.Int64
	wake   chan struct{}

	live      atomic.Int64
	created   atomic.Uint64
	restored  atomic.Uint64
	evicted   atomic.Uint64
	deleted   atomic.Uint64
	events    atomic.Uint64
	joins     atomic.Uint64
	leaves    atomic.Uint64
	updates   atomic.Uint64
	rebals    atomic.Uint64
	repRuns   atomic.Uint64
	repSwaps  atomic.Uint64
	repKeeps  atomic.Uint64
	repStale  atomic.Uint64
	repErrors atomic.Uint64
	repSkips  atomic.Uint64
	repWarm   atomic.Uint64
	repCold   atomic.Uint64
}

// get looks a session up in this shard. ErrClosed once the manager's close
// sweep has passed through; ErrNotFound for ids never created, deleted or
// evicted.
func (sh *shard) get(id string) (*Session, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return nil, ErrClosed
	}
	s, ok := sh.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	return s, nil
}

// countEvents attributes one applied batch's per-kind totals to this shard.
func (sh *shard) countEvents(results []EventResult) {
	for _, r := range results {
		sh.events.Add(1)
		switch r.Type {
		case EventJoin:
			sh.joins.Add(1)
		case EventLeave:
			sh.leaves.Add(1)
		case EventUpdatePreference:
			sh.updates.Add(1)
		case EventRebalance:
			sh.rebals.Add(1)
		}
	}
}

// noteTTL records a session's positive effective TTL and wakes the owner
// goroutine when it tightens the shard minimum, so the eviction cadence
// follows the tightest TTL actually present instead of only the manager
// default.
func (sh *shard) noteTTL(ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	for {
		cur := sh.minTTL.Load()
		if cur > 0 && cur <= int64(ttl) {
			return
		}
		if sh.minTTL.CompareAndSwap(cur, int64(ttl)) {
			select {
			case sh.wake <- struct{}{}:
			default: // a wake is already pending; the owner re-reads minTTL
			}
			return
		}
	}
}

// stats snapshots this shard's counter block.
func (sh *shard) stats() ShardStats {
	return ShardStats{
		Shard:         sh.idx,
		Live:          int(sh.live.Load()),
		Created:       sh.created.Load(),
		Restored:      sh.restored.Load(),
		Evicted:       sh.evicted.Load(),
		Deleted:       sh.deleted.Load(),
		EventsApplied: sh.events.Load(),
		RepairRuns:    sh.repRuns.Load(),
		RepairSwaps:   sh.repSwaps.Load(),
		RepairSkips:   sh.repSkips.Load(),
		RepairWarm:    sh.repWarm.Load(),
		RepairCold:    sh.repCold.Load(),
	}
}

// shardLoop is the shard's pinned owner goroutine: it alone schedules this
// shard's drift-repair cycles and TTL eviction sweeps, so periodic work never
// crosses shard boundaries. The eviction ticker is created lazily from the
// shard's observed minimum TTL (a quarter of it, floored at 10ms) and
// tightened — never loosened — when a shorter-TTL session arrives; a manager
// with no TTL anywhere runs no eviction ticker at all. Repair cycles run off
// the loop goroutine so a slow cycle (many sessions × solve time) never
// starves eviction ticks; a tick that arrives while the previous cycle is
// still running is skipped rather than queued.
func (m *Manager) shardLoop(sh *shard, repairInterval time.Duration) {
	defer m.wg.Done()
	var repairC <-chan time.Time
	if repairInterval > 0 {
		t := time.NewTicker(repairInterval)
		defer t.Stop()
		repairC = t.C
	}
	var (
		evictT  *time.Ticker
		evictC  <-chan time.Time
		evictIv time.Duration
	)
	defer func() {
		if evictT != nil {
			evictT.Stop()
		}
	}()
	rearm := func() {
		ttl := time.Duration(sh.minTTL.Load())
		if ttl <= 0 {
			return
		}
		iv := ttl / 4
		if iv < 10*time.Millisecond {
			iv = 10 * time.Millisecond
		}
		switch {
		case evictT == nil:
			evictT = time.NewTicker(iv)
			evictC = evictT.C
			evictIv = iv
		case iv < evictIv:
			evictT.Reset(iv)
			evictIv = iv
		}
	}
	rearm()
	repairing := make(chan struct{}, 1)
	for {
		select {
		case <-m.done:
			return
		case <-repairC:
			select {
			case repairing <- struct{}{}:
				m.wg.Add(1)
				go func() {
					defer m.wg.Done()
					defer func() { <-repairing }()
					m.repairShard(m.ctx, sh)
				}()
			default: // previous cycle still in flight
			}
		case <-sh.wake:
			rearm()
		case <-evictC:
			m.evictShard(sh)
		}
	}
}

// evictShard removes this shard's sessions idle longer than their effective
// TTL (the session's own override when set, the manager default otherwise),
// returning how many were evicted.
//
// Session locks are never taken while holding the shard lock: a sweep
// blocking on one session's long event batch under sh.mu would stall every
// operation routed to this shard. Idleness is checked lock-by-lock outside
// sh.mu; confirmed candidates are then removed under sh.mu by identity alone.
// A session touched in the narrow window between its idleness check and
// removal can be evicted anyway — it had been idle for a full TTL moments
// earlier, which is within the eviction contract — and an event batch
// already in flight on a victim completes normally before close() lands.
func (m *Manager) evictShard(sh *shard) int {
	now := m.now()
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return 0
	}
	all := make(map[string]*Session, len(sh.sessions))
	for id, s := range sh.sessions {
		all[id] = s
	}
	sh.mu.Unlock()

	candidates := make(map[string]*Session)
	for id, s := range all {
		ttl := s.ttl // immutable after publication
		if ttl <= 0 {
			ttl = m.ttl
		}
		if ttl <= 0 {
			continue // never evicted
		}
		cutoff := now.Add(-ttl)
		s.mu.Lock()
		idle := !s.closed && s.lastTouch.Before(cutoff)
		s.mu.Unlock()
		if idle {
			candidates[id] = s
		}
	}
	if len(candidates) == 0 {
		return 0
	}

	var victims []*Session
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return 0
	}
	for id, s := range candidates {
		if sh.sessions[id] != s {
			continue // deleted or replaced meanwhile
		}
		delete(sh.sessions, id)
		sh.live.Add(-1)
		m.live.Add(-1)
		victims = append(victims, s)
	}
	sh.mu.Unlock()
	for _, s := range victims {
		// The eviction tombstone is part of the eviction, not an
		// afterthought: a TTL-evicted id whose WAL survived a restart would
		// resurrect as a live session the client believed gone.
		s.close(EndEvicted)
		sh.evicted.Add(1)
	}
	return len(victims)
}

// repairShard runs one drift-repair cycle over this shard's live sessions.
// Concurrency is bounded by the MANAGER-wide semaphore, not per shard: the
// engine's worker pool is the real execution bound, and N shards each
// spawning repairConcurrency solves would flood it N-fold.
func (m *Manager) repairShard(ctx context.Context, sh *shard) {
	sh.mu.Lock()
	list := make([]*Session, 0, len(sh.sessions))
	for _, s := range sh.sessions {
		list = append(list, s)
	}
	sh.mu.Unlock()
	var wg sync.WaitGroup
	for _, s := range list {
		if ctx.Err() != nil {
			break
		}
		m.repairSem <- struct{}{}
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			defer func() { <-m.repairSem }()
			m.repairOne(ctx, sh, s)
		}(s)
	}
	wg.Wait()
}
