// Package datasets provides synthetic stand-ins for the paper's three
// evaluation datasets — Timik (a VR social world), Epinions (a product-review
// trust network) and Yelp (a location-based social network). The real
// datasets are not redistributable, so each profile pairs a graph generator
// with utility-model parameters calibrated to the dataset characteristics
// the paper's analysis leans on (see DESIGN.md §7):
//
//   - Timik: heavy-tailed VR friendships, moderate clustering, a few very
//     popular virtual POIs that most users like (users "interact with more
//     strangers", so community structure is weaker).
//   - Epinions: sparse trust network, low social-utility scale (the paper
//     observes lower social utility here), a small set of widely adopted
//     items that appear in many users' top-k.
//   - Yelp: high clustering (friends cluster spatially), highly diversified
//     individual preferences (the paper observes PER co-displays almost
//     nothing on Yelp).
package datasets

import (
	"fmt"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/graph"
	"github.com/svgic/svgic/internal/stats"
	"github.com/svgic/svgic/internal/utility"
)

// Name identifies a dataset profile.
type Name string

// The three dataset profiles of the paper's evaluation.
const (
	Timik    Name = "timik"
	Epinions Name = "epinions"
	Yelp     Name = "yelp"
)

// All lists the dataset profiles in the paper's presentation order.
func All() []Name { return []Name{Timik, Epinions, Yelp} }

// Profile bundles a graph generator with utility parameters.
type Profile struct {
	Name        Name
	Description string
	Utility     utility.Params

	attach  int     // preferential-attachment links per joining user
	triadP  float64 // triad-closure probability (clustering knob)
	mutualP float64 // probability a friendship is mutual vs one-directional
}

// ProfileOf returns the profile for a dataset name.
func ProfileOf(name Name) (Profile, error) {
	switch name {
	case Timik:
		p := utility.Defaults()
		return Profile{
			Name:        Timik,
			Description: "VR social world: heavy-tailed degrees, popular virtual POIs",
			Utility:     p,
			attach:      4, triadP: 0.15, mutualP: 0.9,
		}, nil
	case Epinions:
		p := utility.Defaults()
		p.SocialScale = 0.18   // sparse trust ⇒ lower social utility
		p.PopularitySkew = 1.3 // a few widely adopted products
		p.AlphaUser = 0.4
		return Profile{
			Name:        Epinions,
			Description: "review trust network: sparse, directional, popularity-skewed",
			Utility:     p,
			attach:      2, triadP: 0.05, mutualP: 0.55,
		}, nil
	case Yelp:
		p := utility.Defaults()
		p.Topics = 16
		p.AlphaUser = 0.08     // near-one-hot interests ⇒ diversified top-k
		p.AlphaItem = 0.08     // specialized POIs
		p.PopularitySkew = 0.3 // no dominating venue
		p.SocialScale = 0.4
		return Profile{
			Name:        Yelp,
			Description: "location-based social network: clustered, diverse interests",
			Utility:     p,
			attach:      3, triadP: 0.6, mutualP: 0.95,
		}, nil
	}
	return Profile{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

// Generate samples an n-user shopping group from a scaled synthetic network
// of the given profile (random-walk sampling, as in the paper's small-data
// experiments) and populates m items' utilities. The utility learner can be
// overridden via model (use utility-model PIERT for the paper's default).
func Generate(name Name, n, m, k int, lambda float64, model utility.ModelKind, seed uint64) (*core.Instance, error) {
	prof, err := ProfileOf(name)
	if err != nil {
		return nil, err
	}
	r := stats.NewRand(seed)
	// Build a population 4× the requested group and sample the shopping
	// group by random walk, so the group inherits the network's local
	// structure rather than being a uniform cross-section.
	population := 4*n + 8
	base := graph.HolmeKim(population, prof.attach, prof.triadP, r)
	directed := directionalize(base, prof.mutualP, seed+13)
	sub, _ := graph.RandomWalkSample(directed, n, r)
	in := core.NewInstance(sub, m, k, lambda)
	params := prof.Utility
	params.Model = model
	utility.Populate(in, params, seed+101)
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// directionalize drops one direction of some mutual friendships to model
// partially directional networks like Epinions' trust edges.
func directionalize(g *graph.Graph, mutualP float64, seed uint64) *graph.Graph {
	if mutualP >= 1 {
		return g
	}
	r := stats.NewRand(seed)
	out := graph.New(g.NumVertices())
	for _, p := range g.Pairs() {
		u, v := p[0], p[1]
		switch {
		case r.Float64() < mutualP:
			out.AddMutualEdge(u, v)
		case r.Float64() < 0.5:
			out.AddEdge(u, v)
		default:
			out.AddEdge(v, u)
		}
	}
	return out
}
