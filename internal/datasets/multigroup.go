package datasets

import (
	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/graph"
	"github.com/svgic/svgic/internal/stats"
	"github.com/svgic/svgic/internal/utility"
)

// MultiGroup folds `blocks` independent shopping groups of blockN users each
// into one instance: disjoint Watts–Strogatz social rings (so every block is
// one connected component) with synthetic PIERT utilities over a shared item
// catalogue. This is the canonical multi-component shape used by the batch
// engine's demo and benchmarks — the workload ComponentDecompose splits back
// into its blocks.
func MultiGroup(seed uint64, blocks, blockN, m, k int, lambda float64) *core.Instance {
	r := stats.NewRand(seed)
	n := blocks * blockN
	g := graph.New(n)
	for b := 0; b < blocks; b++ {
		off := b * blockN
		block := graph.WattsStrogatz(blockN, 2, 0.2, r)
		for _, e := range block.Edges() {
			g.AddEdge(off+e[0], off+e[1])
		}
	}
	in := core.NewInstance(g, m, k, lambda)
	utility.Populate(in, utility.Defaults(), seed)
	return in
}
