package datasets

import (
	"context"
	"testing"

	"github.com/svgic/svgic/internal/baselines"
	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/utility"
)

func TestProfilesExist(t *testing.T) {
	for _, name := range All() {
		p, err := ProfileOf(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Description == "" || p.Utility.Topics == 0 {
			t.Errorf("%s: incomplete profile %+v", name, p)
		}
	}
	if _, err := ProfileOf("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestGenerateValidAndDeterministic(t *testing.T) {
	for _, name := range All() {
		a, err := Generate(name, 20, 30, 4, 0.5, utility.PIERT, 9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.NumUsers() != 20 || a.NumItems != 30 || a.K != 4 {
			t.Errorf("%s: wrong shape", name)
		}
		b, err := Generate(name, 20, 30, 4, 0.5, utility.PIERT, 9)
		if err != nil {
			t.Fatal(err)
		}
		for u := range a.Pref {
			for c := range a.Pref[u] {
				if a.Pref[u][c] != b.Pref[u][c] {
					t.Fatalf("%s: generation is not deterministic", name)
				}
			}
		}
	}
	if _, err := Generate("nope", 5, 5, 2, 0.5, utility.PIERT, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

// TestDatasetContrasts checks the qualitative contrasts the paper attributes
// to the datasets and that the generators are calibrated to reproduce:
// Yelp's diversified interests give PER (top-k per user) a lower co-display
// rate than Epinions, whose widely adopted items coincide across users; and
// Epinions' sparse, weak trust network yields less social utility than Timik
// under the same solver.
func TestDatasetContrasts(t *testing.T) {
	const n, m, k = 40, 120, 5
	codisplay := map[Name]float64{}
	social := map[Name]float64{}
	for _, name := range All() {
		var co, soc float64
		const samples = 3
		for s := uint64(0); s < samples; s++ {
			in, err := Generate(name, n, m, k, 0.5, utility.PIERT, 100+s)
			if err != nil {
				t.Fatal(err)
			}
			perSol, err := baselines.PER{}.Solve(context.Background(), in)
			if err != nil {
				t.Fatal(err)
			}
			co += core.ComputeSubgroupMetrics(in, perSol.Config).CoDisplayPct
			avgd := &core.AVGDSolver{Opts: core.AVGDOptions{R: 1}}
			aSol, err := avgd.Solve(context.Background(), in)
			if err != nil {
				t.Fatal(err)
			}
			soc += aSol.Report.Social
		}
		codisplay[name] = co / samples
		social[name] = soc / samples
	}
	if codisplay[Yelp] >= codisplay[Epinions] {
		t.Errorf("PER co-display: Yelp %.3f should be below Epinions %.3f",
			codisplay[Yelp], codisplay[Epinions])
	}
	if social[Epinions] >= social[Timik] {
		t.Errorf("social utility: Epinions %.2f should be below Timik %.2f",
			social[Epinions], social[Timik])
	}
}
