// Package utility simulates the preference/social utility learners the paper
// feeds into SVGIC. The paper obtains p(u,c) and τ(u,v,c) from PIERT (a
// joint latent-topic + social-influence model), AGREE (uniform pairwise
// influence) and GREE (learned per-triple weights); real training data is
// unavailable here, so each learner is replaced by a generative model with
// the same distinguishing structure (see DESIGN.md §7):
//
//   - PIERT-like: users and items get latent topic mixtures; preferences are
//     topic affinity × item popularity; social utility couples the pair's
//     topic similarity (influence) with the item's relevance to both users.
//   - AGREE-like: identical preference model, but the pairwise influence is
//     a single constant — every friend influences a user equally.
//   - GREE-like: per-(u,v,c) weights drawn around the PIERT value with
//     heavy independent noise, emulating fully learned triple weights.
package utility

import (
	"fmt"
	"math"
	"math/rand/v2"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/graph"
	"github.com/svgic/svgic/internal/stats"
)

// ModelKind selects the simulated learner.
type ModelKind int

// Simulated utility learners.
const (
	PIERT ModelKind = iota
	AGREE
	GREE
)

func (m ModelKind) String() string {
	switch m {
	case PIERT:
		return "PIERT"
	case AGREE:
		return "AGREE"
	case GREE:
		return "GREE"
	}
	return "unknown"
}

// ParseModel converts a learner name ("piert", "agree", "gree").
func ParseModel(name string) (ModelKind, error) {
	switch name {
	case "piert", "PIERT":
		return PIERT, nil
	case "agree", "AGREE":
		return AGREE, nil
	case "gree", "GREE":
		return GREE, nil
	}
	return 0, fmt.Errorf("utility: unknown model %q", name)
}

// Params shapes the generative utility model. The zero value is unusable;
// start from Defaults().
type Params struct {
	Model          ModelKind
	Topics         int     // latent topic dimensionality
	AlphaUser      float64 // user topic concentration; small = narrow interests
	AlphaItem      float64 // item topic concentration; small = specialized items
	PopularitySkew float64 // Zipf exponent of item popularity (0 = uniform)
	SocialScale    float64 // overall magnitude of τ relative to p
	Noise          float64 // multiplicative log-normal-ish noise on utilities
	// CommunityMix blends each user's topic vector towards their social
	// community's shared topic profile (0 = fully individual, 1 = fully
	// communal). Friends sharing interests is what makes subgroup-level
	// co-display profitable — the central trade-off of the paper.
	CommunityMix float64
}

// Defaults returns a balanced parameterization (Timik-like).
func Defaults() Params {
	return Params{
		Model:          PIERT,
		Topics:         8,
		AlphaUser:      0.3,
		AlphaItem:      0.2,
		PopularitySkew: 0.8,
		SocialScale:    0.35,
		Noise:          0.15,
		CommunityMix:   0.5,
	}
}

// Populate fills the instance's preference and social utilities in place
// according to the params, deterministically for a given seed.
func Populate(in *core.Instance, p Params, seed uint64) {
	r := stats.NewRand(seed)
	n, m := in.NumUsers(), in.NumItems
	if p.Topics <= 0 {
		p.Topics = 8
	}
	// Friends share interests: blend each user's topics towards a per-
	// community profile derived from the social network itself. Label
	// propagation collapses on dense small-world samples, so when it finds
	// fewer communities than one per ~10 users we fall back to a balanced
	// min-cut partition of shopping-circle size.
	community := graph.LabelPropagation(in.G, r, 30)
	numComm := 0
	for _, c := range community {
		if c+1 > numComm {
			numComm = c + 1
		}
	}
	if want := max(2, n/10); numComm < want && n >= 8 {
		community = graph.BalancedPartition(in.G, want, r)
		numComm = want
	}
	commTopic := make([][]float64, numComm)
	for i := range commTopic {
		commTopic[i] = stats.Dirichlet(r, p.Topics, 0.15)
	}
	userTopic := make([][]float64, n)
	for u := range userTopic {
		own := stats.Dirichlet(r, p.Topics, p.AlphaUser)
		base := commTopic[community[u]]
		mixed := make([]float64, p.Topics)
		for t := range mixed {
			mixed[t] = p.CommunityMix*base[t] + (1-p.CommunityMix)*own[t]
		}
		userTopic[u] = mixed
	}
	itemTopic := make([][]float64, m)
	for c := range itemTopic {
		itemTopic[c] = stats.Dirichlet(r, p.Topics, p.AlphaItem)
	}
	pop := stats.ZipfWeights(m, p.PopularitySkew)
	// Shuffle popularity so item ids carry no order information.
	for i := m - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		pop[i], pop[j] = pop[j], pop[i]
	}

	noise := func() float64 {
		if p.Noise <= 0 {
			return 1
		}
		return math.Exp(p.Noise * r.NormFloat64())
	}
	affinity := func(u, c int) float64 {
		var dot float64
		for t := 0; t < p.Topics; t++ {
			dot += userTopic[u][t] * itemTopic[c][t]
		}
		return dot * float64(p.Topics) // rescale so a matched topic ≈ 1
	}
	// Popularity-free topic relevance, kept for the social terms: discussion
	// potential follows shared interest, not global popularity, which keeps
	// "co-display one blockbuster item to everyone" from dominating.
	rel := make([][]float64, n)
	for u := 0; u < n; u++ {
		rel[u] = make([]float64, m)
		for c := 0; c < m; c++ {
			a := stats.Clamp(affinity(u, c)/2, 0, 1)
			rel[u][c] = a
			v := affinity(u, c) * math.Sqrt(pop[c]) * noise()
			in.SetPref(u, c, stats.Clamp(v/2, 0, 1))
		}
	}

	// Pairwise influence.
	similarity := func(u, v int) float64 {
		var dot, nu, nv float64
		for t := 0; t < p.Topics; t++ {
			dot += userTopic[u][t] * userTopic[v][t]
			nu += userTopic[u][t] * userTopic[u][t]
			nv += userTopic[v][t] * userTopic[v][t]
		}
		if nu == 0 || nv == 0 {
			return 0
		}
		return dot / math.Sqrt(nu*nv)
	}
	for u := 0; u < n; u++ {
		for _, v := range in.G.Out(u) {
			var infl float64
			switch p.Model {
			case AGREE:
				infl = 0.5 // uniform influence across all friends
			default: // PIERT, GREE share the influence structure
				infl = 0.1 + 0.9*similarity(u, v)
			}
			for c := 0; c < m; c++ {
				// Discussion potential requires the item to interest both
				// sides; the geometric mean captures that coupling.
				pairRel := math.Sqrt(math.Max(rel[u][c], 1e-9) * math.Max(rel[v][c], 1e-9))
				t := p.SocialScale * infl * pairRel
				if p.Model == GREE {
					// Fully learned triple weights: heavy per-triple noise.
					t *= math.Exp(0.6 * r.NormFloat64())
				} else {
					t *= noise()
				}
				if t > 0.001 {
					if err := in.SetTau(u, v, c, stats.Clamp(t, 0, 1)); err != nil {
						panic(err) // edge taken from G.Out: cannot fail
					}
				}
			}
		}
	}
}

// RandRand exposes the deterministic stream builder for callers composing
// their own generation pipelines.
func RandRand(seed uint64) *rand.Rand { return stats.NewRand(seed) }
