package utility

import (
	"math"
	"testing"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/graph"
	"github.com/svgic/svgic/internal/stats"
)

func populate(t *testing.T, model ModelKind, seed uint64) *core.Instance {
	t.Helper()
	g := graph.HolmeKim(24, 3, 0.3, stats.NewRand(seed))
	in := core.NewInstance(g, 40, 4, 0.5)
	p := Defaults()
	p.Model = model
	Populate(in, p, seed)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestPopulateRanges(t *testing.T) {
	in := populate(t, PIERT, 3)
	var anyPref, anyTau bool
	for u := 0; u < in.NumUsers(); u++ {
		for c := 0; c < in.NumItems; c++ {
			p := in.Pref[u][c]
			if p < 0 || p > 1 {
				t.Fatalf("p(%d,%d) = %v out of [0,1]", u, c, p)
			}
			if p > 0 {
				anyPref = true
			}
		}
		for _, v := range in.G.Out(u) {
			for c := 0; c < in.NumItems; c++ {
				tau := in.Tau(u, v, c)
				if tau < 0 || tau > 1 {
					t.Fatalf("τ(%d,%d,%d) = %v out of [0,1]", u, v, c, tau)
				}
				if tau > 0 {
					anyTau = true
				}
			}
		}
	}
	if !anyPref || !anyTau {
		t.Fatalf("degenerate utilities: pref=%v tau=%v", anyPref, anyTau)
	}
}

func TestPopulateDeterministic(t *testing.T) {
	a := populate(t, PIERT, 7)
	b := populate(t, PIERT, 7)
	for u := range a.Pref {
		for c := range a.Pref[u] {
			if a.Pref[u][c] != b.Pref[u][c] {
				t.Fatal("same seed produced different preferences")
			}
		}
	}
	c := populate(t, PIERT, 8)
	diff := false
	for u := range a.Pref {
		for i := range a.Pref[u] {
			if a.Pref[u][i] != c.Pref[u][i] {
				diff = true
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical preferences")
	}
}

// tauSpread returns the coefficient of variation of τ across a user's
// friends, averaged over users and items with any social utility.
func tauSpread(in *core.Instance) float64 {
	var total float64
	var count int
	for u := 0; u < in.NumUsers(); u++ {
		out := in.G.Out(u)
		if len(out) < 2 {
			continue
		}
		for c := 0; c < in.NumItems; c++ {
			var vals []float64
			for _, v := range out {
				vals = append(vals, in.Tau(u, v, c))
			}
			m := stats.Mean(vals)
			if m <= 0 {
				continue
			}
			total += stats.StdDev(vals) / m
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

func TestModelsDiffer(t *testing.T) {
	piert := populate(t, PIERT, 5)
	agree := populate(t, AGREE, 5)
	gree := populate(t, GREE, 5)
	// AGREE's uniform influence yields a lower per-friend spread than PIERT's
	// similarity-driven influence; GREE's per-triple noise yields the highest.
	sAgree, sPiert, sGree := tauSpread(agree), tauSpread(piert), tauSpread(gree)
	if !(sAgree < sPiert && sPiert < sGree) {
		t.Errorf("τ spread ordering violated: AGREE %.3f, PIERT %.3f, GREE %.3f", sAgree, sPiert, sGree)
	}
}

func TestCommunityMixAlignsFriends(t *testing.T) {
	// With a high community mix, a user's preference correlation with
	// friends exceeds their correlation with non-friends.
	g := graph.HolmeKim(30, 3, 0.5, stats.NewRand(2))
	in := core.NewInstance(g, 60, 4, 0.5)
	p := Defaults()
	p.CommunityMix = 0.8
	Populate(in, p, 2)
	var friendSim, strangerSim float64
	var fc, sc int
	for u := 0; u < in.NumUsers(); u++ {
		for v := u + 1; v < in.NumUsers(); v++ {
			s := stats.Pearson(in.Pref[u], in.Pref[v])
			if in.G.Connected(u, v) {
				friendSim += s
				fc++
			} else {
				strangerSim += s
				sc++
			}
		}
	}
	if fc == 0 || sc == 0 {
		t.Skip("degenerate graph")
	}
	if friendSim/float64(fc) <= strangerSim/float64(sc) {
		t.Errorf("friends (%.3f) are not more preference-similar than strangers (%.3f)",
			friendSim/float64(fc), strangerSim/float64(sc))
	}
}

func TestParseModel(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want ModelKind
	}{{"piert", PIERT}, {"AGREE", AGREE}, {"gree", GREE}} {
		got, err := ParseModel(tc.s)
		if err != nil || got != tc.want {
			t.Errorf("ParseModel(%q) = %v, %v", tc.s, got, err)
		}
	}
	if _, err := ParseModel("bogus"); err == nil {
		t.Error("bogus model accepted")
	}
	if PIERT.String() != "PIERT" || AGREE.String() != "AGREE" || GREE.String() != "GREE" {
		t.Error("ModelKind.String misbehaves")
	}
}

func TestPopulateZeroNoise(t *testing.T) {
	g := graph.Complete(4)
	in := core.NewInstance(g, 10, 2, 0.5)
	p := Defaults()
	p.Noise = 0
	Populate(in, p, 1)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAffinityScale(t *testing.T) {
	// Mean preference should sit in a sensible band (not all ≈0 or ≈1), so
	// the λ trade-off stays meaningful.
	in := populate(t, PIERT, 11)
	var sum float64
	var count int
	for u := range in.Pref {
		for _, p := range in.Pref[u] {
			sum += p
			count++
		}
	}
	mean := sum / float64(count)
	if mean < 0.05 || mean > 0.9 {
		t.Errorf("mean preference %v outside (0.05, 0.9)", mean)
	}
	_ = math.Pi // keep math import if assertions change
}
