// Package registry is the named solver registry of the SVGIC library: every
// paper algorithm and baseline is registered under a stable lowercase name
// with a typed, validated parameter schema, so the engine, the HTTP server,
// both CLIs and the experiment harness resolve solvers uniformly instead of
// each maintaining its own switch statement.
//
// A registry-built solver is wrapped with a canonical cache key derived from
// its name and resolved parameters; result caches and request coalescers key
// on it (via core.CacheKeyer), so two algorithms — or one algorithm under two
// parameterizations — can never alias each other's results.
//
// The registry is extensible at runtime: Register accepts new Specs (the
// public svgic.RegisterSolver delegates here), and everything downstream —
// svgicd's -algo flag, the /v1/algorithms endpoint, the conformance suite —
// picks new entries up without code changes.
package registry

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/svgic/svgic/internal/core"
)

// Params carries caller-supplied solver parameters by name. Values may be
// native Go types or the types encoding/json produces (float64 for every
// number, string for durations); resolution coerces them against the solver's
// ParamSpec schema and rejects unknown names, wrong types and out-of-range
// values.
type Params map[string]any

// ParamKind is the declared type of one solver parameter.
type ParamKind string

// Parameter kinds.
const (
	KindInt      ParamKind = "int"
	KindUint     ParamKind = "uint"
	KindFloat    ParamKind = "float"
	KindBool     ParamKind = "bool"
	KindDuration ParamKind = "duration" // Go duration string, e.g. "30s"
	KindString   ParamKind = "string"
)

// ParamSpec declares one parameter of a registered solver. The JSON shape is
// served verbatim by GET /v1/algorithms.
type ParamSpec struct {
	Name        string    `json:"name"`
	Kind        ParamKind `json:"kind"`
	Default     any       `json:"default,omitempty"`
	Description string    `json:"description,omitempty"`
}

// Spec registers one solver: its canonical name, display name, parameter
// schema and constructor.
type Spec struct {
	// Name is the canonical registry key: lowercase letters, digits and
	// dashes (e.g. "avgd").
	Name string
	// Display is the human-readable algorithm name reported in Solutions and
	// experiment output (e.g. "AVG-D").
	Display string
	// Description is a one-line summary (served by /v1/algorithms).
	Description string
	// Deterministic declares that equal inputs and equal parameters produce
	// bit-identical configurations (all built-in solvers are: randomized ones
	// are seeded through a parameter).
	Deterministic bool
	// Params is the parameter schema; resolution validates against it.
	Params []ParamSpec
	// New constructs a solver from fully resolved parameters (defaults
	// filled, types coerced). It may reject out-of-range combinations.
	New func(p Resolved) (core.Solver, error)
}

// Resolved is a validated, default-filled parameter set handed to Spec.New.
// The typed getters panic on schema violations, which cannot occur for
// parameters resolved against the declaring spec.
type Resolved struct {
	vals map[string]any
}

// Int returns an int parameter.
func (r Resolved) Int(name string) int { return r.vals[name].(int) }

// Uint returns a uint parameter.
func (r Resolved) Uint(name string) uint64 { return r.vals[name].(uint64) }

// Float returns a float parameter.
func (r Resolved) Float(name string) float64 { return r.vals[name].(float64) }

// Bool returns a bool parameter.
func (r Resolved) Bool(name string) bool { return r.vals[name].(bool) }

// Duration returns a duration parameter.
func (r Resolved) Duration(name string) time.Duration { return r.vals[name].(time.Duration) }

// String returns a string parameter.
func (r Resolved) String(name string) string { return r.vals[name].(string) }

var (
	mu    sync.RWMutex
	specs = map[string]Spec{}
)

// Register adds a solver spec to the registry. It fails on an invalid name,
// a duplicate registration, a nil constructor or a default that does not
// match its declared kind — catching schema bugs at registration instead of
// first use.
func Register(s Spec) error {
	if !validName(s.Name) {
		return fmt.Errorf("registry: invalid solver name %q (want lowercase letters, digits, dashes)", s.Name)
	}
	if s.New == nil {
		return fmt.Errorf("registry: solver %q has no constructor", s.Name)
	}
	if s.Display == "" {
		s.Display = strings.ToUpper(s.Name)
	}
	seen := map[string]bool{}
	for _, p := range s.Params {
		if p.Name == "" {
			return fmt.Errorf("registry: solver %q declares an unnamed parameter", s.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("registry: solver %q declares parameter %q twice", s.Name, p.Name)
		}
		seen[p.Name] = true
		if p.Default != nil {
			if _, err := coerce(p, p.Default); err != nil {
				return fmt.Errorf("registry: solver %q: bad default for %s: %v", s.Name, p.Name, err)
			}
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := specs[s.Name]; dup {
		return fmt.Errorf("registry: solver %q already registered", s.Name)
	}
	specs[s.Name] = s
	return nil
}

// MustRegister is Register for package wiring; it panics on error.
func MustRegister(s Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
			return false
		}
	}
	return true
}

// Lookup returns the spec registered under name.
func Lookup(name string) (Spec, bool) {
	mu.RLock()
	defer mu.RUnlock()
	s, ok := specs[strings.ToLower(name)]
	return s, ok
}

// Names returns every registered solver name, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(specs))
	for n := range specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Specs returns every registered spec in name order.
func Specs() []Spec {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Spec, 0, len(specs))
	for _, s := range specs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// New builds the named solver with the given parameters (nil for all
// defaults). The returned solver carries a canonical cache key
// (core.CacheKeyer) of the name plus every resolved parameter, so distinctly
// parameterized solvers never share cache or coalescing entries.
func New(name string, p Params) (core.Solver, error) {
	spec, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown solver %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	resolved, err := resolve(spec, p)
	if err != nil {
		return nil, err
	}
	inner, err := spec.New(resolved)
	if err != nil {
		return nil, fmt.Errorf("registry: solver %q: %w", spec.Name, err)
	}
	return &keyed{
		Solver:  inner,
		display: spec.Display,
		key:     canonicalKey(spec, resolved),
	}, nil
}

// MustNew is New for static internal wiring; it panics on error.
func MustNew(name string, p Params) core.Solver {
	s, err := New(name, p)
	if err != nil {
		panic(err)
	}
	return s
}

// Key returns the canonical cache key New would assign for the named solver
// under the given parameters, without constructing it — for callers building
// their own memoization or coalescing layers on top of the registry (the
// counterpart of core.Fingerprint on the instance side).
func Key(name string, p Params) (string, error) {
	spec, ok := Lookup(name)
	if !ok {
		return "", fmt.Errorf("registry: unknown solver %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	resolved, err := resolve(spec, p)
	if err != nil {
		return "", err
	}
	return canonicalKey(spec, resolved), nil
}

// resolve validates caller parameters against the schema and fills defaults.
func resolve(spec Spec, p Params) (Resolved, error) {
	byName := make(map[string]ParamSpec, len(spec.Params))
	for _, ps := range spec.Params {
		byName[ps.Name] = ps
	}
	vals := make(map[string]any, len(spec.Params))
	for name, raw := range p {
		ps, ok := byName[name]
		if !ok {
			return Resolved{}, fmt.Errorf("registry: solver %q has no parameter %q (known: %s)",
				spec.Name, name, paramNames(spec))
		}
		v, err := coerce(ps, raw)
		if err != nil {
			return Resolved{}, fmt.Errorf("registry: solver %q parameter %q: %v", spec.Name, name, err)
		}
		vals[name] = v
	}
	for _, ps := range spec.Params {
		if _, set := vals[ps.Name]; set {
			continue
		}
		if ps.Default != nil {
			v, err := coerce(ps, ps.Default) // validated at Register; cannot fail
			if err != nil {
				return Resolved{}, err
			}
			vals[ps.Name] = v
		} else {
			vals[ps.Name] = zeroOf(ps.Kind)
		}
	}
	return Resolved{vals: vals}, nil
}

func paramNames(spec Spec) string {
	if len(spec.Params) == 0 {
		return "none"
	}
	names := make([]string, len(spec.Params))
	for i, ps := range spec.Params {
		names[i] = ps.Name
	}
	return strings.Join(names, ", ")
}

func zeroOf(k ParamKind) any {
	switch k {
	case KindInt:
		return 0
	case KindUint:
		return uint64(0)
	case KindFloat:
		return 0.0
	case KindBool:
		return false
	case KindDuration:
		return time.Duration(0)
	default:
		return ""
	}
}

// coerce converts a caller value (native Go or JSON-decoded) to the
// parameter's canonical type.
func coerce(ps ParamSpec, raw any) (any, error) {
	switch ps.Kind {
	case KindInt:
		switch v := raw.(type) {
		case int:
			return v, nil
		case int64:
			return int(v), nil
		case uint64:
			return int(v), nil
		case float64:
			if v != math.Trunc(v) || math.IsInf(v, 0) || math.IsNaN(v) {
				return nil, fmt.Errorf("want an integer, got %v", v)
			}
			return int(v), nil
		}
	case KindUint:
		switch v := raw.(type) {
		case uint64:
			return v, nil
		case uint:
			return uint64(v), nil
		case int:
			if v < 0 {
				return nil, fmt.Errorf("want a non-negative integer, got %d", v)
			}
			return uint64(v), nil
		case int64:
			if v < 0 {
				return nil, fmt.Errorf("want a non-negative integer, got %d", v)
			}
			return uint64(v), nil
		case float64:
			if v != math.Trunc(v) || v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
				return nil, fmt.Errorf("want a non-negative integer, got %v", v)
			}
			return uint64(v), nil
		}
	case KindFloat:
		switch v := raw.(type) {
		case float64:
			if math.IsInf(v, 0) || math.IsNaN(v) {
				return nil, fmt.Errorf("want a finite number, got %v", v)
			}
			return v, nil
		case int:
			return float64(v), nil
		}
	case KindBool:
		if v, ok := raw.(bool); ok {
			return v, nil
		}
	case KindDuration:
		switch v := raw.(type) {
		case time.Duration:
			return v, nil
		case string:
			d, err := time.ParseDuration(v)
			if err != nil {
				return nil, fmt.Errorf("want a duration like \"30s\", got %q", v)
			}
			return d, nil
		}
	case KindString:
		if v, ok := raw.(string); ok {
			return v, nil
		}
	}
	return nil, fmt.Errorf("want %s, got %T", ps.Kind, raw)
}

// canonicalKey renders the solver identity for caches and coalescers: the
// registry name plus every resolved parameter in name order, so equal
// parameterizations — however expressed — share one key and unequal ones
// never collide.
func canonicalKey(spec Spec, r Resolved) string {
	names := make([]string, 0, len(r.vals))
	for n := range r.vals {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(spec.Name)
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%v", n, r.vals[n])
	}
	b.WriteByte('}')
	return b.String()
}

// keyed wraps a constructed solver with its registry identity.
type keyed struct {
	core.Solver
	display string
	key     string
}

// Name reports the registry display name, overriding the inner solver's.
func (k *keyed) Name() string { return k.display }

// Solve delegates to the inner solver and stamps the registry display name
// onto the solution, so a custom registration's served algorithm name always
// matches what /v1/algorithms advertises.
func (k *keyed) Solve(ctx context.Context, in *core.Instance) (*core.Solution, error) {
	sol, err := k.Solver.Solve(ctx, in)
	if err != nil {
		return nil, err
	}
	sol.Algorithm = k.display
	return sol, nil
}

// CacheKey implements core.CacheKeyer.
func (k *keyed) CacheKey() string { return k.key }

// DecomposeSafe implements core.ComponentSafe by delegating to the inner
// solver; solvers without the method are treated as unsafe.
func (k *keyed) DecomposeSafe() bool {
	if ds, ok := k.Solver.(core.ComponentSafe); ok {
		return ds.DecomposeSafe()
	}
	return false
}

// WarmStart implements core.WarmStarter by delegating to the inner solver,
// returning nil when it does not support warm starts. The warm variant is
// returned UNWRAPPED — deliberately without the registry cache key — because
// its results depend on the incumbent configuration, not just the instance,
// and must never enter a keyed result cache.
func (k *keyed) WarmStart(conf *core.Configuration) core.Solver {
	if ws, ok := k.Solver.(core.WarmStarter); ok {
		return ws.WarmStart(conf)
	}
	return nil
}
