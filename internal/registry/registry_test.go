package registry_test

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/registry"
)

func TestNewValidatesParams(t *testing.T) {
	cases := []struct {
		name    string
		algo    string
		params  registry.Params
		wantErr string
	}{
		{"unknown solver", "gurobi", nil, "unknown solver"},
		{"unknown param", "avgd", registry.Params{"rr": 1.0}, `no parameter "rr"`},
		{"wrong type", "avgd", registry.Params{"r": "high"}, "want float"},
		{"non-integral int", "avg", registry.Params{"repeats": 2.5}, "integer"},
		{"negative uint", "avg", registry.Params{"seed": -3}, "non-negative"},
		{"bad duration", "ip", registry.Params{"timeLimit": "soon"}, "duration"},
		{"range check", "avgd", registry.Params{"sizeCap": -2}, "sizeCap"},
		{"bad strategy", "ip", registry.Params{"strategy": "quantum"}, "strategy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := registry.New(tc.algo, tc.params)
			if err == nil {
				t.Fatalf("New(%q, %v) accepted", tc.algo, tc.params)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestNewCoercesJSONValues: parameters arriving from JSON (numbers as
// float64, durations as strings) build the same solver as native Go values.
func TestNewCoercesJSONValues(t *testing.T) {
	var fromJSON registry.Params
	if err := json.Unmarshal([]byte(`{"seed": 9, "repeats": 2, "sizeCap": 3}`), &fromJSON); err != nil {
		t.Fatal(err)
	}
	a, err := registry.New("avg", fromJSON)
	if err != nil {
		t.Fatal(err)
	}
	b, err := registry.New("avg", registry.Params{"seed": uint64(9), "repeats": 2, "sizeCap": 3})
	if err != nil {
		t.Fatal(err)
	}
	ka := a.(core.CacheKeyer).CacheKey()
	kb := b.(core.CacheKeyer).CacheKey()
	if ka != kb {
		t.Errorf("JSON-decoded params key %q != native params key %q", ka, kb)
	}
	ip, err := registry.New("ip", registry.Params{"timeLimit": "90s"})
	if err != nil {
		t.Fatal(err)
	}
	ip2, err := registry.New("ip", registry.Params{"timeLimit": 90 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if ip.(core.CacheKeyer).CacheKey() != ip2.(core.CacheKeyer).CacheKey() {
		t.Error("duration string and time.Duration produce different keys")
	}
}

// TestCacheKeysSeparateAlgorithmsAndParams is the registry half of the
// non-aliasing acceptance criterion: keys differ across algorithms and
// across parameterizations, and defaults key identically to explicit
// defaults.
func TestCacheKeysSeparateAlgorithmsAndParams(t *testing.T) {
	key := func(algo string, p registry.Params) string {
		t.Helper()
		k, err := registry.Key(algo, p)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	if key("avg", nil) == key("avgd", nil) {
		t.Error("avg and avgd share a cache key")
	}
	if key("avgd", nil) != key("avgd", registry.Params{"r": core.DefaultR}) {
		t.Error("explicit default r keys differently from the implicit default")
	}
	if key("avgd", nil) == key("avgd", registry.Params{"r": 1.0}) {
		t.Error("different r values share a cache key")
	}
	s, err := registry.New("avgd", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(core.CacheKeyer).CacheKey(); got != key("avgd", nil) {
		t.Errorf("Key() = %q disagrees with the constructed solver's CacheKey %q", key("avgd", nil), got)
	}
}

func TestRegisterRejectsBadSpecs(t *testing.T) {
	mk := func(p registry.Resolved) (core.Solver, error) { return registry.MustNew("per", nil), nil }
	cases := []struct {
		name string
		spec registry.Spec
		want string
	}{
		{"bad name", registry.Spec{Name: "Bad Name", New: mk}, "invalid solver name"},
		{"no constructor", registry.Spec{Name: "noctor"}, "no constructor"},
		{"dup param", registry.Spec{Name: "dupparam", New: mk,
			Params: []registry.ParamSpec{{Name: "x", Kind: registry.KindInt}, {Name: "x", Kind: registry.KindInt}}},
			"twice"},
		{"bad default", registry.Spec{Name: "baddefault", New: mk,
			Params: []registry.ParamSpec{{Name: "x", Kind: registry.KindInt, Default: "nope"}}},
			"bad default"},
		{"duplicate registration", registry.Spec{Name: "avgd", New: mk}, "already registered"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := registry.Register(tc.spec)
			if err == nil {
				t.Fatalf("Register(%q) accepted", tc.spec.Name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDecomposeSafety: the registry wrapper forwards component-decomposition
// safety, which flips with the SVGIC-ST size cap.
func TestDecomposeSafety(t *testing.T) {
	safe := func(algo string, p registry.Params) bool {
		t.Helper()
		s, err := registry.New(algo, p)
		if err != nil {
			t.Fatal(err)
		}
		ds, ok := s.(core.ComponentSafe)
		return ok && ds.DecomposeSafe()
	}
	if !safe("avgd", nil) || !safe("avg", nil) || !safe("per", nil) || !safe("ip", nil) {
		t.Error("uncapped avgd/avg/per/ip should be decomposition-safe")
	}
	if safe("avgd", registry.Params{"sizeCap": 2}) || safe("avg", registry.Params{"sizeCap": 2}) {
		t.Error("ST-capped solvers must not be decomposition-safe")
	}
	if safe("fmg", nil) || safe("sdp", nil) || safe("grf", nil) {
		t.Error("whole-group/clustering baselines must not be decomposition-safe")
	}
}
