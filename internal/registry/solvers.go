package registry

import (
	"fmt"

	"github.com/svgic/svgic/internal/baselines"
	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/lp"
	"github.com/svgic/svgic/internal/mip"
)

// Built-in registrations: every algorithm and baseline of the paper. Names
// are the lowercase ids accepted by svgic/svgicd's -algo flags and the HTTP
// "algo" field; defaults reproduce the library's documented defaults, so
// e.g. registry "avgd" with no parameters is bit-identical to
// core.SolveAVGD(in, AVGDOptions{}).

// lpParams is the shared LP-relaxation knob subset of AVG and AVG-D.
var lpParams = []ParamSpec{
	{Name: "lpPasses", Kind: KindInt, Description: "structured-LP coordinate passes (0 = solver default)"},
	{Name: "lpPolish", Kind: KindInt, Description: "structured-LP polish iterations (0 = solver default)"},
	{Name: "lpRestarts", Kind: KindInt, Description: "structured-LP restarts (0 = solver default)"},
}

func lpOpts(p Resolved) lp.RelaxOptions {
	return lp.RelaxOptions{
		MaxPasses:   p.Int("lpPasses"),
		PolishIters: p.Int("lpPolish"),
		Restarts:    p.Int("lpRestarts"),
	}
}

func checkSizeCap(cap int) error {
	if cap < 0 {
		return fmt.Errorf("sizeCap %d must be >= 0", cap)
	}
	return nil
}

func init() {
	MustRegister(Spec{
		Name:          "avg",
		Display:       "AVG",
		Description:   "randomized 4-approximation: LP relaxation + CSF rounding with focal-parameter sampling (seeded, best-of-repeats)",
		Deterministic: true, // seeded: equal seed -> equal result
		Params: append([]ParamSpec{
			{Name: "seed", Kind: KindUint, Default: uint64(1), Description: "rounding RNG seed"},
			{Name: "repeats", Kind: KindInt, Default: 3, Description: "rounding repeats, best kept (Corollary 4.1)"},
			{Name: "sizeCap", Kind: KindInt, Description: "SVGIC-ST subgroup size bound M (0 = uncapped)"},
		}, lpParams...),
		New: func(p Resolved) (core.Solver, error) {
			if err := checkSizeCap(p.Int("sizeCap")); err != nil {
				return nil, err
			}
			if p.Int("repeats") < 0 {
				return nil, fmt.Errorf("repeats %d must be >= 0", p.Int("repeats"))
			}
			return &core.AVGSolver{Opts: core.AVGOptions{
				Seed:    p.Uint("seed"),
				Repeats: p.Int("repeats"),
				SizeCap: p.Int("sizeCap"),
				LP:      lpOpts(p),
			}}, nil
		},
	})

	MustRegister(Spec{
		Name:          "avgd",
		Display:       "AVG-D",
		Description:   "derandomized 4-approximation: LP relaxation + deterministic CSF selection (Algorithm 3)",
		Deterministic: true,
		Params: append([]ParamSpec{
			{Name: "r", Kind: KindFloat, Default: core.DefaultR, Description: "balancing ratio (1/4 = proven guarantee, ~1.0 best empirically)"},
			{Name: "sizeCap", Kind: KindInt, Description: "SVGIC-ST subgroup size bound M (0 = uncapped)"},
			{Name: "parallel", Kind: KindBool, Description: "evaluate candidate entries on all CPUs (bit-identical result)"},
		}, lpParams...),
		New: func(p Resolved) (core.Solver, error) {
			if err := checkSizeCap(p.Int("sizeCap")); err != nil {
				return nil, err
			}
			if p.Float("r") < 0 {
				return nil, fmt.Errorf("balancing ratio r=%g must be >= 0", p.Float("r"))
			}
			return &core.AVGDSolver{Opts: core.AVGDOptions{
				R:        p.Float("r"),
				SizeCap:  p.Int("sizeCap"),
				Parallel: p.Bool("parallel"),
				LP:       lpOpts(p),
			}}, nil
		},
	})

	MustRegister(Spec{
		Name:          "per",
		Display:       "PER",
		Description:   "personalized baseline: each user's top-k preferred items, no social awareness",
		Deterministic: true,
		New: func(p Resolved) (core.Solver, error) {
			return baselines.PER{}, nil
		},
	})

	MustRegister(Spec{
		Name:          "fmg",
		Display:       "FMG",
		Description:   "group-recommendation baseline: one shared itemset for the whole group, greedy with fairness reweighting",
		Deterministic: true,
		Params: []ParamSpec{
			{Name: "fairness", Kind: KindFloat, Default: 1.0, Description: "fairness reweighting strength (0 = plain aggregate)"},
		},
		New: func(p Resolved) (core.Solver, error) {
			if p.Float("fairness") < 0 {
				return nil, fmt.Errorf("fairness %g must be >= 0", p.Float("fairness"))
			}
			return baselines.FMG{Fairness: p.Float("fairness")}, nil
		},
	})

	MustRegister(Spec{
		Name:          "sdp",
		Display:       "SDP",
		Description:   "subgroup-by-friendship baseline: community-detect the social network, one itemset per subgroup",
		Deterministic: true,
		Params: []ParamSpec{
			{Name: "groups", Kind: KindInt, Description: "force a balanced partition into this many groups (0 = modularity communities)"},
			{Name: "seed", Kind: KindUint, Default: uint64(1), Description: "partition RNG seed (groups > 0 only)"},
		},
		New: func(p Resolved) (core.Solver, error) {
			if p.Int("groups") < 0 {
				return nil, fmt.Errorf("groups %d must be >= 0", p.Int("groups"))
			}
			return baselines.SDP{Groups: p.Int("groups"), Seed: p.Uint("seed")}, nil
		},
	})

	MustRegister(Spec{
		Name:          "grf",
		Display:       "GRF",
		Description:   "subgroup-by-preference baseline: cluster users by preference similarity, one itemset per cluster",
		Deterministic: true,
		Params: []ParamSpec{
			{Name: "groups", Kind: KindInt, Description: "cluster count (0 = ceil(n/4))"},
		},
		New: func(p Resolved) (core.Solver, error) {
			if p.Int("groups") < 0 {
				return nil, fmt.Errorf("groups %d must be >= 0", p.Int("groups"))
			}
			return baselines.GRF{Groups: p.Int("groups")}, nil
		},
	})

	MustRegister(Spec{
		Name:          "ip",
		Display:       "IP",
		Description:   "exact branch-and-bound integer program (small instances; anytime under a time limit, polls ctx between nodes)",
		Deterministic: true,
		Params: []ParamSpec{
			{Name: "strategy", Kind: KindString, Default: "primal", Description: "search strategy: primal|dual|concurrent|detconcurrent|barrier"},
			{Name: "timeLimit", Kind: KindDuration, Default: "30s", Description: "wall-clock budget (0 = unlimited: proven optimum)"},
			{Name: "nodeLimit", Kind: KindInt, Description: "branch-and-bound node budget (0 = unlimited)"},
			{Name: "warmStart", Kind: KindBool, Default: true, Description: "seed the incumbent with AVG-D"},
		},
		New: func(p Resolved) (core.Solver, error) {
			strat, err := parseStrategy(p.String("strategy"))
			if err != nil {
				return nil, err
			}
			if p.Duration("timeLimit") < 0 {
				return nil, fmt.Errorf("timeLimit %v must be >= 0", p.Duration("timeLimit"))
			}
			if p.Int("nodeLimit") < 0 {
				return nil, fmt.Errorf("nodeLimit %d must be >= 0", p.Int("nodeLimit"))
			}
			return baselines.IP{
				Strategy:  strat,
				TimeLimit: p.Duration("timeLimit"),
				NodeLimit: p.Int("nodeLimit"),
				WarmStart: p.Bool("warmStart"),
			}, nil
		},
	})
}

func parseStrategy(s string) (mip.Strategy, error) {
	switch s {
	case "primal":
		return mip.Primal, nil
	case "dual":
		return mip.Dual, nil
	case "concurrent":
		return mip.Concurrent, nil
	case "detconcurrent":
		return mip.DetConcurrent, nil
	case "barrier":
		return mip.Barrier, nil
	}
	return 0, fmt.Errorf("unknown IP strategy %q (want primal, dual, concurrent, detconcurrent or barrier)", s)
}
