package registry_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"github.com/svgic/svgic/internal/core"
	"github.com/svgic/svgic/internal/datasets"
	"github.com/svgic/svgic/internal/paperex"
	"github.com/svgic/svgic/internal/registry"
)

// The solver conformance suite: one table-driven pass over EVERY registered
// solver (new registrations are picked up automatically), asserting the
// Solver contract on shared fixtures —
//
//   - the configuration is complete and valid (bounds, k distinct slots);
//   - the Solution envelope is honest (algorithm name, report matches a
//     fresh evaluation, components ≥ 1);
//   - deterministic solvers are bit-reproducible across fresh instances;
//   - a pre-canceled context returns ctx.Err() promptly;
//   - one solver instance is safe for concurrent use (run with -race).

// conformanceFixtures returns the shared instances: the paper's running
// example (connected, small enough for the exact IP) and a multi-component
// synthetic workload.
func conformanceFixtures() []*core.Instance {
	return []*core.Instance{
		paperex.New(0.5),
		datasets.MultiGroup(3, 2, 3, 8, 2, 0.5),
	}
}

// conformanceParams overrides defaults where the conformance budget needs
// it; every other solver runs with registry defaults.
var conformanceParams = map[string]registry.Params{
	"ip": {"timeLimit": "10s"},
}

// fixturesFor bounds the exponential solvers to the small fixture; everything
// else runs the full set.
func fixturesFor(name string) []*core.Instance {
	fixtures := conformanceFixtures()
	if name == "ip" {
		return fixtures[:1] // branch and bound: paper example only
	}
	return fixtures
}

func TestSolverConformance(t *testing.T) {
	for _, spec := range registry.Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			params := conformanceParams[spec.Name]
			s, err := registry.New(spec.Name, params)
			if err != nil {
				t.Fatalf("construction with defaults failed: %v", err)
			}
			if s.Name() != spec.Display {
				t.Errorf("Name() = %q, want display name %q", s.Name(), spec.Display)
			}
			ctx := context.Background()
			for fi, in := range fixturesFor(spec.Name) {
				sol, err := s.Solve(ctx, in)
				if err != nil {
					t.Fatalf("fixture %d: %v", fi, err)
				}
				if err := sol.Config.Validate(in); err != nil {
					t.Fatalf("fixture %d: invalid configuration: %v", fi, err)
				}
				if sol.Config.K != in.K || len(sol.Config.Assign) != in.NumUsers() {
					t.Fatalf("fixture %d: wrong shape %dx%d, want %dx%d",
						fi, len(sol.Config.Assign), sol.Config.K, in.NumUsers(), in.K)
				}
				if sol.Algorithm != spec.Display {
					t.Errorf("fixture %d: solution algorithm %q, want %q", fi, sol.Algorithm, spec.Display)
				}
				if sol.Components < 1 {
					t.Errorf("fixture %d: components = %d", fi, sol.Components)
				}
				fresh := core.Evaluate(in, sol.Config)
				if math.Abs(sol.Report.Weighted()-fresh.Weighted()) > 1e-12 {
					t.Errorf("fixture %d: solution report %.12f != fresh evaluation %.12f",
						fi, sol.Report.Weighted(), fresh.Weighted())
				}
			}

			if spec.Deterministic {
				in := fixturesFor(spec.Name)[0]
				s2, err := registry.New(spec.Name, params)
				if err != nil {
					t.Fatal(err)
				}
				a, err := s.Solve(ctx, in)
				if err != nil {
					t.Fatal(err)
				}
				b, err := s2.Solve(ctx, in)
				if err != nil {
					t.Fatal(err)
				}
				for u := range a.Config.Assign {
					for k := range a.Config.Assign[u] {
						if a.Config.Assign[u][k] != b.Config.Assign[u][k] {
							t.Fatalf("deterministic solver diverged between fresh instances at (%d,%d)", u, k)
						}
					}
				}
			}

			// A context that is already dead must come straight back with its
			// error — no solving, no panic.
			canceled, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := s.Solve(canceled, conformanceFixtures()[0]); !errors.Is(err, context.Canceled) {
				t.Errorf("pre-canceled Solve: err = %v, want context.Canceled", err)
			}

			// One instance, several goroutines: the Solver contract requires
			// concurrent safety (the engine shares instances across workers).
			in := fixturesFor(spec.Name)[0]
			const workers = 4
			sols := make([]*core.Solution, workers)
			errs := make([]error, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					sols[w], errs[w] = s.Solve(ctx, in)
				}()
			}
			wg.Wait()
			for w := 0; w < workers; w++ {
				if errs[w] != nil {
					t.Fatalf("concurrent solve %d: %v", w, errs[w])
				}
				if err := sols[w].Config.Validate(in); err != nil {
					t.Fatalf("concurrent solve %d: %v", w, err)
				}
				if spec.Deterministic && sols[w].Report.Weighted() != sols[0].Report.Weighted() {
					t.Errorf("concurrent solve %d: objective %.12f != %.12f",
						w, sols[w].Report.Weighted(), sols[0].Report.Weighted())
				}
			}
		})
	}
}

// TestConformanceCoversRegistry guards the suite itself: it must see every
// built-in (so a registration typo cannot silently drop an algorithm from
// coverage).
func TestConformanceCoversRegistry(t *testing.T) {
	names := registry.Names()
	want := []string{"avg", "avgd", "fmg", "grf", "ip", "per", "sdp"}
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, w := range want {
		if !found[w] {
			t.Errorf("built-in %q missing from the registry", w)
		}
	}
}
