package core

import (
	"time"
)

// Solution is the rich result of one Solver run: the configuration together
// with its utility report and the provenance a serving or comparison layer
// needs — which algorithm produced it, what the LP/rounding phase did, how
// many independent sub-instances were solved, how long it took, and (for the
// exact IP) the branch-and-bound certificate.
//
// A Solution is immutable by convention: layers that share one (result
// caches, request coalescers) hand out copies via Clone rather than aliasing
// Config.
type Solution struct {
	// Algorithm is the display name of the solver that produced the result
	// (e.g. "AVG-D", "PER", "IP").
	Algorithm string
	// Config is the SAVG k-Configuration.
	Config *Configuration
	// Report scores Config under plain SVGIC semantics (Definition 3).
	Report Report
	// Rounding carries the LP objective and CSF rounding counters for the
	// AVG/AVG-D pipelines; nil for solvers without a relaxation phase.
	Rounding *RoundingStats
	// Components is the number of independently solved sub-instances merged
	// into Config: connected components for the engine's decomposition, social
	// prepartition groups for the "-P" baselines, 1 for a whole-instance run.
	Components int
	// Nodes is the number of branch-and-bound nodes explored (IP solver only).
	Nodes int
	// Bound is the best remaining upper bound on the optimum (IP solver
	// only); with Exact it certifies optimality.
	Bound float64
	// Exact reports that Config is a proven optimum (IP that ran to
	// completion).
	Exact bool
	// Wall is the solver's wall time for this run. Results served from a
	// cache keep the original solve's wall time.
	Wall time.Duration
}

// NewSolution assembles the standard Solution envelope for a freshly
// computed configuration: the report is evaluated under plain SVGIC and the
// wall time measured from start. Callers fill algorithm-specific provenance
// (Rounding, Nodes, ...) afterwards.
func NewSolution(algorithm string, in *Instance, conf *Configuration, start time.Time) *Solution {
	return &Solution{
		Algorithm: algorithm,
		//lint:ignore cloneescape ownership transfer: solvers hand their freshly computed configuration to the envelope and stop using it; consumers that fan out clone via Solution.Clone
		Config:     conf,
		Report:     Evaluate(in, conf),
		Components: 1,
		Wall:       time.Since(start),
	}
}

// Clone returns a deep copy: the configuration and rounding stats are
// private to the copy, so caches and coalescers can fan one solution out to
// many callers that each may mutate their result freely.
func (s *Solution) Clone() *Solution {
	c := *s
	c.Config = s.Config.Clone()
	if s.Rounding != nil {
		r := *s.Rounding
		c.Rounding = &r
	}
	return &c
}

// MergeSolutions embeds per-part solutions into one whole-instance solution:
// configurations merge via MergeConfigurations, the report is re-evaluated on
// the merged configuration, rounding stats sum when every part has them,
// branch-and-bound provenance sums (the SAVG objective is additive across
// independent parts, so summed bounds stay valid and the merge is exact iff
// every part is). The merged wall time is the caller's to set — parts may
// have run concurrently, so summing part walls would lie.
func MergeSolutions(in *Instance, parts []*Solution, origs [][]int) *Solution {
	confs := make([]*Configuration, len(parts))
	for i, p := range parts {
		confs[i] = p.Config
	}
	conf := MergeConfigurations(in.NumUsers(), in.K, confs, origs)
	sol := &Solution{
		Algorithm:  parts[0].Algorithm,
		Config:     conf,
		Report:     Evaluate(in, conf),
		Components: len(parts),
		Exact:      true,
	}
	var rounding RoundingStats
	haveRounding := true
	for _, p := range parts {
		if p.Rounding == nil {
			haveRounding = false
		} else {
			rounding.Iterations += p.Rounding.Iterations
			rounding.Rejections += p.Rounding.Rejections
			rounding.Idle += p.Rounding.Idle
			rounding.FallbackUnits += p.Rounding.FallbackUnits
			rounding.LPObjective += p.Rounding.LPObjective
		}
		sol.Nodes += p.Nodes
		sol.Bound += p.Bound
		sol.Exact = sol.Exact && p.Exact
	}
	if haveRounding {
		sol.Rounding = &rounding
	}
	return sol
}
