package core

import "sort"

// Greedy helpers: the exact solution of the λ=0 special case and the
// marginal-gain completion pass that guards AVG/AVG-D against numerically
// degenerate fractional solutions and against dead ends introduced by the
// SVGIC-ST size cap.

// PersonalizedConfig assigns every user their top-k preferred items, best
// item at slot 0 (ties broken by smaller item id). For λ=0 this is an exact
// optimum of SVGIC (the paper's "personalized approach" special case).
func PersonalizedConfig(in *Instance) *Configuration {
	n := in.NumUsers()
	conf := NewConfiguration(n, in.K)
	for u := 0; u < n; u++ {
		top := TopKByScore(in.Pref[u], in.K)
		copy(conf.Assign[u], top)
	}
	return conf
}

// TopKByScore returns the indices of the k largest scores in descending
// score order, ties broken by ascending index.
func TopKByScore(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// completeGreedy fills every unassigned display unit with the feasible item
// of the largest marginal λ-weighted gain given the current partial
// configuration. cap > 0 enforces the SVGIC-ST subgroup size limit using
// counts[c*k+s]; counts is updated in place. It returns the number of units
// it filled.
func completeGreedy(in *Instance, conf *Configuration, aP, aS [][]float64, cap int, counts []int) int {
	n, m, k := in.NumUsers(), in.NumItems, in.K
	filled := 0
	hasItem := make([]map[int]struct{}, n)
	for u := 0; u < n; u++ {
		hasItem[u] = make(map[int]struct{}, k)
		for _, it := range conf.Assign[u] {
			if it != Unassigned {
				hasItem[u][it] = struct{}{}
			}
		}
	}
	for u := 0; u < n; u++ {
		for s := 0; s < k; s++ {
			if conf.Assign[u][s] != Unassigned {
				continue
			}
			bestItem, bestGain := -1, -1.0
			for c := 0; c < m; c++ {
				if _, dup := hasItem[u][c]; dup {
					continue
				}
				if cap > 0 && counts != nil && counts[c*k+s] >= cap {
					continue
				}
				gain := aP[u][c]
				for _, e := range in.G.IncidentPairs(u) {
					a, b := in.G.PairAt(e)
					v := a
					if v == u {
						v = b
					}
					if conf.Assign[v][s] == c {
						gain += aS[e][c]
					}
				}
				if gain > bestGain {
					bestGain, bestItem = gain, c
				}
			}
			if bestItem < 0 {
				// Every feasible item is at capacity for this slot; only
				// possible when n > m·cap, which Validate/STOptions reject.
				continue
			}
			conf.Assign[u][s] = bestItem
			hasItem[u][bestItem] = struct{}{}
			if counts != nil {
				counts[bestItem*k+s]++
			}
			filled++
		}
	}
	return filled
}
