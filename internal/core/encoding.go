package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"github.com/svgic/svgic/internal/graph"
)

// JSON interchange format for instances and configurations, shared by the
// svgic CLI, the datagen tool and library users persisting problems.
//
//	{
//	  "users": 4, "items": 5, "slots": 3, "lambda": 0.5,
//	  "social": [{"from": 0, "to": 1, "tau": [0.2, ...]}, ...],
//	  "edges":  [{"from": 2, "to": 3}],        // edges with all-zero τ
//	  "preferences": [[0.8, ...], ...]
//	}

// EdgeJSON is one directed edge with optional per-item social utilities.
type EdgeJSON struct {
	From int       `json:"from"`
	To   int       `json:"to"`
	Tau  []float64 `json:"tau,omitempty"`
}

// InstanceJSON is the interchange form of an Instance.
type InstanceJSON struct {
	Users       int         `json:"users"`
	Items       int         `json:"items"`
	Slots       int         `json:"slots"`
	Lambda      float64     `json:"lambda"`
	Edges       []EdgeJSON  `json:"edges,omitempty"`
	Social      []EdgeJSON  `json:"social,omitempty"`
	Preferences [][]float64 `json:"preferences"`
}

// InstanceAsJSON converts an instance to its interchange struct. The
// preference matrix is referenced, not copied; marshal before mutating.
func InstanceAsJSON(in *Instance) *InstanceJSON {
	ij := &InstanceJSON{
		Users:       in.NumUsers(),
		Items:       in.NumItems,
		Slots:       in.K,
		Lambda:      in.Lambda,
		Preferences: in.Pref,
	}
	for _, e := range in.G.Edges() {
		u, v := e[0], e[1]
		tau := make([]float64, in.NumItems)
		any := false
		for c := 0; c < in.NumItems; c++ {
			tau[c] = in.Tau(u, v, c)
			if tau[c] != 0 {
				any = true
			}
		}
		if any {
			ij.Social = append(ij.Social, EdgeJSON{From: u, To: v, Tau: tau})
		} else {
			ij.Edges = append(ij.Edges, EdgeJSON{From: u, To: v})
		}
	}
	return ij
}

// MarshalInstance encodes an instance as indented JSON.
func MarshalInstance(in *Instance) ([]byte, error) {
	return json.MarshalIndent(InstanceAsJSON(in), "", "  ")
}

// UnmarshalInstance decodes an instance from its JSON interchange form,
// validating it. Unknown fields are tolerated — use UnmarshalInstanceStrict
// on untrusted input, where a misspelled field must not be silently dropped.
func UnmarshalInstance(data []byte) (*Instance, error) {
	var ij InstanceJSON
	if err := json.Unmarshal(data, &ij); err != nil {
		return nil, fmt.Errorf("core: decoding instance: %w", err)
	}
	return InstanceFromJSON(&ij)
}

// UnmarshalInstanceStrict decodes and validates an instance, rejecting
// unknown JSON fields. A tolerant decode silently drops a typo like
// "preference" (for "preferences") and hands the solver a zero-utility
// instance; ingestion paths fed by users — the CLI and the svgicd HTTP
// server — must use the strict form.
func UnmarshalInstanceStrict(data []byte) (*Instance, error) {
	ij, err := DecodeInstanceJSONStrict(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	return InstanceFromJSON(ij)
}

// DecodeInstanceJSONStrict reads one InstanceJSON document from r, rejecting
// unknown fields and trailing garbage. The caller finishes with
// InstanceFromJSON (which validates); it is split out so ingestion paths
// that extend the schema (e.g. the CLI's sizeCap/dtel envelope) can reuse
// the strictness rules on their own wrapper types via StrictDecoder.
func DecodeInstanceJSONStrict(r io.Reader) (*InstanceJSON, error) {
	var ij InstanceJSON
	if err := DecodeStrict(r, &ij); err != nil {
		return nil, fmt.Errorf("core: decoding instance: %w", err)
	}
	return &ij, nil
}

// DecodeStrict decodes exactly one JSON document from r into v with unknown
// fields disallowed, and rejects trailing non-whitespace content.
func DecodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A second document (or stray token) after the first is an error: the
	// serving path must not half-read a malformed request body. A genuine
	// read failure (dropped connection, body-size limit) is reported as
	// itself, not mislabeled as trailing content.
	switch tok, err := dec.Token(); {
	case err == io.EOF:
		return nil
	case err != nil:
		return fmt.Errorf("reading past JSON document: %w", err)
	default:
		return fmt.Errorf("unexpected content after JSON document: %v", tok)
	}
}

// InstanceFromJSON builds a validated instance from the interchange struct.
func InstanceFromJSON(ij *InstanceJSON) (*Instance, error) {
	if ij.Users <= 0 || ij.Items <= 0 || ij.Slots <= 0 {
		return nil, fmt.Errorf("core: users/items/slots must be positive (got %d/%d/%d)",
			ij.Users, ij.Items, ij.Slots)
	}
	g := graph.New(ij.Users)
	for _, e := range ij.Edges {
		g.AddEdge(e.From, e.To)
	}
	for _, e := range ij.Social {
		g.AddEdge(e.From, e.To)
	}
	in := NewInstance(g, ij.Items, ij.Slots, ij.Lambda)
	if len(ij.Preferences) != ij.Users {
		return nil, fmt.Errorf("core: preferences rows = %d, want %d", len(ij.Preferences), ij.Users)
	}
	for u, row := range ij.Preferences {
		if len(row) != ij.Items {
			return nil, fmt.Errorf("core: preferences[%d] has %d items, want %d", u, len(row), ij.Items)
		}
		copy(in.Pref[u], row)
	}
	for _, e := range ij.Social {
		if len(e.Tau) > ij.Items {
			return nil, fmt.Errorf("core: social τ for (%d,%d) has %d items, want ≤ %d",
				e.From, e.To, len(e.Tau), ij.Items)
		}
		for c, t := range e.Tau {
			if t == 0 {
				continue
			}
			if err := in.SetTau(e.From, e.To, c, t); err != nil {
				return nil, err
			}
		}
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// ConfigurationJSON is the interchange form of a configuration.
type ConfigurationJSON struct {
	Slots      int     `json:"slots"`
	Assignment [][]int `json:"assignment"`
}

// MarshalConfiguration encodes a configuration as indented JSON.
func MarshalConfiguration(conf *Configuration) ([]byte, error) {
	return json.MarshalIndent(ConfigurationJSON{Slots: conf.K, Assignment: conf.Assign}, "", "  ")
}

// UnmarshalConfiguration decodes a configuration (structure only; validate
// against an instance with Configuration.Validate).
func UnmarshalConfiguration(data []byte) (*Configuration, error) {
	var cj ConfigurationJSON
	if err := json.Unmarshal(data, &cj); err != nil {
		return nil, fmt.Errorf("core: decoding configuration: %w", err)
	}
	if cj.Slots <= 0 {
		return nil, fmt.Errorf("core: configuration slots = %d", cj.Slots)
	}
	for u, row := range cj.Assignment {
		if len(row) != cj.Slots {
			return nil, fmt.Errorf("core: assignment row %d has %d slots, want %d", u, len(row), cj.Slots)
		}
	}
	return &Configuration{Assign: cj.Assignment, K: cj.Slots}, nil
}
