package core

import (
	"math"
	"testing"

	"github.com/svgic/svgic/internal/graph"
	"github.com/svgic/svgic/internal/stats"
)

// clusteredInstance builds a deterministic instance of `blocks` disconnected
// cliques of blockN users each — the shape whose connected components the
// dirty-component tests reason about.
func clusteredInstance(blocks, blockN, m, k int, lambda float64) *Instance {
	n := blocks * blockN
	r := stats.NewRand(uint64(n*1000 + m))
	g := graph.New(n)
	for b := 0; b < blocks; b++ {
		for i := b * blockN; i < (b+1)*blockN; i++ {
			for j := i + 1; j < (b+1)*blockN; j++ {
				g.AddMutualEdge(i, j)
			}
		}
	}
	in := NewInstance(g, m, k, lambda)
	for u := 0; u < n; u++ {
		for c := 0; c < m; c++ {
			in.SetPref(u, c, r.Float64())
		}
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Out(u) {
			for c := 0; c < m; c++ {
				must(in.SetTau(u, v, c, 0.5*r.Float64()))
			}
		}
	}
	return in
}

// TestDynamicDifferentialFuzz drives seeded random event streams — join,
// leave, updatePreference, rebalance — through dynamic sessions and asserts
// after EVERY event that the incrementally maintained accumulator agrees
// with a from-scratch Evaluate, and (under a size cap) that the maintained
// occupancy counts agree with a from-scratch rebuild. This is the safety net
// under the O(1) Value fast path: the accumulator and the full rescan sum
// the same terms in different orders, so they may differ in final ulps but
// never beyond.
func TestDynamicDifferentialFuzz(t *testing.T) {
	const (
		events = 60
		n0     = 10 // starting users
		m      = 8  // items
		k      = 2  // slots
	)
	for _, tc := range []struct {
		seed uint64
		cap  int
	}{
		{seed: 1, cap: 0},
		{seed: 2, cap: 0},
		{seed: 3, cap: 4},
		{seed: 4, cap: 6},
	} {
		_, ds := solvedSession(t, tc.seed, n0, m, k, tc.cap)
		r := stats.NewRand(tc.seed * 7919)
		check := func(step int, what string) {
			t.Helper()
			full := Evaluate(ds.Instance(), ds.Config()).Weighted()
			tol := 1e-9 * math.Max(1, math.Abs(full))
			if d := math.Abs(ds.Value() - full); d > tol {
				t.Fatalf("seed %d cap %d step %d (%s): incremental value %v, full evaluate %v (drift %g)",
					tc.seed, tc.cap, step, what, ds.Value(), full, d)
			}
			if tc.cap > 0 {
				want := ds.countsFor()
				for i := range want {
					if ds.counts[i] != want[i] {
						t.Fatalf("seed %d cap %d step %d (%s): counts[%d]=%d, countsFor says %d",
							tc.seed, tc.cap, step, what, i, ds.counts[i], want[i])
					}
				}
			}
		}
		check(-1, "initial")
		for step := 0; step < events; step++ {
			active := ds.ActiveUsers()
			what := ""
			switch op := r.IntN(10); {
			case op < 3 || len(active) == 0: // join
				what = "join"
				pref := make([]float64, m)
				for c := range pref {
					pref[c] = r.Float64()
				}
				friends := FriendTies{}
				for _, f := range active {
					if r.Float64() < 0.3 {
						tie := FriendTie{}
						if r.Float64() < 0.8 {
							tie.Out = make([]float64, m)
							for c := range tie.Out {
								tie.Out[c] = 0.6 * r.Float64()
							}
						}
						if r.Float64() < 0.8 {
							tie.In = make([]float64, m)
							for c := range tie.In {
								tie.In[c] = 0.6 * r.Float64()
							}
						}
						friends[f] = tie
					}
				}
				if _, err := ds.Join(pref, friends); err != nil {
					t.Fatalf("seed %d step %d: join: %v", tc.seed, step, err)
				}
			case op < 5: // leave
				what = "leave"
				if err := ds.Leave(active[r.IntN(len(active))]); err != nil {
					t.Fatalf("seed %d step %d: leave: %v", tc.seed, step, err)
				}
			case op < 8: // updatePreference
				what = "updatePreference"
				pref := make([]float64, m)
				for c := range pref {
					pref[c] = r.Float64()
				}
				if _, err := ds.UpdatePreference(active[r.IntN(len(active))], pref); err != nil {
					t.Fatalf("seed %d step %d: update: %v", tc.seed, step, err)
				}
			default: // rebalance
				what = "rebalance"
				ds.Rebalance(1 + r.IntN(2))
			}
			check(step, what)
		}
		// The checked fallback reports the same (tiny) drift the assertions
		// above bounded, and clears it.
		full := Evaluate(ds.Instance(), ds.Config()).Weighted()
		if drift := ds.Resync(); drift > 1e-9*math.Max(1, math.Abs(full)) {
			t.Fatalf("seed %d cap %d: Resync reported drift %g", tc.seed, tc.cap, drift)
		}
		if ds.Value() != full {
			t.Fatalf("seed %d cap %d: Resync did not land on the full evaluate", tc.seed, tc.cap)
		}
	}
}

// TestDynamicDirtyComponents pins the dirty-component contract the session
// layer's delta repair builds on: a fresh session reports nothing dirty,
// events mark exactly the touched components, Adopt marks everything, and
// ClearDirty resets.
func TestDynamicDirtyComponents(t *testing.T) {
	// Two disconnected 4-cliques: users 0-3 and 4-7.
	in := clusteredInstance(2, 4, 6, 2, 0.5)
	conf, _, err := SolveAVGD(in, AVGDOptions{R: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDynamicSession(in, conf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.DirtyComponents(); got != nil {
		t.Fatalf("fresh session reports dirty components %v", got)
	}

	// Touch one user in the first clique: exactly that component is dirty.
	pref := make([]float64, in.NumItems)
	pref[0] = 1
	if _, err := ds.UpdatePreference(1, pref); err != nil {
		t.Fatal(err)
	}
	dirty := ds.DirtyComponents()
	if len(dirty) != 1 || len(dirty[0]) != 4 || dirty[0][0] != 0 {
		t.Fatalf("after update of user 1: dirty = %v, want the 0-3 component", dirty)
	}

	// Rebalance alone does not dirty anything new.
	ds.ClearDirty()
	ds.Rebalance(2)
	if got := ds.DirtyComponents(); got != nil {
		t.Fatalf("rebalance marked components dirty: %v", got)
	}

	// A leave dirties the departed user's component; the departed user
	// itself is excluded from the active membership.
	if err := ds.Leave(6); err != nil {
		t.Fatal(err)
	}
	dirty = ds.DirtyComponents()
	if len(dirty) != 1 || len(dirty[0]) != 3 || dirty[0][0] != 4 {
		t.Fatalf("after leave of user 6: dirty = %v, want [4 5 7]", dirty)
	}

	// A join that befriends both cliques unions them: one merged component.
	ds.ClearDirty()
	ties := FriendTies{0: {}, 4: {}}
	nu, err := ds.Join(pref, ties)
	if err != nil {
		t.Fatal(err)
	}
	dirty = ds.DirtyComponents()
	if len(dirty) != 1 || len(dirty[0]) != 8 {
		t.Fatalf("after bridging join: dirty = %v, want one 8-user component", dirty)
	}
	if dirty[0][len(dirty[0])-1] != nu {
		t.Fatalf("newcomer %d missing from dirty component %v", nu, dirty[0])
	}

	// Adopt marks every component dirty: an out-of-band configuration change
	// is exactly what the repair loop must not skip.
	ds.ClearDirty()
	if err := ds.Adopt(ds.Config().Clone()); err != nil {
		t.Fatal(err)
	}
	if got := ds.DirtyComponents(); len(got) != 1 || len(got[0]) != 8 {
		t.Fatalf("after adopt: dirty = %v, want the whole active set", got)
	}
}
