package core

// Evaluation of SAVG k-Configurations under Definition 3 (SVGIC) and
// Definition 5 (SVGIC-ST with indirect co-display).

// Report decomposes the value of a configuration.
//
// Preference and Social are the raw (unweighted) utility sums; Weighted is
// the paper's objective Σ_u Σ_c w_A(u,c) = (1−λ)·Preference + λ·Social.
// The paper's worked examples report 2×Weighted at λ=1/2, which equals
// Preference + Social — use Scaled for those comparisons.
type Report struct {
	Preference     float64 // Σ_u Σ_{c∈A(u,·)} p(u,c)
	Social         float64 // Σ direct co-display τ over ordered friend pairs
	SocialIndirect float64 // Σ indirect co-display τ (SVGIC-ST only)
	Lambda         float64
	DTel           float64 // teleportation discount used (0 for plain SVGIC)
}

// Weighted returns the SVGIC objective (1−λ)·Preference + λ·(Social + d_tel·SocialIndirect).
func (r Report) Weighted() float64 {
	return (1-r.Lambda)*r.Preference + r.Lambda*(r.Social+r.DTel*r.SocialIndirect)
}

// Scaled returns 2×Weighted, the scaling used by the paper's running example
// (λ=1/2 makes it Preference + Social).
func (r Report) Scaled() float64 { return 2 * r.Weighted() }

// PreferencePct returns the preference share of the weighted objective.
func (r Report) PreferencePct() float64 {
	t := r.Weighted()
	if t == 0 {
		return 0
	}
	return (1 - r.Lambda) * r.Preference / t
}

// SocialPct returns the social share of the weighted objective.
func (r Report) SocialPct() float64 {
	t := r.Weighted()
	if t == 0 {
		return 0
	}
	return r.Lambda * (r.Social + r.DTel*r.SocialIndirect) / t
}

// Evaluate scores a configuration under plain SVGIC (direct co-display only).
// Partial configurations are scored over their assigned units.
func Evaluate(in *Instance, conf *Configuration) Report {
	return EvaluateST(in, conf, 0)
}

// EvaluateST scores a configuration under SVGIC-ST semantics: direct
// co-display pays τ in full and indirect co-display (same item, different
// slots) pays d_tel·τ (Definition 5). dtel=0 reduces to plain SVGIC.
func EvaluateST(in *Instance, conf *Configuration, dtel float64) Report {
	rep := Report{Lambda: in.Lambda, DTel: dtel}
	n := in.NumUsers()
	for u := 0; u < n; u++ {
		for _, it := range conf.Assign[u] {
			if it != Unassigned {
				rep.Preference += in.Pref[u][it]
			}
		}
	}
	// Social terms per social pair; each direction contributes its own τ.
	for _, p := range in.G.Pairs() {
		u, v := p[0], p[1]
		// Direct: same item at the same slot.
		for s := 0; s < conf.K; s++ {
			cu := conf.Assign[u][s]
			if cu != Unassigned && cu == conf.Assign[v][s] {
				rep.Social += in.PairSocial(u, v, cu)
			}
		}
		if dtel > 0 {
			// Indirect: same item at different slots. Items are unique per
			// user, so scanning u's items suffices.
			for su := 0; su < conf.K; su++ {
				cu := conf.Assign[u][su]
				if cu == Unassigned {
					continue
				}
				for sv := 0; sv < conf.K; sv++ {
					if sv == su {
						continue
					}
					if conf.Assign[v][sv] == cu {
						rep.SocialIndirect += in.PairSocial(u, v, cu)
					}
				}
			}
		}
	}
	return rep
}

// UserUtility returns user u's own SAVG utility Σ_{c∈A(u,·)} w_A(u,c) under
// Definition 3 (direct co-display, weighted by λ). It is the numerator of the
// happiness ratio in the paper's regret metric.
func UserUtility(in *Instance, conf *Configuration, u int) float64 {
	var pref, soc float64
	for s, it := range conf.Assign[u] {
		if it == Unassigned {
			continue
		}
		pref += in.Pref[u][it]
		for _, v := range in.G.Neighbors(u) {
			if conf.Assign[v][s] == it {
				soc += in.Tau(u, v, it)
			}
		}
	}
	return (1-in.Lambda)*pref + in.Lambda*soc
}

// UserUtilityUpperBound returns the denominator of the happiness ratio: the
// best k items under the optimistic utility
// w̄(u,c) = (1−λ)p(u,c) + λ·Σ_{v:(u,v)∈E} τ(u,v,c), i.e. u's utility if the
// entire configuration were dictated in u's favour.
func UserUtilityUpperBound(in *Instance, u int) float64 {
	scores := make([]float64, in.NumItems)
	for c := 0; c < in.NumItems; c++ {
		w := (1 - in.Lambda) * in.Pref[u][c]
		for _, v := range in.G.Out(u) {
			w += in.Lambda * in.Tau(u, v, c)
		}
		scores[c] = w
	}
	return sumTopK(scores, in.K)
}

// RegretRatios returns reg(u) = 1 − hap(u) for every user (paper §6.5);
// users with a zero upper bound have zero regret.
func RegretRatios(in *Instance, conf *Configuration) []float64 {
	n := in.NumUsers()
	out := make([]float64, n)
	for u := 0; u < n; u++ {
		ub := UserUtilityUpperBound(in, u)
		if ub <= 0 {
			continue
		}
		r := 1 - UserUtility(in, conf, u)/ub
		if r < 0 {
			r = 0
		}
		if r > 1 {
			r = 1
		}
		out[u] = r
	}
	return out
}

// sumTopK returns the sum of the k largest values (k ≥ len returns the total).
func sumTopK(xs []float64, k int) float64 {
	if k >= len(xs) {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	}
	// Partial selection via a small insertion buffer: k is the slot count,
	// typically tiny relative to m.
	top := make([]float64, 0, k)
	for _, x := range xs {
		if len(top) < k {
			top = append(top, x)
			for i := len(top) - 1; i > 0 && top[i] > top[i-1]; i-- {
				top[i], top[i-1] = top[i-1], top[i]
			}
			continue
		}
		if x > top[k-1] {
			top[k-1] = x
			for i := k - 1; i > 0 && top[i] > top[i-1]; i-- {
				top[i], top[i-1] = top[i-1], top[i]
			}
		}
	}
	var s float64
	for _, x := range top {
		s += x
	}
	return s
}
