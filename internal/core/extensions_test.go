package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/svgic/svgic/internal/graph"
	"github.com/svgic/svgic/internal/stats"
)

func TestWeightedInstanceScalesUtilities(t *testing.T) {
	in := buildPaperExample(0.5)
	w := []float64{2, 1, 1, 1, 0.5}
	wi := WeightedInstance(in, w)
	if wi.Pref[0][0] != 2*in.Pref[0][0] {
		t.Errorf("pref not scaled: %v", wi.Pref[0][0])
	}
	if got, want := wi.Tau(0, 1, 4), 0.5*in.Tau(0, 1, 4); math.Abs(got-want) > 1e-12 {
		t.Errorf("τ not scaled: %v want %v", got, want)
	}
	// Objectives scale consistently: evaluating the same config on the
	// weighted instance equals the item-weighted objective.
	conf := configFromRows([][]int{
		{4, 0, 1}, {1, 0, 3}, {4, 2, 3}, {4, 0, 3},
	})
	if err := conf.Validate(wi); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeSlotOrderMaximizesGamma(t *testing.T) {
	in := buildPaperExample(0.5)
	conf := configFromRows([][]int{
		{4, 0, 1}, {1, 0, 3}, {4, 2, 3}, {4, 0, 3},
	})
	gamma := []float64{3, 1, 2}
	out := OptimizeSlotOrder(in, conf, gamma)
	if err := out.Validate(in); err != nil {
		t.Fatal(err)
	}
	// The unweighted objective is invariant under global slot permutation.
	if math.Abs(Evaluate(in, out).Weighted()-Evaluate(in, conf).Weighted()) > 1e-9 {
		t.Error("slot permutation changed the plain objective")
	}
	got := EvaluateWithSlotWeights(in, out, gamma)
	// Exhaustively check all 6 permutations for the true optimum.
	best := 0.0
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		permuted := NewConfiguration(4, 3)
		for u := range conf.Assign {
			for s := range p {
				permuted.Assign[u][p[s]] = conf.Assign[u][s]
			}
		}
		if v := EvaluateWithSlotWeights(in, permuted, gamma); v > best {
			best = v
		}
	}
	if math.Abs(got-best) > 1e-9 {
		t.Errorf("slot reordering achieved %v, optimum is %v", got, best)
	}
}

func TestGreedyMVDInvariants(t *testing.T) {
	in := randomInstance(21, 8, 12, 3, 0.5)
	base, _, err := SolveAVGD(in, AVGDOptions{R: 1})
	if err != nil {
		t.Fatal(err)
	}
	const beta = 3
	mv := GreedyMVD(in, base, beta)
	for u := range mv.Views {
		seen := map[int]bool{}
		for s := range mv.Views[u] {
			views := mv.Views[u][s]
			if len(views) == 0 || len(views) > beta {
				t.Fatalf("user %d slot %d has %d views", u, s, len(views))
			}
			if views[0] != base.Assign[u][s] {
				t.Fatalf("primary view replaced at (%d,%d)", u, s)
			}
			for _, it := range views {
				if seen[it] {
					t.Fatalf("user %d sees item %d in multiple views", u, it)
				}
				seen[it] = true
			}
		}
	}
	// Extra views can only add utility.
	if EvaluateMVD(in, mv).Weighted() < Evaluate(in, base).Weighted()-1e-9 {
		t.Error("MVD decreased the objective")
	}
}

func TestEvaluateGroupwisePairwiseConsistency(t *testing.T) {
	// With the pairwise adapter, the group-wise objective equals Definition 3.
	err := quick.Check(func(seed uint16) bool {
		in := randomInstance(uint64(seed), 5, 6, 2, 0.5)
		conf, _, err := SolveAVGD(in, AVGDOptions{})
		if err != nil {
			return false
		}
		gw := EvaluateGroupwise(in, conf, PairwiseGroupSocial(in))
		return math.Abs(gw-Evaluate(in, conf).Weighted()) < 1e-9
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestEvaluateGroupwiseSuperadditive(t *testing.T) {
	// A strictly superadditive group model rewards bigger subgroups more
	// than the pairwise sum.
	in := randomInstance(33, 6, 8, 2, 0.5)
	conf, _, err := SolveAVGD(in, AVGDOptions{R: 0.1}) // group-like
	if err != nil {
		t.Fatal(err)
	}
	pair := PairwiseGroupSocial(in)
	super := func(u int, others []int, c int) float64 {
		return pair(u, others, c) * (1 + 0.1*float64(len(others)))
	}
	if EvaluateGroupwise(in, conf, super) < EvaluateGroupwise(in, conf, pair) {
		t.Error("superadditive model scored below the pairwise model")
	}
}

func TestStabilizeSubgroupsNeverWorse(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		in := randomInstance(seed, 8, 10, 4, 0.5)
		conf, _, err := SolveAVG(in, AVGOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		before := SubgroupEditDistance(in, conf)
		stable, after := StabilizeSubgroups(in, conf)
		if err := stable.Validate(in); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if after > before {
			t.Errorf("seed %d: edit distance rose %d -> %d", seed, before, after)
		}
		if math.Abs(Evaluate(in, stable).Weighted()-Evaluate(in, conf).Weighted()) > 1e-9 {
			t.Errorf("seed %d: stabilization changed the objective", seed)
		}
	}
}

func TestMaxAssignmentAgainstBruteForce(t *testing.T) {
	r := stats.NewRand(17)
	for trial := 0; trial < 60; trial++ {
		k := 1 + r.IntN(3)
		m := k + r.IntN(3)
		gain := make([][]float64, k)
		for s := range gain {
			gain[s] = make([]float64, m)
			for c := range gain[s] {
				gain[s][c] = math.Round(r.Float64()*100) / 10
			}
		}
		_, got := MaxAssignment(gain)
		want := bruteMaxAssignment(gain, 0, make([]bool, m))
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: MaxAssignment %.4f, brute force %.4f (gain %v)", trial, got, want, gain)
		}
	}
}

func bruteMaxAssignment(gain [][]float64, row int, used []bool) float64 {
	if row == len(gain) {
		return 0
	}
	best := math.Inf(-1)
	for c := range gain[row] {
		if used[c] {
			continue
		}
		used[c] = true
		if v := gain[row][c] + bruteMaxAssignment(gain, row+1, used); v > best {
			best = v
		}
		used[c] = false
	}
	return best
}

func TestMaxAssignmentEdgeCases(t *testing.T) {
	if a, v := MaxAssignment(nil); a != nil || v != 0 {
		t.Error("empty assignment mishandled")
	}
	if a, _ := MaxAssignment([][]float64{{1}, {1}}); a != nil {
		t.Error("m < k accepted")
	}
}

func TestBestResponseImprovesGlobalObjective(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		in := randomInstance(uint64(seed), 6, 8, 2, 0.5)
		conf, _, err := SolveAVG(in, AVGOptions{Seed: uint64(seed)})
		if err != nil {
			return false
		}
		before := Evaluate(in, conf).Weighted()
		gain := BestResponse(in, conf, 0, 0)
		after := Evaluate(in, conf).Weighted()
		if gain < 0 {
			return false
		}
		// The reported gain is the exact global-objective delta.
		if math.Abs((after-before)-gain) > 1e-9 {
			return false
		}
		return conf.Validate(in) == nil
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestBestResponseRespectsCap(t *testing.T) {
	// 3 users, 2 items, 1 slot, cap 2: user 2's best response may not join a
	// full subgroup.
	g := graph.Complete(3)
	in := NewInstance(g, 2, 1, 0.5)
	for u := 0; u < 3; u++ {
		in.SetPref(u, 0, 1)
		in.SetPref(u, 1, 0.1)
	}
	conf := configFromRows([][]int{{0}, {0}, {1}})
	BestResponse(in, conf, 2, 2)
	if conf.Assign[2][0] == 0 {
		t.Error("best response violated the size cap")
	}
}

func TestDynamicSessionLifecycle(t *testing.T) {
	in := randomInstance(41, 8, 12, 3, 0.5)
	conf, _, err := SolveAVGD(in, AVGDOptions{R: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDynamicSession(in, conf, 0)
	if err != nil {
		t.Fatal(err)
	}
	v0 := ds.Value()
	if len(ds.ActiveUsers()) != 8 {
		t.Fatalf("active users = %d", len(ds.ActiveUsers()))
	}

	pref := make([]float64, 12)
	for c := range pref {
		pref[c] = float64(c%3) / 3
	}
	tauOut := make([]float64, 12)
	for c := range tauOut {
		tauOut[c] = 0.2
	}
	id, err := ds.Join(pref, FriendTies{
		0: {Out: tauOut, In: tauOut},
		1: {Out: tauOut},
	})
	if err != nil {
		t.Fatal(err)
	}
	if id != 8 || len(ds.ActiveUsers()) != 9 {
		t.Fatalf("join: id=%d active=%d", id, len(ds.ActiveUsers()))
	}
	if err := ds.Config().Validate(ds.Instance()); err != nil {
		t.Fatalf("after join: %v", err)
	}
	if ds.Value() <= v0-1e-9 {
		t.Errorf("value decreased after join: %v -> %v", v0, ds.Value())
	}

	if err := ds.Leave(2); err != nil {
		t.Fatal(err)
	}
	if err := ds.Leave(2); err == nil {
		t.Error("double leave accepted")
	}
	if len(ds.ActiveUsers()) != 8 {
		t.Errorf("active after leave = %d", len(ds.ActiveUsers()))
	}
	if err := ds.Config().Validate(ds.Instance()); err != nil {
		t.Fatalf("after leave: %v", err)
	}

	if improved := ds.Rebalance(3); improved < 0 {
		t.Errorf("rebalance reported negative improvement %v", improved)
	}
	// A second rebalance from the fixed point must be a no-op.
	if again := ds.Rebalance(3); again > 1e-9 {
		t.Errorf("rebalance is not idempotent: second pass improved %v", again)
	}
}

func TestDynamicSessionBadInputs(t *testing.T) {
	in := randomInstance(43, 4, 6, 2, 0.5)
	conf, _, err := SolveAVGD(in, AVGDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDynamicSession(in, conf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Join([]float64{1}, nil); err == nil {
		t.Error("short preference vector accepted")
	}
	if _, err := ds.Join(make([]float64, 6), FriendTies{99: {}}); err == nil {
		t.Error("out-of-range friend accepted")
	}
	if err := ds.Leave(99); err == nil {
		t.Error("leaving an unknown user accepted")
	}
	if _, err := NewDynamicSession(in, NewConfiguration(4, 2), 0); err == nil {
		t.Error("invalid starting configuration accepted")
	}
}

func TestSubInstanceRoundTrip(t *testing.T) {
	in := buildPaperExample(0.5)
	sub, orig, err := SubInstance(in, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumUsers() != 2 || orig[0] != 1 || orig[1] != 3 {
		t.Fatalf("sub users/orig = %d/%v", sub.NumUsers(), orig)
	}
	// Bob(1) and Dave(3) are not adjacent in the example.
	if sub.G.NumEdges() != 0 {
		t.Errorf("sub edges = %d, want 0", sub.G.NumEdges())
	}
	if sub.Pref[0][1] != in.Pref[1][1] {
		t.Error("preferences not carried over")
	}
	sub2, orig2, err := SubInstance(in, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sub2.Tau(0, 1, 4), in.Tau(0, 2, 4); got != want {
		t.Errorf("τ not carried: %v want %v", got, want)
	}
	// Merge: two 2-user parts reassemble into a full configuration.
	pa := configFromRows([][]int{{0, 1, 2}, {0, 1, 2}})
	pb := configFromRows([][]int{{2, 3, 4}, {2, 3, 4}})
	merged := MergeConfigurations(4, 3, []*Configuration{pa, pb}, [][]int{orig, orig2})
	if err := merged.Validate(in); err != nil {
		t.Fatal(err)
	}
	if merged.Assign[1][0] != 0 || merged.Assign[0][0] != 2 {
		t.Errorf("merge misplaced rows: %v", merged.Assign)
	}
}

func TestSolverAdapters(t *testing.T) {
	in := buildPaperExample(0.5)
	ctx := context.Background()
	avg := &AVGSolver{Opts: AVGOptions{Seed: 1}}
	if avg.Name() != "AVG" {
		t.Error("AVG name")
	}
	avgSol, err := avg.Solve(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if avgSol.Rounding == nil || avgSol.Rounding.LPObjective <= 0 {
		t.Error("AVG solution carries no LP/rounding stats")
	}
	if avgSol.Algorithm != "AVG" || avgSol.Wall <= 0 || avgSol.Components != 1 {
		t.Errorf("AVG solution provenance = %+v", avgSol)
	}
	avgd := &AVGDSolver{}
	if avgd.Name() != "AVG-D" {
		t.Error("AVG-D name")
	}
	sol, err := avgd.Solve(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Config.Validate(in); err != nil {
		t.Fatal(err)
	}
	if got, want := sol.Report.Weighted(), Evaluate(in, sol.Config).Weighted(); got != want {
		t.Errorf("solution report %.12f != fresh evaluation %.12f", got, want)
	}
	// Pre-canceled context: prompt ctx.Err() without touching the pipeline.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := avgd.Solve(canceled, in); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled Solve: err = %v, want context.Canceled", err)
	}
}

func TestAVGDSlotWeightsSteerValue(t *testing.T) {
	// With slot 0 ten times more significant, γ-aware construction is a
	// heuristic (the greedy interleaving can occasionally lose to the plain
	// run), so the check is statistical: after the free optimal reordering
	// of both results, γ-aware must win or tie on most seeds and never lose
	// by more than a few percent.
	wins, total := 0, 0
	for seed := uint64(1); seed <= 8; seed++ {
		in := randomInstance(seed, 8, 10, 3, 0.5)
		f, err := SolveRelaxation(in, LPStructured, defaultTestLP())
		if err != nil {
			t.Fatal(err)
		}
		gamma := []float64{10, 1, 1}
		plain, _ := RoundAVGD(in, f, AVGDOptions{R: 1})
		aware, _ := RoundAVGD(in, f, AVGDOptions{R: 1, SlotWeights: gamma})
		if err := aware.Validate(in); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pw := EvaluateWithSlotWeights(in, OptimizeSlotOrder(in, plain, gamma), gamma)
		aw := EvaluateWithSlotWeights(in, OptimizeSlotOrder(in, aware, gamma), gamma)
		total++
		if aw >= pw-1e-9 {
			wins++
		}
		if aw < 0.95*pw {
			t.Errorf("seed %d: γ-aware %.4f more than 5%% below plain %.4f", seed, aw, pw)
		}
	}
	if wins*2 < total {
		t.Errorf("γ-aware construction won only %d of %d seeds", wins, total)
	}
}

func TestAVGDSlotWeightsMalformedIgnored(t *testing.T) {
	in := randomInstance(2, 5, 6, 2, 0.5)
	f, err := SolveRelaxation(in, LPStructured, defaultTestLP())
	if err != nil {
		t.Fatal(err)
	}
	conf, _ := RoundAVGD(in, f, AVGDOptions{R: 1, SlotWeights: []float64{1}}) // wrong length
	if err := conf.Validate(in); err != nil {
		t.Fatal(err)
	}
}
