package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/svgic/svgic/internal/graph"
)

// FriendTie carries the per-item social utilities between a joining user and
// one standing friend: Out is τ(newcomer, friend, ·) — what the newcomer
// gains from co-viewing with the friend — and In is τ(friend, newcomer, ·).
// A nil slice means all-zero in that direction; a non-nil slice must have
// exactly NumItems entries of finite, non-negative values.
type FriendTie struct {
	Out []float64
	In  []float64
}

// FriendTies maps a standing user's id to the social ties a joining user
// declares toward them.
type FriendTies map[int]FriendTie

// DynamicSession supports the dynamic scenario of Extension F: users join
// and leave a running SAVG configuration without re-solving the whole
// instance. A joining user is admitted by an exact single-user best response
// against the standing configuration (the "partial LP + CSF into existing
// subgroups" step of the paper, realized as an assignment problem), and a
// bounded number of best-response passes over the affected neighbourhood
// restores local optimality after each event.
//
// The session owns a private deep copy of the instance: event application
// mutates utilities in place (Leave zeroes the departed user's rows), so
// sharing the caller's instance would silently corrupt it — and any engine
// cache entry fingerprinted from it.
//
// The weighted objective is maintained incrementally: every event folds its
// own O(affected-neighbourhood) delta into val, so Value is O(1) instead of
// a full Evaluate rescan. Resync recomputes from scratch and reports the
// accumulated drift — the checked fallback. Under a size cap the per-unit
// occupancy counts are maintained the same way instead of being rebuilt per
// event.
//
// A DynamicSession is not safe for concurrent use; callers that serve one
// session from many goroutines (internal/session's manager) serialize event
// application themselves.
type DynamicSession struct {
	in   *Instance
	conf *Configuration
	cap  int // SVGIC-ST subgroup size bound; 0 = none

	active []bool

	val    float64 // incrementally maintained Evaluate(in, conf).Weighted()
	counts []int   // incrementally maintained countsFor(); nil when cap == 0
	dirty  []bool  // users whose neighbourhood changed since the last repair
	comp   []int   // union-find parents over user rows (ghosts included)
}

// NewDynamicSession starts a session from a solved configuration. Both the
// instance and the configuration are deep-cloned; subsequent events never
// touch the caller's copies.
func NewDynamicSession(in *Instance, conf *Configuration, cap int) (*DynamicSession, error) {
	if err := conf.Validate(in); err != nil {
		return nil, err
	}
	active := make([]bool, in.NumUsers())
	for i := range active {
		active[i] = true
	}
	ds := &DynamicSession{in: in.Clone(), conf: conf.Clone(), cap: cap, active: active}
	ds.resetIncremental(false)
	return ds, nil
}

// RestoreDynamicSession rebuilds a session from persisted state: the
// instance and configuration as they stood at the persistence point, the
// SVGIC-ST cap, and the ids of the users active at that point — the one
// piece of session state NewDynamicSession cannot reconstruct, because a
// departed user's row stays in the instance (zeroed) after Leave. The
// durable session store uses it to reload snapshots; WAL-tail replay through
// the ordinary event path then brings the session back to its pre-crash
// state. Both the instance and the configuration are deep-cloned. The
// restored session starts fully dirty: the repair loop owes it one complete
// pass before delta re-solves may narrow to changed components.
func RestoreDynamicSession(in *Instance, conf *Configuration, cap int, activeIDs []int) (*DynamicSession, error) {
	if err := conf.Validate(in); err != nil {
		return nil, err
	}
	active := make([]bool, in.NumUsers())
	for _, u := range activeIDs {
		if u < 0 || u >= len(active) {
			return nil, fmt.Errorf("core: restored active id %d out of range [0,%d)", u, len(active))
		}
		if active[u] {
			return nil, fmt.Errorf("core: restored active id %d repeated", u)
		}
		active[u] = true
	}
	ds := &DynamicSession{in: in.Clone(), conf: conf.Clone(), cap: cap, active: active}
	ds.resetIncremental(true)
	return ds, nil
}

// resetIncremental rebuilds all incrementally maintained state from the
// instance and configuration as they stand: the value accumulator, the
// occupancy counts, the component partition, and the dirty flags.
func (ds *DynamicSession) resetIncremental(markDirty bool) {
	ds.val = Evaluate(ds.in, ds.conf).Weighted()
	ds.counts = ds.countsFor()
	n := ds.in.NumUsers()
	ds.comp = make([]int, n)
	for i := range ds.comp {
		ds.comp[i] = i
	}
	for _, p := range ds.in.G.Pairs() {
		ds.union(p[0], p[1])
	}
	ds.dirty = make([]bool, n)
	if markDirty {
		for i := range ds.dirty {
			ds.dirty[i] = true
		}
	}
}

// find returns the union-find root of user u, compressing the path.
func (ds *DynamicSession) find(u int) int {
	r := u
	for ds.comp[r] != r {
		r = ds.comp[r]
	}
	for ds.comp[u] != r {
		ds.comp[u], u = r, ds.comp[u]
	}
	return r
}

func (ds *DynamicSession) union(a, b int) {
	ra, rb := ds.find(a), ds.find(b)
	if ra != rb {
		ds.comp[ra] = rb
	}
}

// Instance returns the session's current instance (live view, do not modify).
func (ds *DynamicSession) Instance() *Instance { return ds.in }

// Config returns the current configuration (live view, do not modify).
func (ds *DynamicSession) Config() *Configuration { return ds.conf }

// SizeCap returns the session's SVGIC-ST subgroup size bound (0 = none).
func (ds *DynamicSession) SizeCap() int { return ds.cap }

// ActiveUsers returns the ids of users currently in the store. Never nil,
// so an empty store serializes as [] on the session wire, not null.
func (ds *DynamicSession) ActiveUsers() []int {
	out := make([]int, 0, len(ds.active))
	for u, a := range ds.active {
		if a {
			out = append(out, u)
		}
	}
	return out
}

// NumActive returns the number of users currently in the store.
func (ds *DynamicSession) NumActive() int {
	n := 0
	for _, a := range ds.active {
		if a {
			n++
		}
	}
	return n
}

// validatePrefVector checks a caller-supplied utility vector at the event
// trust boundary: exact length, finite, non-negative. Events reach sessions
// from untrusted JSON via the serving path, so the checks mirror
// Instance.Validate.
func (ds *DynamicSession) validatePrefVector(what string, vec []float64) error {
	if len(vec) != ds.in.NumItems {
		return fmt.Errorf("core: %s has %d items, want %d", what, len(vec), ds.in.NumItems)
	}
	for c, x := range vec {
		if !isFinite(x) {
			return fmt.Errorf("core: %s[%d]=%v is not finite", what, c, x)
		}
		if x < 0 {
			return fmt.Errorf("core: %s[%d]=%g is negative", what, c, x)
		}
	}
	return nil
}

// validateFriendTies checks every declared tie before Join mutates anything:
// friend ids must name ACTIVE users — a tie to a departed shopper would
// re-add social utility on edges Leave just zeroed, and the ghost's frozen
// assignment row would then earn phantom co-display value in Evaluate — and
// tie vectors must be nil or exactly NumItems long (a short slice used to
// panic mid-rebuild, after the new graph was already constructed).
func (ds *DynamicSession) validateFriendTies(friends FriendTies) error {
	n := ds.in.NumUsers()
	for f, tie := range friends {
		if f < 0 || f >= n {
			return fmt.Errorf("core: friend id %d out of range [0,%d)", f, n)
		}
		if !ds.active[f] {
			return fmt.Errorf("core: friend %d is not active", f)
		}
		if tie.Out != nil {
			if err := ds.validatePrefVector(fmt.Sprintf("τ out to friend %d", f), tie.Out); err != nil {
				return err
			}
		}
		if tie.In != nil {
			if err := ds.validatePrefVector(fmt.Sprintf("τ in from friend %d", f), tie.In); err != nil {
				return err
			}
		}
	}
	return nil
}

// contribution returns user u's additive share of the weighted objective:
// (1−λ)·preference over u's assigned units plus λ·PairSocial for every
// co-display with a neighbour. Each social pair involving u is counted once
// (PairSocial folds both τ directions), so adding or removing u's entire
// row changes the global objective by exactly this amount.
func (ds *DynamicSession) contribution(u int) float64 {
	lam := ds.in.Lambda
	var c float64
	for s, it := range ds.conf.Assign[u] {
		if it == Unassigned {
			continue
		}
		c += (1 - lam) * ds.in.Pref[u][it]
		for _, v := range ds.in.G.Neighbors(u) {
			if v != u && ds.conf.Assign[v][s] == it {
				c += lam * ds.in.PairSocial(u, v, it)
			}
		}
	}
	return c
}

// respond takes user u's exact best response and folds its global objective
// delta into the value accumulator (and, under a cap, the occupancy counts).
func (ds *DynamicSession) respond(u int) float64 {
	gain := bestResponse(ds.in, ds.conf, u, ds.cap, ds.counts)
	ds.val += gain
	return gain
}

// Join adds a user with the given preferences and friend ties and admits
// them with an exact best response, returning the new user's id. All inputs
// are validated (and copied) before any session state changes, so a failed
// Join leaves the session exactly as it was. Friends are processed in sorted
// id order so the rebuilt adjacency — and with it every downstream float
// summation — is identical between a live session and a WAL replay of the
// same events.
func (ds *DynamicSession) Join(pref []float64, friends FriendTies) (int, error) {
	if err := ds.validatePrefVector("joining user's preferences", pref); err != nil {
		return 0, err
	}
	if err := ds.validateFriendTies(friends); err != nil {
		return 0, err
	}
	fids := make([]int, 0, len(friends))
	for f := range friends {
		fids = append(fids, f)
	}
	sort.Ints(fids)
	old := ds.in
	oldN := old.NumUsers()
	g := graph.New(oldN + 1)
	for u := 0; u < oldN; u++ {
		for _, v := range old.G.Out(u) {
			g.AddEdge(u, v)
		}
	}
	nu := oldN
	for _, f := range fids {
		g.AddMutualEdge(nu, f)
	}
	in := NewInstance(g, old.NumItems, old.K, old.Lambda)
	for u := 0; u < oldN; u++ {
		copy(in.Pref[u], old.Pref[u])
		for _, v := range old.G.Out(u) {
			for c := 0; c < old.NumItems; c++ {
				if t := old.Tau(u, v, c); t != 0 {
					must(in.SetTau(u, v, c, t))
				}
			}
		}
	}
	copy(in.Pref[nu], pref)
	for _, f := range fids {
		tie := friends[f]
		for c := 0; c < in.NumItems; c++ {
			if tie.Out != nil && tie.Out[c] != 0 {
				must(in.SetTau(nu, f, c, tie.Out[c]))
			}
			if tie.In != nil && tie.In[c] != 0 {
				must(in.SetTau(f, nu, c, tie.In[c]))
			}
		}
	}
	conf := NewConfiguration(oldN+1, in.K)
	for u := 0; u < oldN; u++ {
		copy(conf.Assign[u], ds.conf.Assign[u])
	}
	ds.in = in
	ds.conf = conf
	ds.active = append(ds.active, true)
	// The rebuild leaves every standing row and utility untouched, so val
	// carries over; only the component partition grows.
	ds.comp = append(ds.comp, nu)
	ds.dirty = append(ds.dirty, true)
	for _, f := range fids {
		ds.union(nu, f)
		ds.dirty[f] = true
	}
	// Admit: fill the newcomer's slots greedily, then take the exact best
	// response, then let the direct friends react once. The newcomer's filled
	// row is their whole contribution — everyone else's row is unchanged.
	aP, aS := in.PrefCoef(nil), in.PairCoef(nil)
	completeGreedy(in, conf, aP, aS, ds.cap, ds.counts)
	ds.val += ds.contribution(nu)
	ds.respond(nu)
	for _, f := range fids {
		ds.respond(f)
	}
	return nu, nil
}

// Leave removes a user from the session: their row keeps its items (they are
// gone from the store, so it no longer matters) but they stop contributing
// utility, and their former friends rebalance with one best-response pass.
// The frozen row stays in the occupancy counts — it still blocks capped
// units, exactly as countsFor would rebuild it.
func (ds *DynamicSession) Leave(u int) error {
	if u < 0 || u >= len(ds.active) || !ds.active[u] {
		return fmt.Errorf("core: user %d is not active", u)
	}
	ds.active[u] = false
	friends := append([]int(nil), ds.in.G.Neighbors(u)...)
	// The departed user's entire share of the objective vanishes with their
	// utilities; fold it out before zeroing them.
	ds.val -= ds.contribution(u)
	// Zero the departed user's utilities so evaluation and best responses
	// ignore them.
	for c := 0; c < ds.in.NumItems; c++ {
		ds.in.Pref[u][c] = 0
	}
	for _, v := range friends {
		for c := 0; c < ds.in.NumItems; c++ {
			if ds.in.G.HasEdge(u, v) {
				must(ds.in.SetTau(u, v, c, 0))
			}
			if ds.in.G.HasEdge(v, u) {
				must(ds.in.SetTau(v, u, c, 0))
			}
		}
	}
	ds.dirty[u] = true
	for _, v := range friends {
		ds.dirty[v] = true
		if ds.active[v] {
			ds.respond(v)
		}
	}
	return nil
}

// UpdatePreference replaces an active user's preference vector and reacts
// with the exact best response for that user plus one pass over their direct
// friends — the in-store counterpart of Join's admission step, for shoppers
// whose interests shift mid-session. The vector is copied; it returns the
// total best-response improvement in the weighted objective.
func (ds *DynamicSession) UpdatePreference(u int, pref []float64) (float64, error) {
	if u < 0 || u >= len(ds.active) || !ds.active[u] {
		return 0, fmt.Errorf("core: user %d is not active", u)
	}
	if err := ds.validatePrefVector(fmt.Sprintf("user %d's preferences", u), pref); err != nil {
		return 0, err
	}
	// Only u's preference terms move; the social terms are untouched.
	var d float64
	for _, it := range ds.conf.Assign[u] {
		if it != Unassigned {
			d += pref[it] - ds.in.Pref[u][it]
		}
	}
	ds.val += (1 - ds.in.Lambda) * d
	copy(ds.in.Pref[u], pref)
	ds.dirty[u] = true
	gain := ds.respond(u)
	for _, v := range ds.in.G.Neighbors(u) {
		if ds.active[v] {
			ds.dirty[v] = true
			gain += ds.respond(v)
		}
	}
	return gain, nil
}

// Rebalance runs best-response passes over all active users until no user
// improves or maxPasses is reached, returning the total improvement. This is
// the local-search step of Extension F. Rebalance does not mark users dirty:
// it only moves the configuration along the same best-response dynamics the
// repair solver would, without changing the instance.
func (ds *DynamicSession) Rebalance(maxPasses int) float64 {
	var total float64
	for pass := 0; pass < maxPasses; pass++ {
		var improved float64
		for u, a := range ds.active {
			if a {
				improved += ds.respond(u)
			}
		}
		total += improved
		if improved <= 1e-12 {
			break
		}
	}
	return total
}

// Adopt atomically replaces the session's configuration with a full
// re-solve's result — the drift-repair swap: a background solver beat the
// incrementally maintained configuration, so the session jumps to the better
// one without replaying events. The configuration is validated against the
// session's current instance and deep-cloned. The accumulator and counts are
// rebuilt from scratch (the new configuration shares nothing with the old),
// and every user is marked dirty: an out-of-band configuration change is
// exactly the event the repair loop must not skip.
func (ds *DynamicSession) Adopt(conf *Configuration) error {
	if err := conf.Validate(ds.in); err != nil {
		return fmt.Errorf("core: adopting configuration: %w", err)
	}
	ds.conf = conf.Clone()
	ds.val = Evaluate(ds.in, ds.conf).Weighted()
	ds.counts = ds.countsFor()
	for i := range ds.dirty {
		ds.dirty[i] = true
	}
	return nil
}

// Value returns the current weighted SVGIC objective over active users. It
// reads the incrementally maintained accumulator — O(1), not a rescan; the
// differential fuzz suite pins it to Evaluate within 1e-9, and Resync is the
// checked full recompute.
func (ds *DynamicSession) Value() float64 {
	return ds.val
}

// SeedValue overwrites the value accumulator with an externally persisted
// value — the exact weighted objective a live session served before it was
// snapshotted. Recovery needs bit-identical values (the incremental
// accumulator and a cold Evaluate can differ in final ulps), so the durable
// layers seed the logged value instead of recomputing. The seed is sanity-
// checked against a full Evaluate to catch corrupt or mismatched state.
func (ds *DynamicSession) SeedValue(v float64) error {
	full := Evaluate(ds.in, ds.conf).Weighted()
	tol := 1e-6 * math.Max(1, math.Abs(full))
	if !isFinite(v) || math.Abs(v-full) > tol {
		return fmt.Errorf("core: seeded value %g disagrees with evaluated %g", v, full)
	}
	ds.val = v
	return nil
}

// Resync recomputes the value accumulator and occupancy counts from scratch
// and returns the absolute drift the incremental bookkeeping had accumulated
// — the checked fallback for callers that want to bound floating-point creep
// on very long event streams.
func (ds *DynamicSession) Resync() float64 {
	full := Evaluate(ds.in, ds.conf).Weighted()
	drift := math.Abs(ds.val - full)
	ds.val = full
	ds.counts = ds.countsFor()
	return drift
}

// DirtyComponents returns the active membership of every connected component
// touched by an event since the last ClearDirty, each sorted ascending and
// the groups ordered by smallest member. The partition is maintained as a
// grow-only union-find over the social graph: Join unions the newcomer with
// their friends; Leave keeps the coarser partition (a conservative
// over-approximation — a component a departure actually split re-solves as
// one until the next full repair). An empty result means no event changed
// the instance since the last repair.
func (ds *DynamicSession) DirtyComponents() [][]int {
	dirtyRoots := make(map[int]bool)
	for u, d := range ds.dirty {
		if d {
			dirtyRoots[ds.find(u)] = true
		}
	}
	if len(dirtyRoots) == 0 {
		return nil
	}
	groups := make(map[int][]int)
	var order []int
	for u, a := range ds.active {
		if !a {
			continue
		}
		r := ds.find(u)
		if !dirtyRoots[r] {
			continue
		}
		if _, ok := groups[r]; !ok {
			order = append(order, r) // first member is smallest: u ascends
		}
		groups[r] = append(groups[r], u)
	}
	out := make([][]int, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

// ClearDirty resets the dirty flags after a completed repair pass.
func (ds *DynamicSession) ClearDirty() {
	for i := range ds.dirty {
		ds.dirty[i] = false
	}
}

func (ds *DynamicSession) countsFor() []int {
	if ds.cap <= 0 {
		return nil
	}
	k := ds.in.K
	counts := make([]int, ds.in.NumItems*k)
	for u := range ds.conf.Assign {
		for s, it := range ds.conf.Assign[u] {
			if it != Unassigned {
				counts[it*k+s]++
			}
		}
	}
	return counts
}
