package core

import (
	"fmt"

	"github.com/svgic/svgic/internal/graph"
)

// DynamicSession supports the dynamic scenario of Extension F: users join
// and leave a running SAVG configuration without re-solving the whole
// instance. A joining user is admitted by an exact single-user best response
// against the standing configuration (the "partial LP + CSF into existing
// subgroups" step of the paper, realized as an assignment problem), and a
// bounded number of best-response passes over the affected neighbourhood
// restores local optimality after each event.
type DynamicSession struct {
	in   *Instance
	conf *Configuration
	cap  int // SVGIC-ST subgroup size bound; 0 = none

	active []bool
}

// NewDynamicSession starts a session from a solved configuration.
func NewDynamicSession(in *Instance, conf *Configuration, cap int) (*DynamicSession, error) {
	if err := conf.Validate(in); err != nil {
		return nil, err
	}
	active := make([]bool, in.NumUsers())
	for i := range active {
		active[i] = true
	}
	return &DynamicSession{in: in, conf: conf.Clone(), cap: cap, active: active}, nil
}

// Instance returns the session's current instance.
func (ds *DynamicSession) Instance() *Instance { return ds.in }

// Config returns the current configuration (live view, do not modify).
func (ds *DynamicSession) Config() *Configuration { return ds.conf }

// ActiveUsers returns the ids of users currently in the store.
func (ds *DynamicSession) ActiveUsers() []int {
	var out []int
	for u, a := range ds.active {
		if a {
			out = append(out, u)
		}
	}
	return out
}

// Join adds a user with the given preferences and friendships
// (friend id -> (τ outgoing per item, τ incoming per item)) and admits them
// with an exact best response. It returns the new user's id.
func (ds *DynamicSession) Join(pref []float64, friends map[int]struct{ Out, In []float64 }) (int, error) {
	if len(pref) != ds.in.NumItems {
		return 0, fmt.Errorf("core: joining user has %d preferences, want %d", len(pref), ds.in.NumItems)
	}
	old := ds.in
	oldN := old.NumUsers()
	g := graph.New(oldN + 1)
	for u := 0; u < oldN; u++ {
		for _, v := range old.G.Out(u) {
			g.AddEdge(u, v)
		}
	}
	nu := oldN
	for f := range friends {
		if f < 0 || f >= oldN {
			return 0, fmt.Errorf("core: friend id %d out of range", f)
		}
		g.AddMutualEdge(nu, f)
	}
	in := NewInstance(g, old.NumItems, old.K, old.Lambda)
	for u := 0; u < oldN; u++ {
		copy(in.Pref[u], old.Pref[u])
		for _, v := range old.G.Out(u) {
			for c := 0; c < old.NumItems; c++ {
				if t := old.Tau(u, v, c); t != 0 {
					must(in.SetTau(u, v, c, t))
				}
			}
		}
	}
	copy(in.Pref[nu], pref)
	for f, tv := range friends {
		for c := 0; c < in.NumItems; c++ {
			if tv.Out != nil && tv.Out[c] != 0 {
				must(in.SetTau(nu, f, c, tv.Out[c]))
			}
			if tv.In != nil && tv.In[c] != 0 {
				must(in.SetTau(f, nu, c, tv.In[c]))
			}
		}
	}
	conf := NewConfiguration(oldN+1, in.K)
	for u := 0; u < oldN; u++ {
		copy(conf.Assign[u], ds.conf.Assign[u])
	}
	ds.in = in
	ds.conf = conf
	ds.active = append(ds.active, true)
	// Admit: fill the newcomer's slots greedily, then take the exact best
	// response, then let the direct friends react once.
	aP, aS := in.PrefCoef(nil), in.PairCoef(nil)
	counts := ds.countsFor()
	completeGreedy(in, conf, aP, aS, ds.cap, counts)
	BestResponse(in, conf, nu, ds.cap)
	for f := range friends {
		BestResponse(in, conf, f, ds.cap)
	}
	return nu, nil
}

// Leave removes a user from the session: their row keeps its items (they are
// gone from the store, so it no longer matters) but they stop contributing
// utility, and their former friends rebalance with one best-response pass.
func (ds *DynamicSession) Leave(u int) error {
	if u < 0 || u >= len(ds.active) || !ds.active[u] {
		return fmt.Errorf("core: user %d is not active", u)
	}
	ds.active[u] = false
	friends := append([]int(nil), ds.in.G.Neighbors(u)...)
	// Zero the departed user's utilities so evaluation and best responses
	// ignore them.
	for c := 0; c < ds.in.NumItems; c++ {
		ds.in.Pref[u][c] = 0
	}
	for _, v := range friends {
		for c := 0; c < ds.in.NumItems; c++ {
			if ds.in.G.HasEdge(u, v) {
				must(ds.in.SetTau(u, v, c, 0))
			}
			if ds.in.G.HasEdge(v, u) {
				must(ds.in.SetTau(v, u, c, 0))
			}
		}
	}
	for _, v := range friends {
		if ds.active[v] {
			BestResponse(ds.in, ds.conf, v, ds.cap)
		}
	}
	return nil
}

// Rebalance runs best-response passes over all active users until no user
// improves or maxPasses is reached, returning the total improvement. This is
// the local-search step of Extension F.
func (ds *DynamicSession) Rebalance(maxPasses int) float64 {
	var total float64
	for pass := 0; pass < maxPasses; pass++ {
		var improved float64
		for u, a := range ds.active {
			if a {
				improved += BestResponse(ds.in, ds.conf, u, ds.cap)
			}
		}
		total += improved
		if improved <= 1e-12 {
			break
		}
	}
	return total
}

// Value returns the current weighted SVGIC objective over active users.
func (ds *DynamicSession) Value() float64 {
	return Evaluate(ds.in, ds.conf).Weighted()
}

func (ds *DynamicSession) countsFor() []int {
	if ds.cap <= 0 {
		return nil
	}
	k := ds.in.K
	counts := make([]int, ds.in.NumItems*k)
	for u := range ds.conf.Assign {
		for s, it := range ds.conf.Assign[u] {
			if it != Unassigned {
				counts[it*k+s]++
			}
		}
	}
	return counts
}
