package core

import (
	"fmt"

	"github.com/svgic/svgic/internal/graph"
)

// FriendTie carries the per-item social utilities between a joining user and
// one standing friend: Out is τ(newcomer, friend, ·) — what the newcomer
// gains from co-viewing with the friend — and In is τ(friend, newcomer, ·).
// A nil slice means all-zero in that direction; a non-nil slice must have
// exactly NumItems entries of finite, non-negative values.
type FriendTie struct {
	Out []float64
	In  []float64
}

// FriendTies maps a standing user's id to the social ties a joining user
// declares toward them.
type FriendTies map[int]FriendTie

// DynamicSession supports the dynamic scenario of Extension F: users join
// and leave a running SAVG configuration without re-solving the whole
// instance. A joining user is admitted by an exact single-user best response
// against the standing configuration (the "partial LP + CSF into existing
// subgroups" step of the paper, realized as an assignment problem), and a
// bounded number of best-response passes over the affected neighbourhood
// restores local optimality after each event.
//
// The session owns a private deep copy of the instance: event application
// mutates utilities in place (Leave zeroes the departed user's rows), so
// sharing the caller's instance would silently corrupt it — and any engine
// cache entry fingerprinted from it.
//
// A DynamicSession is not safe for concurrent use; callers that serve one
// session from many goroutines (internal/session's manager) serialize event
// application themselves.
type DynamicSession struct {
	in   *Instance
	conf *Configuration
	cap  int // SVGIC-ST subgroup size bound; 0 = none

	active []bool
}

// NewDynamicSession starts a session from a solved configuration. Both the
// instance and the configuration are deep-cloned; subsequent events never
// touch the caller's copies.
func NewDynamicSession(in *Instance, conf *Configuration, cap int) (*DynamicSession, error) {
	if err := conf.Validate(in); err != nil {
		return nil, err
	}
	active := make([]bool, in.NumUsers())
	for i := range active {
		active[i] = true
	}
	return &DynamicSession{in: in.Clone(), conf: conf.Clone(), cap: cap, active: active}, nil
}

// RestoreDynamicSession rebuilds a session from persisted state: the
// instance and configuration as they stood at the persistence point, the
// SVGIC-ST cap, and the ids of the users active at that point — the one
// piece of session state NewDynamicSession cannot reconstruct, because a
// departed user's row stays in the instance (zeroed) after Leave. The
// durable session store uses it to reload snapshots; WAL-tail replay through
// the ordinary event path then brings the session back to its pre-crash
// state. Both the instance and the configuration are deep-cloned.
func RestoreDynamicSession(in *Instance, conf *Configuration, cap int, activeIDs []int) (*DynamicSession, error) {
	if err := conf.Validate(in); err != nil {
		return nil, err
	}
	active := make([]bool, in.NumUsers())
	for _, u := range activeIDs {
		if u < 0 || u >= len(active) {
			return nil, fmt.Errorf("core: restored active id %d out of range [0,%d)", u, len(active))
		}
		if active[u] {
			return nil, fmt.Errorf("core: restored active id %d repeated", u)
		}
		active[u] = true
	}
	return &DynamicSession{in: in.Clone(), conf: conf.Clone(), cap: cap, active: active}, nil
}

// Instance returns the session's current instance (live view, do not modify).
func (ds *DynamicSession) Instance() *Instance { return ds.in }

// Config returns the current configuration (live view, do not modify).
func (ds *DynamicSession) Config() *Configuration { return ds.conf }

// SizeCap returns the session's SVGIC-ST subgroup size bound (0 = none).
func (ds *DynamicSession) SizeCap() int { return ds.cap }

// ActiveUsers returns the ids of users currently in the store. Never nil,
// so an empty store serializes as [] on the session wire, not null.
func (ds *DynamicSession) ActiveUsers() []int {
	out := make([]int, 0, len(ds.active))
	for u, a := range ds.active {
		if a {
			out = append(out, u)
		}
	}
	return out
}

// NumActive returns the number of users currently in the store.
func (ds *DynamicSession) NumActive() int {
	n := 0
	for _, a := range ds.active {
		if a {
			n++
		}
	}
	return n
}

// validatePrefVector checks a caller-supplied utility vector at the event
// trust boundary: exact length, finite, non-negative. Events reach sessions
// from untrusted JSON via the serving path, so the checks mirror
// Instance.Validate.
func (ds *DynamicSession) validatePrefVector(what string, vec []float64) error {
	if len(vec) != ds.in.NumItems {
		return fmt.Errorf("core: %s has %d items, want %d", what, len(vec), ds.in.NumItems)
	}
	for c, x := range vec {
		if !isFinite(x) {
			return fmt.Errorf("core: %s[%d]=%v is not finite", what, c, x)
		}
		if x < 0 {
			return fmt.Errorf("core: %s[%d]=%g is negative", what, c, x)
		}
	}
	return nil
}

// validateFriendTies checks every declared tie before Join mutates anything:
// friend ids must name ACTIVE users — a tie to a departed shopper would
// re-add social utility on edges Leave just zeroed, and the ghost's frozen
// assignment row would then earn phantom co-display value in Evaluate — and
// tie vectors must be nil or exactly NumItems long (a short slice used to
// panic mid-rebuild, after the new graph was already constructed).
func (ds *DynamicSession) validateFriendTies(friends FriendTies) error {
	n := ds.in.NumUsers()
	for f, tie := range friends {
		if f < 0 || f >= n {
			return fmt.Errorf("core: friend id %d out of range [0,%d)", f, n)
		}
		if !ds.active[f] {
			return fmt.Errorf("core: friend %d is not active", f)
		}
		if tie.Out != nil {
			if err := ds.validatePrefVector(fmt.Sprintf("τ out to friend %d", f), tie.Out); err != nil {
				return err
			}
		}
		if tie.In != nil {
			if err := ds.validatePrefVector(fmt.Sprintf("τ in from friend %d", f), tie.In); err != nil {
				return err
			}
		}
	}
	return nil
}

// Join adds a user with the given preferences and friend ties and admits
// them with an exact best response, returning the new user's id. All inputs
// are validated (and copied) before any session state changes, so a failed
// Join leaves the session exactly as it was.
func (ds *DynamicSession) Join(pref []float64, friends FriendTies) (int, error) {
	if err := ds.validatePrefVector("joining user's preferences", pref); err != nil {
		return 0, err
	}
	if err := ds.validateFriendTies(friends); err != nil {
		return 0, err
	}
	old := ds.in
	oldN := old.NumUsers()
	g := graph.New(oldN + 1)
	for u := 0; u < oldN; u++ {
		for _, v := range old.G.Out(u) {
			g.AddEdge(u, v)
		}
	}
	nu := oldN
	for f := range friends {
		g.AddMutualEdge(nu, f)
	}
	in := NewInstance(g, old.NumItems, old.K, old.Lambda)
	for u := 0; u < oldN; u++ {
		copy(in.Pref[u], old.Pref[u])
		for _, v := range old.G.Out(u) {
			for c := 0; c < old.NumItems; c++ {
				if t := old.Tau(u, v, c); t != 0 {
					must(in.SetTau(u, v, c, t))
				}
			}
		}
	}
	copy(in.Pref[nu], pref)
	for f, tie := range friends {
		for c := 0; c < in.NumItems; c++ {
			if tie.Out != nil && tie.Out[c] != 0 {
				must(in.SetTau(nu, f, c, tie.Out[c]))
			}
			if tie.In != nil && tie.In[c] != 0 {
				must(in.SetTau(f, nu, c, tie.In[c]))
			}
		}
	}
	conf := NewConfiguration(oldN+1, in.K)
	for u := 0; u < oldN; u++ {
		copy(conf.Assign[u], ds.conf.Assign[u])
	}
	ds.in = in
	ds.conf = conf
	ds.active = append(ds.active, true)
	// Admit: fill the newcomer's slots greedily, then take the exact best
	// response, then let the direct friends react once.
	aP, aS := in.PrefCoef(nil), in.PairCoef(nil)
	counts := ds.countsFor()
	completeGreedy(in, conf, aP, aS, ds.cap, counts)
	BestResponse(in, conf, nu, ds.cap)
	for f := range friends {
		BestResponse(in, conf, f, ds.cap)
	}
	return nu, nil
}

// Leave removes a user from the session: their row keeps its items (they are
// gone from the store, so it no longer matters) but they stop contributing
// utility, and their former friends rebalance with one best-response pass.
func (ds *DynamicSession) Leave(u int) error {
	if u < 0 || u >= len(ds.active) || !ds.active[u] {
		return fmt.Errorf("core: user %d is not active", u)
	}
	ds.active[u] = false
	friends := append([]int(nil), ds.in.G.Neighbors(u)...)
	// Zero the departed user's utilities so evaluation and best responses
	// ignore them.
	for c := 0; c < ds.in.NumItems; c++ {
		ds.in.Pref[u][c] = 0
	}
	for _, v := range friends {
		for c := 0; c < ds.in.NumItems; c++ {
			if ds.in.G.HasEdge(u, v) {
				must(ds.in.SetTau(u, v, c, 0))
			}
			if ds.in.G.HasEdge(v, u) {
				must(ds.in.SetTau(v, u, c, 0))
			}
		}
	}
	for _, v := range friends {
		if ds.active[v] {
			BestResponse(ds.in, ds.conf, v, ds.cap)
		}
	}
	return nil
}

// UpdatePreference replaces an active user's preference vector and reacts
// with the exact best response for that user plus one pass over their direct
// friends — the in-store counterpart of Join's admission step, for shoppers
// whose interests shift mid-session. The vector is copied; it returns the
// total best-response improvement in the weighted objective.
func (ds *DynamicSession) UpdatePreference(u int, pref []float64) (float64, error) {
	if u < 0 || u >= len(ds.active) || !ds.active[u] {
		return 0, fmt.Errorf("core: user %d is not active", u)
	}
	if err := ds.validatePrefVector(fmt.Sprintf("user %d's preferences", u), pref); err != nil {
		return 0, err
	}
	copy(ds.in.Pref[u], pref)
	gain := BestResponse(ds.in, ds.conf, u, ds.cap)
	for _, v := range ds.in.G.Neighbors(u) {
		if ds.active[v] {
			gain += BestResponse(ds.in, ds.conf, v, ds.cap)
		}
	}
	return gain, nil
}

// Rebalance runs best-response passes over all active users until no user
// improves or maxPasses is reached, returning the total improvement. This is
// the local-search step of Extension F.
func (ds *DynamicSession) Rebalance(maxPasses int) float64 {
	var total float64
	for pass := 0; pass < maxPasses; pass++ {
		var improved float64
		for u, a := range ds.active {
			if a {
				improved += BestResponse(ds.in, ds.conf, u, ds.cap)
			}
		}
		total += improved
		if improved <= 1e-12 {
			break
		}
	}
	return total
}

// Adopt atomically replaces the session's configuration with a full
// re-solve's result — the drift-repair swap: a background solver beat the
// incrementally maintained configuration, so the session jumps to the better
// one without replaying events. The configuration is validated against the
// session's current instance and deep-cloned.
func (ds *DynamicSession) Adopt(conf *Configuration) error {
	if err := conf.Validate(ds.in); err != nil {
		return fmt.Errorf("core: adopting configuration: %w", err)
	}
	ds.conf = conf.Clone()
	return nil
}

// Value returns the current weighted SVGIC objective over active users.
func (ds *DynamicSession) Value() float64 {
	return Evaluate(ds.in, ds.conf).Weighted()
}

func (ds *DynamicSession) countsFor() []int {
	if ds.cap <= 0 {
		return nil
	}
	k := ds.in.K
	counts := make([]int, ds.in.NumItems*k)
	for u := range ds.conf.Assign {
		for s, it := range ds.conf.Assign[u] {
			if it != Unassigned {
				counts[it*k+s]++
			}
		}
	}
	return counts
}
