package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/svgic/svgic/internal/graph"
)

func TestAlignSlotsConvertsIndirectToDirect(t *testing.T) {
	// Two friends hold the same two items at swapped slots: aligning must
	// recover the full direct social utility.
	g := graph.New(2)
	g.AddMutualEdge(0, 1)
	in := NewInstance(g, 2, 2, 0.5)
	must(in.SetTau(0, 1, 0, 0.4))
	must(in.SetTau(1, 0, 0, 0.2))
	must(in.SetTau(0, 1, 1, 0.3))
	must(in.SetTau(1, 0, 1, 0.3))
	conf := configFromRows([][]int{
		{0, 1},
		{1, 0},
	})
	const dtel = 0.5
	gain := AlignSlots(in, conf, dtel, 0, 0)
	if gain <= 0 {
		t.Fatalf("alignment gained %v, want > 0", gain)
	}
	rep := EvaluateST(in, conf, dtel)
	if rep.SocialIndirect != 0 {
		t.Errorf("indirect social remains %v after alignment", rep.SocialIndirect)
	}
	if math.Abs(rep.Social-1.2) > 1e-12 {
		t.Errorf("direct social = %v, want 1.2", rep.Social)
	}
	if err := conf.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestAlignSlotsNeverDecreases(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		in := randomInstance(uint64(seed), 6, 8, 3, 0.5)
		conf, _, err := SolveAVG(in, AVGOptions{Seed: uint64(seed)})
		if err != nil {
			return false
		}
		before := EvaluateST(in, conf, 0.5).Weighted()
		gain := AlignSlots(in, conf, 0.5, 0, 0)
		after := EvaluateST(in, conf, 0.5).Weighted()
		if gain < -1e-9 || math.Abs((after-before)-gain) > 1e-9 {
			return false
		}
		return conf.Validate(in) == nil
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestAlignSlotsRespectsCap(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		const cap = 2
		in := randomInstance(seed, 6, 8, 3, 0.5)
		conf, _, err := SolveAVG(in, AVGOptions{Seed: seed, SizeCap: cap})
		if err != nil {
			t.Fatal(err)
		}
		AlignSlots(in, conf, 0.5, 0, cap)
		if v := conf.SizeViolations(cap); v != 0 {
			t.Errorf("seed %d: alignment introduced %d violations", seed, v)
		}
	}
}

func TestAVGDTraceMatchesExampleFive(t *testing.T) {
	// Example 5's first iteration: f = ALG + r·OPT_LP(S_fut) = 3.35 +
	// 0.25·6.97 = 5.09 (scaled), selecting the SP camera for everyone at
	// slot 1. Our trace records g = ALG − r·ΔLP; the paper's f follows as
	// g + r·OPT_LP(S_cur) with OPT_LP(S_cur) the LP objective itself.
	in := buildPaperExample(0.5)
	f := paperTable6Factors(in)
	var trace []TraceStep
	conf, _ := RoundAVGD(in, f, AVGDOptions{R: DefaultR, Trace: &trace})
	if err := conf.Validate(in); err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	first := trace[0]
	if first.Item != 4 || first.Slot != 0 || len(first.Users) != 4 {
		t.Errorf("first step = %+v, want SP camera to everyone at slot 1", first)
	}
	// Weighted f = g + r·OPT_LP; the paper reports 2× (its λ=1/2 scaling).
	scaledF := 2 * (first.Gain + DefaultR*f.Objective)
	if math.Abs(scaledF-5.0917) > 5e-3 {
		t.Errorf("reconstructed f = %.4f, want ≈ 5.09 (Example 5)", scaledF)
	}
	// The trace covers every display unit exactly once.
	units := 0
	for _, step := range trace {
		units += len(step.Users)
	}
	if units != in.NumUsers()*in.K {
		t.Errorf("trace covers %d units, want %d", units, in.NumUsers()*in.K)
	}
}

func TestInstanceJSONRoundTrip(t *testing.T) {
	in := buildPaperExample(0.4)
	data, err := MarshalInstance(in)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalInstance(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumUsers() != 4 || back.NumItems != 5 || back.K != 3 || back.Lambda != 0.4 {
		t.Fatalf("shape lost in round trip: %d/%d/%d/%v", back.NumUsers(), back.NumItems, back.K, back.Lambda)
	}
	for u := 0; u < 4; u++ {
		for c := 0; c < 5; c++ {
			if back.Pref[u][c] != in.Pref[u][c] {
				t.Fatalf("p(%d,%d) lost", u, c)
			}
		}
		for _, v := range in.G.Out(u) {
			for c := 0; c < 5; c++ {
				if back.Tau(u, v, c) != in.Tau(u, v, c) {
					t.Fatalf("τ(%d,%d,%d) lost", u, v, c)
				}
			}
		}
	}
	// The evaluation of any configuration is identical on both.
	conf := configFromRows([][]int{{4, 0, 1}, {1, 0, 3}, {4, 2, 3}, {4, 0, 3}})
	if a, b := Evaluate(in, conf).Weighted(), Evaluate(back, conf).Weighted(); math.Abs(a-b) > 1e-12 {
		t.Errorf("objective drifted in round trip: %v vs %v", a, b)
	}
}

func TestUnmarshalInstanceErrors(t *testing.T) {
	bad := []string{
		`{`,
		`{"users": 0, "items": 1, "slots": 1, "preferences": []}`,
		`{"users": 1, "items": 2, "slots": 1, "preferences": [[1,2],[3,4]]}`,
		`{"users": 1, "items": 2, "slots": 1, "preferences": [[1]]}`,
		`{"users": 2, "items": 2, "slots": 1, "preferences": [[1,0],[0,1]],
		  "social": [{"from":0,"to":1,"tau":[1,1,1]}]}`,
		`{"users": 2, "items": 1, "slots": 2, "preferences": [[1],[1]]}`,
	}
	for i, s := range bad {
		if _, err := UnmarshalInstance([]byte(s)); err == nil {
			t.Errorf("case %d accepted: %s", i, s)
		}
	}
}

func TestConfigurationJSONRoundTrip(t *testing.T) {
	conf := configFromRows([][]int{{0, 1}, {2, 0}})
	data, err := MarshalConfiguration(conf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalConfiguration(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.K != 2 || back.Assign[1][0] != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if _, err := UnmarshalConfiguration([]byte(`{"slots":2,"assignment":[[1]]}`)); err == nil {
		t.Error("ragged assignment accepted")
	}
	if _, err := UnmarshalConfiguration([]byte(`{"slots":0,"assignment":[]}`)); err == nil {
		t.Error("zero slots accepted")
	}
}

func TestLocalSearchImprovesAndValid(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		in := randomInstance(seed, 8, 10, 3, 0.5)
		conf, _, err := SolveAVG(in, AVGOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		before := Evaluate(in, conf).Weighted()
		gain := LocalSearch(in, conf, 0, 0)
		after := Evaluate(in, conf).Weighted()
		if gain < -1e-9 {
			t.Errorf("seed %d: negative local-search gain %v", seed, gain)
		}
		if math.Abs((after-before)-gain) > 1e-9 {
			t.Errorf("seed %d: reported gain %v, actual %v", seed, gain, after-before)
		}
		if err := conf.Validate(in); err != nil {
			t.Fatal(err)
		}
		// Fixed point: a second pass yields nothing.
		if again := LocalSearch(in, conf, 1, 0); again > 1e-9 {
			t.Errorf("seed %d: local search not at a fixed point (%v)", seed, again)
		}
	}
}

func TestBestAlignmentValueHelper(t *testing.T) {
	if v := bestAlignmentValue([][]float64{{1, 0}, {0, 1}}); v != 2 {
		t.Errorf("bestAlignmentValue = %v", v)
	}
	if v := bestAlignmentValue([][]float64{{1}, {1}}); v != 0 {
		t.Errorf("infeasible alignment value = %v", v)
	}
}
