package core

// Golden tests against the paper's worked example, exercising the internal
// CSF machinery directly (Tables 6–8, Examples 2–5). The external-facing
// golden tests (baselines, public API) live in their packages and share the
// fixture via internal/paperex; this file re-builds the fixture locally
// because package-internal tests cannot import paperex (it imports core).

import (
	"math"
	"testing"

	"github.com/svgic/svgic/internal/graph"
)

// buildPaperExample mirrors internal/paperex.New.
func buildPaperExample(lambda float64) *Instance {
	g := graph.New(4)
	edges := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 0}, {1, 2}, {2, 0}, {2, 1}, {3, 0}}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	in := NewInstance(g, 5, 3, lambda)
	pref := [][5]float64{
		{0.8, 0.85, 0.1, 0.05, 1.0},
		{0.7, 1.0, 0.15, 0.2, 0.1},
		{0, 0.15, 0.7, 0.6, 0.1},
		{0.1, 0, 0.3, 1.0, 0.95},
	}
	for u, row := range pref {
		for c, p := range row {
			in.SetPref(u, c, p)
		}
	}
	tau := map[[2]int][5]float64{
		{0, 1}: {0.2, 0.05, 0.1, 0, 0.05},
		{0, 2}: {0, 0.05, 0.1, 0, 0.3},
		{0, 3}: {0.2, 0.05, 0.1, 0.05, 0.2},
		{1, 0}: {0.2, 0.05, 0.1, 0.05, 0.05},
		{1, 2}: {0, 0.05, 0.1, 0.2, 0},
		{2, 0}: {0, 0.05, 0.1, 0.05, 0.3},
		{2, 1}: {0.1, 0.05, 0.1, 0.2, 0.05},
		{3, 0}: {0.3, 0.05, 0.05, 0, 0.25},
	}
	for e, row := range tau {
		for c, t := range row {
			if err := in.SetTau(e[0], e[1], c, t); err != nil {
				panic(err)
			}
		}
	}
	return in
}

func paperTable6Factors(in *Instance) *Factors {
	return FactorsFromCondensed(in, [][]float64{
		{1, 1, 0, 0, 1},
		{1, 1, 0, 1, 0},
		{0, 0, 1, 1, 1},
		{1, 0, 0, 1, 1},
	})
}

func configFromRows(rows [][]int) *Configuration {
	conf := NewConfiguration(len(rows), len(rows[0]))
	for u, row := range rows {
		copy(conf.Assign[u], row)
	}
	return conf
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPaperExampleOptimalValue(t *testing.T) {
	in := buildPaperExample(0.5)
	// Figure 1's SAVG configuration: value 10.35 in the paper's scaling.
	conf := configFromRows([][]int{
		{4, 0, 1},
		{1, 0, 3},
		{4, 2, 3},
		{4, 0, 3},
	})
	if err := conf.Validate(in); err != nil {
		t.Fatalf("optimal config invalid: %v", err)
	}
	rep := Evaluate(in, conf)
	if !almostEqual(rep.Scaled(), 10.35, 1e-9) {
		t.Errorf("scaled objective = %.4f, want 10.35 (pref %.3f social %.3f)",
			rep.Scaled(), rep.Preference, rep.Social)
	}
	if !almostEqual(rep.Preference, 8.0, 1e-9) || !almostEqual(rep.Social, 2.35, 1e-9) {
		t.Errorf("pref/social = %.3f/%.3f, want 8.0/2.35", rep.Preference, rep.Social)
	}
}

func TestPaperExampleDefinition3(t *testing.T) {
	// Example 2: λ=0.4, w_A(Alice, tripod) = 0.6·0.8 + 0.4·(0.2+0.2) = 0.64.
	in := buildPaperExample(0.4)
	conf := configFromRows([][]int{
		{4, 0, 1},
		{1, 0, 3},
		{4, 2, 3},
		{4, 0, 3},
	})
	// Alice's per-item utilities: c5 with Charlie+Dave at slot 0, c1 with
	// Bob+Dave at slot 1, c2 alone at slot 2.
	wantC5 := 0.6*1.0 + 0.4*(0.3+0.2)
	wantC1 := 0.64
	wantC2 := 0.6 * 0.85
	got := UserUtility(in, conf, 0)
	if want := wantC5 + wantC1 + wantC2; !almostEqual(got, want, 1e-9) {
		t.Errorf("UserUtility(Alice) = %.4f, want %.4f", got, want)
	}
}

func TestPaperExampleCSFReplay(t *testing.T) {
	// Example 4: replaying the sampled focal parameters must reconstruct
	// Table 7 exactly (total 9.75).
	in := buildPaperExample(0.5)
	f := paperTable6Factors(in)
	rs := newRoundState(in, f, 0)
	steps := []struct {
		c, s  int
		alpha float64
	}{
		{0, 2, 0.06}, // tripod at slot 3 -> {Alice, Bob, Dave}
		{3, 1, 0.22}, // memory card at slot 2 -> {Bob, Charlie, Dave}
		{2, 0, 0.04}, // PSD at slot 1 -> {Charlie}
		{4, 2, 0.20}, // SP camera at slot 3 -> {Charlie}
		{4, 0, 0.31}, // SP camera at slot 1 -> {Alice, Dave}
		{1, 0, 0.01}, // DSLR at slot 1 -> {Bob}
		{1, 1, 0.19}, // DSLR at slot 2 -> {Alice}
	}
	for i, st := range steps {
		if made := rs.csf(st.c, st.s, st.alpha); made == 0 {
			t.Fatalf("step %d made no assignment", i)
		}
	}
	if rs.remaining != 0 {
		t.Fatalf("configuration incomplete after replay: %d units left", rs.remaining)
	}
	want := configFromRows([][]int{
		{4, 1, 0},
		{1, 3, 0},
		{2, 3, 4},
		{4, 3, 0},
	})
	for u := range want.Assign {
		for s := range want.Assign[u] {
			if rs.conf.Assign[u][s] != want.Assign[u][s] {
				t.Errorf("A(%d,%d) = %d, want %d", u, s, rs.conf.Assign[u][s], want.Assign[u][s])
			}
		}
	}
	rep := Evaluate(in, rs.conf)
	if !almostEqual(rep.Scaled(), 9.75, 1e-9) {
		t.Errorf("scaled objective = %.4f, want 9.75", rep.Scaled())
	}
}

func TestPaperExampleAVGDFromTable6(t *testing.T) {
	in := buildPaperExample(0.5)
	f := paperTable6Factors(in)
	conf, st := RoundAVGD(in, f, AVGDOptions{R: DefaultR})
	if err := conf.Validate(in); err != nil {
		t.Fatalf("AVG-D config invalid: %v", err)
	}
	rep := Evaluate(in, conf)
	t.Logf("AVG-D scaled value = %.4f (paper reports 9.85 for its run)", rep.Scaled())
	// Deterministic on this fixture; must beat every baseline (≥ 8.7) and
	// respect the 4-approximation against the LP value actually used.
	if rep.Scaled() < 8.7 {
		t.Errorf("AVG-D scaled value %.4f below the best baseline 8.7", rep.Scaled())
	}
	if rep.Weighted() < st.LPObjective/4-1e-9 {
		t.Errorf("AVG-D weighted value %.4f violates LP/4 = %.4f", rep.Weighted(), st.LPObjective/4)
	}
	if st.FallbackUnits != 0 {
		t.Errorf("AVG-D used greedy fallback for %d units", st.FallbackUnits)
	}
}

func TestPaperExampleAVGFromTable6(t *testing.T) {
	in := buildPaperExample(0.5)
	f := paperTable6Factors(in)
	for seed := uint64(1); seed <= 10; seed++ {
		conf, _ := RoundAVG(in, f, AVGOptions{Seed: seed})
		if err := conf.Validate(in); err != nil {
			t.Fatalf("seed %d: invalid config: %v", seed, err)
		}
		rep := Evaluate(in, conf)
		// With the optimal LP factors, any CSF outcome keeps each user on
		// their three LP-support items, so preference utility is fixed at
		// 7.45..8.0 and the total stays well above the baselines' range.
		if rep.Scaled() < 8.0 {
			t.Errorf("seed %d: scaled value %.4f unexpectedly low", seed, rep.Scaled())
		}
	}
}

func TestPaperExampleLPValue(t *testing.T) {
	// The LP optimum upper-bounds the integral optimum 10.35 (weighted
	// 5.175), and the Table 6 fractional point is LP-feasible with a
	// near-optimal objective.
	in := buildPaperExample(0.5)
	f := paperTable6Factors(in)
	if f.Objective < 5.175-1e-9 {
		t.Logf("Table 6 factors give LP objective %.4f (< integral optimum; the published fractional point need not be LP-optimal for our pair formulation)", f.Objective)
	}
	X, obj, err := in.Relaxation().SolveExact()
	if err != nil {
		t.Fatalf("exact LP: %v", err)
	}
	if obj < 5.175-1e-6 {
		t.Errorf("exact LP optimum %.4f is below the integral optimum 5.175", obj)
	}
	for u, row := range X {
		var sum float64
		for _, x := range row {
			sum += x
		}
		if !almostEqual(sum, 3, 1e-6) {
			t.Errorf("user %d LP mass %.4f, want 3", u, sum)
		}
	}
}
